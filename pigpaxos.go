// Package pigpaxos is a strongly consistent replicated key-value store
// built on the PigPaxos consensus protocol (Charapko, Ailijiang, Demirbas:
// "PigPaxos: Devouring the Communication Bottlenecks in Distributed
// Consensus"), with classical Multi-Paxos and EPaxos as selectable
// baselines.
//
// PigPaxos removes the Paxos leader's communication bottleneck by routing
// fan-out/fan-in through randomly rotating relay nodes, one per statically
// configured relay group: the leader exchanges 2r+2 messages per command
// (r = relay groups) instead of 2(N−1)+2, which lets consensus scale
// vertically to tens of nodes within one conflict domain.
//
// The package offers three ways to run:
//
//   - NewCluster: an in-process cluster over channels, for embedding and
//     experimentation (see examples/quickstart).
//   - internal TCP transport via cmd/pigserver for real deployments.
//   - Bench: deterministic discrete-event simulations reproducing every
//     figure and table of the paper (see cmd/pigbench and bench_test.go).
package pigpaxos

import (
	"fmt"
	"sync"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/pqr"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

// Protocol selects the replication protocol of a cluster.
type Protocol int

// Supported protocols.
const (
	// ProtocolPigPaxos is the paper's contribution (default).
	ProtocolPigPaxos Protocol = iota
	// ProtocolPaxos is classical Multi-Paxos with a stable leader.
	ProtocolPaxos
	// ProtocolEPaxos is leaderless Egalitarian Paxos.
	ProtocolEPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolPigPaxos:
		return "pigpaxos"
	case ProtocolPaxos:
		return "paxos"
	case ProtocolEPaxos:
		return "epaxos"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol converts a protocol name ("pigpaxos", "paxos", "epaxos").
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "pigpaxos", "pig":
		return ProtocolPigPaxos, nil
	case "paxos", "multipaxos":
		return ProtocolPaxos, nil
	case "epaxos":
		return ProtocolEPaxos, nil
	default:
		return 0, fmt.Errorf("pigpaxos: unknown protocol %q", s)
	}
}

// ReadMode selects the read path for Paxos/PigPaxos clusters (§4.3 of the
// paper discusses the trade-offs; EPaxos always orders reads itself).
type ReadMode int

const (
	// ReadLog serializes reads through the replicated log: a consensus
	// round per read, always linearizable (the paper's default).
	ReadLog ReadMode = iota
	// ReadLease serves reads locally at the leader under a heartbeat
	// lease: linearizable and much cheaper.
	ReadLease
	// ReadAny answers from whichever replica is asked. Fast but stale
	// reads are possible — provided for comparison and testing.
	ReadAny
)

// Options configures an in-process cluster.
type Options struct {
	// N is the cluster size (default 3).
	N int
	// Protocol selects the replication protocol (default PigPaxos).
	Protocol Protocol
	// RelayGroups is PigPaxos' r (default 2; ignored by the baselines).
	// The paper's evaluation (§5.3) finds small values best.
	RelayGroups int
	// RelayTimeout bounds relay-side aggregation waits (default 50ms).
	RelayTimeout time.Duration
	// ElectionTimeout enables automatic leader failover when positive.
	ElectionTimeout time.Duration
	// ReadMode selects the read path (Paxos/PigPaxos only).
	ReadMode ReadMode
}

func (o Options) paxosReadMode() paxos.ReadMode {
	switch o.ReadMode {
	case ReadLease:
		return paxos.ReadLease
	case ReadAny:
		return paxos.ReadAny
	default:
		return paxos.ReadLog
	}
}

func (o *Options) applyDefaults() {
	if o.N == 0 {
		o.N = 3
	}
	if o.RelayGroups == 0 {
		o.RelayGroups = 2
	}
	if o.RelayTimeout == 0 {
		o.RelayTimeout = 50 * time.Millisecond
	}
}

// Cluster is an in-process replicated KV cluster over the channel bus.
type Cluster struct {
	opts     Options
	bus      *transport.LocalBus
	cc       config.Cluster
	handlers map[ids.ID]node.Handler
	nodes    map[ids.ID]*transport.LocalNode
	stores   map[ids.ID]*kvstore.Store

	clientMu sync.Mutex
	nextCl   int
}

// NewCluster starts an N-node cluster in the current process. Call Close
// when done.
func NewCluster(opts Options) (*Cluster, error) {
	opts.applyDefaults()
	if opts.Protocol == ProtocolPigPaxos && opts.RelayGroups >= opts.N {
		return nil, fmt.Errorf("pigpaxos: %d relay groups need a cluster larger than %d", opts.RelayGroups, opts.N)
	}
	cc := config.NewLAN(opts.N)
	c := &Cluster{
		opts:     opts,
		bus:      transport.NewLocalBus(),
		cc:       cc,
		handlers: make(map[ids.ID]node.Handler),
		nodes:    make(map[ids.ID]*transport.LocalNode),
		stores:   make(map[ids.ID]*kvstore.Store),
	}
	type starter interface{ Start() }
	starters := make([]starter, 0, opts.N)
	for _, id := range cc.Nodes {
		tr := &relay{}
		n, err := c.bus.Node(id, tr)
		if err != nil {
			c.bus.Close()
			return nil, err
		}
		c.nodes[id] = n
		switch opts.Protocol {
		case ProtocolPaxos:
			r := paxos.New(n, paxos.Config{
				Cluster: cc, ID: id, InitialLeader: cc.Nodes[0],
				ElectionTimeout: opts.ElectionTimeout,
				ReadMode:        opts.paxosReadMode(),
			}, nil)
			tr.h = withQuorumReads(n, r.Store(), r.OnMessage)
			c.stores[id] = r.Store()
			starters = append(starters, r)
		case ProtocolEPaxos:
			r := epaxos.New(n, epaxos.Config{Cluster: cc, ID: id})
			tr.h = withQuorumReads(n, r.Store(), r.OnMessage)
			c.stores[id] = r.Store()
			starters = append(starters, r)
		default:
			r := pigpaxos.New(n, pigpaxos.Config{
				Paxos: paxos.Config{
					Cluster: cc, ID: id, InitialLeader: cc.Nodes[0],
					ElectionTimeout: opts.ElectionTimeout,
					ReadMode:        opts.paxosReadMode(),
				},
				NumGroups:    opts.RelayGroups,
				RelayTimeout: opts.RelayTimeout,
			})
			tr.h = withQuorumReads(n, r.Core().Store(), r.OnMessage)
			c.stores[id] = r.Core().Store()
			starters = append(starters, r)
		}
	}
	// Start each replica on its own event loop.
	var wg sync.WaitGroup
	for _, id := range cc.Nodes {
		id := id
		wg.Add(1)
		s := starters[indexOf(cc.Nodes, id)]
		c.post(id, func() { s.Start(); wg.Done() })
	}
	wg.Wait()
	return c, nil
}

func indexOf(s []ids.ID, id ids.ID) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}

// withQuorumReads interposes a pqr.Responder on a replica's dispatch so
// every node answers Paxos-Quorum-Read version probes (§4.3).
func withQuorumReads(ctx node.Context, store *kvstore.Store, inner func(ids.ID, wire.Msg)) func(ids.ID, wire.Msg) {
	resp := pqr.NewResponder(ctx, store)
	return func(from ids.ID, m wire.Msg) {
		if req, ok := m.(wire.QReadReq); ok {
			resp.OnRequest(from, req)
			return
		}
		inner(from, m)
	}
}

// relay adapts a late-bound handler function to node.Handler.
type relay struct {
	mu sync.Mutex
	h  func(from ids.ID, m wire.Msg)
}

// OnMessage implements node.Handler.
func (r *relay) OnMessage(from ids.ID, m wire.Msg) {
	r.mu.Lock()
	h := r.h
	r.mu.Unlock()
	if h != nil {
		h(from, m)
	}
}

// post runs fn on a node's event loop (via a zero-delay timer).
func (c *Cluster) post(id ids.ID, fn func()) {
	c.nodes[id].After(0, fn)
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.bus.Close() }

// N returns the cluster size.
func (c *Cluster) N() int { return c.opts.N }

// Leader returns the 1-based index of the initial leader node.
func (c *Cluster) Leader() int { return 1 }

// Client opens a synchronous client session against the cluster.
func (c *Cluster) Client() (*Client, error) {
	c.clientMu.Lock()
	c.nextCl++
	idx := c.nextCl
	c.clientMu.Unlock()
	id := ids.NewID(999, idx)
	cl := &Client{
		cluster: c,
		id:      uint64(idx),
		replies: make(chan wire.Reply, 16),
		timeout: 5 * time.Second,
	}
	n, err := c.bus.Node(id, cl)
	if err != nil {
		return nil, err
	}
	cl.node = n
	// Every client knows the whole membership: EPaxos clients round-robin
	// across it, the leader-based protocols start at the initial leader
	// and rotate only on timeouts (crash failover).
	cl.targets = c.cc.Nodes
	if c.opts.Protocol == ProtocolEPaxos {
		cl.rr = idx % len(c.cc.Nodes)
	}
	cl.qresults = make(chan pqr.Result, 1)
	cl.qreader = pqr.New(n, pqr.Config{Members: c.cc.Nodes}, nil)
	return cl, nil
}

// StopNode crashes the 1-based node i: it stops processing and all traffic
// to it is dropped. With ElectionTimeout configured the survivors elect a
// new leader and clients fail over transparently.
func (c *Cluster) StopNode(i int) error {
	if i < 1 || i > len(c.cc.Nodes) {
		return fmt.Errorf("pigpaxos: node %d out of range 1..%d", i, len(c.cc.Nodes))
	}
	c.bus.Stop(c.cc.Nodes[i-1])
	return nil
}

// Client is a synchronous KV client. It is safe for use from one goroutine;
// open one client per goroutine.
type Client struct {
	cluster *Cluster
	node    *transport.LocalNode
	id      uint64
	seq     uint64
	targets []ids.ID
	rr      int
	replies chan wire.Reply
	timeout time.Duration

	qreader  *pqr.Reader
	qresults chan pqr.Result
}

// OnMessage implements node.Handler (internal use).
func (cl *Client) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.Reply:
		select {
		case cl.replies <- v:
		default:
		}
	case wire.QReadReply:
		cl.qreader.OnReply(v)
	}
}

// SetTimeout adjusts the per-operation timeout (default 5s).
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

func (cl *Client) do(cmd kvstore.Command) (wire.Reply, error) {
	cl.seq++
	cmd.ClientID = cl.id
	cmd.Seq = cl.seq
	// Try each known node in turn: the preferred target first, rotating
	// on per-attempt timeouts so a crashed leader does not strand the
	// client (redirect replies re-route immediately).
	attempts := len(cl.targets)
	if attempts < 1 {
		attempts = 1
	}
	perAttempt := cl.timeout / time.Duration(attempts)
	if perAttempt <= 0 {
		perAttempt = cl.timeout
	}
	for a := 0; a < attempts; a++ {
		target := cl.targets[(cl.rr+a)%len(cl.targets)]
		cl.node.Send(target, wire.Request{Cmd: cmd})
		deadline := time.After(perAttempt)
	waiting:
		for {
			select {
			case rep := <-cl.replies:
				if rep.Seq != cl.seq {
					continue // stale reply from an earlier attempt
				}
				if !rep.OK {
					if rep.Leader.IsZero() {
						return rep, fmt.Errorf("pigpaxos: request rejected")
					}
					cl.node.Send(rep.Leader, wire.Request{Cmd: cmd})
					continue
				}
				if cl.cluster.opts.Protocol == ProtocolEPaxos {
					cl.rr++
				}
				return rep, nil
			case <-deadline:
				break waiting
			}
		}
	}
	return wire.Reply{}, fmt.Errorf("pigpaxos: operation timed out after %v", cl.timeout)
}

// Put stores value under key.
func (cl *Client) Put(key uint64, value []byte) error {
	_, err := cl.do(kvstore.Command{Op: kvstore.Put, Key: key, Value: value})
	return err
}

// Get reads the value of key; found reports whether the key exists.
func (cl *Client) Get(key uint64) (value []byte, found bool, err error) {
	rep, err := cl.do(kvstore.Command{Op: kvstore.Get, Key: key})
	if err != nil {
		return nil, false, err
	}
	return rep.Value, rep.Exists, nil
}

// Delete removes key; found reports whether it existed.
func (cl *Client) Delete(key uint64) (found bool, err error) {
	rep, err := cl.do(kvstore.Command{Op: kvstore.Delete, Key: key})
	if err != nil {
		return false, err
	}
	return rep.Exists, nil
}

// QuorumRead performs a Paxos Quorum Read (§4.3): it probes a majority of
// replicas for their version of key and returns the stable newest value,
// without involving the leader or the log. The read is linearizable with
// respect to completed writes.
func (cl *Client) QuorumRead(key uint64) (value []byte, found bool, err error) {
	// The reader must run on the client's event loop.
	cl.node.After(0, func() {
		cl.qreader.Read(key, func(r pqr.Result) {
			select {
			case cl.qresults <- r:
			default:
			}
		})
	})
	select {
	case r := <-cl.qresults:
		if r.Failed {
			return nil, false, fmt.Errorf("pigpaxos: quorum read did not stabilize")
		}
		return r.Value, r.Exists, nil
	case <-time.After(cl.timeout):
		return nil, false, fmt.Errorf("pigpaxos: quorum read timed out")
	}
}

// StoreChecksums returns each replica's state-machine checksum, in node
// order. Equal checksums mean converged replicas; useful in tests and
// health checks.
func (c *Cluster) StoreChecksums() []uint64 {
	out := make([]uint64, 0, len(c.cc.Nodes))
	for _, id := range c.cc.Nodes {
		out = append(out, c.stores[id].Checksum())
	}
	return out
}

// StoreApplied returns each replica's applied-command count, in node order.
func (c *Cluster) StoreApplied() []uint64 {
	out := make([]uint64, 0, len(c.cc.Nodes))
	for _, id := range c.cc.Nodes {
		out = append(out, c.stores[id].Applied())
	}
	return out
}
