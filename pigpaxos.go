// Package pigpaxos is a strongly consistent replicated key-value store
// built on the PigPaxos consensus protocol (Charapko, Ailijiang, Demirbas:
// "PigPaxos: Devouring the Communication Bottlenecks in Distributed
// Consensus"), with classical Multi-Paxos and EPaxos as selectable
// baselines.
//
// PigPaxos removes the Paxos leader's communication bottleneck by routing
// fan-out/fan-in through randomly rotating relay nodes, one per statically
// configured relay group: the leader exchanges 2r+2 messages per command
// (r = relay groups) instead of 2(N−1)+2, which lets consensus scale
// vertically to tens of nodes within one conflict domain.
//
// A single replicated log is still a sequencing ceiling, so the package
// also scales horizontally: Options.Shards partitions the uint64 key space
// across S independent consensus groups (each a subset of the membership
// with its own leader and relay plane) behind a deterministic hash router.
// Clients route Put/Get/Delete/QuorumRead by key, with an independent
// at-most-once session per shard; aggregate throughput scales near-linearly
// with S.
//
// The package offers three ways to run:
//
//   - NewCluster: an in-process cluster over channels, for embedding and
//     experimentation (see examples/quickstart).
//   - internal TCP transport via cmd/pigserver for real deployments.
//   - Bench: deterministic discrete-event simulations reproducing every
//     figure and table of the paper (see cmd/pigbench and bench_test.go).
package pigpaxos

import (
	"fmt"
	"sync"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/pqr"
	"pigpaxos/internal/shard"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

// Protocol selects the replication protocol of a cluster.
type Protocol int

// Supported protocols.
const (
	// ProtocolPigPaxos is the paper's contribution (default).
	ProtocolPigPaxos Protocol = iota
	// ProtocolPaxos is classical Multi-Paxos with a stable leader.
	ProtocolPaxos
	// ProtocolEPaxos is leaderless Egalitarian Paxos.
	ProtocolEPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolPigPaxos:
		return "pigpaxos"
	case ProtocolPaxos:
		return "paxos"
	case ProtocolEPaxos:
		return "epaxos"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol converts a protocol name ("pigpaxos", "paxos", "epaxos").
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "pigpaxos", "pig":
		return ProtocolPigPaxos, nil
	case "paxos", "multipaxos":
		return ProtocolPaxos, nil
	case "epaxos":
		return ProtocolEPaxos, nil
	default:
		return 0, fmt.Errorf("pigpaxos: unknown protocol %q", s)
	}
}

// ReadMode selects the read path for Paxos/PigPaxos clusters (§4.3 of the
// paper discusses the trade-offs; EPaxos always orders reads itself).
type ReadMode int

const (
	// ReadLog serializes reads through the replicated log: a consensus
	// round per read, always linearizable (the paper's default).
	ReadLog ReadMode = iota
	// ReadLease serves reads locally at the leader under a heartbeat
	// lease: linearizable and much cheaper.
	ReadLease
	// ReadAny answers from whichever replica is asked. Fast but stale
	// reads are possible — provided for comparison and testing.
	ReadAny
)

// Options configures an in-process cluster.
type Options struct {
	// N is the cluster size (default 3).
	N int
	// Protocol selects the replication protocol (default PigPaxos).
	Protocol Protocol
	// Shards partitions the key space across this many independent
	// consensus groups (default 1 = a single group spanning the whole
	// membership). Each shard is replicated by a deterministic subset of
	// max(3, N/Shards) nodes with its own leader; clients route by key.
	// Requires a leader-based protocol (PigPaxos or Paxos).
	Shards int
	// RelayGroups is PigPaxos' r (default 2; ignored by the baselines).
	// The paper's evaluation (§5.3) finds small values best. In sharded
	// clusters the fan-out is clamped per shard to its group size.
	RelayGroups int
	// RelayTimeout bounds relay-side aggregation waits (default 50ms).
	RelayTimeout time.Duration
	// ElectionTimeout enables automatic leader failover when positive.
	ElectionTimeout time.Duration
	// ReadMode selects the read path (Paxos/PigPaxos only).
	ReadMode ReadMode
}

func (o Options) paxosReadMode() paxos.ReadMode {
	switch o.ReadMode {
	case ReadLease:
		return paxos.ReadLease
	case ReadAny:
		return paxos.ReadAny
	default:
		return paxos.ReadLog
	}
}

func (o *Options) applyDefaults() {
	if o.N == 0 {
		o.N = 3
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.RelayGroups == 0 {
		o.RelayGroups = 2
	}
	if o.RelayTimeout == 0 {
		o.RelayTimeout = 50 * time.Millisecond
	}
}

// Cluster is an in-process replicated KV cluster over the channel bus.
type Cluster struct {
	opts     Options
	bus      *transport.LocalBus
	cc       config.Cluster
	nodes    map[ids.ID]*transport.LocalNode
	plan     shard.Map
	sharded  bool // Shards > 1: wire traffic rides Sharded envelopes
	replicas []map[ids.ID]*paxos.Replica  // decision core per (shard, member); nil map entries for EPaxos
	stores   []map[ids.ID]*kvstore.Store  // state machine per (shard, member)

	clientMu sync.Mutex
	nextCl   int
}

// NewCluster starts an N-node cluster in the current process. Call Close
// when done.
func NewCluster(opts Options) (*Cluster, error) {
	opts.applyDefaults()
	if opts.Shards > 1 && opts.Protocol == ProtocolEPaxos {
		return nil, fmt.Errorf("pigpaxos: sharding requires a leader-based protocol (PigPaxos or Paxos)")
	}
	if opts.Protocol == ProtocolPigPaxos && opts.Shards == 1 && opts.RelayGroups >= opts.N {
		return nil, fmt.Errorf("pigpaxos: %d relay groups need a cluster larger than %d", opts.RelayGroups, opts.N)
	}
	cc := config.NewLAN(opts.N)
	cc.Shards = opts.Shards
	c := &Cluster{
		opts:    opts,
		bus:     transport.NewLocalBus(),
		cc:      cc,
		nodes:   make(map[ids.ID]*transport.LocalNode),
		sharded: opts.Shards > 1,
	}
	if c.sharded {
		c.plan = shard.Plan(cc, opts.Shards, 0)
	} else {
		// A single group spanning the whole membership, led by node 1 —
		// identical to the historical unsharded layout.
		c.plan = shard.Map{
			Router: shard.NewRouter(1),
			Shards: []shard.Descriptor{{Index: 0, Members: cc.Nodes, Leader: cc.Nodes[0]}},
		}
	}

	type starter interface{ Start() }
	type startEntry struct {
		id ids.ID
		s  starter
	}
	var starters []startEntry // (shard, member) order

	// One bus node — one event loop — per physical node. In sharded
	// clusters its handler is a Dispatcher demultiplexing per-shard
	// replicas; unsharded clusters keep the direct single-handler path
	// (and the unwrapped wire format).
	dispatchers := make(map[ids.ID]*shard.Dispatcher)
	handlers := make(map[ids.ID]*relay)
	for _, id := range cc.Nodes {
		var h node.Handler
		if c.sharded {
			d := shard.NewDispatcher(c.plan.NumShards())
			dispatchers[id] = d
			h = d
		} else {
			r := &relay{}
			handlers[id] = r
			h = r
		}
		n, err := c.bus.Node(id, h)
		if err != nil {
			c.bus.Close()
			return nil, err
		}
		c.nodes[id] = n
	}

	c.replicas = make([]map[ids.ID]*paxos.Replica, c.plan.NumShards())
	c.stores = make([]map[ids.ID]*kvstore.Store, c.plan.NumShards())
	for k, desc := range c.plan.Shards {
		c.replicas[k] = make(map[ids.ID]*paxos.Replica, len(desc.Members))
		c.stores[k] = make(map[ids.ID]*kvstore.Store, len(desc.Members))
		sub := c.shardCluster(k)
		for _, id := range desc.Members {
			var ctx node.Context = c.nodes[id]
			if c.sharded {
				ctx = shard.Wrap(ctx, k)
			}
			pcfg := paxos.Config{
				Cluster: sub, ID: id, InitialLeader: desc.Leader,
				ElectionTimeout: opts.ElectionTimeout,
				ReadMode:        opts.paxosReadMode(),
			}
			var s starter
			var h func(ids.ID, wire.Msg)
			switch opts.Protocol {
			case ProtocolPaxos:
				r := paxos.New(ctx, pcfg, nil)
				h = withQuorumReads(ctx, r.Store(), r.OnMessage)
				c.replicas[k][id] = r
				c.stores[k][id] = r.Store()
				s = r
			case ProtocolEPaxos:
				r := epaxos.New(ctx, epaxos.Config{Cluster: sub, ID: id})
				h = withQuorumReads(ctx, r.Store(), r.OnMessage)
				c.stores[k][id] = r.Store()
				s = r
			default:
				// Clamp the relay fan-out to the shard's group size: r
				// relay groups need at least r followers.
				ng := opts.RelayGroups
				if max := len(desc.Members) - 1; ng > max {
					ng = max
				}
				if ng < 1 {
					ng = 1
				}
				r := pigpaxos.New(ctx, pigpaxos.Config{
					Paxos:        pcfg,
					NumGroups:    ng,
					RelayTimeout: opts.RelayTimeout,
				})
				h = withQuorumReads(ctx, r.Core().Store(), r.OnMessage)
				c.replicas[k][id] = r.Core()
				c.stores[k][id] = r.Core().Store()
				s = r
			}
			if c.sharded {
				dispatchers[id].Register(k, &relay{h: h})
			} else {
				handlers[id].set(h)
			}
			starters = append(starters, startEntry{id: id, s: s})
		}
	}

	// Start each replica on its own event loop.
	var wg sync.WaitGroup
	for _, e := range starters {
		e := e
		wg.Add(1)
		c.post(e.id, func() { e.s.Start(); wg.Done() })
	}
	wg.Wait()
	return c, nil
}

// shardCluster restricts the membership to shard k's group, keeping the
// topology.
func (c *Cluster) shardCluster(k int) config.Cluster {
	d := c.plan.Shards[k]
	return config.Cluster{
		Nodes:   append([]ids.ID(nil), d.Members...),
		Zones:   c.cc.Zones,
		Latency: c.cc.Latency,
	}
}

func indexOf(s []ids.ID, id ids.ID) int {
	for i, v := range s {
		if v == id {
			return i
		}
	}
	return -1
}

// withQuorumReads interposes a pqr.Responder on a replica's dispatch so
// every node answers Paxos-Quorum-Read version probes (§4.3).
func withQuorumReads(ctx node.Context, store *kvstore.Store, inner func(ids.ID, wire.Msg)) func(ids.ID, wire.Msg) {
	resp := pqr.NewResponder(ctx, store)
	return func(from ids.ID, m wire.Msg) {
		if req, ok := m.(wire.QReadReq); ok {
			resp.OnRequest(from, req)
			return
		}
		inner(from, m)
	}
}

// relay adapts a late-bound handler function to node.Handler.
type relay struct {
	mu sync.Mutex
	h  func(from ids.ID, m wire.Msg)
}

func (r *relay) set(h func(from ids.ID, m wire.Msg)) {
	r.mu.Lock()
	r.h = h
	r.mu.Unlock()
}

// OnMessage implements node.Handler.
func (r *relay) OnMessage(from ids.ID, m wire.Msg) {
	r.mu.Lock()
	h := r.h
	r.mu.Unlock()
	if h != nil {
		h(from, m)
	}
}

// post runs fn on a node's event loop (via a zero-delay timer).
func (c *Cluster) post(id ids.ID, fn func()) {
	c.nodes[id].After(0, fn)
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.bus.Close() }

// N returns the cluster size.
func (c *Cluster) N() int { return c.opts.N }

// Shards returns the shard count (1 for an unsharded cluster).
func (c *Cluster) Shards() int { return c.plan.NumShards() }

// leaderQueryTimeout bounds how long Leader/ShardLeader wait for event-loop
// replies: stopped nodes never run posted callbacks, so a crashed member
// simply does not answer.
const leaderQueryTimeout = 200 * time.Millisecond

// ShardLeader returns the 1-based node index of shard k's current leader,
// or 0 when no live member currently believes it leads (mid-election).
// Each member is asked on its own event loop; when views disagree
// transiently, the highest ballot wins. EPaxos is leaderless; every node
// accepts commands, and the first member stands in.
func (c *Cluster) ShardLeader(k int) int {
	if k < 0 || k >= len(c.plan.Shards) {
		return 0
	}
	members := c.plan.Shards[k].Members
	if c.opts.Protocol == ProtocolEPaxos {
		return indexOf(c.cc.Nodes, members[0]) + 1
	}
	type answer struct {
		id     ids.ID
		ballot ids.Ballot
	}
	ch := make(chan answer, len(members))
	for _, id := range members {
		id := id
		core := c.replicas[k][id]
		c.post(id, func() {
			if core.IsLeader() {
				ch <- answer{id: id, ballot: core.Ballot()}
			} else {
				ch <- answer{}
			}
		})
	}
	deadline := time.After(leaderQueryTimeout)
	var best answer
	for pending := len(members); pending > 0; pending-- {
		select {
		case a := <-ch:
			if !a.id.IsZero() && (best.id.IsZero() || a.ballot > best.ballot) {
				best = a
			}
		case <-deadline:
			pending = 0
		}
	}
	if best.id.IsZero() {
		return 0
	}
	return indexOf(c.cc.Nodes, best.id) + 1
}

// Leader returns the 1-based node index of the current leader (shard 0's
// leader in a sharded cluster), or 0 when no live replica currently leads.
func (c *Cluster) Leader() int { return c.ShardLeader(0) }

// Client opens a synchronous client session against the cluster.
func (c *Cluster) Client() (*Client, error) {
	c.clientMu.Lock()
	c.nextCl++
	idx := c.nextCl
	c.clientMu.Unlock()
	id := ids.NewID(999, idx)
	cl := &Client{
		cluster: c,
		id:      uint64(idx),
		seqs:    make([]uint64, c.plan.NumShards()),
		replies: make(chan taggedReply, 16),
		timeout: 5 * time.Second,
	}
	n, err := c.bus.Node(id, cl)
	if err != nil {
		return nil, err
	}
	cl.node = n
	// Per-shard target lists: the planned leader first, then the rest of
	// the shard's group — leader-based clients start at the leader and
	// rotate only on timeouts (crash failover). In the unsharded cluster
	// shard 0 spans the whole membership, so this reduces to the
	// historical behavior; EPaxos clients round-robin across it.
	cl.targets = make([][]ids.ID, c.plan.NumShards())
	cl.rr = make([]int, c.plan.NumShards())
	for k, desc := range c.plan.Shards {
		cl.targets[k] = append(cl.targets[k], desc.Leader)
		for _, m := range desc.Members {
			if m != desc.Leader {
				cl.targets[k] = append(cl.targets[k], m)
			}
		}
	}
	if c.opts.Protocol == ProtocolEPaxos {
		cl.rr[0] = idx % len(cl.targets[0])
	}
	cl.qresults = make(chan pqr.Result, 1)
	cl.qreaders = make([]*pqr.Reader, c.plan.NumShards())
	for k, desc := range c.plan.Shards {
		var ctx node.Context = n
		if c.sharded {
			ctx = shard.Wrap(ctx, k)
		}
		cl.qreaders[k] = pqr.New(ctx, pqr.Config{Members: desc.Members}, nil)
	}
	return cl, nil
}

// StopNode crashes the 1-based node i: it stops processing and all traffic
// to it is dropped. With ElectionTimeout configured the survivors elect a
// new leader and clients fail over transparently.
func (c *Cluster) StopNode(i int) error {
	if i < 1 || i > len(c.cc.Nodes) {
		return fmt.Errorf("pigpaxos: node %d out of range 1..%d", i, len(c.cc.Nodes))
	}
	c.bus.Stop(c.cc.Nodes[i-1])
	return nil
}

// taggedReply is a Reply with the shard that served it.
type taggedReply struct {
	shard int
	rep   wire.Reply
}

// Client is a synchronous KV client. It is safe for use from one goroutine;
// open one client per goroutine. Operations route by key to the shard
// owning it, with an independent at-most-once session per shard.
type Client struct {
	cluster *Cluster
	node    *transport.LocalNode
	id      uint64
	seqs    []uint64   // per-shard session sequence numbers
	targets [][]ids.ID // per-shard servers, preferred first
	rr      []int      // per-shard rotation cursor
	replies chan taggedReply
	timeout time.Duration

	qreaders []*pqr.Reader // per-shard quorum readers
	qresults chan pqr.Result
}

// OnMessage implements node.Handler (internal use).
func (cl *Client) OnMessage(from ids.ID, m wire.Msg) {
	k := 0
	switch sm := m.(type) {
	case *wire.Sharded:
		k, m = int(sm.Shard), sm.Inner
	case wire.Sharded:
		k, m = int(sm.Shard), sm.Inner
	}
	switch v := m.(type) {
	case wire.Reply:
		select {
		case cl.replies <- taggedReply{shard: k, rep: v}:
		default:
		}
	case wire.QReadReply:
		if k < len(cl.qreaders) {
			cl.qreaders[k].OnReply(v)
		}
	}
}

// SetTimeout adjusts the per-operation timeout (default 5s).
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// send transmits cmd to a shard-k server, tagging it when the cluster is
// sharded.
func (cl *Client) send(k int, to ids.ID, cmd kvstore.Command) {
	if cl.cluster.sharded {
		cl.node.Send(to, wire.Sharded{Shard: uint16(k), Inner: wire.Request{Cmd: cmd}})
		return
	}
	cl.node.Send(to, wire.Request{Cmd: cmd})
}

func (cl *Client) do(cmd kvstore.Command) (wire.Reply, error) {
	k := cl.cluster.plan.Router.Shard(cmd.Key)
	cl.seqs[k]++
	cmd.ClientID = cl.id
	cmd.Seq = cl.seqs[k]
	// Try each of the shard's servers in turn: the preferred target first,
	// rotating on per-attempt timeouts so a crashed leader does not strand
	// the client (redirect replies re-route immediately). The server that
	// answers becomes the shard's preferred target, so after a failover
	// later operations go straight to the new leader instead of re-paying
	// a timeout at the dead one.
	attempts := len(cl.targets[k])
	if attempts < 1 {
		attempts = 1
	}
	perAttempt := cl.timeout / time.Duration(attempts)
	if perAttempt <= 0 {
		perAttempt = cl.timeout
	}
	for a := 0; a < attempts; a++ {
		ti := (cl.rr[k] + a) % len(cl.targets[k])
		cl.send(k, cl.targets[k][ti], cmd)
		deadline := time.After(perAttempt)
	waiting:
		for {
			select {
			case tr := <-cl.replies:
				rep := tr.rep
				if tr.shard != k || rep.Seq != cl.seqs[k] {
					continue // stale reply from an earlier attempt or shard
				}
				if !rep.OK {
					if rep.Leader.IsZero() {
						return rep, fmt.Errorf("pigpaxos: request rejected")
					}
					if li := indexOf(cl.targets[k], rep.Leader); li >= 0 {
						ti = li
					}
					cl.send(k, rep.Leader, cmd)
					continue
				}
				if cl.cluster.opts.Protocol == ProtocolEPaxos {
					cl.rr[k]++
				} else {
					cl.rr[k] = ti
				}
				return rep, nil
			case <-deadline:
				break waiting
			}
		}
	}
	return wire.Reply{}, fmt.Errorf("pigpaxos: operation timed out after %v", cl.timeout)
}

// Put stores value under key.
func (cl *Client) Put(key uint64, value []byte) error {
	_, err := cl.do(kvstore.Command{Op: kvstore.Put, Key: key, Value: value})
	return err
}

// Get reads the value of key; found reports whether the key exists.
func (cl *Client) Get(key uint64) (value []byte, found bool, err error) {
	rep, err := cl.do(kvstore.Command{Op: kvstore.Get, Key: key})
	if err != nil {
		return nil, false, err
	}
	return rep.Value, rep.Exists, nil
}

// Delete removes key; found reports whether it existed.
func (cl *Client) Delete(key uint64) (found bool, err error) {
	rep, err := cl.do(kvstore.Command{Op: kvstore.Delete, Key: key})
	if err != nil {
		return false, err
	}
	return rep.Exists, nil
}

// QuorumRead performs a Paxos Quorum Read (§4.3): it probes a majority of
// the owning shard's replicas for their version of key and returns the
// stable newest value, without involving the leader or the log. The read is
// linearizable with respect to completed writes.
func (cl *Client) QuorumRead(key uint64) (value []byte, found bool, err error) {
	k := cl.cluster.plan.Router.Shard(key)
	// The reader must run on the client's event loop.
	cl.node.After(0, func() {
		cl.qreaders[k].Read(key, func(r pqr.Result) {
			select {
			case cl.qresults <- r:
			default:
			}
		})
	})
	select {
	case r := <-cl.qresults:
		if r.Failed {
			return nil, false, fmt.Errorf("pigpaxos: quorum read did not stabilize")
		}
		return r.Value, r.Exists, nil
	case <-time.After(cl.timeout):
		return nil, false, fmt.Errorf("pigpaxos: quorum read timed out")
	}
}

// StoreChecksums returns each node's state-machine checksum, in node order.
// In a sharded cluster a node's figure combines (XORs) the stores of every
// shard it replicates; unsharded clusters report the single store directly.
// Equal checksums across one shard's members mean converged replicas.
func (c *Cluster) StoreChecksums() []uint64 {
	out := make([]uint64, 0, len(c.cc.Nodes))
	for _, id := range c.cc.Nodes {
		var sum uint64
		for k := range c.plan.Shards {
			if st, ok := c.stores[k][id]; ok {
				sum ^= st.Checksum()
			}
		}
		out = append(out, sum)
	}
	return out
}

// StoreApplied returns each node's applied-command count, in node order
// (summed across the shards a node replicates).
func (c *Cluster) StoreApplied() []uint64 {
	out := make([]uint64, 0, len(c.cc.Nodes))
	for _, id := range c.cc.Nodes {
		var sum uint64
		for k := range c.plan.Shards {
			if st, ok := c.stores[k][id]; ok {
				sum += st.Applied()
			}
		}
		out = append(out, sum)
	}
	return out
}

// ShardStoreChecksums returns shard k's members' state-machine checksums in
// the shard's membership order — the per-shard convergence view.
func (c *Cluster) ShardStoreChecksums(k int) []uint64 {
	if k < 0 || k >= len(c.plan.Shards) {
		return nil
	}
	out := make([]uint64, 0, len(c.plan.Shards[k].Members))
	for _, id := range c.plan.Shards[k].Members {
		out = append(out, c.stores[k][id].Checksum())
	}
	return out
}
