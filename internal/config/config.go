// Package config describes cluster membership and network topology for both
// the simulated and live substrates: which nodes exist, which zone (region)
// each lives in, inter-zone latencies, and how PigPaxos relay groups are laid
// out over the membership.
package config

import (
	"fmt"
	"sort"
	"time"

	"pigpaxos/internal/ids"
)

// Cluster describes a deployment's membership and topology.
type Cluster struct {
	// Nodes lists every member in a stable order.
	Nodes []ids.ID
	// Zones maps each node to its zone; defaults to ID.Zone() when nil.
	Zones map[ids.ID]int
	// Latency models the one-way network delay between two zones.
	Latency LatencyModel
	// Addrs maps node IDs to host:port addresses for the live TCP
	// transport. Unused by the simulator.
	Addrs map[ids.ID]string
	// Shards is the number of independent consensus groups the key space
	// is partitioned across. Zero and one both mean a single unsharded
	// group; values above one enable shard-tagged wire routing.
	Shards int
}

// LatencyModel yields the one-way delay between two zones.
type LatencyModel interface {
	OneWay(fromZone, toZone int) time.Duration
}

// LinkProfile describes one zone pair's link beyond propagation delay: the
// jitter and loss real WAN paths carry. The zero value is a perfect link.
type LinkProfile struct {
	// OneWay, when positive, overrides the latency model's propagation
	// delay for the pair.
	OneWay time.Duration
	// Jitter adds uniform random [0, Jitter) to each message's delay,
	// drawn from the simulation RNG.
	Jitter time.Duration
	// Loss drops each message with this probability (0..1).
	Loss float64
}

// ProfileModel is an optional LatencyModel extension carrying per-zone-pair
// link profiles. The network simulator consults it so WAN jitter and loss
// are properties of the topology, not global knobs.
type ProfileModel interface {
	Profile(fromZone, toZone int) LinkProfile
}

// UniformLatency is a LAN-style model: a single one-way delay between any
// two distinct nodes and a near-zero loopback.
type UniformLatency struct {
	Delay time.Duration
}

// OneWay implements LatencyModel.
func (u UniformLatency) OneWay(a, b int) time.Duration { return u.Delay }

// ZoneMatrixLatency is a WAN model: a symmetric matrix of one-way delays
// between zones, with an intra-zone delay for node pairs sharing a zone.
type ZoneMatrixLatency struct {
	IntraZone time.Duration
	// InterZone[a][b] is the one-way delay from zone a to zone b; zones
	// are 1-based, missing entries fall back to Default.
	InterZone map[int]map[int]time.Duration
	Default   time.Duration
	// Profiles[a][b] optionally attaches jitter/loss to the a→b pair, with
	// the same symmetric fallback as InterZone. Intra carries the
	// intra-zone profile. Absent entries mean perfect links, so a matrix
	// without profiles behaves exactly as before they existed.
	Profiles map[int]map[int]LinkProfile
	Intra    LinkProfile
}

// OneWay implements LatencyModel.
func (z ZoneMatrixLatency) OneWay(a, b int) time.Duration {
	if a == b {
		return z.IntraZone
	}
	if m, ok := z.InterZone[a]; ok {
		if d, ok := m[b]; ok {
			return d
		}
	}
	if m, ok := z.InterZone[b]; ok { // symmetric fallback
		if d, ok := m[a]; ok {
			return d
		}
	}
	return z.Default
}

// Profile implements ProfileModel with the same asymmetric-entry lookup and
// symmetric fallback as OneWay.
func (z ZoneMatrixLatency) Profile(a, b int) LinkProfile {
	if a == b {
		return z.Intra
	}
	if m, ok := z.Profiles[a]; ok {
		if p, ok := m[b]; ok {
			return p
		}
	}
	if m, ok := z.Profiles[b]; ok { // symmetric fallback
		if p, ok := m[a]; ok {
			return p
		}
	}
	return LinkProfile{}
}

// NewLAN builds an n-node single-zone cluster with the paper's LAN profile
// (EC2 same-AZ one-way delay ≈ 125µs, i.e. 0.25ms RTT).
func NewLAN(n int) Cluster {
	nodes := make([]ids.ID, 0, n)
	for i := 1; i <= n; i++ {
		nodes = append(nodes, ids.NewID(1, i))
	}
	return Cluster{
		Nodes:   nodes,
		Latency: UniformLatency{Delay: 125 * time.Microsecond},
	}
}

// WAN region indices for NewWAN3, mirroring the paper's Figure 9 deployment.
const (
	ZoneVirginia   = 1
	ZoneCalifornia = 2
	ZoneOregon     = 3
)

// NewWAN3 builds a cluster of n nodes spread round-robin over three zones
// (Virginia, California, Oregon) with representative one-way inter-region
// delays: Virginia↔California ≈ 31ms, Virginia↔Oregon ≈ 35ms,
// California↔Oregon ≈ 10ms (one-way halves of typical RTTs).
func NewWAN3(n int) Cluster {
	nodes := make([]ids.ID, 0, n)
	perZone := make(map[int]int)
	for i := 0; i < n; i++ {
		zone := i%3 + 1
		perZone[zone]++
		nodes = append(nodes, ids.NewID(zone, perZone[zone]))
	}
	return Cluster{
		Nodes: nodes,
		Latency: ZoneMatrixLatency{
			IntraZone: 125 * time.Microsecond,
			InterZone: map[int]map[int]time.Duration{
				ZoneVirginia: {
					ZoneCalifornia: 31 * time.Millisecond,
					ZoneOregon:     35 * time.Millisecond,
				},
				ZoneCalifornia: {
					ZoneOregon: 10 * time.Millisecond,
				},
			},
			Default: 40 * time.Millisecond,
		},
	}
}

// NewWAN3Lossy is NewWAN3 with imperfect links: every inter-region pair
// carries representative jitter and loss (long-haul paths wobble by a couple
// of milliseconds and drop a fraction of a percent of packets), intra-zone
// paths a much smaller dose. Protocol retransmits and client retries must
// mask the losses, so only fault-tolerant scenarios should use it.
func NewWAN3Lossy(n int) Cluster {
	c := NewWAN3(n)
	m := c.Latency.(ZoneMatrixLatency)
	m.Profiles = map[int]map[int]LinkProfile{
		ZoneVirginia: {
			ZoneCalifornia: {Jitter: 2 * time.Millisecond, Loss: 0.003},
			ZoneOregon:     {Jitter: 2500 * time.Microsecond, Loss: 0.004},
		},
		ZoneCalifornia: {
			ZoneOregon: {Jitter: time.Millisecond, Loss: 0.002},
		},
	}
	m.Intra = LinkProfile{Jitter: 50 * time.Microsecond, Loss: 0.0005}
	c.Latency = m
	return c
}

// N returns the cluster size.
func (c Cluster) N() int { return len(c.Nodes) }

// ShardCount normalizes Shards: 0 (unset) and 1 both mean one group.
func (c Cluster) ShardCount() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// ZoneOf returns the zone a node belongs to.
func (c Cluster) ZoneOf(id ids.ID) int {
	if c.Zones != nil {
		if z, ok := c.Zones[id]; ok {
			return z
		}
	}
	return id.Zone()
}

// OneWay returns the modeled one-way delay between two nodes.
func (c Cluster) OneWay(from, to ids.ID) time.Duration {
	if c.Latency == nil {
		return 0
	}
	return c.Latency.OneWay(c.ZoneOf(from), c.ZoneOf(to))
}

// LinkProfileBetween returns the link profile between two nodes' zones, or
// the zero profile when the latency model carries none.
func (c Cluster) LinkProfileBetween(from, to ids.ID) LinkProfile {
	if pm, ok := c.Latency.(ProfileModel); ok {
		return pm.Profile(c.ZoneOf(from), c.ZoneOf(to))
	}
	return LinkProfile{}
}

// ZoneList returns the distinct zones of the membership in ascending order.
func (c Cluster) ZoneList() []int {
	seen := make(map[int]bool)
	var out []int
	for _, n := range c.Nodes {
		if z := c.ZoneOf(n); !seen[z] {
			seen[z] = true
			out = append(out, z)
		}
	}
	sort.Ints(out)
	return out
}

// ZoneNodes returns the members of zone z in membership order.
func (c Cluster) ZoneNodes(z int) []ids.ID {
	var out []ids.ID
	for _, n := range c.Nodes {
		if c.ZoneOf(n) == z {
			out = append(out, n)
		}
	}
	return out
}

// RegionSides splits the membership into (zone z, everyone else) — the two
// sides of a region partition.
func (c Cluster) RegionSides(z int) (in, out []ids.ID) {
	for _, n := range c.Nodes {
		if c.ZoneOf(n) == z {
			in = append(in, n)
		} else {
			out = append(out, n)
		}
	}
	return in, out
}

// Peers returns every node except self.
func (c Cluster) Peers(self ids.ID) []ids.ID {
	out := make([]ids.ID, 0, len(c.Nodes)-1)
	for _, n := range c.Nodes {
		if n != self {
			out = append(out, n)
		}
	}
	return out
}

// Contains reports whether id is a member.
func (c Cluster) Contains(id ids.ID) bool {
	for _, n := range c.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// Validate checks the configuration for internal consistency.
func (c Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("config: empty cluster")
	}
	if c.Shards < 0 {
		return fmt.Errorf("config: negative shard count %d", c.Shards)
	}
	seen := make(map[ids.ID]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.IsZero() {
			return fmt.Errorf("config: zero node ID")
		}
		if seen[n] {
			return fmt.Errorf("config: duplicate node %v", n)
		}
		seen[n] = true
	}
	return nil
}

// GroupLayout partitions a leader's followers into PigPaxos relay groups.
type GroupLayout struct {
	// Groups[i] lists the followers in relay group i. Groups are disjoint
	// and together cover all followers.
	Groups [][]ids.ID
}

// NumGroups returns the number of relay groups.
func (g GroupLayout) NumGroups() int { return len(g.Groups) }

// Sizes returns each group's size.
func (g GroupLayout) Sizes() []int {
	out := make([]int, len(g.Groups))
	for i, grp := range g.Groups {
		out[i] = len(grp)
	}
	return out
}

// GroupOf returns the index of the group containing id, or -1.
func (g GroupLayout) GroupOf(id ids.ID) int {
	for i, grp := range g.Groups {
		for _, m := range grp {
			if m == id {
				return i
			}
		}
	}
	return -1
}

// Validate checks that groups are non-empty, disjoint, and exactly cover
// the given follower set.
func (g GroupLayout) Validate(followers []ids.ID) error {
	want := make(map[ids.ID]bool, len(followers))
	for _, f := range followers {
		want[f] = true
	}
	seen := make(map[ids.ID]bool)
	for i, grp := range g.Groups {
		if len(grp) == 0 {
			return fmt.Errorf("config: relay group %d is empty", i)
		}
		for _, m := range grp {
			if !want[m] {
				return fmt.Errorf("config: node %v in group %d is not a follower", m, i)
			}
			if seen[m] {
				return fmt.Errorf("config: node %v appears in multiple groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(want) {
		return fmt.Errorf("config: groups cover %d of %d followers", len(seen), len(want))
	}
	return nil
}

// EvenGroups partitions followers into r groups of near-equal size,
// preserving follower order (a hash-like static grouping, §3.2).
func EvenGroups(followers []ids.ID, r int) (GroupLayout, error) {
	if r <= 0 || r > len(followers) {
		return GroupLayout{}, fmt.Errorf("config: cannot split %d followers into %d groups", len(followers), r)
	}
	groups := make([][]ids.ID, r)
	base, extra := len(followers)/r, len(followers)%r
	idx := 0
	for i := 0; i < r; i++ {
		sz := base
		if i < extra {
			sz++
		}
		groups[i] = append([]ids.ID(nil), followers[idx:idx+sz]...)
		idx += sz
	}
	return GroupLayout{Groups: groups}, nil
}

// ZoneGroups partitions followers into one relay group per zone (§6.4: in
// geo-distributed setups a natural grouping assigns all nodes of a region to
// one relay group, so only one message crosses the WAN per region).
func ZoneGroups(c Cluster, followers []ids.ID) GroupLayout {
	g, _ := ZoneGroupsWithZones(c, followers)
	return g
}

// ZoneGroupsWithZones is ZoneGroups plus the group↔region correspondence:
// groups come out ordered by ascending zone number and zones[i] names the
// region group i covers, so region-aware callers (chaos schedules targeting
// "the relay of region z") can map zones to group indices 1:1.
func ZoneGroupsWithZones(c Cluster, followers []ids.ID) (GroupLayout, []int) {
	byZone := make(map[int][]ids.ID)
	var order []int
	for _, f := range followers {
		z := c.ZoneOf(f)
		if _, ok := byZone[z]; !ok {
			order = append(order, z)
		}
		byZone[z] = append(byZone[z], f)
	}
	sort.Ints(order)
	groups := make([][]ids.ID, 0, len(order))
	for _, z := range order {
		groups = append(groups, byZone[z])
	}
	return GroupLayout{Groups: groups}, order
}
