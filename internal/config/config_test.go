package config

import (
	"testing"
	"testing/quick"
	"time"

	"pigpaxos/internal/ids"
)

func TestNewLAN(t *testing.T) {
	c := NewLAN(5)
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	d := c.OneWay(c.Nodes[0], c.Nodes[1])
	if d != 125*time.Microsecond {
		t.Errorf("LAN one-way = %v", d)
	}
}

func TestNewWAN3ZoneSpread(t *testing.T) {
	c := NewWAN3(15)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	zones := map[int]int{}
	for _, n := range c.Nodes {
		zones[c.ZoneOf(n)]++
	}
	if len(zones) != 3 {
		t.Fatalf("zones = %v, want 3 zones", zones)
	}
	for z, cnt := range zones {
		if cnt != 5 {
			t.Errorf("zone %d has %d nodes, want 5", z, cnt)
		}
	}
}

func TestWANLatencies(t *testing.T) {
	c := NewWAN3(6)
	va := ids.NewID(ZoneVirginia, 1)
	ca := ids.NewID(ZoneCalifornia, 1)
	or := ids.NewID(ZoneOregon, 1)
	va2 := ids.NewID(ZoneVirginia, 2)
	if d := c.OneWay(va, ca); d != 31*time.Millisecond {
		t.Errorf("VA→CA = %v", d)
	}
	if d := c.OneWay(ca, va); d != 31*time.Millisecond {
		t.Errorf("CA→VA must be symmetric, got %v", d)
	}
	if d := c.OneWay(or, ca); d != 10*time.Millisecond {
		t.Errorf("OR→CA = %v", d)
	}
	if d := c.OneWay(va, va2); d != 125*time.Microsecond {
		t.Errorf("intra-zone = %v", d)
	}
}

func TestZoneMatrixDefault(t *testing.T) {
	m := ZoneMatrixLatency{Default: time.Second}
	if m.OneWay(7, 9) != time.Second {
		t.Error("missing pair should use default")
	}
}

func TestPeers(t *testing.T) {
	c := NewLAN(4)
	p := c.Peers(c.Nodes[0])
	if len(p) != 3 {
		t.Fatalf("peers = %v", p)
	}
	for _, id := range p {
		if id == c.Nodes[0] {
			t.Error("self in peers")
		}
	}
}

func TestContains(t *testing.T) {
	c := NewLAN(3)
	if !c.Contains(c.Nodes[2]) {
		t.Error("member not found")
	}
	if c.Contains(ids.NewID(9, 9)) {
		t.Error("non-member found")
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	c := Cluster{Nodes: []ids.ID{ids.NewID(1, 1), ids.NewID(1, 1)}}
	if c.Validate() == nil {
		t.Error("duplicates must be rejected")
	}
	if (Cluster{}).Validate() == nil {
		t.Error("empty cluster must be rejected")
	}
	if (Cluster{Nodes: []ids.ID{0}}).Validate() == nil {
		t.Error("zero ID must be rejected")
	}
}

func TestEvenGroups(t *testing.T) {
	c := NewLAN(25)
	followers := c.Peers(c.Nodes[0]) // 24 followers
	g, err := EvenGroups(followers, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 3 {
		t.Fatalf("groups = %d", g.NumGroups())
	}
	for _, sz := range g.Sizes() {
		if sz != 8 {
			t.Errorf("group sizes = %v, want all 8", g.Sizes())
		}
	}
	if err := g.Validate(followers); err != nil {
		t.Error(err)
	}
}

func TestEvenGroupsUneven(t *testing.T) {
	c := NewLAN(10)
	followers := c.Peers(c.Nodes[0]) // 9 followers
	g, err := EvenGroups(followers, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := g.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
		if s < 2 || s > 3 {
			t.Errorf("sizes %v not near-even", sizes)
		}
	}
	if total != 9 {
		t.Errorf("total %d != 9", total)
	}
}

func TestEvenGroupsErrors(t *testing.T) {
	if _, err := EvenGroups([]ids.ID{1}, 2); err == nil {
		t.Error("more groups than followers must error")
	}
	if _, err := EvenGroups([]ids.ID{1, 2}, 0); err == nil {
		t.Error("zero groups must error")
	}
}

func TestGroupOf(t *testing.T) {
	g, _ := EvenGroups([]ids.ID{ids.NewID(1, 2), ids.NewID(1, 3), ids.NewID(1, 4)}, 2)
	if g.GroupOf(ids.NewID(1, 2)) != 0 {
		t.Error("1.2 should be in group 0")
	}
	if g.GroupOf(ids.NewID(9, 9)) != -1 {
		t.Error("non-member should be -1")
	}
}

func TestGroupLayoutValidateErrors(t *testing.T) {
	f := []ids.ID{ids.NewID(1, 2), ids.NewID(1, 3)}
	bad := GroupLayout{Groups: [][]ids.ID{{f[0]}, {}}}
	if bad.Validate(f) == nil {
		t.Error("empty group must be rejected")
	}
	dup := GroupLayout{Groups: [][]ids.ID{{f[0]}, {f[0]}}}
	if dup.Validate(f) == nil {
		t.Error("duplicated member must be rejected")
	}
	missing := GroupLayout{Groups: [][]ids.ID{{f[0]}}}
	if missing.Validate(f) == nil {
		t.Error("uncovered follower must be rejected")
	}
	alien := GroupLayout{Groups: [][]ids.ID{{ids.NewID(8, 8)}, {f[0], f[1]}}}
	if alien.Validate(f) == nil {
		t.Error("non-follower member must be rejected")
	}
}

func TestZoneGroups(t *testing.T) {
	c := NewWAN3(9)
	leader := c.Nodes[0]
	g := ZoneGroups(c, c.Peers(leader))
	if g.NumGroups() != 3 {
		t.Fatalf("zone groups = %d, want 3", g.NumGroups())
	}
	if err := g.Validate(c.Peers(leader)); err != nil {
		t.Error(err)
	}
	// Every group must be zone-pure.
	for i, grp := range g.Groups {
		z := c.ZoneOf(grp[0])
		for _, m := range grp {
			if c.ZoneOf(m) != z {
				t.Errorf("group %d mixes zones", i)
			}
		}
	}
}

// Property: EvenGroups always yields a valid partition whose sizes differ by
// at most one.
func TestEvenGroupsProperty(t *testing.T) {
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw)%30 + 1
		r := int(rRaw)%n + 1
		c := NewLAN(n + 1)
		followers := c.Peers(c.Nodes[0])
		g, err := EvenGroups(followers, r)
		if err != nil {
			return false
		}
		if g.Validate(followers) != nil {
			return false
		}
		sizes := g.Sizes()
		minS, maxS := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		return maxS-minS <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Table-driven coverage of ZoneMatrixLatency's lookup rules: direct entries,
// the symmetric fallback for asymmetric matrices, the missing-pair default,
// and the intra-zone path.
func TestZoneMatrixLatencyLookupTable(t *testing.T) {
	m := ZoneMatrixLatency{
		IntraZone: 100 * time.Microsecond,
		InterZone: map[int]map[int]time.Duration{
			1: {2: 30 * time.Millisecond, 3: 35 * time.Millisecond},
			2: {3: 10 * time.Millisecond},
			4: {1: 70 * time.Millisecond}, // asymmetric: only 4→1 present
		},
		Default: 40 * time.Millisecond,
	}
	cases := []struct {
		name string
		a, b int
		want time.Duration
	}{
		{"direct entry", 1, 2, 30 * time.Millisecond},
		{"symmetric fallback", 2, 1, 30 * time.Millisecond},
		{"direct second row", 2, 3, 10 * time.Millisecond},
		{"symmetric fallback second row", 3, 2, 10 * time.Millisecond},
		{"asymmetric entry forward", 4, 1, 70 * time.Millisecond},
		{"asymmetric entry reversed", 1, 4, 70 * time.Millisecond},
		{"missing pair default", 3, 9, 40 * time.Millisecond},
		{"both zones unknown", 8, 9, 40 * time.Millisecond},
		{"intra-zone known", 1, 1, 100 * time.Microsecond},
		{"intra-zone unknown zone", 9, 9, 100 * time.Microsecond},
	}
	for _, tc := range cases {
		if got := m.OneWay(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: OneWay(%d,%d) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
	}
}

// Profile lookups follow the same rules as latencies: direct, symmetric
// fallback, zero-profile default, intra-zone.
func TestZoneMatrixProfileLookup(t *testing.T) {
	p12 := LinkProfile{Jitter: 2 * time.Millisecond, Loss: 0.01}
	m := ZoneMatrixLatency{
		Profiles: map[int]map[int]LinkProfile{1: {2: p12}},
		Intra:    LinkProfile{Jitter: 50 * time.Microsecond},
	}
	if got := m.Profile(1, 2); got != p12 {
		t.Errorf("direct profile = %+v", got)
	}
	if got := m.Profile(2, 1); got != p12 {
		t.Errorf("symmetric profile fallback = %+v", got)
	}
	if got := m.Profile(2, 3); got != (LinkProfile{}) {
		t.Errorf("missing pair should be the zero profile, got %+v", got)
	}
	if got := m.Profile(5, 5); got != m.Intra {
		t.Errorf("intra profile = %+v", got)
	}
}

func TestNewWAN3LossyProfiles(t *testing.T) {
	c := NewWAN3Lossy(9)
	va := ids.NewID(ZoneVirginia, 1)
	va2 := ids.NewID(ZoneVirginia, 2)
	or := ids.NewID(ZoneOregon, 1)
	p := c.LinkProfileBetween(va, or)
	if p.Loss <= 0 || p.Jitter <= 0 {
		t.Errorf("VA↔OR profile should be imperfect, got %+v", p)
	}
	if q := c.LinkProfileBetween(or, va); q != p {
		t.Errorf("profile must be symmetric: %+v vs %+v", p, q)
	}
	intra := c.LinkProfileBetween(va, va2)
	if intra.Loss >= p.Loss || intra.Jitter >= p.Jitter {
		t.Errorf("intra-zone profile %+v should be milder than WAN %+v", intra, p)
	}
	// Latencies are untouched relative to the clean topology.
	if d := c.OneWay(va, or); d != 35*time.Millisecond {
		t.Errorf("lossy VA→OR latency = %v", d)
	}
	// The clean builder must carry no profiles at all: its runs draw
	// nothing from the RNG and stay bit-identical to pre-profile code.
	if p := NewWAN3(9).LinkProfileBetween(va, or); p != (LinkProfile{}) {
		t.Errorf("NewWAN3 should have zero profiles, got %+v", p)
	}
}

func TestZoneListAndRegionSides(t *testing.T) {
	c := NewWAN3(8) // zones 1,2,3 hold 3,3,2 nodes
	if got := c.ZoneList(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("ZoneList = %v", got)
	}
	if got := c.ZoneNodes(ZoneOregon); len(got) != 2 {
		t.Errorf("Oregon nodes = %v", got)
	}
	in, out := c.RegionSides(ZoneVirginia)
	if len(in) != 3 || len(out) != 5 {
		t.Fatalf("RegionSides = %d in, %d out", len(in), len(out))
	}
	for _, n := range in {
		if c.ZoneOf(n) != ZoneVirginia {
			t.Errorf("node %v on the wrong side", n)
		}
	}
	if got := c.ZoneNodes(99); got != nil {
		t.Errorf("empty zone should be nil, got %v", got)
	}
}

// Zone groups come out ordered by ascending zone with the 1:1 group↔region
// correspondence exposed.
func TestZoneGroupsWithZonesSorted(t *testing.T) {
	c := NewWAN3(9)
	leader := c.Nodes[0] // zone 1
	g, zones := ZoneGroupsWithZones(c, c.Peers(leader))
	if len(zones) != 3 || zones[0] != 1 || zones[1] != 2 || zones[2] != 3 {
		t.Fatalf("group zones = %v, want [1 2 3]", zones)
	}
	if err := g.Validate(c.Peers(leader)); err != nil {
		t.Fatal(err)
	}
	for i, grp := range g.Groups {
		for _, m := range grp {
			if c.ZoneOf(m) != zones[i] {
				t.Errorf("group %d (zone %d) contains %v from zone %d", i, zones[i], m, c.ZoneOf(m))
			}
		}
	}
	// The leader's own zone still forms a group (its co-residents).
	if len(g.Groups[0]) != 2 {
		t.Errorf("leader-zone group has %d members, want 2", len(g.Groups[0]))
	}
}
