// Package workload generates the paper's benchmark workloads: commands over
// a fixed key space (1000 distinct 8-byte keys by default) with a uniform or
// zipfian key distribution, a configurable read ratio (the paper's default
// is an even read/write mix, §5.2), and configurable value payload sizes
// (8 bytes by default, up to 1280 in the Figure 12 sweep).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pigpaxos/internal/kvstore"
)

// Distribution selects how keys are drawn.
type Distribution int

const (
	// Uniform draws every key with equal probability (the paper's
	// setting).
	Uniform Distribution = iota
	// Zipfian draws keys with a zipf(θ) skew, for hot-spot experiments.
	Zipfian
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps a flag value ("uniform", "zipfian") to its
// Distribution — the CLI surface for skewed-key sweeps (the shard scenario
// runs both to show hot-shard behavior).
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "zipfian", "zipf":
		return Zipfian, nil
	default:
		return Uniform, fmt.Errorf("workload: unknown distribution %q (want uniform or zipfian)", s)
	}
}

// Config describes a workload.
type Config struct {
	// Keys is the number of distinct keys (default 1000).
	Keys int
	// ReadRatio is the fraction of GET operations (default 0.5).
	ReadRatio float64
	// PayloadSize is the value size in bytes for writes (default 8).
	PayloadSize int
	// Dist selects the key distribution.
	Dist Distribution
	// Theta is the zipfian skew parameter (default 0.99, YCSB-style).
	Theta float64

	// readRatioSet distinguishes an explicit 0 (write-only) from the
	// unset zero value; set via WriteOnly.
	readRatioSet bool
}

func (c *Config) applyDefaults() {
	if c.Keys == 0 {
		c.Keys = 1000
	}
	if c.ReadRatio == 0 && !c.readRatioSet {
		c.ReadRatio = 0.5
	}
	if c.PayloadSize == 0 {
		c.PayloadSize = 8
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
}

// Validate fills unset fields with their defaults and rejects explicit
// values the generators would otherwise silently misbehave on: a ReadRatio
// outside [0,1] skews the mix without erroring, a non-positive key count
// panics deep inside rand.Intn, a negative payload panics in make, and a
// zipfian Theta outside (0,1) diverges the Gray sampler's normalization.
func (c *Config) Validate() error {
	c.applyDefaults()
	if c.Keys <= 0 {
		return fmt.Errorf("workload: non-positive key count %d", c.Keys)
	}
	if c.ReadRatio < 0 || c.ReadRatio > 1 {
		return fmt.Errorf("workload: read ratio %v outside [0,1]", c.ReadRatio)
	}
	if c.PayloadSize < 0 {
		return fmt.Errorf("workload: negative payload size %d", c.PayloadSize)
	}
	if c.Theta <= 0 || c.Theta >= 1 {
		return fmt.Errorf("workload: zipfian theta %v outside (0,1)", c.Theta)
	}
	return nil
}

// Generator produces commands for one client.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipf
	payload []byte
}

// WriteOnly returns a copy of c that issues only writes (the paper's
// Figure 12 payload sweep uses a write-only workload).
func (c Config) WriteOnly() Config {
	c.ReadRatio = 0
	c.readRatioSet = true
	return c
}

// New creates a generator drawing randomness from rng (pass the simulation
// RNG for deterministic workloads). It panics on an invalid Config —
// callers with external input validate via Config.Validate first (the
// load-generator options path does).
func New(cfg Config, rng *rand.Rand) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{cfg: cfg, rng: rng}
	if cfg.Dist == Zipfian {
		g.zipf = newZipf(rng, cfg.Theta, uint64(cfg.Keys))
	}
	g.payload = make([]byte, cfg.PayloadSize)
	for i := range g.payload {
		g.payload[i] = byte(i)
	}
	return g
}

// Next produces the next command for the given client identity and sequence
// number. The returned command shares the generator's payload buffer; the
// state machine copies on apply.
func (g *Generator) Next(clientID, seq uint64) kvstore.Command {
	key := g.key()
	if g.rng.Float64() < g.cfg.ReadRatio {
		return kvstore.Command{Op: kvstore.Get, Key: key, ClientID: clientID, Seq: seq}
	}
	return kvstore.Command{
		Op: kvstore.Put, Key: key, Value: g.payload,
		ClientID: clientID, Seq: seq,
	}
}

func (g *Generator) key() uint64 {
	if g.zipf != nil {
		return g.zipf.next()
	}
	return uint64(g.rng.Intn(g.cfg.Keys))
}

// Arrivals generates a Poisson arrival process at a fixed aggregate rate:
// successive Next calls return independent exponentially distributed
// inter-arrival gaps with mean 1/rate. An open-loop load tester schedules
// request number k at the sum of the first k gaps, regardless of how many
// earlier requests have completed — the arrival process the paper's §5.4
// overload experiments assume. Superposition makes the per-worker split
// exact: W independent Arrivals at rate/W each form a Poisson process at
// the full rate.
type Arrivals struct {
	rng  *rand.Rand
	mean float64 // seconds between arrivals
}

// NewArrivals creates a Poisson arrival generator at rate events/second
// drawing from rng. It panics on a non-positive rate.
func NewArrivals(rate float64, rng *rand.Rand) *Arrivals {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: non-positive arrival rate %v", rate))
	}
	return &Arrivals{rng: rng, mean: 1 / rate}
}

// Next returns the gap until the next arrival.
func (a *Arrivals) Next() time.Duration {
	return time.Duration(a.rng.ExpFloat64() * a.mean * float64(time.Second))
}

// zipf implements the Gray et al. quick zipf sampler (the same construction
// YCSB uses), independent of math/rand.Zipf so the skew matches YCSB θ.
type zipf struct {
	rng             *rand.Rand
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zetaTheta2 float64
}

func newZipf(rng *rand.Rand, theta float64, n uint64) *zipf {
	if n == 0 {
		n = 1
	}
	z := &zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zetaTheta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zetaTheta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipf) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
