package workload

import (
	"math/rand"
	"testing"
	"time"

	"pigpaxos/internal/kvstore"
)

func TestDefaults(t *testing.T) {
	g := New(Config{}, rand.New(rand.NewSource(1)))
	reads, writes := 0, 0
	keys := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		c := g.Next(1, uint64(i))
		if c.Key >= 1000 {
			t.Fatalf("key %d out of default 1000-key space", c.Key)
		}
		keys[c.Key] = true
		if c.IsRead() {
			reads++
		} else {
			writes++
			if len(c.Value) != 8 {
				t.Fatalf("default payload = %d bytes, want 8", len(c.Value))
			}
		}
	}
	if reads < 4500 || reads > 5500 {
		t.Errorf("read ratio: %d/10000 reads, want ≈ 5000", reads)
	}
	if len(keys) < 900 {
		t.Errorf("uniform draw touched only %d of 1000 keys", len(keys))
	}
}

// Validate must reject each out-of-domain field instead of letting the
// generators silently misbehave (or panic deep inside math/rand).
func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative keys", Config{Keys: -5}},
		{"read ratio above 1", Config{ReadRatio: 1.5}},
		{"negative read ratio", Config{ReadRatio: -0.1}},
		{"negative payload", Config{PayloadSize: -1}},
		{"negative theta", Config{Theta: -0.5}},
		{"theta at or above 1", Config{Theta: 1.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.cfg)
			}
		})
	}
}

// The zero Config and an explicit write-only mix stay valid: defaults fill
// unset fields before the domain checks run.
func TestValidateAcceptsDefaultsAndExplicitZeroRatio(t *testing.T) {
	var c Config
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if c.Keys != 1000 || c.ReadRatio != 0.5 || c.PayloadSize != 8 || c.Theta != 0.99 {
		t.Errorf("defaults not applied: %+v", c)
	}
	w := Config{}.WriteOnly()
	if err := w.Validate(); err != nil {
		t.Fatalf("write-only config rejected: %v", err)
	}
	if w.ReadRatio != 0 {
		t.Errorf("explicit zero read ratio rewritten to %v", w.ReadRatio)
	}
}

func TestWriteOnly(t *testing.T) {
	g := New(Config{}.WriteOnly(), rand.New(rand.NewSource(1)))
	for i := 0; i < 1000; i++ {
		if g.Next(1, uint64(i)).IsRead() {
			t.Fatal("write-only workload produced a read")
		}
	}
}

func TestPayloadSize(t *testing.T) {
	g := New(Config{PayloadSize: 1280}.WriteOnly(), rand.New(rand.NewSource(1)))
	c := g.Next(1, 1)
	if len(c.Value) != 1280 {
		t.Errorf("payload = %d, want 1280", len(c.Value))
	}
}

func TestClientIdentityStamped(t *testing.T) {
	g := New(Config{}, rand.New(rand.NewSource(1)))
	c := g.Next(42, 7)
	if c.ClientID != 42 || c.Seq != 7 {
		t.Errorf("identity not stamped: %+v", c)
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	g := New(Config{Keys: 10}, rand.New(rand.NewSource(2)))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next(1, uint64(i)).Key]++
	}
	for k, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("key %d drawn %d times, want ≈ %d", k, c, n/10)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := New(Config{Keys: 1000, Dist: Zipfian}, rand.New(rand.NewSource(3)))
	counts := make(map[uint64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		c := g.Next(1, uint64(i))
		if c.Key >= 1000 {
			t.Fatalf("zipf key %d out of range", c.Key)
		}
		counts[c.Key]++
	}
	// Hot key should dominate: key 0 gets far more than uniform share.
	if counts[0] < 5*n/1000 {
		t.Errorf("zipf hot key drawn %d times, want ≫ uniform %d", counts[0], n/1000)
	}
	if len(counts) < 100 {
		t.Errorf("zipf touched only %d keys, too degenerate", len(counts))
	}
}

func TestZipfDeterministicWithSeed(t *testing.T) {
	mk := func() []uint64 {
		g := New(Config{Keys: 50, Dist: Zipfian}, rand.New(rand.NewSource(9)))
		out := make([]uint64, 100)
		for i := range out {
			out[i] = g.Next(1, uint64(i)).Key
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same key sequence")
		}
	}
}

func TestReadsCarryNoPayload(t *testing.T) {
	g := New(Config{ReadRatio: 1.0, PayloadSize: 1280}, rand.New(rand.NewSource(1)))
	c := g.Next(1, 1)
	if c.Op != kvstore.Get || c.Value != nil {
		t.Errorf("read with payload: %+v", c)
	}
}

func TestParseDistribution(t *testing.T) {
	cases := []struct {
		in   string
		want Distribution
		ok   bool
	}{
		{"uniform", Uniform, true},
		{"zipfian", Zipfian, true},
		{"zipf", Zipfian, true},
		{"gaussian", Uniform, false},
		{"", Uniform, false},
	}
	for _, c := range cases {
		got, err := ParseDistribution(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseDistribution(%q) error = %v, want ok=%v", c.in, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseDistribution(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" {
		t.Fatalf("Distribution.String: got %q, %q", Uniform, Zipfian)
	}
	// Round trip: the flag value a sweep prints parses back to itself.
	for _, d := range []Distribution{Uniform, Zipfian} {
		if got, err := ParseDistribution(d.String()); err != nil || got != d {
			t.Fatalf("round trip of %v failed: %v, %v", d, got, err)
		}
	}
}

func TestArrivalsMeanWithinTolerance(t *testing.T) {
	for _, rate := range []float64{100, 2000, 50000} {
		a := NewArrivals(rate, rand.New(rand.NewSource(7)))
		const n = 200000
		var sum time.Duration
		for i := 0; i < n; i++ {
			d := a.Next()
			if d < 0 {
				t.Fatalf("rate %v: negative inter-arrival %v", rate, d)
			}
			sum += d
		}
		mean := sum.Seconds() / n
		want := 1 / rate
		// ±2% at n=200k: the sample mean's relative stddev is 1/sqrt(n) ≈
		// 0.22%, so this bound is ~9 sigma — deterministic seed, no flakes.
		if mean < want*0.98 || mean > want*1.02 {
			t.Errorf("rate %v: mean inter-arrival %.6fs, want %.6fs ±2%%", rate, mean, want)
		}
	}
}

func TestArrivalsSeededDeterminism(t *testing.T) {
	a1 := NewArrivals(1000, rand.New(rand.NewSource(42)))
	a2 := NewArrivals(1000, rand.New(rand.NewSource(42)))
	for i := 0; i < 1000; i++ {
		if d1, d2 := a1.Next(), a2.Next(); d1 != d2 {
			t.Fatalf("draw %d diverged: %v vs %v", i, d1, d2)
		}
	}
}

func TestArrivalsRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArrivals(0) must panic")
		}
	}()
	NewArrivals(0, rand.New(rand.NewSource(1)))
}
