package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
)

// TestRunScenariosParallelBitIdentical is the tentpole's acceptance
// check: the parallel runner must produce results positionally
// bit-identical to the serial path — every run is an isolated sim, and
// results are collected by index.
func TestRunScenariosParallelBitIdentical(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		opts := scenShort(t, p)
		opts.Seed = 42
		scheds := ExploreSchedules(opts, chaos.ExplorerOpts{Scenarios: 4})

		serial := opts
		serial.Jobs = 1
		parallel := opts
		parallel.Jobs = 4

		a := RunScenarios(serial, scheds)
		b := RunScenarios(parallel, scheds)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: jobs=1 and jobs=4 results differ", p)
		}
	}
}

// TestExploreScenariosMatchesSchedulePath pins the refactor: the one-call
// ExploreScenarios and the split ExploreSchedules+RunScenarios paths are
// the same computation.
func TestExploreScenariosMatchesSchedulePath(t *testing.T) {
	opts := scenShort(t, PigPaxos)
	opts.Seed = 7
	ex := chaos.ExplorerOpts{Scenarios: 3}
	a := ExploreScenarios(opts, ex)
	b := RunScenarios(opts, ExploreSchedules(opts, ex))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ExploreScenarios diverged from ExploreSchedules+RunScenarios")
	}
}

// TestShrinkScenarioMinimizesDeterministically shrinks a real explored
// failure (an injected availability-gap predicate over live sim re-runs)
// twice and requires identical minimal schedules.
func TestShrinkScenarioMinimizesDeterministically(t *testing.T) {
	opts := scenShort(t, PigPaxos)
	opts.Seed = 42
	scheds := ExploreSchedules(opts, chaos.ExplorerOpts{Scenarios: 6})
	results := RunScenarios(opts, scheds)

	const gap = 150 * time.Millisecond
	pick := -1
	for i, r := range results {
		if r.Failure() == "" && r.AvailabilityGap > gap {
			pick = i
			break
		}
	}
	if pick < 0 {
		t.Fatal("no explored schedule opened a gap > 150ms at seed 42 — pick a different seed")
	}
	failing := func(r ScenarioResult) bool { return r.AvailabilityGap > gap }

	a := ShrinkScenario(opts, scheds[pick], failing, 40)
	b := ShrinkScenario(opts, scheds[pick], failing, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shrink is nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Schedule) == 0 || len(a.Schedule) > len(scheds[pick]) {
		t.Fatalf("shrunk schedule has %d events (input %d)", len(a.Schedule), len(scheds[pick]))
	}
	if !failing(RunScenario(opts, a.Schedule)) {
		t.Fatal("shrunk schedule no longer fails the predicate")
	}
}

// TestScenarioResultFailureClassification pins the verdict→kind mapping.
func TestScenarioResultFailureClassification(t *testing.T) {
	r := ScenarioResult{Linearizable: true, AllComplete: true, Converged: true}
	if got := r.Failure(); got != "" {
		t.Fatalf("clean result classified %q", got)
	}
	r.Unrecovered = 2
	if got := r.Failure(); got != FailUnrecovered {
		t.Fatalf("got %q, want %q", got, FailUnrecovered)
	}
	r.Converged = false
	if got := r.Failure(); got != FailDiverged {
		t.Fatalf("got %q, want %q", got, FailDiverged)
	}
	r.AllComplete = false
	if got := r.Failure(); got != FailIncomplete {
		t.Fatalf("got %q, want %q", got, FailIncomplete)
	}
	r.Linearizable = false
	if got := r.Failure(); got != FailLinearizability {
		t.Fatalf("got %q, want %q", got, FailLinearizability)
	}
}

// TestCorpusReplayClean replays every checked-in regression corpus entry
// through a full protocol sim: once-shrunk failures must stay fixed, so
// each replay must come back with no failure verdict.
func TestCorpusReplayClean(t *testing.T) {
	entries, err := chaos.LoadCorpusDir("../chaos/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in corpus is empty")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			opts, err := CorpusOptions(e)
			if err != nil {
				t.Fatal(err)
			}
			r := RunScenario(opts, e.Schedule)
			if f := r.Failure(); f != "" {
				t.Fatalf("replay failed with %q (entry origin: %s)", f, e.Origin)
			}
		})
	}
}

// TestCorpusOptionsRoundTrip pins that a snapshot taken with
// CorpusEntryFor rebuilds into equivalent options via CorpusOptions.
func TestCorpusOptionsRoundTrip(t *testing.T) {
	opts := scenShort(t, EPaxos)
	opts.Seed = 99
	sched := chaos.Schedule{
		{At: 300 * time.Millisecond, Action: chaos.Action{Kind: chaos.CrashLeader, Duration: 200 * time.Millisecond}},
	}
	e := CorpusEntryFor(opts, sched, "rt", "test", "")
	got, err := CorpusOptions(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != EPaxos || got.N != opts.N || got.Seed != 99 ||
		got.Clients != opts.Clients || got.OpsPerClient != 24 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	a := RunScenario(opts, sched)
	b := RunScenario(got, sched)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("rebuilt options do not reproduce the original run")
	}
}
