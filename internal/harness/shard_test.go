package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/shard"
	"pigpaxos/internal/workload"
)

// shardTestOpts is a short sharded run: 12 nodes so 4 shards tile the
// membership disjointly.
func shardTestOpts(p Protocol) ShardedOptions {
	return ShardedOptions{
		ScenarioOptions: ScenarioOptions{
			Options: Options{
				Protocol: p,
				N:        12,
				Clients:  48,
				Warmup:   200 * time.Millisecond,
				Measure:  time.Second,
				Seed:     42,
			},
		},
	}
}

// The tentpole acceptance bar: ≥3× aggregate throughput at S=4 vs S=1 at
// equal aggregate client count.
func TestShardSweepScalesNearLinearly(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		pts := ShardSweep(shardTestOpts(p), []int{1, 4})
		if len(pts) != 2 {
			t.Fatalf("%v: sweep returned %d points", p, len(pts))
		}
		if pts[0].Throughput <= 0 {
			t.Fatalf("%v: S=1 throughput %.0f", p, pts[0].Throughput)
		}
		if pts[1].SpeedupVsMin < 3 {
			t.Errorf("%v: S=4 speedup %.2f× (S=1 %.0f req/s, S=4 %.0f req/s), want ≥3×",
				p, pts[1].SpeedupVsMin, pts[0].Throughput, pts[1].Throughput)
		}
	}
}

// Regression test for the sweep baseline: without an S=1 point the old
// code reported Speedup: 1 for every sample (the baseline was only
// captured at s == 1). The curve must now anchor on the smallest swept S,
// wherever it appears in the list.
func TestShardSweepBaselinesOnSmallestSweptS(t *testing.T) {
	pts := ShardSweep(shardTestOpts(Paxos), []int{4, 2})
	if len(pts) != 2 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	s4, s2 := pts[0], pts[1]
	if s4.Shards != 4 || s2.Shards != 2 {
		t.Fatalf("point order changed: %+v", pts)
	}
	if s2.SpeedupVsMin != 1 {
		t.Errorf("S=2 (smallest swept) speedup %.3f, want exactly 1", s2.SpeedupVsMin)
	}
	if s2.Throughput <= 0 {
		t.Fatalf("S=2 throughput %.0f", s2.Throughput)
	}
	want := s4.Throughput / s2.Throughput
	if s4.SpeedupVsMin != want {
		t.Errorf("S=4 speedup %.3f, want throughput ratio %.3f", s4.SpeedupVsMin, want)
	}
	if s4.SpeedupVsMin <= 1.2 {
		t.Errorf("S=4 vs S=2 speedup %.2f×, expected visible scaling", s4.SpeedupVsMin)
	}
}

// Uniform keys spread acks evenly; the zipfian option concentrates them on
// a hot shard — the skew the sweep exists to expose.
func TestShardedZipfianShowsHotShard(t *testing.T) {
	uni := shardTestOpts(Paxos)
	uni.Shards = 4
	zipf := uni
	zipf.Workload = workload.Config{Dist: workload.Zipfian, Theta: 0.99}

	ru := RunSharded(uni)
	rz := RunSharded(zipf)
	share := func(r ShardedResult) float64 {
		total, hot := 0, 0
		for _, sl := range r.PerShard {
			total += sl.Acked
			if sl.Acked > hot {
				hot = sl.Acked
			}
		}
		return float64(hot) / float64(total)
	}
	us, zs := share(ru), share(rz)
	if us > 0.40 {
		t.Errorf("uniform hot-shard share %.2f, want ≈0.25", us)
	}
	if zs < us+0.10 {
		t.Errorf("zipfian hot-shard share %.2f barely above uniform %.2f; skew not visible", zs, us)
	}
}

// Satellite: per-key linearizability across shards under a leader crash in
// one shard, and zero blast radius outside the shards the victim replicates.
func TestShardedScenarioLeaderCrashIsolated(t *testing.T) {
	opts := shardTestOpts(PigPaxos)
	opts.Shards = 4
	opts.Clients = 16
	opts.OpsPerClient = 24
	opts.Measure = 2 * time.Second
	crashAt := opts.Warmup + opts.Measure/4
	sched := chaos.ShardLeaderCrash(0, crashAt, opts.Measure/2)

	r := RunShardedScenario(opts, sched)
	if !r.Linearizable {
		t.Fatalf("cross-shard history not linearizable (bad key %d)", r.LinBadKey)
	}
	if !r.AllComplete || !r.Converged {
		t.Fatalf("recovery incomplete: complete=%v converged=%v", r.AllComplete, r.Converged)
	}
	if len(r.FaultLog) == 0 || r.FaultLog[0].Kind != chaos.CrashShardLeader {
		t.Fatalf("fault log = %v, want a crash-shard-leader entry", r.FaultLog)
	}
	victim := r.FaultLog[0].Target
	plan := shard.Plan(config.NewLAN(opts.N), opts.Shards, 0)
	touched := map[int]bool{}
	for _, k := range plan.ShardsOn(victim) {
		touched[k] = true
	}
	if len(touched) == 0 {
		t.Fatalf("victim %v replicates no shard?", victim)
	}
	for _, sl := range r.PerShard {
		if touched[sl.Shard] {
			continue
		}
		if sl.Stalls != 0 {
			t.Errorf("shard %d (victim not a member) stalled %d times, gap %v — blast radius escaped",
				sl.Shard, sl.Stalls, sl.AvailabilityGap)
		}
	}
}

// Satellite: sharded runs are a pure function of the seed — two runs at one
// seed are bit-identical, field for field.
func TestShardedScenarioDeterministic(t *testing.T) {
	opts := shardTestOpts(Paxos)
	opts.Shards = 4
	opts.Clients = 12
	opts.OpsPerClient = 18
	sched := chaos.ShardLeaderCrash(1, opts.Warmup+250*time.Millisecond, 500*time.Millisecond)
	a := RunShardedScenario(opts, sched)
	b := RunShardedScenario(opts, sched)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if a.Acked == 0 {
		t.Fatal("determinism check ran an empty scenario")
	}
}

// A faultless sharded scenario must behave like S independent healthy
// clusters: linearizable, complete, converged, and stall-free everywhere.
func TestShardedScenarioHealthy(t *testing.T) {
	opts := shardTestOpts(Paxos)
	opts.Shards = 2
	opts.Clients = 10
	opts.OpsPerClient = 15
	r := RunShardedScenario(opts, nil)
	if !r.Linearizable || !r.AllComplete || !r.Converged {
		t.Fatalf("healthy run: lin=%v complete=%v converged=%v", r.Linearizable, r.AllComplete, r.Converged)
	}
	for _, sl := range r.PerShard {
		if sl.Stalls != 0 {
			t.Errorf("shard %d stalled %d times with no faults scheduled", sl.Shard, sl.Stalls)
		}
		if sl.Acked == 0 {
			t.Errorf("shard %d served nothing; router imbalance?", sl.Shard)
		}
	}
}

// ShardPlacementFlip moves one shard's leader; the flip is not a fault and
// the run must stay clean.
func TestShardedScenarioPlacementFlip(t *testing.T) {
	opts := shardTestOpts(Paxos)
	opts.Shards = 2
	opts.Clients = 10
	opts.OpsPerClient = 15
	opts.Measure = 2 * time.Second
	sched := chaos.ShardFlip(1, 0, opts.Warmup+300*time.Millisecond)
	r := RunShardedScenario(opts, sched)
	if !r.Linearizable || !r.AllComplete || !r.Converged {
		t.Fatalf("flip run: lin=%v complete=%v converged=%v", r.Linearizable, r.AllComplete, r.Converged)
	}
	found := false
	for _, a := range r.FaultLog {
		if a.Kind == chaos.ShardPlacementFlip && a.Shard == 1 && !a.Target.IsZero() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shard-placement-flip in fault log: %v", r.FaultLog)
	}
}

// S=1 must reduce to a single group spanning the whole membership.
func TestShardedSingleShardDegenerate(t *testing.T) {
	opts := shardTestOpts(Paxos)
	opts.Shards = 1
	opts.Clients = 8
	opts.OpsPerClient = 12
	r := RunShardedScenario(opts, nil)
	if r.Shards != 1 || len(r.PerShard) != 1 {
		t.Fatalf("S=1 produced %d shards", r.Shards)
	}
	if len(r.PerShard[0].Members) != opts.N {
		t.Fatalf("S=1 group has %d members, want %d", len(r.PerShard[0].Members), opts.N)
	}
	if !r.Linearizable || !r.Converged {
		t.Fatalf("S=1 run: lin=%v converged=%v", r.Linearizable, r.Converged)
	}
}
