// Sweep support: failure classification for explored scenarios, schedule
// shrinking against live scenario re-runs, and replay of the checked-in
// regression corpus. The chaos package owns the minimizer and the codec;
// this file is the glue that lets them drive full protocol sims.
package harness

import (
	"fmt"
	"reflect"
	"time"

	"pigpaxos/internal/chaos"
)

// Failure kinds reported by ScenarioResult.Failure and recorded in corpus
// entries. FailDeterminism is only produced by ShrinkDeterminismMismatch —
// a single run cannot observe its own nondeterminism.
const (
	FailLinearizability = "linearizability"
	FailIncomplete      = "incomplete"
	FailDiverged        = "diverged"
	FailUnrecovered     = "unrecovered"
	FailDeterminism     = "determinism"
)

// Failure classifies the result: the first failed verdict's kind, or ""
// when the run is clean. Order matches severity — a linearizability
// violation outranks an unfinished client script.
func (r ScenarioResult) Failure() string {
	switch {
	case !r.Linearizable:
		return FailLinearizability
	case !r.AllComplete:
		return FailIncomplete
	case !r.Converged:
		return FailDiverged
	case r.Unrecovered > 0:
		return FailUnrecovered
	}
	return ""
}

// shrinkOptionsFor builds the chaos.ShrinkOptions matching a scenario:
// candidates stay valid for the scenario's cluster and must heal by the
// end of its measurement window.
func shrinkOptionsFor(opts ScenarioOptions, budget int) chaos.ShrinkOptions {
	opts.applyDefaults()
	so := chaos.ShrinkOptions{
		N:       opts.N,
		HealBy:  opts.Warmup + opts.Measure,
		MaxRuns: budget,
	}
	if opts.WAN || opts.WANLossy {
		so.Cluster = opts.cluster()
	}
	return so
}

// ShrinkScenario minimizes a failing schedule against live scenario
// re-runs: the predicate sees the full ScenarioResult of each candidate
// run, so any verdict (or metric threshold) can define "still failing".
// budget bounds re-runs (<=0 uses the chaos default). The input schedule
// is assumed failing; see chaos.Shrink for the guarantees.
func ShrinkScenario(opts ScenarioOptions, sched chaos.Schedule, failing func(ScenarioResult) bool, budget int) chaos.ShrinkResult {
	return chaos.Shrink(sched, func(c chaos.Schedule) bool {
		return failing(RunScenario(opts, c))
	}, shrinkOptionsFor(opts, budget))
}

// ShrinkDeterminismMismatch is ShrinkScenario with the determinism
// predicate: a candidate fails when two identically-seeded runs disagree
// on any result field. Each candidate costs two sim runs.
func ShrinkDeterminismMismatch(opts ScenarioOptions, sched chaos.Schedule, budget int) chaos.ShrinkResult {
	return chaos.Shrink(sched, func(c chaos.Schedule) bool {
		a := RunScenario(opts, c)
		b := RunScenario(opts, c)
		return !reflect.DeepEqual(a, b)
	}, shrinkOptionsFor(opts, budget))
}

// ParseProtocol inverts Protocol.String for corpus entries.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown protocol %q", s)
}

// CorpusOptions rebuilds the ScenarioOptions a corpus entry was recorded
// under, so replaying entry.Schedule reproduces the original run exactly.
func CorpusOptions(e chaos.CorpusEntry) (ScenarioOptions, error) {
	proto, err := ParseProtocol(e.Protocol)
	if err != nil {
		return ScenarioOptions{}, err
	}
	opts := ScenarioOptions{
		Options: Options{
			Protocol:  proto,
			N:         e.N,
			NumGroups: e.Groups,
			Clients:   e.Clients,
			Seed:      e.Seed,
			Warmup:    time.Duration(e.Warmup),
			Measure:   time.Duration(e.Measure),
			WAN:       e.WAN,
		},
		OpsPerClient: e.OpsPerClient,
		Durable:      e.Durable,
	}
	return opts, nil
}

// CorpusEntryFor snapshots the scenario configuration alongside a (shrunk)
// schedule for persistence via chaos.WriteCorpusEntry.
func CorpusEntryFor(opts ScenarioOptions, sched chaos.Schedule, name, origin, failure string) chaos.CorpusEntry {
	opts.applyDefaults()
	return chaos.CorpusEntry{
		Version:      chaos.CodecVersion,
		Name:         name,
		Origin:       origin,
		Failure:      failure,
		Protocol:     opts.Protocol.String(),
		N:            opts.N,
		Clients:      opts.Clients,
		OpsPerClient: opts.OpsPerClient,
		Groups:       opts.NumGroups,
		Seed:         opts.Seed,
		Warmup:       chaos.Dur(opts.Warmup),
		Measure:      chaos.Dur(opts.Measure),
		WAN:          opts.WAN,
		Durable:      opts.Durable,
		Schedule:     sched,
	}
}
