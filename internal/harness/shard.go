// Sharded harness: runs S independent consensus groups multiplexed over one
// simulated cluster and measures aggregate scaling — the "many groups behind
// a key router" axis that lifts the single-log serialization ceiling PigPaxos
// itself cannot (§7's scalability discussion: relay fan-out removes the
// leader's communication bottleneck, sharding removes the sequencing one).
//
// Every physical node keeps ONE netsim endpoint and ONE event loop; each
// shard's replica runs under a shard.Wrap context so its traffic rides
// Sharded envelopes, and a shard.Dispatcher demultiplexes inbound messages.
// The shards therefore share the DES clock and each node's virtual CPU:
// multiplexing is paid for honestly in the cost model.
package harness

import (
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/linearizability"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/shard"
	"pigpaxos/internal/wire"
	"pigpaxos/internal/workload"
)

// ShardedOptions parameterize a sharded run. The embedded ScenarioOptions
// configure everything a single-group scenario would; Shards adds the
// partitioning.
type ShardedOptions struct {
	ScenarioOptions

	// Shards is the number of independent consensus groups (default 1).
	Shards int
	// ShardSize fixes each group's member count; 0 picks max(3, N/Shards):
	// disjoint groups when the cluster divides evenly — the layout where
	// each leader pays no follower duty for other shards and scaling is
	// near-linear — graceful overlap otherwise.
	ShardSize int
	// ZoneLatency optionally seeds leader placement from a per-region
	// latency signal (the WAN harness's per-region client RTTs): shard
	// leaders prefer the lowest-latency zone among their members
	// (shard.PlanPlaced). Nil keeps duty-spreading placement.
	ZoneLatency map[int]time.Duration
}

func (o *ShardedOptions) applyDefaults() {
	if o.N == 0 {
		o.N = 12
	}
	if o.Clients == 0 {
		o.Clients = 48
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	o.ScenarioOptions.applyDefaults()
}

// plan computes the sharding layout the options select.
func (o *ShardedOptions) plan(cc config.Cluster) shard.Map {
	if len(o.ZoneLatency) > 0 {
		return shard.PlanPlaced(cc, o.Shards, o.ShardSize, o.ZoneLatency)
	}
	return shard.Plan(cc, o.Shards, o.ShardSize)
}

// subCluster restricts cc to one shard's membership, keeping the topology.
func subCluster(cc config.Cluster, members []ids.ID) config.Cluster {
	return config.Cluster{
		Nodes:   append([]ids.ID(nil), members...),
		Zones:   cc.Zones,
		Latency: cc.Latency,
		Addrs:   cc.Addrs,
	}
}

// shardedReplicas builds the full replica matrix: per shard, per member, one
// protocol instance running under a shard-tagged context, demultiplexed by a
// per-node Dispatcher installed as the node's single wire handler. Sharded
// runs support the leader-based protocols (Paxos, PigPaxos); EPaxos'
// leaderless instance space is orthogonal to key-space sharding.
func shardedReplicas(
	opts *ShardedOptions, net *netsim.Network, cc config.Cluster, plan shard.Map,
	scenario bool,
) (replicas []map[ids.ID]replica, stores []map[ids.ID]*kvstore.Store) {
	if opts.Protocol != Paxos && opts.Protocol != PigPaxos {
		panic("harness: sharded runs support Paxos and PigPaxos")
	}
	dispatchers := make(map[ids.ID]*shard.Dispatcher, len(cc.Nodes))
	endpoints := make(map[ids.ID]*netsim.Endpoint, len(cc.Nodes))
	for _, id := range cc.Nodes {
		d := shard.NewDispatcher(plan.NumShards())
		dispatchers[id] = d
		endpoints[id] = net.Register(id, d, false)
	}
	replicas = make([]map[ids.ID]replica, plan.NumShards())
	stores = make([]map[ids.ID]*kvstore.Store, plan.NumShards())
	for k, desc := range plan.Shards {
		replicas[k] = make(map[ids.ID]replica, len(desc.Members))
		stores[k] = make(map[ids.ID]*kvstore.Store, len(desc.Members))
		sub := subCluster(cc, desc.Members)
		for _, id := range desc.Members {
			ctx := shard.Wrap(endpoints[id], k)
			pcfg := paxos.Config{Cluster: sub, ID: id, InitialLeader: desc.Leader}
			if scenario {
				pcfg.ElectionTimeout = opts.ElectionTimeout
				pcfg.RetryTimeout = 100 * time.Millisecond
			}
			opts.paxosBatching(&pcfg)
			var rep replica
			var st *kvstore.Store
			switch opts.Protocol {
			case Paxos:
				if opts.MutPaxos != nil {
					opts.MutPaxos(&pcfg)
				}
				r := paxos.New(ctx, pcfg, nil)
				rep, st = r, r.Store()
			case PigPaxos:
				// Clamp the relay fan-out to the sub-group: r relay groups
				// need at least r followers.
				ng := opts.NumGroups
				if max := len(desc.Members) - 1; ng > max {
					ng = max
				}
				if ng < 1 {
					ng = 1
				}
				cfg := pigpaxos.Config{Paxos: pcfg, NumGroups: ng}
				if opts.ZoneGroups {
					cfg.Strategy = pigpaxos.GroupByZone
				}
				if opts.MutPig != nil {
					opts.MutPig(&cfg)
				}
				r := pigpaxos.New(ctx, cfg)
				rep, st = r, r.Core().Store()
			}
			dispatchers[id].Register(k, &trampoline{h: rep.OnMessage})
			replicas[k][id] = rep
			stores[k][id] = st
		}
	}
	return replicas, stores
}

// startSharded schedules every replica's start at t=0 in (shard, membership)
// order — map iteration would leak scheduling nondeterminism.
func startSharded(sim *des.Sim, plan shard.Map, replicas []map[ids.ID]replica) {
	sim.Schedule(0, func() {
		for k, desc := range plan.Shards {
			for _, id := range desc.Members {
				replicas[k][id].Start()
			}
		}
	})
}

// unwrapReply extracts a Reply from a possibly shard-tagged message,
// reporting which shard carried it (0 for untagged).
func unwrapReply(m wire.Msg) (wire.Reply, int, bool) {
	switch sm := m.(type) {
	case *wire.Sharded:
		m = sm.Inner
		if rep, ok := m.(wire.Reply); ok {
			return rep, int(sm.Shard), true
		}
	case wire.Sharded:
		m = sm.Inner
		if rep, ok := m.(wire.Reply); ok {
			return rep, int(sm.Shard), true
		}
	default:
		if rep, ok := m.(wire.Reply); ok {
			return rep, 0, true
		}
	}
	return wire.Reply{}, 0, false
}

// shardClient is the closed-loop benchmark client of a sharded run: one
// request in flight, each routed by key to its shard's leader, with one
// at-most-once session (independent sequence counter) per shard.
type shardClient struct {
	id      uint64
	ep      *netsim.Endpoint
	gen     *workload.Generator
	plan    shard.Map
	leaders []ids.ID // believed leader per shard, updated by redirects
	seqs    []uint64

	cur      kvstore.Command
	curShard int
	issuedAt time.Duration

	hist       *metrics.Histogram
	completed  *metrics.Counter
	shardAcked []metrics.Counter
	warmupEnd  time.Duration
	windowEnd  time.Duration
	stop       bool
}

func (c *shardClient) next() {
	if c.stop {
		return
	}
	cmd := c.gen.Next(c.id, 0)
	k := c.plan.Router.Shard(cmd.Key)
	c.seqs[k]++
	cmd.Seq = c.seqs[k]
	c.cur, c.curShard = cmd, k
	c.issuedAt = c.ep.Now()
	c.ep.Send(c.leaders[k], wire.Sharded{Shard: uint16(k), Inner: wire.Request{Cmd: cmd}})
}

// OnMessage handles shard-tagged replies and redirects.
func (c *shardClient) OnMessage(from ids.ID, m wire.Msg) {
	rep, k, ok := unwrapReply(m)
	if !ok || k != c.curShard || rep.Seq != c.cur.Seq {
		return
	}
	if !rep.OK {
		if !rep.Leader.IsZero() {
			c.leaders[k] = rep.Leader
			c.ep.Send(rep.Leader, wire.Sharded{Shard: uint16(k), Inner: wire.Request{Cmd: c.cur}})
			return
		}
		c.next()
		return
	}
	now := c.ep.Now()
	if now >= c.warmupEnd && now < c.windowEnd {
		c.hist.Observe(now - c.issuedAt)
		c.completed.Inc()
		c.shardAcked[k].Inc()
	}
	c.next()
}

// ShardLoad is one shard's slice of a sharded throughput run.
type ShardLoad struct {
	Shard int
	// Leader is the shard's planned leader.
	Leader ids.ID
	// Acked counts in-window acknowledgements routed to this shard; with a
	// zipfian workload the spread across shards shows the hot shard.
	Acked int
	// Throughput is this shard's in-window acks per second.
	Throughput float64
	// LeaderUtil is the leader node's CPU utilization over the run. Nodes
	// hosting several shards report the same (whole-node) figure for each.
	LeaderUtil float64
}

// ShardedResult is a sharded throughput run's measurement.
type ShardedResult struct {
	Protocol   Protocol
	N          int
	Shards     int
	Clients    int
	Throughput float64 // aggregate in-window acks per second
	Latency    metrics.Summary
	Messages   uint64
	PerShard   []ShardLoad
}

// RunSharded executes one sharded throughput experiment: S consensus groups
// behind the key router, closed-loop clients routing by key at equal
// aggregate client count regardless of S (so sweeps compare shard counts at
// fixed offered load).
func RunSharded(opts ShardedOptions) ShardedResult {
	opts.applyDefaults()
	sim := des.New(opts.Seed)
	cc := opts.cluster()
	net := netsim.New(sim, cc, opts.Net)
	plan := opts.plan(cc)

	replicas, _ := shardedReplicas(&opts, net, cc, plan, false)
	_ = replicas

	hist := metrics.NewHistogram()
	var completed metrics.Counter
	shardAcked := make([]metrics.Counter, plan.NumShards())
	warmupEnd := opts.Warmup
	windowEnd := opts.Warmup + opts.Measure

	leaders := plan.Leaders()
	clients := make([]*shardClient, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		cl := &shardClient{
			id:         uint64(i + 1),
			gen:        workload.New(opts.Workload, sim.Rand()),
			plan:       plan,
			leaders:    append([]ids.ID(nil), leaders...),
			seqs:       make([]uint64, plan.NumShards()),
			hist:       hist,
			completed:  &completed,
			shardAcked: shardAcked,
			warmupEnd:  warmupEnd,
			windowEnd:  windowEnd,
		}
		cl.ep = net.Register(ids.NewID(cc.ZoneOf(cc.Nodes[0]), 1000+i), cl, true)
		clients[i] = cl
	}

	startSharded(sim, plan, replicas)
	for i, cl := range clients {
		cl := cl
		sim.Schedule(time.Duration(i)*50*time.Microsecond+time.Millisecond, cl.next)
	}
	sim.Run(windowEnd)
	for _, cl := range clients {
		cl.stop = true
	}

	res := ShardedResult{
		Protocol:   opts.Protocol,
		N:          opts.N,
		Shards:     plan.NumShards(),
		Clients:    opts.Clients,
		Throughput: float64(completed.Value()) / opts.Measure.Seconds(),
		Latency:    hist.Snapshot(),
		Messages:   net.MessagesSent(),
	}
	wall := windowEnd.Seconds()
	for k, desc := range plan.Shards {
		acked := int(shardAcked[k].Value())
		res.PerShard = append(res.PerShard, ShardLoad{
			Shard:      k,
			Leader:     desc.Leader,
			Acked:      acked,
			Throughput: float64(acked) / opts.Measure.Seconds(),
			LeaderUtil: net.Endpoint(desc.Leader).BusyTotal().Seconds() / wall,
		})
	}
	return res
}

// shardScenClient is the scenario client of a sharded run: a fixed recorded
// script whose operations route by key, with per-shard sessions, per-shard
// retry targets (the shard's members, leader first) and per-shard
// availability tracking.
type shardScenClient struct {
	id      uint64
	ep      *netsim.Endpoint
	plan    shard.Map
	targets [][]ids.ID // per shard, leader first
	rr      []int      // per-shard target cursor
	retry   time.Duration

	script   []kvstore.Command
	opShard  []int // per-op shard, precomputed
	pos      int
	seqs     []uint64
	started  time.Duration
	timer    node.Timer
	think    time.Duration
	awaiting bool
	done     bool

	hist      *linearizability.History
	gaps      *metrics.GapTracker
	shardGaps []*metrics.GapTracker
	lat       *metrics.Histogram
	inWindow  *metrics.Counter
	warmupEnd time.Duration
	windowEnd time.Duration
}

func (c *shardScenClient) stopTimer() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

func (c *shardScenClient) send(k int) {
	to := c.targets[k][c.rr[k]%len(c.targets[k])]
	c.ep.Send(to, wire.Sharded{Shard: uint16(k), Inner: wire.Request{Cmd: c.script[c.pos]}})
}

func (c *shardScenClient) armRetry() {
	if c.retry <= 0 {
		return
	}
	pos := c.pos
	c.timer = c.ep.After(c.retry, func() {
		if c.done || !c.awaiting || c.pos != pos {
			return
		}
		k := c.opShard[c.pos]
		c.rr[k]++
		c.send(k)
		c.armRetry()
	})
}

func (c *shardScenClient) next() {
	c.stopTimer()
	if c.pos >= len(c.script) {
		c.done = true
		return
	}
	k := c.opShard[c.pos]
	cmd := c.script[c.pos]
	c.seqs[k]++
	cmd.ClientID = c.id
	cmd.Seq = c.seqs[k]
	c.script[c.pos] = cmd
	c.started = c.ep.Now()
	c.awaiting = true
	c.send(k)
	c.armRetry()
}

// OnMessage handles shard-tagged replies: acks recorded into the shared
// history and the op's shard trackers, redirects re-aimed within the shard,
// silence left to the retry timer.
func (c *shardScenClient) OnMessage(from ids.ID, m wire.Msg) {
	if c.done || !c.awaiting || c.pos >= len(c.script) {
		return
	}
	k := c.opShard[c.pos]
	rep, repShard, ok := unwrapReply(m)
	if !ok || repShard != k || rep.Seq != c.seqs[k] {
		return
	}
	if !rep.OK {
		if !rep.Leader.IsZero() {
			for i, t := range c.targets[k] {
				if t == rep.Leader {
					c.rr[k] = i
					break
				}
			}
			c.ep.Send(rep.Leader, wire.Sharded{Shard: uint16(k), Inner: wire.Request{Cmd: c.script[c.pos]}})
		}
		return
	}
	cmd := c.script[c.pos]
	now := c.ep.Now()
	c.awaiting = false
	op := linearizability.Op{
		Key:    cmd.Key,
		Start:  c.started,
		End:    now,
		Client: c.id,
	}
	if cmd.Op == kvstore.Get {
		op.Kind = linearizability.Read
		if rep.Exists {
			op.Output = string(rep.Value)
		}
	} else {
		op.Kind = linearizability.Write
		op.Input = string(cmd.Value)
	}
	c.hist.Add(op)
	c.gaps.Record(now)
	c.shardGaps[k].Record(now)
	c.lat.Observe(now - c.started)
	if now >= c.warmupEnd && now < c.windowEnd {
		c.inWindow.Inc()
	}
	c.pos++
	c.stopTimer()
	if c.think > 0 {
		c.ep.After(c.think, c.next)
	} else {
		c.next()
	}
}

// shardProbe is a per-shard availability probe: one closed-loop client per
// shard issuing paced reads on keys that shard owns. Scripted clients are
// closed-loop ACROSS shards — one stuck on a crashed shard stops offering
// load to healthy shards, which would read as a stall there. Probes decouple
// the measurement: a shard's GapTracker goes silent only when the shard
// itself cannot serve. Probe reads go through the log like any command (so
// they measure commit availability), but stay out of the latency histogram,
// throughput counters and linearizability history — they are measurement,
// not workload.
type shardProbe struct {
	id       uint64
	ep       *netsim.Endpoint
	shardIdx int
	keys     []uint64 // rotation of probe keys this shard owns
	ki       int
	seq      uint64
	targets  []ids.ID
	rr       int
	retry    time.Duration
	interval time.Duration
	gaps     *metrics.GapTracker

	cur      kvstore.Command
	awaiting bool
	timer    node.Timer
}

func (p *shardProbe) stopTimer() {
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
}

func (p *shardProbe) send() {
	to := p.targets[p.rr%len(p.targets)]
	p.ep.Send(to, wire.Sharded{Shard: uint16(p.shardIdx), Inner: wire.Request{Cmd: p.cur}})
}

func (p *shardProbe) armRetry() {
	if p.retry <= 0 {
		return
	}
	seq := p.seq
	p.timer = p.ep.After(p.retry, func() {
		if !p.awaiting || p.seq != seq {
			return
		}
		p.rr++
		p.send()
		p.armRetry()
	})
}

func (p *shardProbe) next() {
	p.stopTimer()
	p.seq++
	p.cur = kvstore.Command{
		Op: kvstore.Get, Key: p.keys[p.ki%len(p.keys)],
		ClientID: p.id, Seq: p.seq,
	}
	p.ki++
	p.awaiting = true
	p.send()
	p.armRetry()
}

func (p *shardProbe) OnMessage(from ids.ID, m wire.Msg) {
	rep, k, ok := unwrapReply(m)
	if !ok || k != p.shardIdx || rep.Seq != p.seq || !p.awaiting {
		return
	}
	if !rep.OK {
		if !rep.Leader.IsZero() {
			for i, t := range p.targets {
				if t == rep.Leader {
					p.rr = i
					break
				}
			}
			p.send()
		}
		return
	}
	p.awaiting = false
	p.gaps.Record(p.ep.Now())
	p.stopTimer()
	p.ep.After(p.interval, p.next)
}

// probeKeys picks n keys the router assigns to shard k, scanning upward from
// `from` so probe keys never collide with the scripted keyspace.
func probeKeys(r shard.Router, k, n int, from uint64) []uint64 {
	out := make([]uint64, 0, n)
	for key := from; len(out) < n; key++ {
		if r.Shard(key) == k {
			out = append(out, key)
		}
	}
	return out
}

// shardResolver resolves chaos targets against live per-shard state. It
// implements chaos.Resolver/Placer (shard 0 stands in for "the" leader) plus
// the ShardResolver/ShardPlacer extensions.
type shardResolver struct {
	cc       config.Cluster
	plan     shard.Map
	net      *netsim.Network
	replicas []map[ids.ID]replica
}

// ShardLeader implements chaos.ShardResolver: the first member (membership
// order) whose shard-k replica believes it leads.
func (sr *shardResolver) ShardLeader(k int) ids.ID {
	if k < 0 || k >= len(sr.plan.Shards) {
		return 0
	}
	for _, id := range sr.plan.Shards[k].Members {
		switch r := sr.replicas[k][id].(type) {
		case *paxos.Replica:
			if r.IsLeader() {
				return id
			}
		case *pigpaxos.Replica:
			if r.Core().IsLeader() {
				return id
			}
		}
	}
	return 0
}

// Leader implements chaos.Resolver as shard 0's leader.
func (sr *shardResolver) Leader() ids.ID { return sr.ShardLeader(0) }

// Relay implements chaos.Resolver against shard 0's relay plane.
func (sr *shardResolver) Relay(g int) ids.ID {
	leader := sr.ShardLeader(0)
	if leader.IsZero() {
		return 0
	}
	pr, ok := sr.replicas[0][leader].(*pigpaxos.Replica)
	if !ok {
		return 0
	}
	if relay := pr.LastRelay(g); !relay.IsZero() {
		return relay
	}
	layout := pr.Layout()
	if g >= 0 && g < layout.NumGroups() && len(layout.Groups[g]) > 0 {
		return layout.Groups[g][0]
	}
	return 0
}

// CampaignShardFrom implements chaos.ShardPlacer: the first live non-leader
// member of shard k in the zone (zone 0 = any) campaigns for that shard's
// leadership.
func (sr *shardResolver) CampaignShardFrom(k, zone int) ids.ID {
	if k < 0 || k >= len(sr.plan.Shards) {
		return 0
	}
	cur := sr.ShardLeader(k)
	for _, id := range sr.plan.Shards[k].Members {
		if id == cur || sr.net.Crashed(id) {
			continue
		}
		if zone != 0 && sr.cc.ZoneOf(id) != zone {
			continue
		}
		switch r := sr.replicas[k][id].(type) {
		case *paxos.Replica:
			r.Campaign()
			return id
		case *pigpaxos.Replica:
			r.Core().Campaign()
			return id
		}
	}
	return 0
}

// CampaignFrom implements chaos.Placer against shard 0.
func (sr *shardResolver) CampaignFrom(zone int) ids.ID {
	return sr.CampaignShardFrom(0, zone)
}

// ShardSlice is one shard's slice of a sharded scenario: what service looked
// like for the keys it owns.
type ShardSlice struct {
	Shard int
	// Members and Leader echo the plan (Leader is the planned initial
	// leader, not the post-fault one).
	Members []ids.ID
	Leader  ids.ID
	// Acked counts operations acknowledged for this shard's keys.
	Acked int
	// AvailabilityGap is the longest ack silence for this shard's keys,
	// GapStart its opening instant, and Stalls how many distinct gaps of at
	// least 250ms the shard suffered. The blast-radius criterion: a crash
	// of shard k's leader must leave Stalls at zero for every shard the
	// victim does not replicate.
	AvailabilityGap time.Duration
	GapStart        time.Duration
	Stalls          int
	// Converged reports the shard's members ended bit-identical.
	Converged bool
}

// ShardedScenarioResult is a sharded scenario's measurement and verdicts.
// Like ScenarioResult it contains only virtual-time-derived values, so two
// runs at one seed are asserted bit-identical.
type ShardedScenarioResult struct {
	Protocol Protocol
	N        int
	Shards   int
	Clients  int

	Acked      int
	Throughput float64
	Latency    metrics.Summary

	// Linearizable is the checker's verdict over the shared cross-shard
	// history: per-key linearizability must hold regardless of which shard
	// served which key.
	Linearizable bool
	LinBadKey    uint64
	LinChecked   int
	LinExplored  int
	AllComplete  bool
	// Converged reports every shard's members ended bit-identical.
	Converged bool

	Messages  uint64
	Delivered uint64
	Dropped   uint64

	PerShard []ShardSlice
	FaultLog []chaos.Applied
}

// RunShardedScenario executes a sharded run under a chaos schedule: scripted
// clients route by key across S groups, every completed operation lands in
// one shared linearizability history, and each shard's availability is
// tracked separately so fault blast radius is measurable per shard.
func RunShardedScenario(opts ShardedOptions, sched chaos.Schedule) ShardedScenarioResult {
	opts.applyDefaults()
	sim := des.New(opts.Seed)
	cc := opts.cluster()
	net := netsim.New(sim, cc, opts.Net)
	plan := opts.plan(cc)

	replicas, stores := shardedReplicas(&opts, net, cc, plan, true)

	hist := &linearizability.History{}
	gaps := &metrics.GapTracker{}
	lat := metrics.NewHistogram()
	var inWindow metrics.Counter
	shardGaps := make([]*metrics.GapTracker, plan.NumShards())
	for k := range shardGaps {
		shardGaps[k] = &metrics.GapTracker{}
	}
	warmupEnd := opts.Warmup
	windowEnd := opts.Warmup + opts.Measure

	// Per-shard retry targets: members with the planned leader first, the
	// rest in membership order.
	targets := make([][]ids.ID, plan.NumShards())
	for k, desc := range plan.Shards {
		targets[k] = append(targets[k], desc.Leader)
		for _, id := range desc.Members {
			if id != desc.Leader {
				targets[k] = append(targets[k], id)
			}
		}
	}

	clients := make([]*shardScenClient, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		script := scenScript(i, opts.OpsPerClient, opts.ProbeKeys)
		opShard := make([]int, len(script))
		for j, cmd := range script {
			opShard[j] = plan.Router.Shard(cmd.Key)
		}
		cl := &shardScenClient{
			id:        uint64(i + 1),
			plan:      plan,
			targets:   targets,
			rr:        make([]int, plan.NumShards()),
			retry:     opts.ClientRetry,
			script:    script,
			opShard:   opShard,
			seqs:      make([]uint64, plan.NumShards()),
			think:     opts.ThinkTime,
			hist:      hist,
			gaps:      gaps,
			shardGaps: shardGaps,
			lat:       lat,
			inWindow:  &inWindow,
			warmupEnd: warmupEnd,
			windowEnd: windowEnd,
		}
		cl.ep = net.Register(ids.NewID(cc.ZoneOf(cc.Nodes[0]), 1000+i), cl, true)
		clients[i] = cl
	}

	// One availability probe per shard, reading dedicated keys above the
	// scripted keyspace at a cadence well under the stall threshold.
	probes := make([]*shardProbe, plan.NumShards())
	for k := range plan.Shards {
		pr := &shardProbe{
			id:       uint64(opts.Clients + 1 + k),
			shardIdx: k,
			keys:     probeKeys(plan.Router, k, 8, uint64(opts.ProbeKeys)),
			targets:  targets[k],
			retry:    opts.ClientRetry,
			interval: 25 * time.Millisecond,
			gaps:     shardGaps[k],
		}
		pr.ep = net.Register(ids.NewID(cc.ZoneOf(cc.Nodes[0]), 2000+k), pr, true)
		probes[k] = pr
	}

	resolver := &shardResolver{cc: cc, plan: plan, net: net, replicas: replicas}
	injector := chaos.Apply(sim, net, sched, resolver)

	startSharded(sim, plan, replicas)
	for i, cl := range clients {
		cl := cl
		sim.Schedule(time.Duration(i)*50*time.Microsecond+time.Millisecond, cl.next)
	}
	for k, pr := range probes {
		pr := pr
		sim.Schedule(time.Duration(k)*75*time.Microsecond+time.Millisecond, pr.next)
	}

	sim.Run(windowEnd)
	drainEnd := windowEnd + opts.Drain
	for sim.Now() < drainEnd {
		allDone := true
		for _, cl := range clients {
			if !cl.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		next := sim.Now() + 100*time.Millisecond
		if next > drainEnd {
			next = drainEnd
		}
		sim.Run(next)
	}
	shardConverged := func(k int) bool {
		members := plan.Shards[k].Members
		first := stores[k][members[0]]
		for _, id := range members[1:] {
			st := stores[k][id]
			if st.Checksum() != first.Checksum() || st.Applied() != first.Applied() {
				return false
			}
		}
		return true
	}
	converged := func() bool {
		for k := range plan.Shards {
			if !shardConverged(k) {
				return false
			}
		}
		return true
	}
	sim.Run(sim.Now() + 500*time.Millisecond)
	for end := sim.Now() + 4*time.Second; sim.Now() < end && !converged(); {
		sim.Run(sim.Now() + 250*time.Millisecond)
	}

	res := ShardedScenarioResult{
		Protocol:   opts.Protocol,
		N:          opts.N,
		Shards:     plan.NumShards(),
		Clients:    opts.Clients,
		Acked:      gaps.Count(),
		Throughput: float64(inWindow.Value()) / opts.Measure.Seconds(),
		Latency:    lat.Snapshot(),
		Messages:   net.MessagesSent(),
		Delivered:  net.MessagesDelivered(),
		Dropped:    net.MessagesDropped(),
		FaultLog:   injector.Log(),
	}
	res.AllComplete = true
	for _, cl := range clients {
		if !cl.done {
			res.AllComplete = false
		}
	}
	res.Converged = true
	for k, desc := range plan.Shards {
		sl := ShardSlice{
			Shard:     k,
			Members:   desc.Members,
			Leader:    desc.Leader,
			Acked:     shardGaps[k].Count(),
			Stalls:    shardGaps[k].GapsOver(regionStallThreshold),
			Converged: shardConverged(k),
		}
		sl.GapStart, sl.AvailabilityGap = shardGaps[k].MaxGap()
		if !sl.Converged {
			res.Converged = false
		}
		res.PerShard = append(res.PerShard, sl)
	}
	lin := hist.Check()
	res.Linearizable = lin.OK
	res.LinBadKey = lin.BadKey
	res.LinChecked = lin.Checked
	res.LinExplored = lin.Explored
	return res
}

// ShardPoint is one sample of a shard-count sweep.
type ShardPoint struct {
	Shards     int
	Throughput float64
	// SpeedupVsMin is aggregate throughput relative to the smallest swept
	// shard count (S=1 when the sweep includes it). It used to be named
	// Speedup and silently report 1.0 for every point whenever the sweep
	// lacked an S=1 sample — the baseline was only captured at s == 1.
	SpeedupVsMin float64
	MeanLatMs    float64
	P99Ms        float64
	// HotShardShare is the busiest shard's fraction of aggregate acks —
	// 1/S under a uniform workload, rising toward the zipfian skew's head
	// under a hot-key workload.
	HotShardShare float64
}

// ShardSweep runs RunSharded across shard counts at equal aggregate client
// count and reports the scaling curve, baselined against the smallest
// swept shard count. The acceptance bar for the sharding layer is
// SpeedupVsMin ≥ 3 at Shards=4 (with a sweep starting at S=1).
func ShardSweep(opts ShardedOptions, shardCounts []int) []ShardPoint {
	out := make([]ShardPoint, 0, len(shardCounts))
	for _, s := range shardCounts {
		o := opts
		o.Shards = s
		r := RunSharded(o)
		p := ShardPoint{
			Shards:       s,
			Throughput:   r.Throughput,
			SpeedupVsMin: 1,
			MeanLatMs:    float64(r.Latency.Mean.Microseconds()) / 1000,
			P99Ms:        float64(r.Latency.P99.Microseconds()) / 1000,
		}
		total := 0
		hot := 0
		for _, sl := range r.PerShard {
			total += sl.Acked
			if sl.Acked > hot {
				hot = sl.Acked
			}
		}
		if total > 0 {
			p.HotShardShare = float64(hot) / float64(total)
		}
		out = append(out, p)
	}
	// Baseline after the fact so the sweep order cannot matter: the
	// smallest swept S anchors the curve wherever it appears in the list.
	minIdx := -1
	for i, p := range out {
		if minIdx < 0 || p.Shards < out[minIdx].Shards {
			minIdx = i
		}
	}
	if minIdx >= 0 && out[minIdx].Throughput > 0 {
		base := out[minIdx].Throughput
		for i := range out {
			out[i].SpeedupVsMin = out[i].Throughput / base
		}
	}
	return out
}

// DefaultShardSweep is the shard-count ladder of the shard scenario.
var DefaultShardSweep = []int{1, 2, 4, 8}
