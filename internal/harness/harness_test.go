package harness

import (
	"testing"
	"time"

	"pigpaxos/internal/workload"
)

func short(t *testing.T) Options {
	t.Helper()
	return Options{
		Warmup:  200 * time.Millisecond,
		Measure: time.Second,
	}
}

func TestPaxosSmallClusterServes(t *testing.T) {
	o := short(t)
	o.Protocol = Paxos
	o.N = 5
	o.Clients = 20
	r := Run(o)
	if r.Throughput < 100 {
		t.Fatalf("implausibly low throughput: %v", r)
	}
	if r.Latency.Count == 0 || r.Latency.Mean <= 0 {
		t.Fatalf("no latency samples: %v", r)
	}
}

func TestPigPaxosSmallClusterServes(t *testing.T) {
	o := short(t)
	o.Protocol = PigPaxos
	o.N = 5
	o.NumGroups = 2
	o.Clients = 20
	r := Run(o)
	if r.Throughput < 100 {
		t.Fatalf("implausibly low throughput: %v", r)
	}
}

func TestEPaxosSmallClusterServes(t *testing.T) {
	o := short(t)
	o.Protocol = EPaxos
	o.N = 5
	o.Clients = 20
	r := Run(o)
	if r.Throughput < 100 {
		t.Fatalf("implausibly low throughput: %v", r)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	o := short(t)
	o.Protocol = PigPaxos
	o.N = 9
	o.NumGroups = 3
	o.Clients = 30
	a, b := Run(o), Run(o)
	if a.Throughput != b.Throughput || a.Latency.Mean != b.Latency.Mean {
		t.Errorf("same seed gave different results: %v vs %v", a, b)
	}
	o.Seed = 43
	c := Run(o)
	if c.Throughput == a.Throughput && c.Messages == a.Messages {
		t.Error("different seed should perturb the run")
	}
}

// The paper's headline (Figure 8): at 25 nodes PigPaxos ≫ Paxos > EPaxos,
// with PigPaxos at least 3× Paxos.
func TestHeadlineShape25Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol sweep")
	}
	mk := func(p Protocol, clients int) float64 {
		o := short(t)
		o.Protocol = p
		o.N = 25
		o.Clients = clients
		o.NumGroups = 3
		return Run(o).Throughput
	}
	paxosTP := mk(Paxos, 200)
	pigTP := mk(PigPaxos, 200)
	epaxosTP := mk(EPaxos, 200)
	t.Logf("25 nodes @200 clients: paxos=%.0f pig=%.0f epaxos=%.0f", paxosTP, pigTP, epaxosTP)
	if pigTP < 3*paxosTP {
		t.Errorf("PigPaxos %.0f should be ≥ 3× Paxos %.0f", pigTP, paxosTP)
	}
	if epaxosTP >= paxosTP {
		t.Errorf("EPaxos %.0f should saturate below Paxos %.0f on the 1000-key workload", epaxosTP, paxosTP)
	}
}

func TestLatencyOrderingAtLowLoad(t *testing.T) {
	// At low load Paxos has lower latency than PigPaxos (one fewer hop);
	// the paper reports ~30% higher initial latency for PigPaxos (§5.4).
	mk := func(p Protocol) time.Duration {
		o := short(t)
		o.Protocol = p
		o.N = 25
		o.Clients = 1 // one closed-loop client = unloaded system
		o.NumGroups = 3
		return Run(o).Latency.Mean
	}
	paxosLat, pigLat := mk(Paxos), mk(PigPaxos)
	if pigLat <= paxosLat {
		t.Errorf("PigPaxos low-load latency %v should exceed Paxos %v", pigLat, paxosLat)
	}
	if float64(pigLat) > 2.5*float64(paxosLat) {
		t.Errorf("PigPaxos latency %v is implausibly high vs Paxos %v", pigLat, paxosLat)
	}
}

func TestCurveMonotoneClients(t *testing.T) {
	o := short(t)
	o.Protocol = Paxos
	o.N = 5
	pts := Curve(o, []int{5, 50})
	if len(pts) != 2 {
		t.Fatal("curve points missing")
	}
	if pts[1].Throughput <= pts[0].Throughput {
		t.Errorf("more clients should raise throughput before saturation: %+v", pts)
	}
	if pts[0].LatencyMs <= 0 {
		t.Error("latency not recorded")
	}
}

func TestFaultWindowSeries(t *testing.T) {
	o := Options{
		Protocol:    PigPaxos,
		N:           9,
		NumGroups:   3,
		Clients:     50,
		Warmup:      200 * time.Millisecond,
		Measure:     3 * time.Second,
		SampleWidth: 500 * time.Millisecond,
		CrashNode:   5,
		CrashAt:     1200 * time.Millisecond,
		RecoverAt:   2200 * time.Millisecond,
	}
	r := Run(o)
	if len(r.Series) < 4 {
		t.Fatalf("series too short: %d points", len(r.Series))
	}
	// Throughput must stay nonzero through the fault window.
	for _, p := range r.Series[:len(r.Series)-1] {
		if p.Rate <= 0 {
			t.Errorf("throughput collapsed to zero at %v", p.Start)
		}
	}
}

func TestWriteOnlyPayloadWorkload(t *testing.T) {
	o := short(t)
	o.Protocol = PigPaxos
	o.N = 9
	o.NumGroups = 3
	o.Clients = 30
	o.Workload = workload.Config{PayloadSize: 1280}.WriteOnly()
	r := Run(o)
	if r.Throughput < 100 {
		t.Fatalf("payload workload broke the run: %v", r)
	}
}

func TestWANRunServes(t *testing.T) {
	o := short(t)
	o.Protocol = PigPaxos
	o.N = 15
	o.WAN = true
	o.ZoneGroups = true
	o.Clients = 50
	r := Run(o)
	if r.Throughput < 50 {
		t.Fatalf("WAN run: %v", r)
	}
	// Cross-region commit: latency must reflect WAN RTTs (tens of ms).
	if r.Latency.Mean < 30*time.Millisecond {
		t.Errorf("WAN latency %v implausibly low", r.Latency.Mean)
	}
}

func TestMaxThroughputPicksBest(t *testing.T) {
	o := short(t)
	o.Protocol = Paxos
	o.N = 5
	best := MaxThroughput(o, []int{5, 100})
	single := Run(func() Options { o2 := o; o2.Clients = 5; return o2 }())
	if best < single.Throughput {
		t.Error("MaxThroughput must dominate any single sweep point")
	}
}
