package harness

import (
	"strings"
	"testing"
)

func TestFig7ShapeFewestGroupsWins(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep := QuickSuite().Fig7RelayGroups()
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want r=2..6", len(rep.Rows))
	}
	// Paper §5.3: best throughput at the smallest number of groups, and
	// monotone decline as groups increase (Ml = 2r+2 grows).
	if rep.Raw["r2"] <= rep.Raw["r6"] {
		t.Errorf("r=2 (%.0f) must beat r=6 (%.0f)", rep.Raw["r2"], rep.Raw["r6"])
	}
	if rep.Raw["r2"] < rep.Raw["r3"] {
		t.Errorf("r=2 (%.0f) should be ≥ r=3 (%.0f)", rep.Raw["r2"], rep.Raw["r3"])
	}
	// √N strategy (r=5 for N=25) must underperform r=2 — the paper's
	// anti-intuitive finding.
	if rep.Raw["r5"] >= rep.Raw["r2"] {
		t.Errorf("sqrt(N) grouping r=5 (%.0f) should lose to r=2 (%.0f)", rep.Raw["r5"], rep.Raw["r2"])
	}
}

func TestFig10SmallClusterShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep := QuickSuite().Fig10Small5()
	// §5.5: even at 5 nodes PigPaxos out-scales Paxos; EPaxos trails.
	if rep.Raw["PigPaxos"] <= rep.Raw["Paxos"] {
		t.Errorf("5-node PigPaxos %.0f should exceed Paxos %.0f", rep.Raw["PigPaxos"], rep.Raw["Paxos"])
	}
	if rep.Raw["EPaxos"] >= rep.Raw["Paxos"] {
		t.Errorf("5-node EPaxos %.0f should trail Paxos %.0f", rep.Raw["EPaxos"], rep.Raw["Paxos"])
	}
}

func TestFig11NineNodeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	rep := QuickSuite().Fig11Small9()
	// §6.2: 9-node PigPaxos beats Paxos by a healthy margin (paper: 57%)
	// in both group configurations.
	for _, cfg := range []string{"PigPaxos-r2", "PigPaxos-r3"} {
		if rep.Raw[cfg] < 1.3*rep.Raw["Paxos"] {
			t.Errorf("%s %.0f should beat Paxos %.0f by ≥ 30%%", cfg, rep.Raw[cfg], rep.Raw["Paxos"])
		}
	}
	if rep.Raw["PigPaxos-r2"] < rep.Raw["PigPaxos-r3"] {
		t.Errorf("r=2 (%.0f) should be ≥ r=3 (%.0f) at 9 nodes", rep.Raw["PigPaxos-r2"], rep.Raw["PigPaxos-r3"])
	}
}

func TestTable1CrossCheck(t *testing.T) {
	rep := QuickSuite().Table1MessageLoad()
	if rep.Raw["Ml_r2"] != 6 || rep.Raw["Ml_r24"] != 50 {
		t.Errorf("Table 1 leader loads wrong: %+v", rep.Raw)
	}
	if rep.Raw["Mf_r24"] != 2 {
		t.Errorf("Paxos follower load = %v", rep.Raw["Mf_r24"])
	}
	if !strings.Contains(rep.String(), "(Paxos)") {
		t.Error("report should mark the Paxos row")
	}
}

func TestTable2CrossCheck(t *testing.T) {
	rep := QuickSuite().Table2MessageLoad()
	if rep.Raw["Ml_r8"] != 18 {
		t.Errorf("9-node Paxos Ml = %v, want 18", rep.Raw["Ml_r8"])
	}
	if rep.Raw["Mf_r2"] != 3.5 {
		t.Errorf("9-node Mf(r=2) = %v, want 3.5", rep.Raw["Mf_r2"])
	}
}

// Empirical leader message load must match the analytical model (the §6.1
// cross-validation): count the leader's endpoint traffic per request and
// compare against Ml = 2r+2.
func TestAnalyticalModelMatchesSimulation(t *testing.T) {
	// Covered in detail by pigpaxos.TestLeaderMessageEconomy; here verify
	// the model's degenerate Paxos case against the direct plane: the
	// Paxos run's total messages per request ≈ 2(N−1) round trip.
	o := QuickSuite().base()
	o.Protocol = Paxos
	o.N = 9
	o.Clients = 20
	o.MutPaxos = nil
	r := Run(o)
	// Per request: 16 P2a/P2b cluster messages + client request/reply.
	perReq := float64(r.Messages) / (r.Throughput * o.Measure.Seconds())
	if perReq < 16 || perReq > 22 {
		t.Errorf("Paxos cluster messages per request = %.1f, want ≈ 18", perReq)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{ID: "X", Title: "T", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	s := rep.String()
	if !strings.Contains(s, "== X: T ==") || !strings.Contains(s, "1") {
		t.Errorf("report format: %q", s)
	}
}

// §6.1: "a growing difference in CPU utilization between leader and
// follower nodes as the number of relay groups increases" — measured
// directly on the simulated cores.
func TestLeaderFollowerUtilizationGap(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	gap := func(groups int) float64 {
		o := QuickSuite().base()
		o.Protocol = PigPaxos
		o.N = 25
		o.NumGroups = groups
		o.Clients = 200
		r := Run(o)
		if r.LeaderUtil <= 0 || r.MeanFollowerUtil <= 0 {
			t.Fatalf("utilization not measured: %+v", r)
		}
		return r.LeaderUtil / r.MeanFollowerUtil
	}
	g2, g6 := gap(2), gap(6)
	if g2 <= 1 {
		t.Errorf("leader should out-utilize followers even at r=2 (gap %.2f)", g2)
	}
	if g6 <= g2 {
		t.Errorf("utilization gap must grow with relay groups: r=2 %.2f vs r=6 %.2f", g2, g6)
	}
}
