package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/netsim"
)

// scenShort is the scenario test configuration: 9 nodes, 3 relay groups, 8
// paced clients over a 1-second window.
func scenShort(t *testing.T, p Protocol) ScenarioOptions {
	t.Helper()
	o := ScenarioOptions{}
	o.Protocol = p
	o.N = 9
	o.NumGroups = 3
	o.Clients = 8
	o.OpsPerClient = 24
	o.Warmup = 200 * time.Millisecond
	o.Measure = time.Second
	return o
}

// requireHealthy asserts the recovery criteria every scenario must meet:
// linearizable histories, every script completed, replicas converged.
func requireHealthy(t *testing.T, r ScenarioResult) {
	t.Helper()
	if !r.Linearizable {
		t.Errorf("%v: history not linearizable (%d ops)", r.Protocol, r.LinChecked)
	}
	if !r.AllComplete {
		t.Errorf("%v: not every acked command was committed (clients stuck)", r.Protocol)
	}
	if !r.Converged {
		t.Errorf("%v: replica state machines diverged", r.Protocol)
	}
	if want := 8 * 24; r.Acked != want {
		t.Errorf("%v: acked %d ops, want %d", r.Protocol, r.Acked, want)
	}
}

// Leader crash mid-run: service gaps for roughly an election timeout, then
// a new leader takes over and every acked command commits — with identical
// numbers across reruns at the same seed.
func TestScenarioLeaderCrash(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := scenShort(t, p)
			sched := chaos.LeaderCrash(o.Warmup+300*time.Millisecond, 400*time.Millisecond)
			r := RunScenario(o, sched)
			requireHealthy(t, r)
			if r.AvailabilityGap < 100*time.Millisecond {
				t.Errorf("leader crash opened only a %v gap; failover should cost ≥ the election timeout", r.AvailabilityGap)
			}
			if r.RecoveryLatency <= 0 {
				t.Error("no recovery latency measured")
			}
			if len(r.FaultLog) != 2 {
				t.Errorf("fault log %v, want crash+recover", r.FaultLog)
			}
			if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
				t.Errorf("same seed diverged:\n%v\n%v", r, again)
			}
		})
	}
}

// Leader crash while batches are in flight (MaxBatchSize > 1 with a small
// pipeline window): reclaimed and re-proposed batches must not double-apply
// or drop acked commands.
func TestScenarioLeaderCrashMidBatch(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := scenShort(t, p)
			o.BatchSize = 8
			o.MaxInFlight = 1
			o.ThinkTime = -1 // full closed-loop pressure so batches actually form
			sched := chaos.LeaderCrash(o.Warmup+100*time.Millisecond, 400*time.Millisecond)
			r := RunScenario(o, sched)
			requireHealthy(t, r)
		})
	}
}

// Relay crash mid-aggregation (Figure 5b): the leader's timeout re-fans-out
// with fresh relays, so the gap stays around the relay/leader timeout scale
// — an order of magnitude below failover — and nothing is lost.
func TestScenarioRelayCrashMidAggregation(t *testing.T) {
	o := scenShort(t, PigPaxos)
	sched := chaos.RelayCrash(1, o.Warmup+300*time.Millisecond, 400*time.Millisecond)
	r := RunScenario(o, sched)
	requireHealthy(t, r)
	if r.AvailabilityGap <= 0 {
		t.Error("relay crash should open a measurable gap")
	}
	if r.AvailabilityGap > 150*time.Millisecond {
		t.Errorf("relay crash gap %v; rotation should mask it well below failover", r.AvailabilityGap)
	}
	// The relay-crash victim must be a follower the leader actually used.
	if len(r.FaultLog) == 0 || r.FaultLog[0].Kind != chaos.CrashRelay || r.FaultLog[0].Target.IsZero() {
		t.Errorf("fault log %v, want a resolved crash-relay", r.FaultLog)
	}
	if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
		t.Error("same seed diverged")
	}
}

// Every protocol runs bit-identically at equal seeds under the full fault
// mix — crashes, probabilistic loss, duplication and reordering. EPaxos
// takes the same schedule as the Paxos family now that Explicit Prepare
// recovery, the retransmit sweep, and the session tables absorb every
// family (the regression style of the PR 4 redirectPending fix: any map
// order leaking into message timing shows up here as a seed divergence).
func TestScenarioDeterminismAllProtocols(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := scenShort(t, p)
			sched := chaos.Merge(
				chaos.LeaderCrash(o.Warmup+200*time.Millisecond, 300*time.Millisecond),
				chaos.FlakyLinks(netsim.LinkFaults{Loss: 0.02, Duplicate: 0.02, Reorder: 0.1},
					o.Warmup+500*time.Millisecond, 300*time.Millisecond),
			)
			a := RunScenario(o, sched)
			b := RunScenario(o, sched)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
			}
			requireHealthy(t, a)
			o.Seed = 43
			c := RunScenario(o, sched)
			if reflect.DeepEqual(a.Latency, c.Latency) && a.Messages == c.Messages {
				t.Error("different seed should perturb the scenario")
			}
		})
	}
}

// Cross-protocol seed determinism of the steady-state harness: two Runs at
// one seed return bit-identical Results for every protocol (this guards the
// EPaxos map-order fix and the deterministic replica start order).
func TestCrossProtocolSeedDeterminism(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := short(t)
			o.Protocol = p
			o.N = 9
			o.NumGroups = 3
			o.Clients = 30
			o.SampleWidth = 250 * time.Millisecond
			a, b := Run(o), Run(o)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed gave different results:\n%+v\n%+v", a, b)
			}
		})
	}
}

// The fault-intensity sweep: linearizable and fully recovered at every
// intensity the bounds allow, with the no-fault point setting the baseline.
func TestFaultCurveSafeAcrossIntensities(t *testing.T) {
	o := scenShort(t, PigPaxos)
	pts := FaultCurve(o, 3)
	if len(pts) != 4 {
		t.Fatalf("curve has %d points, want 4", len(pts))
	}
	for _, pt := range pts {
		if !pt.Linearizable || !pt.Recovered {
			t.Errorf("crashes=%d: lin=%v recovered=%v", pt.Crashes, pt.Linearizable, pt.Recovered)
		}
	}
	if pts[0].AvailabilityGap <= 0 {
		t.Error("baseline gap not measured")
	}
}

// Explorer-driven scenarios stay safe for every protocol under its default
// palette.
func TestExploreScenariosSafeAllProtocols(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := scenShort(t, p)
			results := ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 3})
			if len(results) != 3 {
				t.Fatalf("ran %d scenarios, want 3", len(results))
			}
			for i, r := range results {
				if !r.Linearizable || !r.AllComplete || !r.Converged {
					t.Errorf("scenario %d: lin=%v complete=%v converged=%v (faults %v)",
						i, r.Linearizable, r.AllComplete, r.Converged, r.FaultLog)
				}
			}
		})
	}
}
