package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/ids"
)

// durShort is scenShort plus durability: every replica journals through a
// wal.MemStorage, snapshots every 32 executions, pays 400µs per fsync.
func durShort(t *testing.T, p Protocol) ScenarioOptions {
	t.Helper()
	o := scenShort(t, p)
	o.Durable = true
	o.SnapshotEvery = 32
	return o
}

// Honest restart of the leader: the node reboots with a FRESH process image
// rebuilt from snapshot + WAL tail (not the retained-memory Recover path),
// and the cluster stays linearizable, complete and converged — for both
// communication planes, with bit-identical reruns.
func TestScenarioRestartLeaderDurable(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := durShort(t, p)
			sched := chaos.LeaderRestart(o.Warmup+300*time.Millisecond, 400*time.Millisecond)
			r := RunScenario(o, sched)
			requireHealthy(t, r)
			if r.Reboots != 1 {
				t.Fatalf("fault log %v: want exactly 1 reboot", r.FaultLog)
			}
			if r.WALSyncs == 0 {
				t.Error("durable run performed no journal fsyncs")
			}
			// The restarted node must have rebuilt from a snapshot, not by
			// replaying the full log from slot 1: with SnapshotEvery=32 and
			// ~190 committed slots before the crash, a checkpoint existed.
			if r.SnapRestores == 0 {
				t.Error("reboot did not restore from a snapshot")
			}
			if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
				t.Errorf("same seed diverged:\n%v\n%v", r, again)
			}
		})
	}
}

// Rolling reboot: every follower restarts from disk in turn. All recoveries
// must replay snapshot + tail and rejoin without harming the history.
func TestScenarioRollingRebootDurable(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := durShort(t, p)
			cc := o.cluster()
			victims := cc.Nodes[len(cc.Nodes)-3:] // three followers
			sched := chaos.RollingReboot(victims, o.Warmup+200*time.Millisecond,
				150*time.Millisecond, 300*time.Millisecond)
			r := RunScenario(o, sched)
			requireHealthy(t, r)
			if r.Reboots != len(victims) {
				t.Errorf("%d reboots, want %d (log %v)", r.Reboots, len(victims), r.FaultLog)
			}
			if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
				t.Errorf("same seed diverged:\n%v\n%v", r, again)
			}
		})
	}
}

// Torn tail: the crash interrupts the journal's final write mid-frame. The
// reboot must truncate the torn frame, recover everything that was actually
// fsynced, and rejoin — losing a synced suffix would surface as divergence
// or a broken history.
func TestScenarioTornTailRestart(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := durShort(t, p)
			cc := o.cluster()
			victim := cc.Nodes[len(cc.Nodes)-1]
			sched := chaos.TornRestart(victim, o.Warmup+300*time.Millisecond, 200*time.Millisecond)
			r := RunScenario(o, sched)
			requireHealthy(t, r)
			if r.Reboots != 1 {
				t.Fatalf("fault log %v: want exactly 1 reboot", r.FaultLog)
			}
			if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
				t.Errorf("same seed diverged:\n%v\n%v", r, again)
			}
		})
	}
}

// A slow disk window on the leader throttles every commit (sync-before-vote
// holds the batch until the fsync clears) but must not break anything.
func TestScenarioDiskSlowLeader(t *testing.T) {
	o := durShort(t, Paxos)
	cc := o.cluster()
	sched := chaos.DiskSlowWindow(cc.Nodes[0], 5*time.Millisecond,
		o.Warmup+200*time.Millisecond, 400*time.Millisecond)
	r := RunScenario(o, sched)
	requireHealthy(t, r)
	var kinds []chaos.Kind
	for _, a := range r.FaultLog {
		kinds = append(kinds, a.Kind)
	}
	if !reflect.DeepEqual(kinds, []chaos.Kind{chaos.DiskSlow, chaos.DiskRestore}) {
		t.Errorf("fault log %v, want disk-slow then disk-restore", r.FaultLog)
	}
}

// Restart actions against a volatile deployment (no Durable flag — the
// resolver has no Rebooter) skip deterministically: the node is never even
// crashed, so the run matches a fault-free run.
func TestScenarioRestartSkipsWhenVolatile(t *testing.T) {
	o := scenShort(t, Paxos)
	sched := chaos.LeaderRestart(o.Warmup+300*time.Millisecond, 400*time.Millisecond)
	r := RunScenario(o, sched)
	requireHealthy(t, r)
	if len(r.FaultLog) != 0 {
		t.Errorf("volatile run executed restart actions: %v", r.FaultLog)
	}
	if r.Reboots != 0 || r.WALSyncs != 0 {
		t.Errorf("volatile run reports durability telemetry: %+v", r)
	}
}

// The durable explorer palette under both planes: every generated schedule
// (restarts, torn tails, slow disks, crashes, partitions, loss) must leave
// the cluster linearizable, complete and converged.
func TestExploreDurablePalette(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep")
	}
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := durShort(t, p)
			results := ExploreScenarios(o, chaos.ExplorerOpts{
				Seed: 7, Scenarios: 3, Allow: chaos.DurablePalette(),
			})
			for i, r := range results {
				if !r.Linearizable || !r.AllComplete || !r.Converged {
					t.Errorf("scenario %d unhealthy: %v (faults %v)", i, r, r.FaultLog)
				}
			}
		})
	}
}

// requireSafeAcked is requireHealthy for runs that override OpsPerClient
// (the shared helper hardcodes scenShort's totals).
func requireSafeAcked(t *testing.T, r ScenarioResult, want int) {
	t.Helper()
	if !r.Linearizable {
		t.Errorf("%v: history not linearizable (%d ops)", r.Protocol, r.LinChecked)
	}
	if !r.AllComplete {
		t.Errorf("%v: not every acked command was committed (clients stuck)", r.Protocol)
	}
	if !r.Converged {
		t.Errorf("%v: replica state machines diverged", r.Protocol)
	}
	if r.Acked != want {
		t.Errorf("%v: acked %d ops, want %d", r.Protocol, r.Acked, want)
	}
}

// Long run with snapshot-driven compaction: the in-memory log and the
// journal footprint must stay bounded — a replica that never compacts would
// end with every committed slot still resident.
func TestScenarioBoundedMemoryUnderSnapshots(t *testing.T) {
	o := durShort(t, Paxos)
	o.OpsPerClient = 48
	o.SnapshotEvery = 24
	sched := chaos.RestartFromDisk(o.cluster().Nodes[len(o.cluster().Nodes)-1],
		o.Warmup+400*time.Millisecond, 200*time.Millisecond)
	r := RunScenario(o, sched)
	requireSafeAcked(t, r, o.Clients*o.OpsPerClient)
	if r.Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	total := o.Clients * o.OpsPerClient
	// Committed slots ≈ total ops; with checkpoints every 24 executions the
	// resident log must stay far below that (floor + in-flight tail).
	if r.MaxLogLen >= total/2 {
		t.Errorf("log grew to %d entries over %d ops; compaction is not holding", r.MaxLogLen, total)
	}
	if r.MaxWALBytes == 0 {
		t.Error("no journal footprint measured")
	}
}

// A rebooted node whose journal prefix was compacted away on the leader is
// caught up via snapshot install rather than slot-by-slot replay.
func TestScenarioSnapshotCatchup(t *testing.T) {
	o := durShort(t, Paxos)
	o.OpsPerClient = 48
	o.SnapshotEvery = 16 // aggressive checkpoints → leader compacts early
	cc := o.cluster()
	victim := cc.Nodes[len(cc.Nodes)-1]
	// A long outage: the victim misses enough traffic that its cursor falls
	// below the leader's compaction floor.
	sched := chaos.RestartFromDisk(victim, o.Warmup+100*time.Millisecond, 700*time.Millisecond)
	r := RunScenario(o, sched)
	requireSafeAcked(t, r, o.Clients*o.OpsPerClient)
	if r.SnapRestores == 0 {
		t.Error("laggard was never caught up via snapshot")
	}
}

var _ = ids.ID(0) // keep the import when assertions above change
