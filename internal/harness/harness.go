// Package harness runs the paper's experiments: it builds a simulated
// cluster running one of the three protocols, attaches closed-loop clients
// driving the benchmark workload, and measures throughput and latency over
// a virtual-time window — the methodology of §5.2 (Paxi benchmark, clients
// on unmetered machines, 1000-key uniform workload).
package harness

import (
	"fmt"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/wire"
	"pigpaxos/internal/workload"
)

// Protocol selects the consensus protocol under test.
type Protocol int

// Protocols under evaluation.
const (
	Paxos Protocol = iota
	PigPaxos
	EPaxos
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case Paxos:
		return "Paxos"
	case PigPaxos:
		return "PigPaxos"
	case EPaxos:
		return "EPaxos"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Options describes one experiment run.
type Options struct {
	// Protocol picks the system under test.
	Protocol Protocol
	// N is the cluster size.
	N int
	// WAN spreads nodes over three regions (Figure 9); otherwise LAN.
	WAN bool
	// WANLossy additionally gives every WAN path its representative jitter
	// and loss (config.NewWAN3Lossy). Implies WAN. Only protocols with
	// retransmission machinery should run on it.
	WANLossy bool
	// Clients is the number of closed-loop clients.
	Clients int
	// Workload configures keys/read-ratio/payload (defaults: paper §5.2).
	Workload workload.Config
	// Warmup and Measure bound the measurement window of virtual time.
	Warmup  time.Duration
	Measure time.Duration
	// Seed drives all randomness; same seed ⇒ identical run.
	Seed int64
	// Net overrides the simulator cost model (zero → DefaultOptions).
	Net netsim.Options

	// BatchSize caps commands per log slot at the leader (≤1 = unbatched,
	// the paper's behaviour). Applies to Paxos and PigPaxos alike — the
	// relay plane forwards batched P2as transparently.
	BatchSize int
	// BatchDelay holds under-full batches open at the leader (0 = group
	// commit: batches form only while the pipeline window is full).
	BatchDelay time.Duration
	// MaxInFlight bounds uncommitted slots in flight at the leader
	// (pipelining window). Defaults to 4 when BatchSize > 1 — without a
	// window, closed-loop clients never let batches accumulate.
	MaxInFlight int

	// NumGroups is PigPaxos' r.
	NumGroups int
	// ZoneGroups uses one relay group per zone (WAN experiments).
	ZoneGroups bool
	// MutPig/MutPaxos/MutEPaxos allow per-experiment protocol tweaks.
	MutPig    func(*pigpaxos.Config)
	MutPaxos  func(*paxos.Config)
	MutEPaxos func(*epaxos.Config)

	// CrashNode (1-based node index), CrashAt and RecoverAt inject a
	// fault window (Figure 13). Zero CrashNode disables.
	CrashNode int
	CrashAt   time.Duration
	RecoverAt time.Duration

	// SluggishNode (1-based) runs one node with its CPU costs multiplied
	// by SluggishFactor for the whole run (§3.4's slow-node scenario and
	// the thrifty-Paxos fragility ablation).
	SluggishNode   int
	SluggishFactor float64

	// SampleWidth enables a throughput time series with that bucket
	// width (Figure 13 samples over 1-second intervals).
	SampleWidth time.Duration
}

func (o *Options) applyDefaults() {
	if o.N == 0 {
		o.N = 5
	}
	if o.Clients == 0 {
		o.Clients = 50
	}
	if o.Warmup == 0 {
		o.Warmup = 500 * time.Millisecond
	}
	if o.Measure == 0 {
		o.Measure = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Net == (netsim.Options{}) {
		o.Net = netsim.DefaultOptions()
	}
	if o.NumGroups == 0 {
		o.NumGroups = 3
	}
	if o.BatchSize > 1 && o.MaxInFlight == 0 {
		o.MaxInFlight = 4
	}
}

// cluster builds the topology the options select.
func (o *Options) cluster() config.Cluster {
	switch {
	case o.WANLossy:
		return config.NewWAN3Lossy(o.N)
	case o.WAN:
		return config.NewWAN3(o.N)
	default:
		return config.NewLAN(o.N)
	}
}

// paxosBatching applies the batching/pipelining knobs to a decision-core
// config. The knobs are independent: MaxInFlight alone gives pure bounded
// pipelining without batching. All-zero options keep the seed defaults.
func (o *Options) paxosBatching(cfg *paxos.Config) {
	if o.BatchSize > 1 {
		cfg.MaxBatchSize = o.BatchSize
	}
	cfg.BatchDelay = o.BatchDelay
	cfg.MaxInFlight = o.MaxInFlight
	// Closed-loop benchmark clients self-limit (one op in flight each), so
	// ingress admission control would only add Busy/retry latency noise to
	// the capacity curves Run measures. Lift the window-derived bound here;
	// overload experiments opt back in explicitly via MutPaxos/MutPig.
	cfg.MaxPending = -1
}

// Result is one experiment's measurement.
type Result struct {
	Protocol   Protocol
	N          int
	Clients    int
	Throughput float64 // completed requests/second within the window
	Latency    metrics.Summary
	Series     []metrics.Point // per-SampleWidth throughput, if enabled
	Messages   uint64          // network messages sent during the run
	// LeaderUtil and MeanFollowerUtil are CPU utilizations over the whole
	// run (busy time / wall time), reproducing the §6.1 observation that
	// the leader-follower utilization gap grows with the relay-group
	// count.
	LeaderUtil       float64
	MeanFollowerUtil float64
	// MeanBatchSize is commands per proposed slot at the leader over the
	// whole run (1.0 unbatched, 0 for EPaxos which does not batch).
	MeanBatchSize float64
	// MsgsPerCmd is network messages sent cluster-wide per command
	// executed at the leader — the amortization batching buys.
	MsgsPerCmd float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("%s N=%d clients=%d: %.0f req/s, lat %v (p99 %v)",
		r.Protocol, r.N, r.Clients, r.Throughput, r.Latency.Mean, r.Latency.P99)
}

// replica is the common surface of the three protocol replicas.
type replica interface {
	Start()
	OnMessage(from ids.ID, m wire.Msg)
}

type trampoline struct{ h func(from ids.ID, m wire.Msg) }

func (t *trampoline) OnMessage(from ids.ID, m wire.Msg) { t.h(from, m) }

// client is a closed-loop benchmark client: it keeps exactly one request in
// flight, issuing the next upon each reply — the paper's client model.
type client struct {
	id      uint64
	ep      *netsim.Endpoint
	gen     *workload.Generator
	targets []ids.ID // servers this client may contact
	rrIdx   int

	seq       uint64
	lastCmd   kvstore.Command
	issuedAt  time.Duration
	warmupEnd time.Duration
	windowEnd time.Duration

	hist      *metrics.Histogram
	series    *metrics.TimeSeries
	completed *metrics.Counter
	stop      bool
}

func (c *client) target() ids.ID {
	t := c.targets[c.rrIdx%len(c.targets)]
	c.rrIdx++
	return t
}

func (c *client) next() {
	if c.stop {
		return
	}
	c.seq++
	c.lastCmd = c.gen.Next(c.id, c.seq)
	c.issuedAt = c.ep.Now()
	c.ep.Send(c.target(), wire.Request{Cmd: c.lastCmd})
}

// OnMessage handles replies (and redirects) for the client.
func (c *client) OnMessage(from ids.ID, m wire.Msg) {
	if busy, ok := m.(wire.Busy); ok {
		// Overloaded leader shed us: back off for the hinted interval, then
		// retry the same command (the rejected sequence number was not
		// consumed, so a retry is admitted as new).
		if busy.Seq != c.seq || c.stop {
			return
		}
		c.ep.After(busy.RetryAfter, func() {
			if busy.Seq != c.seq || c.stop {
				return
			}
			c.ep.Send(busy.Leader, wire.Request{Cmd: c.lastCmd})
		})
		return
	}
	rep, ok := m.(wire.Reply)
	if !ok || rep.Seq != c.seq {
		return // stale reply from a retried request
	}
	if !rep.OK {
		// Redirected: retry the same command at the hinted leader.
		if !rep.Leader.IsZero() {
			c.ep.Send(rep.Leader, wire.Request{Cmd: c.lastCmd})
			return
		}
		c.next()
		return
	}
	now := c.ep.Now()
	if now >= c.warmupEnd && now < c.windowEnd {
		c.hist.Observe(now - c.issuedAt)
		c.completed.Inc()
		if c.series != nil {
			c.series.Record(now - c.warmupEnd)
		}
	} else if c.series != nil && now >= c.warmupEnd {
		c.series.Record(now - c.warmupEnd)
	}
	c.next()
}

// Run executes one experiment and returns its measurements.
func Run(opts Options) Result {
	opts.applyDefaults()
	sim := des.New(opts.Seed)
	cc := opts.cluster()
	net := netsim.New(sim, cc, opts.Net)

	leader := cc.Nodes[0]
	replicas := make(map[ids.ID]replica, opts.N)
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		var rep replica
		switch opts.Protocol {
		case Paxos:
			cfg := paxos.Config{Cluster: cc, ID: id, InitialLeader: leader}
			opts.paxosBatching(&cfg)
			if opts.MutPaxos != nil {
				opts.MutPaxos(&cfg)
			}
			rep = paxos.New(ep, cfg, nil)
		case PigPaxos:
			cfg := pigpaxos.Config{
				Paxos:     paxos.Config{Cluster: cc, ID: id, InitialLeader: leader},
				NumGroups: opts.NumGroups,
			}
			opts.paxosBatching(&cfg.Paxos)
			if opts.ZoneGroups {
				cfg.Strategy = pigpaxos.GroupByZone
			}
			if opts.MutPig != nil {
				opts.MutPig(&cfg)
			}
			rep = pigpaxos.New(ep, cfg)
		case EPaxos:
			cfg := epaxos.Config{Cluster: cc, ID: id}
			if opts.MutEPaxos != nil {
				opts.MutEPaxos(&cfg)
			}
			rep = epaxos.New(ep, cfg)
		}
		tr.h = rep.OnMessage
		replicas[id] = rep
	}

	// Clients: Paxos/PigPaxos clients talk to the leader; EPaxos clients
	// spread over all replicas (§5.4: "a random node in EPaxos for each
	// operation" — round-robin per client gives the same aggregate mix
	// deterministically).
	hist := metrics.NewHistogram()
	var completed metrics.Counter
	var series *metrics.TimeSeries
	if opts.SampleWidth > 0 {
		series = metrics.NewTimeSeries(opts.SampleWidth)
	}
	warmupEnd := opts.Warmup
	windowEnd := opts.Warmup + opts.Measure

	clients := make([]*client, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		cl := &client{
			id:        uint64(i + 1),
			gen:       workload.New(opts.Workload, sim.Rand()),
			hist:      hist,
			series:    series,
			completed: &completed,
			warmupEnd: warmupEnd,
			windowEnd: windowEnd,
		}
		if opts.Protocol == EPaxos {
			cl.targets = cc.Nodes
			cl.rrIdx = i % len(cc.Nodes)
		} else {
			cl.targets = []ids.ID{leader}
		}
		// Clients live in the leader's zone (the paper ran client VMs in
		// the same region as the cluster under test), with node numbers
		// far above any replica's.
		cl.ep = net.Register(ids.NewID(cc.ZoneOf(leader), 1000+i), cl, true)
		clients[i] = cl
	}

	sim.Schedule(0, func() {
		// Start in membership order: replicas is a map, and iteration order
		// would otherwise leak scheduling nondeterminism into the run.
		for _, id := range cc.Nodes {
			replicas[id].Start()
		}
	})
	// Stagger client starts over a few milliseconds to avoid a thundering
	// herd at t=0 (the real benchmark ramps up the same way).
	for i, cl := range clients {
		cl := cl
		sim.Schedule(time.Duration(i)*50*time.Microsecond+time.Millisecond, cl.next)
	}

	if opts.SluggishNode > 0 && opts.SluggishNode <= len(cc.Nodes) && opts.SluggishFactor > 1 {
		net.SetSluggish(cc.Nodes[opts.SluggishNode-1], opts.SluggishFactor)
	}

	if opts.CrashNode > 0 && opts.CrashNode <= len(cc.Nodes) {
		victim := cc.Nodes[opts.CrashNode-1]
		sim.Schedule(opts.CrashAt, func() { net.Crash(victim) })
		if opts.RecoverAt > opts.CrashAt {
			sim.Schedule(opts.RecoverAt, func() { net.Recover(victim) })
		}
	}

	sim.Run(windowEnd)
	for _, cl := range clients {
		cl.stop = true
	}

	res := Result{
		Protocol:   opts.Protocol,
		N:          opts.N,
		Clients:    opts.Clients,
		Throughput: float64(completed.Value()) / opts.Measure.Seconds(),
		Latency:    hist.Snapshot(),
		Messages:   net.MessagesSent(),
	}
	// Batching metrics come from the leader's decision core; EPaxos has no
	// leader and reports zeroes.
	var pstats paxos.Stats
	switch rep := replicas[leader].(type) {
	case *paxos.Replica:
		pstats = rep.Stats()
	case *pigpaxos.Replica:
		pstats = rep.Core().Stats()
	}
	res.MeanBatchSize = pstats.MeanBatchSize()
	if pstats.Executions > 0 {
		res.MsgsPerCmd = float64(res.Messages) / float64(pstats.Executions)
	}
	wall := windowEnd.Seconds()
	res.LeaderUtil = net.Endpoint(leader).BusyTotal().Seconds() / wall
	var fsum float64
	for _, id := range cc.Nodes[1:] {
		fsum += net.Endpoint(id).BusyTotal().Seconds() / wall
	}
	if len(cc.Nodes) > 1 {
		res.MeanFollowerUtil = fsum / float64(len(cc.Nodes)-1)
	}
	if series != nil {
		res.Series = series.Series()
	}
	return res
}

// CurvePoint is one (offered load, throughput, latency) sample of a
// latency-throughput curve.
type CurvePoint struct {
	Clients    int
	Throughput float64
	LatencyMs  float64
	P99Ms      float64
}

// Curve sweeps client counts and returns the latency-throughput curve the
// paper plots in Figures 8-11.
func Curve(opts Options, clientCounts []int) []CurvePoint {
	out := make([]CurvePoint, 0, len(clientCounts))
	for _, c := range clientCounts {
		o := opts
		o.Clients = c
		r := Run(o)
		out = append(out, CurvePoint{
			Clients:    c,
			Throughput: r.Throughput,
			LatencyMs:  float64(r.Latency.Mean.Microseconds()) / 1000,
			P99Ms:      float64(r.Latency.P99.Microseconds()) / 1000,
		})
	}
	return out
}

// MaxThroughput sweeps client counts and returns the best observed
// throughput ("maximum throughput" in Figures 7, 12, 13).
func MaxThroughput(opts Options, clientCounts []int) float64 {
	best := 0.0
	for _, c := range clientCounts {
		o := opts
		o.Clients = c
		if tp := Run(o).Throughput; tp > best {
			best = tp
		}
	}
	return best
}

// DefaultClientSweep is the client-count ladder used by the sweeps.
var DefaultClientSweep = []int{10, 25, 50, 100, 200, 400}
