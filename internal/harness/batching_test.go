package harness

import (
	"testing"
	"time"
)

func batchOpts(p Protocol, batch int) Options {
	return Options{
		Protocol:  p,
		N:         25,
		NumGroups: 3,
		Clients:   200,
		Warmup:    200 * time.Millisecond,
		Measure:   time.Second,
		BatchSize: batch,
	}
}

// The tentpole acceptance: batching multiplies saturation throughput ≥ 3×
// for both leader-based protocols at identical cluster/workload settings,
// while messages-per-command drops proportionally.
func TestBatchingMultipliesSaturationThroughput(t *testing.T) {
	for _, proto := range []Protocol{Paxos, PigPaxos} {
		base := Run(batchOpts(proto, 1))
		batched := Run(batchOpts(proto, 16))
		t.Logf("%s: unbatched %.0f req/s (%.1f msgs/cmd) → batched %.0f req/s (%.1f msgs/cmd, mean batch %.1f)",
			proto, base.Throughput, base.MsgsPerCmd,
			batched.Throughput, batched.MsgsPerCmd, batched.MeanBatchSize)
		if batched.Throughput < 3*base.Throughput {
			t.Errorf("%s: batched throughput %.0f < 3× unbatched %.0f",
				proto, batched.Throughput, base.Throughput)
		}
		if batched.MsgsPerCmd >= base.MsgsPerCmd/2 {
			t.Errorf("%s: msgs/cmd %.1f did not drop enough from %.1f",
				proto, batched.MsgsPerCmd, base.MsgsPerCmd)
		}
		if batched.MeanBatchSize < 4 {
			t.Errorf("%s: mean batch size %.1f — batches are not forming",
				proto, batched.MeanBatchSize)
		}
		if base.MeanBatchSize != 1 {
			t.Errorf("%s: unbatched mean batch size %.2f, want exactly 1",
				proto, base.MeanBatchSize)
		}
	}
}

// BatchSize=1 must reproduce the seed's paper-shaped results: 25-node Paxos
// ≈ 2k req/s, PigPaxos well above it (Figure 8's ordering).
func TestUnbatchedReproducesPaperShape(t *testing.T) {
	paxosTP := Run(batchOpts(Paxos, 1)).Throughput
	pigTP := Run(batchOpts(PigPaxos, 1)).Throughput
	if paxosTP < 1000 || paxosTP > 4000 {
		t.Errorf("unbatched 25-node Paxos %.0f req/s, want ≈ 2k", paxosTP)
	}
	if pigTP < 5000 || pigTP > 14000 {
		t.Errorf("unbatched 25-node PigPaxos %.0f req/s, want ≈ 7-9k", pigTP)
	}
	if pigTP < 3*paxosTP {
		t.Errorf("paper ordering broken: pig %.0f < 3× paxos %.0f", pigTP, paxosTP)
	}
}

// Replicas must converge to identical state under batching: every follower
// applies the same commands in the same slot/batch order.
func TestBatchingKeepsReplicasConverged(t *testing.T) {
	o := batchOpts(PigPaxos, 16)
	o.Clients = 50
	o.Measure = 500 * time.Millisecond
	r := Run(o)
	if r.Throughput < 1000 {
		t.Fatalf("batched run implausibly slow: %v", r)
	}
	// Run() itself has no direct store access here; convergence under
	// batching is asserted end-to-end in the paxos/pigpaxos package tests.
	// This guards the harness wiring: batches really formed.
	if r.MeanBatchSize < 2 {
		t.Errorf("mean batch %.2f — harness did not enable batching", r.MeanBatchSize)
	}
}

// MaxInFlight is an independent knob: without batching it must still bound
// the pipeline, throttling a saturated leader below the unbounded run.
func TestPurePipeliningWindowIsHonored(t *testing.T) {
	o := batchOpts(Paxos, 1)
	o.N = 5
	unbounded := Run(o).Throughput
	o.MaxInFlight = 1
	bounded := Run(o).Throughput
	if bounded >= unbounded*0.8 {
		t.Errorf("window 1 throughput %.0f not measurably below unbounded %.0f — knob ignored",
			bounded, unbounded)
	}
	if bounded < 500 {
		t.Errorf("window 1 throughput %.0f implausibly low", bounded)
	}
}

// BatchDelay must bound how long an under-full batch waits: at trivial load
// a lone command still commits promptly.
func TestBatchDelayFlushesUnderfullBatch(t *testing.T) {
	o := batchOpts(Paxos, 64)
	o.N = 5
	o.Clients = 1
	o.BatchDelay = 2 * time.Millisecond
	r := Run(o)
	if r.Latency.Count == 0 {
		t.Fatal("no requests completed with BatchDelay set")
	}
	if r.Latency.Mean > 20*time.Millisecond {
		t.Errorf("lone-client latency %v — the delay timer is not flushing", r.Latency.Mean)
	}
}
