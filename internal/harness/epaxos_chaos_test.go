package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/netsim"
)

// The targeted EPaxos linearizability-under-faults suite: each scenario
// aims one fault family at one piece of the recovery machinery and asserts
// the full verdict set — linearizable, every script completed, replicas
// converged, and zero unrecovered instances.

// requireRecovered is requireHealthy plus the EPaxos-specific "no instance
// left behind" criterion.
func requireRecovered(t *testing.T, r ScenarioResult) {
	t.Helper()
	requireHealthy(t, r)
	if r.Unrecovered != 0 {
		t.Errorf("%v: %d instances left unexecuted after the drain", r.Protocol, r.Unrecovered)
	}
}

// Command-leader crash mid-pre-accept: the crash lands 100ms into the
// window, while the freshly started clients' first commands are still in
// their pre-accept rounds. Explicit Prepare finishes the orphans; client
// retries re-home on live replicas in sorted ID order.
func TestScenarioEPaxosLeaderCrashMidPreAccept(t *testing.T) {
	o := scenShort(t, EPaxos)
	sched := chaos.LeaderCrash(o.Warmup+100*time.Millisecond, 400*time.Millisecond)
	r := RunScenario(o, sched)
	requireRecovered(t, r)
	if len(r.FaultLog) != 2 || r.FaultLog[0].Kind != chaos.CrashLeader || r.FaultLog[0].Target.IsZero() {
		t.Errorf("fault log %v, want a resolved crash-leader + recover", r.FaultLog)
	}
	if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
		t.Error("same seed diverged")
	}
}

// Command-leader crash mid-accept: heavy interference (a tight probe
// keyspace under closed-loop pressure) keeps slow-path Accept rounds in
// flight, and the crash lands on them. Recovery must carry the accepted
// values through — the histories stay linearizable.
func TestScenarioEPaxosLeaderCrashMidAccept(t *testing.T) {
	o := scenShort(t, EPaxos)
	o.ThinkTime = -1 // closed loop: conflicts (and Accept rounds) pile up
	sched := chaos.LeaderCrash(o.Warmup+150*time.Millisecond, 400*time.Millisecond)
	r := RunScenario(o, sched)
	requireRecovered(t, r)
}

// Lost commits: a heavy replica-link loss window eats Commit broadcasts.
// Teach-back (stale retransmits answered with the commit), the retransmit
// sweep, and the commit-floor gossip must converge every replica anyway.
func TestScenarioEPaxosLostCommitTeachBack(t *testing.T) {
	o := scenShort(t, EPaxos)
	sched := chaos.FlakyLinks(netsim.LinkFaults{Loss: 0.15},
		o.Warmup+100*time.Millisecond, 500*time.Millisecond)
	r := RunScenario(o, sched)
	requireRecovered(t, r)
	if r.Dropped == 0 {
		t.Error("loss window dropped nothing; the scenario is vacuous")
	}
}

// Duplicated client retries through the session table: aggressive client
// retry timers plus link duplication force the same command through
// multiple command leaders; the replicated session tables must keep every
// history at-most-once.
func TestScenarioEPaxosDuplicatedRetrySessions(t *testing.T) {
	o := scenShort(t, EPaxos)
	o.ClientRetry = 60 * time.Millisecond // retry hard into the fault window
	sched := chaos.Merge(
		chaos.LeaderCrash(o.Warmup+150*time.Millisecond, 400*time.Millisecond),
		chaos.FlakyLinks(netsim.LinkFaults{Duplicate: 0.1, Loss: 0.03},
			o.Warmup+100*time.Millisecond, 500*time.Millisecond),
	)
	r := RunScenario(o, sched)
	requireRecovered(t, r)
}

// The full EPaxos chaos palette (everything but relay crashes) through the
// seeded explorer: no schedule may wedge, diverge, or break
// linearizability.
func TestScenarioEPaxosFullPaletteExplorer(t *testing.T) {
	o := scenShort(t, EPaxos)
	results := ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 4, Allow: chaos.EPaxosPalette()})
	if len(results) != 4 {
		t.Fatalf("ran %d scenarios, want 4", len(results))
	}
	for i, r := range results {
		if !r.Linearizable || !r.AllComplete || !r.Converged || r.Unrecovered != 0 {
			t.Errorf("scenario %d: lin=%v complete=%v converged=%v unrecovered=%d (faults %v)",
				i, r.Linearizable, r.AllComplete, r.Converged, r.Unrecovered, r.FaultLog)
		}
	}
}

// EPaxos on the Figure-9 WAN under a minority-region cut: the cut region's
// clients stall, the majority side keeps serving, and after the heal the
// marooned replicas are taught everything they missed.
func TestScenarioEPaxosWANRegionCut(t *testing.T) {
	o := WANScenario(EPaxos, 9, 4, 10, 42)
	at := o.Warmup + 300*time.Millisecond
	sched := chaos.RegionCut(3, at, 600*time.Millisecond) // Oregon, the minority region
	r := RunScenario(o, sched)
	if !r.Linearizable || !r.AllComplete || !r.Converged || r.Unrecovered != 0 {
		t.Fatalf("lin=%v complete=%v converged=%v unrecovered=%d",
			r.Linearizable, r.AllComplete, r.Converged, r.Unrecovered)
	}
	if len(r.Regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(r.Regions))
	}
	if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
		t.Error("same seed diverged")
	}
}
