package harness

import (
	"fmt"
	"strings"
	"time"

	"pigpaxos/internal/metrics"
	"pigpaxos/internal/model"
	"pigpaxos/internal/workload"
)

// Report is a rendered experiment result, printable in the paper's layout.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Raw carries experiment-specific numbers for programmatic checks.
	Raw map[string]float64
}

// String implements fmt.Stringer.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(metrics.Table(r.Header, r.Rows))
	return b.String()
}

// Durations used by the experiment suite. Shrunk in tests/benches via the
// Quick flag; the defaults favor stable numbers.
type Suite struct {
	// Warmup and Measure configure every run's measurement window.
	Warmup, Measure time.Duration
	// Seed drives all randomness.
	Seed int64
	// MaxSweep lists the client counts scanned for "maximum throughput"
	// readings.
	MaxSweep []int
	// CurveSweep lists the client counts of latency-throughput curves.
	CurveSweep []int
}

// DefaultSuite returns the full-fidelity experiment configuration.
func DefaultSuite() Suite {
	return Suite{
		Warmup:     500 * time.Millisecond,
		Measure:    2 * time.Second,
		Seed:       42,
		MaxSweep:   []int{25, 50, 100, 200, 400},
		CurveSweep: []int{1, 2, 5, 10, 25, 50, 100, 200, 400},
	}
}

// QuickSuite returns a reduced configuration for CI and unit tests.
func QuickSuite() Suite {
	return Suite{
		Warmup:     200 * time.Millisecond,
		Measure:    time.Second,
		Seed:       42,
		MaxSweep:   []int{50, 200},
		CurveSweep: []int{1, 10, 50, 200},
	}
}

func (s Suite) base() Options {
	return Options{Warmup: s.Warmup, Measure: s.Measure, Seed: s.Seed}
}

// Fig7RelayGroups regenerates Figure 7: maximum throughput of a 25-node
// PigPaxos cluster as the number of relay groups varies from 2 to 6.
func (s Suite) Fig7RelayGroups() Report {
	rep := Report{
		ID:     "Figure 7",
		Title:  "Max throughput vs number of relay groups, 25-node PigPaxos",
		Header: []string{"relay groups", "max throughput (req/s)"},
		Raw:    map[string]float64{},
	}
	for r := 2; r <= 6; r++ {
		o := s.base()
		o.Protocol = PigPaxos
		o.N = 25
		o.NumGroups = r
		tp := MaxThroughput(o, s.MaxSweep)
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", r), fmt.Sprintf("%.0f", tp)})
		rep.Raw[fmt.Sprintf("r%d", r)] = tp
	}
	return rep
}

func curveRows(pts []CurvePoint) [][]string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Clients),
			fmt.Sprintf("%.0f", p.Throughput),
			fmt.Sprintf("%.2f", p.LatencyMs),
			fmt.Sprintf("%.2f", p.P99Ms),
		})
	}
	return rows
}

func (s Suite) curveReport(id, title string, configs map[string]Options) Report {
	rep := Report{
		ID:     id,
		Title:  title,
		Header: []string{"system", "clients", "throughput (req/s)", "mean latency (ms)", "p99 (ms)"},
		Raw:    map[string]float64{},
	}
	// Deterministic ordering of configs by name length then name keeps
	// reports stable across runs.
	names := make([]string, 0, len(configs))
	for n := range configs {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		pts := Curve(configs[name], s.CurveSweep)
		best := 0.0
		for _, p := range pts {
			if p.Throughput > best {
				best = p.Throughput
			}
		}
		rep.Raw[name] = best
		for _, row := range curveRows(pts) {
			rep.Rows = append(rep.Rows, append([]string{name}, row...))
		}
	}
	return rep
}

// Fig8Scalability25 regenerates Figure 8: latency vs throughput for Paxos,
// EPaxos and PigPaxos (3 relay groups) on a 25-node cluster.
func (s Suite) Fig8Scalability25() Report {
	mk := func(p Protocol) Options {
		o := s.base()
		o.Protocol = p
		o.N = 25
		o.NumGroups = 3
		return o
	}
	return s.curveReport("Figure 8",
		"Latency vs throughput, 25-node cluster (PigPaxos: 3 relay groups)",
		map[string]Options{
			"Paxos":    mk(Paxos),
			"EPaxos":   mk(EPaxos),
			"PigPaxos": mk(PigPaxos),
		})
}

// Fig9WAN regenerates Figure 9: latency vs throughput on a 15-node WAN
// cluster spread over Virginia, California and Oregon, PigPaxos with one
// relay group per region.
func (s Suite) Fig9WAN() Report {
	mk := func(p Protocol) Options {
		o := s.base()
		o.Protocol = p
		o.N = 15
		o.WAN = true
		o.ZoneGroups = true
		return o
	}
	// WAN RTTs mean each closed-loop client offers only ~7 req/s, so the
	// sweep extends far beyond the LAN ladder to reach saturation.
	wanSweep := make([]int, 0, len(s.CurveSweep)+2)
	wanSweep = append(wanSweep, s.CurveSweep...)
	last := wanSweep[len(wanSweep)-1]
	wanSweep = append(wanSweep, last*2, last*4)
	ws := s
	ws.CurveSweep = wanSweep
	return ws.curveReport("Figure 9",
		"Latency vs throughput, 15-node WAN cluster (3 regions = 3 relay groups)",
		map[string]Options{
			"Paxos":    mk(Paxos),
			"PigPaxos": mk(PigPaxos),
		})
}

// Fig10Small5 regenerates Figure 10: latency vs throughput on a 5-node
// cluster, PigPaxos with 2 relay groups.
func (s Suite) Fig10Small5() Report {
	mk := func(p Protocol) Options {
		o := s.base()
		o.Protocol = p
		o.N = 5
		o.NumGroups = 2
		return o
	}
	return s.curveReport("Figure 10",
		"Latency vs throughput, 5-node cluster (PigPaxos: 2 relay groups)",
		map[string]Options{
			"Paxos":    mk(Paxos),
			"EPaxos":   mk(EPaxos),
			"PigPaxos": mk(PigPaxos),
		})
}

// Fig11Small9 regenerates Figure 11: latency vs throughput on a 9-node
// cluster with PigPaxos at 2 and 3 relay groups vs Paxos.
func (s Suite) Fig11Small9() Report {
	mk := func(p Protocol, groups int) Options {
		o := s.base()
		o.Protocol = p
		o.N = 9
		o.NumGroups = groups
		return o
	}
	return s.curveReport("Figure 11",
		"Latency vs throughput, 9-node cluster (PigPaxos: 2 and 3 relay groups)",
		map[string]Options{
			"Paxos":       mk(Paxos, 0),
			"PigPaxos-r2": mk(PigPaxos, 2),
			"PigPaxos-r3": mk(PigPaxos, 3),
		})
}

// PayloadSweep is the Figure 12 payload ladder.
var PayloadSweep = []int{8, 128, 256, 512, 1024, 1280}

// Fig12PayloadSize regenerates Figure 12: maximum throughput (absolute and
// normalized) of 25-node Paxos and PigPaxos (3 relay groups) under a
// write-only workload as the payload grows from 8 to 1280 bytes, with 150
// clients as in the paper.
func (s Suite) Fig12PayloadSize() Report {
	rep := Report{
		ID:     "Figure 12",
		Title:  "Max throughput vs payload size, 25 nodes, write-only, 150 clients",
		Header: []string{"payload (B)", "Paxos (req/s)", "Paxos norm", "PigPaxos (req/s)", "PigPaxos norm"},
		Raw:    map[string]float64{},
	}
	type point struct{ paxos, pig float64 }
	pts := make([]point, 0, len(PayloadSweep))
	var maxPaxos, maxPig float64
	for _, size := range PayloadSweep {
		mk := func(p Protocol) float64 {
			o := s.base()
			o.Protocol = p
			o.N = 25
			o.NumGroups = 3
			o.Clients = 150
			o.Workload = workload.Config{PayloadSize: size}.WriteOnly()
			return Run(o).Throughput
		}
		pt := point{paxos: mk(Paxos), pig: mk(PigPaxos)}
		pts = append(pts, pt)
		if pt.paxos > maxPaxos {
			maxPaxos = pt.paxos
		}
		if pt.pig > maxPig {
			maxPig = pt.pig
		}
	}
	for i, size := range PayloadSweep {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f", pts[i].paxos),
			fmt.Sprintf("%.3f", pts[i].paxos/maxPaxos),
			fmt.Sprintf("%.0f", pts[i].pig),
			fmt.Sprintf("%.3f", pts[i].pig/maxPig),
		})
		rep.Raw[fmt.Sprintf("paxos%d", size)] = pts[i].paxos
		rep.Raw[fmt.Sprintf("pig%d", size)] = pts[i].pig
	}
	rep.Raw["paxosNormMin"] = 1
	rep.Raw["pigNormMin"] = 1
	for i := range pts {
		if v := pts[i].paxos / maxPaxos; v < rep.Raw["paxosNormMin"] {
			rep.Raw["paxosNormMin"] = v
		}
		if v := pts[i].pig / maxPig; v < rep.Raw["pigNormMin"] {
			rep.Raw["pigNormMin"] = v
		}
	}
	return rep
}

// Fig13FaultTolerance regenerates Figure 13: throughput over time of a
// 25-node PigPaxos cluster with 3 relay groups and a 50ms relay timeout,
// sampled over one-second intervals, while one node is crashed for part of
// the run.
func (s Suite) Fig13FaultTolerance() Report {
	measure := 12 * time.Second
	crashAt := 4 * time.Second
	recoverAt := 8 * time.Second
	o := s.base()
	o.Protocol = PigPaxos
	o.N = 25
	o.NumGroups = 3
	o.Clients = 200
	o.Measure = measure
	o.SampleWidth = time.Second
	o.CrashNode = 25 // a follower
	o.CrashAt = o.Warmup + crashAt
	o.RecoverAt = o.Warmup + recoverAt
	o.MutPig = nil // default 50ms relay timeout, as in the paper
	r := Run(o)

	rep := Report{
		ID:     "Figure 13",
		Title:  "Throughput over time under a single-node failure (25 nodes, 3 groups, 50ms relay timeout)",
		Header: []string{"time (s)", "throughput (req/s)", "phase"},
		Raw:    map[string]float64{},
	}
	var before, during float64
	var nBefore, nDuring int
	for _, p := range r.Series {
		phase := "healthy"
		if p.Start >= crashAt && p.Start < recoverAt {
			phase = "FAULT"
			during += p.Rate
			nDuring++
		} else if p.Start < crashAt {
			before += p.Rate
			nBefore++
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f", p.Start.Seconds()),
			fmt.Sprintf("%.0f", p.Rate),
			phase,
		})
	}
	if nBefore > 0 && nDuring > 0 {
		rep.Raw["healthy"] = before / float64(nBefore)
		rep.Raw["faulted"] = during / float64(nDuring)
		rep.Raw["declinePct"] = 100 * (1 - (during/float64(nDuring))/(before/float64(nBefore)))
		rep.Rows = append(rep.Rows, []string{
			"", fmt.Sprintf("decline: %.1f%%", rep.Raw["declinePct"]), "",
		})
	}
	return rep
}

// BatchSizeSweep is the batch-size ladder of the batching study.
var BatchSizeSweep = []int{1, 4, 16, 64}

// BatchSweep measures leader-side command batching (not in the paper; the
// natural next step after its per-message leader cost analysis): saturation
// throughput, realized mean batch size, and cluster messages per command
// for Paxos and PigPaxos as the batch-size cap grows, on the 25-node
// cluster at 200 clients. BatchSize 1 is the paper's unbatched baseline.
func (s Suite) BatchSweep() Report {
	rep := Report{
		ID:     "Batching",
		Title:  "Batch-size sweep, 25-node cluster, 200 clients (PigPaxos: 3 relay groups)",
		Header: []string{"system", "batch cap", "throughput (req/s)", "mean batch", "msgs/cmd", "mean latency (ms)", "p99 (ms)"},
		Raw:    map[string]float64{},
	}
	for _, proto := range []Protocol{Paxos, PigPaxos} {
		for _, b := range BatchSizeSweep {
			o := s.base()
			o.Protocol = proto
			o.N = 25
			o.NumGroups = 3
			o.Clients = 200
			o.BatchSize = b
			r := Run(o)
			rep.Rows = append(rep.Rows, []string{
				proto.String(),
				fmt.Sprintf("%d", b),
				fmt.Sprintf("%.0f", r.Throughput),
				fmt.Sprintf("%.1f", r.MeanBatchSize),
				fmt.Sprintf("%.1f", r.MsgsPerCmd),
				fmt.Sprintf("%.2f", float64(r.Latency.Mean.Microseconds())/1000),
				fmt.Sprintf("%.2f", float64(r.Latency.P99.Microseconds())/1000),
			})
			rep.Raw[fmt.Sprintf("%s_b%d", proto, b)] = r.Throughput
			rep.Raw[fmt.Sprintf("%s_b%d_batch", proto, b)] = r.MeanBatchSize
			rep.Raw[fmt.Sprintf("%s_b%d_msgs", proto, b)] = r.MsgsPerCmd
		}
	}
	return rep
}

// Table1MessageLoad regenerates Table 1 (25-node analytical message loads),
// cross-checked against messages actually counted on the simulated network.
func (s Suite) Table1MessageLoad() Report {
	return s.messageLoadTable("Table 1", 25, []int{2, 3, 4, 5, 6})
}

// Table2MessageLoad regenerates Table 2 (9-node analytical message loads).
func (s Suite) Table2MessageLoad() Report {
	return s.messageLoadTable("Table 2", 9, []int{2, 3, 4})
}

func (s Suite) messageLoadTable(id string, n int, groups []int) Report {
	rows := model.Table(n, groups)
	rep := Report{
		ID:     id,
		Title:  fmt.Sprintf("Analytical message load, %d-node cluster", n),
		Header: []string{"relay groups (r)", "msgs at leader (Ml)", "msgs at follower (Mf)", "leader overhead"},
		Raw:    map[string]float64{},
	}
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Groups)
		if r.IsPaxos {
			label += " (Paxos)"
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			fmt.Sprintf("%.0f", r.Leader),
			fmt.Sprintf("%.2f", r.Follower),
			fmt.Sprintf("%.0f%%", r.OverheadPct),
		})
		rep.Raw[fmt.Sprintf("Ml_r%d", r.Groups)] = r.Leader
		rep.Raw[fmt.Sprintf("Mf_r%d", r.Groups)] = r.Follower
	}
	return rep
}

// UtilizationReport measures the §6.1 claim directly: CPU utilization of
// the leader vs the average follower on a saturated 25-node PigPaxos
// cluster, as the relay-group count grows. The paper verified its
// analytical leader-overhead column by observing exactly this gap on EC2.
func (s Suite) UtilizationReport() Report {
	rep := Report{
		ID:     "Section 6.1",
		Title:  "Leader vs follower CPU utilization, 25-node PigPaxos at saturation",
		Header: []string{"relay groups", "leader util", "mean follower util", "measured gap", "model overhead"},
		Raw:    map[string]float64{},
	}
	for r := 2; r <= 6; r++ {
		o := s.base()
		o.Protocol = PigPaxos
		o.N = 25
		o.NumGroups = r
		o.Clients = 200
		res := Run(o)
		gap := 0.0
		if res.MeanFollowerUtil > 0 {
			gap = res.LeaderUtil/res.MeanFollowerUtil - 1
		}
		ml, mf := model.LeaderLoad(r), model.FollowerLoad(25, r)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%.0f%%", 100*res.LeaderUtil),
			fmt.Sprintf("%.0f%%", 100*res.MeanFollowerUtil),
			fmt.Sprintf("%.0f%%", 100*gap),
			fmt.Sprintf("%.0f%%", 100*model.LeaderOverhead(ml, mf)),
		})
		rep.Raw[fmt.Sprintf("gap_r%d", r)] = gap
	}
	return rep
}
