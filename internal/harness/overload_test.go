package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/workload"
)

// overloadOpts mirrors cmd/pigbench's overload scenario shape at the quick
// suite's window: batch 16 under the default 4-deep pipeline derives
// MaxPending = 4×4×16 = 256 on the leader. The window must be long enough
// to amortize the pre-backpressure transient — at the 5× rung the first
// ~100ms of arrivals all race in before Busy paces the fleet.
func overloadOpts(p Protocol) OverloadOptions {
	return OverloadOptions{
		Options: Options{
			Protocol:  p,
			N:         25,
			NumGroups: 3,
			Clients:   64,
			Warmup:    200 * time.Millisecond,
			Measure:   time.Second,
			Seed:      42,
			Workload:  workload.Config{Keys: 1000},
			BatchSize: 16,
		},
		OpTimeout: time.Second,
		QueueTTL:  time.Second,
	}
}

// TestOverloadGoodputHoldsPastSaturation pushes the open-loop ladder to
// ~5× the saturation knee and checks the §5.4 property this PR exists
// for: with admission control on, the leader's ingress queue stays within
// the derived MaxPending and goodput at the top rung holds within 20% of
// the sweep's peak instead of collapsing under queueing delay.
func TestOverloadGoodputHoldsPastSaturation(t *testing.T) {
	const bound = 4 * 4 * 16 // derived MaxPending
	// PigPaxos saturates near 25k ops/s in this configuration; the ladder
	// ends at roughly 5× that.
	rates := []float64{5000, 25000, 125000}
	results := OverloadSweep(overloadOpts(PigPaxos), rates)
	peak := 0.0
	for _, r := range results {
		t.Logf("%v", r)
		if r.Goodput > peak {
			peak = r.Goodput
		}
		if r.MaxQueueDepth > bound {
			t.Errorf("rate %.0f: ingress high-water %d exceeded derived MaxPending %d", r.Rate, r.MaxQueueDepth, bound)
		}
	}
	last := results[len(results)-1]
	if last.Goodput < 0.8*peak {
		t.Errorf("past-saturation goodput %.0f/s fell below 80%% of peak %.0f/s", last.Goodput, peak)
	}
	// Past the knee the bound must actually bind: rejections flow and the
	// queue pins at its cap rather than growing without bound.
	if last.LeaderBusy == 0 || last.Busy == 0 {
		t.Error("5× saturation produced no Busy backpressure")
	}
	if last.MaxQueueDepth != bound {
		t.Errorf("5× saturation queue high-water %d, want pinned at %d", last.MaxQueueDepth, bound)
	}
}

// TestOverloadSweepDeterministic reruns the full ladder and requires
// bit-identical results — counters, latency digests, queue high-waters —
// the property that makes overload regressions diffable.
func TestOverloadSweepDeterministic(t *testing.T) {
	rates := []float64{5000, 125000}
	a := OverloadSweep(overloadOpts(PigPaxos), rates)
	b := OverloadSweep(overloadOpts(PigPaxos), rates)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rerun diverged:\n  %v\n  %v", a, b)
	}
}
