package harness

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/netsim"
)

// requireWANHealthy asserts the multi-region recovery criteria: linearizable
// histories, every script completed (all acked commands committed), replicas
// converged, and a per-region breakdown present for all three regions.
func requireWANHealthy(t *testing.T, r ScenarioResult, o ScenarioOptions) {
	t.Helper()
	if !r.Linearizable {
		t.Errorf("%v: history not linearizable (%d ops)", r.Protocol, r.LinChecked)
	}
	if !r.AllComplete {
		t.Errorf("%v: not every client finished its script", r.Protocol)
	}
	if !r.Converged {
		t.Errorf("%v: replica state machines diverged", r.Protocol)
	}
	if want := o.Clients * o.OpsPerClient; r.Acked != want {
		t.Errorf("%v: acked %d ops, want %d", r.Protocol, r.Acked, want)
	}
	if len(r.Regions) != 3 {
		t.Fatalf("%v: %d region breakdowns, want 3", r.Protocol, len(r.Regions))
	}
	total := 0
	for _, reg := range r.Regions {
		total += reg.Acked
		if reg.Latency.Count != uint64(reg.Acked) {
			t.Errorf("%v zone %d: %d acked but %d latency samples", r.Protocol, reg.Zone, reg.Acked, reg.Latency.Count)
		}
	}
	if total != r.Acked {
		t.Errorf("%v: region acks sum to %d, cluster says %d", r.Protocol, total, r.Acked)
	}
}

// region pulls one zone's breakdown out of a result.
func region(t *testing.T, r ScenarioResult, zone int) RegionResult {
	t.Helper()
	for _, reg := range r.Regions {
		if reg.Zone == zone {
			return reg
		}
	}
	t.Fatalf("no breakdown for zone %d in %v", zone, r.Regions)
	return RegionResult{}
}

// The Figure 9 shape: on the three-region deployment at n=9 under
// closed-loop load, PigPaxos's per-region client latency is at or below
// Paxos's in every region — the leader pays 2r instead of 2(N−1) message
// costs per slot, and at WAN load that difference is what clients feel.
func TestWANFigure9Shape(t *testing.T) {
	pax := RunScenario(WANScenario(Paxos, 9, 80, 20, 42), nil)
	pig := RunScenario(WANScenario(PigPaxos, 9, 80, 20, 42), nil)
	requireWANHealthy(t, pax, WANScenario(Paxos, 9, 80, 20, 42))
	requireWANHealthy(t, pig, WANScenario(PigPaxos, 9, 80, 20, 42))
	for _, z := range []int{config.ZoneVirginia, config.ZoneCalifornia, config.ZoneOregon} {
		pm := region(t, pax, z).Latency.Mean
		gm := region(t, pig, z).Latency.Mean
		if gm > pm {
			t.Errorf("zone %d: PigPaxos mean %v above Paxos %v — Figure 9 separation lost", z, gm, pm)
		}
	}
	if pig.Latency.P99 > pax.Latency.P99 {
		t.Errorf("cluster-wide p99: PigPaxos %v above Paxos %v", pig.Latency.P99, pax.Latency.P99)
	}
}

// A minority region (Oregon) losing its WAN uplinks maroons exactly that
// region: its clients stall for the cut (bounded by heal + one client-retry
// interval) while the majority side keeps serving smoothly — and after the
// heal everything recovers to a linearizable, converged whole.
func TestScenarioRegionPartitionMinorityHeals(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := WANScenario(p, 9, 8, 16, 42)
			cut := o.Warmup + 300*time.Millisecond
			heal := 500 * time.Millisecond
			sched := chaos.RegionCut(config.ZoneOregon, cut, heal)
			r := RunScenario(o, sched)
			requireWANHealthy(t, r, o)
			or := region(t, r, config.ZoneOregon)
			if or.AvailabilityGap < heal {
				t.Errorf("marooned region gap %v below the %v cut", or.AvailabilityGap, heal)
			}
			if bound := heal + o.ClientRetry + 200*time.Millisecond; or.AvailabilityGap > bound {
				t.Errorf("marooned region gap %v exceeds heal+retry bound %v", or.AvailabilityGap, bound)
			}
			if or.Stalls < 1 {
				t.Error("marooned region should record a stall")
			}
			for _, z := range []int{config.ZoneVirginia, config.ZoneCalifornia} {
				if reg := region(t, r, z); reg.AvailabilityGap >= 250*time.Millisecond || reg.Stalls != 0 {
					t.Errorf("majority-side zone %d stalled: gap %v, stalls %d", z, reg.AvailabilityGap, reg.Stalls)
				}
			}
			if again := RunScenario(o, sched); !reflect.DeepEqual(r, again) {
				t.Error("same seed diverged")
			}
		})
	}
}

// Cutting the leader's own region forces a cross-region failover: a bounded
// availability gap on the order of the election timeout, then the majority
// side serves again and the healed region catches up — acked commands all
// commit, histories stay linearizable.
func TestScenarioRegionPartitionLeaderRegion(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := WANScenario(p, 9, 8, 16, 42)
			sched := chaos.RegionCut(config.ZoneVirginia, o.Warmup+300*time.Millisecond, 500*time.Millisecond)
			r := RunScenario(o, sched)
			requireWANHealthy(t, r, o)
			if r.AvailabilityGap < 200*time.Millisecond {
				t.Errorf("leader-region cut opened only a %v gap; failover costs at least an election timeout", r.AvailabilityGap)
			}
			if r.AvailabilityGap > 2*time.Second {
				t.Errorf("failover gap %v unbounded", r.AvailabilityGap)
			}
		})
	}
}

// A leader placement flip moves leadership into the target region: the
// fault log records the campaigner from California, service pays a bounded
// handover gap, and the run stays healthy end to end.
func TestScenarioPlacementFlip(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := WANScenario(p, 9, 8, 16, 42)
			sched := chaos.PlacementFlip(config.ZoneCalifornia, o.Warmup+o.Measure/2)
			r := RunScenario(o, sched)
			requireWANHealthy(t, r, o)
			if len(r.FaultLog) != 1 {
				t.Fatalf("fault log = %v, want one flip", r.FaultLog)
			}
			fl := r.FaultLog[0]
			if fl.Kind != chaos.LeaderPlacementFlip || fl.Zone != config.ZoneCalifornia {
				t.Errorf("fault log = %v", fl)
			}
			if fl.Target.Zone() != config.ZoneCalifornia {
				t.Errorf("campaigner %v not from California", fl.Target)
			}
			if r.AvailabilityGap > 2*time.Second {
				t.Errorf("placement handover gap %v unbounded", r.AvailabilityGap)
			}
		})
	}
}

// EPaxos is leaderless: a placement flip resolves to nobody, is skipped, and
// the run sails on untouched.
func TestScenarioPlacementFlipSkippedForEPaxos(t *testing.T) {
	o := ScenarioOptions{}
	o.Protocol = EPaxos
	o.N = 9
	o.WAN = true
	o.RegionClients = true
	o.Clients = 9
	o.OpsPerClient = 12
	o.Warmup = 300 * time.Millisecond
	o.Measure = 1500 * time.Millisecond
	o.Seed = 42
	sched := chaos.PlacementFlip(config.ZoneCalifornia, o.Warmup+500*time.Millisecond)
	r := RunScenario(o, sched)
	if len(r.FaultLog) != 0 {
		t.Errorf("fault log = %v, want empty (flip unresolvable)", r.FaultLog)
	}
	if !r.Linearizable || !r.AllComplete || !r.Converged {
		t.Errorf("EPaxos WAN run unhealthy: %v", r)
	}
}

// Seed-determinism regression over WAN topologies: every protocol, run twice
// under the same region-fault schedule at the same seed, produces
// bit-identical results — metrics, per-region breakdowns, and fault logs
// alike. Extends the LAN cross-protocol determinism tests to NewWAN3.
func TestWANScenarioSeedDeterminismAllProtocols(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos, EPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			var o ScenarioOptions
			var sched chaos.Schedule
			if p == EPaxos {
				// No retransmit machinery: reorder-only degradation plus a
				// sluggish window.
				o = ScenarioOptions{}
				o.Protocol = p
				o.N = 9
				o.WAN = true
				o.RegionClients = true
				o.Clients = 9
				o.OpsPerClient = 12
				o.Warmup = 300 * time.Millisecond
				o.Measure = 1500 * time.Millisecond
				o.Seed = 7
				sched = chaos.Merge(
					chaos.DegradeWANPair(config.ZoneVirginia, config.ZoneOregon,
						netsim.LinkFaults{Reorder: 0.2, ReorderWindow: 2 * time.Millisecond},
						o.Warmup+200*time.Millisecond, 600*time.Millisecond),
					chaos.Schedule{{At: o.Warmup + 400*time.Millisecond, Action: chaos.Action{
						Kind: chaos.Sluggish, Node: config.NewWAN3(9).Nodes[4], Factor: 3,
						Duration: 300 * time.Millisecond,
					}}},
				)
			} else {
				// Lossy topology + the full region fault family.
				o = WANScenario(p, 9, 6, 12, 7)
				o.WANLossy = true
				sched = chaos.Merge(
					chaos.DegradeWANPair(config.ZoneCalifornia, config.ZoneOregon,
						netsim.LinkFaults{Loss: 0.03, Duplicate: 0.02},
						o.Warmup+100*time.Millisecond, 400*time.Millisecond),
					chaos.RegionCut(config.ZoneOregon, o.Warmup+600*time.Millisecond, 400*time.Millisecond),
					chaos.PlacementFlip(config.ZoneCalifornia, o.Warmup+1200*time.Millisecond),
				)
			}
			if err := chaos.ValidateRegions(sched, config.NewWAN3(9), o.Warmup+o.Measure+5*time.Second); err != nil {
				t.Fatal(err)
			}
			r := RunScenario(o, sched)
			again := RunScenario(o, sched)
			if !reflect.DeepEqual(r, again) {
				t.Fatalf("same seed diverged:\n%v\n%v", r, again)
			}
			if r.Acked == 0 {
				t.Error("no operations acknowledged")
			}
			if !r.Linearizable {
				t.Errorf("%v: WAN chaos run not linearizable", p)
			}
		})
	}
}

// The lossy WAN topology on its own (no scheduled faults) is fully masked by
// retransmission and client retries: complete, converged, linearizable.
func TestWANLossyMaskedByRetries(t *testing.T) {
	for _, p := range []Protocol{Paxos, PigPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			o := WANScenario(p, 9, 6, 12, 21)
			o.WANLossy = true
			r := RunScenario(o, nil)
			requireWANHealthy(t, r, o)
		})
	}
}

// WAN explorer runs: every schedule from the WAN palette executes to a
// healthy verdict on the Paxos family, deterministically.
func TestWANExploreScenarios(t *testing.T) {
	o := WANScenario(PigPaxos, 9, 6, 12, 11)
	results := ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 3})
	again := ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 3})
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if !r.Linearizable {
			t.Errorf("schedule %d: not linearizable (faults %v)", i, r.FaultLog)
		}
		if !reflect.DeepEqual(r, again[i]) {
			t.Errorf("schedule %d: same seed diverged", i)
		}
	}
}
