// Overload harness: the §5.4 saturation experiment under admission
// control. Open-loop clients offer a fixed aggregate Poisson rate —
// arrivals launch on schedule whether or not earlier ops completed, so
// pushing the ladder past the saturation knee grows the leader's ingress
// queue instead of throttling the offered load. With MaxPending bounding
// that queue and Busy backpressure pacing the clients, goodput should stay
// flat past the knee instead of collapsing under queueing delay; without
// it (MaxPending < 0) the same sweep shows the seed's degradation.
package harness

import (
	"fmt"
	"time"

	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/wire"
	"pigpaxos/internal/workload"
)

// OverloadOptions parameterize one open-loop overload run. The embedded
// Options configure the cluster exactly as Run does; the closed-loop
// clients are replaced by open-loop Poisson arrival processes.
type OverloadOptions struct {
	Options

	// Rate is the aggregate offered load in ops/sec (required). It is
	// split evenly over Clients; superposition keeps the aggregate exact.
	Rate float64
	// OpTimeout abandons an op this long after its arrival (default 1s of
	// virtual time). Abandoned ops count as timeouts.
	OpTimeout time.Duration
	// ClientInFlight caps one client's outstanding ops; arrivals beyond
	// it are shed client-side (default 64) — the open loop's stand-in for
	// an overloaded client machine, same as loadgen's MaxInFlight.
	ClientInFlight int

	// MaxPending, QueueTTL and OverloadLatency are forwarded to every
	// replica's decision core. MaxPending 0 re-enables the window-derived
	// bound that Run's closed-loop path lifts; negative runs unbounded
	// (the seed behaviour, the sweep's control arm).
	MaxPending      int
	QueueTTL        time.Duration
	OverloadLatency time.Duration
}

func (o *OverloadOptions) applyDefaults() {
	o.Options.applyDefaults()
	if o.OpTimeout == 0 {
		o.OpTimeout = time.Second
	}
	if o.ClientInFlight == 0 {
		o.ClientInFlight = 64
	}
}

// OverloadResult is one rung's measurement. Offered/Completed/Shed/Busy/
// Timeouts count ops whose scheduled arrival fell inside the measurement
// window; goodput is their completions per second of window.
type OverloadResult struct {
	Rate    float64
	Offered uint64
	// Completed counts in-window arrivals acknowledged OK before the
	// drain grace expired.
	Completed uint64
	// Shed counts arrivals dropped client-side at the in-flight cap.
	Shed uint64
	// Busy counts wire.Busy rejections received for in-window ops; each
	// is retried after the leader's hint, so Busy is backpressure volume,
	// not loss.
	Busy uint64
	// Timeouts counts in-window arrivals abandoned after OpTimeout.
	Timeouts uint64
	// LeaderBusy/DroppedExpired/MaxQueueDepth aggregate the replicas'
	// overload counters: rejections issued, queued commands dropped after
	// QueueTTL, and the deepest ingress queue any leader saw — bounded by
	// the effective MaxPending when admission control is on.
	LeaderBusy     uint64
	DroppedExpired uint64
	MaxQueueDepth  uint64
	// Goodput is in-window completions per second; OfferedRate the
	// realized arrival rate over the window.
	Goodput     float64
	OfferedRate float64
	Latency     metrics.Summary
}

// String implements fmt.Stringer.
func (r OverloadResult) String() string {
	return fmt.Sprintf(
		"rate %.0f: goodput %.0f/s (completed %d shed %d busy %d timeout %d dropped %d qdepth %d) lat %v",
		r.Rate, r.Goodput, r.Completed, r.Shed, r.Busy, r.Timeouts,
		r.DroppedExpired, r.MaxQueueDepth, r.Latency)
}

// olOp is one outstanding open-loop operation.
type olOp struct {
	cmd      kvstore.Command
	at       time.Duration
	inWindow bool
	// busyN counts consecutive Busy rejections, driving exponential
	// backoff: without it every shed op retries each EWMA interval and
	// the leader livelocks on issuing rejections past ~5× saturation.
	busyN int
}

// busyBackoff grows the leader's retry hint exponentially with the op's
// consecutive rejections, capped so an op still retries a few times
// before its abandonment timeout.
func busyBackoff(hint time.Duration, busyN int, cap time.Duration) time.Duration {
	if hint <= 0 {
		hint = time.Millisecond
	}
	for i := 1; i < busyN && hint < cap; i++ {
		hint *= 2
	}
	if hint > cap {
		hint = cap
	}
	return hint
}

// olClient is an open-loop simulated client: a Poisson arrival clock in
// virtual time, a bounded pending set, Busy backoff-and-retry, per-op
// abandonment. It deliberately mirrors loadgen's worker semantics so the
// sim sweep and the metal sweep measure the same client model.
type olClient struct {
	id      uint64
	ep      *netsim.Endpoint
	target  ids.ID
	gen     *workload.Generator
	arr     *workload.Arrivals
	timeout time.Duration
	cap     int

	seq     uint64
	pending map[uint64]olOp
	stopped bool

	warmupEnd, windowEnd time.Duration
	hist                 *metrics.Histogram
	offered, completed   *metrics.Counter
	shed, busy, timeouts *metrics.Counter
}

// tick fires one scheduled arrival and arms the next.
func (c *olClient) tick() {
	if c.stopped {
		return
	}
	now := c.ep.Now()
	inWin := now >= c.warmupEnd && now < c.windowEnd
	if inWin {
		c.offered.Inc()
	}
	if len(c.pending) >= c.cap {
		if inWin {
			c.shed.Inc()
		}
	} else {
		c.seq++
		cmd := c.gen.Next(c.id, c.seq)
		// The generator's payload buffer is shared across Next calls;
		// retries re-send the same op, so pin a private copy.
		if cmd.Value != nil {
			cmd.Value = append([]byte(nil), cmd.Value...)
		}
		c.pending[c.seq] = olOp{cmd: cmd, at: now, inWindow: inWin}
		c.ep.Send(c.target, wire.Request{Cmd: cmd})
		seq := c.seq
		c.ep.After(c.timeout, func() {
			if o, ok := c.pending[seq]; ok {
				delete(c.pending, seq)
				if o.inWindow {
					c.timeouts.Inc()
				}
			}
		})
	}
	c.ep.After(c.arr.Next(), c.tick)
}

// OnMessage handles acks, redirects and Busy backpressure.
func (c *olClient) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.Busy:
		o, ok := c.pending[v.Seq]
		if !ok {
			return // already abandoned
		}
		if o.inWindow {
			c.busy.Inc()
		}
		o.busyN++
		c.pending[v.Seq] = o
		seq := v.Seq
		c.ep.After(busyBackoff(v.RetryAfter, o.busyN, c.timeout/4), func() {
			if o, ok := c.pending[seq]; ok {
				c.ep.Send(v.Leader, wire.Request{Cmd: o.cmd})
			}
		})
	case wire.Reply:
		o, ok := c.pending[v.Seq]
		if !ok {
			return
		}
		if !v.OK {
			if !v.Leader.IsZero() && v.Leader != c.target {
				// Redirected: move this client (and the stuck op) over.
				c.target = v.Leader
				c.ep.Send(v.Leader, wire.Request{Cmd: o.cmd})
			}
			return
		}
		delete(c.pending, v.Seq)
		if o.inWindow {
			c.completed.Inc()
			c.hist.Observe(c.ep.Now() - o.at)
		}
	}
}

// RunOverload executes one open-loop rung and returns its measurement.
func RunOverload(opts OverloadOptions) OverloadResult {
	opts.applyDefaults()
	if opts.Rate <= 0 {
		panic(fmt.Sprintf("harness: non-positive overload rate %v", opts.Rate))
	}
	sim := des.New(opts.Seed)
	cc := opts.cluster()
	net := netsim.New(sim, cc, opts.Net)

	overloadKnobs := func(cfg *paxos.Config) {
		// paxosBatching lifts the ingress bound for closed-loop capacity
		// runs; this experiment is the open-loop consumer that wants it.
		cfg.MaxPending = opts.MaxPending
		cfg.QueueTTL = opts.QueueTTL
		cfg.OverloadLatency = opts.OverloadLatency
	}

	leader := cc.Nodes[0]
	replicas := make(map[ids.ID]replica, opts.N)
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		var rep replica
		switch opts.Protocol {
		case PigPaxos:
			cfg := pigpaxos.Config{
				Paxos:     paxos.Config{Cluster: cc, ID: id, InitialLeader: leader},
				NumGroups: opts.NumGroups,
			}
			opts.paxosBatching(&cfg.Paxos)
			overloadKnobs(&cfg.Paxos)
			if opts.MutPig != nil {
				opts.MutPig(&cfg)
			}
			rep = pigpaxos.New(ep, cfg)
		default: // Paxos; EPaxos has no leader ingress queue to bound
			cfg := paxos.Config{Cluster: cc, ID: id, InitialLeader: leader}
			opts.paxosBatching(&cfg)
			overloadKnobs(&cfg)
			if opts.MutPaxos != nil {
				opts.MutPaxos(&cfg)
			}
			rep = paxos.New(ep, cfg, nil)
		}
		tr.h = rep.OnMessage
		replicas[id] = rep
	}

	hist := metrics.NewHistogram()
	var offered, completed, shed, busy, timeouts metrics.Counter
	warmupEnd := opts.Warmup
	windowEnd := opts.Warmup + opts.Measure
	perRate := opts.Rate / float64(opts.Clients)

	clients := make([]*olClient, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		cl := &olClient{
			id:        uint64(i + 1),
			target:    leader,
			gen:       workload.New(opts.Workload, sim.Rand()),
			arr:       workload.NewArrivals(perRate, sim.Rand()),
			timeout:   opts.OpTimeout,
			cap:       opts.ClientInFlight,
			pending:   make(map[uint64]olOp),
			warmupEnd: warmupEnd,
			windowEnd: windowEnd,
			hist:      hist,
			offered:   &offered,
			completed: &completed,
			shed:      &shed,
			busy:      &busy,
			timeouts:  &timeouts,
		}
		cl.ep = net.Register(ids.NewID(cc.ZoneOf(leader), 1000+i), cl, true)
		clients[i] = cl
	}

	sim.Schedule(0, func() {
		for _, id := range cc.Nodes {
			replicas[id].Start()
		}
	})
	for i, cl := range clients {
		cl := cl
		sim.Schedule(time.Duration(i)*50*time.Microsecond+time.Millisecond, cl.tick)
	}

	// Arrivals stop at the window's end; the drain grace lets in-window
	// stragglers complete or time out before counters are read.
	sim.Schedule(windowEnd, func() {
		for _, cl := range clients {
			cl.stopped = true
		}
	})
	sim.Run(windowEnd + opts.OpTimeout + 50*time.Millisecond)

	res := OverloadResult{
		Rate:      opts.Rate,
		Offered:   uint64(offered.Value()),
		Completed: uint64(completed.Value()),
		Shed:      uint64(shed.Value()),
		Busy:      uint64(busy.Value()),
		Timeouts:  uint64(timeouts.Value()),
		Latency:   hist.Snapshot(),
	}
	sec := opts.Measure.Seconds()
	res.Goodput = float64(res.Completed) / sec
	res.OfferedRate = float64(res.Offered) / sec
	for _, id := range cc.Nodes {
		var st paxos.Stats
		switch r := replicas[id].(type) {
		case *paxos.Replica:
			st = r.Stats()
		case *pigpaxos.Replica:
			st = r.Core().Stats()
		default:
			continue
		}
		res.LeaderBusy += st.Busy
		res.DroppedExpired += st.DroppedExpired
		if st.MaxQueueDepth > res.MaxQueueDepth {
			res.MaxQueueDepth = st.MaxQueueDepth
		}
	}
	return res
}

// OverloadSweep runs the rate ladder, one isolated deterministic sim per
// rung (seeded Seed+step like the metal sweep), and returns one result per
// rate. Push the ladder well past the saturation knee: with admission
// control on, the top rung's goodput should hold near the peak rung's.
func OverloadSweep(opts OverloadOptions, rates []float64) []OverloadResult {
	out := make([]OverloadResult, 0, len(rates))
	for step, r := range rates {
		o := opts
		o.Rate = r
		o.Seed = opts.Seed + int64(step)
		out = append(out, RunOverload(o))
	}
	return out
}
