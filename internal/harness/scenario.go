// Scenario harness: runs a protocol under a chaos fault schedule and checks
// what the steady-state harness only assumes — that the cluster stays
// available (bounded gap), recovers fully (every acknowledged command
// committed and replicas converged), and never serves a non-linearizable
// history. This is the paper's §4/§5 fault-tolerance story (relay rotation,
// leader re-fan-out, failover) as a reproducible, measured experiment
// instead of a comment.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/linearizability"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/wal"
	"pigpaxos/internal/wire"
)

// maxOpsPerKey bounds how many operations may land on one probe key: the
// linearizability checker's per-key search is exponential in overlapping
// ops and hard-capped at 24.
const maxOpsPerKey = 12

// ScenarioOptions parameterize one chaos scenario run. The embedded Options
// configure the cluster exactly as Run does; scenario clients replace the
// open-ended closed-loop clients with fixed-length recorded scripts so every
// history can be checked.
type ScenarioOptions struct {
	Options

	// OpsPerClient is each client's script length (default 30).
	OpsPerClient int
	// ThinkTime paces clients: each waits this long between an ack and its
	// next operation, so scripts span the whole window and faults land on
	// live traffic. Defaults to Measure/OpsPerClient (script ≈ window);
	// negative disables pacing.
	ThinkTime time.Duration
	// ProbeKeys is the scenario keyspace size. Defaulted so no key sees
	// more than maxOpsPerKey operations; explicit values are raised back
	// to that floor.
	ProbeKeys int
	// ClientRetry is how long a client waits for a reply before re-sending
	// its command to the next live node in sorted ID order (masking
	// crashed leaders — or crashed EPaxos command leaders — and lost
	// messages; every protocol's replicated at-most-once session table
	// absorbs the duplicates). Defaults to 120ms.
	ClientRetry time.Duration
	// ElectionTimeout arms follower elections so leader crashes actually
	// fail over (default 150ms; ignored by EPaxos).
	ElectionTimeout time.Duration
	// Drain is extra virtual time after the measurement window for scripts
	// to finish and replicas to converge (default 5s).
	Drain time.Duration
	// RegionClients homes clients round-robin across the cluster's zones
	// instead of packing them into the leader's (the paper's WAN runs place
	// client VMs in every region). Each region's latency and availability
	// are then reported separately in ScenarioResult.Regions — and a
	// RegionPartition maroons the cut region's clients along with its
	// replicas.
	RegionClients bool
	// Durable gives every Paxos/PigPaxos replica a wal.MemStorage journal:
	// promises and accepts fsync before the corresponding vote leaves,
	// snapshots checkpoint the state machine, and the Restart/TornTail/
	// DiskSlow chaos families go live (the scenario resolver implements
	// chaos.Rebooter and chaos.DiskFaulter). EPaxos has no durable path, so
	// restart actions against it skip deterministically.
	Durable bool
	// SnapshotEvery is the per-replica checkpoint cadence in executed
	// commands (default 64 when Durable).
	SnapshotEvery int
	// SyncCost is the simulated fsync latency charged per real journal sync
	// (default 400µs when Durable — an EBS-class flush).
	SyncCost time.Duration
	// Jobs is how many scenarios RunScenarios executes concurrently:
	// 0 means GOMAXPROCS, 1 forces the serial path. Every run is an
	// isolated deterministic sim and results are collected by schedule
	// index, so any Jobs value produces bit-identical output.
	Jobs int
}

func (o *ScenarioOptions) applyDefaults() {
	o.Options.applyDefaults()
	if o.OpsPerClient == 0 {
		o.OpsPerClient = 30
	}
	if o.ThinkTime == 0 {
		o.ThinkTime = o.Measure / time.Duration(o.OpsPerClient)
	} else if o.ThinkTime < 0 {
		o.ThinkTime = 0
	}
	total := o.Clients * o.OpsPerClient
	if floor := (total + maxOpsPerKey - 1) / maxOpsPerKey; o.ProbeKeys < floor {
		o.ProbeKeys = floor
	}
	if o.ProbeKeys < 8 {
		o.ProbeKeys = 8
	}
	if o.ClientRetry == 0 {
		o.ClientRetry = 120 * time.Millisecond
	}
	if o.ElectionTimeout == 0 {
		o.ElectionTimeout = 150 * time.Millisecond
	}
	if o.Drain == 0 {
		o.Drain = 5 * time.Second
	}
	if o.Durable {
		if o.SnapshotEvery == 0 {
			o.SnapshotEvery = 64
		}
		if o.SyncCost == 0 {
			o.SyncCost = 400 * time.Microsecond
		}
	}
}

// ScenarioResult is one scenario's measurement and verdicts. It contains
// only values derived from virtual time, so two runs at the same seed are
// comparable field-by-field (and asserted bit-identical in tests).
type ScenarioResult struct {
	Protocol Protocol
	N        int
	Clients  int

	// Acked counts operations acknowledged OK over the whole run.
	Acked int
	// Throughput is in-window acks per second (same window as Run).
	Throughput float64
	// Latency summarizes request latency over every acked operation.
	Latency metrics.Summary
	// AvailabilityGap is the longest interval between consecutive acks;
	// GapStart is when it opened. A fault that interrupts service shows up
	// here as a gap well above the per-op baseline.
	AvailabilityGap time.Duration
	GapStart        time.Duration
	// FirstFaultAt is the scheduled time of the first fault (0 with an
	// empty schedule); RecoveryLatency is the delay from that instant to
	// the first subsequent ack — how long the fault kept service down.
	FirstFaultAt    time.Duration
	RecoveryLatency time.Duration

	// Linearizable is the checker's verdict over every client's history;
	// LinBadKey names the failing key when false, and LinChecked and
	// LinExplored are the check's size and cost.
	Linearizable bool
	LinBadKey    uint64
	LinChecked   int
	LinExplored  int
	// AllComplete reports that every client finished its script — with
	// Converged, the "full recovery: all acked commands committed
	// everywhere" criterion.
	AllComplete bool
	// Converged reports that every replica's state machine ended
	// bit-identical (same checksum, same applied count).
	Converged bool
	// Unrecovered counts EPaxos instances left unexecuted across all
	// replicas after the drain — zero when Explicit Prepare recovery
	// finished every instance a fault orphaned (always zero for the
	// Paxos family).
	Unrecovered int

	Messages  uint64
	Delivered uint64
	Dropped   uint64

	// Durability telemetry, summed over replicas (zero on volatile runs).
	WALSyncs     uint64 // real journal fsyncs
	Snapshots    uint64 // checkpoints saved
	SnapRestores uint64 // snapshot installs (boot recovery + catch-up)
	Reboots      int    // honest restarts the injector completed
	// MaxLogLen and MaxWALBytes are the largest in-memory log and journal
	// footprint across replicas at run end — the bounded-memory check for
	// snapshot-driven compaction.
	MaxLogLen   int
	MaxWALBytes int

	// Overload telemetry. Busy counts wire.Busy rejections clients received
	// (each retried after the hinted backoff); DroppedExpired sums commands
	// the leaders dropped from their queues after QueueTTL; MaxQueueDepth is
	// the largest leader ingress queue observed across replicas — bounded by
	// paxos.Config.MaxPending when admission control is on.
	Busy           int
	DroppedExpired uint64
	MaxQueueDepth  uint64

	// Regions breaks the measurement down by client region (ascending
	// zone), populated when RegionClients is set on a multi-zone cluster.
	Regions []RegionResult

	// FaultLog lists the executed fault actions with resolved targets.
	FaultLog []chaos.Applied
}

// RegionResult is one region's slice of a WAN scenario: what service looked
// like to the clients homed there.
type RegionResult struct {
	Zone    int
	Clients int
	// Acked counts operations acknowledged to this region's clients.
	Acked int
	// Latency summarizes this region's request latency.
	Latency metrics.Summary
	// AvailabilityGap is the longest ack silence this region saw, GapStart
	// its opening instant, and Stalls how many distinct gaps of at least
	// 250ms the region suffered — a region cut off its WAN uplinks shows
	// one long stall here while the others stay smooth.
	AvailabilityGap time.Duration
	GapStart        time.Duration
	Stalls          int
}

// String implements fmt.Stringer.
func (r RegionResult) String() string {
	return fmt.Sprintf("zone %d: %d clients, %d acked, mean %v p99 %v, gap %v, stalls %d",
		r.Zone, r.Clients, r.Acked, r.Latency.Mean, r.Latency.P99, r.AvailabilityGap, r.Stalls)
}

// regionStallThreshold is the gap length counted as a service stall in
// RegionResult.Stalls: comfortably above a WAN round trip, well below any
// fault window a schedule would script.
const regionStallThreshold = 250 * time.Millisecond

// String implements fmt.Stringer.
func (r ScenarioResult) String() string {
	return fmt.Sprintf("%s N=%d: %d acked, gap %v, recovery %v, lin=%v complete=%v converged=%v",
		r.Protocol, r.N, r.Acked, r.AvailabilityGap, r.RecoveryLatency,
		r.Linearizable, r.AllComplete, r.Converged)
}

// scenClient is a scenario client: a closed-loop client with a fixed script
// whose every completed operation is recorded into the shared history. On
// silence it re-sends to the next node round-robin (same ClientID/Seq, so
// session tables dedup), masking crashed leaders the way a real client
// library would.
type scenClient struct {
	id      uint64
	ep      *netsim.Endpoint
	targets []ids.ID
	rr      int
	retry   time.Duration // silence timeout before re-sending (0 disables)

	script  []kvstore.Command
	pos     int
	seq     uint64
	started time.Duration
	timer   node.Timer
	think   time.Duration
	// awaiting is true from issue until the op's ack is accepted; replies
	// arriving outside that window (duplicates of an accepted ack) are
	// dropped even though c.seq has not advanced yet.
	awaiting bool
	done     bool

	hist      *linearizability.History
	gaps      *metrics.GapTracker
	lat       *metrics.Histogram
	inWindow  *metrics.Counter
	busy      *metrics.Counter
	warmupEnd time.Duration
	windowEnd time.Duration

	// rgaps/rlat additionally route this client's acks to its home
	// region's trackers (nil outside RegionClients runs).
	rgaps *metrics.GapTracker
	rlat  *metrics.Histogram
}

func (c *scenClient) stopTimer() {
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
}

func (c *scenClient) armRetry() {
	if c.retry <= 0 {
		return
	}
	seq := c.seq
	c.timer = c.ep.After(c.retry, func() {
		if c.done || !c.awaiting || c.seq != seq {
			return
		}
		c.resend()
		c.armRetry()
	})
}

// resend re-issues the current command to the next target round-robin.
func (c *scenClient) resend() {
	c.rr++
	c.ep.Send(c.targets[c.rr%len(c.targets)], wire.Request{Cmd: c.script[c.pos]})
}

func (c *scenClient) next() {
	c.stopTimer()
	if c.pos >= len(c.script) {
		c.done = true
		return
	}
	cmd := c.script[c.pos]
	c.seq++
	cmd.ClientID = c.id
	cmd.Seq = c.seq
	c.script[c.pos] = cmd
	c.started = c.ep.Now()
	c.awaiting = true
	c.ep.Send(c.targets[c.rr%len(c.targets)], wire.Request{Cmd: cmd})
	c.armRetry()
}

// OnMessage handles replies: acks are recorded, redirects followed, Busy
// backpressure honored with a paced retry, silence handled by the retry
// timer.
func (c *scenClient) OnMessage(from ids.ID, m wire.Msg) {
	if busy, ok := m.(wire.Busy); ok {
		if c.done || !c.awaiting || busy.Seq != c.seq {
			return
		}
		c.busy.Inc()
		// Back off for the hinted interval, then re-issue the same command
		// at the (still-leading) rejecting node. The retry timer stays armed
		// as the fallback if the leader changes meanwhile.
		seq := c.seq
		c.ep.After(busy.RetryAfter, func() {
			if c.done || !c.awaiting || c.seq != seq {
				return
			}
			c.ep.Send(busy.Leader, wire.Request{Cmd: c.script[c.pos]})
		})
		return
	}
	rep, ok := m.(wire.Reply)
	if !ok || !c.awaiting || rep.Seq != c.seq || c.done {
		// Stale seq, or a duplicate of an already-accepted ack: faulty
		// links duplicate replies, and between accepting an ack and the
		// paced next() call c.seq has not advanced yet — the awaiting flag
		// is what makes the second copy inert.
		return
	}
	if !rep.OK {
		if !rep.Leader.IsZero() {
			// Redirected: aim subsequent sends at the hinted leader.
			for i, t := range c.targets {
				if t == rep.Leader {
					c.rr = i
					break
				}
			}
			c.ep.Send(rep.Leader, wire.Request{Cmd: c.script[c.pos]})
		}
		// No hint: wait for the retry timer rather than hot-loop.
		return
	}
	cmd := c.script[c.pos]
	now := c.ep.Now()
	c.awaiting = false
	op := linearizability.Op{
		Key:    cmd.Key,
		Start:  c.started,
		End:    now,
		Client: c.id,
	}
	if cmd.Op == kvstore.Get {
		op.Kind = linearizability.Read
		if rep.Exists {
			op.Output = string(rep.Value)
		}
	} else {
		op.Kind = linearizability.Write
		op.Input = string(cmd.Value)
	}
	c.hist.Add(op)
	c.gaps.Record(now)
	c.lat.Observe(now - c.started)
	if c.rgaps != nil {
		c.rgaps.Record(now)
		c.rlat.Observe(now - c.started)
	}
	if now >= c.warmupEnd && now < c.windowEnd {
		c.inWindow.Inc()
	}
	c.pos++
	c.stopTimer()
	if c.think > 0 {
		c.ep.After(c.think, c.next)
	} else {
		c.next()
	}
}

// scenScript builds client ci's fixed workload: keys assigned round-robin
// over the probe keyspace by global op index, so each key receives exactly
// ⌈total/keys⌉ operations (the checker's per-key bound holds by
// construction) while clients still contend on shared keys. Every third
// operation reads.
func scenScript(ci, ops, keys int) []kvstore.Command {
	out := make([]kvstore.Command, 0, ops)
	for j := 0; j < ops; j++ {
		key := uint64((ci*ops + j) % keys)
		if j%3 == 2 {
			out = append(out, kvstore.Command{Op: kvstore.Get, Key: key})
		} else {
			out = append(out, kvstore.Command{
				Op: kvstore.Put, Key: key,
				Value: []byte(fmt.Sprintf("c%d-%d", ci, j)),
			})
		}
	}
	return out
}

// liveResolver resolves dynamic chaos targets from live protocol state.
type liveResolver struct {
	cc       config.Cluster
	net      *netsim.Network
	replicas map[ids.ID]replica
}

// durableResolver layers reboot and disk-fault capabilities over the live
// resolver. Only durable deployments get one, so on volatile runs the
// injector's chaos.Rebooter/DiskFaulter type assertions fail and restart
// schedules skip deterministically without ever crashing the node.
type durableResolver struct {
	*liveResolver
	env *rebootEnv
}

// rebootEnv is everything needed to tear a node down and rebuild its
// protocol stack from persisted state alone.
type rebootEnv struct {
	storages map[ids.ID]*wal.MemStorage
	tramps   map[ids.ID]*trampoline
	rebuild  func(id ids.ID) replica
	baseSync time.Duration
}

// Reboot implements chaos.Rebooter: power-loss semantics (unsynced journal
// appends dropped, optionally a torn final frame), then a fresh replica
// recovering from snapshot + WAL tail takes over the node's endpoint.
func (dr *durableResolver) Reboot(id ids.ID, torn bool) bool {
	env := dr.env
	st, tr := env.storages[id], env.tramps[id]
	if st == nil || tr == nil {
		return false
	}
	st.Crash() // whatever was never fsynced is gone
	if torn {
		st.TearTail()
	}
	// Epoch bump first: timers the old incarnation armed must never fire
	// into the new one, and the fresh replica's Start() timers must.
	dr.net.Reboot(id, tr)
	rep := env.rebuild(id)
	tr.h = rep.OnMessage
	dr.replicas[id] = rep
	rep.Start()
	return true
}

// SetDiskSync implements chaos.DiskFaulter. lat <= 0 restores the
// scenario's baseline fsync cost.
func (dr *durableResolver) SetDiskSync(id ids.ID, lat time.Duration) {
	if st := dr.env.storages[id]; st != nil {
		if lat <= 0 {
			lat = dr.env.baseSync
		}
		st.SetSyncCost(lat)
	}
}

// Leader implements chaos.Resolver: the first replica (membership order)
// that believes it leads. EPaxos is leaderless — every replica is command
// leader for its own clients — so a leader-targeted fault resolves to the
// first live replica in membership order: a deterministic "crash a command
// leader mid-flight", which is exactly what Explicit Prepare recovery must
// absorb.
func (lr *liveResolver) Leader() ids.ID {
	for _, id := range lr.cc.Nodes {
		switch r := lr.replicas[id].(type) {
		case *paxos.Replica:
			if r.IsLeader() {
				return id
			}
		case *pigpaxos.Replica:
			if r.Core().IsLeader() {
				return id
			}
		case *epaxos.Replica:
			if !lr.net.Crashed(id) {
				return id
			}
		}
	}
	return 0
}

// Relay implements chaos.Resolver: the relay the current PigPaxos leader
// last drew for group g, falling back to the group's first member before
// any fan-out has happened.
func (lr *liveResolver) Relay(g int) ids.ID {
	leader := lr.Leader()
	if leader.IsZero() {
		return 0
	}
	pr, ok := lr.replicas[leader].(*pigpaxos.Replica)
	if !ok {
		return 0
	}
	if relay := pr.LastRelay(g); !relay.IsZero() {
		return relay
	}
	layout := pr.Layout()
	if g >= 0 && g < layout.NumGroups() && len(layout.Groups[g]) > 0 {
		return layout.Groups[g][0]
	}
	return 0
}

// CampaignFrom implements chaos.Placer: the first live replica in the zone
// (membership order) bids for leadership. EPaxos is leaderless, so placement
// flips resolve to nobody and are skipped.
func (lr *liveResolver) CampaignFrom(zone int) ids.ID {
	for _, id := range lr.cc.Nodes {
		if lr.cc.ZoneOf(id) != zone || lr.net.Crashed(id) {
			continue
		}
		switch r := lr.replicas[id].(type) {
		case *paxos.Replica:
			r.Campaign()
			return id
		case *pigpaxos.Replica:
			r.Core().Campaign()
			return id
		}
	}
	return 0
}

// RunScenario executes one protocol run under the fault schedule and returns
// measurements plus the correctness verdicts. Schedule times are absolute
// virtual times (the measurement window starts at opts.Warmup).
func RunScenario(opts ScenarioOptions, sched chaos.Schedule) ScenarioResult {
	opts.applyDefaults()
	sim := des.New(opts.Seed)
	cc := opts.cluster()
	net := netsim.New(sim, cc, opts.Net)

	leader := cc.Nodes[0]
	replicas := make(map[ids.ID]replica, opts.N)
	stores := make(map[ids.ID]*kvstore.Store, opts.N)
	tramps := make(map[ids.ID]*trampoline, opts.N)
	endpoints := make(map[ids.ID]*netsim.Endpoint, opts.N)
	durable := opts.Durable && opts.Protocol != EPaxos
	var storages map[ids.ID]*wal.MemStorage
	if durable {
		storages = make(map[ids.ID]*wal.MemStorage, opts.N)
		for _, id := range cc.Nodes {
			st := wal.NewMem()
			st.SetSyncCost(opts.SyncCost)
			storages[id] = st
		}
	}
	// build constructs one node's protocol stack. It runs once per node at
	// boot and again on every chaos Restart — a rebuilt replica gets the
	// node's surviving storage and nothing else, so recovery is honest. It
	// refreshes the stores map: convergence checks must read the live
	// incarnation's state machine, not a dead one's.
	build := func(id ids.ID) replica {
		ep := endpoints[id]
		var rep replica
		switch opts.Protocol {
		case Paxos:
			cfg := paxos.Config{
				Cluster: cc, ID: id, InitialLeader: leader,
				ElectionTimeout: opts.ElectionTimeout,
				RetryTimeout:    100 * time.Millisecond, // mask schedule-injected loss
			}
			opts.paxosBatching(&cfg)
			if durable {
				cfg.Storage = storages[id]
				cfg.SnapshotEvery = opts.SnapshotEvery
			}
			if opts.MutPaxos != nil {
				opts.MutPaxos(&cfg)
			}
			r := paxos.New(ep, cfg, nil)
			stores[id] = r.Store()
			rep = r
		case PigPaxos:
			cfg := pigpaxos.Config{
				Paxos: paxos.Config{
					Cluster: cc, ID: id, InitialLeader: leader,
					ElectionTimeout: opts.ElectionTimeout,
				},
				NumGroups: opts.NumGroups,
			}
			opts.paxosBatching(&cfg.Paxos)
			if durable {
				cfg.Paxos.Storage = storages[id]
				cfg.Paxos.SnapshotEvery = opts.SnapshotEvery
			}
			if opts.ZoneGroups {
				cfg.Strategy = pigpaxos.GroupByZone
			}
			if opts.MutPig != nil {
				opts.MutPig(&cfg)
			}
			r := pigpaxos.New(ep, cfg)
			stores[id] = r.Core().Store()
			rep = r
		case EPaxos:
			cfg := epaxos.Config{Cluster: cc, ID: id}
			if opts.MutEPaxos != nil {
				opts.MutEPaxos(&cfg)
			}
			r := epaxos.New(ep, cfg)
			stores[id] = r.Store()
			rep = r
		}
		return rep
	}
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		endpoints[id] = net.Register(id, tr, false)
		tramps[id] = tr
		rep := build(id)
		tr.h = rep.OnMessage
		replicas[id] = rep
	}

	hist := &linearizability.History{}
	gaps := &metrics.GapTracker{}
	lat := metrics.NewHistogram()
	var inWindow, busyCount metrics.Counter
	warmupEnd := opts.Warmup
	windowEnd := opts.Warmup + opts.Measure

	// Per-region trackers, when clients spread over zones: zones in
	// ascending order, clients assigned round-robin so every region gets
	// an equal share (±1).
	var zones []int
	regionGaps := map[int]*metrics.GapTracker{}
	regionLat := map[int]*metrics.Histogram{}
	regionClients := map[int]int{}
	if opts.RegionClients {
		if zs := cc.ZoneList(); len(zs) > 1 {
			zones = zs
			for _, z := range zones {
				regionGaps[z] = &metrics.GapTracker{}
				regionLat[z] = metrics.NewHistogram()
			}
		}
	}

	// EPaxos clients home round-robin over the membership in sorted ID
	// order, so a dead home replica's pending requests move to the next
	// live replica deterministically — sorted ID order, never map order.
	// Leader-based protocols keep membership order, which starts at the
	// initial leader.
	targets := cc.Nodes
	if opts.Protocol == EPaxos {
		targets = append([]ids.ID(nil), cc.Nodes...)
		ids.Sort(targets)
	}

	clients := make([]*scenClient, opts.Clients)
	for i := 0; i < opts.Clients; i++ {
		cl := &scenClient{
			id:        uint64(i + 1),
			script:    scenScript(i, opts.OpsPerClient, opts.ProbeKeys),
			hist:      hist,
			gaps:      gaps,
			lat:       lat,
			inWindow:  &inWindow,
			busy:      &busyCount,
			warmupEnd: warmupEnd,
			windowEnd: windowEnd,
			retry:     opts.ClientRetry,
			think:     opts.ThinkTime,
			targets:   targets,
		}
		if opts.Protocol == EPaxos {
			// Every replica serves in EPaxos: home clients round-robin
			// over the whole membership (§5.4's client model). Crashed
			// homes are masked by the retry timer, duplicate admissions by
			// the replicated session tables.
			cl.rr = i % len(targets)
		}
		home := cc.ZoneOf(leader)
		if zones != nil {
			home = zones[i%len(zones)]
			cl.rgaps = regionGaps[home]
			cl.rlat = regionLat[home]
			regionClients[home]++
		}
		cl.ep = net.Register(ids.NewID(home, 1000+i), cl, true)
		clients[i] = cl
	}

	var resolver chaos.Resolver = &liveResolver{cc: cc, net: net, replicas: replicas}
	if durable {
		resolver = &durableResolver{
			liveResolver: resolver.(*liveResolver),
			env: &rebootEnv{
				storages: storages,
				tramps:   tramps,
				rebuild:  build,
				baseSync: opts.SyncCost,
			},
		}
	}
	injector := chaos.Apply(sim, net, sched, resolver)

	sim.Schedule(0, func() {
		for _, id := range cc.Nodes {
			replicas[id].Start()
		}
	})
	for i, cl := range clients {
		cl := cl
		sim.Schedule(time.Duration(i)*50*time.Microsecond+time.Millisecond, cl.next)
	}

	sim.Run(windowEnd)
	// Drain: give scripts and convergence (watermarks, catch-up) time to
	// finish, in slices so a finished run stops early.
	drainEnd := windowEnd + opts.Drain
	for sim.Now() < drainEnd {
		allDone := true
		for _, cl := range clients {
			if !cl.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		next := sim.Now() + 100*time.Millisecond
		if next > drainEnd {
			next = drainEnd
		}
		sim.Run(next)
	}
	// Converge tail: heartbeat watermarks, catch-up replies and EPaxos
	// commit-floor anti-entropy flush. Runs that are already converged
	// after the fixed 500ms stop there (identical to the historical
	// behavior); stragglers get extra slices while the recovery machinery
	// — whose WAN-scale periods exceed half a second — finishes teaching
	// them, bounded by an additional budget.
	converged := func() bool {
		first := stores[cc.Nodes[0]]
		for _, id := range cc.Nodes[1:] {
			st := stores[id]
			if st.Checksum() != first.Checksum() || st.Applied() != first.Applied() {
				return false
			}
		}
		for _, id := range cc.Nodes {
			if er, ok := replicas[id].(*epaxos.Replica); ok && er.Unexecuted() > 0 {
				return false
			}
		}
		return true
	}
	sim.Run(sim.Now() + 500*time.Millisecond)
	for end := sim.Now() + 4*time.Second; sim.Now() < end && !converged(); {
		sim.Run(sim.Now() + 250*time.Millisecond)
	}

	res := ScenarioResult{
		Protocol:   opts.Protocol,
		N:          opts.N,
		Clients:    opts.Clients,
		Acked:      gaps.Count(),
		Throughput: float64(inWindow.Value()) / opts.Measure.Seconds(),
		Busy:       int(busyCount.Value()),
		Latency:    lat.Snapshot(),
		Messages:   net.MessagesSent(),
		Delivered:  net.MessagesDelivered(),
		Dropped:    net.MessagesDropped(),
		FaultLog:   injector.Log(),
	}
	res.GapStart, res.AvailabilityGap = gaps.MaxGap()
	for _, z := range zones {
		rr := RegionResult{
			Zone:    z,
			Clients: regionClients[z],
			Acked:   regionGaps[z].Count(),
			Latency: regionLat[z].Snapshot(),
			Stalls:  regionGaps[z].GapsOver(regionStallThreshold),
		}
		rr.GapStart, rr.AvailabilityGap = regionGaps[z].MaxGap()
		res.Regions = append(res.Regions, rr)
	}
	if len(sched) > 0 {
		res.FirstFaultAt = sched.FirstFaultAt()
		if at, ok := gaps.FirstAfter(res.FirstFaultAt); ok {
			res.RecoveryLatency = at - res.FirstFaultAt
		}
	}
	res.AllComplete = true
	for _, cl := range clients {
		if !cl.done {
			res.AllComplete = false
		}
	}
	res.Converged = true
	first := stores[cc.Nodes[0]]
	for _, id := range cc.Nodes[1:] {
		st := stores[id]
		if st.Checksum() != first.Checksum() || st.Applied() != first.Applied() {
			res.Converged = false
		}
	}
	for _, id := range cc.Nodes {
		if er, ok := replicas[id].(*epaxos.Replica); ok {
			res.Unrecovered += er.Unexecuted()
		}
	}
	for _, id := range cc.Nodes {
		var st paxos.Stats
		var logLen int
		switch r := replicas[id].(type) {
		case *paxos.Replica:
			st = r.Stats()
			logLen = r.Log().Len()
		case *pigpaxos.Replica:
			st = r.Core().Stats()
			logLen = r.Core().Log().Len()
		default:
			continue
		}
		res.WALSyncs += st.WALSyncs
		res.Snapshots += st.Snapshots
		res.SnapRestores += st.SnapRestores
		res.DroppedExpired += st.DroppedExpired
		if st.MaxQueueDepth > res.MaxQueueDepth {
			res.MaxQueueDepth = st.MaxQueueDepth
		}
		if logLen > res.MaxLogLen {
			res.MaxLogLen = logLen
		}
		if durable {
			if b := storages[id].Bytes(); b > res.MaxWALBytes {
				res.MaxWALBytes = b
			}
		}
	}
	for _, a := range res.FaultLog {
		if a.Kind == chaos.Reboot {
			res.Reboots++
		}
	}
	lin := hist.Check()
	res.Linearizable = lin.OK
	res.LinBadKey = lin.BadKey
	res.LinChecked = lin.Checked
	res.LinExplored = lin.Explored
	return res
}

// FaultPoint is one sample of a fault-intensity sweep.
type FaultPoint struct {
	Crashes         int
	Throughput      float64
	AvailabilityGap time.Duration
	P99             time.Duration
	Linearizable    bool
	Recovered       bool // AllComplete && Converged
}

// FaultCurve sweeps simultaneous follower-crash counts from 0 to maxCrashes
// (clamped to chaos.MaxSafeCrashes): k followers crash together a quarter
// into the window and recover at the midpoint. The curve shows how
// availability degrades with fault intensity while safety holds.
func FaultCurve(opts ScenarioOptions, maxCrashes int) []FaultPoint {
	opts.applyDefaults()
	cc := opts.cluster()
	if limit := chaos.MaxSafeCrashes(opts.N); maxCrashes > limit {
		maxCrashes = limit
	}
	out := make([]FaultPoint, 0, maxCrashes+1)
	for k := 0; k <= maxCrashes; k++ {
		crashAt := opts.Warmup + opts.Measure/4
		downFor := opts.Measure / 4
		var sched chaos.Schedule
		for i := 0; i < k; i++ {
			victim := cc.Nodes[len(cc.Nodes)-1-i] // followers, from the back
			sched = chaos.Merge(sched, chaos.NodeCrash(victim, crashAt, downFor))
		}
		r := RunScenario(opts, sched)
		out = append(out, FaultPoint{
			Crashes:         k,
			Throughput:      r.Throughput,
			AvailabilityGap: r.AvailabilityGap,
			P99:             r.Latency.P99,
			Linearizable:    r.Linearizable,
			Recovered:       r.AllComplete && r.Converged,
		})
	}
	return out
}

// ExploreSchedules generates ex.Scenarios random schedules (see
// chaos.Explore) with the harness defaults filled in: ex.Nodes from the
// cluster when nil, and the palette per protocol — the WAN region
// families on WAN clusters, chaos.EPaxosPalette (everything but relay
// crashes) for EPaxos, and everything-but-relay-crashes for Paxos.
// Exposed separately from ExploreScenarios so sweeps can keep the
// schedule that produced each result (the shrinker's input).
func ExploreSchedules(opts ScenarioOptions, ex chaos.ExplorerOpts) []chaos.Schedule {
	opts.applyDefaults()
	wan := opts.WAN || opts.WANLossy
	if ex.Nodes == nil {
		cc := opts.cluster()
		ex.Nodes = cc.Nodes
		if wan && ex.Cluster.N() == 0 {
			// Hand the explorer the zone topology so region fault
			// families can draw from it.
			ex.Cluster = cc
		}
	}
	if ex.Allow == (chaos.Palette{}) {
		switch {
		case wan:
			// Region faults for every protocol; EPaxos is leaderless, so
			// placement flips have nobody to move.
			ex.Allow = chaos.WANPalette()
			if opts.Protocol == EPaxos {
				ex.Allow.PlacementFlip = false
			}
		case opts.Protocol == EPaxos:
			// Full LAN palette minus relay crashes: Explicit Prepare
			// recovery, the retransmit sweep and the session tables take
			// crashes, partitions, loss and duplication.
			ex.Allow = chaos.EPaxosPalette()
		case opts.Protocol == Paxos:
			ex.Allow = chaos.FullPalette()
			ex.Allow.RelayCrash = false
		default:
			ex.Allow = chaos.FullPalette()
		}
	}
	if ex.Groups == 0 {
		ex.Groups = opts.NumGroups
	}
	if ex.Horizon == 0 {
		ex.Horizon = opts.Warmup + opts.Measure
	}
	if ex.Seed == 0 {
		ex.Seed = opts.Seed
	}
	return chaos.Explore(ex)
}

// RunScenarios runs one scenario per schedule and returns results in
// schedule order. Runs fan out across opts.Jobs workers (0 = GOMAXPROCS,
// 1 = serial); each run is an isolated deterministic sim — no shared
// state, per-run RNGs — and results land in a pre-sized slice by index,
// so the output is bit-identical to the serial path regardless of worker
// count or completion order.
func RunScenarios(opts ScenarioOptions, scheds []chaos.Schedule) []ScenarioResult {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(scheds) {
		jobs = len(scheds)
	}
	out := make([]ScenarioResult, len(scheds))
	if jobs <= 1 {
		for i, s := range scheds {
			out[i] = RunScenario(opts, s)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunScenario(opts, scheds[i])
			}
		}()
	}
	for i := range scheds {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ExploreScenarios generates ex.Scenarios random schedules and runs each
// under opts, returning one result per schedule. It is
// RunScenarios(opts, ExploreSchedules(opts, ex)) — parallel across
// opts.Jobs workers with positionally bit-identical results.
func ExploreScenarios(opts ScenarioOptions, ex chaos.ExplorerOpts) []ScenarioResult {
	return RunScenarios(opts, ExploreSchedules(opts, ex))
}
