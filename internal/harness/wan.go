// WAN scenario configuration: the Figure 9 deployment (three regions,
// zone-aligned relay groups, clients homed in every region) packaged as a
// ScenarioOptions builder with timeouts scaled to WAN round trips. The
// pigbench WAN suite and the multi-region chaos tests both start from here,
// so "the Figure 9 cluster" means one thing across the repository.
package harness

import (
	"time"

	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
)

// WANScenario builds the Figure-9 scenario configuration: n nodes spread
// round-robin over Virginia/California/Oregon, one relay group per region,
// clientsPerRegion closed-loop clients homed in each region, and every
// timeout re-derived from WAN scale — LAN defaults (100ms client retries,
// 150ms elections) misfire when a commit costs a 62ms round trip before any
// queueing.
//
// The per-message CPU costs are raised from the LAN calibration's 10µs to
// 25µs (the paper's WAN instances are smaller than the m5a.large used for
// the LAN fleet), which is what separates the protocols at load: a 9-node
// Paxos leader pays 2(N−1) message costs per slot against PigPaxos's 2r, so
// the same offered load that saturates the Paxos leader leaves the PigPaxos
// leader headroom — Figure 9's latency gap.
func WANScenario(p Protocol, n, clientsPerRegion, opsPerClient int, seed int64) ScenarioOptions {
	o := ScenarioOptions{}
	o.Protocol = p
	o.N = n
	o.WAN = true
	o.ZoneGroups = true
	o.NumGroups = 3
	o.RegionClients = true
	o.Clients = 3 * clientsPerRegion
	o.OpsPerClient = opsPerClient
	o.ThinkTime = -1 // closed loop: Figure 9 measures under offered load
	o.Warmup = 500 * time.Millisecond
	o.Measure = 2 * time.Second
	o.Seed = seed
	o.Net = netsim.DefaultOptions()
	o.Net.SendCost = 25 * time.Microsecond
	o.Net.RecvCost = 25 * time.Microsecond

	// WAN-scale failure handling: retries and elections must sit well above
	// a loaded commit round trip or they fire on healthy slow paths.
	o.ClientRetry = 600 * time.Millisecond
	o.ElectionTimeout = 400 * time.Millisecond
	o.MutPaxos = func(c *paxos.Config) {
		c.RetryTimeout = 500 * time.Millisecond
	}
	o.MutPig = func(c *pigpaxos.Config) {
		// Relays wait on intra-region peers only (sub-millisecond), but
		// the leader's re-fan-out deadline spans two WAN hops.
		c.RelayTimeout = 50 * time.Millisecond
		c.LeaderTimeout = 400 * time.Millisecond
	}
	o.MutEPaxos = func(c *epaxos.Config) {
		// Retransmits and Explicit Prepare takeovers must sit above a
		// loaded WAN commit round trip, or they fire on healthy slow
		// paths and churn ballots.
		c.RetryTimeout = 400 * time.Millisecond
		c.RecoverTimeout = 800 * time.Millisecond
		c.SweepInterval = 100 * time.Millisecond
	}
	return o
}
