// End-to-end tests for the real stack: actual TCPNodes on ephemeral
// localhost ports, the framed wire protocol, per-peer writer goroutines —
// everything the simulator abstracts away. Skipped under -short; CI runs
// them with -race in the bench-tcp job.
package integration

import (
	"testing"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/loadgen"
	"pigpaxos/internal/workload"
)

// TestTCPClusterEndToEnd brings up a real 3-node cluster per protocol and
// runs the full client path over sockets: put, get, delete, and a
// follower-first op that must traverse a leader redirect.
func TestTCPClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	for _, proto := range []string{"paxos", "pigpaxos"} {
		t.Run(proto, func(t *testing.T) {
			c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
				t.Fatal(err)
			}

			// Leader-directed traffic.
			cl := cluster.NewSyncClient(c.Addrs, c.Members[0], 1, 5*time.Second)
			defer cl.Close()
			for k := uint64(0); k < 20; k++ {
				rep, err := cl.Put(k, []byte{byte(k)})
				if err != nil || !rep.OK {
					t.Fatalf("put %d: %v %+v", k, err, rep)
				}
			}
			for k := uint64(0); k < 20; k++ {
				rep, err := cl.Get(k)
				if err != nil || !rep.OK || !rep.Exists || rep.Value[0] != byte(k) {
					t.Fatalf("get %d: %v %+v", k, err, rep)
				}
			}
			rep, err := cl.Delete(7)
			if err != nil || !rep.OK {
				t.Fatalf("delete: %v %+v", err, rep)
			}
			if rep, err = cl.Get(7); err != nil || !rep.OK || rep.Exists {
				t.Fatalf("get after delete: %v %+v", err, rep)
			}

			// Follower-directed traffic must redirect, then stick.
			fc := cluster.NewSyncClient(c.Addrs, c.Members[2], 2, 5*time.Second)
			defer fc.Close()
			if rep, err = fc.Get(3); err != nil || !rep.OK || !rep.Exists {
				t.Fatalf("follower get: %v %+v", err, rep)
			}
			if fc.Redirects == 0 {
				t.Error("follower-first op served without a redirect")
			}
			if fc.Target() != c.Members[0] {
				t.Errorf("client should stick to leader, targets %v", fc.Target())
			}
		})
	}
}

// TestTCPLeaderKillFailover runs open-loop load against a real cluster,
// kills the leader's transport mid-window, and asserts the cluster fails
// over: load keeps completing afterwards and the availability gap stays
// bounded by a few election timeouts.
func TestTCPLeaderKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	const electTO = 400 * time.Millisecond
	c, err := cluster.StartInProc(cluster.InProcSpec{
		N:                 3,
		Protocol:          "paxos",
		ElectionTimeout:   electTO,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	leader := c.Members[0]
	killed := make(chan struct{})
	go func() {
		time.Sleep(1500 * time.Millisecond) // warmup + 0.5s of steady state
		c.Stop(leader)
		close(killed)
	}()
	res, err := loadgen.Run(loadgen.Options{
		Addrs:    c.Addrs,
		Members:  c.Members,
		Clients:  4,
		Rate:     400,
		Warmup:   time.Second,
		Duration: 4 * time.Second,
		Timeout:  2 * time.Second,
		Workload: workload.Config{Keys: 64},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	t.Logf("failover run: %v", res)
	if res.Completed == 0 {
		t.Fatal("no completions at all")
	}
	// The window is 4s and the leader dies 0.5s in; substantial traffic
	// must complete AFTER failover, not just before the kill.
	if float64(res.Completed) < 0.5*float64(res.Offered) {
		t.Errorf("only %d/%d ops completed; failover did not restore service",
			res.Completed, res.Offered)
	}
	// Bounded gap: election (randomized ×[1,2)) + client retry sweeps.
	// 6× election timeout + 1s of retry slack is generous but still
	// catches a cluster that never re-elects (gap would be ≈ 3.5s).
	if maxAllowed := 6*electTO + time.Second; res.MaxGap > maxAllowed {
		t.Errorf("availability gap %v exceeds %v", res.MaxGap, maxAllowed)
	}
}

// TestTCPGracefulLeaderDrain covers the SIGTERM path pigserver takes:
// Drain flushes what the dying leader already queued, the remaining nodes
// elect, and a fresh client commits against the new leader.
func TestTCPGracefulLeaderDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{
		N:                 3,
		Protocol:          "paxos",
		ElectionTimeout:   400 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewSyncClient(c.Addrs, c.Members[0], 1, 5*time.Second)
	defer cl.Close()
	if rep, err := cl.Put(1, []byte("before")); err != nil || !rep.OK {
		t.Fatalf("put before drain: %v %+v", err, rep)
	}

	leader := c.Members[0]
	ln := c.Node(leader)
	if !ln.Drain(2 * time.Second) {
		t.Error("leader transport did not drain while idle")
	}
	c.Stop(leader)

	// A new client (fresh session, no stale conn) must find the new
	// leader and commit; readiness on the survivors proves the election.
	survivors := c.Members[1:]
	if err := cluster.WaitReady(c.Addrs, survivors, 10*time.Second); err != nil {
		t.Fatalf("survivors never elected: %v", err)
	}
	nc := cluster.NewSyncClient(c.Addrs, survivors[0], 9, 5*time.Second)
	defer nc.Close()
	rep, err := nc.Get(1)
	if err != nil || !rep.OK || !rep.Exists || string(rep.Value) != "before" {
		t.Fatalf("pre-drain write lost after leader handoff: %v %+v", err, rep)
	}
	if rep, err = nc.Put(2, []byte("after")); err != nil || !rep.OK {
		t.Fatalf("put after handoff: %v %+v", err, rep)
	}
}
