// Package integration holds cross-module tests: every protocol drives the
// same simulated clusters under randomized workloads and failures, and the
// recorded client histories are checked for linearizability (the guarantee
// the paper claims for Paxos and PigPaxos in §2.3) and replicas for state
// convergence.
package integration

import (
	"fmt"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/linearizability"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/wire"
)

type protocolKind int

const (
	kindPaxos protocolKind = iota
	kindPigPaxos
	kindEPaxos
)

func (k protocolKind) String() string {
	return [...]string{"paxos", "pigpaxos", "epaxos"}[k]
}

type replica interface {
	Start()
	OnMessage(from ids.ID, m wire.Msg)
}

type trampoline struct{ h func(from ids.ID, m wire.Msg) }

func (t *trampoline) OnMessage(from ids.ID, m wire.Msg) { t.h(from, m) }

// histClient issues a fixed script of operations, one at a time, recording
// start/end times into a linearizability history.
type histClient struct {
	ep      *netsim.Endpoint
	id      uint64
	hist    *linearizability.History
	targets []ids.ID
	rr      int

	script  []kvstore.Command
	pos     int
	seq     uint64
	started time.Duration
	retries int
	done    bool
}

func (c *histClient) next() {
	if c.pos >= len(c.script) {
		c.done = true
		return
	}
	cmd := c.script[c.pos]
	c.seq++
	cmd.ClientID = c.id
	cmd.Seq = c.seq
	c.script[c.pos] = cmd
	c.started = c.ep.Now()
	c.retries = 0
	c.ep.Send(c.targets[c.rr%len(c.targets)], wire.Request{Cmd: cmd})
	c.rr++
}

func (c *histClient) OnMessage(from ids.ID, m wire.Msg) {
	rep, ok := m.(wire.Reply)
	if !ok || rep.Seq != c.seq {
		return
	}
	cmd := c.script[c.pos]
	if !rep.OK {
		if !rep.Leader.IsZero() && c.retries < 20 {
			c.retries++
			c.ep.Send(rep.Leader, wire.Request{Cmd: cmd})
			return
		}
		// Give up on this op (not recorded — an incomplete op is always
		// linearizable to "never happened" for this checker's purposes).
		c.pos++
		c.next()
		return
	}
	op := linearizability.Op{
		Key:    cmd.Key,
		Start:  c.started,
		End:    c.ep.Now(),
		Client: c.id,
	}
	if cmd.Op == kvstore.Get {
		op.Kind = linearizability.Read
		if rep.Exists {
			op.Output = string(rep.Value)
		}
	} else {
		op.Kind = linearizability.Write
		op.Input = string(cmd.Value)
	}
	c.hist.Add(op)
	c.pos++
	c.next()
}

type fixture struct {
	sim      *des.Sim
	net      *netsim.Network
	cc       config.Cluster
	replicas map[ids.ID]replica
	stores   map[ids.ID]*kvstore.Store
	hist     *linearizability.History
	clients  []*histClient
}

func build(t *testing.T, kind protocolKind, n int, seed int64) *fixture {
	return buildBatched(t, kind, n, seed, 0)
}

// buildBatched is build() with leader-side batching enabled when batch > 1
// (a one-slot pipeline window forces commands to share slots).
func buildBatched(t *testing.T, kind protocolKind, n int, seed int64, batch int) *fixture {
	t.Helper()
	sim := des.New(seed)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	f := &fixture{
		sim: sim, net: net, cc: cc,
		replicas: make(map[ids.ID]replica),
		stores:   make(map[ids.ID]*kvstore.Store),
		hist:     &linearizability.History{},
	}
	pcfg := func(id ids.ID) paxos.Config {
		c := paxos.Config{Cluster: cc, ID: id, InitialLeader: cc.Nodes[0]}
		if batch > 1 {
			c.MaxBatchSize = batch
			c.MaxInFlight = 1
		}
		return c
	}
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		var rep replica
		switch kind {
		case kindPaxos:
			r := paxos.New(ep, pcfg(id), nil)
			f.stores[id] = r.Store()
			rep = r
		case kindPigPaxos:
			r := pigpaxos.New(ep, pigpaxos.Config{
				Paxos:        pcfg(id),
				NumGroups:    2,
				RelayTimeout: 10 * time.Millisecond,
			})
			f.stores[id] = r.Core().Store()
			rep = r
		case kindEPaxos:
			r := epaxos.New(ep, epaxos.Config{Cluster: cc, ID: id})
			f.stores[id] = r.Store()
			rep = r
		}
		tr.h = rep.OnMessage
		f.replicas[id] = rep
	}
	sim.Schedule(0, func() {
		for _, r := range f.replicas {
			r.Start()
		}
	})
	return f
}

// addClient attaches a scripted client. EPaxos clients round-robin over all
// replicas; the others start at the leader and follow redirects.
func (f *fixture) addClient(kind protocolKind, id uint64, script []kvstore.Command, startAt time.Duration) {
	cl := &histClient{id: id, hist: f.hist, script: script}
	if kind == kindEPaxos {
		cl.targets = f.cc.Nodes
		cl.rr = int(id)
	} else {
		cl.targets = []ids.ID{f.cc.Nodes[0]}
	}
	cl.ep = f.net.Register(ids.NewID(998, int(id)), cl, true)
	f.clients = append(f.clients, cl)
	f.sim.Schedule(startAt, cl.next)
}

func (f *fixture) run(t *testing.T, until time.Duration) {
	t.Helper()
	f.sim.Run(until)
	for i, cl := range f.clients {
		if !cl.done {
			t.Fatalf("client %d stuck at op %d/%d", i, cl.pos, len(cl.script))
		}
	}
}

// script builds a deterministic mixed workload over few hot keys so
// concurrent clients genuinely contend.
func script(client uint64, ops, keys int) []kvstore.Command {
	out := make([]kvstore.Command, 0, ops)
	for i := 0; i < ops; i++ {
		key := uint64((int(client) + i) % keys)
		if i%3 == 2 {
			out = append(out, kvstore.Command{Op: kvstore.Get, Key: key})
		} else {
			out = append(out, kvstore.Command{
				Op: kvstore.Put, Key: key,
				Value: []byte(fmt.Sprintf("c%d-%d", client, i)),
			})
		}
	}
	return out
}

func TestLinearizabilityUnderContention(t *testing.T) {
	for _, kind := range []protocolKind{kindPaxos, kindPigPaxos, kindEPaxos} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				f := build(t, kind, 5, seed)
				// 4 clients × 6 ops over 2 hot keys: heavy overlap, but
				// per-key history stays within the checker's bound.
				for c := uint64(1); c <= 4; c++ {
					f.addClient(kind, c, script(c, 6, 2), time.Duration(c)*100*time.Microsecond)
				}
				f.run(t, 5*time.Second)
				res := f.hist.Check()
				if !res.OK {
					t.Fatalf("seed %d: history not linearizable (key %d, %d ops)",
						seed, res.BadKey, f.hist.Len())
				}
			}
		})
	}
}

// Batched slots must not weaken the guarantee: commands sharing a slot
// execute in batch order and reply only after the slot commits, so the
// contended histories stay linearizable for both leader-based protocols.
func TestLinearizabilityUnderBatching(t *testing.T) {
	for _, kind := range []protocolKind{kindPaxos, kindPigPaxos} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				f := buildBatched(t, kind, 5, seed, 8)
				for c := uint64(1); c <= 4; c++ {
					f.addClient(kind, c, script(c, 6, 2), time.Duration(c)*100*time.Microsecond)
				}
				f.run(t, 5*time.Second)
				res := f.hist.Check()
				if !res.OK {
					t.Fatalf("seed %d: batched history not linearizable (key %d, %d ops)",
						seed, res.BadKey, f.hist.Len())
				}
			}
		})
	}
}

func TestLinearizabilityWithFollowerCrash(t *testing.T) {
	for _, kind := range []protocolKind{kindPaxos, kindPigPaxos} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := build(t, kind, 5, 7)
			for c := uint64(1); c <= 3; c++ {
				f.addClient(kind, c, script(c, 6, 2), time.Duration(c)*time.Millisecond)
			}
			// Crash a follower mid-run; the leader's quorum survives.
			f.sim.Schedule(3*time.Millisecond, func() { f.net.Crash(f.cc.Nodes[4]) })
			f.run(t, 10*time.Second)
			res := f.hist.Check()
			if !res.OK {
				t.Fatalf("crash run: history not linearizable at key %d", res.BadKey)
			}
		})
	}
}

func TestStateConvergenceAcrossProtocols(t *testing.T) {
	for _, kind := range []protocolKind{kindPaxos, kindPigPaxos, kindEPaxos} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := build(t, kind, 5, 11)
			for c := uint64(1); c <= 3; c++ {
				f.addClient(kind, c, script(c, 10, 4), 0)
			}
			// Long tail so heartbeat watermarks / commit broadcasts flush.
			f.run(t, 10*time.Second)
			var want uint64
			var applied uint64
			first := true
			for id, st := range f.stores {
				if first {
					want = st.Checksum()
					applied = st.Applied()
					first = false
					continue
				}
				if st.Applied() != applied {
					t.Errorf("%v applied %d, others %d", id, st.Applied(), applied)
				}
				if st.Checksum() != want {
					t.Errorf("%v state diverged", id)
				}
			}
		})
	}
}

func TestPigPaxosSurvivesRelayGroupWipeout(t *testing.T) {
	f := build(t, kindPigPaxos, 9, 13)
	// Crash an entire relay group of the leader's layout before traffic.
	pr := f.replicas[f.cc.Nodes[0]].(*pigpaxos.Replica)
	f.sim.Schedule(2*time.Millisecond, func() {
		for _, id := range pr.Layout().Groups[0] {
			f.net.Crash(id)
		}
	})
	f.addClient(kindPigPaxos, 1, script(1, 8, 3), 5*time.Millisecond)
	f.run(t, 20*time.Second)
	if !f.hist.Check().OK {
		t.Fatal("history not linearizable after group wipeout")
	}
	if f.hist.Len() != 8 {
		t.Fatalf("only %d of 8 ops completed", f.hist.Len())
	}
}

func TestEPaxosMultiLeaderHistories(t *testing.T) {
	// Clients pinned to different EPaxos command leaders hammer one key.
	f := build(t, kindEPaxos, 5, 17)
	for c := uint64(1); c <= 4; c++ {
		f.addClient(kindEPaxos, c, script(c, 5, 1), 0)
	}
	f.run(t, 5*time.Second)
	res := f.hist.Check()
	if !res.OK {
		t.Fatalf("EPaxos single-key contention not linearizable (%d ops)", f.hist.Len())
	}
}

// buildWithReadMode is build() with a paxos read-mode and heartbeat
// override.
func buildWithReadMode(t *testing.T, mode paxos.ReadMode, hb time.Duration, n int, seed int64) *fixture {
	t.Helper()
	sim := des.New(seed)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	f := &fixture{
		sim: sim, net: net, cc: cc,
		replicas: make(map[ids.ID]replica),
		stores:   make(map[ids.ID]*kvstore.Store),
		hist:     &linearizability.History{},
	}
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		r := paxos.New(ep, paxos.Config{
			Cluster: cc, ID: id, InitialLeader: cc.Nodes[0],
			ReadMode:          mode,
			HeartbeatInterval: hb,
		}, nil)
		f.stores[id] = r.Store()
		tr.h = r.OnMessage
		f.replicas[id] = r
	}
	sim.Schedule(0, func() {
		for _, r := range f.replicas {
			r.Start()
		}
	})
	return f
}

// addSpreadClient issues a script round-robin over ALL replicas (so ReadAny
// actually reads from followers).
func (f *fixture) addSpreadClient(id uint64, script []kvstore.Command, startAt time.Duration) {
	cl := &histClient{id: id, hist: f.hist, script: script, targets: f.cc.Nodes, rr: int(id)}
	cl.ep = f.net.Register(ids.NewID(998, int(id)), cl, true)
	f.clients = append(f.clients, cl)
	f.sim.Schedule(startAt, cl.next)
}

func TestLeaseReadsAreLinearizable(t *testing.T) {
	f := buildWithReadMode(t, paxos.ReadLease, 2*time.Millisecond, 5, 21)
	for c := uint64(1); c <= 4; c++ {
		f.addClient(kindPaxos, c, script(c, 6, 2), time.Duration(c)*200*time.Microsecond)
	}
	f.run(t, 5*time.Second)
	if res := f.hist.Check(); !res.OK {
		t.Fatalf("lease reads broke linearizability at key %d", res.BadKey)
	}
}

// The checker must catch ReadAny's staleness: a read served by a follower
// that has not yet learned a completed write returns the old value after
// the write finished — a real-time violation. This is both a §4.3
// demonstration and a self-test that the checker has teeth.
func TestReadAnyViolatesLinearizability(t *testing.T) {
	// Slow heartbeats: followers accept writes but learn commits late, so
	// their local state lags well behind completed writes.
	f := buildWithReadMode(t, paxos.ReadAny, time.Hour, 5, 3)
	// Writer completes its writes through the leader first...
	f.addClient(kindPaxos, 1, []kvstore.Command{
		{Op: kvstore.Put, Key: 9, Value: []byte("w1")},
		{Op: kvstore.Put, Key: 9, Value: []byte("w2")},
	}, 0)
	// ...then a reader asks a follower, long after both writes completed.
	f.addSpreadClient(2, []kvstore.Command{
		{Op: kvstore.Get, Key: 9},
		{Op: kvstore.Get, Key: 9},
	}, 100*time.Millisecond)
	f.run(t, 5*time.Second)
	if res := f.hist.Check(); res.OK {
		t.Fatal("ReadAny after completed writes should have produced a stale, non-linearizable read")
	}
}
