package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond {
		t.Errorf("min = %v", h.Min())
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v, want ~50.5ms", mean)
	}
}

func TestHistogramPercentilesExact(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if p := h.Percentile(50); p != 500*time.Microsecond {
		t.Errorf("p50 = %v, want 500µs", p)
	}
	if p := h.Percentile(99); p != 990*time.Microsecond {
		t.Errorf("p99 = %v, want 990µs", p)
	}
	if p := h.Percentile(100); p != 1000*time.Microsecond {
		t.Errorf("p100 = %v, want 1000µs", p)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Error("negative samples clamp to zero")
	}
}

func TestHistogramBucketFallback(t *testing.T) {
	h := NewHistogram()
	h.rawCap = 10
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(100+i%3) * time.Microsecond)
	}
	// Bucket approximation: all samples fall in [64µs,128µs) → upper bound 128µs.
	p := h.Percentile(50)
	if p < 100*time.Microsecond || p > 256*time.Microsecond {
		t.Errorf("approximate p50 = %v, want within [100µs, 256µs]", p)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || !strings.Contains(s.String(), "n=1") {
		t.Errorf("summary: %v", s)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	c.Add(5)
	if c.Value() != 4005 {
		t.Errorf("counter = %d, want 4005", c.Value())
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	// 10 events in second 0, 20 in second 2, none in second 1.
	for i := 0; i < 10; i++ {
		ts.Record(500 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		ts.Record(2500 * time.Millisecond)
	}
	pts := ts.Series()
	if len(pts) != 3 {
		t.Fatalf("series has %d points, want 3", len(pts))
	}
	if pts[0].Rate != 10 || pts[1].Rate != 0 || pts[2].Rate != 20 {
		t.Errorf("rates = %v %v %v, want 10 0 20", pts[0].Rate, pts[1].Rate, pts[2].Rate)
	}
	if pts[2].Start != 2*time.Second {
		t.Errorf("window start = %v, want 2s", pts[2].Start)
	}
}

func TestTimeSeriesSubSecondWidth(t *testing.T) {
	ts := NewTimeSeries(100 * time.Millisecond)
	ts.Record(50 * time.Millisecond)
	ts.Record(60 * time.Millisecond)
	pts := ts.Series()
	if len(pts) != 1 || pts[0].Rate != 20 {
		t.Errorf("rate = %v, want 20/s (2 events in 0.1s)", pts)
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width should panic")
		}
	}()
	NewTimeSeries(0)
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a ") || !strings.Contains(lines[0], "long-header") {
		t.Errorf("header row: %q", lines[0])
	}
	// Columns align: the second column starts at the same offset everywhere.
	off := strings.Index(lines[0], "long-header")
	if strings.Index(lines[1], "1") != off || strings.Index(lines[2], "22") != off {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestGapTrackerEmptyAndSingle(t *testing.T) {
	var g GapTracker
	if s, gap := g.MaxGap(); s != 0 || gap != 0 {
		t.Errorf("empty tracker gap = (%v,%v)", s, gap)
	}
	if _, ok := g.FirstAfter(0); ok {
		t.Error("empty tracker has an event")
	}
	g.Record(5 * time.Millisecond)
	if s, gap := g.MaxGap(); s != 0 || gap != 0 {
		t.Errorf("single event gap = (%v,%v), want zero (needs service on both sides)", s, gap)
	}
	if g.Count() != 1 {
		t.Errorf("count = %d", g.Count())
	}
}

func TestGapTrackerMaxGapAndRecovery(t *testing.T) {
	var g GapTracker
	for _, at := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond,
		// fault window: no service 3ms..50ms
		50 * time.Millisecond, 51 * time.Millisecond,
	} {
		g.Record(at)
	}
	start, gap := g.MaxGap()
	if start != 3*time.Millisecond || gap != 47*time.Millisecond {
		t.Errorf("gap = (%v,%v), want (3ms,47ms)", start, gap)
	}
	at, ok := g.FirstAfter(10 * time.Millisecond)
	if !ok || at != 50*time.Millisecond {
		t.Errorf("FirstAfter(10ms) = (%v,%v), want 50ms", at, ok)
	}
	at, ok = g.FirstAfter(51 * time.Millisecond)
	if !ok || at != 51*time.Millisecond {
		t.Errorf("FirstAfter(51ms) = (%v,%v), want exactly 51ms", at, ok)
	}
	if _, ok := g.FirstAfter(52 * time.Millisecond); ok {
		t.Error("FirstAfter past the last event should report none")
	}
}

func TestGapTrackerGapsOver(t *testing.T) {
	g := &GapTracker{}
	for _, at := range []time.Duration{
		0, 10 * time.Millisecond, 20 * time.Millisecond,
		500 * time.Millisecond, // 480ms stall
		510 * time.Millisecond,
		900 * time.Millisecond, // 390ms stall
	} {
		g.Record(at)
	}
	if n := g.GapsOver(250 * time.Millisecond); n != 2 {
		t.Errorf("GapsOver(250ms) = %d, want 2", n)
	}
	if n := g.GapsOver(time.Second); n != 0 {
		t.Errorf("GapsOver(1s) = %d, want 0", n)
	}
	if n := (&GapTracker{}).GapsOver(time.Millisecond); n != 0 {
		t.Errorf("empty tracker GapsOver = %d", n)
	}
}

// Golden quantiles for the load tester's reporting path: a known input set
// must produce exact p50/p99/p99.9 while raw samples are retained.
func TestHistogramGoldenQuantiles(t *testing.T) {
	h := NewHistogram()
	// 10000 samples 1..10000µs in a scrambled insertion order (order must
	// not matter).
	for i := 0; i < 10000; i++ {
		v := (i*7919)%10000 + 1 // 7919 coprime with 10000: a permutation
		h.Observe(time.Duration(v) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, c := range []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"p50", s.P50, 5000 * time.Microsecond},
		{"p99", s.P99, 9900 * time.Microsecond},
		{"p99.9", s.P999, 9990 * time.Microsecond},
	} {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if !strings.Contains(s.String(), "p99.9=9.99ms") {
		t.Errorf("summary string missing p99.9: %q", s.String())
	}
}
