// Package metrics provides the measurement primitives the benchmark harness
// uses: log-bucketed latency histograms, monotonic counters, and fixed-width
// throughput time series (the paper's Figure 13 samples throughput over
// one-second intervals).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples into exponentially sized buckets and
// answers percentile queries. It keeps raw samples up to a cap so small
// experiments get exact percentiles; beyond the cap it falls back to bucket
// interpolation. Histogram is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets []uint64 // bucket i covers [2^i, 2^(i+1)) microseconds
	raw     []time.Duration
	rawCap  int
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

const defaultRawCap = 1 << 16

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, 64),
		rawCap:  defaultRawCap,
		min:     math.MaxInt64,
	}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	us := d.Microseconds()
	b := 0
	for v := us; v > 1; v >>= 1 {
		b++
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.raw) < h.rawCap {
		h.raw = append(h.raw, d)
	}
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all samples (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns the p-th percentile (0 < p ≤ 100). Exact while raw
// samples are retained, bucket upper-bound approximation afterwards.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if uint64(len(h.raw)) == h.count {
		s := make([]time.Duration, len(h.raw))
		copy(s, h.raw)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		// The epsilon absorbs float error in p/100 (99.9/100*10000 computes
		// to 9990.0000000000018; the nearest rank is 9990, not 9991).
		idx := int(math.Ceil(p/100*float64(len(s))-1e-9)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	target := uint64(math.Ceil(p/100*float64(h.count) - 1e-9))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return time.Duration(uint64(1)<<(uint(i)+1)) * time.Microsecond
		}
	}
	return h.max
}

// Snapshot summarizes the histogram for reporting.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count    uint64
	Mean     time.Duration
	Min, Max time.Duration
	P50, P99 time.Duration
	// P999 is the 99.9th percentile, the tail the open-loop TCP load
	// tester reports alongside p50/p99.
	P999 time.Duration
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v min=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Min, s.Max)
}

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// TimeSeries buckets event counts into fixed-width windows of virtual or
// wall time, producing throughput-over-time curves (paper Figure 13).
type TimeSeries struct {
	mu     sync.Mutex
	width  time.Duration
	counts map[int64]uint64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(width time.Duration) *TimeSeries {
	if width <= 0 {
		panic("metrics: non-positive time series width")
	}
	return &TimeSeries{width: width, counts: make(map[int64]uint64)}
}

// Record counts one event at time t (measured from the experiment origin).
func (ts *TimeSeries) Record(t time.Duration) {
	ts.mu.Lock()
	ts.counts[int64(t/ts.width)]++
	ts.mu.Unlock()
}

// Point is one (window start, events/sec) sample.
type Point struct {
	Start time.Duration
	Rate  float64
}

// Series returns rate samples for every window from 0 through the last
// non-empty window, including empty windows (rate 0).
func (ts *TimeSeries) Series() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var maxB int64 = -1
	for b := range ts.counts {
		if b > maxB {
			maxB = b
		}
	}
	out := make([]Point, 0, maxB+1)
	sec := ts.width.Seconds()
	for b := int64(0); b <= maxB; b++ {
		out = append(out, Point{
			Start: time.Duration(b) * ts.width,
			Rate:  float64(ts.counts[b]) / sec,
		})
	}
	return out
}

// GapTracker records the timestamps of successful events (request
// completions) and answers availability questions about the run: the longest
// interval with no completions at all (the availability gap a fault opens)
// and the first completion after a given instant (recovery latency). The
// chaos scenario harness keeps one per run; scenario op counts are bounded,
// so timestamps are retained exactly.
type GapTracker struct {
	mu    sync.Mutex
	times []time.Duration // ascending (events are recorded in virtual-time order)
}

// Record notes one successful event at time t. Timestamps must be
// non-decreasing (virtual time only moves forward).
func (g *GapTracker) Record(t time.Duration) {
	g.mu.Lock()
	g.times = append(g.times, t)
	g.mu.Unlock()
}

// Count returns the number of recorded events.
func (g *GapTracker) Count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.times)
}

// MaxGap returns the longest interval between consecutive recorded events
// and the instant that interval began. With fewer than two events both are
// zero: a gap needs service on both sides to be an *availability* gap rather
// than a ramp-up or shutdown artifact.
func (g *GapTracker) MaxGap() (start, gap time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 1; i < len(g.times); i++ {
		if d := g.times[i] - g.times[i-1]; d > gap {
			gap = d
			start = g.times[i-1]
		}
	}
	return start, gap
}

// GapsOver counts the intervals between consecutive recorded events that
// meet or exceed threshold — how many distinct service interruptions a run
// suffered, as opposed to MaxGap's single worst one. Zero threshold counts
// every interval and is almost never what a caller wants.
func (g *GapTracker) GapsOver(threshold time.Duration) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for i := 1; i < len(g.times); i++ {
		if g.times[i]-g.times[i-1] >= threshold {
			n++
		}
	}
	return n
}

// FirstAfter returns the earliest recorded event at or after t. ok is false
// when no event follows t.
func (g *GapTracker) FirstAfter(t time.Duration) (at time.Duration, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	i := sort.Search(len(g.times), func(i int) bool { return g.times[i] >= t })
	if i == len(g.times) {
		return 0, false
	}
	return g.times[i], true
}

// Table renders rows of labeled values with aligned columns; the benchmark
// harness uses it to print paper-style tables.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
