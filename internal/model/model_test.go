package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 0.01 }

// Table 1 of the paper: 25-node cluster.
func TestTable1Values(t *testing.T) {
	cases := []struct {
		r        int
		ml, mf   float64
		overhead float64
	}{
		{2, 6, 3.83, 56},
		{3, 8, 3.75, 113},
		{4, 10, 3.67, 172},
		{5, 12, 3.58, 234},
		{6, 14, 3.50, 300},
	}
	for _, c := range cases {
		if ml := LeaderLoad(c.r); ml != c.ml {
			t.Errorf("r=%d: Ml=%v, want %v", c.r, ml, c.ml)
		}
		if mf := FollowerLoad(25, c.r); !approx(mf, c.mf) {
			t.Errorf("r=%d: Mf=%.2f, want %.2f", c.r, mf, c.mf)
		}
		oh := 100 * LeaderOverhead(LeaderLoad(c.r), FollowerLoad(25, c.r))
		if math.Abs(oh-c.overhead) > 1.0 {
			t.Errorf("r=%d: overhead=%.0f%%, want %.0f%%", c.r, oh, c.overhead)
		}
	}
	// Paxos row: Ml=50, Mf=2, overhead 2400%.
	if PaxosLeaderLoad(25) != 50 {
		t.Errorf("Paxos Ml = %v", PaxosLeaderLoad(25))
	}
	if PaxosFollowerLoad() != 2 {
		t.Errorf("Paxos Mf = %v", PaxosFollowerLoad())
	}
	if oh := 100 * LeaderOverhead(50, 2); oh != 2400 {
		t.Errorf("Paxos overhead = %v%%, want 2400%%", oh)
	}
}

// Table 2 of the paper: 9-node cluster.
func TestTable2Values(t *testing.T) {
	cases := []struct {
		r        int
		ml, mf   float64
		overhead float64
	}{
		{2, 6, 3.5, 71},
		{3, 8, 3.25, 146},
		{4, 10, 3.0, 233},
	}
	for _, c := range cases {
		if ml := LeaderLoad(c.r); ml != c.ml {
			t.Errorf("r=%d: Ml=%v", c.r, ml)
		}
		if mf := FollowerLoad(9, c.r); !approx(mf, c.mf) {
			t.Errorf("r=%d: Mf=%.2f, want %.2f", c.r, mf, c.mf)
		}
		oh := 100 * LeaderOverhead(LeaderLoad(c.r), FollowerLoad(9, c.r))
		if math.Abs(oh-c.overhead) > 1.0 {
			t.Errorf("r=%d: overhead=%.0f%%, want %.0f%%", c.r, oh, c.overhead)
		}
	}
	if PaxosLeaderLoad(9) != 18 {
		t.Errorf("9-node Paxos Ml = %v, want 18", PaxosLeaderLoad(9))
	}
	if oh := 100 * LeaderOverhead(18, 2); oh != 800 {
		t.Errorf("9-node Paxos overhead = %v%%, want 800%%", oh)
	}
}

func TestDegenerateGroupingEqualsPaxos(t *testing.T) {
	// §3.3: PigPaxos with N−1 singleton groups is Paxos.
	for _, n := range []int{5, 9, 25} {
		if LeaderLoad(n-1) != PaxosLeaderLoad(n) {
			t.Errorf("n=%d: degenerate LeaderLoad mismatch", n)
		}
		if !approx(FollowerLoad(n, n-1), PaxosFollowerLoad()) {
			t.Errorf("n=%d: degenerate FollowerLoad = %v", n, FollowerLoad(n, n-1))
		}
	}
}

func TestAsymptoticFollowerLoad(t *testing.T) {
	// §6.3: with r=1, Mf → 4 as N → ∞ and the smallest possible Ml is 4.
	if LeaderLoad(1) != 4 {
		t.Errorf("minimum Ml = %v, want 4", LeaderLoad(1))
	}
	if AsymptoticFollowerLoad(1) != 4 {
		t.Error("asymptotic follower load should be 4")
	}
	if got := FollowerLoad(100000, 1); math.Abs(got-4) > 0.001 {
		t.Errorf("Mf at N=100000, r=1: %v, want ≈ 4", got)
	}
}

// Property: the leader load is never below the follower load — the paper's
// §6.3 argument that the bottleneck cannot shift entirely to followers.
func TestLeaderAlwaysBottleneckProperty(t *testing.T) {
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw)%100 + 3
		r := int(rRaw)%(n-1) + 1
		return LeaderLoad(r) >= FollowerLoad(n, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: follower load decreases (weakly) as r grows; leader load
// increases strictly.
func TestLoadMonotonicityProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)%50 + 4
		for r := 2; r < n-1; r++ {
			if LeaderLoad(r) <= LeaderLoad(r-1) {
				return false
			}
			if FollowerLoad(n, r) > FollowerLoad(n, r-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableAndFormat(t *testing.T) {
	rows := Table(25, []int{2, 3, 4, 5, 6})
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (5 + Paxos)", len(rows))
	}
	if !rows[5].IsPaxos || rows[5].Groups != 24 {
		t.Errorf("last row should be Paxos r=24: %+v", rows[5])
	}
	out := Format(25, rows)
	if !strings.Contains(out, "24 (Paxos)") || !strings.Contains(out, "2400%") {
		t.Errorf("formatted table missing Paxos row:\n%s", out)
	}
	if !strings.Contains(out, "3.83") {
		t.Errorf("formatted table missing Mf values:\n%s", out)
	}
}
