// Package model implements the paper's analytical message-load model (§6.1,
// §6.3): closed-form per-round message counts at the leader and at an
// average follower, used to explain why fewer relay groups shift the
// bottleneck away from the leader and to regenerate Tables 1 and 2.
package model

import (
	"fmt"
	"math"

	"pigpaxos/internal/metrics"
)

// LeaderLoad returns Ml, the messages the leader handles per round with r
// relay groups: one client request, one reply, and a round trip with each of
// the r relays (Equation 1: Ml = 2r + 2).
func LeaderLoad(r int) float64 { return float64(2*r + 2) }

// FollowerLoad returns Mf, the expected messages an average follower
// handles per round in an N-node cluster with r relay groups (Equation 3:
// Mf = 2(N−r−1)/(N−1) + 2): every follower does one round trip (with its
// relay or, when acting as relay, with the leader), and with probability
// r/(N−1) it serves as relay, adding a round trip per remaining group
// member.
func FollowerLoad(n, r int) float64 {
	if n <= 1 {
		return 0
	}
	return 2*float64(n-r-1)/float64(n-1) + 2
}

// PaxosLeaderLoad returns the classical Paxos leader load for an N-node
// cluster: 2(N−1) + 2 (a round trip with every follower plus the client
// exchange). It equals LeaderLoad(N−1), the degenerate grouping of §3.3.
func PaxosLeaderLoad(n int) float64 { return LeaderLoad(n - 1) }

// PaxosFollowerLoad returns the Paxos follower load: exactly one round trip
// with the leader.
func PaxosFollowerLoad() float64 { return 2 }

// LeaderOverhead returns the leader's relative message-load overhead over
// the average follower, the rightmost column of Tables 1-2:
// (Ml − Mf) / Mf.
func LeaderOverhead(ml, mf float64) float64 { return (ml - mf) / mf }

// Row is one line of Table 1/2.
type Row struct {
	Groups      int // r, or N−1 for the Paxos row
	Leader      float64
	Follower    float64
	OverheadPct float64
	IsPaxos     bool
}

// Table computes the message-load table for an n-node cluster over the
// given relay-group counts, appending the degenerate Paxos row (r = N−1)
// exactly as the paper's Tables 1 and 2 do.
func Table(n int, groups []int) []Row {
	rows := make([]Row, 0, len(groups)+1)
	for _, r := range groups {
		ml, mf := LeaderLoad(r), FollowerLoad(n, r)
		rows = append(rows, Row{
			Groups: r, Leader: ml, Follower: mf,
			OverheadPct: 100 * LeaderOverhead(ml, mf),
		})
	}
	ml, mf := PaxosLeaderLoad(n), PaxosFollowerLoad()
	rows = append(rows, Row{
		Groups: n - 1, Leader: ml, Follower: mf,
		OverheadPct: 100 * LeaderOverhead(ml, mf),
		IsPaxos:     true,
	})
	return rows
}

// Format renders a table in the paper's layout.
func Format(n int, rows []Row) string {
	header := []string{"# of Relay Groups (r)", "Messages at Leader (Ml)", "Messages at Follower (Mf)", "Leader Overhead"}
	body := make([][]string, 0, len(rows))
	for _, r := range rows {
		label := fmt.Sprintf("%d", r.Groups)
		if r.IsPaxos {
			label = fmt.Sprintf("%d (Paxos)", r.Groups)
		}
		body = append(body, []string{
			label,
			trimFloat(r.Leader),
			trimFloat(r.Follower),
			fmt.Sprintf("%.0f%%", r.OverheadPct),
		})
	}
	return fmt.Sprintf("Message load, %d-node cluster\n%s", n, metrics.Table(header, body))
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// AsymptoticFollowerLoad returns lim N→∞ of FollowerLoad(N, r): the §6.3
// result that follower load is capped at 4 regardless of cluster size,
// which is why the leader (Ml ≥ 4, growing with r) remains the bottleneck
// and extra relay layers cannot help.
func AsymptoticFollowerLoad(r int) float64 {
	_ = r // independent of r in the limit
	return 4
}
