//go:build !race

package wire

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately defeats pooling under -race, so zero-allocation assertions
// only hold in normal builds.
const raceEnabled = false
