// Package wire defines every protocol message exchanged in the repository
// and a compact hand-rolled binary codec for them. The same definitions
// serve both substrates: the live TCP transport frames and ships encoded
// bytes, while the discrete-event simulator passes messages by value and
// uses Size (the exact encoded length) to drive its per-byte CPU/network
// cost model.
//
// Encoding is little-endian with fixed-width integers and length-prefixed
// byte strings. Every message type registers a decoder in init; Decode
// dispatches on the one-byte type tag.
//
// The codec is built to be allocation-free on the steady-state hot path:
// Encode appends into a caller-owned buffer (GetBuf/PutBuf pool reusable
// scratch), Decode draws its reader from a sync.Pool, and DecodeInto
// decodes into a reusable Scratch arena so that command batches, ID lists
// and byte strings reuse grown storage instead of allocating per message.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

// Type tags a message on the wire.
type Type uint8

// Message type tags. The numeric values are part of the wire format.
const (
	TRequest Type = iota + 1
	TReply
	TP1a
	TP1b
	TP2a
	TP2b
	TP3
	TRelayP1a
	TAggP1b
	TRelayP2a
	TAggP2b
	TRelayP3
	TPreAccept
	TPreAcceptReply
	TAccept
	TAcceptReply
	TCommit
	TQReadReq
	TQReadReply
	THeartbeat
	TCatchupReq
	TCatchupReply
	THeartbeatAck
	TPrepare
	TPrepareReply
	TSharded
	TSnapInstall
	TBusy
	maxType
)

// typeNames is indexed by Type; a static array so String never allocates
// a lookup table per call.
var typeNames = [maxType]string{
	TRequest: "Request", TReply: "Reply",
	TP1a: "P1a", TP1b: "P1b", TP2a: "P2a", TP2b: "P2b", TP3: "P3",
	TRelayP1a: "RelayP1a", TAggP1b: "AggP1b",
	TRelayP2a: "RelayP2a", TAggP2b: "AggP2b", TRelayP3: "RelayP3",
	TPreAccept: "PreAccept", TPreAcceptReply: "PreAcceptReply",
	TAccept: "Accept", TAcceptReply: "AcceptReply", TCommit: "Commit",
	TQReadReq: "QReadReq", TQReadReply: "QReadReply",
	THeartbeat:  "Heartbeat",
	TCatchupReq: "CatchupReq", TCatchupReply: "CatchupReply",
	THeartbeatAck: "HeartbeatAck",
	TPrepare:      "Prepare", TPrepareReply: "PrepareReply",
	TSharded:     "Sharded",
	TSnapInstall: "SnapInstall",
	TBusy:        "Busy",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if t > 0 && t < maxType {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Msg is implemented by every wire message.
type Msg interface {
	// Type returns the wire tag.
	Type() Type
	// Size returns the exact encoded body length in bytes.
	Size() int
	// append encodes the body onto b.
	append(b []byte) []byte
}

// Encode serializes m as [1-byte type][body] and appends to dst.
func Encode(dst []byte, m Msg) []byte {
	dst = append(dst, byte(m.Type()))
	return m.append(dst)
}

// bufPool holds reusable encode scratch buffers. Stored as *[]byte so the
// slice header itself is not re-boxed on every Put.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetBuf returns a pooled, zero-length encode buffer. Use as
//
//	b := wire.GetBuf()
//	*b = wire.Encode((*b)[:0], m)
//	... ship *b ...
//	wire.PutBuf(b)
//
// so steady-state encoding performs no allocations once buffers have grown
// to the working-set frame size.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	bufPool.Put(b)
}

// readerPool recycles decode readers so Decode performs no bookkeeping
// allocation per message.
var readerPool = sync.Pool{New: func() any { return new(reader) }}

// Decode parses one message from data (as produced by Encode). It returns
// the message and the number of bytes consumed. All variable-length
// contents (command batches, values, ID lists) are freshly allocated and
// safe to retain.
func Decode(data []byte) (Msg, int, error) {
	return decode(data, nil)
}

// DecodeInto is Decode with a reusable Scratch arena: command batches, ID
// lists, slot entries and byte strings in the returned message are carved
// out of s instead of allocated, and the hottest message kinds (P1a, P2a,
// P2b, P3, AggP2b, Heartbeat, HeartbeatAck, Request, Reply, Prepare,
// PrepareReply) are returned as pointers into s rather than freshly boxed
// values. Steady state it performs zero allocations.
//
// Everything reachable from the returned Msg is owned by s: it remains
// valid only until the next DecodeInto on the same Scratch that reuses the
// storage (same hot message kind, or a Reset). Callers that retain message
// contents past that point must copy them. The one-shot Decode has no such
// caveat.
//
// CAUTION — pointer boxing: for the hot kinds the dynamic type of the
// returned Msg is *P2a, *P2b, etc., not P2a. A type switch written for
// value types (`case P2a:`), like the ones in every protocol's OnMessage,
// silently misses pointer-boxed messages. Do not feed DecodeInto output
// into such a switch; either match both forms or use Decode, which always
// returns value-boxed messages (and is what the transport read path uses,
// since handlers retain decoded contents).
//
// DecodeInto is therefore for consumers that fully process a message
// before the next decode — measurement harnesses, replay/inspection
// tools, and the codec benchmarks that assert the hot-path allocation
// floor. The live TCP read path deliberately stays on Decode.
func DecodeInto(s *Scratch, data []byte) (Msg, int, error) {
	return decode(data, s)
}

func decode(data []byte, s *Scratch) (Msg, int, error) {
	if len(data) == 0 {
		return nil, 0, errEmpty
	}
	t := Type(data[0])
	if t == 0 || t >= maxType {
		return nil, 0, fmt.Errorf("wire: unknown message type %d", data[0])
	}
	r := readerPool.Get().(*reader)
	r.b, r.off, r.err, r.scratch = data, 1, nil, s
	m := decoders[t](r)
	off, err := r.off, r.err
	r.b, r.err, r.scratch = nil, nil, nil
	readerPool.Put(r)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: decoding %v: %w", t, err)
	}
	return m, off, nil
}

var errEmpty = fmt.Errorf("wire: empty buffer")

var decoders [maxType]func(*reader) Msg

// Scratch is a reusable decode arena for DecodeInto. The zero value is
// ready to use; GetScratch/PutScratch pool instances across call sites.
type Scratch struct {
	// Hot-path message singletons: DecodeInto returns pointers to these
	// for the corresponding types, avoiding an interface-boxing allocation
	// per decoded message.
	p1a          P1a
	p2a          P2a
	p2b          P2b
	p3           P3
	aggP2b       AggP2b
	heartbeat    Heartbeat
	heartbeatAck HeartbeatAck
	request      Request
	reply        Reply
	busy         Busy
	prepare      Prepare
	prepareReply PrepareReply
	sharded      Sharded

	// Growable arenas for variable-length message contents.
	cmds    []kvstore.Command
	ids     []ids.ID
	refs    []InstRef
	entries []SlotEntry
	p1bs    []P1b
	buf     []byte
}

// Reset discards all decoded contents, keeping the grown storage for
// reuse. Messages previously returned by DecodeInto on this Scratch become
// invalid.
func (s *Scratch) Reset() {
	s.cmds = s.cmds[:0]
	s.ids = s.ids[:0]
	s.refs = s.refs[:0]
	s.entries = s.entries[:0]
	s.p1bs = s.p1bs[:0]
	s.buf = s.buf[:0]
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a pooled decode arena.
func GetScratch() *Scratch {
	return scratchPool.Get().(*Scratch)
}

// PutScratch resets s and returns it to the pool.
func PutScratch(s *Scratch) {
	if s == nil {
		return
	}
	s.Reset()
	scratchPool.Put(s)
}

// ---- low-level encode/decode helpers ----

func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func putBytes(b []byte, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}

// checkCount guards every uint16 entry count on the wire: overflowing
// counts are a bug upstream, and truncating silently would corrupt the
// frame (the decoder would misparse everything after the undercounted
// list).
func checkCount(n int, what string) {
	if n > math.MaxUint16 {
		panic(fmt.Sprintf("wire: %s of %d exceeds uint16 count", what, n))
	}
}

func putIDs(b []byte, v []ids.ID) []byte {
	checkCount(len(v), "ID list")
	b = putU16(b, uint16(len(v)))
	for _, id := range v {
		b = putU32(b, uint32(id))
	}
	return b
}

const (
	szBool   = 1
	szU16    = 2
	szU32    = 4
	szU64    = 8
	szID     = 4
	szBallot = 8
)

func szBytes(v []byte) int { return szU32 + len(v) }
func szIDs(v []ids.ID) int { return szU16 + szID*len(v) }

type reader struct {
	b       []byte
	off     int
	err     error
	scratch *Scratch // nil for one-shot Decode
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("short buffer at offset %d", r.off)
	}
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) boolean() bool {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.off] != 0
	r.off++
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	src := r.b[r.off : r.off+n]
	r.off += n
	if s := r.scratch; s != nil {
		start := len(s.buf)
		s.buf = append(s.buf, src...)
		return s.buf[start:len(s.buf):len(s.buf)]
	}
	v := make([]byte, n)
	copy(v, src)
	return v
}

func (r *reader) id() ids.ID         { return ids.ID(r.u32()) }
func (r *reader) ballot() ids.Ballot { return ids.Ballot(r.u64()) }

func (r *reader) idSlice() []ids.ID {
	n := int(r.u16())
	if r.err != nil || r.off+szID*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	if s := r.scratch; s != nil {
		start := len(s.ids)
		for i := 0; i < n; i++ {
			s.ids = append(s.ids, r.id())
		}
		return s.ids[start:len(s.ids):len(s.ids)]
	}
	v := make([]ids.ID, n)
	for i := range v {
		v[i] = r.id()
	}
	return v
}

// szSlotEntryMin is the smallest possible encoded slot entry (empty
// batch), used to bound entry counts against the remaining buffer.
const szSlotEntryMin = szU64 + szBallot + szBool + szU16

// slotEntries decodes a count-prefixed slot-entry list (P1b, CatchupReply).
func (r *reader) slotEntries() []SlotEntry {
	n := int(r.u16())
	if r.err != nil || r.off+szSlotEntryMin*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	if s := r.scratch; s != nil {
		start := len(s.entries)
		for i := 0; i < n && r.err == nil; i++ {
			s.entries = append(s.entries, r.slotEntry())
		}
		return s.entries[start:len(s.entries):len(s.entries)]
	}
	v := make([]SlotEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		v = append(v, r.slotEntry())
	}
	return v
}

// szP1bMin is the smallest possible encoded P1b (no entries).
const szP1bMin = szBallot + szID + szU64 + szU16

// p1bs decodes a count-prefixed P1b list (AggP1b).
func (r *reader) p1bs() []P1b {
	n := int(r.u16())
	if r.err != nil || r.off+szP1bMin*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	if s := r.scratch; s != nil {
		start := len(s.p1bs)
		for i := 0; i < n && r.err == nil; i++ {
			s.p1bs = append(s.p1bs, r.p1b())
		}
		return s.p1bs[start:len(s.p1bs):len(s.p1bs)]
	}
	v := make([]P1b, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		v = append(v, r.p1b())
	}
	return v
}

func (r *reader) p1b() P1b {
	return P1b{Ballot: r.ballot(), From: r.id(), Floor: r.u64(), Entries: r.slotEntries()}
}

// ---- command encoding (shared by several messages) ----

func putCmd(b []byte, c kvstore.Command) []byte {
	b = append(b, byte(c.Op))
	b = putU64(b, c.Key)
	b = putBytes(b, c.Value)
	b = putU64(b, c.ClientID)
	b = putU64(b, c.Seq)
	return b
}

func szCmd(c kvstore.Command) int { return 1 + szU64 + szBytes(c.Value) + szU64 + szU64 }

// szCmdMin is the smallest possible encoded command (empty value), used to
// bound batch counts against the remaining buffer before allocating.
const szCmdMin = 1 + szU64 + szU32 + szU64 + szU64

// putCmds encodes a count-prefixed command batch. A one-element batch is the
// degenerate single-command case; protocols that never batch pay only the
// two-byte count. Batches beyond the uint16 count are a bug upstream
// (paxos clamps MaxBatchSize); truncating silently would corrupt the frame.
func putCmds(b []byte, v []kvstore.Command) []byte {
	checkCount(len(v), "command batch")
	b = putU16(b, uint16(len(v)))
	for _, c := range v {
		b = putCmd(b, c)
	}
	return b
}

func szCmds(v []kvstore.Command) int {
	n := szU16
	for _, c := range v {
		n += szCmd(c)
	}
	return n
}

func (r *reader) cmds() []kvstore.Command {
	n := int(r.u16())
	if r.err != nil || r.off+szCmdMin*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	if s := r.scratch; s != nil {
		start := len(s.cmds)
		for i := 0; i < n; i++ {
			s.cmds = append(s.cmds, r.cmd())
		}
		return s.cmds[start:len(s.cmds):len(s.cmds)]
	}
	v := make([]kvstore.Command, n)
	for i := range v {
		v[i] = r.cmd()
	}
	return v
}

func (r *reader) cmd() kvstore.Command {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return kvstore.Command{}
	}
	op := kvstore.Op(r.b[r.off])
	r.off++
	return kvstore.Command{
		Op:       op,
		Key:      r.u64(),
		Value:    r.bytes(),
		ClientID: r.u64(),
		Seq:      r.u64(),
	}
}
