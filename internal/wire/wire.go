// Package wire defines every protocol message exchanged in the repository
// and a compact hand-rolled binary codec for them. The same definitions
// serve both substrates: the live TCP transport frames and ships encoded
// bytes, while the discrete-event simulator passes messages by value and
// uses Size (the exact encoded length) to drive its per-byte CPU/network
// cost model.
//
// Encoding is little-endian with fixed-width integers and length-prefixed
// byte strings. Every message type registers a decoder in init; Decode
// dispatches on the one-byte type tag.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

// Type tags a message on the wire.
type Type uint8

// Message type tags. The numeric values are part of the wire format.
const (
	TRequest Type = iota + 1
	TReply
	TP1a
	TP1b
	TP2a
	TP2b
	TP3
	TRelayP1a
	TAggP1b
	TRelayP2a
	TAggP2b
	TRelayP3
	TPreAccept
	TPreAcceptReply
	TAccept
	TAcceptReply
	TCommit
	TQReadReq
	TQReadReply
	THeartbeat
	TCatchupReq
	TCatchupReply
	THeartbeatAck
	maxType
)

// String implements fmt.Stringer.
func (t Type) String() string {
	names := map[Type]string{
		TRequest: "Request", TReply: "Reply",
		TP1a: "P1a", TP1b: "P1b", TP2a: "P2a", TP2b: "P2b", TP3: "P3",
		TRelayP1a: "RelayP1a", TAggP1b: "AggP1b",
		TRelayP2a: "RelayP2a", TAggP2b: "AggP2b", TRelayP3: "RelayP3",
		TPreAccept: "PreAccept", TPreAcceptReply: "PreAcceptReply",
		TAccept: "Accept", TAcceptReply: "AcceptReply", TCommit: "Commit",
		TQReadReq: "QReadReq", TQReadReply: "QReadReply",
		THeartbeat:  "Heartbeat",
		TCatchupReq: "CatchupReq", TCatchupReply: "CatchupReply",
		THeartbeatAck: "HeartbeatAck",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Msg is implemented by every wire message.
type Msg interface {
	// Type returns the wire tag.
	Type() Type
	// Size returns the exact encoded body length in bytes.
	Size() int
	// append encodes the body onto b.
	append(b []byte) []byte
}

// Encode serializes m as [1-byte type][body] and appends to dst.
func Encode(dst []byte, m Msg) []byte {
	dst = append(dst, byte(m.Type()))
	return m.append(dst)
}

// Decode parses one message from data (as produced by Encode). It returns
// the message and the number of bytes consumed.
func Decode(data []byte) (Msg, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("wire: empty buffer")
	}
	t := Type(data[0])
	if t == 0 || t >= maxType {
		return nil, 0, fmt.Errorf("wire: unknown message type %d", data[0])
	}
	r := &reader{b: data, off: 1}
	m := decoders[t](r)
	if r.err != nil {
		return nil, 0, fmt.Errorf("wire: decoding %v: %w", t, r.err)
	}
	return m, r.off, nil
}

var decoders [maxType]func(*reader) Msg

// ---- low-level encode/decode helpers ----

func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func putBytes(b []byte, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}
func putIDs(b []byte, v []ids.ID) []byte {
	b = putU16(b, uint16(len(v)))
	for _, id := range v {
		b = putU32(b, uint32(id))
	}
	return b
}

const (
	szBool   = 1
	szU16    = 2
	szU32    = 4
	szU64    = 8
	szID     = 4
	szBallot = 8
)

func szBytes(v []byte) int { return szU32 + len(v) }
func szIDs(v []ids.ID) int { return szU16 + szID*len(v) }

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("short buffer at offset %d", r.off)
	}
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) boolean() bool {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.off] != 0
	r.off++
	return v
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b[r.off:r.off+n])
	r.off += n
	return v
}

func (r *reader) id() ids.ID         { return ids.ID(r.u32()) }
func (r *reader) ballot() ids.Ballot { return ids.Ballot(r.u64()) }

func (r *reader) idSlice() []ids.ID {
	n := int(r.u16())
	if r.err != nil || r.off+4*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]ids.ID, n)
	for i := range v {
		v[i] = r.id()
	}
	return v
}

// ---- command encoding (shared by several messages) ----

func putCmd(b []byte, c kvstore.Command) []byte {
	b = append(b, byte(c.Op))
	b = putU64(b, c.Key)
	b = putBytes(b, c.Value)
	b = putU64(b, c.ClientID)
	b = putU64(b, c.Seq)
	return b
}

func szCmd(c kvstore.Command) int { return 1 + szU64 + szBytes(c.Value) + szU64 + szU64 }

// szCmdMin is the smallest possible encoded command (empty value), used to
// bound batch counts against the remaining buffer before allocating.
const szCmdMin = 1 + szU64 + szU32 + szU64 + szU64

// putCmds encodes a count-prefixed command batch. A one-element batch is the
// degenerate single-command case; protocols that never batch pay only the
// two-byte count. Batches beyond the uint16 count are a bug upstream
// (paxos clamps MaxBatchSize); truncating silently would corrupt the frame.
func putCmds(b []byte, v []kvstore.Command) []byte {
	if len(v) > math.MaxUint16 {
		panic(fmt.Sprintf("wire: command batch of %d exceeds uint16 count", len(v)))
	}
	b = putU16(b, uint16(len(v)))
	for _, c := range v {
		b = putCmd(b, c)
	}
	return b
}

func szCmds(v []kvstore.Command) int {
	n := szU16
	for _, c := range v {
		n += szCmd(c)
	}
	return n
}

func (r *reader) cmds() []kvstore.Command {
	n := int(r.u16())
	if r.err != nil || r.off+szCmdMin*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]kvstore.Command, n)
	for i := range v {
		v[i] = r.cmd()
	}
	return v
}

func (r *reader) cmd() kvstore.Command {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return kvstore.Command{}
	}
	op := kvstore.Op(r.b[r.off])
	r.off++
	return kvstore.Command{
		Op:       op,
		Key:      r.u64(),
		Value:    r.bytes(),
		ClientID: r.u64(),
		Seq:      r.u64(),
	}
}
