package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	enc := Encode(nil, m)
	if len(enc) != m.Size()+1 {
		t.Errorf("%v: Size()=%d but encoded body=%d", m.Type(), m.Size(), len(enc)-1)
	}
	got, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("%v: decode: %v", m.Type(), err)
	}
	if n != len(enc) {
		t.Errorf("%v: consumed %d of %d bytes", m.Type(), n, len(enc))
	}
	return got
}

func checkEqual(t *testing.T, m Msg) {
	t.Helper()
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("%v round-trip mismatch:\n got %+v\nwant %+v", m.Type(), got, m)
	}
}

func sampleCmd() kvstore.Command {
	return kvstore.Command{Op: kvstore.Put, Key: 77, Value: []byte("abc"), ClientID: 5, Seq: 9}
}

func sampleBatch(n int) []kvstore.Command {
	out := make([]kvstore.Command, n)
	for i := range out {
		out[i] = kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: 5, Seq: uint64(i + 1)}
	}
	return out
}

func TestRoundTripAllTypes(t *testing.T) {
	b := ids.NewBallot(3, ids.NewID(1, 2))
	id1, id2 := ids.NewID(1, 4), ids.NewID(2, 1)
	msgs := []Msg{
		Request{Cmd: sampleCmd()},
		Reply{ClientID: 1, Seq: 2, OK: true, Exists: true, Value: []byte("v"), Leader: id1, Slot: 7},
		Reply{ClientID: 1, Seq: 2}, // zero-variant
		P1a{Ballot: b},
		P1a{Ballot: b, From: 42},
		P1b{Ballot: b, From: id1, Entries: []SlotEntry{{Slot: 3, Ballot: b, Cmds: []kvstore.Command{sampleCmd()}}}},
		P1b{Ballot: b, From: id1, Entries: []SlotEntry{{Slot: 5, Ballot: b, Committed: true, Cmds: sampleBatch(2)}}},
		P1b{Ballot: b, From: id1},
		P2a{Ballot: b, Slot: 10, Cmds: []kvstore.Command{sampleCmd()}, Commit: 9},
		P2a{Ballot: b, Slot: 11, Cmds: sampleBatch(5), Commit: 9},
		P2a{Ballot: b, Slot: 12, Commit: 9}, // no-op filler slot
		P2b{Ballot: b, From: id2, Slot: 10},
		P3{Ballot: b, Slot: 4, Cmds: []kvstore.Command{sampleCmd()}},
		P3{Ballot: b, Slot: 5, Cmds: sampleBatch(3)},
		RelayP1a{P1a: P1a{Ballot: b}, Peers: []ids.ID{id1, id2}},
		AggP1b{Ballot: b, Relay: id1, Replies: []P1b{{Ballot: b, From: id2}}},
		RelayP2a{P2a: P2a{Ballot: b, Slot: 1, Cmds: sampleBatch(4)}, Peers: []ids.ID{id2}, Threshold: 2, Timeout: 50 * time.Millisecond},
		AggP2b{Ballot: b, Relay: id1, Slot: 1, Acks: []ids.ID{id1, id2}, Partial: true},
		RelayP3{P3: P3{Ballot: b, Slot: 2, Cmds: []kvstore.Command{sampleCmd()}}, Peers: []ids.ID{id1}},
		PreAccept{Ballot: b, Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4, Deps: []InstRef{{Replica: id2, Slot: 1}}},
		PreAcceptReply{Inst: InstRef{Replica: id1, Slot: 3}, From: id2, OK: true, Ballot: b, Seq: 5, Deps: []InstRef{{Replica: id1, Slot: 2}}, Changed: true},
		Accept{Ballot: b, Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4, Deps: nil},
		AcceptReply{Inst: InstRef{Replica: id1, Slot: 3}, From: id2, OK: false, Ballot: b},
		Commit{Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4, Deps: []InstRef{{Replica: id2, Slot: 9}}},
		QReadReq{Key: 8, RID: 99},
		QReadReply{Key: 8, RID: 99, From: id1, Version: 3, Exists: true, Value: []byte("x")},
		Heartbeat{Ballot: b, From: id1, Commit: 42},
		HeartbeatAck{Ballot: b, From: id2},
	}
	for _, m := range msgs {
		checkEqual(t, m)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer must error")
	}
	if _, _, err := Decode([]byte{0xff}); err == nil {
		t.Error("unknown type must error")
	}
	if _, _, err := Decode([]byte{byte(TP2a), 1, 2}); err == nil {
		t.Error("truncated body must error")
	}
}

func TestDecodeTruncationNeverPanics(t *testing.T) {
	// Every prefix of every valid encoding must decode cleanly or error.
	full := Encode(nil, P1b{
		Ballot: ids.NewBallot(1, ids.NewID(1, 1)), From: ids.NewID(1, 2),
		Entries: []SlotEntry{{Slot: 1, Ballot: 2, Cmds: sampleBatch(2)}},
	})
	for i := 1; i < len(full); i++ {
		_, _, err := Decode(full[:i])
		if err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", i, len(full))
		}
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		Decode(buf) // must not panic; errors are fine
	}
}

func TestTypeString(t *testing.T) {
	if TP2a.String() != "P2a" {
		t.Errorf("TP2a.String() = %q", TP2a.String())
	}
	if Type(200).String() != "Type(200)" {
		t.Errorf("unknown type string: %q", Type(200).String())
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte{9, 9, 9}
	out := Encode(prefix, P1a{Ballot: 5})
	if len(out) != 3+1+8+8 || out[0] != 9 {
		t.Error("Encode must append to dst")
	}
}

// Property: P2a with a random command batch round-trips and Size matches.
func TestP2aProperty(t *testing.T) {
	f := func(bn uint16, slot, key, cl, seq uint64, commit uint64, val []byte, op uint8, extra uint8) bool {
		batch := []kvstore.Command{{Op: kvstore.Op(op % 3), Key: key, Value: val, ClientID: cl, Seq: seq}}
		for i := 0; i < int(extra%8); i++ {
			batch = append(batch, kvstore.Command{Op: kvstore.Put, Key: uint64(i), ClientID: cl, Seq: seq + uint64(i) + 1})
		}
		m := P2a{
			Ballot: ids.NewBallot(int(bn), ids.NewID(1, 1)),
			Slot:   slot,
			Cmds:   batch,
			Commit: commit,
		}
		enc := Encode(nil, m)
		if len(enc) != m.Size()+1 {
			return false
		}
		got, _, err := Decode(enc)
		if err != nil {
			return false
		}
		g := got.(P2a)
		if len(m.Cmds[0].Value) == 0 {
			m.Cmds[0].Value = nil // decoder normalizes empty to nil
		}
		return reflect.DeepEqual(g, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AggP2b with random ack lists round-trips.
func TestAggP2bProperty(t *testing.T) {
	f := func(slot uint64, nodes []uint8, partial bool) bool {
		if len(nodes) > 100 {
			nodes = nodes[:100]
		}
		acks := make([]ids.ID, 0, len(nodes))
		for _, n := range nodes {
			acks = append(acks, ids.NewID(1, int(n)+1))
		}
		if len(acks) == 0 {
			acks = nil
		}
		m := AggP2b{Ballot: 7, Relay: ids.NewID(1, 1), Slot: slot, Acks: acks, Partial: partial}
		enc := Encode(nil, m)
		if len(enc) != m.Size()+1 {
			return false
		}
		got, _, err := Decode(enc)
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: streams of concatenated messages decode one-by-one.
func TestStreamDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var all []Msg
		var buf []byte
		for i := 0; i < 10; i++ {
			var m Msg
			switch rng.Intn(4) {
			case 0:
				m = P1a{Ballot: ids.Ballot(rng.Uint64())}
			case 1:
				m = P2b{Ballot: ids.Ballot(rng.Uint64()), From: ids.NewID(1, 1+rng.Intn(9)), Slot: rng.Uint64()}
			case 2:
				m = Heartbeat{Ballot: 1, From: ids.NewID(1, 1), Commit: rng.Uint64()}
			default:
				m = QReadReq{Key: rng.Uint64(), RID: rng.Uint64()}
			}
			all = append(all, m)
			buf = Encode(buf, m)
		}
		for _, want := range all {
			got, n, err := Decode(buf)
			if err != nil || !reflect.DeepEqual(got, want) {
				return false
			}
			buf = buf[n:]
		}
		return len(buf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeP2a(b *testing.B) {
	// Pre-boxed as Msg (as protocols hold messages) so the bench measures
	// encoding, not call-site interface conversion.
	var m Msg = P2a{Ballot: 77, Slot: 123, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 42, Value: make([]byte, 128)}}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecodeP2a(b *testing.B) {
	m := P2a{Ballot: 77, Slot: 123, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 42, Value: make([]byte, 128)}}}
	enc := Encode(nil, m)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeP2aBatch16(b *testing.B) {
	var m Msg = P2a{Ballot: 77, Slot: 123, Cmds: sampleBatch(16)}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func TestCatchupRoundTrip(t *testing.T) {
	checkEqual(t, CatchupReq{From: 3, To: 9})
	checkEqual(t, CatchupReply{
		Ballot: ids.NewBallot(2, ids.NewID(1, 1)),
		Entries: []SlotEntry{
			{Slot: 3, Ballot: 5, Cmds: []kvstore.Command{sampleCmd()}},
			{Slot: 4, Ballot: 5, Cmds: sampleBatch(3)},
		},
	})
	checkEqual(t, CatchupReply{Ballot: 1})
}
