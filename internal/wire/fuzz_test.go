package wire

import (
	"bytes"
	"reflect"
	"testing"

	"pigpaxos/internal/ids"
)

// FuzzDecode drives arbitrary bytes through both decoders. Invariants:
//
//   - neither Decode nor DecodeInto ever panics on corrupt input;
//   - both decoders agree on message, consumed length, and error-ness;
//   - any successfully decoded message re-encodes to a canonical form
//     that round-trips byte-identically (decode∘encode is a fixed point).
//
// Raw fuzz input may be non-canonical (e.g. a bool byte of 2 decodes as
// true but re-encodes as 1), so byte-identity is asserted on the
// re-encoded form, not the raw input.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{byte(TP2a), 1, 2})
	// Huge declared counts against a tiny buffer must be rejected by the
	// min-size bounds checks, not attempted.
	f.Add([]byte{byte(TP1b), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		s := GetScratch()
		defer PutScratch(s)
		m2, n2, err2 := DecodeInto(s, data)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if n != n2 {
			t.Fatalf("Decode consumed %d, DecodeInto consumed %d", n, n2)
		}
		if !reflect.DeepEqual(m, deref(m2)) {
			t.Fatalf("decoder mismatch:\n Decode     %+v\n DecodeInto %+v", m, deref(m2))
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Canonical re-encode must round-trip byte-identically.
		enc := Encode(nil, m)
		if len(enc) != m.Size()+1 {
			t.Fatalf("Size()=%d but encoded length %d", m.Size(), len(enc)-1)
		}
		m3, n3, err3 := Decode(enc)
		if err3 != nil {
			t.Fatalf("re-decode failed: %v", err3)
		}
		if n3 != len(enc) || !reflect.DeepEqual(m3, m) {
			t.Fatalf("re-decode mismatch:\n got  %+v\n want %+v", m3, m)
		}
		if enc2 := Encode(nil, m3); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n %x\n %x", enc, enc2)
		}
	})
}

// FuzzDecodeStream checks that a corrupted multi-message stream never
// panics and that consumed lengths stay in bounds while decoding as far
// as the corruption allows.
func FuzzDecodeStream(f *testing.F) {
	var seed []byte
	seed = Encode(seed, P2b{Ballot: 7, From: ids.NewID(1, 1), Slot: 9})
	seed = Encode(seed, Heartbeat{Ballot: 7, From: ids.NewID(1, 2), Commit: 4})
	f.Add(seed, uint8(3), uint8(0x80))
	f.Fuzz(func(t *testing.T, data []byte, pos, bit uint8) {
		if len(data) > 0 {
			data[int(pos)%len(data)] ^= bit // inject corruption
		}
		for len(data) > 0 {
			_, n, err := Decode(data)
			if err != nil {
				return
			}
			if n <= 0 || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			data = data[n:]
		}
	})
}
