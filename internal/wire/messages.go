package wire

import (
	"fmt"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

// ---------------------------------------------------------------- client --

// Request carries one client command to a replica.
type Request struct {
	Cmd kvstore.Command
}

// Type implements Msg.
func (Request) Type() Type { return TRequest }

// Size implements Msg.
func (m Request) Size() int { return szCmd(m.Cmd) }

func (m Request) append(b []byte) []byte { return putCmd(b, m.Cmd) }

// Reply answers a client Request. When OK is false the request was not
// served (e.g. the receiver is not the leader) and Leader hints where to
// retry.
type Reply struct {
	ClientID uint64
	Seq      uint64
	OK       bool
	Exists   bool
	Value    []byte
	Leader   ids.ID
	Slot     uint64 // log slot the command committed in (diagnostics)
}

// Type implements Msg.
func (Reply) Type() Type { return TReply }

// Size implements Msg.
func (m Reply) Size() int {
	return szU64 + szU64 + szBool + szBool + szBytes(m.Value) + szID + szU64
}

func (m Reply) append(b []byte) []byte {
	b = putU64(b, m.ClientID)
	b = putU64(b, m.Seq)
	b = putBool(b, m.OK)
	b = putBool(b, m.Exists)
	b = putBytes(b, m.Value)
	b = putU32(b, uint32(m.Leader))
	b = putU64(b, m.Slot)
	return b
}

// Busy rejects a client Request without queueing it: the leader's ingress
// queue is full, or its commit-latency EWMA crossed the overload threshold.
// Unlike a redirecting Reply, the sender IS the leader — the client should
// stay put and retry the same command after RetryAfter. The rejected
// sequence number is not consumed: the at-most-once session table still
// expects it, so a retry is re-admitted as if never seen.
type Busy struct {
	ClientID   uint64
	Seq        uint64
	Leader     ids.ID
	RetryAfter time.Duration
}

// Type implements Msg.
func (Busy) Type() Type { return TBusy }

// Size implements Msg.
func (Busy) Size() int { return szU64 + szU64 + szID + szU64 }

func (m Busy) append(b []byte) []byte {
	b = putU64(b, m.ClientID)
	b = putU64(b, m.Seq)
	b = putU32(b, uint32(m.Leader))
	return putU64(b, uint64(m.RetryAfter))
}

func init() {
	decoders[TBusy] = func(r *reader) Msg {
		m := Busy{
			ClientID: r.u64(), Seq: r.u64(), Leader: r.id(),
			RetryAfter: time.Duration(r.u64()),
		}
		if s := r.scratch; s != nil {
			s.busy = m
			return &s.busy
		}
		return m
	}
}

// ----------------------------------------------------------------- paxos --

// P1a is the phase-1 leadership bid ("lead with ballot b?"). From is the
// campaigner's execution cursor: promisers report every log entry at or
// above it — committed ones included — so a lagging winner learns anchored
// slots it never saw instead of proposing no-op fillers over them.
type P1a struct {
	Ballot ids.Ballot
	From   uint64
}

// Type implements Msg.
func (P1a) Type() Type { return TP1a }

// Size implements Msg.
func (P1a) Size() int { return szBallot + szU64 }

func (m P1a) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	return putU64(b, m.From)
}

// SlotEntry reports one known slot in a P1b or CatchupReply. Cmds is the
// slot's full command batch; Committed marks batches the sender knows are
// anchored (the receiver must install them as commits, not proposals).
type SlotEntry struct {
	Slot      uint64
	Ballot    ids.Ballot
	Committed bool
	Cmds      []kvstore.Command
}

func szSlotEntry(e SlotEntry) int { return szU64 + szBallot + szBool + szCmds(e.Cmds) }

func putSlotEntry(b []byte, e SlotEntry) []byte {
	b = putU64(b, e.Slot)
	b = putU64(b, uint64(e.Ballot))
	b = putBool(b, e.Committed)
	return putCmds(b, e.Cmds)
}

func (r *reader) slotEntry() SlotEntry {
	return SlotEntry{Slot: r.u64(), Ballot: r.ballot(), Committed: r.boolean(), Cmds: r.cmds()}
}

// P1b is a follower's phase-1 promise, carrying its uncommitted log suffix.
// Floor is the follower's log compaction floor (first resident slot): slots
// below it were committed, executed and checkpointed, so the follower can no
// longer report them — a campaigner behind the floor must install a snapshot
// instead of treating the silence as proposable gaps.
type P1b struct {
	Ballot  ids.Ballot // highest ballot the follower has seen
	From    ids.ID
	Floor   uint64
	Entries []SlotEntry
}

// Type implements Msg.
func (P1b) Type() Type { return TP1b }

// Size implements Msg.
func (m P1b) Size() int {
	n := szBallot + szID + szU64 + szU16
	for _, e := range m.Entries {
		n += szSlotEntry(e)
	}
	return n
}

func (m P1b) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU32(b, uint32(m.From))
	b = putU64(b, m.Floor)
	checkCount(len(m.Entries), "P1b entry list")
	b = putU16(b, uint16(len(m.Entries)))
	for _, e := range m.Entries {
		b = putSlotEntry(b, e)
	}
	return b
}

// P2a is the phase-2 accept request for one log slot. Cmds is the slot's
// command batch: the leader packs up to MaxBatchSize client commands into a
// single consensus instance, so the whole batch costs one fan-out round (a
// one-element batch is the degenerate unbatched case). Commit is the
// leader's execution watermark: every slot below it is committed (phase-3
// piggybacking per the Multi-Paxos optimization in the paper's Figure 2).
type P2a struct {
	Ballot ids.Ballot
	Slot   uint64
	Cmds   []kvstore.Command
	Commit uint64
}

// Type implements Msg.
func (P2a) Type() Type { return TP2a }

// Size implements Msg.
func (m P2a) Size() int { return szBallot + szU64 + szCmds(m.Cmds) + szU64 }

func (m P2a) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU64(b, m.Slot)
	b = putCmds(b, m.Cmds)
	b = putU64(b, m.Commit)
	return b
}

// P2b acknowledges (or, with a higher Ballot than sent, rejects) a P2a.
type P2b struct {
	Ballot ids.Ballot
	From   ids.ID
	Slot   uint64
}

// Type implements Msg.
func (P2b) Type() Type { return TP2b }

// Size implements Msg.
func (P2b) Size() int { return szBallot + szID + szU64 }

func (m P2b) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU32(b, uint32(m.From))
	b = putU64(b, m.Slot)
	return b
}

// P3 is an explicit phase-3 commit announcement, used when there is no
// follow-up P2a to piggyback on. It carries the slot's full command batch.
type P3 struct {
	Ballot ids.Ballot
	Slot   uint64
	Cmds   []kvstore.Command
}

// Type implements Msg.
func (P3) Type() Type { return TP3 }

// Size implements Msg.
func (m P3) Size() int { return szBallot + szU64 + szCmds(m.Cmds) }

func (m P3) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU64(b, m.Slot)
	return putCmds(b, m.Cmds)
}

// -------------------------------------------------------------- pigpaxos --

// RelayP1a asks a relay node to propagate a phase-1 bid to Peers (the rest
// of its relay group) and aggregate their P1b responses.
type RelayP1a struct {
	P1a   P1a
	Peers []ids.ID
}

// Type implements Msg.
func (RelayP1a) Type() Type { return TRelayP1a }

// Size implements Msg.
func (m RelayP1a) Size() int { return m.P1a.Size() + szIDs(m.Peers) }

func (m RelayP1a) append(b []byte) []byte {
	b = m.P1a.append(b)
	return putIDs(b, m.Peers)
}

// AggP1b aggregates a relay group's phase-1 promises into one message.
type AggP1b struct {
	Ballot  ids.Ballot
	Relay   ids.ID
	Replies []P1b
}

// Type implements Msg.
func (AggP1b) Type() Type { return TAggP1b }

// Size implements Msg.
func (m AggP1b) Size() int {
	n := szBallot + szID + szU16
	for _, p := range m.Replies {
		n += p.Size()
	}
	return n
}

func (m AggP1b) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU32(b, uint32(m.Relay))
	checkCount(len(m.Replies), "AggP1b reply list")
	b = putU16(b, uint16(len(m.Replies)))
	for _, p := range m.Replies {
		b = p.append(b)
	}
	return b
}

// RelayP2a asks a relay to propagate a P2a inside its group and aggregate
// the P2bs. Threshold is the partial-response count g_i after which the
// relay may reply early (§4.2); 0 means wait for the whole group (or the
// relay timeout). Timeout is the relay's collection deadline.
type RelayP2a struct {
	P2a       P2a
	Peers     []ids.ID
	Threshold uint16
	Timeout   time.Duration
}

// Type implements Msg.
func (RelayP2a) Type() Type { return TRelayP2a }

// Size implements Msg.
func (m RelayP2a) Size() int { return m.P2a.Size() + szIDs(m.Peers) + szU16 + szU64 }

func (m RelayP2a) append(b []byte) []byte {
	b = m.P2a.append(b)
	b = putIDs(b, m.Peers)
	b = putU16(b, m.Threshold)
	b = putU64(b, uint64(m.Timeout))
	return b
}

// AggP2b aggregates a relay group's P2b votes for one slot. Acks lists the
// group members (including the relay itself) that accepted; Partial marks a
// timeout- or threshold-truncated aggregation.
type AggP2b struct {
	Ballot  ids.Ballot
	Relay   ids.ID
	Slot    uint64
	Acks    []ids.ID
	Partial bool
}

// Type implements Msg.
func (AggP2b) Type() Type { return TAggP2b }

// Size implements Msg.
func (m AggP2b) Size() int { return szBallot + szID + szU64 + szIDs(m.Acks) + szBool }

func (m AggP2b) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU32(b, uint32(m.Relay))
	b = putU64(b, m.Slot)
	b = putIDs(b, m.Acks)
	b = putBool(b, m.Partial)
	return b
}

// RelayP3 propagates an explicit commit through a relay; no response flows
// back (commit is fan-out only, per the paper's Figure 4).
type RelayP3 struct {
	P3    P3
	Peers []ids.ID
}

// Type implements Msg.
func (RelayP3) Type() Type { return TRelayP3 }

// Size implements Msg.
func (m RelayP3) Size() int { return m.P3.Size() + szIDs(m.Peers) }

func (m RelayP3) append(b []byte) []byte {
	b = m.P3.append(b)
	return putIDs(b, m.Peers)
}

// ---------------------------------------------------------------- epaxos --

// InstRef names an EPaxos instance: the owning replica and its slot in that
// replica's instance row.
type InstRef struct {
	Replica ids.ID
	Slot    uint64
}

const szInstRef = szID + szU64

func putInstRef(b []byte, i InstRef) []byte {
	b = putU32(b, uint32(i.Replica))
	return putU64(b, i.Slot)
}

func (r *reader) instRef() InstRef { return InstRef{Replica: r.id(), Slot: r.u64()} }

func putInstRefs(b []byte, v []InstRef) []byte {
	checkCount(len(v), "instance-ref list")
	b = putU16(b, uint16(len(v)))
	for _, i := range v {
		b = putInstRef(b, i)
	}
	return b
}

func szInstRefs(v []InstRef) int { return szU16 + szInstRef*len(v) }

func (r *reader) instRefs() []InstRef {
	n := int(r.u16())
	if r.err != nil || r.off+szInstRef*n > len(r.b) {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	if s := r.scratch; s != nil {
		start := len(s.refs)
		for i := 0; i < n; i++ {
			s.refs = append(s.refs, r.instRef())
		}
		return s.refs[start:len(s.refs):len(s.refs)]
	}
	v := make([]InstRef, n)
	for i := range v {
		v[i] = r.instRef()
	}
	return v
}

// PreAccept opens an EPaxos instance with the command leader's initial
// attributes (sequence number and dependency set).
type PreAccept struct {
	Ballot ids.Ballot
	Inst   InstRef
	Cmd    kvstore.Command
	Seq    uint64
	Deps   []InstRef
}

// Type implements Msg.
func (PreAccept) Type() Type { return TPreAccept }

// Size implements Msg.
func (m PreAccept) Size() int {
	return szBallot + szInstRef + szCmd(m.Cmd) + szU64 + szInstRefs(m.Deps)
}

func (m PreAccept) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putInstRef(b, m.Inst)
	b = putCmd(b, m.Cmd)
	b = putU64(b, m.Seq)
	return putInstRefs(b, m.Deps)
}

// PreAcceptReply returns a replica's (possibly updated) attributes for an
// instance. Changed reports whether the replica extended seq/deps, which
// forces the slow path.
type PreAcceptReply struct {
	Inst    InstRef
	From    ids.ID
	OK      bool
	Ballot  ids.Ballot
	Seq     uint64
	Deps    []InstRef
	Changed bool
}

// Type implements Msg.
func (PreAcceptReply) Type() Type { return TPreAcceptReply }

// Size implements Msg.
func (m PreAcceptReply) Size() int {
	return szInstRef + szID + szBool + szBallot + szU64 + szInstRefs(m.Deps) + szBool
}

func (m PreAcceptReply) append(b []byte) []byte {
	b = putInstRef(b, m.Inst)
	b = putU32(b, uint32(m.From))
	b = putBool(b, m.OK)
	b = putU64(b, uint64(m.Ballot))
	b = putU64(b, m.Seq)
	b = putInstRefs(b, m.Deps)
	return putBool(b, m.Changed)
}

// Accept runs the EPaxos slow path, fixing the final attributes.
type Accept struct {
	Ballot ids.Ballot
	Inst   InstRef
	Cmd    kvstore.Command
	Seq    uint64
	Deps   []InstRef
}

// Type implements Msg.
func (Accept) Type() Type { return TAccept }

// Size implements Msg.
func (m Accept) Size() int {
	return szBallot + szInstRef + szCmd(m.Cmd) + szU64 + szInstRefs(m.Deps)
}

func (m Accept) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putInstRef(b, m.Inst)
	b = putCmd(b, m.Cmd)
	b = putU64(b, m.Seq)
	return putInstRefs(b, m.Deps)
}

// AcceptReply acknowledges an Accept.
type AcceptReply struct {
	Inst   InstRef
	From   ids.ID
	OK     bool
	Ballot ids.Ballot
}

// Type implements Msg.
func (AcceptReply) Type() Type { return TAcceptReply }

// Size implements Msg.
func (AcceptReply) Size() int { return szInstRef + szID + szBool + szBallot }

func (m AcceptReply) append(b []byte) []byte {
	b = putInstRef(b, m.Inst)
	b = putU32(b, uint32(m.From))
	b = putBool(b, m.OK)
	return putU64(b, uint64(m.Ballot))
}

// Commit finalizes an EPaxos instance with its committed attributes.
type Commit struct {
	Inst InstRef
	Cmd  kvstore.Command
	Seq  uint64
	Deps []InstRef
}

// Type implements Msg.
func (Commit) Type() Type { return TCommit }

// Size implements Msg.
func (m Commit) Size() int { return szInstRef + szCmd(m.Cmd) + szU64 + szInstRefs(m.Deps) }

func (m Commit) append(b []byte) []byte {
	b = putInstRef(b, m.Inst)
	b = putCmd(b, m.Cmd)
	b = putU64(b, m.Seq)
	return putInstRefs(b, m.Deps)
}

// Instance status values carried in PrepareReply: how far the replying
// replica's copy of the instance has progressed. The epaxos package maps
// them to its internal state machine; executed instances report committed
// (execution is local bookkeeping, not protocol state).
const (
	InstNone uint8 = iota
	InstPreAccepted
	InstAccepted
	InstCommitted
)

// Prepare opens Explicit Prepare recovery for an EPaxos instance whose
// command leader is suspected dead: the sender bids to finish the instance
// at Ballot, which must exceed every ballot the instance has seen.
type Prepare struct {
	Ballot ids.Ballot
	Inst   InstRef
}

// Type implements Msg.
func (Prepare) Type() Type { return TPrepare }

// Size implements Msg.
func (Prepare) Size() int { return szBallot + szInstRef }

func (m Prepare) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	return putInstRef(b, m.Inst)
}

// PrepareReply reports a replica's knowledge of an instance to a recovery
// leader. With OK true, Ballot echoes the Prepare ballot and Status/VBallot/
// Cmd/Seq/Deps describe the replica's copy (VBallot is the ballot the copy
// was pre-accepted or accepted at). With OK false, Ballot carries the higher
// ballot that blocked the bid.
type PrepareReply struct {
	Inst    InstRef
	From    ids.ID
	OK      bool
	Ballot  ids.Ballot
	Status  uint8
	VBallot ids.Ballot
	Cmd     kvstore.Command
	Seq     uint64
	Deps    []InstRef
}

// Type implements Msg.
func (PrepareReply) Type() Type { return TPrepareReply }

// Size implements Msg.
func (m PrepareReply) Size() int {
	return szInstRef + szID + szBool + szBallot + 1 + szBallot +
		szCmd(m.Cmd) + szU64 + szInstRefs(m.Deps)
}

func (m PrepareReply) append(b []byte) []byte {
	b = putInstRef(b, m.Inst)
	b = putU32(b, uint32(m.From))
	b = putBool(b, m.OK)
	b = putU64(b, uint64(m.Ballot))
	b = append(b, m.Status)
	b = putU64(b, uint64(m.VBallot))
	b = putCmd(b, m.Cmd)
	b = putU64(b, m.Seq)
	return putInstRefs(b, m.Deps)
}

// ------------------------------------------------------------------- pqr --

// QReadReq asks a replica for its local version of a key (Paxos Quorum
// Reads, §4.3). RID correlates the reply with the read round.
type QReadReq struct {
	Key uint64
	RID uint64
}

// Type implements Msg.
func (QReadReq) Type() Type { return TQReadReq }

// Size implements Msg.
func (QReadReq) Size() int { return szU64 + szU64 }

func (m QReadReq) append(b []byte) []byte {
	b = putU64(b, m.Key)
	return putU64(b, m.RID)
}

// QReadReply reports a replica's local value and write-version for a key.
type QReadReply struct {
	Key     uint64
	RID     uint64
	From    ids.ID
	Version uint64
	Exists  bool
	Value   []byte
}

// Type implements Msg.
func (QReadReply) Type() Type { return TQReadReply }

// Size implements Msg.
func (m QReadReply) Size() int {
	return szU64 + szU64 + szID + szU64 + szBool + szBytes(m.Value)
}

func (m QReadReply) append(b []byte) []byte {
	b = putU64(b, m.Key)
	b = putU64(b, m.RID)
	b = putU32(b, uint32(m.From))
	b = putU64(b, m.Version)
	b = putBool(b, m.Exists)
	return putBytes(b, m.Value)
}

// -------------------------------------------------------------------- fd --

// Heartbeat announces liveness (and the leader's commit watermark) for the
// failure detector.
type Heartbeat struct {
	Ballot ids.Ballot
	From   ids.ID
	Commit uint64
}

// Type implements Msg.
func (Heartbeat) Type() Type { return THeartbeat }

// Size implements Msg.
func (Heartbeat) Size() int { return szBallot + szID + szU64 }

func (m Heartbeat) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU32(b, uint32(m.From))
	return putU64(b, m.Commit)
}

// ---------------------------------------------------------------- decode --

func init() {
	decoders[TRequest] = func(r *reader) Msg {
		m := Request{Cmd: r.cmd()}
		if s := r.scratch; s != nil {
			s.request = m
			return &s.request
		}
		return m
	}
	decoders[TReply] = func(r *reader) Msg {
		m := Reply{
			ClientID: r.u64(), Seq: r.u64(), OK: r.boolean(), Exists: r.boolean(),
			Value: r.bytes(), Leader: r.id(), Slot: r.u64(),
		}
		if s := r.scratch; s != nil {
			s.reply = m
			return &s.reply
		}
		return m
	}
	decoders[TP1a] = func(r *reader) Msg {
		m := P1a{Ballot: r.ballot(), From: r.u64()}
		if s := r.scratch; s != nil {
			s.p1a = m
			return &s.p1a
		}
		return m
	}
	decoders[TP1b] = func(r *reader) Msg { return r.p1b() }
	decoders[TP2a] = func(r *reader) Msg {
		m := P2a{Ballot: r.ballot(), Slot: r.u64(), Cmds: r.cmds(), Commit: r.u64()}
		if s := r.scratch; s != nil {
			s.p2a = m
			return &s.p2a
		}
		return m
	}
	decoders[TP2b] = func(r *reader) Msg {
		m := P2b{Ballot: r.ballot(), From: r.id(), Slot: r.u64()}
		if s := r.scratch; s != nil {
			s.p2b = m
			return &s.p2b
		}
		return m
	}
	decoders[TP3] = func(r *reader) Msg {
		m := P3{Ballot: r.ballot(), Slot: r.u64(), Cmds: r.cmds()}
		if s := r.scratch; s != nil {
			s.p3 = m
			return &s.p3
		}
		return m
	}
	decoders[TRelayP1a] = func(r *reader) Msg {
		return RelayP1a{P1a: P1a{Ballot: r.ballot(), From: r.u64()}, Peers: r.idSlice()}
	}
	decoders[TAggP1b] = func(r *reader) Msg {
		return AggP1b{Ballot: r.ballot(), Relay: r.id(), Replies: r.p1bs()}
	}
	decoders[TRelayP2a] = func(r *reader) Msg {
		return RelayP2a{
			P2a:       P2a{Ballot: r.ballot(), Slot: r.u64(), Cmds: r.cmds(), Commit: r.u64()},
			Peers:     r.idSlice(),
			Threshold: r.u16(),
			Timeout:   time.Duration(r.u64()),
		}
	}
	decoders[TAggP2b] = func(r *reader) Msg {
		m := AggP2b{
			Ballot: r.ballot(), Relay: r.id(), Slot: r.u64(),
			Acks: r.idSlice(), Partial: r.boolean(),
		}
		if s := r.scratch; s != nil {
			s.aggP2b = m
			return &s.aggP2b
		}
		return m
	}
	decoders[TRelayP3] = func(r *reader) Msg {
		return RelayP3{
			P3:    P3{Ballot: r.ballot(), Slot: r.u64(), Cmds: r.cmds()},
			Peers: r.idSlice(),
		}
	}
	decoders[TPreAccept] = func(r *reader) Msg {
		return PreAccept{
			Ballot: r.ballot(), Inst: r.instRef(), Cmd: r.cmd(),
			Seq: r.u64(), Deps: r.instRefs(),
		}
	}
	decoders[TPreAcceptReply] = func(r *reader) Msg {
		return PreAcceptReply{
			Inst: r.instRef(), From: r.id(), OK: r.boolean(), Ballot: r.ballot(),
			Seq: r.u64(), Deps: r.instRefs(), Changed: r.boolean(),
		}
	}
	decoders[TAccept] = func(r *reader) Msg {
		return Accept{
			Ballot: r.ballot(), Inst: r.instRef(), Cmd: r.cmd(),
			Seq: r.u64(), Deps: r.instRefs(),
		}
	}
	decoders[TAcceptReply] = func(r *reader) Msg {
		return AcceptReply{
			Inst: r.instRef(), From: r.id(), OK: r.boolean(), Ballot: r.ballot(),
		}
	}
	decoders[TCommit] = func(r *reader) Msg {
		return Commit{Inst: r.instRef(), Cmd: r.cmd(), Seq: r.u64(), Deps: r.instRefs()}
	}
	decoders[TPrepare] = func(r *reader) Msg {
		m := Prepare{Ballot: r.ballot(), Inst: r.instRef()}
		if s := r.scratch; s != nil {
			s.prepare = m
			return &s.prepare
		}
		return m
	}
	decoders[TPrepareReply] = func(r *reader) Msg {
		m := PrepareReply{
			Inst: r.instRef(), From: r.id(), OK: r.boolean(), Ballot: r.ballot(),
			Status: r.u8(), VBallot: r.ballot(), Cmd: r.cmd(), Seq: r.u64(),
			Deps: r.instRefs(),
		}
		if s := r.scratch; s != nil {
			s.prepareReply = m
			return &s.prepareReply
		}
		return m
	}
	decoders[TQReadReq] = func(r *reader) Msg {
		return QReadReq{Key: r.u64(), RID: r.u64()}
	}
	decoders[TQReadReply] = func(r *reader) Msg {
		return QReadReply{
			Key: r.u64(), RID: r.u64(), From: r.id(), Version: r.u64(),
			Exists: r.boolean(), Value: r.bytes(),
		}
	}
	decoders[THeartbeat] = func(r *reader) Msg {
		m := Heartbeat{Ballot: r.ballot(), From: r.id(), Commit: r.u64()}
		if s := r.scratch; s != nil {
			s.heartbeat = m
			return &s.heartbeat
		}
		return m
	}
}

// --------------------------------------------------------------- catchup --

// CatchupReq asks the leader to re-announce committed slots in
// [From, To): a follower sends it when commit watermarks reveal slots it
// cannot commit locally (missing or accepted under an older ballot).
type CatchupReq struct {
	From uint64
	To   uint64
}

// Type implements Msg.
func (CatchupReq) Type() Type { return TCatchupReq }

// Size implements Msg.
func (CatchupReq) Size() int { return szU64 + szU64 }

func (m CatchupReq) append(b []byte) []byte {
	b = putU64(b, m.From)
	return putU64(b, m.To)
}

// CatchupReply carries the committed entries a follower asked for.
type CatchupReply struct {
	Ballot  ids.Ballot
	Entries []SlotEntry
}

// Type implements Msg.
func (CatchupReply) Type() Type { return TCatchupReply }

// Size implements Msg.
func (m CatchupReply) Size() int {
	n := szBallot + szU16
	for _, e := range m.Entries {
		n += szSlotEntry(e)
	}
	return n
}

func (m CatchupReply) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	checkCount(len(m.Entries), "CatchupReply entry list")
	b = putU16(b, uint16(len(m.Entries)))
	for _, e := range m.Entries {
		b = putSlotEntry(b, e)
	}
	return b
}

func init() {
	decoders[TCatchupReq] = func(r *reader) Msg {
		return CatchupReq{From: r.u64(), To: r.u64()}
	}
	decoders[TCatchupReply] = func(r *reader) Msg {
		return CatchupReply{Ballot: r.ballot(), Entries: r.slotEntries()}
	}
}

// HeartbeatAck confirms a heartbeat back to the leader; a majority of
// recent acks lets the leader hold a read lease (§4.3 leader reads).
type HeartbeatAck struct {
	Ballot ids.Ballot
	From   ids.ID
}

// Type implements Msg.
func (HeartbeatAck) Type() Type { return THeartbeatAck }

// Size implements Msg.
func (HeartbeatAck) Size() int { return szBallot + szID }

func (m HeartbeatAck) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	return putU32(b, uint32(m.From))
}

func init() {
	decoders[THeartbeatAck] = func(r *reader) Msg {
		m := HeartbeatAck{Ballot: r.ballot(), From: r.id()}
		if s := r.scratch; s != nil {
			s.heartbeatAck = m
			return &s.heartbeatAck
		}
		return m
	}
}

// -------------------------------------------------------------- snapshot --

// SnapInstall ships a state-machine snapshot to a follower whose catch-up
// request fell below the sender's log compaction floor: the full store and
// session table as of Floor (the first slot the snapshot does NOT cover),
// serialized by the protocol layer. Ballot is the sender's current ballot.
// The receiver installs the snapshot, persists it, and resumes ordinary
// catch-up for slots at or above Floor.
type SnapInstall struct {
	Ballot ids.Ballot
	Floor  uint64
	Data   []byte
}

// Type implements Msg.
func (SnapInstall) Type() Type { return TSnapInstall }

// Size implements Msg.
func (m SnapInstall) Size() int { return szBallot + szU64 + szBytes(m.Data) }

func (m SnapInstall) append(b []byte) []byte {
	b = putU64(b, uint64(m.Ballot))
	b = putU64(b, m.Floor)
	return putBytes(b, m.Data)
}

func init() {
	decoders[TSnapInstall] = func(r *reader) Msg {
		return SnapInstall{Ballot: r.ballot(), Floor: r.u64(), Data: r.bytes()}
	}
}

// -------------------------------------------------------------- sharding --

// Sharded is the multi-group routing envelope: it tags any protocol message
// with the consensus group (shard) it belongs to, so S independent replica
// instances can multiplex over one node's endpoint and event loop. The
// inner message is encoded exactly as it would be on its own — tag byte
// included — so every registered decoder works unchanged beneath the
// envelope. Envelopes do not nest.
type Sharded struct {
	Shard uint16
	Inner Msg
}

// Type implements Msg.
func (Sharded) Type() Type { return TSharded }

// Size implements Msg.
func (m Sharded) Size() int { return szU16 + 1 + m.Inner.Size() }

func (m Sharded) append(b []byte) []byte {
	if m.Inner.Type() == TSharded {
		panic("wire: nested Sharded envelope")
	}
	b = putU16(b, m.Shard)
	return Encode(b, m.Inner)
}

func init() {
	decoders[TSharded] = func(r *reader) Msg {
		shard := r.u16()
		t := Type(r.u8())
		if r.err != nil {
			return Sharded{}
		}
		if t == 0 || t >= maxType || t == TSharded {
			r.err = fmt.Errorf("bad inner type %d in Sharded envelope", uint8(t))
			return Sharded{}
		}
		m := Sharded{Shard: shard, Inner: decoders[t](r)}
		if s := r.scratch; s != nil {
			s.sharded = m
			return &s.sharded
		}
		return m
	}
}
