package wire

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

// deref unwraps the pointer-boxed messages DecodeInto returns for hot
// types, so tests can compare against value-decoded messages. Sharded
// envelopes are normalized recursively: their inner message is pointer-boxed
// too when decoded into a Scratch.
func deref(m Msg) Msg {
	v := reflect.ValueOf(m)
	if v.Kind() == reflect.Pointer {
		m = v.Elem().Interface().(Msg)
	}
	if sm, ok := m.(Sharded); ok {
		sm.Inner = deref(sm.Inner)
		return sm
	}
	return m
}

func sampleMsgs() []Msg {
	b := ids.NewBallot(3, ids.NewID(1, 2))
	id1, id2 := ids.NewID(1, 4), ids.NewID(2, 1)
	return []Msg{
		Request{Cmd: sampleCmd()},
		Reply{ClientID: 1, Seq: 2, OK: true, Exists: true, Value: []byte("v"), Leader: id1, Slot: 7},
		Busy{ClientID: 1, Seq: 3, Leader: id1, RetryAfter: 20 * time.Millisecond},
		P1a{Ballot: b, From: 42},
		P1b{Ballot: b, From: id1, Entries: []SlotEntry{{Slot: 5, Ballot: b, Committed: true, Cmds: sampleBatch(2)}}},
		P1b{Ballot: b, From: id1},
		P2a{Ballot: b, Slot: 11, Cmds: sampleBatch(5), Commit: 9},
		P2a{Ballot: b, Slot: 12, Commit: 9},
		P2b{Ballot: b, From: id2, Slot: 10},
		P3{Ballot: b, Slot: 5, Cmds: sampleBatch(3)},
		RelayP1a{P1a: P1a{Ballot: b}, Peers: []ids.ID{id1, id2}},
		AggP1b{Ballot: b, Relay: id1, Replies: []P1b{
			{Ballot: b, From: id2},
			{Ballot: b, From: id1, Entries: []SlotEntry{{Slot: 3, Ballot: b, Cmds: sampleBatch(1)}}},
		}},
		RelayP2a{P2a: P2a{Ballot: b, Slot: 1, Cmds: sampleBatch(4)}, Peers: []ids.ID{id2}, Threshold: 2, Timeout: 50 * time.Millisecond},
		AggP2b{Ballot: b, Relay: id1, Slot: 1, Acks: []ids.ID{id1, id2}, Partial: true},
		RelayP3{P3: P3{Ballot: b, Slot: 2, Cmds: []kvstore.Command{sampleCmd()}}, Peers: []ids.ID{id1}},
		PreAccept{Ballot: b, Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4, Deps: []InstRef{{Replica: id2, Slot: 1}}},
		PreAcceptReply{Inst: InstRef{Replica: id1, Slot: 3}, From: id2, OK: true, Ballot: b, Seq: 5, Deps: []InstRef{{Replica: id1, Slot: 2}}, Changed: true},
		Accept{Ballot: b, Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4},
		AcceptReply{Inst: InstRef{Replica: id1, Slot: 3}, From: id2, OK: false, Ballot: b},
		Commit{Inst: InstRef{Replica: id1, Slot: 3}, Cmd: sampleCmd(), Seq: 4, Deps: []InstRef{{Replica: id2, Slot: 9}}},
		Prepare{Ballot: b, Inst: InstRef{Replica: id1, Slot: 3}},
		PrepareReply{Inst: InstRef{Replica: id1, Slot: 3}, From: id2, OK: true, Ballot: b,
			Status: InstAccepted, VBallot: b, Cmd: sampleCmd(), Seq: 4, Deps: []InstRef{{Replica: id2, Slot: 9}}},
		PrepareReply{Inst: InstRef{Replica: id1, Slot: 4}, From: id2, OK: false, Ballot: b},
		QReadReq{Key: 8, RID: 99},
		QReadReply{Key: 8, RID: 99, From: id1, Version: 3, Exists: true, Value: []byte("x")},
		Heartbeat{Ballot: b, From: id1, Commit: 42},
		HeartbeatAck{Ballot: b, From: id2},
		CatchupReq{From: 3, To: 9},
		CatchupReply{Ballot: b, Entries: []SlotEntry{{Slot: 3, Ballot: 5, Cmds: sampleBatch(3)}}},
		SnapInstall{Ballot: b, Floor: 128, Data: []byte("snapshot blob")},
		Sharded{Shard: 0, Inner: Request{Cmd: sampleCmd()}},
		Sharded{Shard: 3, Inner: P2a{Ballot: b, Slot: 11, Cmds: sampleBatch(2), Commit: 9}},
		Sharded{Shard: 65535, Inner: AggP2b{Ballot: b, Relay: id1, Slot: 1, Acks: []ids.ID{id1, id2}}},
	}
}

// TestDecodeIntoMatchesDecode: the arena decoder must produce the same
// message as the allocating decoder, for every type, including when the
// same Scratch is reused across a stream of messages.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	for _, m := range sampleMsgs() {
		enc := Encode(nil, m)
		want, wn, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Type(), err)
		}
		s.Reset()
		got, gn, err := DecodeInto(s, enc)
		if err != nil {
			t.Fatalf("%v: DecodeInto: %v", m.Type(), err)
		}
		if gn != wn {
			t.Errorf("%v: DecodeInto consumed %d, Decode consumed %d", m.Type(), gn, wn)
		}
		if !reflect.DeepEqual(deref(got), want) {
			t.Errorf("%v mismatch:\n got %+v\nwant %+v", m.Type(), deref(got), want)
		}
	}
}

// TestDecodeIntoStream reuses one Scratch (without Reset) across several
// slice-carrying messages to exercise arena growth and the sub-slice
// capping that keeps earlier messages intact.
func TestDecodeIntoStream(t *testing.T) {
	s := GetScratch()
	defer PutScratch(s)
	b := ids.NewBallot(2, ids.NewID(1, 1))
	stream := []Msg{
		P3{Ballot: b, Slot: 1, Cmds: sampleBatch(3)},
		AggP2b{Ballot: b, Relay: ids.NewID(1, 2), Slot: 1, Acks: []ids.ID{ids.NewID(1, 3), ids.NewID(1, 4)}},
		CatchupReply{Ballot: b, Entries: []SlotEntry{
			{Slot: 1, Ballot: b, Committed: true, Cmds: sampleBatch(2)},
			{Slot: 2, Ballot: b, Cmds: sampleBatch(1)},
		}},
	}
	var buf []byte
	for _, m := range stream {
		buf = Encode(buf, m)
	}
	// Messages of distinct kinds decoded into one scratch stay valid
	// simultaneously (no singleton reuse, arenas only append).
	var got []Msg
	for range stream {
		m, n, err := DecodeInto(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, deref(m))
		buf = buf[n:]
	}
	for i, want := range stream {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("stream[%d] mismatch:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

// TestHotPathZeroAllocs is the acceptance gate for the pooled codec:
// steady-state encode+decode round-trips of the phase-2 hot-path messages
// (P2a, P2b, P3, AggP2b) must not allocate.
func TestHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not pool under -race; allocation counts are meaningless")
	}
	b := ids.NewBallot(7, ids.NewID(1, 1))
	msgs := []Msg{
		P2a{Ballot: b, Slot: 123, Cmds: sampleBatch(16), Commit: 120},
		P2b{Ballot: b, From: ids.NewID(1, 3), Slot: 123},
		P3{Ballot: b, Slot: 123, Cmds: sampleBatch(16)},
		AggP2b{Ballot: b, Relay: ids.NewID(1, 2), Slot: 123, Acks: []ids.ID{ids.NewID(1, 2), ids.NewID(1, 3), ids.NewID(1, 4)}, Partial: false},
		Prepare{Ballot: b, Inst: InstRef{Replica: ids.NewID(1, 2), Slot: 77}},
		PrepareReply{Inst: InstRef{Replica: ids.NewID(1, 2), Slot: 77}, From: ids.NewID(1, 3),
			OK: true, Ballot: b, Status: InstPreAccepted, VBallot: b, Cmd: sampleCmd(), Seq: 9,
			Deps: []InstRef{{Replica: ids.NewID(1, 4), Slot: 5}, {Replica: ids.NewID(1, 5), Slot: 2}}},
		Sharded{Shard: 5, Inner: P2a{Ballot: b, Slot: 124, Cmds: sampleBatch(16), Commit: 121}},
		Sharded{Shard: 5, Inner: P2b{Ballot: b, From: ids.NewID(1, 4), Slot: 124}},
		Busy{ClientID: 9, Seq: 4, Leader: ids.NewID(1, 1), RetryAfter: 5 * time.Millisecond},
	}
	s := GetScratch()
	defer PutScratch(s)
	buf := GetBuf()
	defer PutBuf(buf)
	roundTrip := func() {
		for _, m := range msgs {
			*buf = Encode((*buf)[:0], m)
			s.Reset()
			if _, _, err := DecodeInto(s, *buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	roundTrip() // warm up: grow arenas and pools to steady state
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Errorf("steady-state hot-path round-trip allocates %.2f allocs/op, want 0", allocs)
	}
}

// TestCountClampPanics: entry counts beyond uint16 must panic loudly
// instead of truncating silently into a corrupt frame.
func TestCountClampPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic on oversized count", name)
			}
		}()
		fn()
	}
	bigIDs := make([]ids.ID, 70000)
	mustPanic("putIDs", func() { Encode(nil, AggP2b{Acks: bigIDs}) })
	bigRefs := make([]InstRef, 70000)
	mustPanic("putInstRefs", func() { Encode(nil, Commit{Deps: bigRefs}) })
	bigEntries := make([]SlotEntry, 70000)
	mustPanic("P1b entries", func() { Encode(nil, P1b{Entries: bigEntries}) })
	mustPanic("CatchupReply entries", func() { Encode(nil, CatchupReply{Entries: bigEntries}) })
	bigReplies := make([]P1b, 70000)
	mustPanic("AggP1b replies", func() { Encode(nil, AggP1b{Replies: bigReplies}) })
	bigCmds := make([]kvstore.Command, 70000)
	mustPanic("putCmds", func() { Encode(nil, P2a{Cmds: bigCmds}) })
}

func TestTypeStringNoAlloc(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() { _ = TP2a.String() }); allocs != 0 {
		t.Errorf("Type.String allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkDecodeIntoP2a(b *testing.B) {
	m := P2a{Ballot: 77, Slot: 123, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 42, Value: make([]byte, 128)}}}
	enc := Encode(nil, m)
	s := GetScratch()
	defer PutScratch(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, _, err := DecodeInto(s, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoP2aBatch16(b *testing.B) {
	m := P2a{Ballot: 77, Slot: 123, Cmds: sampleBatch(16)}
	enc := Encode(nil, m)
	s := GetScratch()
	defer PutScratch(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, _, err := DecodeInto(s, enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripPooled is the codec-level hot path end to end: encode
// into pooled scratch, decode from a reusable arena. The message is
// pre-boxed as Msg, as it is everywhere in the protocols, so the bench
// measures the codec rather than call-site interface conversion.
func BenchmarkRoundTripPooled(b *testing.B) {
	var m Msg = P2a{Ballot: 77, Slot: 123, Cmds: sampleBatch(16), Commit: 120}
	s := GetScratch()
	defer PutScratch(s)
	buf := GetBuf()
	defer PutBuf(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*buf = Encode((*buf)[:0], m)
		s.Reset()
		if _, _, err := DecodeInto(s, *buf); err != nil {
			b.Fatal(err)
		}
	}
}
