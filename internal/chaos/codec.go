// Versioned JSON codec for fault schedules and the shrunk-schedule
// regression corpus. Schedules round-trip bit-identically (durations are
// serialized in time.Duration's String form, which ParseDuration inverts
// exactly), so a corpus entry replayed in CI reruns precisely the fault
// sequence that was persisted.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pigpaxos/internal/ids"
)

// CodecVersion is the schedule/corpus serialization version. Decoding
// rejects entries from unknown versions instead of guessing.
const CodecVersion = 1

// Dur is a time.Duration that marshals as its String() form — readable in
// checked-in corpus files, and an exact round trip through ParseDuration.
type Dur time.Duration

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("chaos: bad duration %q: %w", s, err)
	}
	*d = Dur(v)
	return nil
}

// kindNames maps every Kind to its String() form once; parseKind inverts
// it, so the codec can never drift from the Stringer.
var kindNames = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := Crash; k <= DiskRestore; k++ {
		m[k.String()] = k
	}
	return m
}()

func parseKind(s string) (Kind, error) {
	k, ok := kindNames[s]
	if !ok {
		return 0, fmt.Errorf("chaos: unknown action kind %q", s)
	}
	return k, nil
}

// eventJSON is Event's wire form. Node identities serialize as their raw
// uint32 values (zone<<16|node); zero-valued fields are omitted so corpus
// files stay small and diffable.
type eventJSON struct {
	At   Dur    `json:"at"`
	Kind string `json:"kind"`

	Node  uint32   `json:"node,omitempty"`
	Group int      `json:"group,omitempty"`
	SideA []uint32 `json:"side_a,omitempty"`
	SideB []uint32 `json:"side_b,omitempty"`
	From  uint32   `json:"from,omitempty"`
	To    uint32   `json:"to,omitempty"`

	Loss          float64 `json:"loss,omitempty"`
	Duplicate     float64 `json:"duplicate,omitempty"`
	Reorder       float64 `json:"reorder,omitempty"`
	ReorderWindow Dur     `json:"reorder_window,omitempty"`

	Factor      float64 `json:"factor,omitempty"`
	Zone        int     `json:"zone,omitempty"`
	ZoneB       int     `json:"zone_b,omitempty"`
	Shard       int     `json:"shard,omitempty"`
	Torn        bool    `json:"torn,omitempty"`
	SyncLatency Dur     `json:"sync_latency,omitempty"`
	Duration    Dur     `json:"duration,omitempty"`
}

func idsToU32(s []ids.ID) []uint32 {
	if len(s) == 0 {
		return nil
	}
	out := make([]uint32, len(s))
	for i, id := range s {
		out[i] = uint32(id)
	}
	return out
}

func u32ToIDs(s []uint32) []ids.ID {
	if len(s) == 0 {
		return nil
	}
	out := make([]ids.ID, len(s))
	for i, v := range s {
		out[i] = ids.ID(v)
	}
	return out
}

// MarshalJSON implements json.Marshaler, so a Schedule serializes as a
// plain array of events.
func (e Event) MarshalJSON() ([]byte, error) {
	a := e.Action
	return json.Marshal(eventJSON{
		At:   Dur(e.At),
		Kind: a.Kind.String(),

		Node:  uint32(a.Node),
		Group: a.Group,
		SideA: idsToU32(a.SideA),
		SideB: idsToU32(a.SideB),
		From:  uint32(a.From),
		To:    uint32(a.To),

		Loss:          a.Faults.Loss,
		Duplicate:     a.Faults.Duplicate,
		Reorder:       a.Faults.Reorder,
		ReorderWindow: Dur(a.Faults.ReorderWindow),

		Factor:      a.Factor,
		Zone:        a.Zone,
		ZoneB:       a.ZoneB,
		Shard:       a.Shard,
		Torn:        a.Torn,
		SyncLatency: Dur(a.SyncLatency),
		Duration:    Dur(a.Duration),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var j eventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	kind, err := parseKind(j.Kind)
	if err != nil {
		return err
	}
	e.At = time.Duration(j.At)
	e.Action = Action{
		Kind:  kind,
		Node:  ids.ID(j.Node),
		Group: j.Group,
		SideA: u32ToIDs(j.SideA),
		SideB: u32ToIDs(j.SideB),
		From:  ids.ID(j.From),
		To:    ids.ID(j.To),

		Factor:      j.Factor,
		Zone:        j.Zone,
		ZoneB:       j.ZoneB,
		Shard:       j.Shard,
		Torn:        j.Torn,
		SyncLatency: time.Duration(j.SyncLatency),
		Duration:    time.Duration(j.Duration),
	}
	e.Action.Faults.Loss = j.Loss
	e.Action.Faults.Duplicate = j.Duplicate
	e.Action.Faults.Reorder = j.Reorder
	e.Action.Faults.ReorderWindow = time.Duration(j.ReorderWindow)
	return nil
}

// CorpusEntry is one persisted regression scenario: a (typically shrunk)
// fault schedule plus the scenario configuration needed to replay it
// faithfully — the harness's corpus replay test rebuilds ScenarioOptions
// from these fields and asserts the run comes back clean.
type CorpusEntry struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Origin records how the entry was found — the sweep command line and
	// seed that reproduce it.
	Origin string `json:"origin,omitempty"`
	// Failure names the predicate that originally fired (see the
	// harness's ScenarioResult.Failure kinds).
	Failure string `json:"failure,omitempty"`

	// Scenario configuration. Protocol is the harness protocol's String()
	// form; Groups is the relay-group count (PigPaxos).
	Protocol     string `json:"protocol"`
	N            int    `json:"n"`
	Clients      int    `json:"clients"`
	OpsPerClient int    `json:"ops_per_client,omitempty"`
	Groups       int    `json:"groups,omitempty"`
	Seed         int64  `json:"seed"`
	Warmup       Dur    `json:"warmup"`
	Measure      Dur    `json:"measure"`
	WAN          bool   `json:"wan,omitempty"`
	Durable      bool   `json:"durable,omitempty"`

	Schedule Schedule `json:"schedule"`
}

// HealBy is the validation deadline the entry's schedule must meet: the
// end of its measurement window.
func (e CorpusEntry) HealBy() time.Duration {
	return time.Duration(e.Warmup) + time.Duration(e.Measure)
}

// EncodeCorpusEntry renders the entry as indented JSON, stamping the
// current codec version.
func EncodeCorpusEntry(e CorpusEntry) ([]byte, error) {
	e.Version = CodecVersion
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeCorpusEntry parses an entry, rejecting unknown codec versions.
func DecodeCorpusEntry(b []byte) (CorpusEntry, error) {
	var e CorpusEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return CorpusEntry{}, err
	}
	if e.Version != CodecVersion {
		return CorpusEntry{}, fmt.Errorf("chaos: corpus entry %q has codec version %d, this build reads %d",
			e.Name, e.Version, CodecVersion)
	}
	return e, nil
}

// LoadCorpusDir reads every *.json corpus entry under dir, sorted by file
// name so replay order is stable. A missing directory is an empty corpus,
// not an error.
func LoadCorpusDir(dir string) ([]CorpusEntry, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	out := make([]CorpusEntry, 0, len(names))
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		e, err := DecodeCorpusEntry(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// WriteCorpusEntry persists the entry under dir as <Name>.json and
// returns the path. The sweep writes shrunk failures through this, both
// into the checked-in corpus and as CI artifacts.
func WriteCorpusEntry(dir string, e CorpusEntry) (string, error) {
	if e.Name == "" {
		return "", fmt.Errorf("chaos: corpus entry needs a Name")
	}
	b, err := EncodeCorpusEntry(e)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Name+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
