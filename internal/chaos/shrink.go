// Shrinker: fuzzer-style minimization of failing fault schedules. A sweep
// that surfaces a failure hands back a 3..N-action schedule whose faults
// overlap in ways that obscure which of them matters; Shrink greedily
// reduces it to the smallest schedule that still trips the failure
// predicate, so the persisted corpus entry names the fault sequence and
// nothing else.
package chaos

import (
	"time"

	"pigpaxos/internal/config"
)

// ShrinkOptions bound the minimizer.
type ShrinkOptions struct {
	// N is the cluster size candidates are checked against with Validate
	// before each re-run; 0 skips validation (the predicate is then the
	// only gate). Keeping candidates valid keeps the shrunk schedule
	// inside the bounds the scenario harness assumes.
	N int
	// Cluster, when non-empty, switches candidate validation to
	// ValidateRegions — required for schedules with region-level kinds.
	Cluster config.Cluster
	// HealBy is the validation deadline (every fault healed by then).
	HealBy time.Duration
	// MaxRuns bounds predicate invocations — the shrink's run budget
	// (default 256). Validation rejections are free; only candidates that
	// reach the predicate spend budget.
	MaxRuns int
	// Grid is the coarse time grid fault times and durations snap to in
	// the canonicalization pass (default 50ms).
	Grid time.Duration
	// MinDuration floors shortened fault windows (default Grid). It stays
	// positive so Restart kinds keep the Duration their reboot fires on.
	MinDuration time.Duration
}

func (o *ShrinkOptions) applyDefaults() {
	if o.MaxRuns == 0 {
		o.MaxRuns = 256
	}
	if o.Grid == 0 {
		o.Grid = 50 * time.Millisecond
	}
	if o.MinDuration == 0 {
		o.MinDuration = o.Grid
	}
}

// ShrinkResult is the minimizer's outcome.
type ShrinkResult struct {
	// Schedule is the smallest still-failing schedule found.
	Schedule Schedule
	// Runs is how many predicate invocations were spent.
	Runs int
	// Reductions counts accepted shrink steps (dropped actions, shortened
	// windows, snapped times).
	Reductions int
}

// cloneSchedule deep-copies a schedule's event slice (Action's own slices
// are never mutated by the shrinker, so a per-event copy suffices).
func cloneSchedule(s Schedule) Schedule {
	return append(Schedule(nil), s...)
}

// Shrink greedily minimizes a failing schedule: it drops actions (largest
// chunks first), halves fault durations, and snaps fault times to the
// coarse grid, re-validating every candidate with Validate/ValidateRegions
// and re-running the failure predicate after each step, within a bounded
// run budget. The input must already fail the predicate; Shrink never
// re-checks it, so a non-failing input just comes back unchanged.
//
// The whole procedure is deterministic — fixed pass order, fixed iteration
// order, no randomness — so the same (schedule, predicate, options) input
// always shrinks to the same output, and a corpus entry regenerated from
// its seed is bit-identical to the checked-in one.
func Shrink(s Schedule, failing func(Schedule) bool, opts ShrinkOptions) ShrinkResult {
	opts.applyDefaults()
	res := ShrinkResult{}
	valid := func(c Schedule) bool {
		switch {
		case opts.Cluster.N() > 0:
			return ValidateRegions(c, opts.Cluster, opts.HealBy) == nil
		case opts.N > 0:
			return Validate(c, opts.N, opts.HealBy) == nil
		}
		return true
	}
	// check is the gate every candidate passes through: still-valid, then
	// still-failing, charged against the run budget.
	check := func(c Schedule) bool {
		if res.Runs >= opts.MaxRuns || !valid(c) {
			return false
		}
		res.Runs++
		return failing(c)
	}
	cur := cloneSchedule(s)

	// dropPass removes actions: non-overlapping chunks of half the
	// schedule, then quarters, down to single events. One accepted removal
	// retries the same position — the next chunk slid into it.
	dropPass := func() bool {
		improved := false
		first := len(cur) / 2
		if first < 1 {
			first = 1
		}
		for size := first; size >= 1; size /= 2 {
			for i := 0; i+size <= len(cur); {
				cand := append(cloneSchedule(cur[:i]), cur[i+size:]...)
				if len(cand) > 0 && check(cand) {
					cur = cand
					res.Reductions++
					improved = true
				} else {
					i += size
				}
			}
		}
		return improved
	}
	// durPass repeatedly halves self-heal windows (snapped down to the
	// grid) while the failure survives. Events healing via a separate
	// scheduled action (Duration == 0) are left alone.
	snapDur := func(d time.Duration) time.Duration {
		d -= d % opts.Grid
		if d < opts.MinDuration {
			d = opts.MinDuration
		}
		return d
	}
	durPass := func() bool {
		improved := false
		for i := range cur {
			for cur[i].Action.Duration > opts.MinDuration {
				nd := snapDur(cur[i].Action.Duration / 2)
				if nd >= cur[i].Action.Duration {
					break
				}
				cand := cloneSchedule(cur)
				cand[i].Action.Duration = nd
				if !check(cand) {
					break
				}
				cur = cand
				res.Reductions++
				improved = true
			}
		}
		return improved
	}
	// snapPass canonicalizes surviving events onto the coarse grid: fire
	// times round down, leftover off-grid durations round down (floored at
	// MinDuration) — so equivalent failures shrink to identical schedules
	// regardless of the exact times the explorer drew.
	snapPass := func() bool {
		improved := false
		for i := range cur {
			at := cur[i].At - cur[i].At%opts.Grid
			d := cur[i].Action.Duration
			if d > 0 {
				d = snapDur(d)
			}
			if at == cur[i].At && d == cur[i].Action.Duration {
				continue
			}
			cand := cloneSchedule(cur)
			cand[i].At = at
			cand[i].Action.Duration = d
			cand.Sort()
			if check(cand) {
				cur = cand
				res.Reductions++
				improved = true
			}
		}
		return improved
	}

	for res.Runs < opts.MaxRuns {
		dropped := dropPass()
		shortened := durPass()
		snapped := snapPass()
		if !dropped && !shortened && !snapped {
			break
		}
	}
	cur.Sort()
	res.Schedule = cur
	return res
}
