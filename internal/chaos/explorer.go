// Explorer: seeded random generation of fault schedules within safety
// bounds. The explorer only *generates* schedules — running them is the
// scenario harness's job — so the same seed always yields the same scenario
// set regardless of what is run under it.
package chaos

import (
	"math/rand"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/shard"
)

// Palette selects which fault families the explorer may draw. Every
// protocol in the repository now carries full recovery machinery (the Paxos
// family's retransmits and elections, EPaxos' Explicit Prepare recovery,
// retransmit sweep, and at-most-once sessions), so all of them take
// crashes, partitions, loss and duplication; palettes still differ where a
// fault family has no meaning for a protocol (relay crashes exist only in
// PigPaxos, placement flips only where there is a leader to move).
type Palette struct {
	Crashes     bool // follower crash/recover windows
	LeaderCrash bool // dynamic current-leader crashes
	RelayCrash  bool // dynamic current-relay crashes (PigPaxos)
	Partitions  bool // minority partitions
	LinkLoss    bool // probabilistic per-link loss
	LinkDup     bool // probabilistic duplication
	LinkReorder bool // probabilistic reordering
	Sluggish    bool // CPU slowdown windows

	// Region families (require ExplorerOpts.Cluster with ≥ 2 zones).
	RegionPartition bool // minority-region WAN cut-offs
	WANDegrade      bool // loss/dup/reorder on one zone-pair path
	CrashRegion     bool // whole minority regions crash and recover
	PlacementFlip   bool // forced campaigns from a target region

	// Disk families (require a durable deployment: the harness resolver must
	// implement Rebooter / DiskFaulter, or the actions skip).
	Restart       bool // follower crash + reboot-from-disk windows
	LeaderRestart bool // dynamic current-leader restarts
	TornTail      bool // restarts with a torn journal tail
	DiskSlow      bool // degraded-fsync windows
}

// FullPalette allows every LAN fault family (region families need a WAN
// cluster and stay opt-in via WANPalette).
func FullPalette() Palette {
	return Palette{
		Crashes: true, LeaderCrash: true, RelayCrash: true, Partitions: true,
		LinkLoss: true, LinkDup: true, LinkReorder: true, Sluggish: true,
	}
}

// WANPalette allows the region fault families of the multi-region
// deployments (Figure 9) plus the link faults WAN paths exhibit anyway. The
// generators respect region quorum math: only regions whose loss keeps a
// node majority connected are cut or crashed.
func WANPalette() Palette {
	return Palette{
		RegionPartition: true, WANDegrade: true, CrashRegion: true,
		PlacementFlip: true, LeaderCrash: true,
		LinkLoss: true, LinkReorder: true, Sluggish: true,
	}
}

// DurablePalette mixes the disk fault families with the LAN faults a
// durable deployment must ride out anyway. FullPalette is deliberately left
// unchanged — adding families there would shift the draw sequence of every
// existing explorer seed.
func DurablePalette() Palette {
	return Palette{
		Crashes: true, LeaderCrash: true, Partitions: true,
		LinkLoss: true, LinkReorder: true, Sluggish: true,
		Restart: true, LeaderRestart: true, TornTail: true, DiskSlow: true,
	}
}

// EPaxosPalette is the full LAN palette minus relay crashes (EPaxos has no
// relays): command-leader crashes land on Explicit Prepare recovery, link
// loss on the retransmit sweep, duplication on the session table.
func EPaxosPalette() Palette {
	p := FullPalette()
	p.RelayCrash = false
	return p
}

// GentlePalette allows only faults a protocol with no retransmission or
// recovery machinery would tolerate: message reordering and sluggish nodes.
// Kept for ablations (e.g. running EPaxos with its sweep disabled).
func GentlePalette() Palette {
	return Palette{LinkReorder: true, Sluggish: true}
}

// ExplorerOpts bound the schedule generator.
type ExplorerOpts struct {
	// Seed drives all generation randomness; schedule i is a pure function
	// of (Seed, i, bounds).
	Seed int64
	// Scenarios is how many schedules to generate (default 4).
	Scenarios int
	// Nodes is the cluster membership; Nodes[0] is the initial leader (it
	// is spared from static follower crashes so leader faults stay the
	// explicit LeaderCrash action's job).
	Nodes []ids.ID
	// Groups is the relay-group count RelayCrash actions may target
	// (default 3; ignored unless the palette allows relay crashes).
	Groups int
	// Start is the earliest fault time — leave warmup untouched (default
	// 200ms).
	Start time.Duration
	// Horizon is the deadline by which every fault must have healed
	// (default Start + 2s).
	Horizon time.Duration
	// MaxActions caps faults per schedule (default 3).
	MaxActions int
	// MaxConcurrentCrashes caps simultaneously-crashed nodes; it is
	// clamped to MaxSafeCrashes so a majority always remains formable
	// from the survivors (default: that bound).
	MaxConcurrentCrashes int
	// Allow is the fault palette (zero value → FullPalette).
	Allow Palette
	// Cluster supplies the zone topology the region fault families draw
	// from. Region generators are skipped when it is empty or single-zone.
	Cluster config.Cluster
}

func (o *ExplorerOpts) applyDefaults() {
	if o.Scenarios == 0 {
		o.Scenarios = 4
	}
	if o.Groups == 0 {
		o.Groups = 3
	}
	if o.Start == 0 {
		o.Start = 200 * time.Millisecond
	}
	if o.Horizon <= o.Start {
		o.Horizon = o.Start + 2*time.Second
	}
	if o.MaxActions == 0 {
		o.MaxActions = 3
	}
	maxSafe := MaxSafeCrashes(len(o.Nodes))
	if o.MaxConcurrentCrashes == 0 || o.MaxConcurrentCrashes > maxSafe {
		o.MaxConcurrentCrashes = maxSafe
	}
	if o.Allow == (Palette{}) {
		o.Allow = FullPalette()
	}
}

// childSeed derives schedule i's RNG seed from the base seed via the
// splitmix64 stream (golden-gamma increment, then the shard router's
// Mix64 finalizer). The old `Seed<<16 + i` derivation collided across
// base seeds — seed 1/scenario 0 drew exactly seed 0/scenario 65536's
// schedule — and silently truncated the top 16 bits of large seeds.
func childSeed(seed int64, i int) int64 {
	return int64(shard.Mix64(uint64(seed) + (uint64(i)+1)*0x9e3779b97f4a7c15))
}

// Explore generates opts.Scenarios random schedules within the bounds.
// Every returned schedule passes Validate(s, len(Nodes), Horizon).
// Schedule i is a pure function of (Seed, i, bounds): generation draws
// from a per-schedule child RNG, so schedules can be generated — and the
// runs under them fanned out — in any order without changing the corpus.
func Explore(opts ExplorerOpts) []Schedule {
	opts.applyDefaults()
	out := make([]Schedule, 0, opts.Scenarios)
	for i := 0; i < opts.Scenarios; i++ {
		out = append(out, explore1(opts, rand.New(rand.NewSource(childSeed(opts.Seed, i)))))
	}
	return out
}

// explore1 draws one schedule. Crash concurrency is enforced by tracking
// committed crash windows and rejecting draws that would exceed the bound.
func explore1(opts ExplorerOpts, rng *rand.Rand) Schedule {
	type window struct{ start, end time.Duration }
	var crashes []window
	span := opts.Horizon - opts.Start
	// randWindow draws a fault window that heals before the horizon. Both
	// bounds are clamped into the [Start, Horizon] budget so the draw
	// stays well-formed (and the fault healable) on arbitrarily tight
	// horizons.
	randWindow := func(minDur, maxDur time.Duration) (at, dur time.Duration) {
		if maxDur > span/2 {
			maxDur = span / 2
		}
		if maxDur < minDur {
			maxDur = minDur
		}
		if maxDur > span {
			maxDur = span
		}
		if minDur > maxDur {
			minDur = maxDur
		}
		dur = minDur + time.Duration(rng.Int63n(int64(maxDur-minDur)+1))
		latest := opts.Horizon - dur // ≥ Start because dur ≤ span
		at = opts.Start + time.Duration(rng.Int63n(int64(latest-opts.Start)+1))
		return at, dur
	}
	// unavailable counts a candidate window's k victims against the shared
	// crash budget: a partitioned-away node is as gone as a crashed one for
	// quorum purposes, so crash windows, partition cuts and region outages
	// must never jointly exceed MaxConcurrentCrashes — the connected
	// survivors stay a formable majority at every instant.
	unavailable := func(at, dur time.Duration, k int) bool {
		down := k
		for _, w := range crashes {
			if w.start < at+dur && at < w.end {
				down++
			}
		}
		return down > opts.MaxConcurrentCrashes
	}
	crashOK := func(at, dur time.Duration) bool { return !unavailable(at, dur, 1) }

	// Candidate action kinds under the palette, in a fixed order so the
	// draw sequence is stable.
	type gen func() (Event, bool)
	var gens []gen
	al := opts.Allow
	followers := opts.Nodes
	if len(followers) > 1 {
		followers = followers[1:]
	}
	if al.Crashes && len(followers) > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(50*time.Millisecond, 500*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			victim := followers[rng.Intn(len(followers))]
			return Event{At: at, Action: Action{Kind: Crash, Node: victim, Duration: dur}}, true
		})
	}
	if al.LeaderCrash {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 600*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			return Event{At: at, Action: Action{Kind: CrashLeader, Duration: dur}}, true
		})
	}
	if al.RelayCrash && opts.Groups > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(50*time.Millisecond, 400*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			return Event{At: at, Action: Action{
				Kind: CrashRelay, Group: rng.Intn(opts.Groups), Duration: dur,
			}}, true
		})
	}
	if al.Partitions && len(opts.Nodes) >= 3 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(50*time.Millisecond, 400*time.Millisecond)
			k := 1 + rng.Intn((len(opts.Nodes)-1)/2) // strict minority
			// Charge the cut minority to the shared crash budget, exactly
			// like RegionPartition below: without it, a drawn partition plus
			// a concurrent crash window on the majority side could leave the
			// connected survivors unable to form a majority.
			if unavailable(at, dur, k) {
				return Event{}, false
			}
			for i := 0; i < k; i++ {
				crashes = append(crashes, window{at, at + dur})
			}
			cut := append([]ids.ID(nil), opts.Nodes[len(opts.Nodes)-k:]...)
			rest := append([]ids.ID(nil), opts.Nodes[:len(opts.Nodes)-k]...)
			return Event{At: at, Action: Action{
				Kind: PartitionCut, SideA: cut, SideB: rest, Duration: dur,
			}}, true
		})
	}
	if al.LinkLoss || al.LinkDup || al.LinkReorder {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 800*time.Millisecond)
			var f netsim.LinkFaults
			if al.LinkLoss {
				f.Loss = 0.01 + rng.Float64()*0.04
			}
			if al.LinkDup {
				f.Duplicate = 0.01 + rng.Float64()*0.05
			}
			if al.LinkReorder {
				f.Reorder = 0.05 + rng.Float64()*0.15
				f.ReorderWindow = time.Duration(1+rng.Intn(3)) * time.Millisecond
			}
			return Event{At: at, Action: Action{Kind: LinkFault, Faults: f, Duration: dur}}, true
		})
	}
	if al.Sluggish && len(followers) > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 800*time.Millisecond)
			return Event{At: at, Action: Action{
				Kind:     Sluggish,
				Node:     followers[rng.Intn(len(followers))],
				Factor:   2 + 6*rng.Float64(),
				Duration: dur,
			}}, true
		})
	}
	// Region families: need a multi-zone cluster. Only regions whose loss
	// keeps a node majority connected may be cut or crashed (region quorum
	// math: the survivors must still form a majority of N).
	zones := opts.Cluster.ZoneList()
	if len(zones) >= 2 {
		n := opts.Cluster.N()
		var minority []int
		for _, z := range zones {
			if n-len(opts.Cluster.ZoneNodes(z)) >= quorum.MajoritySize(n) {
				minority = append(minority, z)
			}
		}
		var regionDown []struct {
			zone       int
			start, end time.Duration
		}
		var flips []struct {
			zone int
			at   time.Duration
		}
		if al.RegionPartition && len(minority) > 0 {
			gens = append(gens, func() (Event, bool) {
				at, dur := randWindow(100*time.Millisecond, 600*time.Millisecond)
				z := minority[rng.Intn(len(minority))]
				k := len(opts.Cluster.ZoneNodes(z))
				if unavailable(at, dur, k) {
					return Event{}, false
				}
				for i := 0; i < k; i++ {
					crashes = append(crashes, window{at, at + dur})
				}
				return Event{At: at, Action: Action{
					Kind: RegionPartition, Zone: z, Duration: dur,
				}}, true
			})
		}
		if al.WANDegrade {
			gens = append(gens, func() (Event, bool) {
				at, dur := randWindow(100*time.Millisecond, 800*time.Millisecond)
				i := rng.Intn(len(zones))
				j := rng.Intn(len(zones) - 1)
				if j >= i {
					j++
				}
				var f netsim.LinkFaults
				f.Loss = 0.01 + rng.Float64()*0.04
				f.Reorder = 0.05 + rng.Float64()*0.15
				f.ReorderWindow = time.Duration(1+rng.Intn(4)) * time.Millisecond
				return Event{At: at, Action: Action{
					Kind: WANDegrade, Zone: zones[i], ZoneB: zones[j], Faults: f, Duration: dur,
				}}, true
			})
		}
		if al.CrashRegion && len(minority) > 0 {
			gens = append(gens, func() (Event, bool) {
				at, dur := randWindow(100*time.Millisecond, 500*time.Millisecond)
				z := minority[rng.Intn(len(minority))]
				k := len(opts.Cluster.ZoneNodes(z))
				if unavailable(at, dur, k) {
					return Event{}, false
				}
				for _, fl := range flips {
					if fl.zone == z && at <= fl.at && fl.at < at+dur {
						return Event{}, false // would strand an already-drawn flip
					}
				}
				for i := 0; i < k; i++ {
					crashes = append(crashes, window{at, at + dur})
				}
				regionDown = append(regionDown, struct {
					zone       int
					start, end time.Duration
				}{z, at, at + dur})
				return Event{At: at, Action: Action{Kind: CrashRegion, Zone: z, Duration: dur}}, true
			})
		}
		if al.PlacementFlip {
			gens = append(gens, func() (Event, bool) {
				at := opts.Start + time.Duration(rng.Int63n(int64(span)+1))
				z := zones[rng.Intn(len(zones))]
				for _, w := range regionDown {
					if w.zone == z && w.start <= at && at < w.end {
						return Event{}, false // nobody there to campaign
					}
				}
				flips = append(flips, struct {
					zone int
					at   time.Duration
				}{z, at})
				return Event{At: at, Action: Action{Kind: LeaderPlacementFlip, Zone: z}}, true
			})
		}
	}
	// Disk families come after every older generator so palettes that do not
	// enable them keep their exact historical draw sequences.
	if al.Restart && len(followers) > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 500*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			victim := followers[rng.Intn(len(followers))]
			return Event{At: at, Action: Action{Kind: Restart, Node: victim, Duration: dur}}, true
		})
	}
	if al.LeaderRestart {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(150*time.Millisecond, 600*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			return Event{At: at, Action: Action{Kind: RestartLeader, Duration: dur}}, true
		})
	}
	if al.TornTail && len(followers) > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 500*time.Millisecond)
			if !crashOK(at, dur) {
				return Event{}, false
			}
			crashes = append(crashes, window{at, at + dur})
			victim := followers[rng.Intn(len(followers))]
			return Event{At: at, Action: Action{Kind: TornTail, Node: victim, Duration: dur}}, true
		})
	}
	if al.DiskSlow && len(opts.Nodes) > 0 {
		gens = append(gens, func() (Event, bool) {
			at, dur := randWindow(100*time.Millisecond, 800*time.Millisecond)
			// Any node, the leader included: a slow leader disk throttles
			// every commit, which is exactly the scenario worth exploring.
			victim := opts.Nodes[rng.Intn(len(opts.Nodes))]
			lat := time.Duration(500+rng.Intn(4500)) * time.Microsecond
			return Event{At: at, Action: Action{
				Kind: DiskSlow, Node: victim, SyncLatency: lat, Duration: dur,
			}}, true
		})
	}
	var s Schedule
	if len(gens) == 0 {
		return s
	}
	n := 1 + rng.Intn(opts.MaxActions)
	// Draws rejected by the crash-concurrency bound are retried a bounded
	// number of times; under tight bounds the schedule just comes out short.
	for attempts := 0; len(s) < n && attempts < 4*opts.MaxActions; attempts++ {
		if ev, ok := gens[rng.Intn(len(gens))](); ok {
			s = append(s, ev)
		}
	}
	s.Sort()
	return s
}
