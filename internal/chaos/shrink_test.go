package chaos

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/ids"
)

// shrinkInput is a deliberately noisy failing schedule: one event that
// matters (the 400ms crash of node 3) buried under four that don't.
func shrinkInput() Schedule {
	n3 := ids.NewID(1, 3)
	n4 := ids.NewID(1, 4)
	s := Schedule{
		{At: 210 * time.Millisecond, Action: Action{Kind: Sluggish, Node: n4, Factor: 3, Duration: 700 * time.Millisecond}},
		{At: 300 * time.Millisecond, Action: Action{Kind: Crash, Node: n3, Duration: 400 * time.Millisecond}},
		{At: 350 * time.Millisecond, Action: Action{Kind: LinkFault, Duration: 500 * time.Millisecond}},
		{At: 900 * time.Millisecond, Action: Action{Kind: Crash, Node: n4, Duration: 200 * time.Millisecond}},
		{At: 1200 * time.Millisecond, Action: Action{Kind: Sluggish, Node: n3, Factor: 2, Duration: 300 * time.Millisecond}},
	}
	s[2].Action.Faults.Loss = 0.02
	s.Sort()
	return s
}

// crashesNode3 is the synthetic failure predicate: the run "fails"
// whenever any surviving event crashes node 1.3, regardless of timing.
func crashesNode3(s Schedule) bool {
	for _, ev := range s {
		if ev.Action.Kind == Crash && ev.Action.Node == ids.NewID(1, 3) {
			return true
		}
	}
	return false
}

func TestShrinkMinimizesToSingleEvent(t *testing.T) {
	res := Shrink(shrinkInput(), crashesNode3, ShrinkOptions{N: 5, HealBy: 2 * time.Second})
	if len(res.Schedule) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %+v", len(res.Schedule), res.Schedule)
	}
	ev := res.Schedule[0]
	if ev.Action.Kind != Crash || ev.Action.Node != ids.NewID(1, 3) {
		t.Fatalf("kept the wrong event: %+v", ev)
	}
	// The duration pass should have collapsed the 400ms window to the
	// 50ms default floor, and the snap pass kept At on the grid.
	if ev.Action.Duration != 50*time.Millisecond {
		t.Fatalf("duration = %v, want 50ms floor", ev.Action.Duration)
	}
	if ev.At%(50*time.Millisecond) != 0 {
		t.Fatalf("At = %v not grid-aligned", ev.At)
	}
	if err := Validate(res.Schedule, 5, 2*time.Second); err != nil {
		t.Fatalf("shrunk schedule invalid: %v", err)
	}
	if res.Reductions == 0 {
		t.Fatal("no reductions recorded")
	}
}

func TestShrinkDeterministic(t *testing.T) {
	a := Shrink(shrinkInput(), crashesNode3, ShrinkOptions{N: 5, HealBy: 2 * time.Second})
	b := Shrink(shrinkInput(), crashesNode3, ShrinkOptions{N: 5, HealBy: 2 * time.Second})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input shrank differently:\n%+v\nvs\n%+v", a, b)
	}
}

func TestShrinkRespectsRunBudget(t *testing.T) {
	runs := 0
	res := Shrink(shrinkInput(), func(s Schedule) bool {
		runs++
		return crashesNode3(s)
	}, ShrinkOptions{N: 5, HealBy: 2 * time.Second, MaxRuns: 3})
	if runs > 3 || res.Runs > 3 {
		t.Fatalf("predicate ran %d times (res.Runs=%d), budget was 3", runs, res.Runs)
	}
	// Even a tiny budget must return a still-failing schedule.
	if !crashesNode3(res.Schedule) {
		t.Fatalf("budget-limited shrink returned a non-failing schedule: %+v", res.Schedule)
	}
}

func TestShrinkKeepsCandidatesValid(t *testing.T) {
	// Predicate that fails for ANY schedule — shrinking is then gated only
	// by validity, so every accepted step (and the final result) must pass
	// Validate. With N=3 the input's two overlapping crash events can
	// never both survive a drop into a still-valid candidate... but the
	// shrinker must not return an invalid one either way.
	n1, n2 := ids.NewID(1, 1), ids.NewID(1, 2)
	in := Schedule{
		{At: 200 * time.Millisecond, Action: Action{Kind: Crash, Node: n1, Duration: 300 * time.Millisecond}},
		{At: 600 * time.Millisecond, Action: Action{Kind: Crash, Node: n2, Duration: 300 * time.Millisecond}},
	}
	res := Shrink(in, func(Schedule) bool { return true }, ShrinkOptions{N: 3, HealBy: 2 * time.Second})
	if err := Validate(res.Schedule, 3, 2*time.Second); err != nil {
		t.Fatalf("shrunk schedule invalid: %v", err)
	}
	if len(res.Schedule) != 1 {
		t.Fatalf("always-failing predicate should shrink to one event, got %d", len(res.Schedule))
	}
}
