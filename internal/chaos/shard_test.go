package chaos

import (
	"testing"
	"time"

	"pigpaxos/internal/ids"
)

// shardRes is a StaticResolver with fixed per-shard answers.
type shardRes struct {
	StaticResolver
	leaders    []ids.ID
	campaigned []int // shards asked to flip
	standby    ids.ID
}

func (s *shardRes) ShardLeader(shard int) ids.ID {
	if shard < 0 || shard >= len(s.leaders) {
		return 0
	}
	return s.leaders[shard]
}

func (s *shardRes) CampaignShardFrom(shard, zone int) ids.ID {
	s.campaigned = append(s.campaigned, shard)
	return s.standby
}

func TestInjectorCrashShardLeader(t *testing.T) {
	sim, net, cc := testNet(6, 1)
	res := &shardRes{leaders: []ids.ID{cc.Nodes[0], cc.Nodes[3]}}
	in := Apply(sim, net, ShardLeaderCrash(1, 5*time.Millisecond, 10*time.Millisecond), res)
	sim.Run(8 * time.Millisecond)
	if !net.Crashed(cc.Nodes[3]) {
		t.Fatal("shard 1's leader not crashed")
	}
	if net.Crashed(cc.Nodes[0]) {
		t.Fatal("shard 0's leader crashed — wrong shard resolved")
	}
	sim.Run(30 * time.Millisecond)
	if net.Crashed(cc.Nodes[3]) {
		t.Fatal("victim not recovered")
	}
	log := in.Log()
	if len(log) != 2 || log[0].Kind != CrashShardLeader || log[1].Kind != Recover {
		t.Fatalf("fault log = %v", log)
	}
	if log[0].Shard != 1 || log[1].Shard != 1 {
		t.Fatalf("fault log must attribute shard 1: %v", log)
	}
	if log[0].Target != cc.Nodes[3] {
		t.Fatalf("fault log target = %v, want %v", log[0].Target, cc.Nodes[3])
	}
}

func TestInjectorSkipsShardCrashWithoutResolver(t *testing.T) {
	sim, net, _ := testNet(3, 1)
	// A plain Resolver without the ShardResolver extension cannot answer.
	in := Apply(sim, net, ShardLeaderCrash(0, time.Millisecond, time.Millisecond), StaticResolver{})
	sim.RunUntilIdle()
	if len(in.Log()) != 0 {
		t.Fatalf("unresolvable shard crash executed: %v", in.Log())
	}
}

func TestInjectorShardFlip(t *testing.T) {
	sim, net, cc := testNet(6, 1)
	res := &shardRes{standby: cc.Nodes[4]}
	in := Apply(sim, net, ShardFlip(2, 0, time.Millisecond), res)
	sim.RunUntilIdle()
	if len(res.campaigned) != 1 || res.campaigned[0] != 2 {
		t.Fatalf("campaigned shards = %v, want [2]", res.campaigned)
	}
	log := in.Log()
	if len(log) != 1 || log[0].Kind != ShardPlacementFlip || log[0].Shard != 2 || log[0].Target != cc.Nodes[4] {
		t.Fatalf("fault log = %v", log)
	}
}

func TestNonShardActionsLogShardMinusOne(t *testing.T) {
	sim, net, cc := testNet(3, 1)
	in := Apply(sim, net, NodeCrash(cc.Nodes[0], time.Millisecond, time.Millisecond), nil)
	sim.RunUntilIdle()
	for _, a := range in.Log() {
		if a.Shard != -1 {
			t.Fatalf("non-shard action logged shard %d, want -1: %v", a.Shard, a)
		}
	}
}

func TestValidateShardLeaderCrash(t *testing.T) {
	// Self-healing shard crashes are bounded crashes.
	if err := Validate(ShardLeaderCrash(1, 10*time.Millisecond, 20*time.Millisecond), 5, time.Second); err != nil {
		t.Fatalf("bounded shard crash rejected: %v", err)
	}
	// Dynamic targets must self-heal.
	if err := Validate(Schedule{{At: 0, Action: Action{Kind: CrashShardLeader, Shard: 1}}}, 5, time.Second); err == nil {
		t.Fatal("non-healing shard crash accepted")
	}
}
