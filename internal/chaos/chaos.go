// Package chaos turns the simulator's raw fault primitives (netsim crashes,
// partitions, per-link loss/duplication/reorder) into declarative,
// deterministic fault schedules. A Schedule is a list of timed actions; Apply
// arms them on the DES clock, resolving dynamic targets ("the current
// leader", "the relay currently carrying group g") at fire time through a
// Resolver. Everything — action times, probabilistic link faults, explorer
// randomness — derives from seeded RNGs, so a scenario is a pure function of
// (protocol, cluster, seed, schedule): equal inputs give bit-identical runs.
//
// The package exercises the paper's fault-tolerance machinery end-to-end:
// relay rotation after relay failure, leader re-fan-out with fresh relays
// (Figure 5b), leader failover, and partial-response thresholds under
// sluggish nodes (§3.4) stop being one-off test setups and become scripted,
// checked scenarios.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/quorum"
)

// Kind enumerates fault action types.
type Kind int

// Action kinds.
const (
	// Crash takes Node down at At; Duration > 0 schedules its recovery.
	Crash Kind = iota
	// Recover brings Node back (pre-crash state retained, as in the paper's
	// crash-recovery model).
	Recover
	// CrashLeader crashes whichever node the Resolver reports as leader at
	// fire time; Duration > 0 schedules the victim's recovery.
	CrashLeader
	// CrashRelay crashes the node currently carrying relay group Group
	// (Resolver-resolved); Duration > 0 schedules its recovery.
	CrashRelay
	// PartitionCut cuts SideA from SideB; Duration > 0 schedules a full
	// heal (HealPartition removes all cuts).
	PartitionCut
	// Heal removes every partition cut.
	Heal
	// LinkFault installs Faults on the directed link From→To, or on every
	// link when both are zero; Duration > 0 schedules ClearLinks.
	LinkFault
	// ClearLinks removes every per-link fault.
	ClearLinks
	// Sluggish multiplies Node's CPU costs by Factor (§3.4's slow node);
	// Duration > 0 restores factor 1.
	Sluggish
	// RegionPartition cuts zone Zone — every endpoint homed there, clients
	// included — off the rest of the world (netsim.PartitionZone); Duration
	// > 0 schedules a full heal.
	RegionPartition
	// WANDegrade installs Faults on every link between zones Zone and
	// ZoneB, both directions (loss/duplication/reorder on one WAN path);
	// Duration > 0 clears that pair — and only that pair — afterwards.
	WANDegrade
	// CrashRegion crashes every cluster member in zone Zone; Duration > 0
	// schedules all their recoveries.
	CrashRegion
	// LeaderPlacementFlip forces a live node in zone Zone to campaign for
	// leadership (Resolver-resolved via the Placer extension), moving the
	// leader into a target region the way operators re-place leaders for
	// locality. Not a fault: nothing needs healing.
	LeaderPlacementFlip
	// CrashShardLeader crashes whichever node currently leads consensus
	// group Shard (resolved at fire time via the ShardResolver extension);
	// Duration > 0 schedules the victim's recovery. The sharded scenario
	// harness asserts the blast radius stays inside the shards the victim
	// replicates.
	CrashShardLeader
	// ShardPlacementFlip forces a live member of consensus group Shard in
	// zone Zone to campaign for that shard's leadership (resolved via the
	// ShardPlacer extension) — the per-shard migration primitive. Not a
	// fault: nothing needs healing.
	ShardPlacementFlip
	// Restart crashes Node and, Duration later, reboots it as a FRESH
	// process recovering from its persisted WAL + snapshot alone (via the
	// Rebooter extension) — unlike Recover, which hands back the pre-crash
	// memory image. Duration must be positive. Skipped deterministically
	// when the resolver is not a Rebooter (volatile deployments).
	Restart
	// RestartLeader is Restart aimed at whichever node the Resolver reports
	// as leader at fire time.
	RestartLeader
	// TornTail is Restart with disk damage: before the reboot, a suffix of
	// the journal's synced tail is truncated mid-frame (the crash tore the
	// last write). Recovery must drop the torn frame and rejoin.
	TornTail
	// Reboot is the log marker for a completed Restart (never scheduled
	// directly).
	Reboot
	// DiskSlow raises Node's fsync latency to SyncLatency (a degraded or
	// contended disk); Duration > 0 restores the baseline afterwards.
	// Resolved through the DiskFaulter extension.
	DiskSlow
	// DiskRestore returns Node's fsync latency to the scenario baseline.
	DiskRestore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case CrashLeader:
		return "crash-leader"
	case CrashRelay:
		return "crash-relay"
	case PartitionCut:
		return "partition"
	case Heal:
		return "heal"
	case LinkFault:
		return "link-fault"
	case ClearLinks:
		return "clear-links"
	case Sluggish:
		return "sluggish"
	case RegionPartition:
		return "region-partition"
	case WANDegrade:
		return "wan-degrade"
	case CrashRegion:
		return "crash-region"
	case LeaderPlacementFlip:
		return "placement-flip"
	case CrashShardLeader:
		return "crash-shard-leader"
	case ShardPlacementFlip:
		return "shard-placement-flip"
	case Restart:
		return "restart"
	case RestartLeader:
		return "restart-leader"
	case TornTail:
		return "torn-tail"
	case Reboot:
		return "reboot"
	case DiskSlow:
		return "disk-slow"
	case DiskRestore:
		return "disk-restore"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Action is one fault to inject. Only the fields relevant to Kind are used.
type Action struct {
	Kind Kind
	// Node targets Crash/Recover/Sluggish.
	Node ids.ID
	// Group targets CrashRelay.
	Group int
	// SideA and SideB are the partition sides.
	SideA, SideB []ids.ID
	// From and To select the faulted link (both zero = all links).
	From, To ids.ID
	// Faults is the LinkFault configuration (LinkFault and WANDegrade).
	Faults netsim.LinkFaults
	// Factor is the Sluggish CPU multiplier.
	Factor float64
	// Zone targets RegionPartition/CrashRegion/LeaderPlacementFlip; with
	// ZoneB it names WANDegrade's zone pair. ShardPlacementFlip pairs it
	// with Shard.
	Zone, ZoneB int
	// Shard targets CrashShardLeader/ShardPlacementFlip: the consensus
	// group whose leadership the action manipulates. Distinct kinds keep
	// shard 0 (a valid index) unambiguous from the zero value here.
	Shard int
	// Torn makes a Restart truncate the journal's synced tail mid-frame
	// before rebooting (TornTail implies it).
	Torn bool
	// SyncLatency is DiskSlow's degraded fsync latency.
	SyncLatency time.Duration
	// Duration, when positive, makes the fault self-healing: crashes
	// recover, partitions heal, link faults clear, sluggish nodes recover
	// this long after the action fires. For Restart kinds it is the outage
	// length before the reboot and must be positive.
	Duration time.Duration
}

// Event is one scheduled action.
type Event struct {
	At     time.Duration
	Action Action
}

// Schedule is a declarative fault script, ordered by time once Sort is
// called (Apply sorts a copy; builders return sorted schedules).
type Schedule []Event

// Sort orders the schedule by time, stably, in place.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}

// FirstFaultAt returns the time of the earliest event (0 for an empty
// schedule).
func (s Schedule) FirstFaultAt() time.Duration {
	var first time.Duration
	for i, e := range s {
		if i == 0 || e.At < first {
			first = e.At
		}
	}
	return first
}

// Merge concatenates schedules into one sorted schedule.
func Merge(ss ...Schedule) Schedule {
	var out Schedule
	for _, s := range ss {
		out = append(out, s...)
	}
	out.Sort()
	return out
}

// Resolver resolves dynamic fault targets at fire time. The scenario harness
// implements it by inspecting live protocol state.
type Resolver interface {
	// Leader returns the current leader (zero if unknown; the injector
	// then skips the action).
	Leader() ids.ID
	// Relay returns the node currently carrying relay group g (zero if
	// unknown or not applicable to the protocol under test).
	Relay(g int) ids.ID
}

// Placer is an optional Resolver extension for placement actions: it forces
// a live node in the given zone to bid for leadership and reports who
// campaigned (zero when the zone holds no live, campaign-capable replica —
// the injector then skips the action, deterministically).
type Placer interface {
	CampaignFrom(zone int) ids.ID
}

// ShardResolver is an optional Resolver extension for sharded deployments:
// it reports the current leader of one consensus group (zero if unknown —
// the injector then skips the action, deterministically).
type ShardResolver interface {
	ShardLeader(shard int) ids.ID
}

// ShardPlacer is an optional Resolver extension for per-shard placement:
// it forces a live member of the given shard in the given zone to bid for
// that shard's leadership and reports who campaigned (zero when no such
// member is live — the action is then skipped, deterministically). Zone 0
// means "any zone": the resolver picks its preferred standby.
type ShardPlacer interface {
	CampaignShardFrom(shard, zone int) ids.ID
}

// Rebooter is an optional Resolver extension for durable deployments: the
// scenario harness implements it by tearing down a node's protocol stack and
// rebuilding it from persisted WAL + snapshot alone. torn additionally
// truncates a suffix of the journal's synced tail first (a torn final
// write). Reboot reports false when id cannot be rebooted (unknown node, or
// no durable storage behind it) — the injector then skips, deterministically.
type Rebooter interface {
	Reboot(id ids.ID, torn bool) bool
}

// DiskFaulter is an optional Resolver extension giving the injector per-node
// fsync latency control. lat <= 0 restores the scenario's baseline.
type DiskFaulter interface {
	SetDiskSync(id ids.ID, lat time.Duration)
}

// StaticResolver is a Resolver with fixed answers (tests, leaderless
// protocols).
type StaticResolver struct {
	LeaderID ids.ID
	Relays   []ids.ID
}

// Leader implements Resolver.
func (s StaticResolver) Leader() ids.ID { return s.LeaderID }

// Relay implements Resolver.
func (s StaticResolver) Relay(g int) ids.ID {
	if g < 0 || g >= len(s.Relays) {
		return 0
	}
	return s.Relays[g]
}

// Applied records one action the injector actually executed, with its
// resolved target — the scenario's fault log.
type Applied struct {
	At     time.Duration
	Kind   Kind
	Target ids.ID // resolved victim (zero for partition/heal/clear)
	Zone   int    // targeted region, for region-level actions (0 otherwise)
	Shard  int    // targeted consensus group for shard-level actions, -1 otherwise
}

// String implements fmt.Stringer.
func (a Applied) String() string {
	switch {
	case a.Shard >= 0 && !a.Target.IsZero():
		return fmt.Sprintf("%v(shard %d → %v)@%v", a.Kind, a.Shard, a.Target, a.At)
	case a.Shard >= 0:
		return fmt.Sprintf("%v(shard %d)@%v", a.Kind, a.Shard, a.At)
	case a.Zone != 0 && !a.Target.IsZero():
		return fmt.Sprintf("%v(zone %d → %v)@%v", a.Kind, a.Zone, a.Target, a.At)
	case a.Zone != 0:
		return fmt.Sprintf("%v(zone %d)@%v", a.Kind, a.Zone, a.At)
	case a.Target.IsZero():
		return fmt.Sprintf("%v@%v", a.Kind, a.At)
	default:
		return fmt.Sprintf("%v(%v)@%v", a.Kind, a.Target, a.At)
	}
}

// Injector owns an armed schedule: it executes actions at their virtual
// times and keeps the log of what actually happened (with dynamic targets
// resolved).
type Injector struct {
	sim *des.Sim
	net *netsim.Network
	res Resolver
	log []Applied
}

// Apply arms every event of sched on sim against net. Dynamic targets are
// resolved when the event fires, via res (which may be nil when the schedule
// contains only static targets). The returned Injector exposes the fault
// log after the run.
func Apply(sim *des.Sim, net *netsim.Network, sched Schedule, res Resolver) *Injector {
	in := &Injector{sim: sim, net: net, res: res}
	s := append(Schedule(nil), sched...)
	s.Sort()
	for _, ev := range s {
		ev := ev
		sim.Schedule(ev.At, func() { in.fire(ev) })
	}
	return in
}

// Log returns the actions executed so far, in execution order.
func (in *Injector) Log() []Applied { return in.log }

// note records an executed action.
func (in *Injector) note(k Kind, target ids.ID) {
	in.log = append(in.log, Applied{At: in.sim.Now(), Kind: k, Target: target, Shard: -1})
}

// noteZone records an executed region-level action.
func (in *Injector) noteZone(k Kind, zone int, target ids.ID) {
	in.log = append(in.log, Applied{At: in.sim.Now(), Kind: k, Target: target, Zone: zone, Shard: -1})
}

// noteShard records an executed shard-level action.
func (in *Injector) noteShard(k Kind, shard int, target ids.ID) {
	in.log = append(in.log, Applied{At: in.sim.Now(), Kind: k, Target: target, Shard: shard})
}

// crashFor crashes victim now and, when d > 0, schedules its recovery.
func (in *Injector) crashFor(k Kind, victim ids.ID, d time.Duration) {
	if victim.IsZero() {
		return // unresolvable target: skip, deterministically
	}
	in.net.Crash(victim)
	in.note(k, victim)
	if d > 0 {
		in.sim.Schedule(d, func() {
			in.net.Recover(victim)
			in.note(Recover, victim)
		})
	}
}

// restartFor crashes victim now and schedules an honest reboot-from-disk d
// later. The whole action is skipped when the resolver cannot reboot —
// running only the crash half would silently degrade Restart to a permanent
// crash on volatile deployments.
func (in *Injector) restartFor(k Kind, victim ids.ID, d time.Duration, torn bool) {
	if victim.IsZero() {
		return
	}
	rb, ok := in.res.(Rebooter)
	if !ok {
		return
	}
	in.net.Crash(victim)
	in.note(k, victim)
	in.sim.Schedule(d, func() {
		if rb.Reboot(victim, torn) {
			in.note(Reboot, victim)
		}
	})
}

func (in *Injector) fire(ev Event) {
	a := ev.Action
	switch a.Kind {
	case Crash:
		in.crashFor(Crash, a.Node, a.Duration)
	case Recover:
		in.net.Recover(a.Node)
		in.note(Recover, a.Node)
	case CrashLeader:
		var victim ids.ID
		if in.res != nil {
			victim = in.res.Leader()
		}
		in.crashFor(CrashLeader, victim, a.Duration)
	case CrashRelay:
		var victim ids.ID
		if in.res != nil {
			victim = in.res.Relay(a.Group)
		}
		in.crashFor(CrashRelay, victim, a.Duration)
	case PartitionCut:
		in.net.Partition(a.SideA, a.SideB)
		in.note(PartitionCut, 0)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.HealPartition()
				in.note(Heal, 0)
			})
		}
	case Heal:
		in.net.HealPartition()
		in.note(Heal, 0)
	case LinkFault:
		if a.From.IsZero() && a.To.IsZero() {
			in.net.SetAllLinkFaults(a.Faults)
		} else {
			in.net.SetLinkFaults(a.From, a.To, a.Faults)
		}
		in.note(LinkFault, a.From)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.ClearLinkFaults()
				in.note(ClearLinks, 0)
			})
		}
	case ClearLinks:
		in.net.ClearLinkFaults()
		in.note(ClearLinks, 0)
	case Sluggish:
		in.net.SetSluggish(a.Node, a.Factor)
		in.note(Sluggish, a.Node)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.SetSluggish(a.Node, 1)
				in.note(Recover, a.Node)
			})
		}
	case RegionPartition:
		in.net.PartitionZone(a.Zone)
		in.noteZone(RegionPartition, a.Zone, 0)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.HealPartition()
				in.noteZone(Heal, a.Zone, 0)
			})
		}
	case WANDegrade:
		in.net.SetZoneLinkFaults(a.Zone, a.ZoneB, a.Faults)
		in.noteZone(WANDegrade, a.Zone, 0)
		if a.Duration > 0 {
			// Heal only this pair (zero faults clear the links), so
			// overlapping degrades on other WAN paths run their full
			// scripted windows.
			zone, zoneB := a.Zone, a.ZoneB
			in.sim.Schedule(a.Duration, func() {
				in.net.SetZoneLinkFaults(zone, zoneB, netsim.LinkFaults{})
				in.noteZone(ClearLinks, zone, 0)
			})
		}
	case CrashRegion:
		// Crash only members that are still up, and recover exactly those:
		// a node felled earlier by an overlapping crash fault keeps its own
		// scripted recovery time instead of being revived with the region.
		var victims []ids.ID
		for _, v := range in.net.Cluster().ZoneNodes(a.Zone) {
			if !in.net.Crashed(v) {
				victims = append(victims, v)
				in.net.Crash(v)
			}
		}
		in.noteZone(CrashRegion, a.Zone, 0)
		if a.Duration > 0 && len(victims) > 0 {
			in.sim.Schedule(a.Duration, func() {
				for _, v := range victims {
					in.net.Recover(v)
				}
				in.noteZone(Recover, a.Zone, 0)
			})
		}
	case LeaderPlacementFlip:
		if p, ok := in.res.(Placer); ok {
			if id := p.CampaignFrom(a.Zone); !id.IsZero() {
				in.noteZone(LeaderPlacementFlip, a.Zone, id)
			}
		}
	case CrashShardLeader:
		var victim ids.ID
		if sr, ok := in.res.(ShardResolver); ok {
			victim = sr.ShardLeader(a.Shard)
		}
		if victim.IsZero() {
			return // unresolvable target: skip, deterministically
		}
		in.net.Crash(victim)
		in.noteShard(CrashShardLeader, a.Shard, victim)
		if a.Duration > 0 {
			shard := a.Shard
			in.sim.Schedule(a.Duration, func() {
				in.net.Recover(victim)
				in.noteShard(Recover, shard, victim)
			})
		}
	case ShardPlacementFlip:
		if p, ok := in.res.(ShardPlacer); ok {
			if id := p.CampaignShardFrom(a.Shard, a.Zone); !id.IsZero() {
				in.noteShard(ShardPlacementFlip, a.Shard, id)
			}
		}
	case Restart, TornTail:
		in.restartFor(a.Kind, a.Node, a.Duration, a.Torn || a.Kind == TornTail)
	case RestartLeader:
		var victim ids.ID
		if in.res != nil {
			victim = in.res.Leader()
		}
		in.restartFor(RestartLeader, victim, a.Duration, a.Torn)
	case DiskSlow:
		df, ok := in.res.(DiskFaulter)
		if !ok {
			return
		}
		df.SetDiskSync(a.Node, a.SyncLatency)
		in.note(DiskSlow, a.Node)
		if a.Duration > 0 {
			node := a.Node
			in.sim.Schedule(a.Duration, func() {
				df.SetDiskSync(node, 0)
				in.note(DiskRestore, node)
			})
		}
	case DiskRestore:
		if df, ok := in.res.(DiskFaulter); ok {
			df.SetDiskSync(a.Node, 0)
			in.note(DiskRestore, a.Node)
		}
	}
}

// ------------------------------------------------------------- builders --

// LeaderCrash scripts the paper's leader-failover scenario: kill the current
// leader at `at`, bring it back downFor later.
func LeaderCrash(at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashLeader, Duration: downFor}}}
}

// RelayCrash scripts the Figure-5b relay-failure scenario: kill whatever
// node currently relays group g at `at`, bring it back downFor later.
func RelayCrash(group int, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashRelay, Group: group, Duration: downFor}}}
}

// NodeCrash crashes a specific node for downFor.
func NodeCrash(node ids.ID, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: Crash, Node: node, Duration: downFor}}}
}

// RollingRestart crashes each node in turn for downFor, spacing consecutive
// crashes by gap (gap ≥ downFor keeps at most one node down at a time).
func RollingRestart(nodes []ids.ID, start, downFor, gap time.Duration) Schedule {
	s := make(Schedule, 0, len(nodes))
	at := start
	for _, n := range nodes {
		s = append(s, Event{At: at, Action: Action{Kind: Crash, Node: n, Duration: downFor}})
		at += gap
	}
	return s
}

// MinorityPartition cuts the given minority off the rest of the cluster at
// `at`, healing after healAfter.
func MinorityPartition(minority, rest []ids.ID, at, healAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{
		Kind: PartitionCut, SideA: minority, SideB: rest, Duration: healAfter,
	}}}
}

// FlakyLinks degrades every link with f from `at`, clearing after
// clearAfter.
func FlakyLinks(f netsim.LinkFaults, at, clearAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: LinkFault, Faults: f, Duration: clearAfter}}}
}

// RegionCut scripts the paper's whole-region outage: zone loses its WAN
// uplinks at `at` (clients in the region marooned with it), healing after
// healAfter.
func RegionCut(zone int, at, healAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: RegionPartition, Zone: zone, Duration: healAfter}}}
}

// DegradeWANPair degrades the zoneA↔zoneB WAN path with f from `at`,
// clearing after clearAfter.
func DegradeWANPair(zoneA, zoneB int, f netsim.LinkFaults, at, clearAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{
		Kind: WANDegrade, Zone: zoneA, ZoneB: zoneB, Faults: f, Duration: clearAfter,
	}}}
}

// RegionCrash crashes every member of zone at `at`, recovering all of them
// downFor later.
func RegionCrash(zone int, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashRegion, Zone: zone, Duration: downFor}}}
}

// PlacementFlip forces a campaign from zone at `at` — the leader moves into
// the target region (Figure 9's leader-placement dimension).
func PlacementFlip(zone int, at time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: LeaderPlacementFlip, Zone: zone}}}
}

// ShardLeaderCrash scripts the sharded failover scenario: kill whichever
// node leads consensus group shard at `at`, bringing it back downFor later.
// Shards not replicated by the victim must keep committing throughout.
func ShardLeaderCrash(shard int, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashShardLeader, Shard: shard, Duration: downFor}}}
}

// ShardFlip forces a campaign for shard's leadership from zone at `at`
// (zone 0 lets the resolver pick any live standby) — the per-shard
// migration primitive.
func ShardFlip(shard, zone int, at time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: ShardPlacementFlip, Shard: shard, Zone: zone}}}
}

// RestartFromDisk crashes node at `at` and reboots it downFor later from its
// persisted WAL + snapshot — the honest process-restart fault.
func RestartFromDisk(node ids.ID, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: Restart, Node: node, Duration: downFor}}}
}

// LeaderRestart restarts whichever node leads at `at` — failover plus
// durable recovery in one scenario.
func LeaderRestart(at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: RestartLeader, Duration: downFor}}}
}

// TornRestart crashes node at `at`, tears the synced tail of its journal
// mid-frame, and reboots it downFor later — the crash-during-write fault.
func TornRestart(node ids.ID, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: TornTail, Node: node, Duration: downFor}}}
}

// DiskSlowWindow degrades node's fsync latency to lat from `at`, restoring
// the baseline clearAfter later.
func DiskSlowWindow(node ids.ID, lat time.Duration, at, clearAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{
		Kind: DiskSlow, Node: node, SyncLatency: lat, Duration: clearAfter,
	}}}
}

// RollingReboot restarts each node in turn from disk for downFor, spacing
// consecutive restarts by gap (gap ≥ downFor keeps at most one node down at
// a time) — the cluster-wide upgrade drill.
func RollingReboot(nodes []ids.ID, start, downFor, gap time.Duration) Schedule {
	s := make(Schedule, 0, len(nodes))
	at := start
	for _, n := range nodes {
		s = append(s, Event{At: at, Action: Action{Kind: Restart, Node: n, Duration: downFor}})
		at += gap
	}
	return s
}

// ------------------------------------------------------------- validation --

// MaxSafeCrashes is the classical f: how many of n nodes may be down
// simultaneously while a majority of n stays formable from the survivors.
func MaxSafeCrashes(n int) int { return n - quorum.MajoritySize(n) }

// Validate checks a schedule against the safety bounds the explorer promises
// and tests rely on: at no instant are more than MaxSafeCrashes(n) nodes
// crashed simultaneously (a majority must stay formable from the survivors),
// every crash recovers, and every fault heals by healBy. Dynamic-target
// crashes must be self-healing (Duration > 0) since their victims cannot be
// matched to later Recover events statically.
func Validate(s Schedule, n int, healBy time.Duration) error {
	maxDown := MaxSafeCrashes(n)
	type window struct{ start, end time.Duration }
	var crashes []window
	recovers := map[ids.ID][]time.Duration{}
	for _, ev := range s {
		if ev.Action.Kind == Recover {
			recovers[ev.Action.Node] = append(recovers[ev.Action.Node], ev.At)
		}
	}
	for _, ev := range s {
		a := ev.Action
		switch a.Kind {
		case Restart, RestartLeader, TornTail:
			// Restart kinds count against the crash budget like any outage,
			// and always need a Duration — the reboot has no other trigger.
			if a.Duration <= 0 {
				return fmt.Errorf("chaos: %v at %v has no Duration (the reboot needs a fire time)", a.Kind, ev.At)
			}
			if ev.At+a.Duration > healBy {
				return fmt.Errorf("chaos: %v at %v reboots at %v, after the %v deadline", a.Kind, ev.At, ev.At+a.Duration, healBy)
			}
			crashes = append(crashes, window{ev.At, ev.At + a.Duration})
		case Crash, CrashLeader, CrashRelay, CrashShardLeader:
			end := ev.At + a.Duration
			if a.Duration <= 0 {
				if a.Kind != Crash {
					return fmt.Errorf("chaos: %v at %v has no Duration (dynamic targets must self-heal)", a.Kind, ev.At)
				}
				found := false
				for _, rt := range recovers[a.Node] {
					if rt > ev.At {
						end = rt
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("chaos: crash of %v at %v never recovers", a.Node, ev.At)
				}
			}
			if end > healBy {
				return fmt.Errorf("chaos: crash at %v heals at %v, after the %v deadline", ev.At, end, healBy)
			}
			crashes = append(crashes, window{ev.At, end})
		case PartitionCut, LinkFault, Sluggish:
			if a.Duration <= 0 {
				healed := false
				for _, other := range s {
					k := other.Action.Kind
					if other.At > ev.At && other.At <= healBy &&
						((a.Kind == PartitionCut && k == Heal) ||
							(a.Kind == LinkFault && k == ClearLinks)) {
						healed = true
						break
					}
				}
				if !healed {
					return fmt.Errorf("chaos: %v at %v never heals", a.Kind, ev.At)
				}
			} else if ev.At+a.Duration > healBy {
				return fmt.Errorf("chaos: %v at %v heals after the %v deadline", a.Kind, ev.At, healBy)
			}
		}
	}
	// Concurrency bound: count overlapping crash windows at every window
	// start (overlap counts are maximal at interval starts).
	for i, w := range crashes {
		down := 1
		for j, o := range crashes {
			if j != i && o.start <= w.start && w.start < o.end {
				down++
			}
		}
		if down > maxDown {
			return fmt.Errorf("chaos: %d nodes down at %v; a majority of %d cannot survive", down, w.start, n)
		}
	}
	return nil
}

// ValidateRegions checks a schedule that may contain region-level faults
// against cluster cc. Region actions are lowered to their node-level
// equivalents — CrashRegion to one Crash per member (so a crashed region
// counts every node against the crash-concurrency bound), RegionPartition to
// the (zone, rest) PartitionCut, WANDegrade to a LinkFault — and the result
// must pass Validate: in particular, a partition that cuts away a majority
// of regions (or any region at all) without healing by healBy is rejected.
// On top, region-quorum checks apply: region actions must name a populated
// zone, and a LeaderPlacementFlip may not target a region whose every member
// is statically crashed at fire time (there would be nobody to campaign).
func ValidateRegions(s Schedule, cc config.Cluster, healBy time.Duration) error {
	type window struct{ start, end time.Duration }
	nodeDown := map[ids.ID][]window{}
	recoverAfter := func(node ids.ID, t time.Duration) (time.Duration, bool) {
		for _, ev := range s {
			if ev.Action.Kind == Recover && ev.Action.Node == node && ev.At > t {
				return ev.At, true
			}
		}
		return 0, false
	}
	crashWindow := func(node ids.ID, at, dur time.Duration) {
		end := at + dur
		if dur <= 0 {
			// Never-healing or Recover-matched; base Validate rejects the
			// former, so an unmatched recover can conservatively mean
			// "down forever" for the flip check.
			if rt, ok := recoverAfter(node, at); ok {
				end = rt
			} else {
				end = healBy + 1
			}
		}
		nodeDown[node] = append(nodeDown[node], window{at, end})
	}
	expanded := make(Schedule, 0, len(s))
	var flips []Event
	for _, ev := range s {
		a := ev.Action
		switch a.Kind {
		case RegionPartition, CrashRegion, LeaderPlacementFlip:
			members := cc.ZoneNodes(a.Zone)
			if len(members) == 0 {
				return fmt.Errorf("chaos: %v at %v targets empty zone %d", a.Kind, ev.At, a.Zone)
			}
			switch a.Kind {
			case RegionPartition:
				in, out := cc.RegionSides(a.Zone)
				expanded = append(expanded, Event{At: ev.At, Action: Action{
					Kind: PartitionCut, SideA: in, SideB: out, Duration: a.Duration,
				}})
			case CrashRegion:
				for _, v := range members {
					expanded = append(expanded, Event{At: ev.At, Action: Action{
						Kind: Crash, Node: v, Duration: a.Duration,
					}})
					crashWindow(v, ev.At, a.Duration)
				}
			case LeaderPlacementFlip:
				flips = append(flips, ev)
			}
		case WANDegrade:
			if len(cc.ZoneNodes(a.Zone)) == 0 || len(cc.ZoneNodes(a.ZoneB)) == 0 {
				return fmt.Errorf("chaos: wan-degrade at %v targets empty zone pair (%d, %d)", ev.At, a.Zone, a.ZoneB)
			}
			expanded = append(expanded, Event{At: ev.At, Action: Action{
				Kind: LinkFault, Faults: a.Faults, Duration: a.Duration,
			}})
		default:
			if a.Kind == Crash || a.Kind == Restart || a.Kind == TornTail {
				crashWindow(a.Node, ev.At, a.Duration)
			}
			expanded = append(expanded, ev)
		}
	}
	if err := Validate(expanded, cc.N(), healBy); err != nil {
		return err
	}
	for _, ev := range flips {
		alive := 0
		for _, v := range cc.ZoneNodes(ev.Action.Zone) {
			down := false
			for _, w := range nodeDown[v] {
				if w.start <= ev.At && ev.At < w.end {
					down = true
					break
				}
			}
			if !down {
				alive++
			}
		}
		if alive == 0 {
			return fmt.Errorf("chaos: placement-flip at %v targets zone %d while its every member is crashed", ev.At, ev.Action.Zone)
		}
	}
	return nil
}
