// Package chaos turns the simulator's raw fault primitives (netsim crashes,
// partitions, per-link loss/duplication/reorder) into declarative,
// deterministic fault schedules. A Schedule is a list of timed actions; Apply
// arms them on the DES clock, resolving dynamic targets ("the current
// leader", "the relay currently carrying group g") at fire time through a
// Resolver. Everything — action times, probabilistic link faults, explorer
// randomness — derives from seeded RNGs, so a scenario is a pure function of
// (protocol, cluster, seed, schedule): equal inputs give bit-identical runs.
//
// The package exercises the paper's fault-tolerance machinery end-to-end:
// relay rotation after relay failure, leader re-fan-out with fresh relays
// (Figure 5b), leader failover, and partial-response thresholds under
// sluggish nodes (§3.4) stop being one-off test setups and become scripted,
// checked scenarios.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/quorum"
)

// Kind enumerates fault action types.
type Kind int

// Action kinds.
const (
	// Crash takes Node down at At; Duration > 0 schedules its recovery.
	Crash Kind = iota
	// Recover brings Node back (pre-crash state retained, as in the paper's
	// crash-recovery model).
	Recover
	// CrashLeader crashes whichever node the Resolver reports as leader at
	// fire time; Duration > 0 schedules the victim's recovery.
	CrashLeader
	// CrashRelay crashes the node currently carrying relay group Group
	// (Resolver-resolved); Duration > 0 schedules its recovery.
	CrashRelay
	// PartitionCut cuts SideA from SideB; Duration > 0 schedules a full
	// heal (HealPartition removes all cuts).
	PartitionCut
	// Heal removes every partition cut.
	Heal
	// LinkFault installs Faults on the directed link From→To, or on every
	// link when both are zero; Duration > 0 schedules ClearLinks.
	LinkFault
	// ClearLinks removes every per-link fault.
	ClearLinks
	// Sluggish multiplies Node's CPU costs by Factor (§3.4's slow node);
	// Duration > 0 restores factor 1.
	Sluggish
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case CrashLeader:
		return "crash-leader"
	case CrashRelay:
		return "crash-relay"
	case PartitionCut:
		return "partition"
	case Heal:
		return "heal"
	case LinkFault:
		return "link-fault"
	case ClearLinks:
		return "clear-links"
	case Sluggish:
		return "sluggish"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Action is one fault to inject. Only the fields relevant to Kind are used.
type Action struct {
	Kind Kind
	// Node targets Crash/Recover/Sluggish.
	Node ids.ID
	// Group targets CrashRelay.
	Group int
	// SideA and SideB are the partition sides.
	SideA, SideB []ids.ID
	// From and To select the faulted link (both zero = all links).
	From, To ids.ID
	// Faults is the LinkFault configuration.
	Faults netsim.LinkFaults
	// Factor is the Sluggish CPU multiplier.
	Factor float64
	// Duration, when positive, makes the fault self-healing: crashes
	// recover, partitions heal, link faults clear, sluggish nodes recover
	// this long after the action fires.
	Duration time.Duration
}

// Event is one scheduled action.
type Event struct {
	At     time.Duration
	Action Action
}

// Schedule is a declarative fault script, ordered by time once Sort is
// called (Apply sorts a copy; builders return sorted schedules).
type Schedule []Event

// Sort orders the schedule by time, stably, in place.
func (s Schedule) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
}

// FirstFaultAt returns the time of the earliest event (0 for an empty
// schedule).
func (s Schedule) FirstFaultAt() time.Duration {
	var first time.Duration
	for i, e := range s {
		if i == 0 || e.At < first {
			first = e.At
		}
	}
	return first
}

// Merge concatenates schedules into one sorted schedule.
func Merge(ss ...Schedule) Schedule {
	var out Schedule
	for _, s := range ss {
		out = append(out, s...)
	}
	out.Sort()
	return out
}

// Resolver resolves dynamic fault targets at fire time. The scenario harness
// implements it by inspecting live protocol state.
type Resolver interface {
	// Leader returns the current leader (zero if unknown; the injector
	// then skips the action).
	Leader() ids.ID
	// Relay returns the node currently carrying relay group g (zero if
	// unknown or not applicable to the protocol under test).
	Relay(g int) ids.ID
}

// StaticResolver is a Resolver with fixed answers (tests, leaderless
// protocols).
type StaticResolver struct {
	LeaderID ids.ID
	Relays   []ids.ID
}

// Leader implements Resolver.
func (s StaticResolver) Leader() ids.ID { return s.LeaderID }

// Relay implements Resolver.
func (s StaticResolver) Relay(g int) ids.ID {
	if g < 0 || g >= len(s.Relays) {
		return 0
	}
	return s.Relays[g]
}

// Applied records one action the injector actually executed, with its
// resolved target — the scenario's fault log.
type Applied struct {
	At     time.Duration
	Kind   Kind
	Target ids.ID // resolved victim (zero for partition/heal/clear)
}

// String implements fmt.Stringer.
func (a Applied) String() string {
	if a.Target.IsZero() {
		return fmt.Sprintf("%v@%v", a.Kind, a.At)
	}
	return fmt.Sprintf("%v(%v)@%v", a.Kind, a.Target, a.At)
}

// Injector owns an armed schedule: it executes actions at their virtual
// times and keeps the log of what actually happened (with dynamic targets
// resolved).
type Injector struct {
	sim *des.Sim
	net *netsim.Network
	res Resolver
	log []Applied
}

// Apply arms every event of sched on sim against net. Dynamic targets are
// resolved when the event fires, via res (which may be nil when the schedule
// contains only static targets). The returned Injector exposes the fault
// log after the run.
func Apply(sim *des.Sim, net *netsim.Network, sched Schedule, res Resolver) *Injector {
	in := &Injector{sim: sim, net: net, res: res}
	s := append(Schedule(nil), sched...)
	s.Sort()
	for _, ev := range s {
		ev := ev
		sim.Schedule(ev.At, func() { in.fire(ev) })
	}
	return in
}

// Log returns the actions executed so far, in execution order.
func (in *Injector) Log() []Applied { return in.log }

// note records an executed action.
func (in *Injector) note(k Kind, target ids.ID) {
	in.log = append(in.log, Applied{At: in.sim.Now(), Kind: k, Target: target})
}

// crashFor crashes victim now and, when d > 0, schedules its recovery.
func (in *Injector) crashFor(k Kind, victim ids.ID, d time.Duration) {
	if victim.IsZero() {
		return // unresolvable target: skip, deterministically
	}
	in.net.Crash(victim)
	in.note(k, victim)
	if d > 0 {
		in.sim.Schedule(d, func() {
			in.net.Recover(victim)
			in.note(Recover, victim)
		})
	}
}

func (in *Injector) fire(ev Event) {
	a := ev.Action
	switch a.Kind {
	case Crash:
		in.crashFor(Crash, a.Node, a.Duration)
	case Recover:
		in.net.Recover(a.Node)
		in.note(Recover, a.Node)
	case CrashLeader:
		var victim ids.ID
		if in.res != nil {
			victim = in.res.Leader()
		}
		in.crashFor(CrashLeader, victim, a.Duration)
	case CrashRelay:
		var victim ids.ID
		if in.res != nil {
			victim = in.res.Relay(a.Group)
		}
		in.crashFor(CrashRelay, victim, a.Duration)
	case PartitionCut:
		in.net.Partition(a.SideA, a.SideB)
		in.note(PartitionCut, 0)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.HealPartition()
				in.note(Heal, 0)
			})
		}
	case Heal:
		in.net.HealPartition()
		in.note(Heal, 0)
	case LinkFault:
		if a.From.IsZero() && a.To.IsZero() {
			in.net.SetAllLinkFaults(a.Faults)
		} else {
			in.net.SetLinkFaults(a.From, a.To, a.Faults)
		}
		in.note(LinkFault, a.From)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.ClearLinkFaults()
				in.note(ClearLinks, 0)
			})
		}
	case ClearLinks:
		in.net.ClearLinkFaults()
		in.note(ClearLinks, 0)
	case Sluggish:
		in.net.SetSluggish(a.Node, a.Factor)
		in.note(Sluggish, a.Node)
		if a.Duration > 0 {
			in.sim.Schedule(a.Duration, func() {
				in.net.SetSluggish(a.Node, 1)
				in.note(Recover, a.Node)
			})
		}
	}
}

// ------------------------------------------------------------- builders --

// LeaderCrash scripts the paper's leader-failover scenario: kill the current
// leader at `at`, bring it back downFor later.
func LeaderCrash(at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashLeader, Duration: downFor}}}
}

// RelayCrash scripts the Figure-5b relay-failure scenario: kill whatever
// node currently relays group g at `at`, bring it back downFor later.
func RelayCrash(group int, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: CrashRelay, Group: group, Duration: downFor}}}
}

// NodeCrash crashes a specific node for downFor.
func NodeCrash(node ids.ID, at, downFor time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: Crash, Node: node, Duration: downFor}}}
}

// RollingRestart crashes each node in turn for downFor, spacing consecutive
// crashes by gap (gap ≥ downFor keeps at most one node down at a time).
func RollingRestart(nodes []ids.ID, start, downFor, gap time.Duration) Schedule {
	s := make(Schedule, 0, len(nodes))
	at := start
	for _, n := range nodes {
		s = append(s, Event{At: at, Action: Action{Kind: Crash, Node: n, Duration: downFor}})
		at += gap
	}
	return s
}

// MinorityPartition cuts the given minority off the rest of the cluster at
// `at`, healing after healAfter.
func MinorityPartition(minority, rest []ids.ID, at, healAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{
		Kind: PartitionCut, SideA: minority, SideB: rest, Duration: healAfter,
	}}}
}

// FlakyLinks degrades every link with f from `at`, clearing after
// clearAfter.
func FlakyLinks(f netsim.LinkFaults, at, clearAfter time.Duration) Schedule {
	return Schedule{{At: at, Action: Action{Kind: LinkFault, Faults: f, Duration: clearAfter}}}
}

// ------------------------------------------------------------- validation --

// MaxSafeCrashes is the classical f: how many of n nodes may be down
// simultaneously while a majority of n stays formable from the survivors.
func MaxSafeCrashes(n int) int { return n - quorum.MajoritySize(n) }

// Validate checks a schedule against the safety bounds the explorer promises
// and tests rely on: at no instant are more than MaxSafeCrashes(n) nodes
// crashed simultaneously (a majority must stay formable from the survivors),
// every crash recovers, and every fault heals by healBy. Dynamic-target
// crashes must be self-healing (Duration > 0) since their victims cannot be
// matched to later Recover events statically.
func Validate(s Schedule, n int, healBy time.Duration) error {
	maxDown := MaxSafeCrashes(n)
	type window struct{ start, end time.Duration }
	var crashes []window
	recovers := map[ids.ID][]time.Duration{}
	for _, ev := range s {
		if ev.Action.Kind == Recover {
			recovers[ev.Action.Node] = append(recovers[ev.Action.Node], ev.At)
		}
	}
	for _, ev := range s {
		a := ev.Action
		switch a.Kind {
		case Crash, CrashLeader, CrashRelay:
			end := ev.At + a.Duration
			if a.Duration <= 0 {
				if a.Kind != Crash {
					return fmt.Errorf("chaos: %v at %v has no Duration (dynamic targets must self-heal)", a.Kind, ev.At)
				}
				found := false
				for _, rt := range recovers[a.Node] {
					if rt > ev.At {
						end = rt
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("chaos: crash of %v at %v never recovers", a.Node, ev.At)
				}
			}
			if end > healBy {
				return fmt.Errorf("chaos: crash at %v heals at %v, after the %v deadline", ev.At, end, healBy)
			}
			crashes = append(crashes, window{ev.At, end})
		case PartitionCut, LinkFault, Sluggish:
			if a.Duration <= 0 {
				healed := false
				for _, other := range s {
					k := other.Action.Kind
					if other.At > ev.At && other.At <= healBy &&
						((a.Kind == PartitionCut && k == Heal) ||
							(a.Kind == LinkFault && k == ClearLinks)) {
						healed = true
						break
					}
				}
				if !healed {
					return fmt.Errorf("chaos: %v at %v never heals", a.Kind, ev.At)
				}
			} else if ev.At+a.Duration > healBy {
				return fmt.Errorf("chaos: %v at %v heals after the %v deadline", a.Kind, ev.At, healBy)
			}
		}
	}
	// Concurrency bound: count overlapping crash windows at every window
	// start (overlap counts are maximal at interval starts).
	for i, w := range crashes {
		down := 1
		for j, o := range crashes {
			if j != i && o.start <= w.start && w.start < o.end {
				down++
			}
		}
		if down > maxDown {
			return fmt.Errorf("chaos: %d nodes down at %v; a majority of %d cannot survive", down, w.start, n)
		}
	}
	return nil
}
