package chaos

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
)

// codecSchedule exercises every serialized field across the kind families.
func codecSchedule() Schedule {
	s := Schedule{
		{At: 200 * time.Millisecond, Action: Action{Kind: Crash, Node: ids.NewID(1, 2), Duration: 300 * time.Millisecond}},
		{At: 250 * time.Millisecond, Action: Action{Kind: CrashLeader, Duration: 150 * time.Millisecond}},
		{At: 300 * time.Millisecond, Action: Action{Kind: CrashRelay, Group: 2, Duration: 100 * time.Millisecond}},
		{At: 400 * time.Millisecond, Action: Action{
			Kind:  PartitionCut,
			SideA: []ids.ID{ids.NewID(1, 4)},
			SideB: []ids.ID{ids.NewID(1, 0), ids.NewID(1, 1), ids.NewID(1, 2), ids.NewID(1, 3)},
			Duration: 200 * time.Millisecond,
		}},
		{At: 500 * time.Millisecond, Action: Action{
			Kind: LinkFault,
			Faults: netsim.LinkFaults{
				Loss: 0.03, Duplicate: 0.02, Reorder: 0.11, ReorderWindow: 2 * time.Millisecond,
			},
			Duration: 400 * time.Millisecond,
		}},
		{At: 600 * time.Millisecond, Action: Action{Kind: Sluggish, Node: ids.NewID(2, 1), Factor: 4.5, Duration: 250 * time.Millisecond}},
		{At: 700 * time.Millisecond, Action: Action{Kind: RegionPartition, Zone: 2, Duration: 300 * time.Millisecond}},
		{At: 750 * time.Millisecond, Action: Action{Kind: WANDegrade, Zone: 1, ZoneB: 3, Duration: 200 * time.Millisecond}},
		{At: 800 * time.Millisecond, Action: Action{Kind: LeaderPlacementFlip, Zone: 3}},
		{At: 900 * time.Millisecond, Action: Action{Kind: TornTail, Node: ids.NewID(1, 3), Torn: true, Duration: 200 * time.Millisecond}},
		{At: 950 * time.Millisecond, Action: Action{Kind: DiskSlow, Node: ids.NewID(1, 1), SyncLatency: 1500 * time.Microsecond, Duration: 300 * time.Millisecond}},
		{At: 1000 * time.Millisecond, Action: Action{Kind: CrashShardLeader, Shard: 1, Duration: 100 * time.Millisecond}},
	}
	s.Sort()
	return s
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	in := codecSchedule()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Schedule
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
	// Second encode must be byte-identical — the corpus diffs cleanly.
	b2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestEventJSONRejectsUnknownKind(t *testing.T) {
	var ev Event
	err := json.Unmarshal([]byte(`{"at":"1s","kind":"meteor-strike"}`), &ev)
	if err == nil || !strings.Contains(err.Error(), "meteor-strike") {
		t.Fatalf("want unknown-kind error, got %v", err)
	}
}

func TestCorpusEntryRoundTripAndVersionCheck(t *testing.T) {
	e := CorpusEntry{
		Name:     "crash-under-loss",
		Origin:   "pigbench -scenario sweep -seed 20260808",
		Failure:  "incomplete",
		Protocol: "pigpaxos",
		N:        9, Clients: 8, OpsPerClient: 24, Groups: 3, Seed: 42,
		Warmup:  Dur(200 * time.Millisecond),
		Measure: Dur(1 * time.Second),
		Schedule: Schedule{
			{At: 300 * time.Millisecond, Action: Action{Kind: Crash, Node: ids.NewID(1, 4), Duration: 200 * time.Millisecond}},
		},
	}
	b, err := EncodeCorpusEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCorpusEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	e.Version = CodecVersion // Encode stamps it
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", e, got)
	}
	if got.HealBy() != 1200*time.Millisecond {
		t.Fatalf("HealBy = %v, want 1.2s", got.HealBy())
	}

	bad := bytes.Replace(b, []byte(`"version": 1`), []byte(`"version": 99`), 1)
	if !bytes.Contains(bad, []byte(`"version": 99`)) {
		t.Fatal("test setup: version field not found to corrupt")
	}
	if _, err := DecodeCorpusEntry(bad); err == nil {
		t.Fatal("decoded an entry from a future codec version")
	}
}

func TestWriteAndLoadCorpusDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b-second", "a-first"} {
		e := CorpusEntry{
			Name: name, Protocol: "paxos", N: 5, Clients: 4, Seed: 7,
			Warmup: Dur(200 * time.Millisecond), Measure: Dur(time.Second),
			Schedule: Schedule{
				{At: 300 * time.Millisecond, Action: Action{Kind: CrashLeader, Duration: 200 * time.Millisecond}},
			},
		}
		if _, err := WriteCorpusEntry(dir, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a-first" || got[1].Name != "b-second" {
		t.Fatalf("load order wrong: %+v", got)
	}
	// A missing directory is an empty corpus.
	empty, err := LoadCorpusDir(dir + "/nope")
	if err != nil || len(empty) != 0 {
		t.Fatalf("missing dir: got %v, %v", empty, err)
	}
}

// TestCorpusEntriesValid replays the checked-in corpus at the chaos level:
// every entry must decode under the current codec version and carry a
// schedule that Validate/ValidateRegions accepts for its recorded cluster.
// The harness's corpus test replays the entries through full protocol sims.
func TestCorpusEntriesValid(t *testing.T) {
	entries, err := LoadCorpusDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("checked-in corpus is empty")
	}
	for _, e := range entries {
		if e.N < 3 || e.Protocol == "" || len(e.Schedule) == 0 {
			t.Errorf("%s: underspecified entry: %+v", e.Name, e)
			continue
		}
		if e.WAN {
			if err := ValidateRegions(e.Schedule, config.NewWAN3(e.N), e.HealBy()); err != nil {
				t.Errorf("%s: %v", e.Name, err)
			}
		} else if err := Validate(e.Schedule, e.N, e.HealBy()); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}
