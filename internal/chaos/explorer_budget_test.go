package chaos

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/quorum"
)

// unavailableSpan is one interval during which k nodes are effectively
// gone — crashed, restarting, or cut away by a partition.
type unavailableSpan struct {
	start, end time.Duration
	k          int
}

// unavailableSpans extracts every availability-reducing window from a
// schedule. A partitioned-away minority counts like a crash: the
// connected majority side cannot reach it.
func unavailableSpans(t *testing.T, s Schedule, cc config.Cluster) []unavailableSpan {
	t.Helper()
	var spans []unavailableSpan
	for _, ev := range s {
		a := ev.Action
		switch a.Kind {
		case Crash, CrashLeader, CrashRelay, Restart, RestartLeader, TornTail:
			spans = append(spans, unavailableSpan{ev.At, ev.At + a.Duration, 1})
		case PartitionCut:
			k := len(a.SideA)
			if len(a.SideB) < k {
				k = len(a.SideB)
			}
			spans = append(spans, unavailableSpan{ev.At, ev.At + a.Duration, k})
		case RegionPartition, CrashRegion:
			spans = append(spans, unavailableSpan{ev.At, ev.At + a.Duration, len(cc.ZoneNodes(a.Zone))})
		}
	}
	return spans
}

// assertLiveMajority checks that at every instant the connected live nodes
// still form a majority of n: summed unavailability never exceeds
// MaxSafeCrashes. Checking at each span start suffices — the overlap count
// only increases at starts.
func assertLiveMajority(t *testing.T, s Schedule, n int, cc config.Cluster) {
	t.Helper()
	spans := unavailableSpans(t, s, cc)
	for _, at := range spans {
		down := 0
		for _, w := range spans {
			if w.start <= at.start && at.start < w.end {
				down += w.k
			}
		}
		if n-down < quorum.MajoritySize(n) {
			t.Fatalf("at %v: %d of %d nodes unavailable, majority %d unformable\nschedule: %+v",
				at.start, down, n, quorum.MajoritySize(n), s)
		}
	}
}

// TestExplorerPartitionsShareCrashBudget is the regression test for the
// PartitionCut budget bug: the generator used to admit a minority cut
// without charging it against the shared crash budget, so a partition
// overlapping a crash window could leave the connected survivors unable
// to form a majority. Sweep seeds with a palette of only the two
// families, maximizing the chance they overlap.
func TestExplorerPartitionsShareCrashBudget(t *testing.T) {
	cc := config.NewLAN(5)
	for seed := int64(0); seed < 300; seed++ {
		scheds := Explore(ExplorerOpts{
			Seed:       seed,
			Scenarios:  4,
			Nodes:      cc.Nodes,
			MaxActions: 6,
			Allow:      Palette{Crashes: true, LeaderCrash: true, Partitions: true},
		})
		for _, s := range scheds {
			assertLiveMajority(t, s, cc.N(), cc)
		}
	}
}

// TestExplorerFullPaletteLiveMajority sweeps the full LAN palette and the
// WAN region palette: every generated schedule keeps a connected live
// majority at all times.
func TestExplorerFullPaletteLiveMajority(t *testing.T) {
	lan := config.NewLAN(7)
	wan := config.NewWAN3(9)
	for seed := int64(0); seed < 100; seed++ {
		for _, s := range Explore(ExplorerOpts{
			Seed: seed, Scenarios: 4, Nodes: lan.Nodes, MaxActions: 5,
		}) {
			assertLiveMajority(t, s, lan.N(), lan)
		}
		for _, s := range Explore(ExplorerOpts{
			Seed: seed, Scenarios: 4, Nodes: wan.Nodes, Cluster: wan,
			MaxActions: 5, Allow: WANPalette(),
		}) {
			assertLiveMajority(t, s, wan.N(), wan)
		}
	}
}

// TestChildSeedsDoNotCollide is the regression test for the old
// `Seed<<16 + i` derivation, under which seed 1/scenario 0 drew exactly
// the schedule of seed 0/scenario 65536 and high seed bits vanished.
func TestChildSeedsDoNotCollide(t *testing.T) {
	if childSeed(1, 0) == childSeed(0, 65536) {
		t.Fatal("the historical collision pair still collides")
	}
	// High bits must matter now.
	if childSeed(1<<48, 0) == childSeed(0, 0) {
		t.Fatal("high seed bits are still truncated")
	}
	seen := make(map[int64][2]int64, 64*64)
	for seed := int64(0); seed < 64; seed++ {
		for i := 0; i < 64; i++ {
			cs := childSeed(seed, i)
			if prev, dup := seen[cs]; dup {
				t.Fatalf("childSeed(%d,%d) == childSeed(%d,%d) == %d", seed, i, prev[0], prev[1], cs)
			}
			seen[cs] = [2]int64{seed, int64(i)}
		}
	}
}

// TestExplorerStillDeterministicAfterReseed pins the new derivation's
// purity: same (Seed, i) → same schedule, generated independently of how
// many schedules are asked for.
func TestExplorerStillDeterministicAfterReseed(t *testing.T) {
	cc := config.NewLAN(5)
	opts := ExplorerOpts{Seed: 42, Scenarios: 6, Nodes: cc.Nodes}
	a := Explore(opts)
	opts.Scenarios = 3
	b := Explore(opts)
	for i := range b {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("schedule %d depends on Scenarios count", i)
		}
		for j := range b[i] {
			if a[i][j].At != b[i][j].At || a[i][j].Action.Kind != b[i][j].Action.Kind {
				t.Fatalf("schedule %d differs at event %d", i, j)
			}
		}
	}
}
