package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

func testWANNet(n int, seed int64) (*des.Sim, *netsim.Network, config.Cluster) {
	sim := des.New(seed)
	cc := config.NewWAN3(n)
	net := netsim.New(sim, cc, netsim.Options{})
	for _, id := range cc.Nodes {
		net.Register(id, sink{}, false)
	}
	return sim, net, cc
}

// A region cut takes down exactly the zone's cross-region links and the heal
// restores them, with both ends logged.
func TestInjectorRegionPartition(t *testing.T) {
	sim, net, cc := testWANNet(9, 1)
	sched := RegionCut(config.ZoneOregon, 10*time.Millisecond, 20*time.Millisecond)
	in := Apply(sim, net, sched, nil)
	or1 := cc.ZoneNodes(config.ZoneOregon)[0]
	va1 := cc.ZoneNodes(config.ZoneVirginia)[0]

	sim.Run(15 * time.Millisecond)
	ep := net.Endpoint(or1)
	before := net.MessagesDropped()
	ep.Send(va1, wire.P1a{Ballot: 1})
	if net.MessagesDropped() != before+1 {
		t.Error("cross-region send should drop during the cut")
	}
	sim.Run(40 * time.Millisecond)
	before = net.MessagesDropped()
	ep.Send(va1, wire.P1a{Ballot: 1})
	if net.MessagesDropped() != before {
		t.Error("send should flow after the heal")
	}
	log := in.Log()
	if len(log) != 2 || log[0].Kind != RegionPartition || log[0].Zone != config.ZoneOregon ||
		log[1].Kind != Heal || log[1].Zone != config.ZoneOregon {
		t.Errorf("fault log = %v", log)
	}
}

// CrashRegion fells every member of the zone and recovers them together.
func TestInjectorCrashRegion(t *testing.T) {
	sim, net, cc := testWANNet(9, 1)
	sched := RegionCrash(config.ZoneCalifornia, 5*time.Millisecond, 10*time.Millisecond)
	in := Apply(sim, net, sched, nil)
	sim.Run(8 * time.Millisecond)
	for _, id := range cc.ZoneNodes(config.ZoneCalifornia) {
		if !net.Crashed(id) {
			t.Errorf("%v should be crashed", id)
		}
	}
	for _, id := range cc.ZoneNodes(config.ZoneVirginia) {
		if net.Crashed(id) {
			t.Errorf("%v should be up", id)
		}
	}
	sim.Run(20 * time.Millisecond)
	for _, id := range cc.ZoneNodes(config.ZoneCalifornia) {
		if net.Crashed(id) {
			t.Errorf("%v should have recovered", id)
		}
	}
	if log := in.Log(); len(log) != 2 || log[0].Kind != CrashRegion || log[1].Kind != Recover {
		t.Errorf("fault log = %v", log)
	}
}

// WANDegrade faults exactly the zone pair and ClearLinks heals it.
func TestInjectorWANDegrade(t *testing.T) {
	sim, net, cc := testWANNet(6, 1)
	f := netsim.LinkFaults{Loss: 0.5}
	sched := DegradeWANPair(config.ZoneVirginia, config.ZoneOregon, f, 5*time.Millisecond, 10*time.Millisecond)
	Apply(sim, net, sched, nil)
	va1 := cc.ZoneNodes(config.ZoneVirginia)[0]
	ca1 := cc.ZoneNodes(config.ZoneCalifornia)[0]
	or1 := cc.ZoneNodes(config.ZoneOregon)[0]
	sim.Run(8 * time.Millisecond)
	if got, ok := net.LinkFaultsBetween(va1, or1); !ok || got != f {
		t.Errorf("VA→OR faults = %+v ok=%v", got, ok)
	}
	if _, ok := net.LinkFaultsBetween(va1, ca1); ok {
		t.Error("VA→CA should be clean")
	}
	sim.Run(20 * time.Millisecond)
	if _, ok := net.LinkFaultsBetween(va1, or1); ok {
		t.Error("degrade should have cleared")
	}
}

// placer is a test Placer with scripted answers.
type placer struct {
	StaticResolver
	answers map[int]ids.ID
	asked   []int
}

func (p *placer) CampaignFrom(zone int) ids.ID {
	p.asked = append(p.asked, zone)
	return p.answers[zone]
}

// A placement flip resolves through the Placer extension and logs the
// campaigner; unresolvable zones (nobody live) are skipped silently, and
// resolvers without the extension skip too.
func TestInjectorPlacementFlip(t *testing.T) {
	sim, net, _ := testWANNet(9, 1)
	res := &placer{answers: map[int]ids.ID{2: ids.NewID(2, 1)}}
	sched := Merge(
		PlacementFlip(2, 5*time.Millisecond),
		PlacementFlip(3, 6*time.Millisecond), // resolves to zero: skipped
	)
	in := Apply(sim, net, sched, res)
	sim.RunUntilIdle()
	if len(res.asked) != 2 || res.asked[0] != 2 || res.asked[1] != 3 {
		t.Errorf("asked zones = %v", res.asked)
	}
	log := in.Log()
	if len(log) != 1 || log[0].Kind != LeaderPlacementFlip || log[0].Zone != 2 || log[0].Target != ids.NewID(2, 1) {
		t.Errorf("fault log = %v", log)
	}

	// A plain Resolver without the Placer extension: flips are skipped.
	sim2, net2, _ := testWANNet(9, 1)
	in2 := Apply(sim2, net2, PlacementFlip(2, time.Millisecond), StaticResolver{})
	sim2.RunUntilIdle()
	if len(in2.Log()) != 0 {
		t.Errorf("non-placer resolver should skip flips, log = %v", in2.Log())
	}
}

// ValidateRegions accepts a bounded region schedule: minority-region cut
// that heals, a minority-region crash, a degrade, and a flip into a live
// region.
func TestValidateRegionsAcceptsBounded(t *testing.T) {
	cc := config.NewWAN3(9)
	s := Merge(
		RegionCut(config.ZoneOregon, 100*time.Millisecond, 200*time.Millisecond),
		RegionCrash(config.ZoneCalifornia, 400*time.Millisecond, 100*time.Millisecond),
		DegradeWANPair(config.ZoneVirginia, config.ZoneOregon, netsim.LinkFaults{Loss: 0.05}, 600*time.Millisecond, 100*time.Millisecond),
		PlacementFlip(config.ZoneCalifornia, 800*time.Millisecond),
	)
	if err := ValidateRegions(s, cc, time.Second); err != nil {
		t.Fatal(err)
	}
}

// A region partition that never heals by the deadline is rejected — cutting
// away a majority of the regions without heal-by most of all.
func TestValidateRegionsRejectsUnhealedMajorityPartition(t *testing.T) {
	cc := config.NewWAN3(9)
	// Two of the three regions partitioned away, neither healing: no side
	// retains a majority and the schedule must not validate.
	s := Merge(
		Schedule{{At: 100 * time.Millisecond, Action: Action{Kind: RegionPartition, Zone: config.ZoneCalifornia}}},
		Schedule{{At: 120 * time.Millisecond, Action: Action{Kind: RegionPartition, Zone: config.ZoneOregon}}},
	)
	if err := ValidateRegions(s, cc, time.Second); err == nil {
		t.Fatal("unhealed majority-of-regions partition must be rejected")
	} else if !strings.Contains(err.Error(), "never heals") {
		t.Errorf("unexpected error: %v", err)
	}
	// The same cuts with heal-by windows validate.
	s = Merge(
		RegionCut(config.ZoneCalifornia, 100*time.Millisecond, 150*time.Millisecond),
		RegionCut(config.ZoneOregon, 120*time.Millisecond, 150*time.Millisecond),
	)
	if err := ValidateRegions(s, cc, time.Second); err != nil {
		t.Fatal(err)
	}
}

// Crashing a region whose loss leaves no majority is rejected through the
// node-level crash-concurrency bound.
func TestValidateRegionsRejectsMajorityRegionCrash(t *testing.T) {
	// 5 nodes over 3 zones: zone 1 holds 2 of 5 — fine. But crash zones 1
	// and 2 together (2+2 = 4 down of 5) and no majority survives.
	cc := config.NewWAN3(5)
	s := Merge(
		RegionCrash(1, 100*time.Millisecond, 200*time.Millisecond),
		RegionCrash(2, 150*time.Millisecond, 200*time.Millisecond),
	)
	if err := ValidateRegions(s, cc, time.Second); err == nil {
		t.Fatal("overlapping region crashes exceeding f must be rejected")
	}
}

// A placement flip aimed at a region that is entirely crashed at fire time
// is rejected: there is nobody there to campaign.
func TestValidateRegionsRejectsFlipIntoCrashedRegion(t *testing.T) {
	cc := config.NewWAN3(9)
	s := Merge(
		RegionCrash(config.ZoneOregon, 100*time.Millisecond, 300*time.Millisecond),
		PlacementFlip(config.ZoneOregon, 200*time.Millisecond),
	)
	if err := ValidateRegions(s, cc, time.Second); err == nil {
		t.Fatal("flip into a fully-crashed region must be rejected")
	} else if !strings.Contains(err.Error(), "placement-flip") {
		t.Errorf("unexpected error: %v", err)
	}
	// The same flip after the region recovers is fine.
	s = Merge(
		RegionCrash(config.ZoneOregon, 100*time.Millisecond, 300*time.Millisecond),
		PlacementFlip(config.ZoneOregon, 500*time.Millisecond),
	)
	if err := ValidateRegions(s, cc, time.Second); err != nil {
		t.Fatal(err)
	}
}

// Region actions naming empty zones are rejected.
func TestValidateRegionsRejectsEmptyZones(t *testing.T) {
	cc := config.NewWAN3(9)
	for _, s := range []Schedule{
		RegionCut(7, 100*time.Millisecond, 100*time.Millisecond),
		RegionCrash(7, 100*time.Millisecond, 100*time.Millisecond),
		PlacementFlip(7, 100*time.Millisecond),
		DegradeWANPair(1, 7, netsim.LinkFaults{Loss: 0.1}, 100*time.Millisecond, 100*time.Millisecond),
	} {
		if err := ValidateRegions(s, cc, time.Second); err == nil {
			t.Errorf("schedule %v should be rejected", s)
		}
	}
}

// Non-region schedules validate identically through ValidateRegions and
// Validate.
func TestValidateRegionsDelegatesNodeLevel(t *testing.T) {
	cc := config.NewWAN3(9)
	good := NodeCrash(cc.Nodes[1], 100*time.Millisecond, 100*time.Millisecond)
	if err := ValidateRegions(good, cc, time.Second); err != nil {
		t.Fatal(err)
	}
	bad := Schedule{{At: 100 * time.Millisecond, Action: Action{Kind: Crash, Node: cc.Nodes[1]}}}
	if ValidateRegions(bad, cc, time.Second) == nil || Validate(bad, cc.N(), time.Second) == nil {
		t.Fatal("never-recovering crash must be rejected by both validators")
	}
}

// The WAN palette explorer only emits schedules that pass ValidateRegions,
// across many seeds, and is deterministic per seed.
func TestExplorerWANPaletteRespectsRegionBounds(t *testing.T) {
	cc := config.NewWAN3(9)
	regionFaults := 0
	for seed := int64(1); seed <= 40; seed++ {
		opts := ExplorerOpts{
			Seed:      seed,
			Scenarios: 4,
			Nodes:     cc.Nodes,
			Cluster:   cc,
			Allow:     WANPalette(),
			Horizon:   2 * time.Second,
		}
		scheds := Explore(opts)
		again := Explore(opts)
		if len(scheds) != 4 {
			t.Fatalf("seed %d: %d schedules", seed, len(scheds))
		}
		for i, s := range scheds {
			if err := ValidateRegions(s, cc, 2*time.Second); err != nil {
				t.Errorf("seed %d schedule %d: %v\n%v", seed, i, err, s)
			}
			for _, ev := range s {
				switch ev.Action.Kind {
				case RegionPartition, WANDegrade, CrashRegion, LeaderPlacementFlip:
					regionFaults++
				case Crash, CrashRelay, PartitionCut:
					t.Errorf("seed %d: %v outside the WAN palette", seed, ev.Action.Kind)
				}
			}
			if !reflect.DeepEqual(s, again[i]) {
				t.Fatalf("seed %d schedule %d not deterministic", seed, i)
			}
		}
	}
	// Four of eight WAN families are region-level, so across 160 schedules
	// the region draws must show up in force.
	if regionFaults < 40 {
		t.Errorf("only %d region faults across all seeds", regionFaults)
	}
}
