package chaos

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

type sink struct{}

func (sink) OnMessage(ids.ID, wire.Msg) {}

func testNet(n int, seed int64) (*des.Sim, *netsim.Network, config.Cluster) {
	sim := des.New(seed)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.Options{})
	for _, id := range cc.Nodes {
		net.Register(id, sink{}, false)
	}
	return sim, net, cc
}

func TestInjectorCrashAndSelfHeal(t *testing.T) {
	sim, net, cc := testNet(3, 1)
	victim := cc.Nodes[2]
	in := Apply(sim, net, NodeCrash(victim, 10*time.Millisecond, 20*time.Millisecond), nil)
	sim.Run(15 * time.Millisecond)
	if !net.Crashed(victim) {
		t.Fatal("victim not crashed at 15ms")
	}
	sim.Run(40 * time.Millisecond)
	if net.Crashed(victim) {
		t.Fatal("victim not recovered at 40ms")
	}
	log := in.Log()
	if len(log) != 2 || log[0].Kind != Crash || log[1].Kind != Recover {
		t.Fatalf("fault log = %v", log)
	}
	if log[0].Target != victim || log[1].Target != victim {
		t.Fatalf("fault log targets = %v", log)
	}
}

func TestInjectorResolvesDynamicTargets(t *testing.T) {
	sim, net, cc := testNet(5, 1)
	res := StaticResolver{LeaderID: cc.Nodes[1], Relays: []ids.ID{cc.Nodes[3]}}
	sched := Merge(
		LeaderCrash(5*time.Millisecond, 10*time.Millisecond),
		RelayCrash(0, 6*time.Millisecond, 10*time.Millisecond),
	)
	in := Apply(sim, net, sched, res)
	sim.Run(8 * time.Millisecond)
	if !net.Crashed(cc.Nodes[1]) || !net.Crashed(cc.Nodes[3]) {
		t.Fatal("dynamic targets not crashed")
	}
	sim.Run(30 * time.Millisecond)
	if net.Crashed(cc.Nodes[1]) || net.Crashed(cc.Nodes[3]) {
		t.Fatal("dynamic targets not recovered")
	}
	if got := len(in.Log()); got != 4 {
		t.Fatalf("fault log has %d entries, want 4", got)
	}
}

func TestInjectorSkipsUnresolvableTargets(t *testing.T) {
	sim, net, _ := testNet(3, 1)
	in := Apply(sim, net, LeaderCrash(time.Millisecond, time.Millisecond), StaticResolver{})
	sim.RunUntilIdle()
	if len(in.Log()) != 0 {
		t.Fatalf("unresolvable action executed: %v", in.Log())
	}
}

func TestInjectorPartitionAndLinkFaultHealing(t *testing.T) {
	sim, net, cc := testNet(4, 1)
	sched := Merge(
		MinorityPartition(cc.Nodes[3:], cc.Nodes[:3], time.Millisecond, 5*time.Millisecond),
		FlakyLinks(netsim.LinkFaults{Loss: 0.5}, 2*time.Millisecond, 5*time.Millisecond),
	)
	Apply(sim, net, sched, nil)
	sim.Run(3 * time.Millisecond)
	if _, ok := net.LinkFaultsBetween(cc.Nodes[0], cc.Nodes[1]); !ok {
		t.Fatal("link faults not installed")
	}
	sim.Run(10 * time.Millisecond)
	if _, ok := net.LinkFaultsBetween(cc.Nodes[0], cc.Nodes[1]); ok {
		t.Fatal("link faults not cleared")
	}
}

func TestValidateAcceptsBoundedSchedules(t *testing.T) {
	cc := config.NewLAN(5)
	s := Merge(
		NodeCrash(cc.Nodes[4], 10*time.Millisecond, 50*time.Millisecond),
		NodeCrash(cc.Nodes[3], 20*time.Millisecond, 50*time.Millisecond),
		LeaderCrash(200*time.Millisecond, 100*time.Millisecond),
	)
	if err := Validate(s, 5, time.Second); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestValidateRejectsQuorumLoss(t *testing.T) {
	cc := config.NewLAN(5)
	s := Merge(
		NodeCrash(cc.Nodes[4], 10*time.Millisecond, 100*time.Millisecond),
		NodeCrash(cc.Nodes[3], 20*time.Millisecond, 100*time.Millisecond),
		NodeCrash(cc.Nodes[2], 30*time.Millisecond, 100*time.Millisecond), // 3 down of 5
	)
	if err := Validate(s, 5, time.Second); err == nil {
		t.Fatal("3 concurrent crashes in a 5-node cluster must be rejected")
	}
}

// Even cluster sizes need a majority of the FULL membership from the
// survivors: in a 4-node cluster 2 concurrent crashes leave only 2 alive —
// below the majority of 3 — so f is 1, not majority−1.
func TestValidateEvenClusterBound(t *testing.T) {
	if got := MaxSafeCrashes(4); got != 1 {
		t.Fatalf("MaxSafeCrashes(4) = %d, want 1", got)
	}
	if got := MaxSafeCrashes(5); got != 2 {
		t.Fatalf("MaxSafeCrashes(5) = %d, want 2", got)
	}
	cc := config.NewLAN(4)
	s := Merge(
		NodeCrash(cc.Nodes[3], 10*time.Millisecond, 100*time.Millisecond),
		NodeCrash(cc.Nodes[2], 20*time.Millisecond, 100*time.Millisecond), // 2 down of 4
	)
	if err := Validate(s, 4, time.Second); err == nil {
		t.Fatal("2 concurrent crashes in a 4-node cluster must be rejected")
	}
}

// A horizon tighter than the generators' minimum durations must not panic:
// windows clamp into the [Start, Horizon] budget.
func TestExplorerTightHorizon(t *testing.T) {
	cc := config.NewLAN(5)
	scheds := Explore(ExplorerOpts{
		Seed: 5, Scenarios: 10, Nodes: cc.Nodes,
		Start:   200 * time.Millisecond,
		Horizon: 250 * time.Millisecond, // span 50ms < every generator's minDur
	})
	for i, s := range scheds {
		if err := Validate(s, 5, 250*time.Millisecond); err != nil {
			t.Errorf("schedule %d violates the tight horizon: %v", i, err)
		}
	}
}

func TestValidateRejectsUnhealedFaults(t *testing.T) {
	cc := config.NewLAN(5)
	if err := Validate(Schedule{{At: time.Millisecond, Action: Action{Kind: Crash, Node: cc.Nodes[4]}}}, 5, time.Second); err == nil {
		t.Fatal("never-recovered crash must be rejected")
	}
	late := NodeCrash(cc.Nodes[4], 900*time.Millisecond, 300*time.Millisecond)
	if err := Validate(late, 5, time.Second); err == nil {
		t.Fatal("crash healing after the deadline must be rejected")
	}
	part := Schedule{{At: time.Millisecond, Action: Action{
		Kind: PartitionCut, SideA: cc.Nodes[:1], SideB: cc.Nodes[1:],
	}}}
	if err := Validate(part, 5, time.Second); err == nil {
		t.Fatal("never-healed partition must be rejected")
	}
}

func TestExplorerSchedulesRespectBounds(t *testing.T) {
	cc := config.NewLAN(9)
	opts := ExplorerOpts{
		Seed:      7,
		Scenarios: 20,
		Nodes:     cc.Nodes,
		Start:     100 * time.Millisecond,
		Horizon:   1200 * time.Millisecond,
	}
	scheds := Explore(opts)
	if len(scheds) != 20 {
		t.Fatalf("generated %d schedules, want 20", len(scheds))
	}
	nonEmpty := 0
	for i, s := range scheds {
		if len(s) > 0 {
			nonEmpty++
		}
		if err := Validate(s, 9, opts.Horizon); err != nil {
			t.Errorf("schedule %d violates bounds: %v", i, err)
		}
		for _, ev := range s {
			if ev.At < opts.Start {
				t.Errorf("schedule %d fires at %v, before Start %v", i, ev.At, opts.Start)
			}
		}
	}
	if nonEmpty == 0 {
		t.Fatal("explorer generated only empty schedules")
	}
}

func TestExplorerDeterministic(t *testing.T) {
	cc := config.NewLAN(5)
	opts := ExplorerOpts{Seed: 3, Scenarios: 8, Nodes: cc.Nodes}
	a, b := Explore(opts), Explore(opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	opts.Seed = 4
	c := Explore(opts)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical schedules")
	}
}

func TestExplorerHonorsPalette(t *testing.T) {
	cc := config.NewLAN(5)
	scheds := Explore(ExplorerOpts{
		Seed: 11, Scenarios: 10, Nodes: cc.Nodes, Allow: GentlePalette(),
	})
	for i, s := range scheds {
		for _, ev := range s {
			switch ev.Action.Kind {
			case LinkFault:
				f := ev.Action.Faults
				if f.Loss > 0 || f.Duplicate > 0 {
					t.Errorf("schedule %d: gentle palette drew loss/dup: %+v", i, f)
				}
			case Sluggish:
			default:
				t.Errorf("schedule %d: gentle palette drew %v", i, ev.Action.Kind)
			}
		}
	}
}

func TestExplorerCrashConcurrencyBelowQuorum(t *testing.T) {
	cc := config.NewLAN(5)
	maxDown := MaxSafeCrashes(5)
	scheds := Explore(ExplorerOpts{
		Seed: 13, Scenarios: 30, Nodes: cc.Nodes, MaxActions: 6,
		Allow: Palette{Crashes: true, LeaderCrash: true, RelayCrash: true},
	})
	for i, s := range scheds {
		type w struct{ s, e time.Duration }
		var windows []w
		for _, ev := range s {
			switch ev.Action.Kind {
			case Crash, CrashLeader, CrashRelay:
				windows = append(windows, w{ev.At, ev.At + ev.Action.Duration})
			}
		}
		for _, a := range windows {
			down := 0
			for _, b := range windows {
				if b.s <= a.s && a.s < b.e {
					down++
				}
			}
			if down > maxDown {
				t.Errorf("schedule %d: %d concurrent crashes (max %d)", i, down, maxDown)
			}
		}
	}
}

func TestRollingRestartSequences(t *testing.T) {
	cc := config.NewLAN(4)
	s := RollingRestart(cc.Nodes, 10*time.Millisecond, 20*time.Millisecond, 50*time.Millisecond)
	if len(s) != 4 {
		t.Fatalf("events = %d, want 4", len(s))
	}
	if err := Validate(s, 4, time.Second); err != nil {
		t.Fatalf("rolling restart invalid: %v", err)
	}
	for i, ev := range s {
		want := 10*time.Millisecond + time.Duration(i)*50*time.Millisecond
		if ev.At != want {
			t.Errorf("event %d at %v, want %v", i, ev.At, want)
		}
	}
}
