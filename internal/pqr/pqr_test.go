package pqr

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

// fixture: n replica stores with responders, plus one client-side reader.
type fixture struct {
	sim     *des.Sim
	net     *netsim.Network
	cc      config.Cluster
	stores  map[ids.ID]*kvstore.Store
	reader  *Reader
	results []Result
}

type replicaHandler struct {
	resp *Responder
}

func (h *replicaHandler) OnMessage(from ids.ID, m wire.Msg) {
	if req, ok := m.(wire.QReadReq); ok {
		h.resp.OnRequest(from, req)
	}
}

type readerHandler struct{ r *Reader }

func (h *readerHandler) OnMessage(from ids.ID, m wire.Msg) {
	if rep, ok := m.(wire.QReadReply); ok {
		h.r.OnReply(rep)
	}
}

func newFixture(t *testing.T, n int, mut func(*Config)) *fixture {
	t.Helper()
	sim := des.New(5)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	f := &fixture{sim: sim, net: net, cc: cc, stores: make(map[ids.ID]*kvstore.Store)}
	for _, id := range cc.Nodes {
		st := kvstore.New()
		f.stores[id] = st
		h := &replicaHandler{}
		ep := net.Register(id, h, false)
		h.resp = NewResponder(ep, st)
	}
	rh := &readerHandler{}
	ep := net.Register(ids.NewID(999, 1), rh, true)
	cfg := Config{Members: cc.Nodes}
	if mut != nil {
		mut(&cfg)
	}
	f.reader = New(ep, cfg, nil)
	rh.r = f.reader
	return f
}

func (f *fixture) put(id ids.ID, key uint64, val string) {
	f.stores[id].Apply(kvstore.Command{Op: kvstore.Put, Key: key, Value: []byte(val)})
}

func (f *fixture) read(key uint64) {
	f.sim.Schedule(0, func() {
		f.reader.Read(key, func(r Result) { f.results = append(f.results, r) })
	})
}

func TestStableReadReturnsValue(t *testing.T) {
	f := newFixture(t, 5, nil)
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "stable")
	}
	f.read(1)
	f.sim.Run(50 * time.Millisecond)
	if len(f.results) != 1 {
		t.Fatalf("results = %d", len(f.results))
	}
	r := f.results[0]
	if r.Failed || !r.Exists || string(r.Value) != "stable" || r.Rinses != 0 {
		t.Errorf("result: %+v", r)
	}
}

func TestMissingKeyReads(t *testing.T) {
	f := newFixture(t, 5, nil)
	f.read(42)
	f.sim.Run(50 * time.Millisecond)
	if len(f.results) != 1 || f.results[0].Exists || f.results[0].Failed {
		t.Fatalf("missing key read: %+v", f.results)
	}
}

func TestUnstableReadRinses(t *testing.T) {
	// Only one replica has the newest version: the read must rinse until
	// the write propagates, then return the new value.
	f := newFixture(t, 5, nil)
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "old")
	}
	// Newest version at a single replica (write in flight).
	f.put(f.cc.Nodes[0], 1, "new")
	f.read(1)
	// Propagate the write to the rest after 5ms (commit catching up).
	f.sim.Schedule(5*time.Millisecond, func() {
		for _, id := range f.cc.Nodes[1:] {
			f.put(id, 1, "new")
		}
	})
	f.sim.Run(200 * time.Millisecond)
	if len(f.results) != 1 {
		t.Fatalf("results = %d", len(f.results))
	}
	r := f.results[0]
	if r.Failed {
		t.Fatalf("read failed: %+v", r)
	}
	if string(r.Value) != "new" {
		t.Errorf("value = %q, want new (must not return the stale majority)", r.Value)
	}
	if r.Rinses == 0 {
		t.Error("read should have rinsed at least once")
	}
}

func TestNeverStableFails(t *testing.T) {
	f := newFixture(t, 5, func(c *Config) {
		c.MaxRinses = 3
		c.RinseInterval = time.Millisecond
	})
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "old")
	}
	// Crash two replicas so the only reachable quorum is {1,2,3}, and put
	// a newer version on replicas 1-2 that never reaches replica 3: every
	// read round observes disagreement and must keep rinsing until it
	// gives up.
	f.put(f.cc.Nodes[0], 1, "forever-uncommitted")
	f.put(f.cc.Nodes[1], 1, "forever-uncommitted")
	f.net.Crash(f.cc.Nodes[3])
	f.net.Crash(f.cc.Nodes[4])
	f.read(1)
	f.sim.Run(time.Second)
	if len(f.results) != 1 {
		t.Fatalf("results = %d", len(f.results))
	}
	if !f.results[0].Failed {
		t.Errorf("read of a never-stabilizing key must fail: %+v", f.results[0])
	}
	if f.reader.Stats().Fails != 1 {
		t.Error("failure not counted")
	}
}

func TestQuorumReachedWithMinorityCrashed(t *testing.T) {
	f := newFixture(t, 5, nil)
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "v")
	}
	f.net.Crash(f.cc.Nodes[3])
	f.net.Crash(f.cc.Nodes[4])
	f.read(1)
	f.sim.Run(100 * time.Millisecond)
	if len(f.results) != 1 || f.results[0].Failed {
		t.Fatalf("read must succeed with 3 of 5 alive: %+v", f.results)
	}
}

func TestReadFailsWithMajorityCrashed(t *testing.T) {
	f := newFixture(t, 5, func(c *Config) { c.MaxRinses = 2; c.RinseInterval = time.Millisecond })
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "v")
	}
	for _, id := range f.cc.Nodes[2:] {
		f.net.Crash(id)
	}
	f.read(1)
	f.sim.Run(time.Second)
	if len(f.results) != 1 || !f.results[0].Failed {
		t.Fatalf("read without quorum must fail: %+v", f.results)
	}
}

func TestProxyReaderUsesLocalStore(t *testing.T) {
	// A replica acting as proxy answers its own share locally: with a
	// 3-node cluster and quorum 2, one network reply suffices.
	sim := des.New(5)
	cc := config.NewLAN(3)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	stores := make(map[ids.ID]*kvstore.Store)
	type proxyH struct {
		reader *Reader
		resp   *Responder
	}
	handlers := make(map[ids.ID]*proxyH)
	for _, id := range cc.Nodes {
		st := kvstore.New()
		st.Apply(kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("local")})
		stores[id] = st
		h := &proxyH{}
		tr := netsim.HandlerFunc(func(from ids.ID, m wire.Msg) {
			switch v := m.(type) {
			case wire.QReadReq:
				h.resp.OnRequest(from, v)
			case wire.QReadReply:
				h.reader.OnReply(v)
			}
		})
		ep := net.Register(id, tr, false)
		h.resp = NewResponder(ep, st)
		h.reader = New(ep, Config{Members: cc.Nodes}, st)
		handlers[id] = h
	}
	var got *Result
	sim.Schedule(0, func() {
		handlers[cc.Nodes[0]].reader.Read(7, func(r Result) { got = &r })
	})
	sim.Run(50 * time.Millisecond)
	if got == nil || got.Failed || string(got.Value) != "local" {
		t.Fatalf("proxy read: %+v", got)
	}
}

func TestConcurrentReadsIndependent(t *testing.T) {
	f := newFixture(t, 5, nil)
	for _, id := range f.cc.Nodes {
		f.put(id, 1, "a")
		f.put(id, 2, "b")
	}
	f.read(1)
	f.read(2)
	f.sim.Run(100 * time.Millisecond)
	if len(f.results) != 2 {
		t.Fatalf("results = %d", len(f.results))
	}
	vals := map[string]bool{}
	for _, r := range f.results {
		vals[string(r.Value)] = true
	}
	if !vals["a"] || !vals["b"] {
		t.Errorf("reads mixed up: %+v", f.results)
	}
}
