// Package pqr implements Paxos Quorum Reads (Charapko et al., HotStorage
// '19), the read-path optimization §4.3 of the PigPaxos paper adopts:
// strongly consistent reads that bypass the leader and need no leases. A
// reader collects per-key versions from a phase-2-quorum of replicas; if a
// majority agrees on the highest version the value is stable and can be
// returned. Disagreement means a write is in flight: the reader "rinses" by
// retrying until the newest observed version appears committed at a
// majority.
//
// As the paper suggests, any replica can act as the read proxy on behalf of
// a client that does not know the membership; the proxy's fan-out can
// itself be relayed through PigPaxos groups, which this implementation
// supports by routing through a pluggable fan-out function.
package pqr

import (
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/wire"
)

// Config parameterizes a quorum reader.
type Config struct {
	// Cluster members queried for versions.
	Members []ids.ID
	// Quorum is how many replies decide a read (default: majority of
	// Members, counting the reader itself if it is a member).
	Quorum int
	// RinseInterval is the retry delay while a read is unstable.
	RinseInterval time.Duration
	// MaxRinses bounds retries before failing the read.
	MaxRinses int
}

func (c *Config) applyDefaults() {
	if c.Quorum == 0 {
		c.Quorum = quorum.MajoritySize(len(c.Members))
	}
	if c.RinseInterval == 0 {
		c.RinseInterval = 2 * time.Millisecond
	}
	if c.MaxRinses == 0 {
		c.MaxRinses = 20
	}
}

// Result is the outcome of a quorum read.
type Result struct {
	Exists  bool
	Value   []byte
	Version uint64
	Rinses  int // retries performed before the read stabilized
	Failed  bool
}

// read tracks one in-flight quorum read round.
type read struct {
	key      uint64
	replies  map[ids.ID]wire.QReadReply
	want     int
	rinses   int
	deadline node.Timer
	done     func(Result)
}

// Reader performs quorum reads. It can live on a client (that knows the
// membership) or on any replica acting as a proxy. Store, when non-nil,
// contributes the local replica's version without a network hop.
type Reader struct {
	ctx   node.Context
	cfg   Config
	store *kvstore.Store
	next  uint64
	reads map[uint64]*read

	stats Stats
}

// Stats counts reader events.
type Stats struct {
	Reads  uint64
	Rinses uint64
	Fails  uint64
}

// New creates a Reader. store may be nil (client-side reader).
func New(ctx node.Context, cfg Config, store *kvstore.Store) *Reader {
	cfg.applyDefaults()
	return &Reader{
		ctx:   ctx,
		cfg:   cfg,
		store: store,
		reads: make(map[uint64]*read),
	}
}

// Stats returns a copy of the counters.
func (r *Reader) Stats() Stats { return r.stats }

// Read starts a quorum read of key; done is invoked exactly once with the
// result. Must be called from the owning node's event loop.
func (r *Reader) Read(key uint64, done func(Result)) {
	r.stats.Reads++
	r.start(key, 0, done)
}

func (r *Reader) start(key uint64, rinses int, done func(Result)) {
	r.next++
	rid := r.next
	rd := &read{key: key, replies: make(map[ids.ID]wire.QReadReply), want: r.cfg.Quorum, rinses: rinses, done: done}
	r.reads[rid] = rd
	for _, m := range r.cfg.Members {
		if m == r.ctx.ID() && r.store != nil {
			v, ok := r.store.Get(key)
			rd.replies[m] = wire.QReadReply{
				Key: key, RID: rid, From: m,
				Version: r.store.Version(key), Exists: ok, Value: v,
			}
			continue
		}
		r.ctx.Send(m, wire.QReadReq{Key: key, RID: rid})
	}
	if r.tryFinish(rid, rd) {
		return
	}
	rd.deadline = r.ctx.After(r.cfg.RinseInterval*time.Duration(r.cfg.MaxRinses+1), func() {
		if _, live := r.reads[rid]; live {
			delete(r.reads, rid)
			r.stats.Fails++
			done(Result{Failed: true, Rinses: rd.rinses})
		}
	})
}

// OnReply feeds a QReadReply into the reader. The owner routes messages of
// type wire.QReadReply here.
func (r *Reader) OnReply(m wire.QReadReply) {
	rd, ok := r.reads[m.RID]
	if !ok {
		return
	}
	rd.replies[m.From] = m
	r.tryFinish(m.RID, rd)
}

// tryFinish completes the read if a quorum of replies agrees that the
// highest version is stable (held by a majority). Otherwise, once enough
// replies arrived, it rinses: re-reads after a delay, because the newest
// version may still be propagating.
func (r *Reader) tryFinish(rid uint64, rd *read) bool {
	if len(rd.replies) < rd.want {
		return false
	}
	var maxV uint64
	for _, rep := range rd.replies {
		if rep.Version > maxV {
			maxV = rep.Version
		}
	}
	holders := 0
	var winner wire.QReadReply
	for _, rep := range rd.replies {
		if rep.Version == maxV {
			holders++
			winner = rep
		}
	}
	if holders >= rd.want || maxV == 0 {
		r.finish(rid, rd, Result{
			Exists: winner.Exists, Value: winner.Value,
			Version: maxV, Rinses: rd.rinses,
		})
		return true
	}
	// Unstable: the newest version is not yet at a quorum. Rinse.
	if rd.rinses >= r.cfg.MaxRinses {
		r.stats.Fails++
		r.finish(rid, rd, Result{Failed: true, Rinses: rd.rinses})
		return true
	}
	r.stats.Rinses++
	done := rd.done
	key := rd.key
	rinses := rd.rinses + 1
	r.drop(rid, rd)
	r.ctx.After(r.cfg.RinseInterval, func() {
		r.start(key, rinses, done)
	})
	return true
}

func (r *Reader) finish(rid uint64, rd *read, res Result) {
	r.drop(rid, rd)
	rd.done(res)
}

func (r *Reader) drop(rid uint64, rd *read) {
	if rd.deadline != nil {
		rd.deadline.Stop()
	}
	delete(r.reads, rid)
}

// Responder serves QReadReq messages at a replica: it answers with the
// local version and value of the key. Wire it into the replica's message
// dispatch.
type Responder struct {
	ctx   node.Context
	store *kvstore.Store
}

// NewResponder creates a Responder over a replica's store.
func NewResponder(ctx node.Context, store *kvstore.Store) *Responder {
	return &Responder{ctx: ctx, store: store}
}

// OnRequest answers one QReadReq.
func (s *Responder) OnRequest(from ids.ID, m wire.QReadReq) {
	v, ok := s.store.Get(m.Key)
	s.ctx.Send(from, wire.QReadReply{
		Key: m.Key, RID: m.RID, From: s.ctx.ID(),
		Version: s.store.Version(m.Key), Exists: ok, Value: v,
	})
}
