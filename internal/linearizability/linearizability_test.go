package linearizability

import (
	"testing"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func w(key uint64, val string, start, end int) Op {
	return Op{Kind: Write, Key: key, Input: val, Start: ms(start), End: ms(end)}
}

func r(key uint64, out string, start, end int) Op {
	return Op{Kind: Read, Key: key, Output: out, Start: ms(start), End: ms(end)}
}

func check(ops ...Op) Result {
	h := &History{}
	for _, op := range ops {
		h.Add(op)
	}
	return h.Check()
}

func TestEmptyHistoryOK(t *testing.T) {
	if !check().OK {
		t.Error("empty history is trivially linearizable")
	}
}

func TestSequentialReadAfterWrite(t *testing.T) {
	if !check(w(1, "a", 0, 1), r(1, "a", 2, 3)).OK {
		t.Error("sequential write-then-read must pass")
	}
}

func TestStaleReadAfterWriteFails(t *testing.T) {
	res := check(w(1, "a", 0, 1), r(1, "", 2, 3))
	if res.OK {
		t.Error("reading the pre-write value after the write completed must fail")
	}
	if res.BadKey != 1 {
		t.Errorf("bad key = %d", res.BadKey)
	}
}

func TestConcurrentWriteReadEitherValue(t *testing.T) {
	// Read overlaps the write: both "" and "a" are legal outcomes.
	if !check(w(1, "a", 0, 10), r(1, "a", 5, 6)).OK {
		t.Error("overlapping read may see the new value")
	}
	if !check(w(1, "a", 0, 10), r(1, "", 5, 6)).OK {
		t.Error("overlapping read may see the old value")
	}
}

func TestReadYourWritesViolation(t *testing.T) {
	// Two sequential reads observing values in an order inconsistent with
	// the single write order.
	res := check(
		w(1, "a", 0, 1),
		w(1, "b", 2, 3),
		r(1, "b", 4, 5),
		r(1, "a", 6, 7), // regression: saw b then a with no writer
	)
	if res.OK {
		t.Error("value regression must fail")
	}
}

func TestConcurrentWritesAnyOrder(t *testing.T) {
	// Two overlapping writes then a read: the read may see either, since
	// either write order is a valid linearization.
	if !check(w(1, "a", 0, 10), w(1, "b", 0, 10), r(1, "a", 11, 12)).OK {
		t.Error("read of first concurrent write must pass")
	}
	if !check(w(1, "a", 0, 10), w(1, "b", 0, 10), r(1, "b", 11, 12)).OK {
		t.Error("read of second concurrent write must pass")
	}
	// But both reads in sequence cannot see a then b then a.
	res := check(
		w(1, "a", 0, 10), w(1, "b", 0, 10),
		r(1, "a", 11, 12), r(1, "b", 13, 14), r(1, "a", 15, 16),
	)
	if res.OK {
		t.Error("a→b→a without intervening writes must fail")
	}
}

func TestKeysIndependent(t *testing.T) {
	// A violation on key 2 must be found even with clean key-1 traffic.
	res := check(
		w(1, "x", 0, 1), r(1, "x", 2, 3),
		w(2, "y", 0, 1), r(2, "", 2, 3),
	)
	if res.OK || res.BadKey != 2 {
		t.Errorf("per-key violation missed: %+v", res)
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// w(a) finishes before w(b) starts; late read must not see a.
	res := check(
		w(1, "a", 0, 1),
		w(1, "b", 2, 3),
		r(1, "a", 4, 5),
	)
	if res.OK {
		t.Error("read of an overwritten value after both writes must fail")
	}
}

func TestManyConcurrentOpsSearch(t *testing.T) {
	// A batch of overlapping writes and one read of the "last" value:
	// exercises the memoized search without blowing up.
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, Op{Kind: Write, Key: 1, Input: string(rune('a' + i)), Start: 0, End: ms(100)})
	}
	ops = append(ops, r(1, "e", 101, 102))
	res := check(ops...)
	if !res.OK {
		t.Error("any concurrent write may linearize last")
	}
	if res.Explored == 0 {
		t.Error("search effort not recorded")
	}
}

func TestPanicsOnOversizedKeyHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized per-key history should panic")
		}
	}()
	var ops []Op
	for i := 0; i < 25; i++ {
		ops = append(ops, w(1, "v", i*2, i*2+1))
	}
	check(ops...)
}

func TestOpString(t *testing.T) {
	if s := w(1, "v", 0, 1).String(); s == "" {
		t.Error("empty Write string")
	}
	if s := r(1, "v", 0, 1).String(); s == "" {
		t.Error("empty Read string")
	}
}

func BenchmarkCheckContendedHistory(b *testing.B) {
	// 12 overlapping ops on one key: a realistic hot check.
	var ops []Op
	for i := 0; i < 8; i++ {
		ops = append(ops, Op{Kind: Write, Key: 1, Input: string(rune('a' + i)), Start: ms(i), End: ms(i + 4)})
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, Op{Kind: Read, Key: 1, Output: string(rune('a' + i + 3)), Start: ms(i + 5), End: ms(i + 7)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := &History{}
		for _, op := range ops {
			h.Add(op)
		}
		h.Check()
	}
}
