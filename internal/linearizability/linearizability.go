// Package linearizability checks recorded client histories against the
// linearizability of a single register per key — the correctness criterion
// the paper's protocols promise ("PigPaxos provides linearizability of all
// operations", §2.3).
//
// The checker implements the Wing & Gong / Lowe-style exhaustive search per
// key: find a total order of operations that (1) respects real-time order
// (an op that completed before another began must precede it) and (2) is
// legal for a read/write register. Histories are split by key first, since
// operations on different keys are independent; the search is exponential
// in the number of overlapping operations per key, so tests keep per-key
// concurrency modest.
package linearizability

import (
	"fmt"
	"sort"
	"time"
)

// OpKind is the operation type of a history event.
type OpKind uint8

// Operation kinds.
const (
	Read OpKind = iota
	Write
)

// Op is one completed client operation.
type Op struct {
	Kind   OpKind
	Key    uint64
	Input  string // value written (Write)
	Output string // value observed (Read); "" means key absent
	Start  time.Duration
	End    time.Duration
	Client uint64
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o.Kind == Write {
		return fmt.Sprintf("W(k%d,%q)@[%v,%v]", o.Key, o.Input, o.Start, o.End)
	}
	return fmt.Sprintf("R(k%d)=%q@[%v,%v]", o.Key, o.Output, o.Start, o.End)
}

// History accumulates completed operations.
type History struct {
	ops []Op
}

// Add appends one completed operation.
func (h *History) Add(op Op) { h.ops = append(h.ops, op) }

// Ops returns the recorded operations (shared slice; callers must not
// mutate). Failure diagnosis uses it to dump a failing key's sub-history.
func (h *History) Ops() []Op { return h.ops }

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Result reports a linearizability check outcome.
type Result struct {
	OK       bool
	BadKey   uint64 // key whose sub-history failed (when !OK)
	Checked  int    // operations examined
	Explored int    // search states visited (cost indicator)
}

// Check verifies the whole history, key by key.
func (h *History) Check() Result {
	byKey := make(map[uint64][]Op)
	for _, op := range h.ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	res := Result{OK: true, Checked: len(h.ops)}
	// Deterministic key order for reproducible failure reports.
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		explored, ok := checkKey(byKey[k])
		res.Explored += explored
		if !ok {
			res.OK = false
			res.BadKey = k
			return res
		}
	}
	return res
}

// checkKey searches for a legal linearization of one key's operations.
func checkKey(ops []Op) (explored int, ok bool) {
	n := len(ops)
	if n == 0 {
		return 0, true
	}
	if n > 24 {
		// The bitmask search carries one uint32 per state; histories this
		// large should be split by the caller.
		panic("linearizability: per-key history too large (>24 ops)")
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })

	// precedes[i][j]: op i completed no later than op j started (real-time
	// edge). The boundary case End == Start counts as ordered: a client
	// that issues its next op upon receiving a reply produces exactly
	// that pattern on a discrete clock, and those ops are sequential.
	precedes := make([][]bool, n)
	for i := range precedes {
		precedes[i] = make([]bool, n)
		for j := range precedes[i] {
			precedes[i][j] = i != j && ops[i].End <= ops[j].Start
		}
	}

	type state struct {
		taken uint32 // bitmask of linearized ops
		value string // register value after the prefix
	}
	seen := make(map[state]bool)
	var dfs func(taken uint32, value string) bool
	dfs = func(taken uint32, value string) bool {
		if taken == uint32(1<<n)-1 {
			return true
		}
		st := state{taken, value}
		if seen[st] {
			return false
		}
		seen[st] = true
		explored++
		for i := 0; i < n; i++ {
			if taken&(1<<i) != 0 {
				continue
			}
			// Op i is eligible only if every op that must precede it (by
			// real time) is already linearized.
			eligible := true
			for j := 0; j < n; j++ {
				if j != i && taken&(1<<j) == 0 && precedes[j][i] {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			op := ops[i]
			if op.Kind == Read {
				if op.Output != value {
					continue // illegal read here
				}
				if dfs(taken|1<<i, value) {
					return true
				}
			} else {
				if dfs(taken|1<<i, op.Input) {
					return true
				}
			}
		}
		return false
	}
	return explored, dfs(0, "")
}
