package ids

import (
	"testing"
	"testing/quick"
)

func TestNewIDRoundTrip(t *testing.T) {
	cases := []struct{ zone, node int }{
		{1, 1}, {1, 25}, {3, 5}, {0xffff, 0xffff}, {0, 1},
	}
	for _, c := range cases {
		id := NewID(c.zone, c.node)
		if id.Zone() != c.zone || id.Node() != c.node {
			t.Errorf("NewID(%d,%d) round-trips to (%d,%d)", c.zone, c.node, id.Zone(), id.Node())
		}
	}
}

func TestIDString(t *testing.T) {
	if got := NewID(2, 7).String(); got != "2.7" {
		t.Errorf("String() = %q, want 2.7", got)
	}
}

func TestIDZero(t *testing.T) {
	var id ID
	if !id.IsZero() {
		t.Error("zero ID should report IsZero")
	}
	if NewID(1, 1).IsZero() {
		t.Error("1.1 should not be zero")
	}
}

func TestNewIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewID(70000, 1) should panic")
		}
	}()
	NewID(70000, 1)
}

func TestSort(t *testing.T) {
	s := []ID{NewID(2, 1), NewID(1, 3), NewID(1, 1)}
	Sort(s)
	want := []ID{NewID(1, 1), NewID(1, 3), NewID(2, 1)}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("Sort: got %v want %v", s, want)
		}
	}
}

func TestBallotRoundTrip(t *testing.T) {
	id := NewID(1, 9)
	b := NewBallot(42, id)
	if b.N() != 42 || b.ID() != id {
		t.Errorf("ballot round-trip: got n=%d id=%v", b.N(), b.ID())
	}
}

func TestBallotOrdering(t *testing.T) {
	a := NewBallot(1, NewID(1, 2))
	b := NewBallot(1, NewID(1, 3))
	c := NewBallot(2, NewID(1, 1))
	if !(a < b) {
		t.Error("same sequence: higher node ID should win")
	}
	if !(b < c) {
		t.Error("higher sequence should dominate node ID")
	}
}

func TestBallotNext(t *testing.T) {
	id := NewID(1, 5)
	b := NewBallot(7, NewID(1, 9))
	n := b.Next(id)
	if n <= b {
		t.Error("Next must produce a strictly greater ballot")
	}
	if n.ID() != id || n.N() != 8 {
		t.Errorf("Next: got n=%d id=%v, want 8 and %v", n.N(), n.ID(), id)
	}
}

func TestBallotZero(t *testing.T) {
	var b Ballot
	if !b.IsZero() {
		t.Error("zero ballot should report IsZero")
	}
	if NewBallot(0, NewID(1, 1)).IsZero() {
		t.Error("ballot with an owner is not zero")
	}
}

func TestBallotString(t *testing.T) {
	if got := NewBallot(3, NewID(1, 2)).String(); got != "3.1.2" {
		t.Errorf("String() = %q, want 3.1.2", got)
	}
}

// Property: for any two distinct (n, id) pairs the ballots differ, and
// ordering is lexicographic on (n, id).
func TestBallotOrderProperty(t *testing.T) {
	f := func(n1, n2 uint16, z1, z2, d1, d2 uint8) bool {
		b1 := NewBallot(int(n1), NewID(int(z1), int(d1)))
		b2 := NewBallot(int(n2), NewID(int(z2), int(d2)))
		switch {
		case n1 != n2:
			return (b1 < b2) == (n1 < n2)
		case b1.ID() != b2.ID():
			return (b1 < b2) == (b1.ID() < b2.ID())
		default:
			return b1 == b2
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Next always increases the ballot and transfers ownership.
func TestBallotNextProperty(t *testing.T) {
	f := func(n uint16, z, d uint8) bool {
		id := NewID(int(z)+1, int(d)+1)
		b := NewBallot(int(n), NewID(1, 1))
		nb := b.Next(id)
		return nb > b && nb.ID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
