// Package ids defines node identifiers and Paxos ballot numbers shared by
// every protocol in the repository.
//
// A node identity carries a zone (region/datacenter) and an in-zone node
// number, mirroring the "zone.node" identifiers used by the Paxi framework
// the paper builds on. Ballots embed the proposer identity so that ballots
// from distinct nodes never compare equal.
package ids

import (
	"fmt"
	"sort"
)

// ID identifies a node in the cluster. The zero ID is reserved to mean
// "no node".
type ID uint32

// NewID builds an ID from a zone number and an in-zone node number.
// Zones and nodes are 1-based; both must fit in 16 bits.
func NewID(zone, node int) ID {
	if zone < 0 || zone > 0xffff || node < 0 || node > 0xffff {
		panic(fmt.Sprintf("ids: zone %d or node %d out of range", zone, node))
	}
	return ID(uint32(zone)<<16 | uint32(node))
}

// Zone returns the zone (region) component of the ID.
func (i ID) Zone() int { return int(i >> 16) }

// Node returns the in-zone node number of the ID.
func (i ID) Node() int { return int(i & 0xffff) }

// IsZero reports whether the ID is the reserved "no node" value.
func (i ID) IsZero() bool { return i == 0 }

// String renders the ID in Paxi's "zone.node" notation.
func (i ID) String() string {
	return fmt.Sprintf("%d.%d", i.Zone(), i.Node())
}

// Sort orders a slice of IDs in ascending numeric order, in place.
func Sort(s []ID) {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
}

// Ballot is a Paxos ballot number: a monotonically increasing sequence
// number combined with the proposing node's ID so that ballots are totally
// ordered and unique per proposer. Higher ballots take precedence.
//
// Layout: [ 32-bit sequence | 32-bit node ID ].
type Ballot uint64

// NewBallot builds a ballot from a sequence number and proposer ID.
func NewBallot(n int, id ID) Ballot {
	if n < 0 || n > 0xffffffff {
		panic(fmt.Sprintf("ids: ballot sequence %d out of range", n))
	}
	return Ballot(uint64(n)<<32 | uint64(id))
}

// N returns the sequence component of the ballot.
func (b Ballot) N() int { return int(b >> 32) }

// ID returns the proposer identity embedded in the ballot.
func (b Ballot) ID() ID { return ID(b & 0xffffffff) }

// Next returns the smallest ballot strictly greater than b that is owned by
// id. It is how a node bids for leadership after observing ballot b.
func (b Ballot) Next(id ID) Ballot {
	return NewBallot(b.N()+1, id)
}

// IsZero reports whether the ballot is the initial (never proposed) ballot.
func (b Ballot) IsZero() bool { return b == 0 }

// String renders the ballot as "n.zone.node".
func (b Ballot) String() string {
	return fmt.Sprintf("%d.%s", b.N(), b.ID())
}
