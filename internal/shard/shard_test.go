package shard

import (
	"math/rand"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

func TestRouterRange(t *testing.T) {
	for _, s := range []int{1, 2, 4, 8, 13} {
		r := NewRouter(s)
		for key := uint64(0); key < 10000; key++ {
			k := r.Shard(key)
			if k < 0 || k >= s {
				t.Fatalf("S=%d key=%d: shard %d out of range", s, key, k)
			}
		}
	}
}

func TestRouterDeterministic(t *testing.T) {
	a, b := NewRouter(8), NewRouter(8)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("routers disagree on key %d", key)
		}
	}
}

// Sequential key spaces (the workload generator's common case) must spread
// evenly — the splitmix64 finalizer, not the raw modulus, carries this.
func TestRouterBalance(t *testing.T) {
	const keys = 100000
	for _, s := range []int{2, 4, 8} {
		r := NewRouter(s)
		counts := make([]int, s)
		for key := uint64(0); key < keys; key++ {
			counts[r.Shard(key)]++
		}
		want := keys / s
		for k, c := range counts {
			if c < want*9/10 || c > want*11/10 {
				t.Errorf("S=%d shard %d holds %d keys, want %d±10%%", s, k, c, want)
			}
		}
	}
}

func TestRouterZeroValue(t *testing.T) {
	var r Router
	if r.Shard(12345) != 0 || r.Shards() != 1 {
		t.Fatalf("zero-value router must route everything to shard 0")
	}
	if NewRouter(0).Shards() != 1 || NewRouter(-3).Shards() != 1 {
		t.Fatalf("NewRouter must clamp to 1 shard")
	}
}

// Satellite: the router hot path allocates zero per op, same discipline as
// the wire codec assertions.
func TestRouterZeroAllocs(t *testing.T) {
	r := NewRouter(8)
	var sink int
	allocs := testing.AllocsPerRun(1000, func() {
		sink += r.Shard(uint64(sink) * 2654435761)
	})
	if allocs != 0 {
		t.Fatalf("Router.Shard allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func TestPlanDisjointWhenDivisible(t *testing.T) {
	cc := config.NewLAN(12)
	m := Plan(cc, 4, 0)
	if err := m.Validate(cc); err != nil {
		t.Fatal(err)
	}
	seen := make(map[ids.ID]int)
	for _, d := range m.Shards {
		if len(d.Members) != 3 {
			t.Fatalf("shard %d has %d members, want 3", d.Index, len(d.Members))
		}
		for _, mem := range d.Members {
			seen[mem]++
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("node %v replicates %d shards; 12 nodes / 4 shards should be disjoint", id, c)
		}
	}
}

func TestPlanLeaderSpreading(t *testing.T) {
	cc := config.NewLAN(6)
	m := Plan(cc, 4, 3) // overlapping blocks of 3 over 6 nodes
	if err := m.Validate(cc); err != nil {
		t.Fatal(err)
	}
	duty := make(map[ids.ID]int)
	for _, d := range m.Shards {
		duty[d.Leader]++
	}
	for id, c := range duty {
		if c > 1 {
			t.Errorf("node %v leads %d of 4 shards over 6 nodes; greedy spread should cap at 1", id, c)
		}
	}
}

func TestPlanSmallCluster(t *testing.T) {
	cc := config.NewLAN(3)
	m := Plan(cc, 4, 0)
	if err := m.Validate(cc); err != nil {
		t.Fatal(err)
	}
	for _, d := range m.Shards {
		if len(d.Members) != 3 {
			t.Fatalf("shard %d: want full 3-node membership, got %d", d.Index, len(d.Members))
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	cc := config.NewWAN3(9)
	a, b := Plan(cc, 4, 0), Plan(cc, 4, 0)
	for k := range a.Shards {
		if a.Shards[k].Leader != b.Shards[k].Leader {
			t.Fatalf("shard %d leaders differ across identical plans", k)
		}
		for i := range a.Shards[k].Members {
			if a.Shards[k].Members[i] != b.Shards[k].Members[i] {
				t.Fatalf("shard %d membership differs across identical plans", k)
			}
		}
	}
}

func TestPlanPlacedPrefersLowLatencyZone(t *testing.T) {
	cc := config.NewWAN3(9) // zones 1,2,3 round-robin
	sig := map[int]time.Duration{
		config.ZoneVirginia:   30 * time.Millisecond,
		config.ZoneCalifornia: 5 * time.Millisecond,
		config.ZoneOregon:     12 * time.Millisecond,
	}
	m := PlanPlaced(cc, 1, 9, sig)
	if err := m.Validate(cc); err != nil {
		t.Fatal(err)
	}
	if z := cc.ZoneOf(m.Shards[0].Leader); z != config.ZoneCalifornia {
		t.Fatalf("leader in zone %d, want California (lowest latency signal)", z)
	}
	// Empty signal degrades to Plan.
	if got, want := PlanPlaced(cc, 2, 0, nil), Plan(cc, 2, 0); got.Shards[0].Leader != want.Shards[0].Leader {
		t.Fatalf("nil signal must reduce PlanPlaced to Plan")
	}
}

func TestLeaderPlacementFlip(t *testing.T) {
	cc := config.NewWAN3(9)
	d := Plan(cc, 1, 9).Shards[0]
	flipped, ok := LeaderPlacementFlip(cc, d, config.ZoneOregon)
	if !ok {
		t.Fatal("flip to a populated zone must succeed")
	}
	if z := cc.ZoneOf(flipped.Leader); z != config.ZoneOregon {
		t.Fatalf("flipped leader in zone %d, want Oregon", z)
	}
	if _, ok := LeaderPlacementFlip(cc, d, 99); ok {
		t.Fatal("flip to an absent zone must fail")
	}
}

func TestMapOfAndShardsOn(t *testing.T) {
	cc := config.NewLAN(12)
	m := Plan(cc, 4, 0)
	for key := uint64(0); key < 100; key++ {
		if got, want := m.Of(key).Index, m.Router.Shard(key); got != want {
			t.Fatalf("Of(%d).Index=%d, router says %d", key, got, want)
		}
	}
	for _, id := range cc.Nodes {
		if n := len(m.ShardsOn(id)); n != 1 {
			t.Fatalf("node %v hosts %d shards in a disjoint plan, want 1", id, n)
		}
	}
}

// recorder captures dispatched messages.
type recorder struct {
	from ids.ID
	msgs []wire.Msg
}

func (r *recorder) OnMessage(from ids.ID, m wire.Msg) {
	r.from = from
	r.msgs = append(r.msgs, m)
}

func TestDispatcherRouting(t *testing.T) {
	d := NewDispatcher(4)
	recs := make([]*recorder, 4)
	for k := range recs {
		recs[k] = &recorder{}
		d.Register(k, recs[k])
	}
	src := ids.NewID(1, 7)
	inner := wire.Request{Cmd: kvstore.Command{Op: kvstore.Put, Key: 9, ClientID: 7, Seq: 1}}

	d.OnMessage(src, wire.Sharded{Shard: 2, Inner: inner})       // value form
	d.OnMessage(src, &wire.Sharded{Shard: 3, Inner: inner})      // pointer (scratch) form
	d.OnMessage(src, inner)                                      // untagged → shard 0
	d.OnMessage(src, wire.Sharded{Shard: 9, Inner: inner})       // out of range → dropped
	for k, want := range []int{1, 0, 1, 1} {
		if len(recs[k].msgs) != want {
			t.Fatalf("shard %d saw %d msgs, want %d", k, len(recs[k].msgs), want)
		}
	}
	if recs[2].from != src {
		t.Fatalf("dispatcher must preserve sender")
	}
	if _, ok := recs[2].msgs[0].(wire.Request); !ok {
		t.Fatalf("handler must see the unwrapped inner message, got %T", recs[2].msgs[0])
	}
}

func TestDispatcherUnregisteredShardDropped(t *testing.T) {
	d := NewDispatcher(2)
	rec := &recorder{}
	d.Register(0, rec)
	d.OnMessage(ids.NewID(1, 1), wire.Sharded{Shard: 1, Inner: wire.Heartbeat{}})
	if len(rec.msgs) != 0 {
		t.Fatal("traffic for an unregistered shard must be dropped, not misrouted")
	}
}

func TestDispatcherZeroAllocs(t *testing.T) {
	d := NewDispatcher(4)
	rec := &recorder{msgs: make([]wire.Msg, 0, 1<<20)}
	for k := 0; k < 4; k++ {
		d.Register(k, rec)
	}
	src := ids.NewID(1, 1)
	env := &wire.Sharded{Shard: 2, Inner: wire.Heartbeat{Ballot: 7}}
	allocs := testing.AllocsPerRun(1000, func() {
		d.OnMessage(src, env)
	})
	if allocs != 0 {
		t.Fatalf("Dispatcher.OnMessage allocates %.1f/op, want 0", allocs)
	}
}

// sendRecorder records what a wrapped context sends.
type sendRecorder struct {
	node.Context
	to   []ids.ID
	msgs []wire.Msg
}

func (s *sendRecorder) ID() ids.ID { return ids.NewID(1, 1) }
func (s *sendRecorder) Send(to ids.ID, m wire.Msg) {
	s.to = append(s.to, to)
	s.msgs = append(s.msgs, m)
}
func (s *sendRecorder) Broadcast(to []ids.ID, m wire.Msg) {
	for _, id := range to {
		s.Send(id, m)
	}
}

func TestWrapTagsSends(t *testing.T) {
	rec := &sendRecorder{}
	ctx := Wrap(rec, 3)
	dst := ids.NewID(1, 2)
	ctx.Send(dst, wire.Heartbeat{Ballot: 1})
	ctx.Broadcast([]ids.ID{dst, ids.NewID(1, 3)}, wire.Heartbeat{Ballot: 2})
	if len(rec.msgs) != 3 {
		t.Fatalf("want 3 sends, got %d", len(rec.msgs))
	}
	for i, m := range rec.msgs {
		sm, ok := m.(wire.Sharded)
		if !ok {
			t.Fatalf("send %d: not a Sharded envelope: %T", i, m)
		}
		if sm.Shard != 3 {
			t.Fatalf("send %d tagged shard %d, want 3", i, sm.Shard)
		}
		if _, ok := sm.Inner.(wire.Heartbeat); !ok {
			t.Fatalf("send %d: inner %T, want Heartbeat", i, sm.Inner)
		}
	}
	if ctx.ID() != rec.ID() {
		t.Fatal("Wrap must pass through identity")
	}
}
