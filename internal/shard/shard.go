// Package shard partitions the uint64 key space across S independent
// consensus groups. A single replicated log is a hard serialization
// ceiling no relay fan-out can lift (the leader still sequences every
// command); sharding is the orthogonal axis: S groups, each with its own
// leader and relay plane, multiplexed over one set of physical nodes so
// aggregate throughput scales with S instead of with single-leader CPU.
//
// The package supplies the three pieces every layer above shares:
//
//   - Router: a deterministic, allocation-free hash from key to shard, so
//     clients, the harness, and chaos schedules all agree on placement
//     without coordination.
//   - Map/Plan: per-shard group descriptors — which nodes replicate shard
//     k and which of them leads — computed from the cluster config so every
//     process derives the identical layout.
//   - Wrap/Dispatcher: the wire-level multiplexing. Each physical node
//     keeps ONE endpoint and ONE event loop; per-shard replicas see a
//     node.Context whose sends are tagged with their shard, and the
//     dispatcher on the receiving side unwraps the tag and hands the inner
//     message to the right replica. The envelope rides the pooled codec at
//     zero allocations per op.
package shard

import (
	"fmt"
	"sort"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

// ---------------------------------------------------------------- router --

// Router deterministically maps uint64 keys to shard indices. The zero
// value routes everything to shard 0; use NewRouter for S > 1.
type Router struct {
	n uint64
}

// NewRouter builds a router over n shards (clamped to at least 1).
func NewRouter(n int) Router {
	if n < 1 {
		n = 1
	}
	return Router{n: uint64(n)}
}

// Shards returns the number of shards the router distributes over.
func (r Router) Shards() int {
	if r.n == 0 {
		return 1
	}
	return int(r.n)
}

// Mix64 is the splitmix64 finalizer: a cheap bijective mixer whose output
// bits all depend on all input bits. The key router runs every key through
// it before the shard modulus, and the chaos explorer derives per-schedule
// RNG seeds with it (distinct inputs can never collide the way shifted-sum
// seed derivations do).
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Shard maps a key to its shard index in [0, Shards()). Keys are finalized
// through splitmix64 before the modulus so sequential key spaces (the
// common workload-generator pattern) spread evenly rather than striping.
// The hot path performs no allocation; see the AllocsPerRun test.
func (r Router) Shard(key uint64) int {
	if r.n <= 1 {
		return 0
	}
	return int(Mix64(key) % r.n)
}

// ------------------------------------------------------------ placement --

// Descriptor names one shard's consensus group: the member subset that
// replicates it and which member leads.
type Descriptor struct {
	// Index is the shard number, equal to the position in Map.Shards.
	Index int
	// Members lists the replicas of this shard in stable order. Always a
	// subset of the cluster membership, length ≥ 3 (or the full cluster
	// when it is smaller than 3).
	Members []ids.ID
	// Leader is the initial leader, one of Members.
	Leader ids.ID
}

// Contains reports whether id replicates this shard.
func (d Descriptor) Contains(id ids.ID) bool {
	for _, m := range d.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Map is a complete sharding layout: the router plus one descriptor per
// shard. It is pure data — every process that derives it from the same
// cluster config gets a bit-identical layout.
type Map struct {
	Router Router
	Shards []Descriptor
}

// NumShards returns the shard count.
func (m Map) NumShards() int { return len(m.Shards) }

// Of returns the descriptor owning key.
func (m Map) Of(key uint64) Descriptor { return m.Shards[m.Router.Shard(key)] }

// ShardsOn returns the shard indices node id replicates, ascending.
func (m Map) ShardsOn(id ids.ID) []int {
	var out []int
	for _, d := range m.Shards {
		if d.Contains(id) {
			out = append(out, d.Index)
		}
	}
	return out
}

// Leaders returns each shard's leader, indexed by shard.
func (m Map) Leaders() []ids.ID {
	out := make([]ids.ID, len(m.Shards))
	for i, d := range m.Shards {
		out[i] = d.Leader
	}
	return out
}

// Validate checks layout invariants: every shard non-empty, members drawn
// from the cluster, leader a member.
func (m Map) Validate(cc config.Cluster) error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: empty map")
	}
	for _, d := range m.Shards {
		if len(d.Members) == 0 {
			return fmt.Errorf("shard %d: no members", d.Index)
		}
		seen := make(map[ids.ID]bool, len(d.Members))
		for _, mem := range d.Members {
			if !cc.Contains(mem) {
				return fmt.Errorf("shard %d: member %v not in cluster", d.Index, mem)
			}
			if seen[mem] {
				return fmt.Errorf("shard %d: duplicate member %v", d.Index, mem)
			}
			seen[mem] = true
		}
		if !d.Contains(d.Leader) {
			return fmt.Errorf("shard %d: leader %v is not a member", d.Index, d.Leader)
		}
	}
	return nil
}

// Plan computes the sharding layout for cc with s shards. size fixes each
// shard's member count; size <= 0 picks max(3, N/s) — disjoint groups when
// the cluster is large enough (each leader then pays no follower duty for
// other shards, the condition for near-linear scaling), graceful overlap
// when it is not.
//
// Shard k's members are the contiguous block of cc.Nodes starting at
// (k*size) mod N, so blocks tile the membership; its leader is chosen
// greedily to spread leader duty: the member currently leading the fewest
// shards, ties broken by membership order. The whole computation is a pure
// function of (cc.Nodes, s, size).
func Plan(cc config.Cluster, s, size int) Map {
	n := len(cc.Nodes)
	if s < 1 {
		s = 1
	}
	if size <= 0 {
		size = n / s
		if size < 3 {
			size = 3
		}
	}
	if size > n {
		size = n
	}
	m := Map{Router: NewRouter(s), Shards: make([]Descriptor, s)}
	duty := make(map[ids.ID]int, n)
	for k := 0; k < s; k++ {
		members := make([]ids.ID, size)
		for i := 0; i < size; i++ {
			members[i] = cc.Nodes[(k*size+i)%n]
		}
		leader := members[0]
		for _, mem := range members {
			if duty[mem] < duty[leader] {
				leader = mem
			}
		}
		duty[leader]++
		m.Shards[k] = Descriptor{Index: k, Members: members, Leader: leader}
	}
	return m
}

// PlanPlaced is Plan with latency-aware leader placement: zoneLatency
// scores each zone (e.g. the WAN harness's measured per-region client RTT
// or commit latency), and within each shard the leader is drawn from the
// lowest-scoring zone present among its members. Leader-duty spreading
// still applies as the tiebreak within the preferred zone, so placement
// flips stay deterministic. A nil or empty signal degrades to Plan.
func PlanPlaced(cc config.Cluster, s, size int, zoneLatency map[int]time.Duration) Map {
	m := Plan(cc, s, size)
	if len(zoneLatency) == 0 {
		return m
	}
	// Rank zones by ascending latency; unknown zones rank last, after
	// every measured one, in zone order for determinism.
	rank := make(map[int]int)
	var zones []int
	for z := range zoneLatency {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool {
		if zoneLatency[zones[i]] != zoneLatency[zones[j]] {
			return zoneLatency[zones[i]] < zoneLatency[zones[j]]
		}
		return zones[i] < zones[j]
	})
	for i, z := range zones {
		rank[z] = i
	}
	unknown := len(zones)
	zoneRank := func(id ids.ID) int {
		if r, ok := rank[cc.ZoneOf(id)]; ok {
			return r
		}
		return unknown
	}
	duty := make(map[ids.ID]int, len(cc.Nodes))
	for k := range m.Shards {
		d := &m.Shards[k]
		leader := d.Members[0]
		for _, mem := range d.Members {
			lr, mr := zoneRank(leader), zoneRank(mem)
			if mr < lr || (mr == lr && duty[mem] < duty[leader]) {
				leader = mem
			}
		}
		duty[leader]++
		d.Leader = leader
	}
	return m
}

// LeaderPlacementFlip returns a copy of d with the leadership moved to the
// preferred member in zone z (fewest-duty style tiebreak is irrelevant for
// a single shard: the first member in z wins). It is the migration
// primitive: chaos schedules and operators express "move shard k's leader
// to region z" as a flip, and the consensus layer realizes it by
// campaigning from the returned leader. Returns ok=false when no member of
// d lives in z, leaving the descriptor unchanged.
func LeaderPlacementFlip(cc config.Cluster, d Descriptor, z int) (Descriptor, bool) {
	for _, mem := range d.Members {
		if cc.ZoneOf(mem) == z {
			d.Leader = mem
			return d, true
		}
	}
	return d, false
}

// --------------------------------------------------------- multiplexing --

// Wrap returns a node.Context whose Send and Broadcast tag every outgoing
// message with shard k, so S per-shard replicas can share one endpoint.
// All other Context methods pass through: the replicas share the node's
// virtual CPU and clock, which is the point — sharding must pay for
// multiplexing honestly in the simulator's cost model.
func Wrap(ctx node.Context, k int) node.Context {
	return &wrapped{Context: ctx, shard: uint16(k)}
}

type wrapped struct {
	node.Context
	shard uint16
}

func (w *wrapped) Send(to ids.ID, m wire.Msg) {
	w.Context.Send(to, wire.Sharded{Shard: w.shard, Inner: m})
}

func (w *wrapped) Broadcast(to []ids.ID, m wire.Msg) {
	w.Context.Broadcast(to, wire.Sharded{Shard: w.shard, Inner: m})
}

// Dispatcher demultiplexes one node's inbound traffic to its per-shard
// replicas. Register a handler per hosted shard, install the Dispatcher as
// the node's single wire handler, and Sharded envelopes route by tag.
// Untagged messages go to shard 0 so an unsharded peer (or legacy client)
// still reaches a single-shard node.
type Dispatcher struct {
	handlers []node.Handler
}

// NewDispatcher builds a dispatcher for s shards; slots start empty.
func NewDispatcher(s int) *Dispatcher {
	if s < 1 {
		s = 1
	}
	return &Dispatcher{handlers: make([]node.Handler, s)}
}

// Register installs h as the handler for shard k. Nodes that do not host a
// shard simply never register it; traffic for it is dropped like traffic
// for an unknown node.
func (d *Dispatcher) Register(k int, h node.Handler) {
	d.handlers[k] = h
}

// OnMessage implements node.Handler. The pooled decode path hands the
// envelope over as *wire.Sharded (scratch-boxed); the value form shows up
// from in-process senders. Both unwrap without allocating.
func (d *Dispatcher) OnMessage(from ids.ID, m wire.Msg) {
	var k uint16
	var inner wire.Msg
	switch sm := m.(type) {
	case *wire.Sharded:
		k, inner = sm.Shard, sm.Inner
	case wire.Sharded:
		k, inner = sm.Shard, sm.Inner
	default:
		k, inner = 0, m
	}
	if int(k) >= len(d.handlers) || d.handlers[k] == nil {
		return
	}
	d.handlers[k].OnMessage(from, inner)
}
