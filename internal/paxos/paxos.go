// Package paxos implements Multi-Paxos with a stable leader, the baseline
// protocol of the paper (Figure 2): phase-1 establishes leadership once,
// phase-2 runs per consensus instance, and phase-3 commits are piggybacked
// onto subsequent phase-2 traffic (or onto heartbeats when idle).
//
// The communication plane is abstracted behind Disseminator, which is the
// only part PigPaxos replaces — mirroring the paper's observation that its
// implementation "required almost no changes to the core Paxos code, and
// focused only on the message passing layer" (§5.1). The decision logic
// (ballots, quorums, log, execution) is identical under both planes.
//
// The leader additionally supports command batching with a bounded
// pipelining window (MaxBatchSize / BatchDelay / MaxInFlight): up to
// MaxBatchSize client commands share one log slot, amortizing the fan-out
// round — the per-message leader cost the paper identifies as the
// bottleneck — over the whole batch. Defaults keep the paper's unbatched
// one-command-per-slot behaviour.
package paxos

import (
	"math"
	"sort"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/rlog"
	"pigpaxos/internal/wal"
	"pigpaxos/internal/wire"
)

// Disseminator abstracts leader fan-out: how a message reaches every
// follower. The direct implementation sends N−1 unicasts; PigPaxos routes
// through relay groups. Fan-in (votes back to the leader) arrives as
// ordinary messages and needs no abstraction here.
type Disseminator interface {
	// FanOut delivers m to every follower.
	FanOut(m wire.Msg)
}

// Direct is the classical Paxos communication plane: unicast to every peer.
// With Thrifty set it unicasts phase-2 messages only to enough followers to
// form Q2 (the thrifty optimization discussed in §2.2, at the cost of
// stalling when a contacted node is slow or crashed).
type Direct struct {
	Ctx     node.Context
	Peers   []ids.ID
	Thrifty bool
	Q2      int
}

// FanOut implements Disseminator. The broadcast lets live transports
// encode m once for the whole fan-out; the simulator still charges the
// paper's per-recipient CPU cost.
func (d *Direct) FanOut(m wire.Msg) {
	peers := d.Peers
	if d.Thrifty && d.Q2 > 0 {
		if _, ok := m.(wire.P2a); ok && d.Q2-1 < len(peers) {
			// Contact only Q2−1 followers (self-vote completes Q2).
			peers = peers[:d.Q2-1]
		}
	}
	d.Ctx.Broadcast(peers, m)
}

// Config parameterizes a replica.
type Config struct {
	// Cluster is the full membership and topology.
	Cluster config.Cluster
	// ID is this replica's identity.
	ID ids.ID
	// InitialLeader, when equal to ID, makes this replica bid for
	// leadership immediately at Start (the experiments run with a
	// pre-established stable leader, as in the paper).
	InitialLeader ids.ID
	// Q1, Q2 are flexible quorum sizes; zero means classical majorities.
	Q1, Q2 int
	// Thrifty enables the thrifty phase-2 optimization on the direct
	// plane (ablation).
	Thrifty bool
	// LeaderWork is CPU charged per proposed slot at the leader (decision
	// making, tallying, reply preparation). Batching amortizes it over the
	// slot's whole command batch; with MaxBatchSize 1 it is charged per
	// command, as in the paper's model.
	LeaderWork time.Duration
	// ExecWork is CPU charged per command executed at any replica.
	ExecWork time.Duration
	// HeartbeatInterval is how often an idle leader announces liveness
	// and its commit watermark. Zero disables heartbeats.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower patience before bidding for
	// leadership (randomized ×[1,2)). Zero disables elections, leaving
	// leadership wherever InitialLeader put it.
	ElectionTimeout time.Duration
	// RetryTimeout, when positive, makes the leader re-broadcast a slot's
	// P2a if it has not committed in time — needed for liveness on lossy
	// networks. PigPaxos leaves this off and supplies its own relay-aware
	// retry (Figure 5b).
	RetryTimeout time.Duration
	// CatchupBatch caps the entries in one CatchupReply (default 128).
	CatchupBatch int
	// CompactEvery triggers log compaction after this many local
	// executions, discarding executed entries older than CompactRetain
	// slots below the execution cursor (0 disables compaction).
	CompactEvery int
	// CompactRetain is how many executed slots to keep for catch-up
	// service (default 8192).
	CompactRetain int
	// ReadMode selects how GET commands are served (§4.3's three options).
	ReadMode ReadMode
	// LeaseDuration is how long a majority of heartbeat acks entitles the
	// leader to serve local reads under ReadLease (default
	// 4×HeartbeatInterval). Followers refuse to campaign within their
	// promise window, so a partitioned old leader's lease always expires
	// before a new leader can commit writes.
	LeaseDuration time.Duration
	// MaxBatchSize caps how many client commands the leader packs into one
	// log slot (default 1 — the paper's unbatched behaviour). Larger
	// batches amortize the 2(N−1)+2 (or 2r+2) message round and the
	// per-slot LeaderWork over MaxBatchSize commands.
	MaxBatchSize int
	// BatchDelay holds an under-full batch open this long waiting for more
	// commands before proposing it. Zero never waits: under-full batches
	// flush immediately, so batches only form while the pipelining window
	// is full (group-commit dynamics).
	BatchDelay time.Duration
	// MaxInFlight bounds the number of uncommitted slots the leader keeps
	// in flight (the pipelining window). Zero is unbounded — every batch
	// proposes immediately, as in the seed. A small window creates the
	// backpressure that lets batches accumulate under load.
	MaxInFlight int
	// MaxPending bounds the leader's ingress queue — the batch accumulator
	// (and, symmetrically, the campaign-time request buffer). At the bound
	// new commands are rejected with a wire.Busy carrying a retry-after
	// hint instead of queueing without bound. Zero derives
	// 4×MaxInFlight×MaxBatchSize when MaxInFlight is bounded — a few full
	// pipelines' worth, deep enough that group commit never starves while
	// shed clients sit in backoff, shallow enough that queueing delay stays
	// within a handful of pipeline drains — and leaves ingress unbounded
	// otherwise (the seed behaviour); negative forces unbounded even with
	// a window.
	MaxPending int
	// OverloadLatency, when positive, sheds new commands with Busy while
	// the leader's propose→commit latency EWMA exceeds it. Queue depth is
	// a lagging overload signal; commit latency is the leading one.
	OverloadLatency time.Duration
	// QueueTTL, when positive, drops queued commands that waited longer
	// than this at flush time instead of replicating work whose client has
	// already timed out. A dropped command never consumed its sequence
	// number's slot in the session table, so a retry is re-admitted.
	QueueTTL time.Duration
	// Storage, when non-nil, makes the replica durable: promises and
	// accepts are journaled and fsynced before the corresponding protocol
	// reply leaves (sync-before-vote), commits are journaled lazily, and a
	// crash-restart rebuilds the replica from snapshot + WAL tail. Nil (the
	// default) keeps the volatile seed behaviour bit-for-bit.
	Storage wal.Storage
	// SnapshotEvery, with Storage set, checkpoints the state machine after
	// this many locally executed commands and compacts the log and journal
	// to the snapshot floor. Zero disables snapshots (the WAL grows without
	// bound and restart replays it in full).
	SnapshotEvery int
}

// ReadMode selects a read path (paper §4.3).
type ReadMode int

const (
	// ReadLog serializes reads through the replicated log (the paper's
	// default): a full consensus round per read, always linearizable.
	ReadLog ReadMode = iota
	// ReadLease serves reads from the leader's local state while it holds
	// a majority-acknowledged heartbeat lease: linearizable, one round
	// trip, no log traffic.
	ReadLease
	// ReadAny serves reads from whichever replica receives them. Fast but
	// only eventually consistent — provided for comparison; the
	// linearizability checker rejects histories produced this way under
	// contention.
	ReadAny
)

func (c *Config) applyDefaults() {
	if c.Q1 == 0 {
		c.Q1 = quorum.MajoritySize(c.Cluster.N())
	}
	if c.Q2 == 0 {
		c.Q2 = quorum.MajoritySize(c.Cluster.N())
	}
	if c.LeaderWork == 0 {
		c.LeaderWork = 20 * time.Microsecond
	}
	if c.ExecWork == 0 {
		c.ExecWork = 5 * time.Microsecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.CatchupBatch == 0 {
		c.CatchupBatch = 128
	}
	if c.CompactRetain == 0 {
		c.CompactRetain = 8192
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = 4 * c.HeartbeatInterval
	}
	if c.MaxBatchSize <= 0 {
		c.MaxBatchSize = 1
	}
	if c.MaxBatchSize > math.MaxUint16 {
		// The wire format carries batch counts as uint16.
		c.MaxBatchSize = math.MaxUint16
	}
	if c.MaxPending == 0 && c.MaxInFlight > 0 {
		c.MaxPending = 4 * c.MaxInFlight * c.MaxBatchSize
	}
	if c.MaxPending < 0 {
		c.MaxPending = 0
	}
	if c.ReadMode == ReadLease && c.ElectionTimeout > 0 && c.ElectionTimeout < 2*c.LeaseDuration {
		// A follower must never campaign inside a window it promised to
		// the leader.
		c.ElectionTimeout = 2 * c.LeaseDuration
	}
}

// route remembers which client to answer once a slot executes.
type route struct {
	client   ids.ID
	clientID uint64
	seq      uint64
}

// Stats counts protocol events for experiments and tests.
type Stats struct {
	Requests     uint64 // client requests received while leader
	Redirects    uint64 // requests redirected to the leader
	Commits      uint64 // slots committed locally
	Executions   uint64 // commands applied to the state machine
	Elections    uint64 // phase-1 rounds started by this node
	Duplicates   uint64 // client requests answered from the session cache
	Catchups     uint64 // catch-up requests sent
	Retransmits  uint64 // P2a re-broadcasts on lossy networks
	Compactions  uint64 // log compaction sweeps
	LeaseReads   uint64 // reads served from the leader's lease
	LocalReads   uint64 // reads served unsafely by ReadAny
	Batches      uint64 // slots proposed by this node as leader
	BatchedCmds  uint64 // client commands packed into those slots
	WALSyncs     uint64 // real fsyncs performed on the journal
	Snapshots    uint64 // state-machine checkpoints saved locally
	SnapSends    uint64 // snapshots shipped to laggards (SnapInstall)
	SnapRestores uint64 // snapshots installed from a peer or at boot

	Busy           uint64 // client requests shed with wire.Busy (overload)
	DroppedExpired uint64 // queued commands dropped at flush after QueueTTL
	MaxQueueDepth  uint64 // high-water mark of the ingress queue
}

// MeanBatchSize reports commands per proposed slot (1.0 when unbatched).
func (s Stats) MeanBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedCmds) / float64(s.Batches)
}

// session provides at-most-once semantics per client: remember the last
// sequence number served (with its reply) and the one being served.
type session struct {
	lastSeq    uint64
	lastReply  wire.Reply
	pendingSeq uint64
}

// Replica is one Multi-Paxos node. It is single-threaded: the substrate
// serializes all OnMessage and timer callbacks.
type Replica struct {
	ctx  node.Context
	cfg  Config
	diss Disseminator

	ballot ids.Ballot // highest ballot seen
	active bool       // leader with completed phase-1

	log   *rlog.Log
	store *kvstore.Store

	// Leader state.
	p1q         *quorum.Threshold
	p1MaxFloor  uint64 // highest compaction floor reported in phase-1
	p1FloorFrom ids.ID // promiser that reported p1MaxFloor
	p2qs        map[uint64]*quorum.Threshold
	routes      map[uint64][]route // per-slot, aligned with the slot's batch
	buffered    []pendingRequest
	announced   uint64 // commit watermark last disseminated
	sessions    map[uint64]*session
	retries     map[uint64]node.Timer

	// Batch accumulator: commands admitted by the leader but not yet
	// proposed into a slot.
	pending    []pendingCmd
	batchTimer node.Timer
	batchDue   bool // BatchDelay expired; flush even under-full

	// Overload state: when each in-flight slot was proposed, and the
	// propose→commit latency EWMA fed by those samples (gain 1/8).
	proposedAt map[uint64]time.Duration
	commitEWMA time.Duration

	// Follower state.
	lastLeaderContact time.Duration
	electionTimer     node.Timer
	campaignRetry     node.Timer
	catchupInFlight   bool
	execSinceCompact  int

	// Durability state (nil/zero when running volatile).
	st              wal.Storage
	execSinceSnap   int
	journaledBallot ids.Ballot // highest ballot already durable in the WAL

	// Lease state: followers promise not to campaign until
	// leasePromiseUntil; the leader holds ack timestamps and serves local
	// reads while a majority acked within LeaseDuration.
	leasePromiseUntil time.Duration
	ackTimes          map[ids.ID]time.Duration

	stats Stats

	// onCommit, when set, runs after a slot commits locally (PigPaxos
	// uses it to cancel relay retries; tests use it to observe commits).
	onCommit func(slot uint64)
}

type pendingRequest struct {
	from ids.ID
	req  wire.Request
}

// pendingCmd is one command waiting in the leader's batch accumulator.
type pendingCmd struct {
	from     ids.ID
	cmd      kvstore.Command
	enqueued time.Duration // admission time, for the QueueTTL expiry check
}

// New creates a replica. If diss is nil a Direct plane over the cluster's
// peers is used.
func New(ctx node.Context, cfg Config, diss Disseminator) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		ctx:      ctx,
		cfg:      cfg,
		diss:     diss,
		log:      rlog.New(),
		store:    kvstore.New(),
		p2qs:       make(map[uint64]*quorum.Threshold),
		routes:     make(map[uint64][]route),
		sessions:   make(map[uint64]*session),
		retries:    make(map[uint64]node.Timer),
		ackTimes:   make(map[ids.ID]time.Duration),
		proposedAt: make(map[uint64]time.Duration),
	}
	if r.diss == nil {
		r.diss = &Direct{
			Ctx:     ctx,
			Peers:   cfg.Cluster.Peers(cfg.ID),
			Thrifty: cfg.Thrifty,
			Q2:      cfg.Q2,
		}
	}
	if cfg.Storage != nil {
		r.st = cfg.Storage
		r.recoverFromStorage()
	}
	return r
}

// SetDisseminator replaces the communication plane (used by PigPaxos, which
// must construct the replica before the plane that wraps it).
func (r *Replica) SetDisseminator(d Disseminator) { r.diss = d }

// SetOnCommit installs a commit observer.
func (r *Replica) SetOnCommit(fn func(slot uint64)) { r.onCommit = fn }

// Start launches the replica: the designated initial leader bids
// immediately; everyone else arms its election timer (when enabled).
func (r *Replica) Start() {
	if r.cfg.InitialLeader == r.cfg.ID {
		r.campaign()
		return
	}
	r.armElectionTimer()
}

// ID returns the replica's node ID.
func (r *Replica) ID() ids.ID { return r.cfg.ID }

// Ballot returns the highest ballot this replica has seen.
func (r *Replica) Ballot() ids.Ballot { return r.ballot }

// IsLeader reports whether the replica is an active leader.
func (r *Replica) IsLeader() bool { return r.active }

// Leader returns the node this replica believes leads (the ballot owner).
func (r *Replica) Leader() ids.ID { return r.ballot.ID() }

// Store exposes the replicated state machine.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Log exposes the replicated log (tests and PigPaxos retries).
func (r *Replica) Log() *rlog.Log { return r.log }

// Stats returns a copy of the event counters.
func (r *Replica) Stats() Stats { return r.stats }

// QueueDepth is the current leader ingress queue occupancy (batch
// accumulator plus campaign-time buffer).
func (r *Replica) QueueDepth() int { return len(r.pending) + len(r.buffered) }

// CommitLatencyEWMA is the smoothed propose→commit latency driving the
// overload detector (zero until the first commit).
func (r *Replica) CommitLatencyEWMA() time.Duration { return r.commitEWMA }

// OnMessage dispatches a delivered message. It implements node.Handler.
func (r *Replica) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.Request:
		r.OnRequest(from, v)
	case wire.P1a:
		r.OnP1a(from, v)
	case wire.P1b:
		r.OnP1b(v)
	case wire.P2a:
		r.OnP2a(from, v)
	case wire.P2b:
		r.OnP2b(v)
	case wire.P3:
		r.OnP3(v)
	case wire.Heartbeat:
		r.OnHeartbeat(v)
	case wire.CatchupReq:
		r.OnCatchupReq(from, v)
	case wire.CatchupReply:
		r.OnCatchupReply(v)
	case wire.SnapInstall:
		r.OnSnapInstall(v)
	case wire.HeartbeatAck:
		r.OnHeartbeatAck(v)
	}
}

// ------------------------------------------------------------- elections --

// abortProposals discards in-flight phase-2 state (vote tallies and
// retransmit timers) once this node's proposals can no longer commit under
// its ballot — on losing leadership or opening a fresh campaign. Stale
// entries would otherwise count against the pipelining window forever,
// shrinking or wedging it after re-election.
func (r *Replica) abortProposals() {
	for slot, t := range r.retries {
		t.Stop()
		delete(r.retries, slot)
	}
	clear(r.p2qs)
	clear(r.proposedAt)
}

// Campaign makes the replica bid for leadership now, regardless of its
// failure detector's opinion of the current leader. Operators (and the chaos
// injector's LeaderPlacementFlip) use it to move the leader into a chosen
// region; the bid carries a higher ballot, so the incumbent steps down on
// first contact. A no-op on a node that already leads.
func (r *Replica) Campaign() {
	if r.active {
		return
	}
	r.campaign()
}

func (r *Replica) campaign() {
	r.stats.Elections++
	r.abortProposals()
	r.ballot = r.ballot.Next(r.cfg.ID)
	r.active = false
	r.ensurePromised() // the self-promise below must survive a crash
	r.p1q = quorum.NewThreshold(r.cfg.Cluster.N(), r.cfg.Q1)
	r.p1MaxFloor, r.p1FloorFrom = 0, 0
	r.p1q.ACK(r.cfg.ID) // self-promise
	r.diss.FanOut(wire.P1a{Ballot: r.ballot, From: r.log.ExecuteCursor()})
	if r.p1q.Satisfied() { // single-node cluster
		r.becomeLeader(nil)
		return
	}
	r.armCampaignRetry()
}

// armCampaignRetry re-bids after a delay if phase-1 stalls (lost messages,
// peers not yet listening — a live-deployment bootstrap concern the
// simulator never hits). The retry aborts if another node took over.
func (r *Replica) armCampaignRetry() {
	if r.campaignRetry != nil {
		r.campaignRetry.Stop()
	}
	retry := r.cfg.ElectionTimeout
	if retry <= 0 {
		retry = 150 * time.Millisecond
	}
	r.campaignRetry = r.ctx.After(retry, func() {
		if r.active || r.ballot.ID() != r.cfg.ID {
			return
		}
		r.campaign()
	})
}

func (r *Replica) armElectionTimer() {
	if r.cfg.ElectionTimeout <= 0 {
		return
	}
	if r.electionTimer != nil {
		r.electionTimer.Stop()
	}
	d := r.cfg.ElectionTimeout + time.Duration(r.ctx.Rand().Int63n(int64(r.cfg.ElectionTimeout)))
	r.electionTimer = r.ctx.After(d, func() {
		if r.active {
			return
		}
		if r.ctx.Now() < r.leasePromiseUntil {
			// Promised the current leader a read lease; do not contest.
			r.armElectionTimer()
			return
		}
		if r.ctx.Now()-r.lastLeaderContact >= r.cfg.ElectionTimeout {
			r.campaign()
		}
		r.armElectionTimer()
	})
}

// HandleP1aLocal applies a phase-1 bid locally and returns the promise (or
// a NACK carrying the higher ballot). Exposed for relay aggregation.
func (r *Replica) HandleP1aLocal(m wire.P1a) wire.P1b {
	if m.Ballot > r.ballot {
		r.ballot = m.Ballot
		r.active = false
		r.lastLeaderContact = r.ctx.Now()
		r.redirectPending()
	}
	r.ensurePromised() // sync-before-promise: durable before the P1b leaves
	reply := wire.P1b{Ballot: r.ballot, From: r.cfg.ID, Floor: r.log.FirstSlot()}
	// Report every known entry from the campaigner's cursor up — committed
	// ones included, flagged, so a lagging winner installs them as commits
	// instead of proposing no-op fillers over anchored slots (which would
	// make one (ballot, slot) pair carry two values, breaking the
	// same-ballot watermark commit rule).
	low := m.From
	if low < 1 {
		low = 1
	}
	for slot := low; slot < r.log.PeekNextSlot() && len(reply.Entries) < math.MaxUint16; slot++ {
		e := r.log.Get(slot)
		if e == nil {
			continue // gap, or compacted (an extreme lagger re-asks via catch-up)
		}
		reply.Entries = append(reply.Entries, wire.SlotEntry{
			Slot: slot, Ballot: e.Ballot, Committed: e.Committed, Cmds: e.Commands,
		})
	}
	return reply
}

// OnP1a handles a direct phase-1 bid: apply locally, answer the bidder.
func (r *Replica) OnP1a(from ids.ID, m wire.P1a) {
	r.ctx.Send(from, r.HandleP1aLocal(m))
}

// OnP1b tallies phase-1 promises at a campaigning node.
func (r *Replica) OnP1b(m wire.P1b) {
	if m.Ballot > r.ballot {
		// Someone promised a higher ballot: our campaign lost. Step down
		// fully — like every other step-down path — so queued and
		// in-flight commands bounce to the new leader instead of being
		// resurrected stale on a later re-election.
		r.ballot = m.Ballot
		r.active = false
		r.redirectPending()
		r.armElectionTimer()
		return
	}
	if m.Ballot < r.ballot || r.active || r.p1q == nil {
		return // stale or already elected
	}
	r.p1q.ACK(m.From)
	if m.Floor > r.p1MaxFloor {
		r.p1MaxFloor, r.p1FloorFrom = m.Floor, m.From
	}
	r.recoverEntries(m.Entries)
	if r.p1q.Satisfied() {
		r.becomeLeader(nil)
	}
}

// recoverEntries installs phase-1 knowledge: committed entries are
// authoritative and land as commits; uncommitted ones accumulate the
// highest-ballot value seen per slot.
func (r *Replica) recoverEntries(entries []wire.SlotEntry) {
	for _, e := range entries {
		if e.Committed {
			r.log.Commit(e.Slot, e.Ballot, e.Cmds)
			r.stats.Commits++
			continue
		}
		cur := r.log.Get(e.Slot)
		if cur == nil || (!cur.Committed && e.Ballot > cur.Ballot) {
			r.log.Accept(e.Slot, e.Ballot, e.Cmds)
		}
	}
}

func (r *Replica) becomeLeader(_ []wire.SlotEntry) {
	r.active = true
	r.p1q = nil
	// Apply commits learned during phase-1 before proposing, so the
	// re-propose loop below starts past everything already anchored.
	r.execute()
	// Re-propose every accepted-but-uncommitted slot under our ballot,
	// filling log gaps with no-ops, so earlier instances anchor before new
	// commands enter.
	low := r.log.ExecuteCursor()
	if r.p1MaxFloor > low {
		// A promiser's compaction floor is above our cursor: every slot
		// below it was committed, executed and checkpointed somewhere, but
		// nobody can report those slots any more. Their silence is NOT
		// license to fill with no-ops — skip past the floor and pull the
		// checkpoint holder's snapshot instead.
		r.catchupToFloor(r.p1FloorFrom, r.p1MaxFloor)
		low = r.p1MaxFloor
	}
	high := r.log.PeekNextSlot()
	for slot := low; slot < high; slot++ {
		e := r.log.Get(slot)
		if e != nil && e.Committed {
			continue
		}
		var cmds []kvstore.Command
		if e != nil {
			cmds = e.Commands
		}
		r.propose(slot, cmds)
	}
	// Serve requests buffered during the campaign.
	buf := r.buffered
	r.buffered = nil
	for _, p := range buf {
		r.OnRequest(p.from, p.req)
	}
	r.scheduleHeartbeat()
}

func (r *Replica) scheduleHeartbeat() {
	if r.cfg.HeartbeatInterval <= 0 {
		return
	}
	r.ctx.After(r.cfg.HeartbeatInterval, func() {
		if !r.active {
			return
		}
		r.diss.FanOut(wire.Heartbeat{Ballot: r.ballot, From: r.cfg.ID, Commit: r.commitWatermark()})
		r.announced = r.commitWatermark()
		r.scheduleHeartbeat()
	})
}

// ---------------------------------------------------------------- client --

// OnRequest handles a client command: the leader proposes it, everyone else
// redirects the client to the leader it knows.
func (r *Replica) OnRequest(from ids.ID, m wire.Request) {
	if m.Cmd.IsRead() && r.cfg.ReadMode == ReadAny {
		// Serve locally, consistency be damned (§4.3's "reading from any
		// replica... compromises the consistency guarantee").
		r.stats.LocalReads++
		r.ctx.Work(r.cfg.ExecWork)
		v, ok := r.store.Get(m.Cmd.Key)
		r.ctx.Send(from, wire.Reply{
			ClientID: m.Cmd.ClientID, Seq: m.Cmd.Seq, OK: true,
			Exists: ok, Value: v, Leader: r.cfg.ID,
		})
		return
	}
	if !r.active {
		if r.cfg.InitialLeader == r.cfg.ID || (r.p1q != nil && r.ballot.ID() == r.cfg.ID) {
			// Mid-campaign: buffer until elected — bounded like the live
			// ingress queue, so a slow election cannot hoard memory.
			if r.cfg.MaxPending > 0 && len(r.buffered) >= r.cfg.MaxPending {
				r.rejectBusy(from, m.Cmd)
				return
			}
			r.buffered = append(r.buffered, pendingRequest{from: from, req: m})
			r.noteQueueDepth()
			return
		}
		r.stats.Redirects++
		r.ctx.Send(from, wire.Reply{
			ClientID: m.Cmd.ClientID,
			Seq:      m.Cmd.Seq,
			OK:       false,
			Leader:   r.ballot.ID(),
		})
		return
	}
	// At-most-once: a retried command that already executed is answered
	// from the session cache; one still in flight is ignored (its reply
	// will go out when it executes).
	sess := r.sessions[m.Cmd.ClientID]
	if sess == nil {
		sess = &session{}
		r.sessions[m.Cmd.ClientID] = sess
	}
	if m.Cmd.Seq <= sess.lastSeq {
		r.stats.Duplicates++
		if m.Cmd.Seq == sess.lastSeq {
			r.ctx.Send(from, sess.lastReply)
		}
		return
	}
	if m.Cmd.Seq == sess.pendingSeq {
		// Refresh the reply route in case the client moved — the command
		// may be in a proposed slot or still in the batch accumulator.
		found := false
		for _, rts := range r.routes {
			for i, rt := range rts {
				if rt.clientID == m.Cmd.ClientID && rt.seq == m.Cmd.Seq {
					rts[i].client = from
					found = true
				}
			}
		}
		for i, p := range r.pending {
			if p.cmd.ClientID == m.Cmd.ClientID && p.cmd.Seq == m.Cmd.Seq {
				r.pending[i].from = from
				found = true
			}
		}
		if found {
			r.stats.Duplicates++
			return
		}
		// No live route: the route was dropped on an earlier step-down.
		// The command may still sit in an accepted-but-uncommitted slot
		// that becomeLeader re-proposed — re-attach the reply route there
		// (re-admitting would commit the command in two slots).
		if slot, idx, ok := r.findUncommitted(m.Cmd.ClientID, m.Cmd.Seq); ok {
			rts := r.routes[slot]
			for len(rts) <= idx {
				rts = append(rts, route{})
			}
			rts[idx] = route{client: from, clientID: m.Cmd.ClientID, seq: m.Cmd.Seq}
			r.routes[slot] = rts
			r.stats.Duplicates++
			return
		}
		// Truly gone — discarded before reaching a slot. Fall through and
		// re-admit instead of swallowing the retry forever.
	}
	if m.Cmd.IsRead() && r.cfg.ReadMode == ReadLease && r.leaseValid() {
		// Lease read: serve locally, cache the reply for retries. The
		// leader's store reflects every committed write, and the lease
		// guarantees no other leader can have committed newer ones.
		r.stats.LeaseReads++
		r.ctx.Work(r.cfg.ExecWork)
		v, ok := r.store.Get(m.Cmd.Key)
		sessReply := wire.Reply{
			ClientID: m.Cmd.ClientID, Seq: m.Cmd.Seq, OK: true,
			Exists: ok, Value: v, Leader: r.cfg.ID,
		}
		sess.lastSeq = m.Cmd.Seq
		sess.lastReply = sessReply
		r.ctx.Send(from, sessReply)
		return
	}
	// Admission control: shed before the sequence number is consumed, so
	// the session table still treats a retry of this command as new.
	if r.overloaded() {
		r.rejectBusy(from, m.Cmd)
		return
	}
	sess.pendingSeq = m.Cmd.Seq
	r.stats.Requests++
	r.pending = append(r.pending, pendingCmd{from: from, cmd: m.Cmd, enqueued: r.ctx.Now()})
	r.noteQueueDepth()
	r.flushBatches()
}

// overloaded reports whether the leader must shed the next command: the
// ingress queue is at MaxPending, or the commit-latency EWMA crossed the
// configured overload threshold.
func (r *Replica) overloaded() bool {
	if r.cfg.MaxPending > 0 && len(r.pending) >= r.cfg.MaxPending {
		return true
	}
	return r.cfg.OverloadLatency > 0 && r.commitEWMA > r.cfg.OverloadLatency
}

// rejectBusy sheds one command with a wire.Busy. The client should stay on
// this leader and retry the same sequence number after RetryAfter.
func (r *Replica) rejectBusy(from ids.ID, cmd kvstore.Command) {
	r.stats.Busy++
	r.ctx.Send(from, wire.Busy{
		ClientID: cmd.ClientID, Seq: cmd.Seq, Leader: r.cfg.ID,
		RetryAfter: r.retryAfterHint(),
	})
}

// retryAfterHint suggests how long a shed client should back off: one
// smoothed commit latency (the time for the queue to make real progress),
// floored at 1ms and capped at 100ms so a latency spike cannot park the
// client fleet indefinitely.
func (r *Replica) retryAfterHint() time.Duration {
	d := r.commitEWMA
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// noteQueueDepth tracks the ingress-queue high-water mark.
func (r *Replica) noteQueueDepth() {
	if d := uint64(len(r.pending) + len(r.buffered)); d > r.stats.MaxQueueDepth {
		r.stats.MaxQueueDepth = d
	}
}

// findUncommitted scans the unexecuted log suffix for a command with the
// given at-most-once identity, returning its slot and batch index.
func (r *Replica) findUncommitted(clientID, seq uint64) (uint64, int, bool) {
	for slot := r.log.ExecuteCursor(); slot < r.log.PeekNextSlot(); slot++ {
		e := r.log.Get(slot)
		if e == nil || e.Executed {
			continue
		}
		for i, c := range e.Commands {
			if c.ClientID == clientID && c.Seq == seq {
				return slot, i, true
			}
		}
	}
	return 0, 0, false
}

// windowOpen reports whether the pipelining window admits another slot.
func (r *Replica) windowOpen() bool {
	return r.cfg.MaxInFlight <= 0 || len(r.p2qs) < r.cfg.MaxInFlight
}

// flushBatches proposes pending commands into slots, packing up to
// MaxBatchSize commands per slot, while the pipelining window has room. An
// under-full batch is held open for BatchDelay (when configured); otherwise
// it flushes immediately, so batches form exactly while the window is full
// — classic group commit. Called on request arrival, on commit (the window
// may have opened), and when the batch timer fires.
func (r *Replica) flushBatches() {
	r.dropExpired()
	for r.active && len(r.pending) > 0 && r.windowOpen() {
		if len(r.pending) < r.cfg.MaxBatchSize && r.cfg.BatchDelay > 0 && !r.batchDue {
			if r.batchTimer == nil {
				r.batchTimer = r.ctx.After(r.cfg.BatchDelay, func() {
					r.batchTimer = nil
					r.batchDue = true
					r.flushBatches()
				})
			}
			return
		}
		take := min(len(r.pending), r.cfg.MaxBatchSize)
		cmds := make([]kvstore.Command, take)
		rts := make([]route, take)
		for i, p := range r.pending[:take] {
			cmds[i] = p.cmd
			rts[i] = route{client: p.from, clientID: p.cmd.ClientID, seq: p.cmd.Seq}
		}
		r.pending = r.pending[take:]
		if len(r.pending) == 0 {
			r.pending = nil
			r.batchDue = false
			if r.batchTimer != nil {
				r.batchTimer.Stop()
				r.batchTimer = nil
			}
		}
		slot := r.log.NextSlot()
		r.routes[slot] = rts
		r.stats.Batches++
		r.stats.BatchedCmds += uint64(take)
		r.ctx.Work(r.cfg.LeaderWork)
		r.propose(slot, cmds)
	}
}

// dropExpired discards queued commands that waited longer than QueueTTL:
// their clients have already timed out, so proposing them would replicate
// dead work. The queue is FIFO, so expired commands form a prefix. No reply
// is sent — the client is gone — and the dropped sequence number stays
// re-admittable via the session table's truly-gone retry path.
func (r *Replica) dropExpired() {
	if r.cfg.QueueTTL <= 0 || len(r.pending) == 0 {
		return
	}
	cutoff := r.ctx.Now() - r.cfg.QueueTTL
	n := 0
	for n < len(r.pending) && r.pending[n].enqueued < cutoff {
		n++
	}
	if n == 0 {
		return
	}
	r.stats.DroppedExpired += uint64(n)
	r.pending = r.pending[n:]
	if len(r.pending) == 0 {
		r.pending = nil
		r.batchDue = false
		if r.batchTimer != nil {
			r.batchTimer.Stop()
			r.batchTimer = nil
		}
	}
}

// leaseValid reports whether a majority of the cluster (counting this
// leader) acknowledged a heartbeat within the lease window.
func (r *Replica) leaseValid() bool {
	if !r.active {
		return false
	}
	now := r.ctx.Now()
	fresh := 1 // self
	for _, at := range r.ackTimes {
		if now-at < r.cfg.LeaseDuration {
			fresh++
		}
	}
	return fresh >= quorum.MajoritySize(r.cfg.Cluster.N())
}

// OnHeartbeatAck records a follower's lease acknowledgment.
func (r *Replica) OnHeartbeatAck(m wire.HeartbeatAck) {
	if m.Ballot != r.ballot || !r.active {
		return
	}
	r.ackTimes[m.From] = r.ctx.Now()
}

// propose runs phase-2 for (slot, cmds) under the current ballot.
func (r *Replica) propose(slot uint64, cmds []kvstore.Command) {
	r.log.Accept(slot, r.ballot, cmds)
	// The leader's self-vote counts toward Q2, so its own accept must be as
	// durable as a follower's — one fsync here covers the slot's whole
	// command batch (group commit).
	r.syncStorage()
	q := quorum.NewThreshold(r.cfg.Cluster.N(), r.cfg.Q2)
	q.ACK(r.cfg.ID) // self-vote
	r.p2qs[slot] = q
	r.proposedAt[slot] = r.ctx.Now()
	m := wire.P2a{Ballot: r.ballot, Slot: slot, Cmds: cmds, Commit: r.commitWatermark()}
	r.announced = m.Commit
	r.diss.FanOut(m)
	if q.Satisfied() { // single-node cluster
		r.commit(slot)
		return
	}
	r.armRetransmit(slot)
}

// armRetransmit re-broadcasts a slot's P2a if it stalls (lossy networks).
func (r *Replica) armRetransmit(slot uint64) {
	if r.cfg.RetryTimeout <= 0 {
		return
	}
	if t, ok := r.retries[slot]; ok {
		t.Stop()
	}
	r.retries[slot] = r.ctx.After(r.cfg.RetryTimeout, func() {
		delete(r.retries, slot)
		e := r.log.Get(slot)
		if e == nil || e.Committed || !r.active {
			return
		}
		r.stats.Retransmits++
		m := wire.P2a{Ballot: r.ballot, Slot: slot, Cmds: e.Commands, Commit: r.commitWatermark()}
		r.diss.FanOut(m)
		r.armRetransmit(slot)
	})
}

// commitWatermark is the slot below which everything is committed locally —
// the leader executes contiguously, so its execution cursor is the boundary.
func (r *Replica) commitWatermark() uint64 { return r.log.ExecuteCursor() }

// ----------------------------------------------------------------- phase2 --

// AcceptP2a applies a phase-2 request locally and returns the vote (a P2b
// whose Ballot exceeds m.Ballot signals rejection). ok reports whether the
// proposal was actually accepted into the log: false with an equal-ballot
// vote means the slot already committed a different batch — the caller must
// NOT count the vote, and the anchored value has been sent back to the
// proposer (a lagging re-elected leader anchoring gaps with no-ops would
// otherwise quorum-commit over an acknowledged batch). Exposed for relays.
func (r *Replica) AcceptP2a(m wire.P2a) (vote wire.P2b, ok bool) {
	if m.Ballot >= r.ballot {
		if m.Ballot > r.ballot {
			// Ballot must be adopted before redirectPending so redirects
			// name the new leader.
			r.active = false
			r.ballot = m.Ballot
			r.redirectPending()
		}
		r.lastLeaderContact = r.ctx.Now()
		ok = r.log.Accept(m.Slot, m.Ballot, m.Cmds)
		if !ok {
			// In this branch a refusal can only mean the slot committed a
			// different batch (m.Ballot ≥ r.ballot ≥ any accepted ballot).
			// Teach the proposer the anchored value instead of voting.
			if e := r.log.Get(m.Slot); e != nil && e.Committed {
				r.ctx.Send(m.Ballot.ID(), wire.P3{Ballot: r.ballot, Slot: m.Slot, Cmds: e.Commands})
			} else if m.Slot < r.log.FirstSlot() {
				// The slot was committed, executed and compacted away: the
				// proposer is behind our checkpoint floor, so the single-slot
				// teach-back no longer exists — ship the whole snapshot.
				r.stats.SnapSends++
				r.ctx.Send(m.Ballot.ID(), wire.SnapInstall{
					Ballot: r.ballot, Floor: r.log.ExecuteCursor(), Data: r.encodeSnapshot(),
				})
			}
		}
		r.applyWatermark(m.Commit, m.Ballot)
		if ok {
			// Sync-before-vote: the accept (journaled by the log) must be
			// durable before the P2b leaves. Commits folded in by the
			// watermark ride along in the same group fsync.
			r.syncStorage()
		}
	}
	return wire.P2b{Ballot: r.ballot, From: r.cfg.ID, Slot: m.Slot}, ok
}

// OnP2a handles a direct phase-2 request: accept locally, vote back. A
// refused proposal gets no vote (the teach-back P3 stands in for it);
// higher-ballot NACKs still flow so a stale leader steps down.
func (r *Replica) OnP2a(from ids.ID, m wire.P2a) {
	vote, ok := r.AcceptP2a(m)
	if ok || vote.Ballot > m.Ballot {
		r.ctx.Send(from, vote)
	}
}

// OnP2b tallies phase-2 votes at the leader.
func (r *Replica) OnP2b(m wire.P2b) {
	if m.Ballot > r.ballot {
		// Rejection: a higher ballot exists, stop leading.
		r.ballot = m.Ballot
		r.active = false
		r.redirectPending()
		r.armElectionTimer()
		return
	}
	q, ok := r.p2qs[m.Slot]
	if !ok || m.Ballot < r.ballot {
		return // already committed or stale vote
	}
	q.ACK(m.From)
	if q.Satisfied() {
		r.commit(m.Slot)
	}
}

func (r *Replica) commit(slot uint64) {
	delete(r.p2qs, slot)
	if at, ok := r.proposedAt[slot]; ok {
		delete(r.proposedAt, slot)
		// TCP-style smoothing (gain 1/8) of the propose→commit latency;
		// OnRequest sheds with Busy while this exceeds OverloadLatency.
		sample := r.ctx.Now() - at
		if r.commitEWMA == 0 {
			r.commitEWMA = sample
		} else {
			r.commitEWMA += (sample - r.commitEWMA) / 8
		}
	}
	if t, ok := r.retries[slot]; ok {
		t.Stop()
		delete(r.retries, slot)
	}
	e := r.log.Get(slot)
	if e == nil || e.Committed {
		return
	}
	r.log.Commit(slot, r.ballot, e.Commands)
	r.stats.Commits++
	if r.onCommit != nil {
		r.onCommit(slot)
	}
	r.execute()
	// A committed slot frees pipeline window capacity: flush what queued.
	r.flushBatches()
}

// execute applies all contiguous committed batches and answers clients for
// commands this node proposed (route lists are position-aligned with each
// slot's batch).
func (r *Replica) execute() {
	start := r.log.ExecuteCursor()
	r.log.ExecuteReady(r.store, func(slot uint64, idx int, cmd kvstore.Command, res kvstore.Result) {
		r.stats.Executions++
		r.execSinceCompact++
		r.execSinceSnap++
		r.ctx.Work(r.cfg.ExecWork)
		rep := wire.Reply{
			ClientID: cmd.ClientID,
			Seq:      cmd.Seq,
			OK:       true,
			Exists:   res.Exists,
			Value:    res.Value,
			Leader:   r.cfg.ID,
			Slot:     slot,
		}
		// Update at-most-once state from the command itself — creating the
		// session if this replica never saw the original request. Every
		// replica executes every command, so the at-most-once table
		// replicates deterministically: a retry reaching a newly elected
		// leader is answered from the cache, never re-admitted.
		if cmd.ClientID != 0 {
			sess := r.sessions[cmd.ClientID]
			if sess == nil {
				sess = &session{}
				r.sessions[cmd.ClientID] = sess
			}
			if cmd.Seq > sess.lastSeq {
				sess.lastSeq = cmd.Seq
				sess.lastReply = rep
				if sess.pendingSeq == cmd.Seq {
					sess.pendingSeq = 0
				}
			}
		}
		rts := r.routes[slot]
		if idx >= len(rts) || rts[idx].client.IsZero() ||
			rts[idx].clientID != cmd.ClientID || rts[idx].seq != cmd.Seq {
			// Not proposed here, route dropped, or the committed batch is
			// not the one the routes were recorded for (abandoned
			// proposal): never deliver another command's reply.
			return
		}
		r.ctx.Send(rts[idx].client, rep)
	})
	for slot := start; slot < r.log.ExecuteCursor(); slot++ {
		delete(r.routes, slot)
	}
	r.maybeCompact()
	r.maybeSnapshot()
}

// applyWatermark commits every slot below w that this replica accepted
// under the same ballot as the watermark's sender — those values are
// necessarily the anchored ones. Entries from older ballots (or missing
// entirely, e.g. lost messages) are unsafe to commit blindly; if any keep
// the execution cursor below the watermark, the follower asks the leader to
// re-announce them (catch-up).
func (r *Replica) applyWatermark(w uint64, b ids.Ballot) {
	for slot := r.log.ExecuteCursor(); slot < w; slot++ {
		e := r.log.Get(slot)
		if e == nil || e.Committed || e.Ballot != b {
			continue
		}
		r.log.Commit(slot, b, e.Commands)
		r.stats.Commits++
	}
	r.execute()
	if r.log.ExecuteCursor() < w && !r.catchupInFlight {
		r.catchupInFlight = true
		r.stats.Catchups++
		from := r.log.ExecuteCursor()
		r.ctx.Send(b.ID(), wire.CatchupReq{From: from, To: w})
		// Clear the in-flight guard even if the reply is lost.
		r.ctx.After(100*time.Millisecond, func() { r.catchupInFlight = false })
	}
}

// OnCatchupReq re-announces committed entries a lagging follower asked for.
// A request below the compaction floor cannot be served slot-by-slot — the
// entries are gone — so the follower gets a snapshot of live state instead
// (floor = our execution cursor), replacing full-log replay with
// snapshot-based catch-up.
func (r *Replica) OnCatchupReq(from ids.ID, m wire.CatchupReq) {
	if m.From < r.log.FirstSlot() {
		r.stats.SnapSends++
		r.ctx.Send(from, wire.SnapInstall{
			Ballot: r.ballot, Floor: r.log.ExecuteCursor(), Data: r.encodeSnapshot(),
		})
		return
	}
	to := m.To
	if hi := r.log.ExecuteCursor(); to > hi {
		to = hi
	}
	reply := wire.CatchupReply{Ballot: r.ballot}
	for slot := m.From; slot < to && len(reply.Entries) < r.cfg.CatchupBatch; slot++ {
		e := r.log.Get(slot)
		if e == nil || !e.Committed {
			continue // compacted or unknown; the follower will re-ask
		}
		reply.Entries = append(reply.Entries, wire.SlotEntry{Slot: slot, Ballot: e.Ballot, Committed: true, Cmds: e.Commands})
	}
	if len(reply.Entries) > 0 {
		r.ctx.Send(from, reply)
	}
}

// OnCatchupReply installs re-announced commits.
func (r *Replica) OnCatchupReply(m wire.CatchupReply) {
	r.catchupInFlight = false
	for _, e := range m.Entries {
		r.log.Commit(e.Slot, e.Ballot, e.Cmds)
		r.stats.Commits++
	}
	r.execute()
}

// catchupToFloor pulls state from the promiser whose compaction floor is
// above this new leader's execution cursor, retrying until the snapshot
// lands (the request is From < the holder's floor, so the holder answers
// with SnapInstall). Followers cure lag through the watermark path; an
// active leader announces watermarks instead of receiving them, so it must
// drive its own catch-up.
func (r *Replica) catchupToFloor(target ids.ID, floor uint64) {
	if !r.active || r.log.ExecuteCursor() >= floor {
		return
	}
	r.stats.Catchups++
	r.ctx.Send(target, wire.CatchupReq{From: r.log.ExecuteCursor(), To: floor})
	r.ctx.After(150*time.Millisecond, func() { r.catchupToFloor(target, floor) })
}

// maybeCompact discards old executed log entries once enough executions
// accumulated, keeping CompactRetain slots for catch-up service.
func (r *Replica) maybeCompact() {
	if r.cfg.CompactEvery <= 0 || r.execSinceCompact < r.cfg.CompactEvery {
		return
	}
	r.execSinceCompact = 0
	cur := r.log.ExecuteCursor()
	if cur <= uint64(r.cfg.CompactRetain) {
		return
	}
	r.log.CompactTo(cur - uint64(r.cfg.CompactRetain))
	r.stats.Compactions++
}

// OnP3 handles an explicit commit announcement. An active leader receiving
// one for a slot it is still proposing into has been taught the anchored
// batch by a follower (see AcceptP2a): it abandons its doomed proposal and
// re-announces the anchored value so followers that accepted the doomed
// batch are overwritten. This path is defense-in-depth — phase-1 recovery
// reports committed slots, so a proposal into an anchored slot requires a
// leader lagging beyond a promiser's compaction horizon. (The re-announce
// is best-effort ordered against watermark carriers; the relay plane does
// not guarantee FIFO across paths.)
func (r *Replica) OnP3(m wire.P3) {
	if m.Ballot >= r.ballot {
		if m.Ballot > r.ballot {
			// A newer leader exists: step down fully before anything else,
			// or the flushBatches below would propose under its ballot.
			r.active = false
			r.ballot = m.Ballot
			r.redirectPending()
		}
		r.lastLeaderContact = r.ctx.Now()
	}
	if _, proposing := r.p2qs[m.Slot]; proposing {
		delete(r.p2qs, m.Slot)
		if t, ok := r.retries[m.Slot]; ok {
			t.Stop()
			delete(r.retries, m.Slot)
		}
		r.reclaimDoomed(m.Slot, m.Cmds)
		if r.active {
			r.diss.FanOut(wire.P3{Ballot: r.ballot, Slot: m.Slot, Cmds: m.Cmds})
		}
	}
	r.log.Commit(m.Slot, m.Ballot, m.Cmds)
	r.stats.Commits++
	r.execute()
	r.flushBatches()
}

// reclaimDoomed salvages the commands of an abandoned proposal: everything
// not in the anchored batch goes back into the batch accumulator for a
// fresh slot, so those clients are served instead of waiting forever. The
// slot's routes are dropped — the anchored batch was not proposed by us.
func (r *Replica) reclaimDoomed(slot uint64, anchored []kvstore.Command) {
	e := r.log.Get(slot)
	rts := r.routes[slot]
	delete(r.routes, slot)
	if e == nil || e.Committed {
		return
	}
	inAnchored := func(c kvstore.Command) bool {
		for _, a := range anchored {
			if a.ClientID == c.ClientID && a.Seq == c.Seq {
				return true
			}
		}
		return false
	}
	for i, c := range e.Commands {
		if i >= len(rts) || rts[i].client.IsZero() || inAnchored(c) {
			continue
		}
		r.pending = append(r.pending, pendingCmd{from: rts[i].client, cmd: c, enqueued: r.ctx.Now()})
	}
}

// OnHeartbeat refreshes the failure detector and applies the leader's
// commit watermark.
func (r *Replica) OnHeartbeat(m wire.Heartbeat) {
	if m.Ballot < r.ballot {
		return
	}
	if m.Ballot > r.ballot {
		r.ballot = m.Ballot
		r.active = false
		r.redirectPending()
	}
	r.lastLeaderContact = r.ctx.Now()
	if r.cfg.ReadMode == ReadLease && m.Ballot.ID() != r.cfg.ID {
		// Promise the leader its lease window and confirm.
		r.leasePromiseUntil = r.ctx.Now() + r.cfg.LeaseDuration
		r.ctx.Send(m.Ballot.ID(), wire.HeartbeatAck{Ballot: m.Ballot, From: r.cfg.ID})
	}
	r.applyWatermark(m.Commit, m.Ballot)
}

// redirectPending answers buffered and in-flight client requests with a
// redirect after losing leadership. No-op when nothing is pending or when
// this node still owns the ballot.
func (r *Replica) redirectPending() {
	if r.ballot.ID() == r.cfg.ID {
		return
	}
	r.abortProposals()
	leader := r.ballot.ID()
	// Redirect in ascending slot order: map iteration order would otherwise
	// leak into the send sequence (and so into every client's reply timing),
	// breaking run-to-run determinism.
	slots := make([]uint64, 0, len(r.routes))
	for slot := range r.routes {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, slot := range slots {
		for _, rt := range r.routes[slot] {
			if rt.client.IsZero() {
				continue // placeholder in a re-attached route list
			}
			r.ctx.Send(rt.client, wire.Reply{
				ClientID: rt.clientID, Seq: rt.seq, OK: false, Leader: leader,
			})
		}
		delete(r.routes, slot)
	}
	for _, p := range r.pending {
		r.ctx.Send(p.from, wire.Reply{
			ClientID: p.cmd.ClientID, Seq: p.cmd.Seq, OK: false, Leader: leader,
		})
	}
	r.pending = nil
	r.batchDue = false
	if r.batchTimer != nil {
		r.batchTimer.Stop()
		r.batchTimer = nil
	}
	for _, p := range r.buffered {
		r.ctx.Send(p.from, wire.Reply{
			ClientID: p.req.Cmd.ClientID, Seq: p.req.Cmd.Seq, OK: false, Leader: leader,
		})
	}
	r.buffered = nil
}
