package paxos

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

// testCluster wires n replicas and one unmetered client onto a simulated
// LAN.
type testCluster struct {
	sim      *des.Sim
	net      *netsim.Network
	cfg      config.Cluster
	replicas map[ids.ID]*Replica
	client   *testClient
}

type testClient struct {
	sim      *des.Sim
	ep       *netsim.Endpoint
	id       ids.ID
	replies  []wire.Reply
	busy     int
	lastBusy wire.Busy
	sent     map[[2]uint64]sentCmd // (ClientID, Seq) → original send, for Busy retries
}

type sentCmd struct {
	to  ids.ID
	cmd kvstore.Command
}

func (c *testClient) OnMessage(from ids.ID, m wire.Msg) {
	switch r := m.(type) {
	case wire.Reply:
		c.replies = append(c.replies, r)
	case wire.Busy:
		// Honor the backpressure: resend the same command after the hint.
		c.busy++
		c.lastBusy = r
		if s, ok := c.sent[[2]uint64{r.ClientID, r.Seq}]; ok {
			c.sim.Schedule(r.RetryAfter, func() { c.ep.Send(s.to, wire.Request{Cmd: s.cmd}) })
		}
	}
}

func (c *testClient) send(to ids.ID, cmd kvstore.Command) {
	c.sent[[2]uint64{cmd.ClientID, cmd.Seq}] = sentCmd{to: to, cmd: cmd}
	c.ep.Send(to, wire.Request{Cmd: cmd})
}

// trampoline lets us register an endpoint before the replica exists.
type trampoline struct{ h func(from ids.ID, m wire.Msg) }

func (tr *trampoline) OnMessage(from ids.ID, m wire.Msg) { tr.h(from, m) }

func newCluster(t *testing.T, n int, mut func(*Config)) *testCluster {
	t.Helper()
	sim := des.New(7)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	tc := &testCluster{sim: sim, net: net, cfg: cc, replicas: make(map[ids.ID]*Replica)}
	for _, id := range cc.Nodes {
		id := id
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		cfg := Config{Cluster: cc, ID: id, InitialLeader: cc.Nodes[0]}
		if mut != nil {
			mut(&cfg)
		}
		r := New(ep, cfg, nil)
		tr.h = r.OnMessage
		tc.replicas[id] = r
	}
	cl := &testClient{sim: sim, id: ids.NewID(999, 1), sent: make(map[[2]uint64]sentCmd)}
	cl.ep = net.Register(cl.id, cl, true)
	tc.client = cl
	sim.Schedule(0, func() {
		for _, r := range tc.replicas {
			r.Start()
		}
	})
	return tc
}

func (tc *testCluster) leader() *Replica { return tc.replicas[tc.cfg.Nodes[0]] }

func TestLeaderElectionOnStart(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.sim.Run(50 * time.Millisecond)
	if !tc.leader().IsLeader() {
		t.Fatal("initial leader did not become active")
	}
	for _, id := range tc.cfg.Nodes[1:] {
		r := tc.replicas[id]
		if r.IsLeader() {
			t.Errorf("%v should not be leader", id)
		}
		if r.Leader() != tc.cfg.Nodes[0] {
			t.Errorf("%v believes leader is %v", id, r.Leader())
		}
	}
}

func TestPutGetThroughLog(t *testing.T) {
	tc := newCluster(t, 5, nil)
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("v1"), ClientID: 9, Seq: 1})
	})
	tc.sim.Schedule(10*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Get, Key: 1, ClientID: 9, Seq: 2})
	})
	tc.sim.Run(100 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(tc.client.replies))
	}
	put, get := tc.client.replies[0], tc.client.replies[1]
	if !put.OK || put.Seq != 1 {
		t.Errorf("put reply: %+v", put)
	}
	if !get.OK || !get.Exists || string(get.Value) != "v1" {
		t.Errorf("get reply: %+v", get)
	}
}

func TestFollowerRedirects(t *testing.T) {
	tc := newCluster(t, 3, nil)
	follower := tc.cfg.Nodes[2]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(follower, kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
	})
	tc.sim.Run(50 * time.Millisecond)
	if len(tc.client.replies) != 1 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	rep := tc.client.replies[0]
	if rep.OK {
		t.Error("follower must not serve")
	}
	if rep.Leader != tc.cfg.Nodes[0] {
		t.Errorf("redirect to %v, want %v", rep.Leader, tc.cfg.Nodes[0])
	}
	if tc.replicas[follower].Stats().Redirects != 1 {
		t.Error("redirect not counted")
	}
}

func TestFollowersConvergeViaWatermarks(t *testing.T) {
	tc := newCluster(t, 5, nil)
	leader := tc.cfg.Nodes[0]
	for i := 0; i < 20; i++ {
		i := i
		tc.sim.Schedule(time.Duration(5+i)*time.Millisecond, func() {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i % 4), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1),
			})
		})
	}
	// Run long enough for heartbeat watermarks to flush the tail.
	tc.sim.Run(300 * time.Millisecond)
	want := tc.leader().Store().Checksum()
	applied := tc.leader().Store().Applied()
	if applied != 20 {
		t.Fatalf("leader applied %d, want 20", applied)
	}
	for _, id := range tc.cfg.Nodes[1:] {
		r := tc.replicas[id]
		if r.Store().Applied() != applied {
			t.Errorf("%v applied %d, want %d", id, r.Store().Applied(), applied)
		}
		if r.Store().Checksum() != want {
			t.Errorf("%v diverged from leader", id)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	tc := newCluster(t, 5, func(c *Config) {
		c.ElectionTimeout = 100 * time.Millisecond
	})
	old := tc.cfg.Nodes[0]
	tc.sim.Schedule(20*time.Millisecond, func() { tc.net.Crash(old) })
	tc.sim.Run(2 * time.Second)
	var leaders []ids.ID
	for id, r := range tc.replicas {
		if id != old && r.IsLeader() {
			leaders = append(leaders, id)
		}
	}
	if len(leaders) != 1 {
		t.Fatalf("after failover, %d active leaders (%v), want exactly 1", len(leaders), leaders)
	}
	// The new leader serves requests.
	nl := leaders[0]
	tc.sim.Schedule(0, func() {
		tc.client.send(nl, kvstore.Command{Op: kvstore.Put, Key: 5, Value: []byte("x"), ClientID: 2, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 200*time.Millisecond)
	ok := false
	for _, rep := range tc.client.replies {
		if rep.OK && rep.Seq == 1 && rep.ClientID == 2 {
			ok = true
		}
	}
	if !ok {
		t.Error("new leader did not serve the request")
	}
}

func TestUncommittedRecoveryAcrossLeaderChange(t *testing.T) {
	// Leader proposes to a partitioned majority so the value stays
	// uncommitted, then a new leader must recover and commit it.
	tc := newCluster(t, 5, func(c *Config) {
		c.ElectionTimeout = 100 * time.Millisecond
	})
	old := tc.cfg.Nodes[0]
	tc.sim.Run(10 * time.Millisecond) // let the leader establish

	// Cut the leader off from nodes 4 and 5 so P2a reaches only 2 and 3:
	// leader+2 acceptors = 3 of 5 = majority — so instead cut from 3,4,5:
	// then only node 2 accepts → no quorum → uncommitted.
	cutoff := []ids.ID{tc.cfg.Nodes[2], tc.cfg.Nodes[3], tc.cfg.Nodes[4]}
	tc.net.Partition([]ids.ID{old}, cutoff)
	tc.sim.Schedule(0, func() {
		tc.client.send(old, kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("ghost"), ClientID: 3, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if tc.leader().Stats().Commits != 0 {
		t.Fatal("command should not commit without majority")
	}
	// Now crash the old leader and heal; node 2 holds the accepted value.
	tc.net.Crash(old)
	tc.net.HealPartition()
	tc.sim.Run(tc.sim.Now() + 2*time.Second)
	// Whoever leads now must have committed the recovered value.
	for id, r := range tc.replicas {
		if id == old {
			continue
		}
		if r.IsLeader() {
			if v, ok := r.Store().Get(7); !ok || string(v) != "ghost" {
				t.Errorf("recovered leader %v did not commit uncommitted value (got %q, %v)", id, v, ok)
			}
			return
		}
	}
	t.Fatal("no new leader emerged")
}

func TestStaleBallotP2aRejected(t *testing.T) {
	tc := newCluster(t, 3, nil)
	tc.sim.Run(10 * time.Millisecond)
	follower := tc.replicas[tc.cfg.Nodes[1]]
	high := follower.Ballot()
	stale := wire.P2a{Ballot: ids.NewBallot(0, ids.NewID(1, 3)), Slot: 99, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}}
	vote, ok := follower.AcceptP2a(stale)
	if ok {
		t.Error("stale P2a must not be accepted")
	}
	if vote.Ballot <= stale.Ballot {
		t.Error("stale P2a must be answered with the higher ballot (NACK)")
	}
	if vote.Ballot != high {
		t.Errorf("NACK ballot = %v, want %v", vote.Ballot, high)
	}
	if follower.Log().Get(99) != nil {
		t.Error("stale P2a must not be accepted into the log")
	}
}

func TestRejectionDethronesLeader(t *testing.T) {
	tc := newCluster(t, 3, nil)
	tc.sim.Run(10 * time.Millisecond)
	leader := tc.leader()
	higher := leader.Ballot().Next(tc.cfg.Nodes[2])
	leader.OnP2b(wire.P2b{Ballot: higher, From: tc.cfg.Nodes[2], Slot: 1})
	if leader.IsLeader() {
		t.Error("leader must step down on seeing a higher ballot")
	}
	if leader.Ballot() != higher {
		t.Error("leader must adopt the higher ballot")
	}
}

func TestThriftyModeUsesFewerMessages(t *testing.T) {
	run := func(thrifty bool) uint64 {
		tc := newCluster(t, 5, func(c *Config) {
			c.Thrifty = thrifty
			c.HeartbeatInterval = time.Hour // isolate P2a traffic
		})
		leader := tc.cfg.Nodes[0]
		for i := 0; i < 10; i++ {
			i := i
			tc.sim.Schedule(time.Duration(5+i)*time.Millisecond, func() {
				tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: uint64(i + 1)})
			})
		}
		tc.sim.Run(100 * time.Millisecond)
		if got := len(tc.client.replies); got != 10 {
			t.Fatalf("thrifty=%v: replies = %d", thrifty, got)
		}
		return tc.net.MessagesSent()
	}
	full := run(false)
	thrifty := run(true)
	if thrifty >= full {
		t.Errorf("thrifty should send fewer messages: %d vs %d", thrifty, full)
	}
}

func TestFlexibleQuorumCommitsWithQ2(t *testing.T) {
	// N=5, Q1=4, Q2=2: with two followers crashed the leader still has
	// itself + 2 live followers ≥ Q2, so phase-2 proceeds.
	tc := newCluster(t, 5, func(c *Config) {
		c.Q1, c.Q2 = 4, 2
	})
	tc.sim.Run(10 * time.Millisecond)
	tc.net.Crash(tc.cfg.Nodes[3])
	tc.net.Crash(tc.cfg.Nodes[4])
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("fq"), ClientID: 1, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 100*time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("flexible Q2=2 should commit with 2 crashed followers")
	}
}

func TestMajorityBlockedWhenQuorumUnreachable(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.sim.Run(10 * time.Millisecond)
	// Crash 3 of 5: majority unreachable, nothing commits.
	tc.net.Crash(tc.cfg.Nodes[2])
	tc.net.Crash(tc.cfg.Nodes[3])
	tc.net.Crash(tc.cfg.Nodes[4])
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 1, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 200*time.Millisecond)
	for _, rep := range tc.client.replies {
		if rep.OK {
			t.Fatal("commit without majority is a safety violation")
		}
	}
	if tc.leader().Stats().Commits != 0 {
		t.Fatal("no slot may commit")
	}
}

func TestDuplicateP2bIdempotent(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.sim.Run(10 * time.Millisecond)
	leader := tc.leader()
	before := leader.Stats().Commits
	// Feed duplicate votes for a nonexistent slot: no effect.
	v := wire.P2b{Ballot: leader.Ballot(), From: tc.cfg.Nodes[1], Slot: 424242}
	leader.OnP2b(v)
	leader.OnP2b(v)
	if leader.Stats().Commits != before {
		t.Error("votes for unknown slots must not commit anything")
	}
}

func TestSingleNodeCluster(t *testing.T) {
	tc := newCluster(t, 1, nil)
	tc.sim.Schedule(time.Millisecond, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("solo"), ClientID: 1, Seq: 1})
	})
	tc.sim.Run(50 * time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatalf("single-node cluster must self-commit: %+v", tc.client.replies)
	}
}

func TestLinearOrderMatchesSlotOrder(t *testing.T) {
	tc := newCluster(t, 3, nil)
	leader := tc.cfg.Nodes[0]
	// Two writes to the same key: later slot must win.
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("first"), ClientID: 1, Seq: 1})
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("second"), ClientID: 1, Seq: 2})
	})
	tc.sim.Run(100 * time.Millisecond)
	if v, _ := tc.leader().Store().Get(1); string(v) != "second" {
		t.Errorf("final value %q, want \"second\"", v)
	}
	slots := map[uint64]uint64{}
	for _, rep := range tc.client.replies {
		slots[rep.Seq] = rep.Slot
	}
	if slots[1] >= slots[2] {
		t.Errorf("slot order %v does not respect submission order", slots)
	}
}

func TestDuplicateRequestAnsweredFromSession(t *testing.T) {
	tc := newCluster(t, 3, nil)
	leader := tc.cfg.Nodes[0]
	cmd := kvstore.Command{Op: kvstore.Put, Key: 4, Value: []byte("once"), ClientID: 7, Seq: 1}
	tc.sim.Schedule(5*time.Millisecond, func() { tc.client.send(leader, cmd) })
	tc.sim.Run(50 * time.Millisecond)
	// Retry the same (ClientID, Seq) — e.g. the client timed out.
	tc.sim.Schedule(0, func() { tc.client.send(leader, cmd) })
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d, want original + cached", len(tc.client.replies))
	}
	if tc.leader().Store().Applied() != 1 {
		t.Fatalf("command applied %d times, want exactly once", tc.leader().Store().Applied())
	}
	if tc.leader().Stats().Duplicates != 1 {
		t.Error("duplicate not counted")
	}
	if tc.client.replies[1].Slot != tc.client.replies[0].Slot {
		t.Error("cached reply must reference the original slot")
	}
}

func TestInFlightDuplicateIgnored(t *testing.T) {
	tc := newCluster(t, 3, nil)
	leader := tc.cfg.Nodes[0]
	cmd := kvstore.Command{Op: kvstore.Put, Key: 4, Value: []byte("x"), ClientID: 7, Seq: 1}
	// Two copies in the same instant: only one slot may be allocated.
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, cmd)
		tc.client.send(leader, cmd)
	})
	tc.sim.Run(100 * time.Millisecond)
	if tc.leader().Store().Applied() != 1 {
		t.Fatalf("applied %d, want 1", tc.leader().Store().Applied())
	}
	if len(tc.client.replies) != 1 {
		t.Fatalf("replies = %d, want 1 (in-flight duplicate ignored)", len(tc.client.replies))
	}
}

func TestCatchupRepairsLossyFollower(t *testing.T) {
	tc := newCluster(t, 3, nil)
	leader := tc.cfg.Nodes[0]
	straggler := tc.cfg.Nodes[2]
	tc.sim.Run(5 * time.Millisecond)
	// Partition the straggler while commands commit.
	tc.net.Partition([]ids.ID{straggler}, []ids.ID{tc.cfg.Nodes[0], tc.cfg.Nodes[1]})
	for i := 0; i < 10; i++ {
		i := i
		tc.sim.Schedule(time.Duration(i)*time.Millisecond, func() {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1),
			})
		})
	}
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if tc.replicas[straggler].Store().Applied() != 0 {
		t.Fatal("partitioned follower should have nothing")
	}
	// Heal: heartbeat watermarks expose the gap; catch-up fills it.
	tc.net.HealPartition()
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	st := tc.replicas[straggler]
	if st.Store().Applied() != 10 {
		t.Fatalf("straggler applied %d of 10 after catch-up", st.Store().Applied())
	}
	if st.Store().Checksum() != tc.leader().Store().Checksum() {
		t.Error("straggler state diverged after catch-up")
	}
	if st.Stats().Catchups == 0 {
		t.Error("catch-up requests not counted")
	}
}

func TestLossyNetworkEndToEnd(t *testing.T) {
	// 10% message loss: retransmits + catch-up + client-side retries (the
	// harness client rotates) must still serve and converge. Here we rely
	// on leader retransmit only, with a patient client.
	sim := des.New(99)
	cc := config.NewLAN(5)
	opts := netsim.DefaultOptions()
	opts.LossRate = 0.10
	net := netsim.New(sim, cc, opts)
	replicas := make(map[ids.ID]*Replica)
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		r := New(ep, Config{
			Cluster: cc, ID: id, InitialLeader: cc.Nodes[0],
			RetryTimeout: 5 * time.Millisecond,
		}, nil)
		tr.h = r.OnMessage
		replicas[id] = r
	}
	cl := &testClient{sim: sim, id: ids.NewID(999, 1), sent: make(map[[2]uint64]sentCmd)}
	cl.ep = net.Register(cl.id, cl, true)
	sim.Schedule(0, func() {
		for _, r := range replicas {
			r.Start()
		}
	})
	// Each command uses its own session (clients keep one outstanding
	// request per session; the cache remembers the last reply per client)
	// and retries until a reply lands — dedup makes retries harmless.
	const total = 20
	for i := 1; i <= total; i++ {
		i := i
		cmd := kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: uint64(i), Seq: 1}
		for attempt := 0; attempt < 12; attempt++ {
			at := time.Duration(i)*20*time.Millisecond + time.Duration(attempt)*150*time.Millisecond
			sim.Schedule(at, func() {
				done := false
				for _, rep := range cl.replies {
					if rep.ClientID == cmd.ClientID && rep.OK {
						done = true
					}
				}
				if !done {
					cl.send(cc.Nodes[0], cmd)
				}
			})
		}
	}
	sim.Run(10 * time.Second)
	okClients := map[uint64]bool{}
	for _, rep := range cl.replies {
		if rep.OK {
			okClients[rep.ClientID] = true
		}
	}
	if len(okClients) != total {
		t.Fatalf("served %d of %d commands under 10%% loss", len(okClients), total)
	}
	leader := replicas[cc.Nodes[0]]
	if leader.Store().Applied() != total {
		t.Fatalf("leader applied %d, want exactly %d (dedup under retries)", leader.Store().Applied(), total)
	}
}

func TestLogCompaction(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.CompactEvery = 10
		c.CompactRetain = 5
	})
	leader := tc.cfg.Nodes[0]
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		tc.sim.Schedule(time.Duration(5+i)*time.Millisecond, func() {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1),
			})
		})
	}
	tc.sim.Run(500 * time.Millisecond)
	if len(tc.client.replies) != n {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	l := tc.leader()
	if l.Stats().Compactions == 0 {
		t.Fatal("compaction never ran")
	}
	if l.Log().Len() >= n {
		t.Errorf("log holds %d entries after compaction, want < %d", l.Log().Len(), n)
	}
	// State must be unaffected.
	if l.Store().Applied() != n {
		t.Errorf("applied %d, want %d", l.Store().Applied(), n)
	}
}

func TestLeaseReadsServeLocally(t *testing.T) {
	tc := newCluster(t, 5, func(c *Config) {
		c.ReadMode = ReadLease
		c.HeartbeatInterval = 5 * time.Millisecond
	})
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("leased"), ClientID: 1, Seq: 1})
	})
	// Let heartbeat acks establish the lease, then read.
	tc.sim.Schedule(40*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Get, Key: 1, ClientID: 1, Seq: 2})
	})
	tc.sim.Run(100 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	get := tc.client.replies[1]
	if !get.OK || string(get.Value) != "leased" {
		t.Fatalf("lease read: %+v", get)
	}
	if tc.leader().Stats().LeaseReads != 1 {
		t.Error("read did not use the lease path")
	}
	// Lease reads must not consume log slots.
	if got := tc.leader().Log().CommittedCount(); got != 1 {
		t.Errorf("committed slots = %d, want 1 (only the write)", got)
	}
}

func TestLeaseExpiresWhenMajorityUnreachable(t *testing.T) {
	tc := newCluster(t, 5, func(c *Config) {
		c.ReadMode = ReadLease
		c.HeartbeatInterval = 5 * time.Millisecond
	})
	leader := tc.cfg.Nodes[0]
	tc.sim.Run(50 * time.Millisecond) // lease established
	if !tc.leader().leaseValid() {
		t.Fatal("lease should be valid with all followers alive")
	}
	// Cut the leader from all followers: acks stop, the lease must lapse.
	tc.net.Partition([]ids.ID{leader}, tc.cfg.Nodes[1:])
	tc.sim.Run(tc.sim.Now() + 200*time.Millisecond)
	if tc.leader().leaseValid() {
		t.Fatal("lease must expire without majority acks")
	}
	// Reads now fall back to the log path, which cannot commit → no reply
	// (the client would retry elsewhere).
	before := len(tc.client.replies)
	tc.sim.Schedule(0, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Get, Key: 1, ClientID: 1, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 100*time.Millisecond)
	for _, rep := range tc.client.replies[before:] {
		if rep.OK {
			t.Fatal("a partitioned leader must not serve reads after lease expiry")
		}
	}
}

func TestReadAnyServesStaleFromFollower(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.ReadMode = ReadAny
		c.HeartbeatInterval = time.Hour // followers never learn commits
	})
	leader := tc.cfg.Nodes[0]
	follower := tc.cfg.Nodes[2]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("fresh"), ClientID: 1, Seq: 1})
	})
	tc.sim.Run(50 * time.Millisecond)
	// The follower accepted but without heartbeats its watermark never
	// advanced for the LAST slot; a local read may be stale — exactly the
	// §4.3 warning. (It must still answer.)
	tc.sim.Schedule(0, func() {
		tc.client.send(follower, kvstore.Command{Op: kvstore.Get, Key: 1, ClientID: 1, Seq: 2})
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	if tc.replicas[follower].Stats().LocalReads != 1 {
		t.Error("follower should have served the read locally")
	}
	get := tc.client.replies[1]
	if get.Exists {
		t.Errorf("follower served %q — expected a stale miss in this construction", get.Value)
	}
}

// TestIngressBoundShedsWithBusy fires eight simultaneous commands at a
// leader whose window holds one slot and whose ingress queue holds two
// commands. The overflow must be shed with wire.Busy — never queued past
// MaxPending — and because Busy is backpressure rather than loss, every
// client's retry must eventually land.
func TestIngressBoundShedsWithBusy(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxBatchSize = 1
		c.MaxPending = 2
	})
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		for i := 1; i <= 8; i++ {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte("v"),
				ClientID: uint64(i), Seq: 1,
			})
		}
	})
	tc.sim.Run(2 * time.Second)
	st := tc.leader().Stats()
	if st.Busy == 0 {
		t.Error("8 simultaneous commands against window 1 + queue 2 shed none")
	}
	if st.MaxQueueDepth > 2 {
		t.Errorf("ingress high-water %d exceeded MaxPending 2", st.MaxQueueDepth)
	}
	if ra := tc.client.lastBusy.RetryAfter; ra < time.Millisecond || ra > 100*time.Millisecond {
		t.Errorf("retry-after hint %v outside [1ms, 100ms]", ra)
	}
	if tc.client.lastBusy.Leader != leader {
		t.Errorf("Busy names leader %v, want %v", tc.client.lastBusy.Leader, leader)
	}
	if got := len(tc.client.replies); got != 8 {
		t.Fatalf("replies = %d, want 8 (shed commands must complete on retry)", got)
	}
	for _, rep := range tc.client.replies {
		if !rep.OK {
			t.Errorf("failed reply %+v", rep)
		}
	}
}

// TestExpiredQueuedCommandsDropped wedges the pipeline with a partition so
// queued commands outlive QueueTTL, then checks the flush drops them
// instead of proposing dead work — and that a dropped command's sequence
// number stays re-admittable, since shedding never consumed its session
// slot.
func TestExpiredQueuedCommandsDropped(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxBatchSize = 1
		c.QueueTTL = 20 * time.Millisecond
		c.RetryTimeout = 30 * time.Millisecond // re-propose the wedged slot after heal
	})
	leader := tc.cfg.Nodes[0]
	cmd := func(id uint64) kvstore.Command {
		return kvstore.Command{Op: kvstore.Put, Key: id, Value: []byte("v"), ClientID: id, Seq: 1}
	}
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.net.Partition([]ids.ID{leader}, tc.cfg.Nodes[1:])
	})
	// Command 1 fills the one-slot window and cannot commit; 2 and 3 queue
	// behind it.
	tc.sim.Schedule(10*time.Millisecond, func() { tc.client.send(leader, cmd(1)) })
	tc.sim.Schedule(12*time.Millisecond, func() {
		tc.client.send(leader, cmd(2))
		tc.client.send(leader, cmd(3))
	})
	// Heal before command 1's ~40ms retransmit: it then commits at ~41ms,
	// and that commit's flush finds 2 and 3 having sat past QueueTTL —
	// dropped, not proposed. Command 4 arrives after, into an open window.
	tc.sim.Schedule(35*time.Millisecond, func() { tc.net.HealPartition() })
	tc.sim.Schedule(50*time.Millisecond, func() { tc.client.send(leader, cmd(4)) })
	// A retry of dropped command 2 must be re-admitted as new work.
	tc.sim.Schedule(200*time.Millisecond, func() { tc.client.send(leader, cmd(2)) })
	tc.sim.Run(time.Second)

	if got := tc.leader().Stats().DroppedExpired; got != 2 {
		t.Errorf("dropped-expired = %d, want 2", got)
	}
	okBy := map[uint64]int{}
	for _, rep := range tc.client.replies {
		if rep.OK {
			okBy[rep.ClientID]++
		}
	}
	for _, id := range []uint64{1, 2, 4} {
		if okBy[id] != 1 {
			t.Errorf("client %d got %d OK replies, want 1", id, okBy[id])
		}
	}
	if okBy[3] != 0 {
		t.Errorf("dropped command 3 was answered %d times — it must not have been proposed", okBy[3])
	}
	if _, ok := tc.leader().Store().Get(3); ok {
		t.Error("dropped command 3 reached the state machine")
	}
	if _, ok := tc.leader().Store().Get(2); !ok {
		t.Error("re-admitted command 2 never reached the state machine")
	}
}

// TestOverloadLatencySheds trips the commit-latency arm of the overload
// detector: with OverloadLatency set below any real LAN commit latency, the
// first commit pushes the EWMA over the threshold and every later command
// must be shed with Busy.
func TestOverloadLatencySheds(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.OverloadLatency = time.Nanosecond
	})
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("v"), ClientID: 1, Seq: 1})
	})
	// By now the first command committed and seeded the EWMA.
	tc.sim.Schedule(100*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("v"), ClientID: 2, Seq: 1})
	})
	tc.sim.Run(300 * time.Millisecond)
	if tc.leader().CommitLatencyEWMA() <= 0 {
		t.Fatal("commit never updated the latency EWMA")
	}
	if tc.client.busy == 0 || tc.leader().Stats().Busy == 0 {
		t.Error("EWMA above OverloadLatency did not shed")
	}
	okBy := map[uint64]int{}
	for _, rep := range tc.client.replies {
		if rep.OK {
			okBy[rep.ClientID]++
		}
	}
	if okBy[1] != 1 {
		t.Errorf("pre-overload command got %d OK replies, want 1", okBy[1])
	}
	// No commits ever decay the EWMA here, so the second command can only
	// ever see Busy.
	if okBy[2] != 0 {
		t.Errorf("command shed by the latency detector was served %d times", okBy[2])
	}
}
