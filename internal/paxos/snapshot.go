package paxos

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/wire"
)

// snapVersion tags the snapshot blob layout. Bump on incompatible change.
const snapVersion = 1

// encodeSnapshot serializes everything a replica must recover besides the
// log itself: the promise ballot (compaction may discard journaled promise
// records once a snapshot holds the ballot), the state machine, and the
// at-most-once session table. The layout is deterministic (sorted keys), so
// replicas with equal state produce equal blobs.
func (r *Replica) encodeSnapshot() []byte {
	b := make([]byte, 0, 512)
	b = append(b, snapVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(r.ballot))
	b = r.store.Serialize(b)
	cids := make([]uint64, 0, len(r.sessions))
	for id := range r.sessions {
		cids = append(cids, id)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cids)))
	for _, id := range cids {
		s := r.sessions[id]
		b = binary.LittleEndian.AppendUint64(b, id)
		b = binary.LittleEndian.AppendUint64(b, s.lastSeq)
		reply := wire.Encode(nil, s.lastReply)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(reply)))
		b = append(b, reply...)
	}
	return b
}

// restoreSnapshot replaces the store and session table with a blob produced
// by encodeSnapshot and returns the ballot recorded in it. pendingSeq is
// deliberately not persisted: it marks an in-flight proposal, and nothing
// is in flight on a freshly restored replica.
func (r *Replica) restoreSnapshot(data []byte) (ids.Ballot, error) {
	off := 0
	fail := func(what string) (ids.Ballot, error) {
		return 0, fmt.Errorf("paxos: snapshot %s at offset %d", what, off)
	}
	if len(data) < 1+8 {
		return fail("truncated header")
	}
	if data[0] != snapVersion {
		return 0, fmt.Errorf("paxos: snapshot version %d, want %d", data[0], snapVersion)
	}
	off = 1
	ballot := ids.Ballot(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	n, err := r.store.Restore(data[off:])
	if err != nil {
		return 0, err
	}
	off += n
	if off+4 > len(data) {
		return fail("truncated session count")
	}
	nSess := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	clear(r.sessions)
	for i := 0; i < nSess; i++ {
		if off+20 > len(data) {
			return fail("truncated session")
		}
		id := binary.LittleEndian.Uint64(data[off:])
		lastSeq := binary.LittleEndian.Uint64(data[off+8:])
		replyLen := int(binary.LittleEndian.Uint32(data[off+16:]))
		off += 20
		if off+replyLen > len(data) {
			return fail("truncated session reply")
		}
		m, consumed, err := wire.Decode(data[off : off+replyLen])
		if err != nil {
			return 0, err
		}
		reply, ok := m.(wire.Reply)
		if !ok || consumed != replyLen {
			return fail("malformed session reply")
		}
		off += replyLen
		r.sessions[id] = &session{lastSeq: lastSeq, lastReply: reply}
	}
	if off != len(data) {
		return fail("trailing bytes")
	}
	return ballot, nil
}
