package paxos

import (
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// batchCluster builds a cluster with batching + a bounded pipeline window.
func batchCluster(t *testing.T, n, batch, window int, delay time.Duration) *testCluster {
	t.Helper()
	return newCluster(t, n, func(c *Config) {
		c.MaxBatchSize = batch
		c.MaxInFlight = window
		c.BatchDelay = delay
	})
}

func TestBatchRepliesReachEveryClient(t *testing.T) {
	tc := batchCluster(t, 5, 8, 1, 0)
	leader := tc.cfg.Nodes[0]
	// 20 commands from distinct sessions land in one instant: the 1-slot
	// window forces them into a handful of batches.
	tc.sim.Schedule(5*time.Millisecond, func() {
		for i := 0; i < 20; i++ {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: uint64(i + 1), Seq: 1,
			})
		}
	})
	tc.sim.Run(200 * time.Millisecond)
	if len(tc.client.replies) != 20 {
		t.Fatalf("replies = %d, want 20 (one per batched command)", len(tc.client.replies))
	}
	for _, rep := range tc.client.replies {
		if !rep.OK {
			t.Errorf("batched command %d/%d failed: %+v", rep.ClientID, rep.Seq, rep)
		}
	}
	st := tc.leader().Stats()
	if st.BatchedCmds != 20 {
		t.Errorf("BatchedCmds = %d, want 20", st.BatchedCmds)
	}
	if st.Batches >= 20 {
		t.Errorf("Batches = %d — commands were not packed (window 1, batch 8)", st.Batches)
	}
	if st.MeanBatchSize() <= 1.5 {
		t.Errorf("mean batch %.2f, expected > 1.5", st.MeanBatchSize())
	}
}

func TestBatchedFollowersConverge(t *testing.T) {
	tc := batchCluster(t, 5, 4, 2, 0)
	leader := tc.cfg.Nodes[0]
	for i := 0; i < 30; i++ {
		i := i
		tc.sim.Schedule(time.Duration(5+i/5)*time.Millisecond, func() {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i % 4), Value: []byte{byte(i)}, ClientID: uint64(i + 1), Seq: 1,
			})
		})
	}
	tc.sim.Run(500 * time.Millisecond)
	want := tc.leader().Store().Checksum()
	if tc.leader().Store().Applied() != 30 {
		t.Fatalf("leader applied %d, want 30", tc.leader().Store().Applied())
	}
	for _, id := range tc.cfg.Nodes[1:] {
		r := tc.replicas[id]
		if r.Store().Applied() != 30 || r.Store().Checksum() != want {
			t.Errorf("%v diverged under batching: applied=%d", id, r.Store().Applied())
		}
	}
}

func TestPipelineWindowBoundsInFlightSlots(t *testing.T) {
	tc := batchCluster(t, 5, 1, 2, 0) // batch off, window 2: pure pipelining bound
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), ClientID: uint64(i + 1), Seq: 1,
			})
		}
		// Synchronous check right after admission: only 2 slots proposed.
		if inflight := len(tc.leader().p2qs); inflight > 2 {
			t.Errorf("in-flight slots = %d, want ≤ 2", inflight)
		}
	})
	tc.sim.Run(300 * time.Millisecond)
	if len(tc.client.replies) != 10 {
		t.Fatalf("replies = %d, want 10 (window must drain)", len(tc.client.replies))
	}
}

func TestBatchDelayAccumulates(t *testing.T) {
	// Window open, delay 5ms: two commands arriving 1ms apart share a slot.
	tc := batchCluster(t, 5, 8, 0, 5*time.Millisecond)
	leader := tc.cfg.Nodes[0]
	tc.sim.Schedule(5*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
	})
	tc.sim.Schedule(6*time.Millisecond, func() {
		tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 2, Seq: 1})
	})
	tc.sim.Run(100 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	st := tc.leader().Stats()
	if st.Batches != 1 || st.BatchedCmds != 2 {
		t.Errorf("batches=%d cmds=%d, want one 2-command batch", st.Batches, st.BatchedCmds)
	}
}

func TestPendingBatchRedirectedOnStepDown(t *testing.T) {
	tc := batchCluster(t, 3, 8, 1, time.Hour) // delay "forever": commands sit pending
	leader := tc.leader()
	tc.sim.Run(10 * time.Millisecond)
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 2, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 20*time.Millisecond)
	// First command proposed (window 1), second still pending. Dethrone.
	higher := leader.Ballot().Next(tc.cfg.Nodes[2])
	tc.sim.Schedule(0, func() {
		leader.OnP2b(wire.P2b{Ballot: higher, From: tc.cfg.Nodes[2], Slot: 1})
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	redirected := 0
	for _, rep := range tc.client.replies {
		if !rep.OK && rep.Leader == tc.cfg.Nodes[2] {
			redirected++
		}
	}
	if redirected != 2 {
		t.Errorf("redirected %d of 2 (proposed + pending must both bounce)", redirected)
	}
	if len(leader.pending) != 0 {
		t.Error("pending batch must be cleared on step-down")
	}
}

func TestCatchupCarriesBatches(t *testing.T) {
	tc := batchCluster(t, 3, 4, 1, 0)
	leader := tc.cfg.Nodes[0]
	straggler := tc.cfg.Nodes[2]
	tc.sim.Run(5 * time.Millisecond)
	tc.net.Partition([]ids.ID{straggler}, []ids.ID{tc.cfg.Nodes[0], tc.cfg.Nodes[1]})
	tc.sim.Schedule(0, func() {
		for i := 0; i < 12; i++ {
			tc.client.send(leader, kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: uint64(i + 1), Seq: 1,
			})
		}
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if tc.replicas[straggler].Store().Applied() != 0 {
		t.Fatal("partitioned follower should have nothing")
	}
	tc.net.HealPartition()
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	st := tc.replicas[straggler]
	if st.Store().Applied() != 12 {
		t.Fatalf("straggler applied %d of 12 after batched catch-up", st.Store().Applied())
	}
	if st.Store().Checksum() != tc.leader().Store().Checksum() {
		t.Error("straggler diverged after batched catch-up")
	}
}

// Losing leadership with slots in flight must not poison the pipelining
// window: stale phase-2 tallies are aborted on step-down, so a re-elected
// leader proposes freely again.
func TestDepositionClearsInFlightWindow(t *testing.T) {
	tc := batchCluster(t, 3, 4, 2, 0)
	leader := tc.leader()
	tc.sim.Run(10 * time.Millisecond)
	// Cut the leader off so its proposals stall in the window.
	tc.net.Partition([]ids.ID{tc.cfg.Nodes[0]}, tc.cfg.Nodes[1:])
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 2, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 20*time.Millisecond)
	if len(leader.p2qs) != 2 {
		t.Fatalf("in-flight slots = %d, want the window full", len(leader.p2qs))
	}
	// A higher ballot deposes the stranded leader.
	higher := leader.Ballot().Next(tc.cfg.Nodes[2])
	tc.sim.Schedule(0, func() {
		leader.OnP2b(wire.P2b{Ballot: higher, From: tc.cfg.Nodes[2], Slot: 1})
	})
	tc.sim.Run(tc.sim.Now() + 10*time.Millisecond)
	if len(leader.p2qs) != 0 {
		t.Fatalf("stale p2qs entries survive deposition: %d — the window is poisoned", len(leader.p2qs))
	}
	if len(leader.retries) != 0 {
		t.Error("retransmit timers must be stopped on step-down")
	}
}

// A retry of a command that was discarded on step-down must be re-admitted
// by a re-elected leader, not swallowed by the duplicate-in-flight branch —
// otherwise the client livelocks forever on that sequence number.
func TestRetryAfterStepDownReadmitted(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.MaxBatchSize = 8
		c.MaxInFlight = 1
		c.BatchDelay = 5 * time.Millisecond
		if c.ID == c.Cluster.Nodes[0] {
			// Only the deposed leader may campaign, so the retry provably
			// lands on the node holding the stale session state.
			c.ElectionTimeout = 30 * time.Millisecond
		}
	})
	leader := tc.leader()
	tc.sim.Run(10 * time.Millisecond)
	cmdB := kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("b"), ClientID: 2, Seq: 1}
	tc.sim.Schedule(0, func() {
		// A fills the 1-slot window; B lands in the batch accumulator.
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
		tc.client.send(tc.cfg.Nodes[0], cmdB)
	})
	// Depose before B's batch-delay flush: B is dropped with a redirect
	// while its session still remembers seq 1 as pending.
	tc.sim.Schedule(time.Millisecond, func() {
		leader.OnP2b(wire.P2b{Ballot: leader.Ballot().Next(tc.cfg.Nodes[2]), From: tc.cfg.Nodes[2], Slot: 1})
	})
	// Let node 1 win re-election, then retry B there.
	tc.sim.Schedule(200*time.Millisecond, func() {
		if !leader.IsLeader() {
			t.Fatal("original leader did not re-elect itself")
		}
		tc.client.send(tc.cfg.Nodes[0], cmdB)
	})
	tc.sim.Run(500 * time.Millisecond)
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 2 && rep.Seq == 1 {
			return
		}
	}
	t.Fatal("retried command swallowed after step-down: no OK reply for client 2 seq 1")
}

// partitionedProposal sets up the duplicate-resurrection scenario: the
// leader proposes a command that cannot commit (partitioned), is deposed
// (routes dropped, session still pending), then heals and re-elects itself,
// re-proposing the recovered slot.
func partitionedProposal(t *testing.T) (*testCluster, kvstore.Command) {
	t.Helper()
	tc := newCluster(t, 3, func(c *Config) {
		if c.ID == c.Cluster.Nodes[0] {
			c.ElectionTimeout = 30 * time.Millisecond
		}
	})
	leader := tc.leader()
	cmd := kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("once"), ClientID: 9, Seq: 1}
	tc.sim.Run(10 * time.Millisecond)
	tc.net.Partition([]ids.ID{tc.cfg.Nodes[0]}, tc.cfg.Nodes[1:])
	tc.sim.Schedule(0, func() { tc.client.send(tc.cfg.Nodes[0], cmd) })
	tc.sim.Run(tc.sim.Now() + 20*time.Millisecond)
	if leader.Stats().Commits != 0 {
		t.Fatal("command must not commit while partitioned")
	}
	tc.sim.Schedule(0, func() {
		leader.OnP2b(wire.P2b{Ballot: leader.Ballot().Next(tc.cfg.Nodes[2]), From: tc.cfg.Nodes[2], Slot: 1})
	})
	tc.sim.Run(tc.sim.Now() + time.Millisecond)
	tc.net.HealPartition()
	return tc, cmd
}

// A retry arriving while the recovered slot is still in flight must
// re-attach its reply route, not open a second slot for the same command.
func TestRetryWhileRecoveredSlotInFlight(t *testing.T) {
	tc, cmd := partitionedProposal(t)
	leader := tc.leader()
	injected := false
	var poll func()
	poll = func() {
		if injected {
			return
		}
		if leader.IsLeader() {
			if e := leader.Log().Get(1); e != nil && !e.Committed {
				injected = true
				before := leader.Stats().BatchedCmds
				leader.OnRequest(tc.client.id, wire.Request{Cmd: cmd})
				if leader.Stats().BatchedCmds != before {
					t.Error("retry re-admitted while the original slot is still in flight")
				}
				return
			}
		}
		tc.sim.Schedule(10*time.Microsecond, poll)
	}
	tc.sim.Schedule(0, poll)
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	if !injected {
		t.Fatal("never caught the recovered slot in flight (leader did not re-elect?)")
	}
	if got := tc.leader().Store().Applied(); got != 1 {
		t.Fatalf("command applied %d times, want exactly once", got)
	}
	okReplies := 0
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 9 && rep.Seq == 1 {
			okReplies++
		}
	}
	if okReplies != 1 {
		t.Fatalf("OK replies = %d, want exactly 1 via the re-attached route", okReplies)
	}
}

// A retry arriving after the recovered slot executed (with its route long
// gone) must be answered from the session cache, never re-admitted.
func TestRetryAfterExecutedWithoutRoute(t *testing.T) {
	tc, cmd := partitionedProposal(t)
	tc.sim.Run(tc.sim.Now() + 300*time.Millisecond) // re-elect, commit, execute
	if got := tc.leader().Store().Applied(); got != 1 {
		t.Fatalf("recovered command applied %d times, want 1", got)
	}
	tc.sim.Schedule(0, func() { tc.client.send(tc.cfg.Nodes[0], cmd) })
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if got := tc.leader().Store().Applied(); got != 1 {
		t.Fatalf("retry re-executed the command: applied %d", got)
	}
	served := false
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 9 && rep.Seq == 1 {
			served = true
		}
	}
	if !served {
		t.Fatal("retry after routeless execution must be served from the session cache")
	}
}

// A lagging node that wins an election must not quorum-commit its no-op
// gap filler over a slot the cluster already committed and executed: the
// followers refuse the doomed proposal and teach back the anchored batch.
func TestRecoveredLeaderCannotOverwriteAnchoredSlot(t *testing.T) {
	tc := newCluster(t, 5, func(c *Config) {
		c.HeartbeatInterval = 2 * time.Millisecond // flush commits fast
		if c.ID == c.Cluster.Nodes[4] {
			c.ElectionTimeout = 30 * time.Millisecond
		}
	})
	lagger := tc.cfg.Nodes[4]
	tc.sim.Run(5 * time.Millisecond)
	// The lagger misses the committed write entirely.
	tc.net.Partition([]ids.ID{lagger}, tc.cfg.Nodes[:4])
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{
			Op: kvstore.Put, Key: 7, Value: []byte("anchored"), ClientID: 1, Seq: 1,
		})
	})
	// Let heartbeat watermarks commit AND execute the slot on nodes 1-4.
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	for _, id := range tc.cfg.Nodes[:4] {
		if tc.replicas[id].Store().Applied() != 1 {
			t.Fatalf("%v did not execute the write pre-failover", id)
		}
	}
	// Old leader dies; the lagger heals and wins the election with a log
	// missing the anchored slot (every P1b omits committed+executed slots).
	tc.net.Crash(tc.cfg.Nodes[0])
	tc.net.HealPartition()
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	nl := tc.replicas[lagger]
	if !nl.IsLeader() {
		t.Fatal("lagging node did not take over")
	}
	// The new leader's first proposal collides with the anchored slot (its
	// empty log reuses slot 1): followers must refuse the doomed proposal
	// and teach back the anchored batch, and the leader must reclaim the
	// collided command into a fresh slot — no client retry needed.
	cmd2 := kvstore.Command{Op: kvstore.Put, Key: 8, Value: []byte("after"), ClientID: 2, Seq: 1}
	tc.sim.Schedule(0, func() { tc.client.send(lagger, cmd2) })
	tc.sim.Run(tc.sim.Now() + 300*time.Millisecond)
	served := false
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 2 {
			served = true
		}
	}
	if !served {
		t.Fatal("recovered leader wedged after the teach-back")
	}
	// The acknowledged write must have survived the collision everywhere.
	if v, ok := nl.Store().Get(7); !ok || string(v) != "anchored" {
		t.Fatalf("acknowledged write lost on recovered leader: got %q, %v", v, ok)
	}
	if v, ok := nl.Store().Get(8); !ok || string(v) != "after" {
		t.Fatalf("post-recovery write missing: got %q, %v", v, ok)
	}
	want := nl.Store().Checksum()
	for _, id := range tc.cfg.Nodes[1:4] {
		if tc.replicas[id].Store().Checksum() != want {
			t.Errorf("%v diverged from the recovered leader", id)
		}
	}
}

// Defense-in-depth behind phase-1 recovery: a follower whose slot already
// committed a different batch must refuse the proposal (no vote) and teach
// the proposer the anchored value.
func TestCommittedSlotRefusesConflictingProposal(t *testing.T) {
	tc := newCluster(t, 3, nil)
	tc.sim.Run(10 * time.Millisecond)
	f := tc.replicas[tc.cfg.Nodes[1]]
	anchored := []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: []byte("real"), ClientID: 1, Seq: 1}}
	f.Log().Commit(5, f.Ballot(), anchored)
	higher := f.Ballot().Next(tc.cfg.Nodes[2])
	sent := tc.net.MessagesSent()
	vote, ok := f.AcceptP2a(wire.P2a{Ballot: higher, Slot: 5})
	if ok {
		t.Fatal("conflicting proposal into a committed slot must be refused")
	}
	if vote.Ballot != higher {
		t.Errorf("refusal must still adopt the proposer's ballot, got %v", vote.Ballot)
	}
	if tc.net.MessagesSent() != sent+1 {
		t.Error("refusal must send exactly one teach-back P3 to the proposer")
	}
	if e := f.Log().Get(5); e == nil || len(e.Commands) != 1 {
		t.Error("anchored batch must survive the refused proposal")
	}
}

// A retry reaching a NEW leader that never saw the original request must be
// answered from the replicated at-most-once table, not executed again.
func TestRetryAtNewLeaderNotReExecuted(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) {
		c.HeartbeatInterval = 2 * time.Millisecond // flush commits fast
		if c.ID == c.Cluster.Nodes[1] {
			c.ElectionTimeout = 30 * time.Millisecond
		}
	})
	cmd := kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("once"), ClientID: 9, Seq: 1}
	tc.sim.Run(5 * time.Millisecond)
	// The old leader commits the write and heartbeat watermarks replicate
	// the execution to the followers.
	tc.sim.Schedule(0, func() { tc.client.send(tc.cfg.Nodes[0], cmd) })
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	next := tc.replicas[tc.cfg.Nodes[1]]
	if next.Store().Applied() != 1 {
		t.Fatal("follower did not execute the write pre-failover")
	}
	// Old leader dies; the follower takes over and the client retries there.
	tc.net.Crash(tc.cfg.Nodes[0])
	tc.sim.Run(tc.sim.Now() + 300*time.Millisecond)
	if !next.IsLeader() {
		t.Fatal("follower did not take over")
	}
	tc.sim.Schedule(0, func() { tc.client.send(tc.cfg.Nodes[1], cmd) })
	tc.sim.Run(tc.sim.Now() + 100*time.Millisecond)
	if got := next.Store().Applied(); got != 1 {
		t.Fatalf("retry at the new leader re-executed the command: applied %d", got)
	}
	served := false
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 9 && rep.Seq == 1 {
			served = true
		}
	}
	if !served {
		t.Fatal("retry at the new leader must be served from the replicated session cache")
	}
}

// A higher-ballot P3 reaching a stale active leader must dethrone it fully
// before the trailing flush, or its queued batch would propose under the
// new leader's ballot — two proposers on one ballot.
func TestHigherBallotP3Dethrones(t *testing.T) {
	tc := batchCluster(t, 3, 8, 1, time.Hour) // window 1, delay ∞: B stays pending
	leader := tc.leader()
	tc.sim.Run(10 * time.Millisecond)
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 2, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 5*time.Millisecond)
	higher := leader.Ballot().Next(tc.cfg.Nodes[2])
	tc.sim.Schedule(0, func() {
		leader.OnP3(wire.P3{Ballot: higher, Slot: 50, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 9}}})
	})
	tc.sim.Run(tc.sim.Now() + 20*time.Millisecond)
	if leader.IsLeader() {
		t.Fatal("higher-ballot P3 must dethrone the stale leader")
	}
	if len(leader.pending) != 0 {
		t.Error("pending batch must be redirected, not proposed under the new ballot")
	}
	redirected := 0
	for _, rep := range tc.client.replies {
		if !rep.OK && rep.Leader == tc.cfg.Nodes[2] {
			redirected++
		}
	}
	if redirected < 2 {
		t.Errorf("redirected %d of 2 queued commands", redirected)
	}
}

// Losing a campaign via a higher-ballot P1b must bounce queued commands to
// the new ballot owner like every other step-down path.
func TestLostCampaignRedirectsPending(t *testing.T) {
	tc := batchCluster(t, 3, 8, 1, time.Hour) // window 1, delay ∞: B stays pending
	leader := tc.leader()
	tc.sim.Run(10 * time.Millisecond)
	tc.sim.Schedule(0, func() {
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
		tc.client.send(tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 2, ClientID: 2, Seq: 1})
	})
	tc.sim.Run(tc.sim.Now() + 5*time.Millisecond)
	higher := leader.Ballot().Next(tc.cfg.Nodes[2])
	tc.sim.Schedule(0, func() {
		leader.OnP1b(wire.P1b{Ballot: higher, From: tc.cfg.Nodes[2]})
	})
	tc.sim.Run(tc.sim.Now() + 20*time.Millisecond)
	redirected := map[uint64]bool{}
	for _, rep := range tc.client.replies {
		if !rep.OK && rep.Leader == tc.cfg.Nodes[2] {
			redirected[rep.ClientID] = true
		}
	}
	if !redirected[1] || !redirected[2] {
		t.Errorf("clients redirected: %v, want both 1 (in flight) and 2 (pending)", redirected)
	}
	if len(leader.pending) != 0 || len(leader.p2qs) != 0 {
		t.Error("pending batch and in-flight tallies must be cleared on a lost campaign")
	}
}

// Batch caps beyond the wire format's uint16 count are clamped, not
// silently truncated into corrupt frames.
func TestHugeBatchCapClamped(t *testing.T) {
	c := Config{MaxBatchSize: 1 << 20}
	c.applyDefaults()
	if c.MaxBatchSize != 65535 {
		t.Errorf("MaxBatchSize = %d, want clamped to 65535", c.MaxBatchSize)
	}
}

func TestUnbatchedDefaultsMatchSeedMessageFlow(t *testing.T) {
	// MaxBatchSize 1 + unbounded window must produce exactly one slot per
	// command — the seed's message economy.
	tc := newCluster(t, 5, func(c *Config) {
		c.HeartbeatInterval = time.Hour
	})
	leader := tc.cfg.Nodes[0]
	for i := 0; i < 10; i++ {
		i := i
		tc.sim.Schedule(time.Duration(5+i)*time.Millisecond, func() {
			tc.client.send(leader, kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: uint64(i + 1)})
		})
	}
	tc.sim.Run(200 * time.Millisecond)
	st := tc.leader().Stats()
	if st.Batches != 10 || st.BatchedCmds != 10 {
		t.Errorf("batches=%d cmds=%d, want 10/10 (one slot per command)", st.Batches, st.BatchedCmds)
	}
	if st.MeanBatchSize() != 1 {
		t.Errorf("mean batch %.2f, want exactly 1", st.MeanBatchSize())
	}
}
