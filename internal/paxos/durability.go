package paxos

import (
	"fmt"

	"pigpaxos/internal/wal"
	"pigpaxos/internal/wire"
)

// This file wires the replica to its wal.Storage. Every entry point is a
// no-op when cfg.Storage is nil, so the volatile default keeps the exact
// event sequence of the seed.
//
// The sync discipline follows the classical acceptor rule — state must be
// durable before the message that reveals it leaves:
//
//   - a promise (P1b) syncs a KindPromise record first (ensurePromised);
//   - an accept vote (P2b, and the leader's own self-vote) syncs the
//     KindAccept record the rlog journaled (syncStorage at the accept site);
//   - commits are journaled but synced lazily — a lost commit record is
//     re-learned from a quorum during phase-1, so it never forges anything.
//
// The leader batches commands into slots, so "one fsync per batch" falls out
// naturally: propose() syncs once per slot, covering the whole batch.

// recoverFromStorage rebuilds replica state from snapshot + journal tail at
// construction time. Ordering matters: the snapshot positions the log floor,
// replay fills the tail above it, and only then is the journal attached to
// the log (attaching earlier would re-journal the replayed records).
func (r *Replica) recoverFromStorage() {
	if snap, ok := r.st.Snapshot(); ok {
		ballot, err := r.restoreSnapshot(snap.Data)
		if err != nil {
			panic(fmt.Sprintf("paxos %v: unreadable local snapshot: %v", r.cfg.ID, err))
		}
		r.ballot = ballot
		r.log.InstallSnapshot(snap.Floor)
		r.stats.SnapRestores++
	}
	err := r.st.Replay(func(rec wal.Record) error {
		if rec.Ballot > r.ballot {
			r.ballot = rec.Ballot
		}
		if rec.Kind == wal.KindPromise || rec.Slot < r.log.FirstSlot() {
			return nil // ballot already folded in; slot covered by snapshot
		}
		switch rec.Kind {
		case wal.KindAccept:
			r.log.Accept(rec.Slot, rec.Ballot, rec.Cmds)
		case wal.KindCommit:
			r.log.Commit(rec.Slot, rec.Ballot, rec.Cmds)
		}
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("paxos %v: journal replay failed: %v", r.cfg.ID, err))
	}
	r.journaledBallot = r.ballot
	r.log.Attach(r.st)
	// Re-apply the committed tail above the snapshot floor. Routes are empty,
	// so no replies go out; ExecWork is charged as honest recovery CPU.
	r.execute()
	if r.cfg.ReadMode == ReadLease {
		// The pre-crash replica may have promised the leader a lease; the
		// promise window is not journaled, so re-arm it conservatively. A
		// restarted follower must not elect itself inside a window the old
		// incarnation promised away.
		r.leasePromiseUntil = r.ctx.Now() + r.cfg.LeaseDuration
	}
}

// ensurePromised makes the current ballot durable before a promise for it is
// sent. Idempotent per ballot; accept records carry their ballot too, so
// journaledBallot also advances at accept sync sites.
func (r *Replica) ensurePromised() {
	if r.st == nil || r.ballot <= r.journaledBallot {
		return
	}
	if err := r.st.Append(wal.Record{Kind: wal.KindPromise, Ballot: r.ballot}); err != nil {
		panic(fmt.Sprintf("paxos %v: journal promise: %v", r.cfg.ID, err))
	}
	r.syncStorage()
}

// syncStorage flushes the journal, charging simulated fsync latency only
// when records were actually pending (group fsync: one call covers every
// append since the last).
func (r *Replica) syncStorage() {
	if r.st == nil {
		return
	}
	synced, err := r.st.Sync()
	if err != nil {
		panic(fmt.Sprintf("paxos %v: journal sync: %v", r.cfg.ID, err))
	}
	if synced {
		r.stats.WALSyncs++
		if r.journaledBallot < r.ballot {
			r.journaledBallot = r.ballot
		}
		r.ctx.Work(r.st.SyncCost())
	}
}

// maybeSnapshot checkpoints the state machine every SnapshotEvery local
// executions and compacts both the in-memory log and the journal to the
// snapshot floor — this is what bounds memory and disk over a long run, and
// what lets restart replay snapshot + tail instead of the full history.
func (r *Replica) maybeSnapshot() {
	if r.st == nil || r.cfg.SnapshotEvery <= 0 || r.execSinceSnap < r.cfg.SnapshotEvery {
		return
	}
	r.execSinceSnap = 0
	floor := r.log.ExecuteCursor()
	if err := r.st.SaveSnapshot(wal.Snapshot{Floor: floor, Data: r.encodeSnapshot()}); err != nil {
		panic(fmt.Sprintf("paxos %v: save snapshot: %v", r.cfg.ID, err))
	}
	r.stats.Snapshots++
	r.ctx.Work(r.st.SyncCost())
	r.log.CompactTo(floor)
	r.st.CompactTo(floor)
}

// OnSnapInstall installs a snapshot shipped by the leader to a replica whose
// catch-up request fell below the leader's compaction floor.
func (r *Replica) OnSnapInstall(m wire.SnapInstall) {
	r.catchupInFlight = false
	if m.Ballot > r.ballot {
		r.ballot = m.Ballot
		r.active = false
		r.redirectPending()
	}
	if m.Ballot >= r.ballot {
		r.lastLeaderContact = r.ctx.Now()
	}
	if m.Floor <= r.log.ExecuteCursor() {
		return // already caught up past the snapshot; nothing to gain
	}
	ballot, err := r.restoreSnapshot(m.Data)
	if err != nil {
		panic(fmt.Sprintf("paxos %v: peer snapshot rejected: %v", r.cfg.ID, err))
	}
	if ballot > r.ballot {
		r.ballot = ballot
	}
	r.log.InstallSnapshot(m.Floor)
	r.stats.SnapRestores++
	if r.st != nil {
		// Persist the installed snapshot as our own checkpoint so a crash
		// right now restarts from here, then drop the journal prefix it
		// covers.
		if err := r.st.SaveSnapshot(wal.Snapshot{Floor: m.Floor, Data: m.Data}); err != nil {
			panic(fmt.Sprintf("paxos %v: persist installed snapshot: %v", r.cfg.ID, err))
		}
		r.ctx.Work(r.st.SyncCost())
		r.st.CompactTo(m.Floor)
		r.execSinceSnap = 0
	}
	r.execute()
}
