// Package rlog implements the replicated command log shared by Paxos and
// PigPaxos replicas: a sparse slot → entry map with commit tracking and an
// in-order execution cursor that tolerates gaps (commands execute only once
// every lower slot has executed, per Paxos phase-3 semantics).
//
// Each slot holds a command *batch*: the leader may pack several client
// commands into one consensus instance, amortizing the fan-out round over
// the whole batch. A one-element batch is the unbatched degenerate case; a
// nil batch is a no-op filler slot (leader-change gap anchoring).
package rlog

import (
	"fmt"
	"sort"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wal"
)

// Entry is one slot of the replicated log.
type Entry struct {
	Ballot    ids.Ballot        // ballot under which the batch was accepted
	Commands  []kvstore.Command // the accepted command batch (nil = no-op)
	Committed bool              // leader anchored the batch
	Executed  bool              // applied to the state machine
}

// Log is a single replica's view of the replicated log. It is not safe for
// concurrent use; each replica's event loop owns its log.
type Log struct {
	entries   map[uint64]*Entry
	firstSlot uint64 // lowest slot that may still be unexecuted
	nextSlot  uint64 // next slot a leader would propose into
	execCur   uint64 // next slot to execute

	// st, when attached, journals every Accept and Commit so the log is
	// reconstructible after a crash. Attached only after boot replay, so
	// replaying records does not re-journal them.
	st wal.Storage
}

// New creates an empty log whose first slot is 1.
func New() *Log {
	return &Log{entries: make(map[uint64]*Entry), firstSlot: 1, nextSlot: 1, execCur: 1}
}

// Attach turns on journaling: every subsequent Accept and Commit is
// appended to st (buffered; the replica decides when to Sync). Callers
// replay st into the log first, then attach.
func (l *Log) Attach(st wal.Storage) { l.st = st }

// InstallSnapshot positions the log on top of a state-machine snapshot
// covering every slot below floor: entries below floor are dropped and all
// cursors advance to at least floor. Handles a snapshot newer than the log
// tail (floor beyond nextSlot) — the log simply becomes empty at floor.
func (l *Log) InstallSnapshot(floor uint64) {
	for s := range l.entries {
		if s < floor {
			delete(l.entries, s)
		}
	}
	if floor > l.firstSlot {
		l.firstSlot = floor
	}
	if floor > l.execCur {
		l.execCur = floor
	}
	if floor > l.nextSlot {
		l.nextSlot = floor
	}
}

// NextSlot returns the next unproposed slot and advances the proposal cursor.
func (l *Log) NextSlot() uint64 {
	s := l.nextSlot
	l.nextSlot++
	return s
}

// PeekNextSlot returns the next unproposed slot without advancing.
func (l *Log) PeekNextSlot() uint64 { return l.nextSlot }

// BumpNextSlot ensures the proposal cursor is strictly beyond slot. Called
// when a replica learns of higher slots (e.g. a new leader recovering state).
func (l *Log) BumpNextSlot(slot uint64) {
	if slot >= l.nextSlot {
		l.nextSlot = slot + 1
	}
}

// Accept records batch cmds as accepted in slot under ballot b, overwriting
// any previously accepted value with a lower ballot. It returns false when
// the slot already holds a value under a higher ballot (the accept is stale)
// or the slot has already committed a different proposal.
func (l *Log) Accept(slot uint64, b ids.Ballot, cmds []kvstore.Command) bool {
	if slot < l.firstSlot {
		// Compacted ⇒ committed and executed: any new proposal for the slot
		// is necessarily stale. Accepting it as a fresh entry would let a
		// lagging leader quorum a no-op over an anchored batch.
		return false
	}
	e, ok := l.entries[slot]
	if !ok {
		l.entries[slot] = &Entry{Ballot: b, Commands: cmds}
		l.BumpNextSlot(slot)
		l.journal(wal.KindAccept, slot, b, cmds)
		return true
	}
	if e.Committed {
		// Same-ballot re-delivery is fine; conflicting commit is a bug
		// upstream, refuse to overwrite.
		return e.Ballot == b
	}
	if b < e.Ballot {
		return false
	}
	e.Ballot = b
	e.Commands = cmds
	l.BumpNextSlot(slot)
	l.journal(wal.KindAccept, slot, b, cmds)
	return true
}

// journal appends one record to the attached storage (buffered until the
// replica syncs). Append on the provided implementations cannot fail; an
// I/O error from a file-backed journal is fatal — continuing would
// acknowledge state that was never persisted.
func (l *Log) journal(kind wal.Kind, slot uint64, b ids.Ballot, cmds []kvstore.Command) {
	if l.st == nil {
		return
	}
	if err := l.st.Append(wal.Record{Kind: kind, Ballot: b, Slot: slot, Cmds: cmds}); err != nil {
		panic(fmt.Sprintf("rlog: journal append failed: %v", err))
	}
}

// Commit marks slot committed with batch cmds. Commit is authoritative:
// phase-3 messages carry the anchored batch, so the entry is overwritten
// even if a different value was accepted locally under an older ballot.
func (l *Log) Commit(slot uint64, b ids.Ballot, cmds []kvstore.Command) {
	if slot < l.firstSlot {
		return // compacted: already committed and executed here
	}
	e, ok := l.entries[slot]
	if !ok {
		e = &Entry{}
		l.entries[slot] = e
	}
	if e.Executed {
		return
	}
	e.Ballot = b
	e.Commands = cmds
	e.Committed = true
	l.BumpNextSlot(slot)
	l.journal(wal.KindCommit, slot, b, cmds)
}

// Get returns the entry at slot, or nil.
func (l *Log) Get(slot uint64) *Entry { return l.entries[slot] }

// ExecuteReady applies every contiguous committed-but-unexecuted batch
// starting at the execution cursor to sm, invoking fn (if non-nil) with the
// slot, the command's index within its batch, and the result. It stops at
// the first gap or uncommitted slot and returns the number of commands
// executed (no-op slots advance the cursor without executing anything).
func (l *Log) ExecuteReady(sm *kvstore.Store, fn func(slot uint64, idx int, cmd kvstore.Command, res kvstore.Result)) int {
	n := 0
	for {
		e, ok := l.entries[l.execCur]
		if !ok || !e.Committed {
			return n
		}
		for i, cmd := range e.Commands {
			res := sm.Apply(cmd)
			if fn != nil {
				fn(l.execCur, i, cmd, res)
			}
			n++
		}
		e.Executed = true
		l.execCur++
	}
}

// ExecuteCursor returns the next slot awaiting execution.
func (l *Log) ExecuteCursor() uint64 { return l.execCur }

// SlotEntry pairs a slot number with its entry for ordered iteration.
type SlotEntry struct {
	Slot  uint64
	Entry Entry
}

// Uncommitted returns the slots in [from, l.nextSlot) that hold accepted but
// uncommitted proposals, in ascending slot order. The sorted slice (not a
// map) keeps map iteration order out of any caller's message or timing
// sequence — the same determinism bug class the PR 4 redirectPending fix
// closed. (Phase-1 recovery walks the log directly to include committed
// entries; this remains as a diagnostic helper.)
func (l *Log) Uncommitted(from uint64) []SlotEntry {
	var out []SlotEntry
	for s, e := range l.entries {
		if s >= from && !e.Committed {
			out = append(out, SlotEntry{Slot: s, Entry: *e})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// CommittedCount returns how many slots have committed (for tests/metrics).
func (l *Log) CommittedCount() int {
	n := 0
	for _, e := range l.entries {
		if e.Committed {
			n++
		}
	}
	return n
}

// CompactTo discards executed entries below slot to bound memory. Slots are
// only discarded if executed; callers typically pass the cluster-wide
// minimum execution cursor.
func (l *Log) CompactTo(slot uint64) int {
	n := 0
	for s, e := range l.entries {
		if s < slot && e.Executed {
			delete(l.entries, s)
			n++
		}
	}
	if slot > l.firstSlot {
		l.firstSlot = slot
	}
	return n
}

// Len returns the number of live entries.
func (l *Log) Len() int { return len(l.entries) }

// FirstSlot returns the compaction floor: the lowest slot the log may still
// hold. Requests for slots below it need snapshot-based catch-up.
func (l *Log) FirstSlot() uint64 { return l.firstSlot }

// String summarizes the log state.
func (l *Log) String() string {
	return fmt.Sprintf("log{next=%d exec=%d entries=%d}", l.nextSlot, l.execCur, len(l.entries))
}
