package rlog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wal"
)

func bal(n int) ids.Ballot { return ids.NewBallot(n, ids.NewID(1, 1)) }

func cmd(k uint64) kvstore.Command {
	return kvstore.Command{Op: kvstore.Put, Key: k, Value: []byte{byte(k)}}
}

// one wraps a single command into the degenerate one-element batch.
func one(k uint64) []kvstore.Command { return []kvstore.Command{cmd(k)} }

func TestNextSlotMonotonic(t *testing.T) {
	l := New()
	if s := l.NextSlot(); s != 1 {
		t.Errorf("first slot = %d, want 1", s)
	}
	if s := l.NextSlot(); s != 2 {
		t.Errorf("second slot = %d, want 2", s)
	}
	if l.PeekNextSlot() != 3 {
		t.Error("peek should see 3")
	}
	if l.PeekNextSlot() != 3 {
		t.Error("peek must not advance")
	}
}

func TestAcceptBasic(t *testing.T) {
	l := New()
	if !l.Accept(1, bal(1), one(7)) {
		t.Fatal("fresh accept should succeed")
	}
	e := l.Get(1)
	if e == nil || e.Commands[0].Key != 7 || e.Committed {
		t.Fatalf("entry after accept: %+v", e)
	}
}

func TestAcceptStaleBallotRejected(t *testing.T) {
	l := New()
	l.Accept(1, bal(5), one(1))
	if l.Accept(1, bal(3), one(2)) {
		t.Error("lower-ballot accept must be rejected")
	}
	if l.Get(1).Commands[0].Key != 1 {
		t.Error("stale accept must not overwrite")
	}
}

func TestAcceptHigherBallotOverwrites(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	if !l.Accept(1, bal(2), one(2)) {
		t.Error("higher-ballot accept must succeed")
	}
	if l.Get(1).Commands[0].Key != 2 {
		t.Error("higher-ballot accept must overwrite")
	}
}

func TestAcceptAfterCommit(t *testing.T) {
	l := New()
	l.Commit(1, bal(2), one(9))
	if l.Accept(1, bal(3), one(1)) {
		t.Error("accept on a committed slot under a different ballot must fail")
	}
	if !l.Accept(1, bal(2), one(9)) {
		t.Error("same-ballot re-delivery should be tolerated")
	}
	if l.Get(1).Commands[0].Key != 9 {
		t.Error("committed value must be preserved")
	}
}

func TestCommitBumpsNextSlot(t *testing.T) {
	l := New()
	l.Commit(10, bal(1), one(1))
	if l.PeekNextSlot() != 11 {
		t.Errorf("nextSlot = %d, want 11", l.PeekNextSlot())
	}
}

func TestExecuteInOrderWithGap(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.Commit(3, bal(1), one(3)) // gap at 2
	var got []uint64
	n := l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
		got = append(got, s)
	})
	if n != 1 || len(got) != 1 || got[0] != 1 {
		t.Fatalf("executed %v, want [1] only (gap at 2)", got)
	}
	l.Commit(2, bal(1), one(2))
	n = l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
		got = append(got, s)
	})
	if n != 2 || len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("after gap fill executed %v, want [1 2 3]", got)
	}
	if l.ExecuteCursor() != 4 {
		t.Errorf("exec cursor = %d, want 4", l.ExecuteCursor())
	}
}

func TestExecuteIdempotent(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.ExecuteReady(sm, nil)
	if n := l.ExecuteReady(sm, nil); n != 0 {
		t.Error("second ExecuteReady must be a no-op")
	}
	if sm.Applied() != 1 {
		t.Errorf("applied %d commands, want 1", sm.Applied())
	}
}

func TestCommitAfterExecuteIgnored(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.ExecuteReady(sm, nil)
	l.Commit(1, bal(9), one(99)) // late duplicate commit
	if l.Get(1).Commands[0].Key != 1 {
		t.Error("executed entry must not be overwritten")
	}
}

func TestUncommitted(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	l.Commit(2, bal(1), one(2))
	l.Accept(3, bal(1), one(3))
	u := l.Uncommitted(1)
	if len(u) != 2 || u[0].Slot != 1 || u[1].Slot != 3 {
		t.Fatalf("uncommitted: %v, want slots [1 3] in order", u)
	}
	for _, se := range u {
		if se.Slot == 2 {
			t.Error("committed slot must not appear")
		}
	}
	u = l.Uncommitted(3)
	if len(u) != 1 || u[0].Slot != 3 {
		t.Errorf("from=3 should only see slot 3, got %v", u)
	}
}

// TestUncommittedSorted pins the satellite fix: results are in ascending
// slot order regardless of map insertion order.
func TestUncommittedSorted(t *testing.T) {
	l := New()
	for _, s := range []uint64{9, 2, 7, 4, 1, 8} {
		l.Accept(s, bal(1), one(s))
	}
	u := l.Uncommitted(1)
	for i := 1; i < len(u); i++ {
		if u[i-1].Slot >= u[i].Slot {
			t.Fatalf("uncommitted slots out of order: %v", u)
		}
	}
}

func TestCompactTo(t *testing.T) {
	l := New()
	sm := kvstore.New()
	for s := uint64(1); s <= 5; s++ {
		l.Commit(s, bal(1), one(s))
	}
	l.ExecuteReady(sm, nil)
	n := l.CompactTo(4)
	if n != 3 {
		t.Errorf("compacted %d, want 3", n)
	}
	if l.Get(1) != nil || l.Get(4) == nil {
		t.Error("compaction boundary wrong")
	}
}

func TestCompactSkipsUnexecuted(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1)) // never committed/executed
	if n := l.CompactTo(10); n != 0 {
		t.Error("unexecuted entries must survive compaction")
	}
}

func TestCommittedCount(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	l.Commit(2, bal(1), one(2))
	l.Commit(3, bal(1), one(3))
	if got := l.CommittedCount(); got != 2 {
		t.Errorf("CommittedCount = %d, want 2", got)
	}
}

// Property: replaying any interleaving of commits for slots 1..n executes
// each slot exactly once and in ascending order.
func TestExecutionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		order := rng.Perm(n)
		l := New()
		sm := kvstore.New()
		var execd []uint64
		for _, i := range order {
			l.Commit(uint64(i+1), bal(1), one(uint64(i)))
			l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
				execd = append(execd, s)
			})
		}
		if len(execd) != n {
			return false
		}
		for i, s := range execd {
			if s != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: two replicas that see the same commits (in different orders)
// converge to identical state machines.
func TestReplicaConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		cmds := make([]kvstore.Command, n)
		for i := range cmds {
			cmds[i] = kvstore.Command{
				Op:    kvstore.Op(rng.Intn(3)),
				Key:   uint64(rng.Intn(5)),
				Value: []byte{byte(rng.Intn(256))},
			}
		}
		mk := func(order []int) uint64 {
			l := New()
			sm := kvstore.New()
			for _, i := range order {
				l.Commit(uint64(i+1), bal(1), []kvstore.Command{cmds[i]})
				l.ExecuteReady(sm, nil)
			}
			return sm.Checksum()
		}
		a := mk(rng.Perm(n))
		b := mk(rng.Perm(n))
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExecuteBatchInOrder(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), []kvstore.Command{cmd(1), cmd(2), cmd(3)})
	var idxs []int
	n := l.ExecuteReady(sm, func(s uint64, i int, c kvstore.Command, _ kvstore.Result) {
		if s != 1 || c.Key != uint64(i+1) {
			t.Errorf("slot %d idx %d got key %d", s, i, c.Key)
		}
		idxs = append(idxs, i)
	})
	if n != 3 || len(idxs) != 3 || idxs[0] != 0 || idxs[2] != 2 {
		t.Fatalf("executed %d commands, idxs %v", n, idxs)
	}
	if l.ExecuteCursor() != 2 {
		t.Errorf("cursor = %d, want 2 (one slot, three commands)", l.ExecuteCursor())
	}
	if sm.Applied() != 3 {
		t.Errorf("applied %d, want 3", sm.Applied())
	}
}

func TestNoopSlotAdvancesCursor(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), nil) // leader-change filler
	l.Commit(2, bal(1), one(9))
	n := l.ExecuteReady(sm, nil)
	if n != 1 {
		t.Fatalf("executed %d commands, want 1 (no-op slot applies nothing)", n)
	}
	if l.ExecuteCursor() != 3 {
		t.Errorf("cursor = %d, want 3", l.ExecuteCursor())
	}
}

// rebuild replays a journal into a fresh log (the boot path paxos drives).
func rebuild(t *testing.T, st *wal.MemStorage, floor uint64) *Log {
	t.Helper()
	l := New()
	l.InstallSnapshot(floor)
	err := st.Replay(func(r wal.Record) error {
		if r.Slot < floor {
			return nil
		}
		switch r.Kind {
		case wal.KindAccept:
			l.Accept(r.Slot, r.Ballot, r.Cmds)
		case wal.KindCommit:
			l.Commit(r.Slot, r.Ballot, r.Cmds)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	l.Attach(st)
	return l
}

// TestJournalRoundTrip drives a journaled log through accepts and commits,
// crashes it, and rebuilds from the WAL: the reconstruction must execute to
// the same state machine.
func TestJournalRoundTrip(t *testing.T) {
	st := wal.NewMem()
	l := New()
	l.Attach(st)
	sm := kvstore.New()
	for s := uint64(1); s <= 8; s++ {
		l.Accept(s, bal(1), one(s))
		l.Commit(s, bal(1), one(s))
	}
	l.Accept(9, bal(1), one(9)) // accepted, never committed
	l.ExecuteReady(sm, nil)
	if _, err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	l2 := rebuild(t, st, 1)
	sm2 := kvstore.New()
	l2.ExecuteReady(sm2, nil)
	if sm2.Checksum() != sm.Checksum() {
		t.Fatal("rebuilt log executes to a different state")
	}
	if e := l2.Get(9); e == nil || e.Committed {
		t.Fatalf("uncommitted accept lost in replay: %+v", e)
	}
	if l2.PeekNextSlot() != l.PeekNextSlot() {
		t.Errorf("nextSlot %d, want %d", l2.PeekNextSlot(), l.PeekNextSlot())
	}
}

func TestInstallSnapshotDropsPrefix(t *testing.T) {
	l := New()
	for s := uint64(1); s <= 6; s++ {
		l.Commit(s, bal(1), one(s))
	}
	l.InstallSnapshot(4)
	if l.Get(3) != nil || l.Get(4) == nil {
		t.Error("snapshot floor boundary wrong")
	}
	if l.ExecuteCursor() != 4 || l.FirstSlot() != 4 {
		t.Errorf("cursors after install: exec=%d first=%d, want 4,4", l.ExecuteCursor(), l.FirstSlot())
	}
}

// TestInstallSnapshotNewerThanTail covers the recovery edge where the
// snapshot is ahead of everything the log holds: the log becomes empty and
// all cursors land on the floor.
func TestInstallSnapshotNewerThanTail(t *testing.T) {
	l := New()
	l.Commit(1, bal(1), one(1))
	l.InstallSnapshot(100)
	if l.Len() != 0 {
		t.Errorf("log should be empty, has %d entries", l.Len())
	}
	if l.ExecuteCursor() != 100 || l.PeekNextSlot() != 100 || l.FirstSlot() != 100 {
		t.Errorf("cursors: exec=%d next=%d first=%d, want 100 each",
			l.ExecuteCursor(), l.PeekNextSlot(), l.FirstSlot())
	}
	// Execution resumes cleanly above the floor.
	sm := kvstore.New()
	l.Commit(100, bal(1), one(7))
	if n := l.ExecuteReady(sm, nil); n != 1 {
		t.Errorf("executed %d, want 1", n)
	}
}

// TestCompactionConsistency is the satellite assertion: compacting to the
// snapshot floor preserves the execution cursor and the state machine
// checksum, and the journal's segments follow the floor.
func TestCompactionConsistency(t *testing.T) {
	st := wal.NewMem()
	st.SetSegBytes(64) // force frequent rolls
	l := New()
	l.Attach(st)
	sm := kvstore.New()
	for s := uint64(1); s <= 40; s++ {
		l.Accept(s, bal(1), one(s%5))
		l.Commit(s, bal(1), one(s%5))
		l.ExecuteReady(sm, nil)
		st.Sync()
	}
	cur := l.ExecuteCursor()
	sum := sm.Checksum()
	segsBefore := st.Segments()

	floor := cur // snapshot covers everything executed
	st.SaveSnapshot(wal.Snapshot{Floor: floor, Data: sm.Serialize(nil)})
	l.CompactTo(floor)
	st.CompactTo(floor)

	if l.ExecuteCursor() != cur {
		t.Errorf("compaction moved the execution cursor: %d → %d", cur, l.ExecuteCursor())
	}
	if sm.Checksum() != sum {
		t.Error("compaction changed the state machine checksum")
	}
	if l.Len() != 0 {
		t.Errorf("log holds %d entries below the floor", l.Len())
	}
	if st.Segments() >= segsBefore {
		t.Errorf("journal segments not reclaimed: %d → %d", segsBefore, st.Segments())
	}

	// A restart from snapshot + (empty) tail reproduces the state.
	snap, ok := st.Snapshot()
	if !ok {
		t.Fatal("snapshot missing")
	}
	sm2 := kvstore.New()
	if _, err := sm2.Restore(snap.Data); err != nil {
		t.Fatal(err)
	}
	l2 := rebuild(t, st, snap.Floor)
	l2.ExecuteReady(sm2, nil)
	if sm2.Checksum() != sum || sm2.Applied() != sm.Applied() {
		t.Fatal("restart from snapshot+tail diverged from pre-crash state")
	}
}

func BenchmarkAcceptCommitExecute(b *testing.B) {
	l := New()
	sm := kvstore.New()
	c := one(1)
	ball := bal(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		slot := l.NextSlot()
		l.Accept(slot, ball, c)
		l.Commit(slot, ball, c)
		l.ExecuteReady(sm, nil)
		if i%4096 == 0 {
			l.CompactTo(l.ExecuteCursor() - 1)
		}
	}
}
