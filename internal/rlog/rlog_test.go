package rlog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

func bal(n int) ids.Ballot { return ids.NewBallot(n, ids.NewID(1, 1)) }

func cmd(k uint64) kvstore.Command {
	return kvstore.Command{Op: kvstore.Put, Key: k, Value: []byte{byte(k)}}
}

// one wraps a single command into the degenerate one-element batch.
func one(k uint64) []kvstore.Command { return []kvstore.Command{cmd(k)} }

func TestNextSlotMonotonic(t *testing.T) {
	l := New()
	if s := l.NextSlot(); s != 1 {
		t.Errorf("first slot = %d, want 1", s)
	}
	if s := l.NextSlot(); s != 2 {
		t.Errorf("second slot = %d, want 2", s)
	}
	if l.PeekNextSlot() != 3 {
		t.Error("peek should see 3")
	}
	if l.PeekNextSlot() != 3 {
		t.Error("peek must not advance")
	}
}

func TestAcceptBasic(t *testing.T) {
	l := New()
	if !l.Accept(1, bal(1), one(7)) {
		t.Fatal("fresh accept should succeed")
	}
	e := l.Get(1)
	if e == nil || e.Commands[0].Key != 7 || e.Committed {
		t.Fatalf("entry after accept: %+v", e)
	}
}

func TestAcceptStaleBallotRejected(t *testing.T) {
	l := New()
	l.Accept(1, bal(5), one(1))
	if l.Accept(1, bal(3), one(2)) {
		t.Error("lower-ballot accept must be rejected")
	}
	if l.Get(1).Commands[0].Key != 1 {
		t.Error("stale accept must not overwrite")
	}
}

func TestAcceptHigherBallotOverwrites(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	if !l.Accept(1, bal(2), one(2)) {
		t.Error("higher-ballot accept must succeed")
	}
	if l.Get(1).Commands[0].Key != 2 {
		t.Error("higher-ballot accept must overwrite")
	}
}

func TestAcceptAfterCommit(t *testing.T) {
	l := New()
	l.Commit(1, bal(2), one(9))
	if l.Accept(1, bal(3), one(1)) {
		t.Error("accept on a committed slot under a different ballot must fail")
	}
	if !l.Accept(1, bal(2), one(9)) {
		t.Error("same-ballot re-delivery should be tolerated")
	}
	if l.Get(1).Commands[0].Key != 9 {
		t.Error("committed value must be preserved")
	}
}

func TestCommitBumpsNextSlot(t *testing.T) {
	l := New()
	l.Commit(10, bal(1), one(1))
	if l.PeekNextSlot() != 11 {
		t.Errorf("nextSlot = %d, want 11", l.PeekNextSlot())
	}
}

func TestExecuteInOrderWithGap(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.Commit(3, bal(1), one(3)) // gap at 2
	var got []uint64
	n := l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
		got = append(got, s)
	})
	if n != 1 || len(got) != 1 || got[0] != 1 {
		t.Fatalf("executed %v, want [1] only (gap at 2)", got)
	}
	l.Commit(2, bal(1), one(2))
	n = l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
		got = append(got, s)
	})
	if n != 2 || len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("after gap fill executed %v, want [1 2 3]", got)
	}
	if l.ExecuteCursor() != 4 {
		t.Errorf("exec cursor = %d, want 4", l.ExecuteCursor())
	}
}

func TestExecuteIdempotent(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.ExecuteReady(sm, nil)
	if n := l.ExecuteReady(sm, nil); n != 0 {
		t.Error("second ExecuteReady must be a no-op")
	}
	if sm.Applied() != 1 {
		t.Errorf("applied %d commands, want 1", sm.Applied())
	}
}

func TestCommitAfterExecuteIgnored(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), one(1))
	l.ExecuteReady(sm, nil)
	l.Commit(1, bal(9), one(99)) // late duplicate commit
	if l.Get(1).Commands[0].Key != 1 {
		t.Error("executed entry must not be overwritten")
	}
}

func TestUncommitted(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	l.Commit(2, bal(1), one(2))
	l.Accept(3, bal(1), one(3))
	u := l.Uncommitted(1)
	if len(u) != 2 {
		t.Fatalf("uncommitted: %v, want slots 1 and 3", u)
	}
	if _, ok := u[2]; ok {
		t.Error("committed slot must not appear")
	}
	u = l.Uncommitted(3)
	if len(u) != 1 {
		t.Error("from=3 should only see slot 3")
	}
}

func TestCompactTo(t *testing.T) {
	l := New()
	sm := kvstore.New()
	for s := uint64(1); s <= 5; s++ {
		l.Commit(s, bal(1), one(s))
	}
	l.ExecuteReady(sm, nil)
	n := l.CompactTo(4)
	if n != 3 {
		t.Errorf("compacted %d, want 3", n)
	}
	if l.Get(1) != nil || l.Get(4) == nil {
		t.Error("compaction boundary wrong")
	}
}

func TestCompactSkipsUnexecuted(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1)) // never committed/executed
	if n := l.CompactTo(10); n != 0 {
		t.Error("unexecuted entries must survive compaction")
	}
}

func TestCommittedCount(t *testing.T) {
	l := New()
	l.Accept(1, bal(1), one(1))
	l.Commit(2, bal(1), one(2))
	l.Commit(3, bal(1), one(3))
	if got := l.CommittedCount(); got != 2 {
		t.Errorf("CommittedCount = %d, want 2", got)
	}
}

// Property: replaying any interleaving of commits for slots 1..n executes
// each slot exactly once and in ascending order.
func TestExecutionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20
		order := rng.Perm(n)
		l := New()
		sm := kvstore.New()
		var execd []uint64
		for _, i := range order {
			l.Commit(uint64(i+1), bal(1), one(uint64(i)))
			l.ExecuteReady(sm, func(s uint64, _ int, _ kvstore.Command, _ kvstore.Result) {
				execd = append(execd, s)
			})
		}
		if len(execd) != n {
			return false
		}
		for i, s := range execd {
			if s != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: two replicas that see the same commits (in different orders)
// converge to identical state machines.
func TestReplicaConvergenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		cmds := make([]kvstore.Command, n)
		for i := range cmds {
			cmds[i] = kvstore.Command{
				Op:    kvstore.Op(rng.Intn(3)),
				Key:   uint64(rng.Intn(5)),
				Value: []byte{byte(rng.Intn(256))},
			}
		}
		mk := func(order []int) uint64 {
			l := New()
			sm := kvstore.New()
			for _, i := range order {
				l.Commit(uint64(i+1), bal(1), []kvstore.Command{cmds[i]})
				l.ExecuteReady(sm, nil)
			}
			return sm.Checksum()
		}
		a := mk(rng.Perm(n))
		b := mk(rng.Perm(n))
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExecuteBatchInOrder(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), []kvstore.Command{cmd(1), cmd(2), cmd(3)})
	var idxs []int
	n := l.ExecuteReady(sm, func(s uint64, i int, c kvstore.Command, _ kvstore.Result) {
		if s != 1 || c.Key != uint64(i+1) {
			t.Errorf("slot %d idx %d got key %d", s, i, c.Key)
		}
		idxs = append(idxs, i)
	})
	if n != 3 || len(idxs) != 3 || idxs[0] != 0 || idxs[2] != 2 {
		t.Fatalf("executed %d commands, idxs %v", n, idxs)
	}
	if l.ExecuteCursor() != 2 {
		t.Errorf("cursor = %d, want 2 (one slot, three commands)", l.ExecuteCursor())
	}
	if sm.Applied() != 3 {
		t.Errorf("applied %d, want 3", sm.Applied())
	}
}

func TestNoopSlotAdvancesCursor(t *testing.T) {
	l := New()
	sm := kvstore.New()
	l.Commit(1, bal(1), nil) // leader-change filler
	l.Commit(2, bal(1), one(9))
	n := l.ExecuteReady(sm, nil)
	if n != 1 {
		t.Fatalf("executed %d commands, want 1 (no-op slot applies nothing)", n)
	}
	if l.ExecuteCursor() != 3 {
		t.Errorf("cursor = %d, want 3", l.ExecuteCursor())
	}
}

func BenchmarkAcceptCommitExecute(b *testing.B) {
	l := New()
	sm := kvstore.New()
	c := one(1)
	ball := bal(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		slot := l.NextSlot()
		l.Accept(slot, ball, c)
		l.Commit(slot, ball, c)
		l.ExecuteReady(sm, nil)
		if i%4096 == 0 {
			l.CompactTo(l.ExecuteCursor() - 1)
		}
	}
}
