// Package node defines the execution context a protocol replica runs in.
// Replicas are single-threaded event-driven state machines: the substrate
// (simulated network or live transport) delivers messages and timer
// callbacks one at a time, and the replica acts on the world only through
// its Context. The same replica code therefore runs unchanged on the
// discrete-event simulator and on real TCP.
package node

import (
	"math/rand"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/wire"
)

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the call prevented the
	// callback from running.
	Stop() bool
}

// Context is the interface between a replica and its substrate. All methods
// must be called from within message/timer callbacks; the substrate
// guarantees those never run concurrently for one replica.
type Context interface {
	// ID returns this replica's node ID.
	ID() ids.ID
	// Send transmits m to another node (or client) asynchronously.
	Send(to ids.ID, m wire.Msg)
	// Broadcast transmits the same m to every node in to. Semantically
	// identical to calling Send per recipient, and the simulator charges
	// the full per-recipient CPU cost either way (the paper's leader
	// bottleneck); live transports exploit it to serialize m once and
	// ship the encoded bytes N times.
	Broadcast(to []ids.ID, m wire.Msg)
	// After schedules fn to run after d. The callback is serialized with
	// message delivery.
	After(d time.Duration, fn func()) Timer
	// Now returns the substrate's clock reading (virtual time on the
	// simulator, wall time since start on live transports).
	Now() time.Duration
	// Rand returns the substrate's random source (deterministic and
	// shared on the simulator).
	Rand() *rand.Rand
	// Work accounts d of CPU time for protocol bookkeeping. The simulator
	// charges it against the node's virtual core; live substrates spend
	// real time working and treat this as a no-op.
	Work(d time.Duration)
}

// Handler consumes messages delivered to a replica.
type Handler interface {
	OnMessage(from ids.ID, m wire.Msg)
}
