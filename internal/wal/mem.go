// In-memory Storage: the deterministic simulator's "disk". It keeps the
// exact byte framing FileStorage writes, models fsync as a configurable
// simulated latency (charged by the replica, not here), and exposes the
// crash surface chaos needs: Crash drops unsynced appends (the strictest
// reading of a power cut) and TearTail rips the last synced frame in half
// (a torn sector write).
package wal

import (
	"time"
)

// memSeg is one sealed-or-active segment: a frame concatenation plus the
// metadata compaction and tearing need.
type memSeg struct {
	buf       []byte
	maxSlot   uint64 // highest slot any frame concerns (0 = promises only)
	frames    int
	lastFrame int // byte length of the most recently synced frame
}

// MemStorage implements Storage without a filesystem. Not safe for
// concurrent use; the owning replica's event loop serializes access. The
// harness keeps MemStorage instances alive across simulated crashes — they
// play the role of the machine's disk.
type MemStorage struct {
	enc      frameEncoder
	segBytes int
	segs     []*memSeg

	// Unsynced appends: framed bytes plus enough metadata to fold them
	// into the active segment on Sync.
	pending       []byte
	pendingFrames []int
	pendingMax    uint64

	snap     Snapshot
	hasSnap  bool
	syncCost time.Duration
	syncs    uint64
}

// NewMem creates an empty in-memory journal with the default segment size.
func NewMem() *MemStorage {
	return &MemStorage{segBytes: DefaultSegBytes, segs: []*memSeg{{}}}
}

// SetSegBytes overrides the segment roll threshold (tests use tiny segments
// to exercise multi-segment replay and compaction).
func (m *MemStorage) SetSegBytes(n int) {
	if n > 0 {
		m.segBytes = n
	}
}

// SetSyncCost sets the simulated latency one fsync costs (the DiskSlow
// chaos fault adjusts it mid-run).
func (m *MemStorage) SetSyncCost(d time.Duration) { m.syncCost = d }

// SyncCost implements Storage.
func (m *MemStorage) SyncCost() time.Duration { return m.syncCost }

// Append implements Storage: frame rec into the unsynced buffer.
func (m *MemStorage) Append(rec Record) error {
	start := len(m.pending)
	m.pending = m.enc.appendFrame(m.pending, rec)
	m.pendingFrames = append(m.pendingFrames, len(m.pending)-start)
	if rec.Slot > m.pendingMax {
		m.pendingMax = rec.Slot
	}
	return nil
}

// Sync implements Storage: fold unsynced appends into the active segment,
// sealing it when it crossed the roll threshold.
func (m *MemStorage) Sync() (bool, error) {
	if len(m.pending) == 0 {
		return false, nil
	}
	cur := m.segs[len(m.segs)-1]
	cur.buf = append(cur.buf, m.pending...)
	cur.frames += len(m.pendingFrames)
	cur.lastFrame = m.pendingFrames[len(m.pendingFrames)-1]
	if m.pendingMax > cur.maxSlot {
		cur.maxSlot = m.pendingMax
	}
	m.pending = m.pending[:0]
	m.pendingFrames = m.pendingFrames[:0]
	m.pendingMax = 0
	if len(cur.buf) >= m.segBytes {
		m.segs = append(m.segs, &memSeg{})
	}
	m.syncs++
	return true, nil
}

// Crash models power loss: every append since the last Sync is gone. The
// chaos injector calls it at the instant a node with durable state crashes.
func (m *MemStorage) Crash() {
	m.pending = m.pending[:0]
	m.pendingFrames = m.pendingFrames[:0]
	m.pendingMax = 0
}

// TearTail rips the last synced frame in half — a torn sector write that
// the next Replay must detect and truncate. Returns false when there is no
// synced frame to tear.
func (m *MemStorage) TearTail() bool {
	for i := len(m.segs) - 1; i >= 0; i-- {
		s := m.segs[i]
		if s.frames == 0 || s.lastFrame == 0 {
			continue
		}
		cut := (s.lastFrame + 1) / 2
		s.buf = s.buf[:len(s.buf)-cut]
		s.frames--
		s.lastFrame = 0
		return true
	}
	return false
}

// CorruptFrame flips one byte inside segment seg at offset off (tests use
// it to plant mid-segment corruption that replay must refuse to skip).
func (m *MemStorage) CorruptFrame(seg, off int) bool {
	if seg < 0 || seg >= len(m.segs) || off < 0 || off >= len(m.segs[seg].buf) {
		return false
	}
	m.segs[seg].buf[off] ^= 0xff
	return true
}

// SaveSnapshot implements Storage. The blob is copied; callers may reuse
// their buffer.
func (m *MemStorage) SaveSnapshot(snap Snapshot) error {
	data := make([]byte, len(snap.Data))
	copy(data, snap.Data)
	m.snap = Snapshot{Floor: snap.Floor, Data: data}
	m.hasSnap = true
	return nil
}

// Snapshot implements Storage. The returned blob is owned by the storage;
// callers must not modify it.
func (m *MemStorage) Snapshot() (Snapshot, bool) { return m.snap, m.hasSnap }

// CompactTo implements Storage: drop sealed segments whose every record
// concerns a slot below floor. The active segment is never dropped.
func (m *MemStorage) CompactTo(floor uint64) int {
	n := 0
	for n < len(m.segs)-1 && m.segs[n].maxSlot < floor {
		n++
	}
	if n > 0 {
		m.segs = append(m.segs[:0], m.segs[n:]...)
	}
	return n
}

// Replay implements Storage: stream every synced record in order. A torn
// tail in the final segment is truncated in place; corruption anywhere else
// aborts with ErrCorrupt. Unsynced appends are discarded first — replay
// reconstructs what the disk holds, nothing more.
func (m *MemStorage) Replay(fn func(rec Record) error) error {
	m.Crash()
	for i, s := range m.segs {
		maxSlot, frames, lastFrame := uint64(0), 0, 0
		valid, err := parseFrames(s.buf, i == len(m.segs)-1, func(rec Record, frameLen int) error {
			if rec.Slot > maxSlot {
				maxSlot = rec.Slot
			}
			frames++
			lastFrame = frameLen
			if fn != nil {
				return fn(rec)
			}
			return nil
		})
		if err != nil {
			return err
		}
		s.buf = s.buf[:valid]
		s.maxSlot, s.frames, s.lastFrame = maxSlot, frames, lastFrame
	}
	return nil
}

// Close implements Storage.
func (m *MemStorage) Close() error { return nil }

// Segments reports the live segment count (bounded-memory assertions).
func (m *MemStorage) Segments() int { return len(m.segs) }

// Bytes reports the total synced journal size in bytes.
func (m *MemStorage) Bytes() int {
	n := 0
	for _, s := range m.segs {
		n += len(s.buf)
	}
	return n
}

// Syncs reports how many real fsyncs were performed.
func (m *MemStorage) Syncs() uint64 { return m.syncs }
