// Package wal implements the durable write-ahead log behind crash-restart:
// a segmented, CRC-framed journal of ballot promises, slot accepts and slot
// commits, plus a state-machine snapshot slot. Two implementations share one
// byte format — MemStorage is the deterministic-sim default (no disk, same
// framing, so recovery and fuzz tests exercise the real parser), FileStorage
// persists to a directory of segment files with group fsync.
//
// Record payloads reuse the wire codec: a promise is framed as a wire.P1a,
// an accept as a wire.P2a and a commit as a wire.P3, so the journal format
// is exactly the protocol's own message encoding. Each frame is
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// and segments are plain frame concatenations. A partial trailing frame in
// the *final* segment is a torn tail (the crash interrupted the last write):
// replay truncates it and recovery proceeds. Any framing or checksum
// violation in a non-final segment is corruption and fails loudly — skipping
// acknowledged records would forge durability.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// Kind tags one journal record.
type Kind uint8

const (
	// KindPromise records a ballot this replica promised (phase-1) or
	// adopted; it must be durable before the promise is sent.
	KindPromise Kind = iota + 1
	// KindAccept records a slot accepted under a ballot; it must be durable
	// before the accept is acknowledged (P2b).
	KindAccept
	// KindCommit records a slot learned committed. Commits are recoverable
	// from the cluster (phase-1 re-reads a quorum), so they may be synced
	// lazily.
	KindCommit
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPromise:
		return "promise"
	case KindAccept:
		return "accept"
	case KindCommit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one journal entry. Slot and Cmds are unused for KindPromise.
type Record struct {
	Kind   Kind
	Ballot ids.Ballot
	Slot   uint64
	Cmds   []kvstore.Command
}

// Snapshot is a state-machine checkpoint. Floor is the first slot NOT
// covered: log replay resumes there. Data is an opaque blob owned by the
// protocol layer (see paxos snapshot encoding).
type Snapshot struct {
	Floor uint64
	Data  []byte
}

// Storage is the durability interface a replica journals through. All
// methods are single-threaded (the replica's event loop owns its storage).
//
// Append buffers a record; nothing is durable until Sync. Sync flushes and
// fsyncs every buffered append, returning whether an actual sync was
// performed (false when nothing was pending — callers charge simulated
// fsync latency only for real syncs). CompactTo drops whole segments whose
// records all concern slots below floor; it must only be called after
// SaveSnapshot with that snapshot's floor, because the snapshot blob is
// what carries the promise ballot across the discarded segments.
type Storage interface {
	Append(rec Record) error
	Sync() (bool, error)
	SyncCost() time.Duration
	SaveSnapshot(snap Snapshot) error
	Snapshot() (Snapshot, bool)
	CompactTo(floor uint64) int
	Replay(fn func(rec Record) error) error
	Close() error
}

// ErrCorrupt marks an unrecoverable journal: a framing or checksum
// violation anywhere but the final segment's tail.
var ErrCorrupt = errors.New("wal: corrupt journal")

const (
	frameHdr = 8 // u32 length + u32 crc
	// maxFrame bounds a frame's payload; anything larger is a corrupted
	// length field, not a real record (the largest legal record is a
	// uint16-counted command batch).
	maxFrame = 1 << 26
	// DefaultSegBytes is the segment roll threshold: a segment is sealed
	// once it grows past this after a sync.
	DefaultSegBytes = 64 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameEncoder appends framed records using pointer-boxed scratch messages,
// so the hot append path performs no interface-boxing allocation (the PR 2
// codec discipline: a pointer converted to wire.Msg does not escape).
type frameEncoder struct {
	p1a wire.P1a
	p2a wire.P2a
	p3  wire.P3
}

// appendFrame encodes rec as one frame onto dst and returns the extended
// buffer. Allocation-free once dst has capacity.
func (f *frameEncoder) appendFrame(dst []byte, rec Record) []byte {
	var m wire.Msg
	switch rec.Kind {
	case KindPromise:
		f.p1a = wire.P1a{Ballot: rec.Ballot}
		m = &f.p1a
	case KindAccept:
		f.p2a = wire.P2a{Ballot: rec.Ballot, Slot: rec.Slot, Cmds: rec.Cmds}
		m = &f.p2a
	case KindCommit:
		f.p3 = wire.P3{Ballot: rec.Ballot, Slot: rec.Slot, Cmds: rec.Cmds}
		m = &f.p3
	default:
		panic(fmt.Sprintf("wal: cannot journal %v record", rec.Kind))
	}
	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = wire.Encode(dst, m)
	payload := dst[hdr+frameHdr:]
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[hdr+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// decodeRecord maps a wire message payload back to its Record.
func decodeRecord(payload []byte) (Record, error) {
	m, n, err := wire.Decode(payload)
	if err != nil {
		return Record{}, err
	}
	if n != len(payload) {
		return Record{}, fmt.Errorf("frame carries %d trailing bytes", len(payload)-n)
	}
	switch v := m.(type) {
	case wire.P1a:
		return Record{Kind: KindPromise, Ballot: v.Ballot}, nil
	case wire.P2a:
		return Record{Kind: KindAccept, Ballot: v.Ballot, Slot: v.Slot, Cmds: v.Cmds}, nil
	case wire.P3:
		return Record{Kind: KindCommit, Ballot: v.Ballot, Slot: v.Slot, Cmds: v.Cmds}, nil
	default:
		return Record{}, fmt.Errorf("unexpected %v payload in journal", m.Type())
	}
}

// parseFrames walks the frames in one segment, invoking fn for each decoded
// record with the frame's total length. final marks the journal's last
// segment, where a partial or checksum-failing trailing region is a torn
// tail: parseFrames stops there and returns the valid prefix length so the
// caller can truncate. The same condition in a non-final segment — and any
// decodable-but-malformed payload anywhere — returns ErrCorrupt.
func parseFrames(data []byte, final bool, fn func(rec Record, frameLen int) error) (valid int, err error) {
	off := 0
	for off < len(data) {
		rem := data[off:]
		torn := func(what string) (int, error) {
			if final {
				return off, nil
			}
			return off, fmt.Errorf("%w: %s at offset %d of non-final segment", ErrCorrupt, what, off)
		}
		if len(rem) < frameHdr {
			return torn("truncated frame header")
		}
		plen := int(binary.LittleEndian.Uint32(rem))
		if plen == 0 || plen > maxFrame {
			return torn(fmt.Sprintf("implausible frame length %d", plen))
		}
		if len(rem) < frameHdr+plen {
			return torn("truncated frame payload")
		}
		payload := rem[frameHdr : frameHdr+plen]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rem[4:]) {
			return torn("checksum mismatch")
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// The checksum matched, so these bytes were written whole: a
			// payload the codec rejects is corruption, not a torn write.
			return off, fmt.Errorf("%w: %v at offset %d", ErrCorrupt, derr, off)
		}
		if fn != nil {
			if ferr := fn(rec, frameHdr+plen); ferr != nil {
				return off, ferr
			}
		}
		off += frameHdr + plen
	}
	return off, nil
}
