package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
)

func rec(kind Kind, b ids.Ballot, slot uint64, cmds ...kvstore.Command) Record {
	return Record{Kind: kind, Ballot: b, Slot: slot, Cmds: cmds}
}

func cmd(key, seq uint64) kvstore.Command {
	return kvstore.Command{Op: kvstore.Put, Key: key, Value: []byte("v"), ClientID: 7, Seq: seq}
}

func mustAppend(t *testing.T, st Storage, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func replayAll(t *testing.T, st Storage) []Record {
	t.Helper()
	var out []Record
	if err := st.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Ballot != b[i].Ballot || a[i].Slot != b[i].Slot ||
			len(a[i].Cmds) != len(b[i].Cmds) {
			return false
		}
		for j := range a[i].Cmds {
			x, y := a[i].Cmds[j], b[i].Cmds[j]
			if x.Op != y.Op || x.Key != y.Key || x.ClientID != y.ClientID || x.Seq != y.Seq ||
				!bytes.Equal(x.Value, y.Value) {
				return false
			}
		}
	}
	return true
}

// openStorages returns a fresh MemStorage and FileStorage for table-driven
// tests that must behave identically.
func openStorages(t *testing.T) map[string]Storage {
	t.Helper()
	fs, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]Storage{"mem": NewMem(), "file": fs}
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		rec(KindPromise, 0x100000001, 0),
		rec(KindAccept, 0x100000001, 1, cmd(10, 1), cmd(11, 2)),
		rec(KindCommit, 0x100000001, 1, cmd(10, 1), cmd(11, 2)),
		rec(KindAccept, 0x100000001, 2), // no-op filler batch
	}
	for name, st := range openStorages(t) {
		mustAppend(t, st, recs...)
		got := replayAll(t, st)
		if !sameRecords(recs, got) {
			t.Errorf("%s: replay mismatch: got %+v", name, got)
		}
	}
}

// TestFramingIdentical pins the promise that both implementations share one
// byte format: a FileStorage journal's bytes equal the MemStorage journal's
// for the same record sequence.
func TestFramingIdentical(t *testing.T) {
	recs := []Record{
		rec(KindPromise, 42, 0),
		rec(KindAccept, 42, 9, cmd(1, 1)),
		rec(KindCommit, 42, 9, cmd(1, 1)),
	}
	mem := NewMem()
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, mem, recs...)
	mustAppend(t, fs, recs...)
	fs.Close()
	fileBytes, err := os.ReadFile(filepath.Join(dir, "wal-00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem.segs[0].buf, fileBytes) {
		t.Fatalf("framing differs: mem %d bytes, file %d bytes", len(mem.segs[0].buf), len(fileBytes))
	}
}

func TestUnsyncedAppendsLostOnCrash(t *testing.T) {
	m := NewMem()
	mustAppend(t, m, rec(KindAccept, 1, 1, cmd(1, 1)))
	m.Append(rec(KindAccept, 1, 2, cmd(2, 2))) // never synced
	m.Crash()
	got := replayAll(t, m)
	if len(got) != 1 || got[0].Slot != 1 {
		t.Fatalf("want only the synced record, got %+v", got)
	}
}

func TestTornTailTruncates(t *testing.T) {
	m := NewMem()
	mustAppend(t, m,
		rec(KindAccept, 1, 1, cmd(1, 1)),
		rec(KindAccept, 1, 2, cmd(2, 2)),
		rec(KindAccept, 1, 3, cmd(3, 3)))
	if !m.TearTail() {
		t.Fatal("TearTail found nothing to tear")
	}
	got := replayAll(t, m)
	if len(got) != 2 || got[1].Slot != 2 {
		t.Fatalf("want slots 1,2 after torn tail, got %+v", got)
	}
	// The journal stays appendable after truncation.
	mustAppend(t, m, rec(KindAccept, 1, 4, cmd(4, 4)))
	got = replayAll(t, m)
	if len(got) != 3 || got[2].Slot != 4 {
		t.Fatalf("append after torn-tail recovery: got %+v", got)
	}
}

func TestFileTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, fs,
		rec(KindAccept, 1, 1, cmd(1, 1)),
		rec(KindAccept, 1, 2, cmd(2, 2)))
	fs.Close()
	// Chop bytes mid-way through the last frame, as a power cut would.
	path := filepath.Join(dir, "wal-00000001.seg")
	b, _ := os.ReadFile(path)
	if err := os.Truncate(path, int64(len(b)-5)); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got := replayAll(t, fs2)
	if len(got) != 1 || got[0].Slot != 1 {
		t.Fatalf("want slot 1 only, got %+v", got)
	}
	// Double restart: a second replay sees the truncated, stable journal.
	if again := replayAll(t, fs2); !sameRecords(got, again) {
		t.Fatalf("second replay diverged: %+v vs %+v", got, again)
	}
}

func TestCorruptMiddleSegmentFailsLoud(t *testing.T) {
	m := NewMem()
	m.SetSegBytes(1) // every sync seals a segment
	mustAppend(t, m, rec(KindAccept, 1, 1, cmd(1, 1)))
	mustAppend(t, m, rec(KindAccept, 1, 2, cmd(2, 2)))
	mustAppend(t, m, rec(KindAccept, 1, 3, cmd(3, 3)))
	if m.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", m.Segments())
	}
	if !m.CorruptFrame(1, 12) {
		t.Fatal("CorruptFrame failed")
	}
	err := m.Replay(nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for mid-segment damage, got %v", err)
	}
}

func TestEmptySegmentReplays(t *testing.T) {
	m := NewMem()
	m.SetSegBytes(1)
	mustAppend(t, m, rec(KindAccept, 1, 1, cmd(1, 1)))
	// The roll left an empty active segment behind; replay must be clean.
	if m.Segments() != 2 {
		t.Fatalf("want 2 segments, got %d", m.Segments())
	}
	got := replayAll(t, m)
	if len(got) != 1 {
		t.Fatalf("want 1 record, got %+v", got)
	}
}

func TestCompactToReclaimsSegments(t *testing.T) {
	for name, st := range openStorages(t) {
		switch s := st.(type) {
		case *MemStorage:
			s.SetSegBytes(1)
		case *FileStorage:
			s.SetSegBytes(1)
		}
		for slot := uint64(1); slot <= 5; slot++ {
			mustAppend(t, st, rec(KindAccept, 1, slot, cmd(slot, slot)))
		}
		if err := st.SaveSnapshot(Snapshot{Floor: 4, Data: []byte("state")}); err != nil {
			t.Fatalf("%s: SaveSnapshot: %v", name, err)
		}
		replayAll(t, st) // populate segment metadata for the file backend
		if n := st.CompactTo(4); n < 3 {
			t.Errorf("%s: CompactTo dropped %d segments, want ≥3", name, n)
		}
		got := replayAll(t, st)
		for _, r := range got {
			if r.Slot < 4 && r.Slot != 0 {
				t.Errorf("%s: slot %d survived compaction below floor 4", name, r.Slot)
			}
		}
		snap, ok := st.Snapshot()
		if !ok || snap.Floor != 4 || string(snap.Data) != "state" {
			t.Errorf("%s: snapshot lost after compaction: %+v ok=%v", name, snap, ok)
		}
	}
}

func TestFileSnapshotAtomicity(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveSnapshot(Snapshot{Floor: 10, Data: []byte("ten")}); err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveSnapshot(Snapshot{Floor: 20, Data: []byte("twenty")}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	// A leftover tmp file from a crashed save must be ignored and removed.
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000030.snap.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	snap, ok := fs2.Snapshot()
	if !ok || snap.Floor != 20 || string(snap.Data) != "twenty" {
		t.Fatalf("want floor-20 snapshot, got %+v ok=%v", snap, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000030.snap.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp snapshot file not cleaned up")
	}
}

func TestFileCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SaveSnapshot(Snapshot{Floor: 10, Data: []byte("ten")}); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	// Plant a newer snapshot with a bad checksum: open must fall back.
	bad := filepath.Join(dir, "snap-0000000000000099.snap")
	if err := os.WriteFile(bad, []byte("garbage that is long enough"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	snap, ok := fs2.Snapshot()
	if !ok || snap.Floor != 10 {
		t.Fatalf("want fallback to floor-10 snapshot, got %+v ok=%v", snap, ok)
	}
}

// TestFileDoubleRestart closes and reopens the journal twice, appending in
// between: both reopen paths must see a consistent, growing record stream.
func TestFileDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, fs, rec(KindAccept, 1, 1, cmd(1, 1)))
	fs.Close()

	fs, err = OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, fs); len(got) != 1 {
		t.Fatalf("first restart: got %+v", got)
	}
	mustAppend(t, fs, rec(KindAccept, 1, 2, cmd(2, 2)))
	fs.Close()

	fs, err = OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	got := replayAll(t, fs)
	if len(got) != 2 || got[1].Slot != 2 {
		t.Fatalf("second restart: got %+v", got)
	}
}

// TestFileAppendAllocFree asserts the acceptance criterion: the file-backed
// append hot path performs zero allocations once the encode buffer has
// grown to the working-set size.
func TestFileAppendAllocFree(t *testing.T) {
	fs, err := OpenFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	batch := []kvstore.Command{cmd(1, 1), cmd(2, 2), cmd(3, 3), cmd(4, 4)}
	r := rec(KindAccept, 7, 100, batch...)
	// Warm up: grow the pending buffer to hold a full AllocsPerRun round.
	for i := 0; i < 2000; i++ {
		fs.Append(r)
	}
	if _, err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fs.Append(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("file WAL append allocates %v allocs/op, want 0", allocs)
	}
}

// FuzzWALReplay feeds arbitrary segment bytes to the frame parser: it must
// never panic, and whatever it accepts as the valid prefix must reparse to
// the same records (truncation is idempotent). Seeds come from the real
// encoder.
func FuzzWALReplay(f *testing.F) {
	var enc frameEncoder
	seed1 := enc.appendFrame(nil, rec(KindPromise, 0x200000003, 0))
	seed2 := enc.appendFrame(nil, rec(KindAccept, 5, 12, cmd(3, 9)))
	seed2 = enc.appendFrame(seed2, rec(KindCommit, 5, 12, cmd(3, 9)))
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed2[:len(seed2)-3]) // torn tail
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var first []Record
		valid, err := parseFrames(data, true, func(r Record, _ int) error {
			first = append(first, r)
			return nil
		})
		if err != nil {
			return // malformed payload under a valid CRC: rejected loudly
		}
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input %d", valid, len(data))
		}
		var second []Record
		valid2, err := parseFrames(data[:valid], true, func(r Record, _ int) error {
			second = append(second, r)
			return nil
		})
		if err != nil || valid2 != valid {
			t.Fatalf("truncated prefix not stable: valid %d→%d err=%v", valid, valid2, err)
		}
		if !sameRecords(first, second) {
			t.Fatalf("reparse mismatch: %+v vs %+v", first, second)
		}
	})
}
