// File-backed Storage: a directory of wal-NNNNNNNN.seg segment files plus
// snap-*.snap snapshot files. Appends buffer frames in a persistent encode
// buffer (allocation-free once grown); Sync writes and fsyncs the whole
// batch at once, so durability costs one fsync per leader batch — aligned
// with the group-commit accumulator, not per command. Snapshots are written
// to a temp file, fsynced, then atomically renamed.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// fileSeg tracks one segment file. maxSlot/frames are populated by Replay
// (sealed segments) and by Sync (the active segment).
type fileSeg struct {
	path    string
	idx     uint64
	size    int
	maxSlot uint64
	frames  int
}

// FileStorage implements Storage on a directory. Not safe for concurrent
// use. I/O errors surface from Append/Sync/SaveSnapshot; callers must treat
// a failed sync as fatal (acknowledging unsynced state forges durability).
type FileStorage struct {
	enc      frameEncoder
	dir      string
	segBytes int
	segs     []*fileSeg
	f        *os.File // active segment, opened for append
	nextIdx  uint64

	buf           []byte // unsynced framed appends
	pendingFrames int
	pendingMax    uint64

	snap     Snapshot
	hasSnap  bool
	syncCost time.Duration
	syncs    uint64
}

// OpenFile opens (creating if needed) a file-backed journal in dir. Leftover
// temp files from an interrupted snapshot save are removed; the newest
// snapshot whose checksum verifies is loaded.
func OpenFile(dir string) (*FileStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &FileStorage{dir: dir, segBytes: DefaultSegBytes, nextIdx: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			var idx uint64
			if _, err := fmt.Sscanf(name, "wal-%d.seg", &idx); err == nil {
				w.segs = append(w.segs, &fileSeg{path: filepath.Join(dir, name), idx: idx})
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	sort.Slice(w.segs, func(i, j int) bool { return w.segs[i].idx < w.segs[j].idx })
	for _, s := range w.segs {
		if st, err := os.Stat(s.path); err == nil {
			s.size = int(st.Size())
		}
		if s.idx >= w.nextIdx {
			w.nextIdx = s.idx + 1
		}
	}
	// Newest verifiable snapshot wins; unreadable ones are ignored (the
	// rename was atomic, so a bad snapshot file predates this code's
	// guarantees or the disk lost it — older ones may still verify).
	sort.Sort(sort.Reverse(sort.StringSlice(snaps)))
	for _, name := range snaps {
		if snap, err := readSnapshotFile(filepath.Join(dir, name)); err == nil {
			w.snap, w.hasSnap = snap, true
			break
		}
	}
	if len(w.segs) == 0 {
		if err := w.roll(); err != nil {
			return nil, err
		}
	} else if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *FileStorage) openActive() error {
	f, err := os.OpenFile(w.segs[len(w.segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	return nil
}

// roll seals the active segment and opens the next one.
func (w *FileStorage) roll() error {
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			return err
		}
	}
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%08d.seg", w.nextIdx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w.segs = append(w.segs, &fileSeg{path: path, idx: w.nextIdx})
	w.nextIdx++
	w.f = f
	return syncDir(w.dir)
}

// SetSegBytes overrides the segment roll threshold.
func (w *FileStorage) SetSegBytes(n int) {
	if n > 0 {
		w.segBytes = n
	}
}

// SetSyncCost sets the simulated latency charged per fsync on top of the
// real one (used when a simulation runs over real files).
func (w *FileStorage) SetSyncCost(d time.Duration) { w.syncCost = d }

// SyncCost implements Storage.
func (w *FileStorage) SyncCost() time.Duration { return w.syncCost }

// Append implements Storage: frame rec into the pending buffer. The buffer
// is retained across syncs, so the steady-state append path allocates
// nothing (asserted by TestFileAppendAllocFree).
func (w *FileStorage) Append(rec Record) error {
	w.buf = w.enc.appendFrame(w.buf, rec)
	w.pendingFrames++
	if rec.Slot > w.pendingMax {
		w.pendingMax = rec.Slot
	}
	return nil
}

// Sync implements Storage: one write + one fsync for every buffered append.
func (w *FileStorage) Sync() (bool, error) {
	if len(w.buf) == 0 {
		return false, nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return false, err
	}
	if err := w.f.Sync(); err != nil {
		return false, err
	}
	cur := w.segs[len(w.segs)-1]
	cur.size += len(w.buf)
	cur.frames += w.pendingFrames
	if w.pendingMax > cur.maxSlot {
		cur.maxSlot = w.pendingMax
	}
	w.buf = w.buf[:0]
	w.pendingFrames = 0
	w.pendingMax = 0
	w.syncs++
	if cur.size >= w.segBytes {
		return true, w.roll()
	}
	return true, nil
}

// SaveSnapshot implements Storage: write-temp, fsync, rename, fsync dir.
// Older snapshot files are removed after the new one is durable.
func (w *FileStorage) SaveSnapshot(snap Snapshot) error {
	final := filepath.Join(w.dir, fmt.Sprintf("snap-%016d.snap", snap.Floor))
	tmp := final + ".tmp"
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], snap.Floor)
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(snap.Data, crcTable))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(snap.Data)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(snap.Data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	data := make([]byte, len(snap.Data))
	copy(data, snap.Data)
	w.snap, w.hasSnap = Snapshot{Floor: snap.Floor, Data: data}, true
	// Reclaim superseded snapshots (best effort).
	if entries, err := os.ReadDir(w.dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") &&
				filepath.Join(w.dir, name) != final {
				os.Remove(filepath.Join(w.dir, name))
			}
		}
	}
	return nil
}

func readSnapshotFile(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	if len(b) < 16 {
		return Snapshot{}, fmt.Errorf("%w: snapshot %s truncated", ErrCorrupt, path)
	}
	floor := binary.LittleEndian.Uint64(b[0:])
	sum := binary.LittleEndian.Uint32(b[8:])
	n := int(binary.LittleEndian.Uint32(b[12:]))
	if len(b) != 16+n {
		return Snapshot{}, fmt.Errorf("%w: snapshot %s has %d bytes, want %d", ErrCorrupt, path, len(b), 16+n)
	}
	data := b[16:]
	if crc32.Checksum(data, crcTable) != sum {
		return Snapshot{}, fmt.Errorf("%w: snapshot %s checksum mismatch", ErrCorrupt, path)
	}
	return Snapshot{Floor: floor, Data: data}, nil
}

// Snapshot implements Storage.
func (w *FileStorage) Snapshot() (Snapshot, bool) { return w.snap, w.hasSnap }

// CompactTo implements Storage: delete sealed segment files whose every
// record concerns a slot below floor. Requires Replay (or live appends) to
// have populated segment metadata; unknown segments are conservatively
// kept. The active segment is never dropped.
func (w *FileStorage) CompactTo(floor uint64) int {
	n := 0
	for n < len(w.segs)-1 && w.segs[n].maxSlot < floor {
		n++
	}
	for i := 0; i < n; i++ {
		os.Remove(w.segs[i].path)
	}
	if n > 0 {
		w.segs = append(w.segs[:0], w.segs[n:]...)
		syncDir(w.dir)
	}
	return n
}

// Replay implements Storage: stream every record from the segment files in
// order, truncating a torn tail in the final segment. Pending unsynced
// appends are discarded — replay reconstructs the disk's contents.
func (w *FileStorage) Replay(fn func(rec Record) error) error {
	w.buf = w.buf[:0]
	w.pendingFrames = 0
	w.pendingMax = 0
	for i, s := range w.segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		maxSlot, frames := uint64(0), 0
		valid, perr := parseFrames(data, i == len(w.segs)-1, func(rec Record, frameLen int) error {
			if rec.Slot > maxSlot {
				maxSlot = rec.Slot
			}
			frames++
			if fn != nil {
				return fn(rec)
			}
			return nil
		})
		if perr != nil {
			return fmt.Errorf("segment %s: %w", s.path, perr)
		}
		if valid < len(data) {
			if err := os.Truncate(s.path, int64(valid)); err != nil {
				return err
			}
		}
		s.size = valid
		s.maxSlot, s.frames = maxSlot, frames
	}
	return nil
}

// Close implements Storage: flush pending appends and close the active file.
func (w *FileStorage) Close() error {
	if _, err := w.Sync(); err != nil {
		return err
	}
	if w.f != nil {
		return w.f.Close()
	}
	return nil
}

// Segments reports the live segment-file count.
func (w *FileStorage) Segments() int { return len(w.segs) }

// Syncs reports how many real fsyncs were performed on the journal.
func (w *FileStorage) Syncs() uint64 { return w.syncs }

// syncDir fsyncs a directory so entry creation/removal/rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
