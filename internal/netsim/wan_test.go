package netsim

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/wire"
)

// setupWAN builds a simulated WAN cluster (round-robin over three zones)
// plus one free client endpoint homed in each zone (node number 100+zone).
func setupWAN(n int, cc config.Cluster, opts Options) (*des.Sim, *Network, map[ids.ID]*recorder) {
	sim := des.New(1)
	net := New(sim, cc, opts)
	recs := make(map[ids.ID]*recorder, n+3)
	for _, id := range cc.Nodes {
		r := &recorder{}
		r.e = net.Register(id, r, false)
		recs[id] = r
	}
	for z := 1; z <= 3; z++ {
		id := ids.NewID(z, 100+z)
		r := &recorder{}
		r.e = net.Register(id, r, true)
		recs[id] = r
	}
	return sim, net, recs
}

// SetZoneLinkFaults degrades exactly the named pair's links, both
// directions, and leaves every other path clean.
func TestZoneLinkFaultsScopedToPair(t *testing.T) {
	cc := config.NewWAN3(6)
	sim, net, _ := setupWAN(6, cc, Options{})
	_ = sim
	net.SetZoneLinkFaults(config.ZoneVirginia, config.ZoneOregon, LinkFaults{Loss: 1})
	va1, va2 := ids.NewID(1, 1), ids.NewID(1, 2)
	ca1 := ids.NewID(2, 1)
	or1 := ids.NewID(3, 1)
	if f, ok := net.LinkFaultsBetween(va1, or1); !ok || f.Loss != 1 {
		t.Errorf("VA→OR faults = %+v ok=%v, want loss 1", f, ok)
	}
	if f, ok := net.LinkFaultsBetween(or1, va2); !ok || f.Loss != 1 {
		t.Errorf("OR→VA faults = %+v ok=%v, want loss 1", f, ok)
	}
	if _, ok := net.LinkFaultsBetween(va1, ca1); ok {
		t.Error("VA→CA should stay clean")
	}
	if _, ok := net.LinkFaultsBetween(va1, va2); ok {
		t.Error("intra-zone links should stay clean")
	}
	net.ClearLinkFaults()
	if _, ok := net.LinkFaultsBetween(va1, or1); ok {
		t.Error("clear should remove zone faults")
	}
}

// PartitionZone maroons a region: its replicas AND its clients lose every
// cross-zone link while intra-zone traffic keeps flowing, and HealPartition
// restores the world.
func TestPartitionZoneMaroonsRegionWithClients(t *testing.T) {
	cc := config.NewWAN3(6)
	sim, net, recs := setupWAN(6, cc, Options{})
	or1, or2 := ids.NewID(3, 1), ids.NewID(3, 2)
	orClient := ids.NewID(3, 103)
	va1 := ids.NewID(1, 1)
	vaClient := ids.NewID(1, 101)

	net.PartitionZone(config.ZoneOregon)
	sim.Schedule(0, func() {
		recs[or1].e.Send(or2, wire.P1a{Ballot: 1})      // intra-zone: delivered
		recs[or1].e.Send(va1, wire.P1a{Ballot: 2})      // cut
		recs[va1].e.Send(or1, wire.P1a{Ballot: 3})      // cut
		recs[orClient].e.Send(va1, wire.P1a{Ballot: 4}) // marooned client: cut
		recs[vaClient].e.Send(va1, wire.P1a{Ballot: 5}) // outside world: fine
	})
	sim.RunUntilIdle()
	if len(recs[or2].got) != 1 {
		t.Errorf("intra-zone Oregon delivery = %d, want 1", len(recs[or2].got))
	}
	if len(recs[or1].got) != 0 {
		t.Errorf("cross-zone deliveries into Oregon = %d, want 0", len(recs[or1].got))
	}
	if len(recs[va1].got) != 1 {
		t.Errorf("Virginia deliveries = %d, want only the local client's", len(recs[va1].got))
	}
	if got := net.MessagesDropped(); got != 3 {
		t.Errorf("MessagesDropped = %d, want 3", got)
	}

	net.HealPartition()
	sim.Schedule(sim.Now(), func() {
		recs[orClient].e.Send(va1, wire.P1a{Ballot: 6})
	})
	sim.RunUntilIdle()
	if len(recs[va1].got) != 2 {
		t.Errorf("post-heal Virginia deliveries = %d, want 2", len(recs[va1].got))
	}
}

// Link profiles: a loss-1 profile drops every message on the pair, and a
// profiled run is deterministic at equal seeds.
func TestProfileLossApplied(t *testing.T) {
	cc := config.NewWAN3(6)
	m := cc.Latency.(config.ZoneMatrixLatency)
	m.Profiles = map[int]map[int]config.LinkProfile{
		config.ZoneVirginia: {config.ZoneOregon: {Loss: 1}},
	}
	cc.Latency = m
	sim, net, recs := setupWAN(6, cc, Options{})
	va1 := ids.NewID(1, 1)
	ca1 := ids.NewID(2, 1)
	or1 := ids.NewID(3, 1)
	sim.Schedule(0, func() {
		recs[va1].e.Send(or1, wire.P1a{Ballot: 1}) // profiled away
		recs[or1].e.Send(va1, wire.P1a{Ballot: 2}) // symmetric fallback: also lost
		recs[va1].e.Send(ca1, wire.P1a{Ballot: 3}) // clean pair: delivered
	})
	sim.RunUntilIdle()
	if len(recs[or1].got) != 0 || len(recs[va1].got) != 0 {
		t.Error("profiled pair should lose every message")
	}
	if len(recs[ca1].got) != 1 {
		t.Errorf("clean pair delivered %d, want 1", len(recs[ca1].got))
	}
	if got := net.MessagesDropped(); got != 2 {
		t.Errorf("MessagesDropped = %d, want 2", got)
	}
}

// Profile jitter stretches a pair's delay within [base, base+Jitter) and
// perturbs nothing else; profile-free pairs keep the exact matrix latency.
func TestProfileJitterBoundsDelay(t *testing.T) {
	cc := config.NewWAN3Lossy(6)
	m := cc.Latency.(config.ZoneMatrixLatency)
	// Make the jitter large and the loss zero so the bound is observable.
	m.Profiles = map[int]map[int]config.LinkProfile{
		config.ZoneVirginia: {config.ZoneOregon: {Jitter: 5 * time.Millisecond}},
	}
	m.Intra = config.LinkProfile{}
	cc.Latency = m
	sim, _, recs := setupWAN(6, cc, Options{})
	va1 := ids.NewID(1, 1)
	or1 := ids.NewID(3, 1)
	for i := 0; i < 32; i++ {
		sim.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			recs[va1].e.Send(or1, wire.P1a{Ballot: 1})
		})
	}
	sim.RunUntilIdle()
	if len(recs[or1].got) != 32 {
		t.Fatalf("delivered %d, want 32", len(recs[or1].got))
	}
	base := 35 * time.Millisecond
	sawJitter := false
	for i, g := range recs[or1].got {
		d := g.at - time.Duration(i)*100*time.Millisecond
		if d < base || d >= base+5*time.Millisecond {
			t.Fatalf("delivery %d delay %v outside [35ms, 40ms)", i, d)
		}
		if d > base {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Error("no jitter observed over 32 sends")
	}
}

// Two profiled runs at equal seeds are bit-identical, message for message.
func TestProfiledRunsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		cc := config.NewWAN3Lossy(6)
		sim := des.New(99)
		net := New(sim, cc, Options{})
		var out []time.Duration
		rec := HandlerFunc(func(from ids.ID, m wire.Msg) { out = append(out, sim.Now()) })
		for _, id := range cc.Nodes {
			net.Register(id, rec, false)
		}
		src := net.Endpoint(cc.Nodes[0])
		for i := 0; i < 200; i++ {
			sim.Schedule(time.Duration(i)*time.Millisecond, func() {
				src.Broadcast(cc.Peers(cc.Nodes[0]), wire.P1a{Ballot: 1})
			})
		}
		sim.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v", i, a[i], b[i])
		}
	}
}
