package netsim

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/wire"
)

type recorder struct {
	got []struct {
		from ids.ID
		m    wire.Msg
		at   time.Duration
	}
	e *Endpoint
}

func (r *recorder) OnMessage(from ids.ID, m wire.Msg) {
	r.got = append(r.got, struct {
		from ids.ID
		m    wire.Msg
		at   time.Duration
	}{from, m, r.e.Now()})
}

func setup(n int, opts Options) (*des.Sim, *Network, []*recorder, []*Endpoint) {
	sim := des.New(1)
	net := New(sim, config.NewLAN(n), opts)
	recs := make([]*recorder, n)
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		eps[i] = net.Register(ids.NewID(1, i+1), recs[i], false)
		recs[i].e = eps[i]
	}
	return sim, net, recs, eps
}

func TestDeliveryWithLatencyAndCost(t *testing.T) {
	opts := Options{SendCost: 10 * time.Microsecond, RecvCost: 10 * time.Microsecond}
	sim, _, recs, eps := setup(2, opts)
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 1 {
		t.Fatalf("delivered %d messages", len(recs[1].got))
	}
	// send cost 10µs + LAN 125µs + recv cost 10µs = 145µs.
	want := 145 * time.Microsecond
	if recs[1].got[0].at != want {
		t.Errorf("delivered at %v, want %v", recs[1].got[0].at, want)
	}
	if recs[1].got[0].from != eps[0].ID() {
		t.Errorf("from = %v", recs[1].got[0].from)
	}
}

func TestByteCostCharged(t *testing.T) {
	opts := Options{ByteCostPerKB: 1024 * time.Microsecond} // 1µs per byte, zero fixed
	sim, _, recs, eps := setup(2, opts)
	m := wire.Request{}
	size := time.Duration(m.Size()) * time.Microsecond
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), m) })
	sim.RunUntilIdle()
	want := 2*size + 125*time.Microsecond
	if recs[1].got[0].at != want {
		t.Errorf("delivered at %v, want %v (size=%d)", recs[1].got[0].at, want, m.Size())
	}
}

func TestCPUSerialization(t *testing.T) {
	// Two messages sent at the same instant: the second waits for the
	// sender's CPU, then both queue on the receiver's CPU.
	opts := Options{SendCost: 100 * time.Microsecond, RecvCost: 100 * time.Microsecond}
	sim, _, recs, eps := setup(2, opts)
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 2})
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 2 {
		t.Fatalf("delivered %d", len(recs[1].got))
	}
	// First: send done 100, arrive 225, handled 325.
	// Second: send done 200, arrive 325, receiver busy till 325 → handled 425.
	if recs[1].got[0].at != 325*time.Microsecond {
		t.Errorf("first at %v", recs[1].got[0].at)
	}
	if recs[1].got[1].at != 425*time.Microsecond {
		t.Errorf("second at %v (CPU must serialize)", recs[1].got[1].at)
	}
}

func TestLoopbackSend(t *testing.T) {
	sim, _, recs, eps := setup(2, Options{})
	sim.Schedule(0, func() { eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Fatal("self-send must deliver")
	}
	if recs[0].got[0].at != 0 {
		t.Errorf("loopback with zero costs should be instant, at %v", recs[0].got[0].at)
	}
}

func TestCrashDropsBothDirections(t *testing.T) {
	sim, net, recs, eps := setup(3, Options{})
	net.Crash(eps[1].ID())
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) // into crashed
		eps[1].Send(eps[2].ID(), wire.P1a{Ballot: 2}) // out of crashed
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 0 || len(recs[2].got) != 0 {
		t.Error("crashed node must neither receive nor send")
	}
	if net.MessagesDropped() != 2 {
		t.Errorf("dropped = %d, want 2", net.MessagesDropped())
	}
	if !net.Crashed(eps[1].ID()) {
		t.Error("Crashed() should report true")
	}
}

func TestCrashDropsInFlight(t *testing.T) {
	opts := Options{}
	sim, net, recs, eps := setup(2, opts)
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
	})
	// Crash the destination while the message is in flight (LAN = 125µs).
	sim.Schedule(50*time.Microsecond, func() { net.Crash(eps[1].ID()) })
	sim.RunUntilIdle()
	if len(recs[1].got) != 0 {
		t.Error("message in flight to a crashed node must be dropped")
	}
}

func TestRecoverRestoresDelivery(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.Crash(eps[1].ID())
	net.Recover(eps[1].ID())
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if len(recs[1].got) != 1 {
		t.Error("recovered node must receive again")
	}
}

func TestCrashedTimerSkipped(t *testing.T) {
	sim, net, _, eps := setup(2, Options{})
	fired := false
	eps[1].After(time.Millisecond, func() { fired = true })
	net.Crash(eps[1].ID())
	sim.RunUntilIdle()
	if fired {
		t.Error("timer on crashed node must not fire")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[1].ID()})
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if len(recs[1].got) != 0 {
		t.Error("partitioned message must drop")
	}
	net.HealPartition()
	sim.Schedule(0, func() { eps[1].Send(eps[0].ID(), wire.P1a{Ballot: 2}) })
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Error("healed partition must deliver")
	}
}

func TestSluggishNode(t *testing.T) {
	opts := Options{RecvCost: 100 * time.Microsecond}
	sim, net, recs, eps := setup(2, opts)
	net.SetSluggish(eps[1].ID(), 10)
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	// arrive at 125µs, recv cost 100µs×10 = 1ms → handled at 1.125ms.
	want := 1125 * time.Microsecond
	if recs[1].got[0].at != want {
		t.Errorf("sluggish delivery at %v, want %v", recs[1].got[0].at, want)
	}
}

func TestFreeEndpointUnmetered(t *testing.T) {
	sim := des.New(1)
	net := New(sim, config.NewLAN(2), Options{SendCost: time.Second})
	rec := &recorder{}
	client := net.Register(ids.NewID(999, 1), rec, true)
	rec.e = client
	srv := &recorder{}
	se := net.Register(ids.NewID(1, 1), srv, false)
	srv.e = se
	sim.Schedule(0, func() { client.Send(se.ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	// Client pays no send cost; server pays none either (RecvCost unset);
	// only link latency remains (default LAN 125µs).
	if srv.got[0].at != 125*time.Microsecond {
		t.Errorf("free client delivery at %v", srv.got[0].at)
	}
}

func TestWorkChargesCPU(t *testing.T) {
	sim, _, recs, eps := setup(2, Options{})
	sim.Schedule(0, func() {
		eps[0].Work(time.Millisecond)
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
	})
	sim.RunUntilIdle()
	want := time.Millisecond + 125*time.Microsecond
	if recs[1].got[0].at != want {
		t.Errorf("Work must delay subsequent sends: at %v, want %v", recs[1].got[0].at, want)
	}
}

func TestSendToUnknownDropped(t *testing.T) {
	sim, net, _, eps := setup(2, Options{})
	sim.Schedule(0, func() { eps[0].Send(ids.NewID(9, 9), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if net.MessagesDropped() != 1 {
		t.Error("send to unregistered node must count as dropped")
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	sim := des.New(1)
	net := New(sim, config.NewLAN(2), Options{})
	net.Register(ids.NewID(1, 1), &recorder{}, false)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	net.Register(ids.NewID(1, 1), &recorder{}, false)
}

func TestCounters(t *testing.T) {
	sim, net, _, eps := setup(2, Options{})
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 2})
	})
	sim.RunUntilIdle()
	if net.MessagesSent() != 2 || net.MessagesDelivered() != 2 {
		t.Errorf("sent=%d delivered=%d", net.MessagesSent(), net.MessagesDelivered())
	}
	if eps[0].Sent() != 2 || eps[1].Received() != 2 {
		t.Errorf("endpoint counters sent=%d recv=%d", eps[0].Sent(), eps[1].Received())
	}
}

func TestWANLatencyUsed(t *testing.T) {
	sim := des.New(1)
	cfg := config.NewWAN3(3)
	net := New(sim, cfg, Options{})
	var at time.Duration
	va := net.Register(ids.NewID(config.ZoneVirginia, 1), HandlerFunc(func(ids.ID, wire.Msg) {}), false)
	_ = va
	ca := net.Register(ids.NewID(config.ZoneCalifornia, 1), HandlerFunc(func(from ids.ID, m wire.Msg) {
		at = sim.Now()
	}), false)
	_ = ca
	sim.Schedule(0, func() { va.Send(ca.ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if at != 31*time.Millisecond {
		t.Errorf("VA→CA delivery at %v, want 31ms", at)
	}
}

// The leader-bottleneck shape in miniature: a hub exchanging messages with
// 24 spokes saturates ~8x earlier than a hub that talks to 3 relays.
func TestLeaderBottleneckShape(t *testing.T) {
	opts := DefaultOptions()
	run := func(fanout int) time.Duration {
		sim := des.New(1)
		net := New(sim, config.NewLAN(26), opts)
		hub := net.Register(ids.NewID(1, 1), HandlerFunc(func(ids.ID, wire.Msg) {}), false)
		for i := 2; i <= 26; i++ {
			net.Register(ids.NewID(1, i), HandlerFunc(func(ids.ID, wire.Msg) {}), false)
		}
		sim.Schedule(0, func() {
			for round := 0; round < 100; round++ {
				for j := 0; j < fanout; j++ {
					hub.Send(ids.NewID(1, 2+j), wire.P1a{Ballot: 1})
				}
			}
		})
		sim.RunUntilIdle()
		return hub.BusyUntil()
	}
	wide := run(24)
	narrow := run(3)
	ratio := float64(wide) / float64(narrow)
	if ratio < 7 || ratio > 9 {
		t.Errorf("CPU ratio 24-fanout/3-fanout = %.2f, want ≈ 8", ratio)
	}
}

func TestLossRateDropsRoughlyProportionally(t *testing.T) {
	opts := Options{LossRate: 0.3}
	sim, net, recs, eps := setup(2, opts)
	const n = 2000
	sim.Schedule(0, func() {
		for i := 0; i < n; i++ {
			eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
		}
	})
	sim.RunUntilIdle()
	got := len(recs[1].got)
	if got < n*60/100 || got > n*80/100 {
		t.Errorf("delivered %d of %d with 30%% loss, want ≈ %d", got, n, n*70/100)
	}
	if net.MessagesDropped() != uint64(n-got) {
		t.Errorf("dropped counter = %d, want %d", net.MessagesDropped(), n-got)
	}
}

func TestLossRateSparesLoopback(t *testing.T) {
	opts := Options{LossRate: 1.0}
	sim, _, recs, eps := setup(2, opts)
	sim.Schedule(0, func() { eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 1}) })
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Error("loopback must never be lost")
	}
}

func TestBandwidthAddsTransmissionDelay(t *testing.T) {
	// 1 KB/s link: a ~34-byte request takes ~34ms of transmission.
	opts := Options{BandwidthBps: 1024}
	sim, _, recs, eps := setup(2, opts)
	m := wire.Request{}
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), m) })
	sim.RunUntilIdle()
	want := 125*time.Microsecond + time.Duration(int64(m.Size())*int64(time.Second)/1024)
	if recs[1].got[0].at != want {
		t.Errorf("delivery at %v, want %v (size %d)", recs[1].got[0].at, want, m.Size())
	}
}

func TestBandwidthSparesLoopback(t *testing.T) {
	opts := Options{BandwidthBps: 1} // absurdly slow link
	sim, _, recs, eps := setup(2, opts)
	sim.Schedule(0, func() { eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 1}) })
	sim.Run(time.Second)
	if len(recs[0].got) != 1 {
		t.Error("loopback must bypass the link model")
	}
}
