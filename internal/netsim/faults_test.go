package netsim

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/wire"
)

// A message already in flight when a partition lands is dropped at arrival
// and counted in MessagesDropped: the cut applies to the wire, not just to
// future sends.
func TestPartitionDropsInFlightMessages(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) // arrives at 125µs
	})
	// Cut the pair while the message is mid-flight.
	sim.Schedule(50*time.Microsecond, func() {
		net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[1].ID()})
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 0 {
		t.Fatalf("in-flight message crossed the cut: %d delivered", len(recs[1].got))
	}
	if got := net.MessagesDropped(); got != 1 {
		t.Errorf("MessagesDropped = %d, want 1", got)
	}
	if got := net.MessagesSent(); got != 1 {
		t.Errorf("MessagesSent = %d, want 1", got)
	}
}

// A message that fully arrived before the partition is handled even if the
// cut lands between arrival and handling — the cut severs the wire, not the
// receiver's already-queued work.
func TestPartitionSparesAlreadyArrivedMessage(t *testing.T) {
	opts := Options{RecvCost: 100 * time.Microsecond}
	sim, net, recs, eps := setup(2, opts)
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) // arrival 125µs, handling 225µs
	})
	sim.Schedule(150*time.Microsecond, func() {
		net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[1].ID()})
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 1 {
		t.Fatalf("arrived message not handled: %d delivered", len(recs[1].got))
	}
}

// Partitioning a node from itself is a no-op: loopback always works.
func TestSelfPartitionNoOp(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[0].ID()})
	sim.Schedule(0, func() {
		eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 1})
	})
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Fatalf("self-partition cut loopback: %d delivered", len(recs[0].got))
	}
	if net.MessagesDropped() != 0 {
		t.Errorf("MessagesDropped = %d, want 0", net.MessagesDropped())
	}
}

// A node on both sides of a partition keeps its loopback but loses its links
// to everyone else on the far side.
func TestOverlappingPartitionSidesKeepLoopback(t *testing.T) {
	sim, net, recs, eps := setup(3, Options{})
	// Node 0 appears on both sides: cut {0,1} from {0,2}.
	net.Partition([]ids.ID{eps[0].ID(), eps[1].ID()}, []ids.ID{eps[0].ID(), eps[2].ID()})
	sim.Schedule(0, func() {
		eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 1}) // loopback: delivered
		eps[0].Send(eps[2].ID(), wire.P1a{Ballot: 2}) // cut: dropped
		eps[1].Send(eps[2].ID(), wire.P1a{Ballot: 3}) // cut: dropped
	})
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Errorf("loopback delivered %d, want 1", len(recs[0].got))
	}
	if len(recs[2].got) != 0 {
		t.Errorf("cut links delivered %d, want 0", len(recs[2].got))
	}
	if net.MessagesDropped() != 2 {
		t.Errorf("MessagesDropped = %d, want 2", net.MessagesDropped())
	}
}

// MessagesDropped accounts every loss class exactly once per message:
// sender-side cuts, receiver crashes, and unknown destinations.
func TestDroppedAccountingAcrossFaultClasses(t *testing.T) {
	sim, net, recs, eps := setup(3, Options{})
	net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[1].ID()})
	net.Crash(eps[2].ID())
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) // cut at send: dropped
		eps[0].Send(eps[2].ID(), wire.P1a{Ballot: 2}) // crashed receiver: dropped at arrival
		eps[0].Send(ids.NewID(7, 7), wire.P1a{Ballot: 3}) // unknown: dropped
	})
	sim.RunUntilIdle()
	if got := net.MessagesDropped(); got != 3 {
		t.Errorf("MessagesDropped = %d, want 3", got)
	}
	if got := net.MessagesSent(); got != 3 {
		t.Errorf("MessagesSent = %d, want 3", got)
	}
	if len(recs[1].got)+len(recs[2].got) != 0 {
		t.Error("faulted destinations received messages")
	}
}

// HealPartition restores delivery after in-flight drops.
func TestHealRestoresAfterInFlightDrop(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	sim.Schedule(0, func() { eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) })
	sim.Schedule(50*time.Microsecond, func() {
		net.Partition([]ids.ID{eps[0].ID()}, []ids.ID{eps[1].ID()})
	})
	sim.Schedule(time.Millisecond, func() { net.HealPartition() })
	sim.Schedule(2*time.Millisecond, func() { eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 2}) })
	sim.RunUntilIdle()
	if len(recs[1].got) != 1 {
		t.Fatalf("delivered %d messages after heal, want 1", len(recs[1].got))
	}
	if b := recs[1].got[0].m.(wire.P1a).Ballot; b != 2 {
		t.Errorf("wrong message survived: ballot %v", b)
	}
}

// Link loss drops roughly the configured fraction, counted as dropped.
func TestLinkFaultLoss(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.SetLinkFaults(eps[0].ID(), eps[1].ID(), LinkFaults{Loss: 0.5})
	const n = 2000
	sim.Schedule(0, func() {
		for i := 0; i < n; i++ {
			eps[0].Send(eps[1].ID(), wire.P1a{Ballot: ids.Ballot(i)})
		}
	})
	sim.RunUntilIdle()
	got := len(recs[1].got)
	if got < n*35/100 || got > n*65/100 {
		t.Errorf("50%% loss delivered %d of %d", got, n)
	}
	if net.MessagesDropped() != uint64(n-got) {
		t.Errorf("dropped %d, want %d", net.MessagesDropped(), n-got)
	}
}

// Duplication delivers extra copies: MessagesDelivered can exceed
// MessagesSent while MessagesDropped stays zero.
func TestLinkFaultDuplicate(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.SetLinkFaults(eps[0].ID(), eps[1].ID(), LinkFaults{Duplicate: 1.0})
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1})
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(recs[1].got))
	}
	if net.MessagesSent() != 1 || net.MessagesDelivered() != 2 {
		t.Errorf("sent=%d delivered=%d, want 1/2", net.MessagesSent(), net.MessagesDelivered())
	}
}

// Reordering lets a later send overtake an earlier one.
func TestLinkFaultReorder(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.SetLinkFaults(eps[0].ID(), eps[1].ID(), LinkFaults{
		Reorder:       1.0,
		ReorderWindow: 5 * time.Millisecond,
	})
	const n = 50
	sim.Schedule(0, func() {
		for i := 0; i < n; i++ {
			eps[0].Send(eps[1].ID(), wire.P1a{Ballot: ids.Ballot(i + 1)})
		}
	})
	sim.RunUntilIdle()
	if len(recs[1].got) != n {
		t.Fatalf("delivered %d of %d", len(recs[1].got), n)
	}
	inverted := false
	for i := 1; i < len(recs[1].got); i++ {
		if recs[1].got[i].m.(wire.P1a).Ballot < recs[1].got[i-1].m.(wire.P1a).Ballot {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Error("full-probability reorder over 50 sends produced FIFO delivery")
	}
}

// Equal seeds give bit-identical fault patterns; and configuring faults does
// not perturb the RNG draws of fault-free links.
func TestLinkFaultsDeterministic(t *testing.T) {
	run := func() (uint64, uint64, int) {
		sim := des.New(99)
		net := New(sim, config.NewLAN(3), Options{})
		recs := make([]*recorder, 3)
		eps := make([]*Endpoint, 3)
		for i := 0; i < 3; i++ {
			recs[i] = &recorder{}
			eps[i] = net.Register(ids.NewID(1, i+1), recs[i], false)
			recs[i].e = eps[i]
		}
		net.SetLinkFaults(eps[0].ID(), eps[1].ID(), LinkFaults{Loss: 0.3, Duplicate: 0.2, Reorder: 0.5})
		sim.Schedule(0, func() {
			for i := 0; i < 500; i++ {
				eps[0].Send(eps[1].ID(), wire.P1a{Ballot: ids.Ballot(i + 1)})
				eps[0].Send(eps[2].ID(), wire.P1a{Ballot: ids.Ballot(i + 1)})
			}
		})
		sim.RunUntilIdle()
		return net.MessagesDelivered(), net.MessagesDropped(), len(recs[1].got)
	}
	d1, x1, n1 := run()
	d2, x2, n2 := run()
	if d1 != d2 || x1 != x2 || n1 != n2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, x1, n1, d2, x2, n2)
	}
}

// SetAllLinkFaults covers every pair but spares loopback; ClearLinkFaults
// restores a clean network.
func TestAllLinkFaultsAndClear(t *testing.T) {
	sim, net, recs, eps := setup(2, Options{})
	net.SetAllLinkFaults(LinkFaults{Loss: 1.0})
	sim.Schedule(0, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 1}) // lost
		eps[0].Send(eps[0].ID(), wire.P1a{Ballot: 2}) // loopback spared
	})
	sim.Schedule(time.Millisecond, func() { net.ClearLinkFaults() })
	sim.Schedule(2*time.Millisecond, func() {
		eps[0].Send(eps[1].ID(), wire.P1a{Ballot: 3}) // delivered
	})
	sim.RunUntilIdle()
	if len(recs[0].got) != 1 {
		t.Errorf("loopback delivered %d, want 1", len(recs[0].got))
	}
	if len(recs[1].got) != 1 || recs[1].got[0].m.(wire.P1a).Ballot != 3 {
		t.Errorf("after clear delivered %v", recs[1].got)
	}
	if f, ok := net.LinkFaultsBetween(eps[0].ID(), eps[1].ID()); ok {
		t.Errorf("faults survive clear: %+v", f)
	}
}
