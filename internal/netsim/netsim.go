// Package netsim models the paper's testbed on top of the discrete-event
// simulator: every node owns a single virtual CPU that serializes message
// handling, links carry zone-to-zone latency from the cluster config, and
// failures (crashes, sluggishness, partitions) can be injected at any
// virtual time.
//
// The cost model is the heart of the reproduction. Sending a message costs
// the sender SendCost + ByteCost·size of CPU; receiving costs the receiver
// RecvCost + ByteCost·size before its handler runs. A node that must
// exchange many messages per consensus round (a Paxos leader: 2(N−1)+2)
// therefore saturates its virtual CPU at a proportionally lower request
// rate than a PigPaxos leader (2r+2) — exactly the bottleneck mechanism the
// paper measures on EC2.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

// Options tune the CPU/network cost model.
type Options struct {
	// SendCost is the fixed CPU time to serialize and hand one message to
	// the network.
	SendCost time.Duration
	// RecvCost is the fixed CPU time to read and deserialize one message.
	RecvCost time.Duration
	// ByteCostPerKB is additional CPU per KiB of payload, charged on both
	// sides (scaled linearly for partial KiBs).
	ByteCostPerKB time.Duration
	// Jitter adds uniform random [0, Jitter) to each link delay.
	Jitter time.Duration
	// LossRate drops each non-loopback message with this probability
	// (0..1). Protocol retries and catch-up must mask the losses.
	LossRate float64
	// BandwidthBps, when positive, models link capacity: each message
	// adds size/bandwidth of transmission delay on top of propagation
	// latency (§5.6: "large messages require ... more network capacity
	// for transmission").
	BandwidthBps int64
}

// DefaultOptions returns the calibration used for the paper reproduction:
// 10µs per message on each side and ~2.5µs/KiB (≈ single-core marshalling
// plus kernel/NIC costs on an m5a.large). With these numbers a 25-node
// Multi-Paxos leader (50 msgs/request) saturates around 1.9k req/s and a
// 3-group PigPaxos leader (8 msgs/request) around 9k — matching the paper's
// 2k vs 7k shape.
func DefaultOptions() Options {
	return Options{
		SendCost:      10 * time.Microsecond,
		RecvCost:      10 * time.Microsecond,
		ByteCostPerKB: 2500 * time.Nanosecond,
	}
}

// Handler consumes delivered messages at a registered endpoint.
type Handler interface {
	OnMessage(from ids.ID, m wire.Msg)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ids.ID, m wire.Msg)

// OnMessage implements Handler.
func (f HandlerFunc) OnMessage(from ids.ID, m wire.Msg) { f(from, m) }

// Network is a simulated cluster network.
type Network struct {
	sim  *des.Sim
	cfg  config.Cluster
	opts Options
	// prof is the cluster's per-zone-pair link profile source, when its
	// latency model carries one. Zero profiles draw nothing from the RNG,
	// so profile-free topologies run bit-identical to before profiles
	// existed.
	prof config.ProfileModel

	endpoints map[ids.ID]*Endpoint

	// freeDeliveries recycles message-delivery events (the simulator is
	// single-threaded, so a plain stack beats sync.Pool).
	freeDeliveries []*delivery

	// Counters for the analytical-model cross-checks.
	sent      metrics.Counter
	delivered metrics.Counter
	dropped   metrics.Counter
}

// New creates a network over sim for cluster cfg.
func New(sim *des.Sim, cfg config.Cluster, opts Options) *Network {
	n := &Network{
		sim:       sim,
		cfg:       cfg,
		opts:      opts,
		endpoints: make(map[ids.ID]*Endpoint),
	}
	if pm, ok := cfg.Latency.(config.ProfileModel); ok {
		n.prof = pm
	}
	return n
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *des.Sim { return n.sim }

// Cluster returns the cluster configuration the network was built over.
// Region-level fault injection uses it to resolve zones to node sets.
func (n *Network) Cluster() config.Cluster { return n.cfg }

// Register attaches handler h as node id and returns its endpoint. Clients
// register like nodes; pass free=true to give the endpoint an unmetered CPU
// (the paper ran clients on larger instances so that client-side processing
// never limits the measurement).
func (n *Network) Register(id ids.ID, h Handler, free bool) *Endpoint {
	if _, dup := n.endpoints[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate endpoint %v", id))
	}
	e := &Endpoint{net: n, id: id, handler: h, free: free}
	n.endpoints[id] = e
	return e
}

// Endpoint returns the endpoint registered for id, or nil.
func (n *Network) Endpoint(id ids.ID) *Endpoint { return n.endpoints[id] }

// MessagesSent returns the number of messages handed to the network.
func (n *Network) MessagesSent() uint64 { return n.sent.Value() }

// MessagesDelivered returns the number of messages delivered to handlers.
func (n *Network) MessagesDelivered() uint64 { return n.delivered.Value() }

// MessagesDropped returns messages dropped by crashes or partitions.
func (n *Network) MessagesDropped() uint64 { return n.dropped.Value() }

// Crash makes id drop every message in or out until Recover. In-flight
// messages addressed to it are dropped on delivery.
func (n *Network) Crash(id ids.ID) {
	if e := n.endpoints[id]; e != nil {
		e.crashed = true
	}
}

// Recover brings a crashed node back (it retains its pre-crash state, as in
// the paper's crash-recovery model; protocols must tolerate stale state).
func (n *Network) Recover(id ids.ID) {
	if e := n.endpoints[id]; e != nil {
		e.crashed = false
	}
}

// Reboot brings a crashed node back as a fresh incarnation: h replaces the
// endpoint's handler and every timer armed by the previous incarnation is
// invalidated (its epoch no longer matches). Unlike Recover, which models a
// process that kept its memory, Reboot models an honest process restart —
// the caller supplies a new protocol instance that must rebuild its state
// from durable storage alone. Messages already in flight still arrive (the
// network does not know the process restarted); protocols tolerate them the
// same way they tolerate any stale delivery.
func (n *Network) Reboot(id ids.ID, h Handler) {
	if e := n.endpoints[id]; e != nil {
		e.epoch++
		e.crashed = false
		e.handler = h
	}
}

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id ids.ID) bool {
	e := n.endpoints[id]
	return e != nil && e.crashed
}

// SetSluggish multiplies id's CPU costs by factor (1 = normal). Models the
// "sluggish node" scenarios of §3.4 without a full crash.
func (n *Network) SetSluggish(id ids.ID, factor float64) {
	if e := n.endpoints[id]; e != nil {
		if factor < 1 {
			factor = 1
		}
		e.slow = factor
	}
}

// Partition cuts connectivity between every pair (a ∈ sideA, b ∈ sideB) in
// both directions until HealPartition. A node appearing on both sides is
// never cut from itself: loopback survives every partition (a node can
// always talk to itself), so self-partitions are no-ops.
func (n *Network) Partition(sideA, sideB []ids.ID) {
	for _, a := range sideA {
		for _, b := range sideB {
			if a == b {
				continue
			}
			if ea := n.endpoints[a]; ea != nil {
				if ea.cut == nil {
					ea.cut = make(map[ids.ID]bool)
				}
				ea.cut[b] = true
			}
			if eb := n.endpoints[b]; eb != nil {
				if eb.cut == nil {
					eb.cut = make(map[ids.ID]bool)
				}
				eb.cut[a] = true
			}
		}
	}
}

// PartitionZone cuts every endpoint whose zone is z — replicas and clients
// alike — from every endpoint outside z, until HealPartition. It models a
// region losing its WAN uplinks: intra-region connectivity survives, and
// clients homed in the region are marooned with it.
func (n *Network) PartitionZone(z int) {
	for ida, ea := range n.endpoints {
		if n.cfg.ZoneOf(ida) != z {
			continue
		}
		for idb, eb := range n.endpoints {
			if idb == ida || n.cfg.ZoneOf(idb) == z {
				continue
			}
			if ea.cut == nil {
				ea.cut = make(map[ids.ID]bool)
			}
			ea.cut[idb] = true
			if eb.cut == nil {
				eb.cut = make(map[ids.ID]bool)
			}
			eb.cut[ida] = true
		}
	}
}

// HealPartition removes all partition cuts.
func (n *Network) HealPartition() {
	for _, e := range n.endpoints {
		e.cut = nil
	}
}

// LinkFaults are probabilistic per-link disturbances, applied on the sender
// side of a directed link. All probabilities are in [0,1]; draws come from
// the simulation RNG, so equal seeds give bit-identical fault patterns.
type LinkFaults struct {
	// Loss drops each message with this probability (counted in
	// MessagesDropped).
	Loss float64
	// Duplicate delivers each message twice with this probability (the
	// second copy shares the send's CPU charge: duplication happens in the
	// network, not at the sender). Deliveries can therefore exceed sends.
	Duplicate float64
	// Reorder adds uniform random [0, ReorderWindow) extra latency to a
	// message with this probability, letting later sends overtake it.
	Reorder float64
	// ReorderWindow bounds the extra reorder delay (default 1ms).
	ReorderWindow time.Duration
}

// active reports whether any fault is configured.
func (f LinkFaults) active() bool {
	return f.Loss > 0 || f.Duplicate > 0 || f.Reorder > 0
}

// SetLinkFaults installs f on the directed link from → to, replacing any
// previous setting. A zero LinkFaults clears the link.
func (n *Network) SetLinkFaults(from, to ids.ID, f LinkFaults) {
	e := n.endpoints[from]
	if e == nil {
		return
	}
	if !f.active() {
		delete(e.links, to)
		return
	}
	if f.Reorder > 0 && f.ReorderWindow <= 0 {
		f.ReorderWindow = time.Millisecond
	}
	if e.links == nil {
		e.links = make(map[ids.ID]LinkFaults)
	}
	e.links[to] = f
}

// SetAllLinkFaults installs f on every registered directed link (loopbacks
// excluded — a node never loses messages to itself).
func (n *Network) SetAllLinkFaults(f LinkFaults) {
	for from := range n.endpoints {
		for to := range n.endpoints {
			if from == to {
				continue
			}
			n.SetLinkFaults(from, to, f)
		}
	}
}

// SetZoneLinkFaults installs f on every directed link joining zone a to
// zone b, in both directions (a == b selects the zone's internal links).
// Chaos schedules use it to degrade one WAN path — say Virginia↔Oregon —
// while the rest of the mesh stays clean. Only cluster members are touched;
// client endpoints keep clean links (the paper degrades replica WAN paths,
// not client access networks).
func (n *Network) SetZoneLinkFaults(zoneA, zoneB int, f LinkFaults) {
	for _, from := range n.cfg.Nodes {
		for _, to := range n.cfg.Nodes {
			if from == to {
				continue
			}
			za, zb := n.cfg.ZoneOf(from), n.cfg.ZoneOf(to)
			if (za == zoneA && zb == zoneB) || (za == zoneB && zb == zoneA) {
				n.SetLinkFaults(from, to, f)
			}
		}
	}
}

// ClearLinkFaults removes every per-link fault configuration.
func (n *Network) ClearLinkFaults() {
	for _, e := range n.endpoints {
		e.links = nil
	}
}

// LinkFaultsBetween returns the faults configured on from → to.
func (n *Network) LinkFaultsBetween(from, to ids.ID) (LinkFaults, bool) {
	if e := n.endpoints[from]; e != nil {
		f, ok := e.links[to]
		return f, ok
	}
	return LinkFaults{}, false
}

// byteCost scales the per-KiB rate to an arbitrary byte count.
func byteCost(perKB time.Duration, size int) time.Duration {
	return time.Duration(int64(perKB) * int64(size) / 1024)
}

// delivery is one in-flight message, pooled on the Network and scheduled
// as a des.Runner — replacing the two closures (arrival + handle) the
// delivery path used to allocate per message. The same object runs twice:
// first at network arrival, where it charges the receiver's CPU and
// reschedules itself, then at handling time, where it invokes the handler
// and returns to the pool.
type delivery struct {
	dst     *Endpoint
	from    ids.ID
	m       wire.Msg
	size    int
	arrived bool
}

func (n *Network) newDelivery(dst *Endpoint, from ids.ID, m wire.Msg, size int) *delivery {
	if k := len(n.freeDeliveries); k > 0 {
		d := n.freeDeliveries[k-1]
		n.freeDeliveries = n.freeDeliveries[:k-1]
		*d = delivery{dst: dst, from: from, m: m, size: size}
		return d
	}
	return &delivery{dst: dst, from: from, m: m, size: size}
}

func (n *Network) releaseDelivery(d *delivery) {
	*d = delivery{}
	n.freeDeliveries = append(n.freeDeliveries, d)
}

// Run implements des.Runner.
func (d *delivery) Run() {
	e := d.dst
	n := e.net
	if !d.arrived {
		// Network arrival: the receiver pays RecvCost plus per-byte CPU
		// before its handler may run (same cost model as before).
		if e.crashed || e.cut[d.from] {
			n.dropped.Inc()
			n.releaseDelivery(d)
			return
		}
		handleAt := e.cpu(n.sim.Now(), n.opts.RecvCost+byteCost(n.opts.ByteCostPerKB, d.size))
		d.arrived = true
		n.sim.ScheduleRunner(handleAt-n.sim.Now(), d)
		return
	}
	// Handling time.
	if e.crashed {
		n.dropped.Inc()
		n.releaseDelivery(d)
		return
	}
	n.delivered.Inc()
	e.received++
	from, m := d.from, d.m
	// Release before invoking the handler: sends from inside OnMessage may
	// reuse this object immediately.
	n.releaseDelivery(d)
	e.handler.OnMessage(from, m)
}

// Endpoint is one simulated node's attachment to the network. It implements
// the context protocols use to act on the world: sending, timers, clock and
// randomness. All methods must be called from simulator callbacks (the
// simulator is single-threaded).
type Endpoint struct {
	net     *Network
	id      ids.ID
	handler Handler
	free    bool // unmetered CPU (clients)

	busyUntil time.Duration
	busyTotal time.Duration // accumulated CPU time consumed
	crashed   bool
	epoch     uint64 // incarnation counter; bumped by Reboot to kill timers
	slow      float64
	cut       map[ids.ID]bool
	links     map[ids.ID]LinkFaults // per-destination probabilistic faults

	sent     uint64
	received uint64
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() ids.ID { return e.id }

// Now returns the current virtual time.
func (e *Endpoint) Now() time.Duration { return e.net.sim.Now() }

// Rand returns the deterministic simulation RNG.
func (e *Endpoint) Rand() *rand.Rand { return e.net.sim.Rand() }

// Sent returns how many messages this endpoint has sent.
func (e *Endpoint) Sent() uint64 { return e.sent }

// Received returns how many messages were delivered to this endpoint.
func (e *Endpoint) Received() uint64 { return e.received }

// BusyUntil exposes the CPU horizon for load accounting in tests.
func (e *Endpoint) BusyUntil() time.Duration { return e.busyUntil }

// BusyTotal returns the accumulated CPU time this endpoint has consumed —
// utilization over a window is BusyTotal delta divided by the window.
func (e *Endpoint) BusyTotal() time.Duration { return e.busyTotal }

func (e *Endpoint) scale(d time.Duration) time.Duration {
	if e.free {
		return 0
	}
	if e.slow > 1 {
		return time.Duration(float64(d) * e.slow)
	}
	return d
}

// cpu charges d of CPU starting no earlier than now and returns the
// completion instant.
func (e *Endpoint) cpu(now, d time.Duration) time.Duration {
	start := e.busyUntil
	if now > start {
		start = now
	}
	work := e.scale(d)
	e.busyTotal += work
	e.busyUntil = start + work
	return e.busyUntil
}

// Work charges extra CPU to the endpoint (protocol bookkeeping such as vote
// tallying or state-machine execution) without sending anything.
func (e *Endpoint) Work(d time.Duration) {
	e.cpu(e.net.sim.Now(), d)
}

// Send transmits m to the node registered as to. Messages to self are
// delivered through the same cost path (loopback latency zero).
func (e *Endpoint) Send(to ids.ID, m wire.Msg) {
	n := e.net
	n.sent.Inc()
	e.sent++
	if e.crashed {
		n.dropped.Inc()
		return
	}
	if e.cut[to] {
		n.dropped.Inc()
		return
	}
	dst := n.endpoints[to]
	if dst == nil {
		n.dropped.Inc()
		return
	}
	if n.opts.LossRate > 0 && to != e.id && n.sim.Rand().Float64() < n.opts.LossRate {
		n.dropped.Inc()
		return
	}
	// Per-link probabilistic faults (chaos schedules). RNG draws happen only
	// when faults are configured, so fault-free runs are bit-identical to
	// runs before this feature existed.
	lf, chaotic := e.links[to]
	if chaotic && lf.Loss > 0 && n.sim.Rand().Float64() < lf.Loss {
		n.dropped.Inc()
		return
	}
	// Topology-level link profile (WAN jitter/loss per zone pair). Same
	// determinism contract as chaos faults: zero profiles draw nothing.
	var lp config.LinkProfile
	if n.prof != nil && to != e.id {
		lp = n.prof.Profile(n.cfg.ZoneOf(e.id), n.cfg.ZoneOf(to))
		if lp.Loss > 0 && n.sim.Rand().Float64() < lp.Loss {
			n.dropped.Inc()
			return
		}
	}
	size := m.Size()
	sendDone := e.cpu(n.sim.Now(), n.opts.SendCost+byteCost(n.opts.ByteCostPerKB, size))
	var lat time.Duration
	if to != e.id {
		lat = n.cfg.OneWay(e.id, to)
		if lp.OneWay > 0 {
			lat = lp.OneWay
		}
		if lp.Jitter > 0 {
			lat += time.Duration(n.sim.Rand().Int63n(int64(lp.Jitter)))
		}
		if n.opts.Jitter > 0 {
			lat += time.Duration(n.sim.Rand().Int63n(int64(n.opts.Jitter)))
		}
		if n.opts.BandwidthBps > 0 {
			lat += time.Duration(int64(size) * int64(time.Second) / n.opts.BandwidthBps)
		}
	}
	copies := 1
	if chaotic && lf.Duplicate > 0 && n.sim.Rand().Float64() < lf.Duplicate {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		d := lat
		if chaotic && lf.Reorder > 0 && n.sim.Rand().Float64() < lf.Reorder {
			d += time.Duration(n.sim.Rand().Int63n(int64(lf.ReorderWindow)))
		}
		n.sim.ScheduleRunner(sendDone+d-n.sim.Now(), n.newDelivery(dst, e.id, m, size))
	}
}

// Broadcast sends m to every node in to, charging the sender the full
// per-recipient CPU cost (SendCost + ByteCost·size each) exactly as N
// unicasts would: the paper's leader bottleneck is that per-recipient
// serialization tax, so the simulator keeps paying it even though live
// transports encode once. Results are bit-identical to a Send loop at
// equal seeds.
func (e *Endpoint) Broadcast(to []ids.ID, m wire.Msg) {
	for _, id := range to {
		e.Send(id, m)
	}
}

// After schedules fn after d of virtual time. Timers fire even while the
// CPU is busy (they model OS timers); crashed nodes skip the callback, and a
// timer armed before a Reboot never fires into the new incarnation (the
// restarted process did not arm it).
func (e *Endpoint) After(d time.Duration, fn func()) node.Timer {
	epoch := e.epoch
	return e.net.sim.Schedule(d, func() {
		if e.crashed || e.epoch != epoch {
			return
		}
		fn()
	})
}

// Endpoint implements node.Context.
var _ node.Context = (*Endpoint)(nil)
