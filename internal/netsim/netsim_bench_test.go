package netsim

import (
	"testing"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// Send/receive is the innermost loop of every experiment: each simulated
// message pays CPU-cost accounting at both endpoints plus two scheduled
// events. These benchmarks guard that per-message overhead, which bounds
// how large a batching sweep stays affordable in wall-clock time.

type sink struct{ n int }

func (s *sink) OnMessage(from ids.ID, m wire.Msg) { s.n++ }

func benchNet(b *testing.B) (*des.Sim, *Endpoint, *Endpoint, *sink) {
	b.Helper()
	sim := des.New(1)
	cc := config.NewLAN(2)
	net := New(sim, cc, DefaultOptions())
	recv := &sink{}
	a := net.Register(cc.Nodes[0], &sink{}, false)
	z := net.Register(cc.Nodes[1], recv, false)
	return sim, a, z, recv
}

// Messages are pre-boxed as wire.Msg, as protocols hold them, so the
// benches measure the substrate rather than call-site interface boxing.

func BenchmarkSendReceiveSmall(b *testing.B) {
	sim, a, z, _ := benchNet(b)
	var m wire.Msg = wire.P2b{Ballot: 7, From: a.ID(), Slot: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(z.ID(), m)
		sim.RunUntilIdle()
	}
}

func BenchmarkSendReceiveBatch16(b *testing.B) {
	sim, a, z, _ := benchNet(b)
	cmds := make([]kvstore.Command, 16)
	for i := range cmds {
		cmds[i] = kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	}
	var m wire.Msg = wire.P2a{Ballot: 7, Slot: 1, Cmds: cmds}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(z.ID(), m)
		sim.RunUntilIdle()
	}
}

// BenchmarkFanOut25 is one leader round on the paper's 25-node cluster:
// 24 unicasts and 24 deliveries through the full cost model.
func BenchmarkFanOut25(b *testing.B) {
	sim := des.New(1)
	cc := config.NewLAN(25)
	net := New(sim, cc, DefaultOptions())
	leader := net.Register(cc.Nodes[0], &sink{}, false)
	for _, id := range cc.Nodes[1:] {
		net.Register(id, &sink{}, false)
	}
	var m wire.Msg = wire.P2a{Ballot: 7, Slot: 1, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range cc.Nodes[1:] {
			leader.Send(id, m)
		}
		sim.RunUntilIdle()
	}
}

// BenchmarkBroadcast25 is the same round through the Broadcast API (what
// the protocols now call); the cost model charges identically.
func BenchmarkBroadcast25(b *testing.B) {
	sim := des.New(1)
	cc := config.NewLAN(25)
	net := New(sim, cc, DefaultOptions())
	leader := net.Register(cc.Nodes[0], &sink{}, false)
	for _, id := range cc.Nodes[1:] {
		net.Register(id, &sink{}, false)
	}
	var m wire.Msg = wire.P2a{Ballot: 7, Slot: 1, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		leader.Broadcast(cc.Nodes[1:], m)
		sim.RunUntilIdle()
	}
}
