package netsim

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

type timeRecorder struct {
	at   []time.Duration
	from []ids.ID
	sim  *des.Sim
}

func (r *timeRecorder) OnMessage(from ids.ID, m wire.Msg) {
	r.at = append(r.at, r.sim.Now())
	r.from = append(r.from, from)
}

// TestBroadcastMatchesSendLoop is the cost-model invariant behind the
// encode-once Broadcast API: on the simulator, Broadcast must be
// indistinguishable from the per-recipient Send loop it replaced — same
// delivery times, same sender CPU, same counters — so every benchmark
// number is bit-identical at equal seeds.
func TestBroadcastMatchesSendLoop(t *testing.T) {
	run := func(broadcast bool) ([]time.Duration, time.Duration, uint64) {
		sim := des.New(99)
		cc := config.NewLAN(9)
		net := New(sim, cc, DefaultOptions())
		leader := net.Register(cc.Nodes[0], &sink{}, false)
		recs := make([]*timeRecorder, 0, 8)
		for _, id := range cc.Nodes[1:] {
			r := &timeRecorder{sim: sim}
			recs = append(recs, r)
			net.Register(id, r, false)
		}
		var m wire.Msg = wire.P2a{Ballot: 3, Slot: 7, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: []byte("v")}}}
		for round := 0; round < 5; round++ {
			if broadcast {
				leader.Broadcast(cc.Nodes[1:], m)
			} else {
				for _, id := range cc.Nodes[1:] {
					leader.Send(id, m)
				}
			}
			sim.RunUntilIdle()
		}
		var all []time.Duration
		for _, r := range recs {
			all = append(all, r.at...)
		}
		return all, leader.BusyTotal(), net.MessagesDelivered()
	}
	at1, busy1, n1 := run(false)
	at2, busy2, n2 := run(true)
	if n1 != n2 {
		t.Fatalf("delivered %d vs %d messages", n1, n2)
	}
	if busy1 != busy2 {
		t.Fatalf("sender CPU %v vs %v: Broadcast must charge per-recipient cost", busy1, busy2)
	}
	if len(at1) != len(at2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(at1), len(at2))
	}
	for i := range at1 {
		if at1[i] != at2[i] {
			t.Fatalf("delivery %d at %v vs %v", i, at1[i], at2[i])
		}
	}
}

// TestSendSteadyStateZeroAllocs: the simulated message path (send → cost
// accounting → two slab events → handler) must not allocate once the
// delivery pool and event slab have grown — this is what lets large sweeps
// run at memory-bandwidth speed.
func TestSendSteadyStateZeroAllocs(t *testing.T) {
	sim := des.New(1)
	cc := config.NewLAN(2)
	net := New(sim, cc, DefaultOptions())
	recv := &sink{}
	a := net.Register(cc.Nodes[0], &sink{}, false)
	z := net.Register(cc.Nodes[1], recv, false)
	var m wire.Msg = wire.P2b{Ballot: 7, From: a.ID(), Slot: 1}
	// Warm the pools.
	for i := 0; i < 100; i++ {
		a.Send(z.ID(), m)
		sim.RunUntilIdle()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		a.Send(z.ID(), m)
		sim.RunUntilIdle()
	})
	if allocs != 0 {
		t.Errorf("steady-state simulated send allocates %.2f allocs/op, want 0", allocs)
	}
	if recv.n == 0 {
		t.Fatal("no messages delivered")
	}
}

// TestDeliveryPoolReuseUnderFault: crashed/cut deliveries release their
// pooled event without running the handler.
func TestDeliveryPoolReuseUnderFault(t *testing.T) {
	sim := des.New(1)
	cc := config.NewLAN(3)
	net := New(sim, cc, DefaultOptions())
	a := net.Register(cc.Nodes[0], &sink{}, false)
	recvB := &sink{}
	net.Register(cc.Nodes[1], recvB, false)
	recvC := &sink{}
	net.Register(cc.Nodes[2], recvC, false)

	net.Crash(cc.Nodes[1])
	var m wire.Msg = wire.Heartbeat{Ballot: 1, From: a.ID()}
	for i := 0; i < 50; i++ {
		a.Broadcast(cc.Nodes[1:], m)
		sim.RunUntilIdle()
	}
	if recvB.n != 0 {
		t.Errorf("crashed node received %d messages", recvB.n)
	}
	if recvC.n != 50 {
		t.Errorf("healthy node received %d messages, want 50", recvC.n)
	}
	if net.MessagesDropped() != 50 {
		t.Errorf("dropped = %d, want 50", net.MessagesDropped())
	}
}
