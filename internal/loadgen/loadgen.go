// Package loadgen is the open-loop load engine behind cmd/pigload. It
// drives a real TCP cluster with Poisson arrivals at a fixed aggregate
// rate: requests launch on their scheduled arrival instants whether or not
// earlier ones have completed, so queueing delay shows up in the measured
// latency instead of silently throttling the offered load (no coordinated
// omission). That is the arrival model under which the paper's §5.4
// saturation curves — throughput flattening while latency diverges — are
// defined.
//
// Each worker is one at-most-once client session: its own client ID, its
// own Poisson clock at rate/W (superposition keeps the aggregate exact),
// one framed TCP connection at a time. Workers follow leader redirects,
// rotate targets when connections die, and retransmit stragglers, so a
// leader crash mid-run costs a bounded completion gap rather than the
// run. Past the in-flight cap a worker sheds new arrivals — the open
// loop's stand-in for an overloaded client machine — and the shed count
// is reported so saturation is visible in the output, not hidden.
package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/metrics"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
	"pigpaxos/internal/workload"
)

// Options configures a load run.
type Options struct {
	// Addrs maps every member to its TCP address.
	Addrs map[ids.ID]string
	// Members lists the cluster, ascending; the first entry is the
	// presumed initial leader and every worker's first target.
	Members []ids.ID
	// Clients is the worker count (default 8).
	Clients int
	// Rate is the aggregate offered load in ops/sec (required).
	Rate float64
	// Warmup runs load without recording (default 1s).
	Warmup time.Duration
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Workload shapes keys, read ratio, and payloads.
	Workload workload.Config
	// Timeout abandons an op this long after its scheduled arrival
	// (default 2s). Abandoned ops count as timeouts, including retried
	// ops whose first execution was swallowed by the at-most-once
	// session window — bounded noise under failover.
	Timeout time.Duration
	// MaxInFlight caps one worker's outstanding ops; arrivals beyond it
	// are shed (default 1024).
	MaxInFlight int
	// RetryInterval is the straggler sweep period (default 250ms).
	// Every third attempt for the same op rotates to the next member.
	RetryInterval time.Duration
	// Seed makes arrival times and key draws reproducible.
	Seed int64
	// ClientIDBase offsets worker client IDs (worker i uses base+i) so
	// repeated runs against one cluster get fresh sessions. Zero means
	// unset (defaults to 1) unless ClientIDBaseSet is true, which makes an
	// explicit zero base honored rather than silently rewritten.
	ClientIDBase uint64
	// ClientIDBaseSet marks ClientIDBase as deliberately chosen, lifting
	// the zero-value "unset vs explicit 0" conflation.
	ClientIDBaseSet bool
}

func (o *Options) defaults() error {
	if o.Rate <= 0 {
		return fmt.Errorf("loadgen: non-positive rate %v", o.Rate)
	}
	if len(o.Members) == 0 || len(o.Addrs) == 0 {
		return fmt.Errorf("loadgen: empty cluster")
	}
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Clients < 0 {
		return fmt.Errorf("loadgen: negative client count")
	}
	if o.Warmup == 0 {
		o.Warmup = time.Second
	}
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Second
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 1024
	}
	if o.RetryInterval == 0 {
		o.RetryInterval = 250 * time.Millisecond
	}
	if o.ClientIDBase == 0 && !o.ClientIDBaseSet {
		o.ClientIDBase = 1
	}
	if err := o.Workload.Validate(); err != nil {
		return err
	}
	return nil
}

// Result aggregates a run. Offered/Completed/Shed/Timeouts count only ops
// whose scheduled arrival fell inside the measurement window; goodput is
// completions inside the window per second of window.
type Result struct {
	Offered   uint64
	Completed uint64
	Shed      uint64
	Timeouts  uint64
	Redirects uint64
	Resends   uint64
	// Busy counts leader admission rejections (wire.Busy) received for
	// in-window ops — distinct from client-side sheds and timeouts, since
	// a Busy op is retried after the leader's hint and usually completes.
	Busy uint64
	// Latency digests scheduled-arrival→completion times (queueing
	// included — the open-loop latency).
	Latency metrics.Summary
	// Goodput is committed ops/sec over the measurement window.
	Goodput float64
	// OfferedRate is the realized arrival rate over the window.
	OfferedRate float64
	// MaxGap is the longest interval between consecutive completions
	// inside the window — the availability hole a mid-run fault opens.
	MaxGap time.Duration
	// Elapsed is the measurement window length.
	Elapsed time.Duration
}

// String renders the one-line human summary pigload prints to stderr.
func (r *Result) String() string {
	return fmt.Sprintf(
		"offered %.0f/s goodput %.0f/s (completed %d shed %d busy %d timeout %d redirect %d resend %d) lat %v maxgap %v",
		r.OfferedRate, r.Goodput, r.Completed, r.Shed, r.Busy, r.Timeouts,
		r.Redirects, r.Resends, r.Latency, r.MaxGap)
}

// Run drives the cluster and blocks until the measurement window plus a
// drain grace (one Timeout) has passed and every worker has wound down.
func Run(opts Options) (*Result, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	hist := metrics.NewHistogram()
	// A shared epoch slightly in the future aligns every worker's
	// Poisson clock and measurement window.
	start := time.Now().Add(20 * time.Millisecond)
	measStart := start.Add(opts.Warmup)
	measEnd := measStart.Add(opts.Duration)
	workers := make([]*worker, opts.Clients)
	perRate := opts.Rate / float64(opts.Clients)
	for i := range workers {
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*7919))
		workers[i] = &worker{
			opts:      &opts,
			clientID:  opts.ClientIDBase + uint64(i),
			sender:    ids.NewID(998, i+1),
			gen:       workload.New(opts.Workload, rng),
			arrivals:  workload.NewArrivals(perRate, rng),
			target:    opts.Members[0],
			pending:   make(map[uint64]*op),
			rx:        make(chan rxEvent, opts.MaxInFlight+16),
			done:      make(chan struct{}),
			hist:      hist,
			measStart: measStart,
			measEnd:   measEnd,
		}
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(start, measEnd)
		}(w)
	}
	wg.Wait()
	res := &Result{Elapsed: opts.Duration}
	var completions []time.Duration
	for _, w := range workers {
		res.Offered += w.offered
		res.Completed += w.completed
		res.Shed += w.shed
		res.Timeouts += w.timeouts
		res.Redirects += w.redirects
		res.Resends += w.resends
		res.Busy += w.busy
		completions = append(completions, w.completions...)
	}
	res.Latency = hist.Snapshot()
	sec := opts.Duration.Seconds()
	res.Goodput = float64(res.Completed) / sec
	res.OfferedRate = float64(res.Offered) / sec
	sort.Slice(completions, func(i, j int) bool { return completions[i] < completions[j] })
	for i := 1; i < len(completions); i++ {
		if d := completions[i] - completions[i-1]; d > res.MaxGap {
			res.MaxGap = d
		}
	}
	return res, nil
}

type op struct {
	cmd       wire.Request
	scheduled time.Time
	lastSent  time.Time
	attempts  int
	inWindow  bool
	// busyN counts consecutive Busy rejections; the retry-after hint is
	// doubled per rejection so a persistently overloaded leader is not
	// livelocked issuing rejections to the same retry storm.
	busyN int
}

type rxEvent struct {
	gen  int
	rep  wire.Reply
	busy wire.Busy
	kind rxKind
	err  error
	// retrySeq is the op a Busy retry-after timer just expired for
	// (kind == rxRetry); connection-independent, so gen is ignored.
	retrySeq uint64
}

type rxKind uint8

const (
	rxReply rxKind = iota
	rxBusy
	rxRetry
	rxErr
)

type worker struct {
	opts     *Options
	clientID uint64
	sender   ids.ID
	gen      *workload.Generator
	arrivals *workload.Arrivals

	target  ids.ID
	conn    net.Conn
	connGen int
	readers sync.WaitGroup
	rx      chan rxEvent
	done    chan struct{}

	seq     uint64
	pending map[uint64]*op

	hist               *metrics.Histogram
	measStart, measEnd time.Time
	completions        []time.Duration // since measStart, unsorted per worker
	offered, completed uint64
	shed, timeouts     uint64
	redirects, resends uint64
	busy               uint64
}

func (w *worker) run(start, end time.Time) {
	defer w.teardown()
	next := start.Add(w.arrivals.Next())
	sweep := time.NewTicker(w.opts.RetryInterval)
	defer sweep.Stop()
	arrival := time.NewTimer(time.Until(next))
	defer arrival.Stop()
	hardStop := end.Add(w.opts.Timeout) // drain grace
	for {
		now := time.Now()
		if now.After(hardStop) || (now.After(end) && len(w.pending) == 0) {
			return
		}
		var arrivalC <-chan time.Time
		if !now.After(end) {
			arrival.Reset(time.Until(next))
			arrivalC = arrival.C
		} else {
			arrival.Reset(time.Until(hardStop))
			arrivalC = nil
		}
		select {
		case <-arrivalC:
			w.launch(next)
			next = next.Add(w.arrivals.Next())
		case ev := <-w.rx:
			w.onRx(ev)
		case <-sweep.C:
			w.sweepPending()
		}
	}
}

func (w *worker) teardown() {
	close(w.done)
	w.dropConn()
	w.readers.Wait()
}

// launch fires the arrival scheduled for t: shed past the cap, otherwise
// register and send. Latency is measured from t, not from the actual send,
// so a backed-up worker reports the queueing it caused.
func (w *worker) launch(t time.Time) {
	inWin := !t.Before(w.measStart) && t.Before(w.measEnd)
	if inWin {
		w.offered++
	}
	if len(w.pending) >= w.opts.MaxInFlight {
		if inWin {
			w.shed++
		}
		return
	}
	w.seq++
	o := &op{
		cmd:       wire.Request{Cmd: w.gen.Next(w.clientID, w.seq)},
		scheduled: t,
		inWindow:  inWin,
	}
	w.pending[w.seq] = o
	w.send(o)
}

func (w *worker) send(o *op) {
	o.attempts++
	o.lastSent = time.Now()
	c := w.ensureConn()
	if c == nil {
		return // sweep retries once a connection comes back
	}
	if err := transport.WriteFrame(c, w.sender, o.cmd); err != nil {
		w.dropConn()
		w.rotate()
	}
}

// ensureConn dials the current target if needed, spawning a reader that
// feeds w.rx until the connection dies. On dial failure the worker rotates
// so the next attempt tries another member.
func (w *worker) ensureConn() net.Conn {
	if w.conn != nil {
		return w.conn
	}
	addr, ok := w.opts.Addrs[w.target]
	if !ok {
		w.rotate()
		return nil
	}
	c, err := net.DialTimeout("tcp", addr, w.opts.RetryInterval)
	if err != nil {
		w.rotate()
		return nil
	}
	w.conn = c
	w.connGen++
	gen := w.connGen
	w.readers.Add(1)
	go func() {
		defer w.readers.Done()
		br := bufio.NewReader(c)
		for {
			_, m, err := transport.ReadFrame(br)
			if err != nil {
				select {
				case w.rx <- rxEvent{gen: gen, kind: rxErr, err: err}:
				case <-w.done:
				}
				return
			}
			switch v := m.(type) {
			case wire.Reply:
				select {
				case w.rx <- rxEvent{gen: gen, kind: rxReply, rep: v}:
				case <-w.done:
					return
				}
			case wire.Busy:
				select {
				case w.rx <- rxEvent{gen: gen, kind: rxBusy, busy: v}:
				case <-w.done:
					return
				}
			}
		}
	}()
	return c
}

func (w *worker) dropConn() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
}

func (w *worker) rotate() {
	for i, id := range w.opts.Members {
		if id == w.target {
			w.target = w.opts.Members[(i+1)%len(w.opts.Members)]
			return
		}
	}
	w.target = w.opts.Members[0]
}

func (w *worker) onRx(ev rxEvent) {
	if ev.kind == rxRetry {
		// A Busy retry-after timer expired; the op may have completed or
		// timed out in the meantime.
		if o, ok := w.pending[ev.retrySeq]; ok {
			w.resends++
			w.send(o)
		}
		return
	}
	if ev.gen != w.connGen {
		return // reader of an already-replaced connection
	}
	switch ev.kind {
	case rxErr:
		w.dropConn()
		w.rotate()
		return
	case rxBusy:
		w.onBusy(ev.busy)
		return
	}
	rep := ev.rep
	o, ok := w.pending[rep.Seq]
	if !ok || rep.ClientID != w.clientID {
		return // already timed out, or a stale duplicate
	}
	if !rep.OK {
		if !rep.Leader.IsZero() && rep.Leader != w.target {
			if _, known := w.opts.Addrs[rep.Leader]; known {
				w.redirects++
				w.target = rep.Leader
				w.dropConn()
				w.resendAll()
			}
		}
		// No usable hint: leaderless right now; the sweep retries.
		return
	}
	delete(w.pending, rep.Seq)
	now := time.Now()
	if o.inWindow && !now.After(w.measEnd.Add(w.opts.Timeout)) {
		w.completed++
		w.hist.Observe(now.Sub(o.scheduled))
		w.completions = append(w.completions, now.Sub(w.measStart))
	}
}

// onBusy handles a leader admission rejection: the op stays pending and
// is re-sent after the leader's retry-after hint instead of waiting for
// the coarse straggler sweep. The hinted re-send is routed back through
// the rx channel so the pending map stays single-goroutine.
func (w *worker) onBusy(b wire.Busy) {
	o, ok := w.pending[b.Seq]
	if !ok || b.ClientID != w.clientID {
		return // already timed out, or a stale duplicate
	}
	if o.inWindow {
		w.busy++
	}
	o.busyN++
	after := b.RetryAfter
	if after <= 0 {
		after = time.Millisecond
	}
	// Exponential backoff over consecutive rejections, capped at the sweep
	// interval: the first retry honors the leader's hint, a still-busy
	// leader sees geometrically less retry traffic per shed op.
	for i := 1; i < o.busyN && after < w.opts.RetryInterval; i++ {
		after *= 2
	}
	if after > w.opts.RetryInterval {
		after = w.opts.RetryInterval
	}
	o.lastSent = time.Now() // hold the sweep off; the hinted retry is sooner
	seq := b.Seq
	time.AfterFunc(after, func() {
		select {
		case w.rx <- rxEvent{kind: rxRetry, retrySeq: seq}:
		case <-w.done:
		}
	})
}

// resendAll replays every pending op after a retarget: the old conn is
// gone, so replies in flight on it are lost and the ops must go again.
// Safe under at-most-once sessions — duplicates are answered from the
// session window, not re-executed.
func (w *worker) resendAll() {
	for _, o := range w.pending {
		if o.attempts > 0 {
			w.resends++
		}
		w.send(o)
	}
}

// sweepPending expires ops past Timeout and retransmits stragglers. Every
// third attempt for an op rotates targets first, so a run never wedges on
// one dead or stale member.
func (w *worker) sweepPending() {
	now := time.Now()
	rotated := false
	for seq, o := range w.pending {
		if now.Sub(o.scheduled) > w.opts.Timeout {
			delete(w.pending, seq)
			if o.inWindow {
				w.timeouts++
			}
			continue
		}
		if now.Sub(o.lastSent) < w.opts.RetryInterval {
			continue
		}
		if o.attempts%3 == 0 && !rotated {
			rotated = true
			w.dropConn()
			w.rotate()
		}
		w.resends++
		w.send(o)
	}
}
