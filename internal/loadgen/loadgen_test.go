package loadgen_test

import (
	"testing"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/loadgen"
	"pigpaxos/internal/workload"
)

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Options{}); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := loadgen.Run(loadgen.Options{Rate: 100}); err == nil {
		t.Fatal("empty cluster must be rejected")
	}
}

// TestOpenLoopAgainstRealCluster drives a real 3-node TCP paxos cluster at
// a comfortable rate and checks the accounting: goodput tracks offered
// load, latency percentiles are populated, and nothing times out.
func TestOpenLoopAgainstRealCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(loadgen.Options{
		Addrs:    c.Addrs,
		Members:  c.Members,
		Clients:  4,
		Rate:     400,
		Warmup:   300 * time.Millisecond,
		Duration: 1500 * time.Millisecond,
		Workload: workload.Config{Keys: 64},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Offered == 0 || res.Completed == 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
	// Poisson at 400/s over 1.5s: offered ≈ 600 with stddev ≈ 24.5; a
	// ±25% band is ~6 sigma on a seeded run.
	if res.Offered < 450 || res.Offered > 750 {
		t.Errorf("offered %d, want ≈ 600", res.Offered)
	}
	if res.Timeouts > 0 {
		t.Errorf("healthy cluster timed out %d ops", res.Timeouts)
	}
	if got := float64(res.Completed) / float64(res.Offered); got < 0.95 {
		t.Errorf("goodput/offered = %.2f, want ≥ 0.95", got)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 ||
		res.Latency.P999 < res.Latency.P99 {
		t.Errorf("implausible latency digest: %v", res.Latency)
	}
}

// TestOpenLoopShedsAtInFlightCap pins MaxInFlight low against an offered
// rate the cap cannot carry, and checks the engine sheds instead of
// blocking the arrival clock (the open-loop property).
func TestOpenLoopShedsAtInFlightCap(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(loadgen.Options{
		Addrs:       c.Addrs,
		Members:     c.Members,
		Clients:     2,
		Rate:        4000,
		Warmup:      200 * time.Millisecond,
		Duration:    time.Second,
		MaxInFlight: 8,
		Timeout:     time.Second,
		Workload:    workload.Config{Keys: 64},
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Shed == 0 {
		t.Errorf("rate 4000 against in-flight cap 16 must shed, got %+v", res)
	}
	// The run must still have made real progress under overload.
	if res.Completed == 0 {
		t.Errorf("no completions under overload: %+v", res)
	}
}
