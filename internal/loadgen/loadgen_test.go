package loadgen_test

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/loadgen"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
	"pigpaxos/internal/workload"
)

func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := loadgen.Run(loadgen.Options{}); err == nil {
		t.Fatal("zero rate must be rejected")
	}
	if _, err := loadgen.Run(loadgen.Options{Rate: 100}); err == nil {
		t.Fatal("empty cluster must be rejected")
	}
}

// TestOpenLoopAgainstRealCluster drives a real 3-node TCP paxos cluster at
// a comfortable rate and checks the accounting: goodput tracks offered
// load, latency percentiles are populated, and nothing times out.
func TestOpenLoopAgainstRealCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(loadgen.Options{
		Addrs:    c.Addrs,
		Members:  c.Members,
		Clients:  4,
		Rate:     400,
		Warmup:   300 * time.Millisecond,
		Duration: 1500 * time.Millisecond,
		Workload: workload.Config{Keys: 64},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Offered == 0 || res.Completed == 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
	// Poisson at 400/s over 1.5s: offered ≈ 600 with stddev ≈ 24.5; a
	// ±25% band is ~6 sigma on a seeded run.
	if res.Offered < 450 || res.Offered > 750 {
		t.Errorf("offered %d, want ≈ 600", res.Offered)
	}
	if res.Timeouts > 0 {
		t.Errorf("healthy cluster timed out %d ops", res.Timeouts)
	}
	if got := float64(res.Completed) / float64(res.Offered); got < 0.95 {
		t.Errorf("goodput/offered = %.2f, want ≥ 0.95", got)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 ||
		res.Latency.P999 < res.Latency.P99 {
		t.Errorf("implausible latency digest: %v", res.Latency)
	}
}

// TestOpenLoopShedsAtInFlightCap pins MaxInFlight low against an offered
// rate the cap cannot carry, and checks the engine sheds instead of
// blocking the arrival clock (the open-loop property).
func TestOpenLoopShedsAtInFlightCap(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := loadgen.Run(loadgen.Options{
		Addrs:       c.Addrs,
		Members:     c.Members,
		Clients:     2,
		Rate:        4000,
		Warmup:      200 * time.Millisecond,
		Duration:    time.Second,
		MaxInFlight: 8,
		Timeout:     time.Second,
		Workload:    workload.Config{Keys: 64},
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Shed == 0 {
		t.Errorf("rate 4000 against in-flight cap 16 must shed, got %+v", res)
	}
	// The run must still have made real progress under overload.
	if res.Completed == 0 {
		t.Errorf("no completions under overload: %+v", res)
	}
}

// TestBusyRetryAfterHonored runs the engine against a fake single-member
// "cluster": a frame-speaking TCP server that rejects the first delivery of
// every command with wire.Busy (retry-after 20ms) and serves the second.
// Every op must complete exactly one hinted retry later — Busy counted per
// in-window op, nothing shed, nothing timed out, and the 20ms pause visible
// in the open-loop latency.
func TestBusyRetryAfterHonored(t *testing.T) {
	const hint = 20 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	member := ids.NewID(1, 1)
	var mu sync.Mutex
	seen := make(map[[2]uint64]bool)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					_, m, err := transport.ReadFrame(br)
					if err != nil {
						return
					}
					req, ok := m.(wire.Request)
					if !ok {
						continue
					}
					key := [2]uint64{req.Cmd.ClientID, req.Cmd.Seq}
					mu.Lock()
					first := !seen[key]
					seen[key] = true
					mu.Unlock()
					var reply wire.Msg
					if first {
						reply = wire.Busy{
							ClientID: req.Cmd.ClientID, Seq: req.Cmd.Seq,
							Leader: member, RetryAfter: hint,
						}
					} else {
						reply = wire.Reply{
							ClientID: req.Cmd.ClientID, Seq: req.Cmd.Seq,
							OK: true, Leader: member,
						}
					}
					if err := transport.WriteFrame(conn, member, reply); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	res, err := loadgen.Run(loadgen.Options{
		Addrs:    map[ids.ID]string{member: ln.Addr().String()},
		Members:  []ids.ID{member},
		Clients:  2,
		Rate:     200,
		Warmup:   200 * time.Millisecond,
		Duration: time.Second,
		Timeout:  2 * time.Second,
		Workload: workload.Config{Keys: 16},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Offered == 0 {
		t.Fatal("no in-window arrivals")
	}
	if res.Busy != res.Offered {
		t.Errorf("busy = %d, want one per offered op (%d)", res.Busy, res.Offered)
	}
	if res.Completed != res.Offered {
		t.Errorf("completed = %d of %d — Busy is backpressure, every retry must land", res.Completed, res.Offered)
	}
	if res.Shed != 0 || res.Timeouts != 0 {
		t.Errorf("busy ops leaked into shed (%d) or timeouts (%d)", res.Shed, res.Timeouts)
	}
	// Scheduled-arrival→completion latency includes the hinted pause.
	if res.Latency.P50 < hint {
		t.Errorf("p50 %v below the %v retry-after hint", res.Latency.P50, hint)
	}
}
