// Package quorum implements the quorum systems used by the protocols in this
// repository: simple majorities for Paxos and PigPaxos, flexible (Q1/Q2)
// quorums per Howard et al., fast-path super-majorities for EPaxos, and
// per-group threshold quorums for PigPaxos' partial response collection
// (§4.2 of the paper).
package quorum

import (
	"fmt"

	"pigpaxos/internal/ids"
)

// System is a vote accumulator for one phase of one consensus instance.
// Implementations are not safe for concurrent use; each instance owns one.
type System interface {
	// ACK records a positive vote from id. Duplicate ACKs are idempotent.
	ACK(id ids.ID)
	// NACK records a negative vote (rejection) from id.
	NACK(id ids.ID)
	// Satisfied reports whether enough ACKs have been collected.
	Satisfied() bool
	// Rejected reports whether the quorum can no longer be satisfied or a
	// rejection was observed (protocol-dependent; for majority systems any
	// NACK rejects, because a rejection proves a higher ballot exists).
	Rejected() bool
	// Size returns the number of distinct ACKs recorded.
	Size() int
	// Reset clears all recorded votes so the system can be reused.
	Reset()
}

// Majority is the classical ⌊N/2⌋+1 quorum over a fixed membership.
type Majority struct {
	n      int
	acks   map[ids.ID]bool
	nacked bool
}

// NewMajority creates a majority quorum over a cluster of n nodes.
func NewMajority(n int) *Majority {
	if n <= 0 {
		panic(fmt.Sprintf("quorum: invalid cluster size %d", n))
	}
	return &Majority{n: n, acks: make(map[ids.ID]bool, n)}
}

// ACK implements System.
func (m *Majority) ACK(id ids.ID) { m.acks[id] = true }

// NACK implements System.
func (m *Majority) NACK(ids.ID) { m.nacked = true }

// Satisfied implements System.
func (m *Majority) Satisfied() bool { return len(m.acks) > m.n/2 }

// Rejected implements System.
func (m *Majority) Rejected() bool { return m.nacked }

// Size implements System.
func (m *Majority) Size() int { return len(m.acks) }

// Reset implements System.
func (m *Majority) Reset() {
	m.acks = make(map[ids.ID]bool, m.n)
	m.nacked = false
}

// Threshold requires at least k distinct ACKs out of n possible voters.
// It generalizes Majority and backs flexible quorums (any Q1/Q2 split with
// q1+q2 > n intersects) and EPaxos' fast-path quorum.
type Threshold struct {
	n, k   int
	acks   map[ids.ID]bool
	nacks  map[ids.ID]bool
	reject bool
}

// NewThreshold creates a quorum needing k of n votes.
func NewThreshold(n, k int) *Threshold {
	if n <= 0 || k <= 0 || k > n {
		panic(fmt.Sprintf("quorum: invalid threshold %d of %d", k, n))
	}
	return &Threshold{
		n: n, k: k,
		acks:  make(map[ids.ID]bool, k),
		nacks: make(map[ids.ID]bool),
	}
}

// ACK implements System.
func (t *Threshold) ACK(id ids.ID) { t.acks[id] = true }

// NACK implements System.
func (t *Threshold) NACK(id ids.ID) {
	t.nacks[id] = true
	t.reject = true
}

// Satisfied implements System.
func (t *Threshold) Satisfied() bool { return len(t.acks) >= t.k }

// Rejected implements System. A threshold quorum is rejected on any NACK or
// when so many voters rejected that k ACKs can no longer be reached.
func (t *Threshold) Rejected() bool {
	return t.reject || t.n-len(t.nacks) < t.k
}

// Size implements System.
func (t *Threshold) Size() int { return len(t.acks) }

// Reset implements System.
func (t *Threshold) Reset() {
	t.acks = make(map[ids.ID]bool, t.k)
	t.nacks = make(map[ids.ID]bool)
	t.reject = false
}

// Flexible describes a flexible-quorum configuration per Howard et al.:
// phase-1 quorums of size Q1 and phase-2 quorums of size Q2 with
// Q1 + Q2 > N. It is a factory for per-phase threshold systems.
type Flexible struct {
	N, Q1, Q2 int
}

// NewFlexible validates and returns a flexible quorum configuration.
func NewFlexible(n, q1, q2 int) (Flexible, error) {
	if q1 <= 0 || q2 <= 0 || q1 > n || q2 > n {
		return Flexible{}, fmt.Errorf("quorum: Q1=%d Q2=%d out of range for N=%d", q1, q2, n)
	}
	if q1+q2 <= n {
		return Flexible{}, fmt.Errorf("quorum: Q1=%d and Q2=%d do not intersect for N=%d", q1, q2, n)
	}
	return Flexible{N: n, Q1: q1, Q2: q2}, nil
}

// Phase1 returns a fresh phase-1 vote accumulator.
func (f Flexible) Phase1() *Threshold { return NewThreshold(f.N, f.Q1) }

// Phase2 returns a fresh phase-2 vote accumulator.
func (f Flexible) Phase2() *Threshold { return NewThreshold(f.N, f.Q2) }

// FaultTolerance returns how many node failures the configuration masks:
// the system can lose nodes as long as both quorum sizes remain reachable.
func (f Flexible) FaultTolerance() int {
	maxQ := f.Q1
	if f.Q2 > maxQ {
		maxQ = f.Q2
	}
	return f.N - maxQ
}

// MajoritySize returns the classical majority size for an n-node cluster.
func MajoritySize(n int) int { return n/2 + 1 }

// FastQuorumSize returns the EPaxos fast-path quorum size for an n-node
// cluster (n = 2f+1): f + ⌊(f+1)/2⌋ voters in addition to the command
// leader itself.
func FastQuorumSize(n int) int {
	f := (n - 1) / 2
	return f + (f+1)/2
}

// GroupThresholds computes per-group ACK thresholds g_i for PigPaxos partial
// response collection (§4.2): given relay group sizes, choose the smallest
// g_i (distributed as evenly as possible) such that Σ g_i ≥ ⌊N/2⌋+1 where N
// counts the leader plus all followers. The leader's self-vote is accounted
// by the caller passing needed = MajoritySize(N) - 1.
func GroupThresholds(groupSizes []int, needed int) ([]int, error) {
	total := 0
	for _, s := range groupSizes {
		if s <= 0 {
			return nil, fmt.Errorf("quorum: empty relay group")
		}
		total += s
	}
	if needed > total {
		return nil, fmt.Errorf("quorum: need %d votes from %d followers", needed, total)
	}
	if needed < 0 {
		needed = 0
	}
	th := make([]int, len(groupSizes))
	// Distribute the requirement proportionally, then fix rounding by
	// raising thresholds round-robin until the sum covers `needed`.
	sum := 0
	for i, s := range groupSizes {
		th[i] = needed * s / total
		if th[i] > s {
			th[i] = s
		}
		sum += th[i]
	}
	for i := 0; sum < needed; i = (i + 1) % len(th) {
		if th[i] < groupSizes[i] {
			th[i]++
			sum++
		}
	}
	return th, nil
}
