package quorum

import (
	"testing"
	"testing/quick"

	"pigpaxos/internal/ids"
)

func id(n int) ids.ID { return ids.NewID(1, n) }

func TestMajoritySatisfied(t *testing.T) {
	m := NewMajority(5)
	m.ACK(id(1))
	m.ACK(id(2))
	if m.Satisfied() {
		t.Error("2 of 5 should not satisfy majority")
	}
	m.ACK(id(3))
	if !m.Satisfied() {
		t.Error("3 of 5 should satisfy majority")
	}
}

func TestMajorityDuplicateACKs(t *testing.T) {
	m := NewMajority(5)
	for i := 0; i < 10; i++ {
		m.ACK(id(1))
	}
	if m.Size() != 1 {
		t.Errorf("duplicate ACKs counted: size=%d", m.Size())
	}
	if m.Satisfied() {
		t.Error("one distinct voter cannot satisfy majority of 5")
	}
}

func TestMajorityNACKRejects(t *testing.T) {
	m := NewMajority(3)
	m.NACK(id(2))
	if !m.Rejected() {
		t.Error("any NACK rejects a majority quorum")
	}
}

func TestMajorityReset(t *testing.T) {
	m := NewMajority(3)
	m.ACK(id(1))
	m.ACK(id(2))
	m.NACK(id(3))
	m.Reset()
	if m.Size() != 0 || m.Rejected() || m.Satisfied() {
		t.Error("Reset should clear all state")
	}
}

func TestMajorityPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMajority(0) should panic")
		}
	}()
	NewMajority(0)
}

func TestThreshold(t *testing.T) {
	q := NewThreshold(7, 3)
	q.ACK(id(1))
	q.ACK(id(2))
	if q.Satisfied() {
		t.Error("2 of 3 needed should not satisfy")
	}
	q.ACK(id(3))
	if !q.Satisfied() {
		t.Error("3 ACKs should satisfy threshold 3")
	}
}

func TestThresholdRejectedByNACKs(t *testing.T) {
	q := NewThreshold(5, 4)
	q.NACK(id(1))
	if !q.Rejected() {
		t.Error("NACK should reject")
	}
	q.Reset()
	if q.Rejected() {
		t.Error("reset should clear rejection")
	}
	// 2 NACKs leave only 3 possible voters < k=4.
	q2 := NewThreshold(5, 4)
	q2.NACK(id(1))
	q2.NACK(id(2))
	if !q2.Rejected() {
		t.Error("unreachable threshold should report rejected")
	}
}

func TestFlexibleValidation(t *testing.T) {
	if _, err := NewFlexible(10, 8, 3); err != nil {
		t.Errorf("valid flexible config rejected: %v", err)
	}
	if _, err := NewFlexible(10, 5, 5); err == nil {
		t.Error("non-intersecting Q1+Q2=N must be rejected")
	}
	if _, err := NewFlexible(10, 0, 5); err == nil {
		t.Error("zero quorum must be rejected")
	}
	if _, err := NewFlexible(10, 11, 5); err == nil {
		t.Error("oversized quorum must be rejected")
	}
}

func TestFlexibleFaultTolerance(t *testing.T) {
	// Paper §2.2: N=10, Q1=8, Q2=3 masks only 2 failures.
	f, err := NewFlexible(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.FaultTolerance(); got != 2 {
		t.Errorf("fault tolerance = %d, want 2", got)
	}
}

func TestFlexiblePhases(t *testing.T) {
	f, _ := NewFlexible(10, 8, 3)
	p1, p2 := f.Phase1(), f.Phase2()
	for i := 1; i <= 3; i++ {
		p1.ACK(id(i))
		p2.ACK(id(i))
	}
	if p1.Satisfied() {
		t.Error("3 votes cannot satisfy Q1=8")
	}
	if !p2.Satisfied() {
		t.Error("3 votes should satisfy Q2=3")
	}
}

func TestMajoritySize(t *testing.T) {
	cases := map[int]int{1: 1, 3: 2, 5: 3, 9: 5, 25: 13}
	for n, want := range cases {
		if got := MajoritySize(n); got != want {
			t.Errorf("MajoritySize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFastQuorumSize(t *testing.T) {
	// N=5 (f=2): 2+1=3. N=7 (f=3): 3+2=5. N=25 (f=12): 12+6=18.
	cases := map[int]int{5: 3, 7: 5, 9: 6, 25: 18}
	for n, want := range cases {
		if got := FastQuorumSize(n); got != want {
			t.Errorf("FastQuorumSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestGroupThresholds(t *testing.T) {
	// 25 nodes: leader + 24 followers in 3 groups of 8; majority 13 needs
	// 12 follower votes.
	th, err := GroupThresholds([]int{8, 8, 8}, 12)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, g := range th {
		if g > 8 || g < 0 {
			t.Errorf("threshold %d out of range: %d", i, g)
		}
		sum += g
	}
	if sum < 12 {
		t.Errorf("thresholds sum to %d, need ≥ 12", sum)
	}
}

func TestGroupThresholdsUneven(t *testing.T) {
	th, err := GroupThresholds([]int{1, 5, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, g := range th {
		if g > []int{1, 5, 2}[i] {
			t.Errorf("threshold exceeds group size at %d", i)
		}
		sum += g
	}
	if sum < 5 {
		t.Errorf("sum %d < needed 5", sum)
	}
}

func TestGroupThresholdsErrors(t *testing.T) {
	if _, err := GroupThresholds([]int{2, 0}, 1); err == nil {
		t.Error("empty group should error")
	}
	if _, err := GroupThresholds([]int{2, 2}, 5); err == nil {
		t.Error("impossible requirement should error")
	}
}

// Property: for any group layout and any achievable requirement the
// thresholds are within group bounds and cover the requirement.
func TestGroupThresholdsProperty(t *testing.T) {
	f := func(sizes []uint8, needRaw uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		gs := make([]int, 0, len(sizes))
		total := 0
		for _, s := range sizes {
			v := int(s%9) + 1 // 1..9
			gs = append(gs, v)
			total += v
		}
		need := int(needRaw) % (total + 1)
		th, err := GroupThresholds(gs, need)
		if err != nil {
			return false
		}
		sum := 0
		for i, g := range th {
			if g < 0 || g > gs[i] {
				return false
			}
			sum += g
		}
		return sum >= need
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a threshold quorum is satisfied iff at least k distinct voters
// ACKed, regardless of ACK order and duplicates.
func TestThresholdProperty(t *testing.T) {
	f := func(voters []uint8, kRaw uint8) bool {
		n := 32
		k := int(kRaw)%n + 1
		q := NewThreshold(n, k)
		distinct := map[uint8]bool{}
		for _, v := range voters {
			v %= 32
			q.ACK(ids.NewID(1, int(v)+1))
			distinct[v] = true
		}
		return q.Satisfied() == (len(distinct) >= k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
