package kvstore

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := New()
	s.Apply(Command{Op: Put, Key: 1, Value: []byte("hello")})
	r := s.Apply(Command{Op: Get, Key: 1})
	if !r.Exists || string(r.Value) != "hello" {
		t.Errorf("Get after Put: got %+v", r)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	r := s.Apply(Command{Op: Get, Key: 42})
	if r.Exists {
		t.Error("missing key should not exist")
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Apply(Command{Op: Put, Key: 1, Value: []byte("x")})
	r := s.Apply(Command{Op: Delete, Key: 1})
	if !r.Exists {
		t.Error("delete of live key should report it existed")
	}
	if _, ok := s.Get(1); ok {
		t.Error("key should be gone after delete")
	}
	r = s.Apply(Command{Op: Delete, Key: 1})
	if r.Exists {
		t.Error("second delete should report missing")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s := New()
	buf := []byte("abc")
	s.Apply(Command{Op: Put, Key: 1, Value: buf})
	buf[0] = 'z'
	v, _ := s.Get(1)
	if string(v) != "abc" {
		t.Error("store must copy values, caller mutation leaked in")
	}
}

func TestVersionTracking(t *testing.T) {
	s := New()
	if s.Version(7) != 0 {
		t.Error("fresh key should have version 0")
	}
	s.Apply(Command{Op: Put, Key: 7, Value: []byte("a")})
	s.Apply(Command{Op: Put, Key: 7, Value: []byte("b")})
	if s.Version(7) != 2 {
		t.Errorf("version = %d, want 2", s.Version(7))
	}
	s.Apply(Command{Op: Get, Key: 7})
	if s.Version(7) != 2 {
		t.Error("reads must not bump the version")
	}
	s.Apply(Command{Op: Delete, Key: 7})
	if s.Version(7) != 3 {
		t.Error("delete is a write and must bump the version")
	}
}

func TestAppliedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Apply(Command{Op: Put, Key: uint64(i)})
	}
	if s.Applied() != 5 {
		t.Errorf("Applied = %d, want 5", s.Applied())
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestCommandEmpty(t *testing.T) {
	if !(Command{}).Empty() {
		t.Error("zero command should be Empty")
	}
	if (Command{Op: Put, Key: 1}).Empty() {
		t.Error("put is not empty")
	}
}

func TestConflictsWith(t *testing.T) {
	w1 := Command{Op: Put, Key: 1}
	w2 := Command{Op: Put, Key: 1}
	r1 := Command{Op: Get, Key: 1}
	r2 := Command{Op: Get, Key: 1}
	other := Command{Op: Put, Key: 2}
	if !w1.ConflictsWith(w2) {
		t.Error("two writes to same key conflict")
	}
	if !w1.ConflictsWith(r1) || !r1.ConflictsWith(w1) {
		t.Error("read-write on same key conflicts, both directions")
	}
	if r1.ConflictsWith(r2) {
		t.Error("two reads never conflict")
	}
	if w1.ConflictsWith(other) {
		t.Error("different keys never conflict")
	}
}

func TestOpString(t *testing.T) {
	if Get.String() != "GET" || Put.String() != "PUT" || Delete.String() != "DELETE" {
		t.Error("Op.String mismatch")
	}
	if Op(9).String() != "OP(9)" {
		t.Error("unknown op should format numerically")
	}
}

func TestChecksumConvergence(t *testing.T) {
	// Two stores that apply the same sequence in the same order converge.
	a, b := New(), New()
	rng := rand.New(rand.NewSource(1))
	var cmds []Command
	for i := 0; i < 500; i++ {
		cmds = append(cmds, Command{
			Op:    Op(rng.Intn(3)),
			Key:   uint64(rng.Intn(20)),
			Value: []byte{byte(rng.Intn(256))},
		})
	}
	for _, c := range cmds {
		a.Apply(c)
		b.Apply(c)
	}
	if a.Checksum() != b.Checksum() {
		t.Error("same sequence must yield same checksum")
	}
}

func TestChecksumDetectsDivergence(t *testing.T) {
	a, b := New(), New()
	a.Apply(Command{Op: Put, Key: 1, Value: []byte("x")})
	b.Apply(Command{Op: Put, Key: 1, Value: []byte("y")})
	if a.Checksum() == b.Checksum() {
		t.Error("different values should (overwhelmingly) differ in checksum")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Apply(Command{Op: Put, Key: uint64(g*1000 + i), Value: []byte{1}})
				s.Get(uint64(g*1000 + i))
				s.Version(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", s.Len(), 8*200)
	}
}

// Property: after PUT(k, v), GET(k) observes exactly v.
func TestPutGetProperty(t *testing.T) {
	s := New()
	f := func(k uint64, v []byte) bool {
		s.Apply(Command{Op: Put, Key: k, Value: v})
		got, ok := s.Get(k)
		return ok && bytes.Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conflict relation is symmetric.
func TestConflictSymmetryProperty(t *testing.T) {
	f := func(k1, k2 uint8, o1, o2 uint8) bool {
		a := Command{Op: Op(o1 % 3), Key: uint64(k1 % 4)}
		b := Command{Op: Op(o2 % 3), Key: uint64(k2 % 4)}
		return a.ConflictsWith(b) == b.ConflictsWith(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkApplyPut(b *testing.B) {
	s := New()
	cmd := Command{Op: Put, Key: 1, Value: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmd.Key = uint64(i % 1000)
		s.Apply(cmd)
	}
}

func BenchmarkApplyGet(b *testing.B) {
	s := New()
	s.Apply(Command{Op: Put, Key: 1, Value: make([]byte, 64)})
	cmd := Command{Op: Get, Key: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Apply(cmd)
	}
}
