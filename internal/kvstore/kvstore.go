// Package kvstore implements the in-memory key-value state machine that all
// protocols replicate, equivalent to Paxi's StateMachine: a map of byte-
// string keys to versioned byte-string values, mutated by applying committed
// commands in log order.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Op enumerates the command operations the state machine understands.
type Op uint8

const (
	// Get reads the current value of a key.
	Get Op = iota
	// Put overwrites the value of a key.
	Put
	// Delete removes a key.
	Delete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Get:
		return "GET"
	case Put:
		return "PUT"
	case Delete:
		return "DELETE"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// IsRead reports whether the operation leaves the state machine unchanged.
func (o Op) IsRead() bool { return o == Get }

// Command is one state machine operation. ClientID/Seq identify the request
// for at-most-once semantics and reply routing.
type Command struct {
	Op       Op
	Key      uint64
	Value    []byte
	ClientID uint64
	Seq      uint64
}

// Empty reports whether the command is the zero command (an empty log slot).
func (c Command) Empty() bool {
	return c.Op == Get && c.Key == 0 && c.Value == nil && c.ClientID == 0 && c.Seq == 0
}

// IsRead reports whether the command is a read-only operation.
func (c Command) IsRead() bool { return c.Op.IsRead() }

// ConflictsWith reports whether two commands must be ordered with respect to
// each other: they touch the same key and at least one of them writes. This
// is the conflict relation EPaxos uses on its dependency attributes.
func (c Command) ConflictsWith(o Command) bool {
	if c.Key != o.Key {
		return false
	}
	return !c.IsRead() || !o.IsRead()
}

// String implements fmt.Stringer.
func (c Command) String() string {
	return fmt.Sprintf("%s k=%d len=%d cl=%d seq=%d", c.Op, c.Key, len(c.Value), c.ClientID, c.Seq)
}

// Result is the outcome of applying one command.
type Result struct {
	Exists bool
	Value  []byte
}

// Store is the replicated key-value state machine. It is safe for concurrent
// use; protocols apply committed commands through Apply and serve local
// reads through Get.
type Store struct {
	mu      sync.RWMutex
	data    map[uint64][]byte
	version map[uint64]uint64
	applied uint64 // total commands applied, for metrics/tests
}

// New creates an empty store.
func New() *Store {
	return &Store{
		data:    make(map[uint64][]byte),
		version: make(map[uint64]uint64),
	}
}

// Apply executes cmd against the state machine and returns its result.
func (s *Store) Apply(cmd Command) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	switch cmd.Op {
	case Get:
		v, ok := s.data[cmd.Key]
		return Result{Exists: ok, Value: v}
	case Put:
		// Copy so callers may reuse their buffers.
		v := make([]byte, len(cmd.Value))
		copy(v, cmd.Value)
		s.data[cmd.Key] = v
		s.version[cmd.Key]++
		return Result{Exists: true, Value: nil}
	case Delete:
		_, ok := s.data[cmd.Key]
		delete(s.data, cmd.Key)
		s.version[cmd.Key]++
		return Result{Exists: ok}
	default:
		return Result{}
	}
}

// Get reads the current value of key without going through the log. Used by
// local/leased read paths and tests.
func (s *Store) Get(key uint64) (value []byte, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Version returns the write-version of a key (number of writes applied to
// it), used by Paxos Quorum Reads to compare replica freshness.
func (s *Store) Version(key uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version[key]
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Applied returns the total number of commands applied.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Checksum folds the full store state into a single value. Two replicas that
// applied the same command sequence have equal checksums; tests use it to
// assert state machine convergence.
func (s *Store) Checksum() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var h uint64 = 14695981039346656037 // FNV offset basis
	// XOR per-key hashes so iteration order does not matter.
	var acc uint64
	for k, v := range s.data {
		kh := h
		kh = fnvMix(kh, k)
		for _, b := range v {
			kh = (kh ^ uint64(b)) * 1099511628211
		}
		kh = fnvMix(kh, s.version[k])
		acc ^= kh
	}
	return acc
}

// Serialize appends the full store state to b in a deterministic layout
// (keys sorted ascending), so every replica serializes identical state to
// identical bytes — snapshots can be compared and shipped between nodes.
// The version map is serialized in full, including keys whose data was
// deleted (their write-versions still matter to quorum reads).
func (s *Store) Serialize(b []byte) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b = binary.LittleEndian.AppendUint64(b, s.applied)
	verKeys := make([]uint64, 0, len(s.version))
	for k := range s.version {
		verKeys = append(verKeys, k)
	}
	sort.Slice(verKeys, func(i, j int) bool { return verKeys[i] < verKeys[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(verKeys)))
	for _, k := range verKeys {
		b = binary.LittleEndian.AppendUint64(b, k)
		b = binary.LittleEndian.AppendUint64(b, s.version[k])
	}
	dataKeys := make([]uint64, 0, len(s.data))
	for k := range s.data {
		dataKeys = append(dataKeys, k)
	}
	sort.Slice(dataKeys, func(i, j int) bool { return dataKeys[i] < dataKeys[j] })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(dataKeys)))
	for _, k := range dataKeys {
		v := s.data[k]
		b = binary.LittleEndian.AppendUint64(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
		b = append(b, v...)
	}
	return b
}

// Restore replaces the store's contents with a state previously produced by
// Serialize, returning the number of bytes consumed.
func (s *Store) Restore(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := 0
	u64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	fail := func() (int, error) {
		return 0, fmt.Errorf("kvstore: truncated snapshot at offset %d", off)
	}
	applied, ok := u64()
	if !ok {
		return fail()
	}
	nVer, ok := u32()
	if !ok {
		return fail()
	}
	version := make(map[uint64]uint64, nVer)
	for i := uint32(0); i < nVer; i++ {
		k, ok1 := u64()
		v, ok2 := u64()
		if !ok1 || !ok2 {
			return fail()
		}
		version[k] = v
	}
	nData, ok := u32()
	if !ok {
		return fail()
	}
	data := make(map[uint64][]byte, nData)
	for i := uint32(0); i < nData; i++ {
		k, ok1 := u64()
		n, ok2 := u32()
		if !ok1 || !ok2 || off+int(n) > len(b) {
			return fail()
		}
		v := make([]byte, n)
		copy(v, b[off:off+int(n)])
		off += int(n)
		data[k] = v
	}
	s.applied = applied
	s.version = version
	s.data = data
	return off, nil
}

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * 1099511628211
		x >>= 8
	}
	return h
}
