// Package epaxos implements Egalitarian Paxos (Moraru et al., SOSP'13), the
// leaderless baseline the paper compares against (§2.3, §5.4). Any replica
// acts as command leader for the requests it receives: it computes the
// command's attributes (a sequence number and per-replica dependencies on
// interfering commands), pre-accepts on a fast quorum, and commits in one
// round trip when all fast-quorum replies agree. Interference (same key,
// at least one write) forces attribute growth and the slow path — an extra
// majority Accept round — and execution must topologically order the
// dependency graph (strongly connected components by sequence number), so a
// small hot key space under high load drains every replica's resources,
// which is exactly the failure mode the paper measures with its 1000-key
// uniform workload.
//
// The implementation is fault tolerant end to end, so the chaos suite can
// throw the same crash/partition/loss palette at it as at the Paxos family:
//
//   - Per-instance ballots. Every instance starts at its owner's default
//     ballot 0.owner; higher ballots supersede lower ones exactly as in
//     Paxos, and a superseded driver stops counting votes.
//   - Explicit Prepare recovery. A replica whose execution stays blocked on
//     an uncommitted instance past RecoverTimeout takes the instance over:
//     it Prepares a higher ballot at a majority and finishes the instance
//     from what the quorum reports — a commit is re-broadcast, the
//     highest-ballot accepted value is re-accepted, pre-accepted attributes
//     that may have fast-committed are defended, any other pre-accepted
//     command re-runs phase 1 (slow path only), and an instance nobody
//     knows is anchored as a no-op. The fast quorum is the paper's simple
//     variant (every replica but one), which is what makes the counting
//     rule for possibly-fast-committed attributes sound.
//   - Timer-driven retransmits. A sweep timer re-broadcasts the current
//     phase message of every stalled driven instance (masking message
//     loss) and downgrades a stalled fast-path attempt to the slow path
//     once a majority has replied, so crashes of fast-quorum members
//     cannot wedge an instance.
//   - Replicated at-most-once sessions. Every replica executes every
//     command in the same order, so a per-client table of executed
//     sequence numbers replicates deterministically; client retries that
//     reach a different command leader commit a second instance whose
//     execution is suppressed exactly once everywhere, and the cached
//     reply is re-sent instead.
//   - Commit teach-back. A replica that already committed an instance
//     answers stale PreAccepts/Accepts (a driver that missed the commit)
//     with the Commit itself, and Prepare finds commits that probabilistic
//     loss ate.
package epaxos

import (
	"sort"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/wire"
)

// Config parameterizes an EPaxos replica.
type Config struct {
	// Cluster is the full membership.
	Cluster config.Cluster
	// ID is this replica's identity.
	ID ids.ID
	// Thrifty sends PreAccepts only to a fast quorum instead of all peers.
	Thrifty bool
	// AttrWork is CPU charged for computing/merging attributes per
	// pre-accept (instance bookkeeping is heavier than Paxos's).
	AttrWork time.Duration
	// ScanWork is CPU charged per live (unexecuted) instance scanned when
	// computing attributes for a new command: the interference scan over
	// the live working set. Under load the working set grows with the
	// number of in-flight commands, so this cost rises with concurrency —
	// the self-reinforcing "conflict resolution draining the resources of
	// every node" collapse the paper measures (§5.4).
	ScanWork time.Duration
	// DepWork is CPU charged per dependency entry scanned or merged when
	// processing attribute-carrying messages. Dependency sets grow toward
	// one entry per instance-space row (N entries) on a hot key space, so
	// this is the conflict-resolution cost the paper blames for EPaxos'
	// collapse ("conflict resolution phase draining the resources of
	// every node", §5.4).
	DepWork time.Duration
	// ExecVisitWork is CPU charged per dependency-graph node visited
	// during execution attempts — the "conflict resolution" cost that
	// grows with the number of in-flight interfering commands.
	ExecVisitWork time.Duration
	// ExecWork is CPU charged per command applied to the state machine.
	ExecWork time.Duration
	// ExecRetryInterval is how often blocked executions are retried.
	ExecRetryInterval time.Duration
	// GCEvery triggers instance-space garbage collection after this many
	// local executions (default 4096; 0 keeps the default — use a
	// negative value to disable GC).
	GCEvery int

	// RetryTimeout re-broadcasts a driven instance's current phase message
	// when it stalls (lost pre-accepts or accepts), and downgrades a
	// stalled fast-path attempt to the slow path once a majority has
	// replied (default 80ms; negative disables retransmits).
	RetryTimeout time.Duration
	// RecoverTimeout is how long execution may stay blocked on an
	// uncommitted instance before this replica takes it over with Explicit
	// Prepare (default 250ms; negative disables recovery).
	RecoverTimeout time.Duration
	// SweepInterval paces the retransmit/recovery sweep timer (default
	// 40ms; negative disables the sweep — and with it retransmits and
	// recovery).
	SweepInterval time.Duration
}

func (c *Config) applyDefaults() {
	if c.AttrWork == 0 {
		c.AttrWork = 40 * time.Microsecond
	}
	if c.DepWork == 0 {
		c.DepWork = 6 * time.Microsecond
	}
	if c.ScanWork == 0 {
		c.ScanWork = 5 * time.Microsecond
	}
	if c.ExecVisitWork == 0 {
		c.ExecVisitWork = 2 * time.Microsecond
	}
	if c.ExecWork == 0 {
		c.ExecWork = 5 * time.Microsecond
	}
	if c.ExecRetryInterval == 0 {
		c.ExecRetryInterval = time.Millisecond
	}
	if c.GCEvery == 0 {
		c.GCEvery = 4096
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 80 * time.Millisecond
	}
	if c.RecoverTimeout == 0 {
		c.RecoverTimeout = 250 * time.Millisecond
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 40 * time.Millisecond
	}
}

type status uint8

const (
	statusNone status = iota
	statusPreAccepted
	statusAccepted
	statusCommitted
	statusExecuted
)

// wireStatus maps the internal state to the PrepareReply encoding (executed
// is local bookkeeping; on the wire it is committed).
func wireStatus(s status) uint8 {
	switch s {
	case statusPreAccepted:
		return wire.InstPreAccepted
	case statusAccepted:
		return wire.InstAccepted
	case statusCommitted, statusExecuted:
		return wire.InstCommitted
	default:
		return wire.InstNone
	}
}

// instance is one cell of the two-dimensional EPaxos instance space.
type instance struct {
	cmd    kvstore.Command
	seq    uint64
	deps   []wire.InstRef
	status status

	// bal is the highest ballot this replica has seen for the instance;
	// vbal the ballot its current (cmd, seq, deps) was (pre-)accepted at.
	bal  ids.Ballot
	vbal ids.Ballot

	// Driver state: drive is nonzero while this replica runs the
	// instance's phases — the original command leader at the instance's
	// default ballot, or a recovery leader at a Prepare ballot. voters
	// dedups phase replies by sender (retransmits and link duplication
	// must not double-count).
	drive      ids.Ballot
	voters     []ids.ID
	changed    bool
	mergedSeq  uint64
	mergedDeps []wire.InstRef
	client     ids.ID
	hasClient  bool
	opened     time.Duration
	lastSend   time.Duration
	// votesAtSend is len(voters) when the phase message was last sent: the
	// sweep retransmits only when no vote arrived in a whole RetryTimeout —
	// slow-but-progressing quorums (an overloaded cluster) are not loss,
	// and blind periodic retransmission would amplify exactly the overload
	// that slowed them.
	votesAtSend int

	// Recovery state, valid while preparing: replies gathered for the
	// Explicit Prepare quorum (the driver's own snapshot included).
	preparing bool
	prep      []prepInfo
}

// prepInfo is one PrepareReply's knowledge of an instance.
type prepInfo struct {
	from   ids.ID
	status uint8
	vbal   ids.Ballot
	cmd    kvstore.Command
	seq    uint64
	deps   []wire.InstRef
}

// session provides at-most-once semantics per client. Every replica
// executes every command in the same deterministic order, so the table
// replicates without extra messages. Because EPaxos has no total order,
// deduplication is per exact sequence number (a set), not a high-water
// mark: commands from one client on disjoint keys may execute in either
// order, and a ≤-rule would skip different commands on different replicas.
type session struct {
	maxSeq     uint64
	maxReply   wire.Reply
	pendingSeq uint64
	pendingRef wire.InstRef
	executed   map[uint64]bool
}

// sessionWindow bounds the per-client executed-seq set: inserting seq S
// retires S−sessionWindow, so only the most recent window of a client's
// dense sequence numbers is remembered (duplicates only ever duplicate
// recent sequence numbers — a closed-loop client has one outstanding op).
// Retirement is a pure function of the inserted seq, never of map size or
// local execution order, so every replica prunes the identical set.
const sessionWindow = 256

// Stats counts protocol events.
type Stats struct {
	Requests   uint64
	FastPath   uint64
	SlowPath   uint64
	Commits    uint64
	Executions uint64
	ExecVisits uint64 // dependency-graph nodes visited (conflict work)
	Blocked    uint64 // execution attempts aborted on uncommitted deps
	GCs        uint64 // instance-space garbage collections

	Recoveries  uint64 // Explicit Prepare takeovers started
	Prepares    uint64 // Prepare messages handled
	Retransmits uint64 // phase re-broadcasts on stalled instances
	Duplicates  uint64 // at-most-once hits (admission and execution)
	Noops       uint64 // no-op instances executed
	Teachbacks  uint64 // commits taught back to stale senders
}

// Replica is one EPaxos node.
type Replica struct {
	ctx node.Context
	cfg Config

	peers []ids.ID
	n     int
	fastQ int // fast-quorum acks needed beyond self
	slowQ int // majority acks needed beyond self

	rows    map[ids.ID]map[uint64]*instance
	nextOwn uint64

	// Interference tracking: for each key, the latest write and latest
	// operation per instance-space row, for dependency computation.
	lastWrite map[uint64]map[ids.ID]uint64
	lastOp    map[uint64]map[ids.ID]uint64
	// maxSeqWrite tracks the highest write seq per key; maxSeqAny the
	// highest seq of any op. Reads order after writes only, writes after
	// everything — matching the interference relation.
	maxSeqWrite map[uint64]uint64
	maxSeqAny   map[uint64]uint64

	store    *kvstore.Store
	sessions map[uint64]*session

	// Committed-but-unexecuted instances awaiting their dependencies.
	pendingExec map[wire.InstRef]bool
	retryArmed  bool
	// retryWait is the current execution-retry delay: it doubles on every
	// fruitless blocked retry (up to 128× the base) and resets on
	// progress, so a long-blocked dependency graph is not re-walked every
	// millisecond — commits re-trigger execution directly anyway.
	retryWait time.Duration
	// live counts instances created but not yet executed locally — the
	// working set the interference scan walks.
	live int

	// driving holds the instances this replica currently drives (sweep
	// targets for retransmission); blocked maps an uncommitted instance to
	// its recovery clock (sweep targets for recovery).
	driving   map[wire.InstRef]bool
	blocked   map[wire.InstRef]blockState
	lastSweep time.Duration

	// Row-watermark gossip (anti-entropy): ownFloor is the own-row commit
	// floor (every own slot at or below it is committed here), advertised
	// periodically. Peers compare the watermark against their copy of this
	// replica's row and recover any instance they missed — the EPaxos
	// equivalent of the Paxos family's heartbeat-watermark catch-up,
	// without which a replica partitioned away during a commit whose key
	// never interferes again would stay behind forever. Advertising the
	// commit floor (not the row height) means marks never point at
	// in-flight instances, so clean runs recover nothing. rowSynced
	// remembers, per peer row, the prefix already verified committed, and
	// heard when each peer was last heard from (recovery of a chatty
	// peer's instances waits longer than failover — see sweep).
	ownFloor      uint64
	lastAdvertise time.Duration
	// commitEwma tracks the observed open-to-commit latency of own
	// instances (EWMA, 1/8 gain). The sweep's retransmit timeout rides on
	// it: under a loaded-but-healthy cluster commit latency stretches far
	// past any fixed timeout, and retransmitting into that queueing would
	// amplify it — the adaptive timeout is the same cure TCP applies.
	commitEwma time.Duration
	rowSynced  map[ids.ID]uint64
	heard      map[ids.ID]time.Duration

	// gcFloor[row] is the highest slot such that every instance of the
	// row at or below it has been executed and garbage-collected; a
	// dependency at or below the floor is known-executed.
	gcFloor     map[ids.ID]uint64
	execSinceGC int

	stats Stats
}

// New creates an EPaxos replica.
func New(ctx node.Context, cfg Config) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		ctx:         ctx,
		cfg:         cfg,
		peers:       cfg.Cluster.Peers(cfg.ID),
		n:           cfg.Cluster.N(),
		rows:        make(map[ids.ID]map[uint64]*instance),
		nextOwn:     1,
		lastWrite:   make(map[uint64]map[ids.ID]uint64),
		lastOp:      make(map[uint64]map[ids.ID]uint64),
		maxSeqWrite: make(map[uint64]uint64),
		maxSeqAny:   make(map[uint64]uint64),
		store:       kvstore.New(),
		sessions:    make(map[uint64]*session),
		pendingExec: make(map[wire.InstRef]bool),
		driving:     make(map[wire.InstRef]bool),
		blocked:     make(map[wire.InstRef]blockState),
		rowSynced:   make(map[ids.ID]uint64),
		heard:       make(map[ids.ID]time.Duration),
		gcFloor:     make(map[ids.ID]uint64),
	}
	// Simple EPaxos quorums: the slow path needs a majority, the fast path
	// every replica but one. The larger fast quorum is what makes Explicit
	// Prepare's counting rule sound (see decideRecovery): any competing
	// attribute set fits in the one excluded replica, and a commit leaves
	// at least two identical copies visible to every all-non-owner
	// majority — except at n=3, where one non-owner fast-quorum member is
	// too few, so there the fast path needs the whole cluster. A fast
	// quorum that stops forming under crashes is downgraded to the slow
	// path by the sweep.
	r.slowQ = quorum.MajoritySize(r.n) - 1
	r.fastQ = r.n - 2
	if r.n == 3 {
		r.fastQ = 2
	}
	if r.fastQ < r.slowQ {
		r.fastQ = r.slowQ
	}
	return r
}

// Start arms the retransmit/recovery sweep. (EPaxos has no leader to
// establish; the method exists for interface symmetry with the other
// protocols, and substrates that never call it still get the sweep lazily
// re-armed from OnMessage.)
func (r *Replica) Start() { r.armSweep() }

// ID returns this replica's identity.
func (r *Replica) ID() ids.ID { return r.cfg.ID }

// Store exposes the replicated state machine.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Stats returns a copy of the event counters.
func (r *Replica) Stats() Stats { return r.stats }

// Unexecuted counts instances that have been opened but not executed —
// zero after a fully recovered, converged run (every instance either
// carried its command to execution or was anchored as a no-op).
func (r *Replica) Unexecuted() int {
	n := 0
	for _, row := range r.rows {
		for _, in := range row {
			if in.status > statusNone && in.status < statusExecuted {
				n++
			}
		}
	}
	return n
}

// defaultBallot is the ballot an instance starts at: ballot 0 owned by the
// instance's row owner.
func defaultBallot(ref wire.InstRef) ids.Ballot { return ids.NewBallot(0, ref.Replica) }

func (r *Replica) inst(ref wire.InstRef) *instance {
	row, ok := r.rows[ref.Replica]
	if !ok {
		row = make(map[uint64]*instance)
		r.rows[ref.Replica] = row
	}
	in, ok := row[ref.Slot]
	if !ok {
		in = &instance{bal: defaultBallot(ref), vbal: defaultBallot(ref)}
		row[ref.Slot] = in
		r.live++
	}
	return in
}

// scanCost is the interference-scan charge over the live working set,
// capped so a pathological backlog cannot stall virtual time entirely.
func (r *Replica) scanCost() time.Duration {
	n := r.live
	if n > 2000 {
		n = 2000
	}
	return time.Duration(n) * r.cfg.ScanWork
}

func (r *Replica) lookup(ref wire.InstRef) *instance {
	if row, ok := r.rows[ref.Replica]; ok {
		return row[ref.Slot]
	}
	return nil
}

func (r *Replica) session(clientID uint64) *session {
	s := r.sessions[clientID]
	if s == nil {
		s = &session{executed: make(map[uint64]bool)}
		r.sessions[clientID] = s
	}
	return s
}

// OnMessage dispatches a delivered message. It implements node.Handler.
func (r *Replica) OnMessage(from ids.ID, m wire.Msg) {
	// A crashed replica's timers are skipped, killing the sweep chain; the
	// first delivered message after recovery resurrects it (a live chain
	// never falls this far behind).
	if iv := r.cfg.SweepInterval; iv > 0 && r.ctx.Now()-r.lastSweep > 2*iv {
		r.sweepTick()
	}
	r.heard[from] = r.ctx.Now()
	switch v := m.(type) {
	case wire.Request:
		r.onRequest(from, v)
	case wire.PreAccept:
		r.onPreAccept(from, v)
	case wire.PreAcceptReply:
		r.onPreAcceptReply(v)
	case wire.Accept:
		r.onAccept(from, v)
	case wire.AcceptReply:
		r.onAcceptReply(v)
	case wire.Commit:
		r.onCommit(v)
	case wire.Prepare:
		r.onPrepare(from, v)
	case wire.PrepareReply:
		r.onPrepareReply(v)
	case wire.Heartbeat:
		r.onRowMark(from, v)
	}
}

// onRowMark processes a peer's row watermark (carried in a Heartbeat: From
// is the row owner, Commit its own-row commit floor — every advertised
// slot is committed at the owner). Slots at or below the watermark that
// this replica has not committed start the recovery clock: Explicit
// Prepare will fetch them from the quorum. rowSynced caps the rescan at
// the already-verified prefix, so steady-state marks cost nothing.
func (r *Replica) onRowMark(from ids.ID, m wire.Heartbeat) {
	if m.From == r.cfg.ID || m.From.IsZero() {
		return
	}
	base := r.rowSynced[m.From]
	if fl := r.gcFloor[m.From]; fl > base {
		base = fl
	}
	if m.Commit <= base {
		return
	}
	row := r.rows[m.From]
	synced := base
	contig := true
	for slot := base + 1; slot <= m.Commit; slot++ {
		if in := row[slot]; in != nil && in.status >= statusCommitted {
			if contig {
				synced = slot
			}
			continue
		}
		contig = false
		r.noteCommittedElsewhere(wire.InstRef{Replica: m.From, Slot: slot})
	}
	r.rowSynced[m.From] = synced
}

// ----------------------------------------------------------- attributes --

// attributes computes (seq, deps) for cmd as seen by this replica: deps are
// the latest interfering instances per row, seq exceeds every interfering
// sequence number. Deps are sorted by (replica, slot): the interference
// indexes are Go maps, and leaking their iteration order into messages (and
// from there into dependency-graph traversal order and per-dep CPU charges)
// made equal seeds produce different numbers.
func (r *Replica) attributes(cmd kvstore.Command, except wire.InstRef) (uint64, []wire.InstRef) {
	var deps []wire.InstRef
	source := r.lastWrite[cmd.Key]
	if !cmd.IsRead() {
		source = r.lastOp[cmd.Key] // writes order after reads too
	}
	for rep, slot := range source {
		if rep == except.Replica && slot == except.Slot {
			continue
		}
		deps = append(deps, wire.InstRef{Replica: rep, Slot: slot})
	}
	sortRefs(deps)
	if cmd.IsRead() {
		return r.maxSeqWrite[cmd.Key] + 1, deps
	}
	return r.maxSeqAny[cmd.Key] + 1, deps
}

// sortRefs orders instance references by (replica, slot), in place.
func sortRefs(refs []wire.InstRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Replica != refs[j].Replica {
			return refs[i].Replica < refs[j].Replica
		}
		return refs[i].Slot < refs[j].Slot
	})
}

// recordInterference registers (ref, cmd, seq) in the conflict indexes.
func (r *Replica) recordInterference(ref wire.InstRef, cmd kvstore.Command, seq uint64) {
	ops := r.lastOp[cmd.Key]
	if ops == nil {
		ops = make(map[ids.ID]uint64)
		r.lastOp[cmd.Key] = ops
	}
	if ref.Slot > ops[ref.Replica] {
		ops[ref.Replica] = ref.Slot
	}
	if !cmd.IsRead() {
		w := r.lastWrite[cmd.Key]
		if w == nil {
			w = make(map[ids.ID]uint64)
			r.lastWrite[cmd.Key] = w
		}
		if ref.Slot > w[ref.Replica] {
			w[ref.Replica] = ref.Slot
		}
	}
	if seq > r.maxSeqAny[cmd.Key] {
		r.maxSeqAny[cmd.Key] = seq
	}
	if !cmd.IsRead() && seq > r.maxSeqWrite[cmd.Key] {
		r.maxSeqWrite[cmd.Key] = seq
	}
}

// capSelfRow enforces the own-row chain invariant on a dependency set: an
// instance's dependency into its own row must point strictly below its own
// slot. Admission-time attributes guarantee this (the owner allocates
// slots in order), but attributes recomputed later — a recovery re-running
// phase 1, or a pre-accept processed after a newer own-row sibling — can
// otherwise point at or past the instance itself, welding the row's
// siblings into a cycle that skips older instances entirely and breaking
// the pairwise connection execution ordering relies on.
func (r *Replica) capSelfRow(deps []wire.InstRef, ref wire.InstRef, cmd kvstore.Command) []wire.InstRef {
	for i, d := range deps {
		if d.Replica != ref.Replica || d.Slot < ref.Slot {
			continue
		}
		if s, ok := r.latestBelow(ref, cmd); ok {
			deps[i].Slot = s
		} else {
			deps = append(deps[:i], deps[i+1:]...)
		}
		break // dependency sets hold at most one entry per row
	}
	return deps
}

// latestBelow finds the newest instance in ref's row strictly below
// ref.Slot that interferes with cmd; when everything below is already
// collected, the GC floor itself stands in (it is executed here, and a
// lagging replica treats the edge as a commit to chase).
func (r *Replica) latestBelow(ref wire.InstRef, cmd kvstore.Command) (uint64, bool) {
	row := r.rows[ref.Replica]
	floor := r.gcFloor[ref.Replica]
	for s := ref.Slot - 1; s > floor; s-- {
		if in, ok := row[s]; ok && in.status > statusNone && in.cmd.ConflictsWith(cmd) {
			return s, true
		}
	}
	if floor > 0 && ref.Slot > floor {
		return floor, true
	}
	return 0, false
}

// mergeDeps unions b into a.
func mergeDeps(a, b []wire.InstRef) []wire.InstRef {
	for _, d := range b {
		found := false
		for i, e := range a {
			if e.Replica == d.Replica {
				found = true
				if d.Slot > e.Slot {
					a[i].Slot = d.Slot
				}
				break
			}
		}
		if !found {
			a = append(a, d)
		}
	}
	return a
}

func depsEqual(a, b []wire.InstRef) bool {
	if len(a) != len(b) {
		return false
	}
	for _, d := range a {
		ok := false
		for _, e := range b {
			if e == d {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// vote records a distinct phase reply from id; it reports false for a
// duplicate (retransmitted or link-duplicated replies must not be counted
// twice toward a quorum).
func (in *instance) vote(id ids.ID) bool {
	for _, v := range in.voters {
		if v == id {
			return false
		}
	}
	in.voters = append(in.voters, id)
	return true
}

// stopDriving abandons this replica's phases for the instance (superseded
// by a higher ballot, or the instance committed). The client route, if any,
// survives: whoever finishes the instance makes it execute here too, and
// execution answers the client. An abandoned still-uncommitted instance
// goes onto the recovery clock — the superseder normally finishes it, but
// if that recovery dies too (ballot races), this replica takes the
// instance back instead of orphaning it.
func (r *Replica) stopDriving(ref wire.InstRef, in *instance) {
	if in.drive.IsZero() {
		return
	}
	in.drive = 0
	in.preparing = false
	in.prep = nil
	in.voters = in.voters[:0]
	delete(r.driving, ref)
	if in.status < statusCommitted {
		r.noteBlocked(ref)
	}
}

// ---------------------------------------------------------- fast path --

func (r *Replica) onRequest(from ids.ID, m wire.Request) {
	if m.Cmd.ClientID != 0 {
		sess := r.session(m.Cmd.ClientID)
		if sess.executed[m.Cmd.Seq] {
			// Already executed here: answer from the session cache.
			r.stats.Duplicates++
			if m.Cmd.Seq == sess.maxSeq {
				r.ctx.Send(from, sess.maxReply)
			}
			return
		}
		if sess.pendingSeq == m.Cmd.Seq {
			// A retry of a command this replica is already leading:
			// refresh the reply route instead of opening a second
			// instance.
			if in := r.lookup(sess.pendingRef); in != nil && in.status < statusExecuted &&
				in.cmd.ClientID == m.Cmd.ClientID && in.cmd.Seq == m.Cmd.Seq {
				in.client = from
				in.hasClient = true
				r.stats.Duplicates++
				return
			}
		}
	}
	r.stats.Requests++
	r.ctx.Work(r.cfg.AttrWork + r.scanCost())
	ref := wire.InstRef{Replica: r.cfg.ID, Slot: r.nextOwn}
	r.nextOwn++
	seq, deps := r.attributes(m.Cmd, ref)
	in := r.inst(ref)
	in.cmd = m.Cmd
	in.seq = seq
	in.deps = deps
	in.status = statusPreAccepted
	in.drive = defaultBallot(ref)
	in.vbal = in.drive
	in.client = from
	in.hasClient = true
	in.mergedSeq = seq
	in.mergedDeps = append([]wire.InstRef(nil), deps...)
	in.opened = r.ctx.Now()
	in.lastSend = in.opened
	r.recordInterference(ref, m.Cmd, seq)
	if m.Cmd.ClientID != 0 {
		sess := r.session(m.Cmd.ClientID)
		sess.pendingSeq = m.Cmd.Seq
		sess.pendingRef = ref
	}
	r.driving[ref] = true

	targets := r.peers
	if r.cfg.Thrifty && r.fastQ < len(targets) {
		targets = targets[:r.fastQ]
	}
	pa := wire.PreAccept{Ballot: in.drive, Inst: ref, Cmd: m.Cmd, Seq: seq, Deps: deps}
	r.ctx.Broadcast(targets, pa)
	if r.fastQ == 0 { // single-node cluster
		r.commitInstance(ref, in, in.seq, in.deps)
	}
}

func (r *Replica) onPreAccept(from ids.ID, m wire.PreAccept) {
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		// The sender missed our commit (lost message or a stale
		// retransmit): teach it back instead of voting.
		r.stats.Teachbacks++
		r.ctx.Send(from, wire.Commit{Inst: m.Inst, Cmd: in.cmd, Seq: in.seq, Deps: in.deps})
		return
	}
	if m.Ballot < in.bal || (m.Ballot == in.bal && in.status > statusPreAccepted) {
		// Stale ballot, or a reordered retransmit arriving after this
		// replica advanced to Accept at the same ballot: refuse, carrying
		// the ballot that blocked it.
		r.ctx.Send(from, wire.PreAcceptReply{
			Inst: m.Inst, From: r.cfg.ID, OK: false, Ballot: in.bal,
		})
		return
	}
	r.ctx.Work(r.cfg.AttrWork + r.scanCost() + time.Duration(len(m.Deps))*r.cfg.DepWork)
	if m.Ballot > in.bal {
		in.bal = m.Ballot
		r.stopDriving(m.Inst, in)
	}
	seq, deps := r.attributes(m.Cmd, m.Inst)
	changed := false
	if seq > m.Seq {
		changed = true
	} else {
		seq = m.Seq
	}
	merged := mergeDeps(append([]wire.InstRef(nil), m.Deps...), deps)
	merged = r.capSelfRow(merged, m.Inst, m.Cmd)
	if !depsEqual(merged, m.Deps) {
		changed = true
	}
	in.cmd = m.Cmd
	in.seq = seq
	in.deps = merged
	in.status = statusPreAccepted
	in.vbal = m.Ballot
	r.recordInterference(m.Inst, m.Cmd, seq)
	r.ctx.Send(from, wire.PreAcceptReply{
		Inst: m.Inst, From: r.cfg.ID, OK: true, Ballot: m.Ballot,
		Seq: seq, Deps: merged, Changed: changed,
	})
}

func (r *Replica) onPreAcceptReply(m wire.PreAcceptReply) {
	in := r.lookup(m.Inst)
	if in == nil || in.drive.IsZero() || in.preparing || in.status != statusPreAccepted {
		return
	}
	if !m.OK {
		if m.Ballot <= in.drive {
			return // a late or duplicated refusal of a superseded round
		}
		// A higher ballot owns this instance now; its driver will finish
		// it (or our recovery sweep will retake it later).
		if m.Ballot > in.bal {
			in.bal = m.Ballot
		}
		r.stopDriving(m.Inst, in)
		return
	}
	if m.Ballot != in.drive || !in.vote(m.From) {
		return // stale round or duplicate reply
	}
	r.ctx.Work(r.cfg.AttrWork + time.Duration(len(m.Deps))*r.cfg.DepWork)
	if m.Changed {
		in.changed = true
	}
	if m.Seq > in.mergedSeq {
		in.mergedSeq = m.Seq
	}
	in.mergedDeps = mergeDeps(in.mergedDeps, m.Deps)
	if m.Inst.Replica == r.cfg.ID && in.drive == defaultBallot(m.Inst) {
		// Original command leader: the fast path needs the full fast
		// quorum.
		if len(in.voters) < r.fastQ {
			return
		}
		if !in.changed {
			// Fast path: every fast-quorum member agreed with our
			// attributes.
			r.stats.FastPath++
			r.commitInstance(m.Inst, in, in.seq, in.deps)
			return
		}
		r.stats.SlowPath++
		r.startAccept(m.Inst, in, in.mergedSeq, in.mergedDeps)
		return
	}
	// Recovery re-run of phase 1: no fast path at a non-default ballot —
	// a majority of pre-accepts goes straight to the Accept round.
	if len(in.voters) >= r.slowQ {
		r.startAccept(m.Inst, in, in.mergedSeq, in.mergedDeps)
	}
}

// ---------------------------------------------------------- slow path --

// startAccept fixes (cmd, seq, deps) with a majority Accept round at the
// instance's drive ballot.
func (r *Replica) startAccept(ref wire.InstRef, in *instance, seq uint64, deps []wire.InstRef) {
	in.status = statusAccepted
	in.seq = seq
	in.deps = deps
	in.vbal = in.drive
	in.voters = in.voters[:0]
	in.votesAtSend = 0
	in.lastSend = r.ctx.Now()
	acc := wire.Accept{
		Ballot: in.drive, Inst: ref,
		Cmd: in.cmd, Seq: seq, Deps: deps,
	}
	r.ctx.Broadcast(r.peers, acc)
	if r.slowQ == 0 { // single-node cluster
		r.commitInstance(ref, in, seq, deps)
	}
}

func (r *Replica) onAccept(from ids.ID, m wire.Accept) {
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		r.stats.Teachbacks++
		r.ctx.Send(from, wire.Commit{Inst: m.Inst, Cmd: in.cmd, Seq: in.seq, Deps: in.deps})
		return
	}
	if m.Ballot < in.bal {
		r.ctx.Send(from, wire.AcceptReply{
			Inst: m.Inst, From: r.cfg.ID, OK: false, Ballot: in.bal,
		})
		return
	}
	if m.Ballot > in.bal {
		in.bal = m.Ballot
		r.stopDriving(m.Inst, in)
	}
	in.cmd = m.Cmd
	in.seq = m.Seq
	in.deps = m.Deps
	in.status = statusAccepted
	in.vbal = m.Ballot
	if !m.Cmd.Empty() {
		r.recordInterference(m.Inst, m.Cmd, m.Seq)
	}
	r.ctx.Send(from, wire.AcceptReply{Inst: m.Inst, From: r.cfg.ID, OK: true, Ballot: m.Ballot})
}

func (r *Replica) onAcceptReply(m wire.AcceptReply) {
	in := r.lookup(m.Inst)
	if in == nil || in.drive.IsZero() || in.preparing || in.status != statusAccepted {
		return
	}
	if !m.OK {
		if m.Ballot <= in.drive {
			return // a late or duplicated refusal of a superseded round
		}
		if m.Ballot > in.bal {
			in.bal = m.Ballot
		}
		r.stopDriving(m.Inst, in)
		return
	}
	if m.Ballot != in.drive || !in.vote(m.From) {
		return
	}
	if len(in.voters) >= r.slowQ {
		r.commitInstance(m.Inst, in, in.seq, in.deps)
	}
}

// ------------------------------------------------------------- commit --

func (r *Replica) commitInstance(ref wire.InstRef, in *instance, seq uint64, deps []wire.InstRef) {
	if in.status >= statusCommitted {
		return
	}
	if ref.Replica == r.cfg.ID && in.opened > 0 {
		sample := r.ctx.Now() - in.opened
		r.commitEwma += (sample - r.commitEwma) / 8
	}
	in.seq = seq
	in.deps = deps
	in.status = statusCommitted
	r.stopDriving(ref, in)
	delete(r.blocked, ref)
	if !in.cmd.Empty() {
		r.recordInterference(ref, in.cmd, seq)
	}
	r.stats.Commits++
	cm := wire.Commit{Inst: ref, Cmd: in.cmd, Seq: seq, Deps: deps}
	r.ctx.Broadcast(r.peers, cm)
	r.pendingExec[ref] = true
	r.tryExecuteAll()
}

func (r *Replica) onCommit(m wire.Commit) {
	r.ctx.Work(time.Duration(len(m.Deps)) * r.cfg.DepWork)
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		return
	}
	in.cmd = m.Cmd
	in.seq = m.Seq
	in.deps = m.Deps
	in.status = statusCommitted
	r.stopDriving(m.Inst, in)
	delete(r.blocked, m.Inst)
	r.stats.Commits++
	if !m.Cmd.Empty() {
		r.recordInterference(m.Inst, m.Cmd, m.Seq)
	}
	r.pendingExec[m.Inst] = true
	r.tryExecuteAll()
}

// ----------------------------------------------------------- recovery --

// startRecovery takes over an instance whose driver is suspected dead: bid
// a ballot above everything seen and gather a majority's knowledge.
func (r *Replica) startRecovery(ref wire.InstRef) {
	in := r.inst(ref)
	if in.status >= statusCommitted || in.preparing {
		return
	}
	r.stats.Recoveries++
	b := in.bal.Next(r.cfg.ID)
	in.bal = b
	in.drive = b
	in.preparing = true
	in.voters = in.voters[:0]
	in.votesAtSend = 0
	// This replica's own knowledge is the first reply.
	in.prep = append(in.prep[:0], prepInfo{
		from: r.cfg.ID, status: wireStatus(in.status), vbal: in.vbal,
		cmd: in.cmd, seq: in.seq,
		deps: append([]wire.InstRef(nil), in.deps...),
	})
	r.driving[ref] = true
	in.lastSend = r.ctx.Now()
	r.ctx.Broadcast(r.peers, wire.Prepare{Ballot: b, Inst: ref})
	if r.slowQ == 0 { // single-node cluster
		r.decideRecovery(ref, in)
	}
}

func (r *Replica) onPrepare(from ids.ID, m wire.Prepare) {
	r.stats.Prepares++
	in := r.inst(m.Inst)
	if m.Ballot < in.bal {
		r.ctx.Send(from, wire.PrepareReply{
			Inst: m.Inst, From: r.cfg.ID, OK: false, Ballot: in.bal,
		})
		return
	}
	if m.Ballot > in.bal {
		// Promise the higher ballot; if this replica was driving the
		// instance, it stops — late replies to its old phases no longer
		// count, so it cannot commit behind the recovery's back.
		in.bal = m.Ballot
		r.stopDriving(m.Inst, in)
	}
	r.ctx.Send(from, wire.PrepareReply{
		Inst: m.Inst, From: r.cfg.ID, OK: true, Ballot: m.Ballot,
		Status: wireStatus(in.status), VBallot: in.vbal,
		Cmd: in.cmd, Seq: in.seq, Deps: in.deps,
	})
}

func (r *Replica) onPrepareReply(m wire.PrepareReply) {
	in := r.lookup(m.Inst)
	if in == nil || !in.preparing {
		return
	}
	if !m.OK {
		if m.Ballot <= in.drive {
			return // a late or duplicated refusal of a superseded round
		}
		if m.Ballot > in.bal {
			in.bal = m.Ballot
		}
		r.stopDriving(m.Inst, in)
		return
	}
	if m.Ballot != in.drive || !in.vote(m.From) {
		return
	}
	if m.Status == wire.InstCommitted {
		// Someone has the commit: adopt it and teach everyone
		// (commitInstance re-broadcasts).
		in.cmd = m.Cmd
		in.preparing = false
		r.commitInstance(m.Inst, in, m.Seq, m.Deps)
		return
	}
	in.prep = append(in.prep, prepInfo{
		from: m.From, status: m.Status, vbal: m.VBallot,
		cmd: m.Cmd, seq: m.Seq, deps: m.Deps,
	})
	if len(in.voters) >= r.slowQ {
		r.decideRecovery(m.Inst, in)
	}
}

// decideRecovery finishes a prepared instance from what the quorum
// reported. The case analysis is the simple-fast-quorum (N−1) Explicit
// Prepare rule set:
//
//  1. an accepted value (highest accept ballot) re-runs the Accept round —
//     classic Paxos;
//  2. the owner's own pre-accept means no fast-path commit exists (the
//     owner would have reported it, and our Prepare just superseded it),
//     so its command safely re-runs phase 1;
//  3. two or more identical default-ballot pre-accepts (owner excluded)
//     may have fast-committed and are defended — with the N−1 fast
//     quorum, a commit shows at least majority−1 ≥ 2 identical copies in
//     every all-non-owner Prepare majority, while any competing attribute
//     set shows at most one;
//  4. any other pre-accepted command re-runs phase 1 at the recovery
//     ballot (slow path only — a fast commit is impossible below the
//     bound, so fresh attributes are safe);
//  5. an instance nobody knows is anchored as a no-op so dependents can
//     execute.
func (r *Replica) decideRecovery(ref wire.InstRef, in *instance) {
	in.preparing = false
	in.voters = in.voters[:0]
	prep := in.prep
	in.prep = nil

	var acc *prepInfo
	for i := range prep {
		p := &prep[i]
		if p.status == wire.InstAccepted && (acc == nil || p.vbal > acc.vbal) {
			acc = p
		}
	}
	if acc != nil {
		in.cmd = acc.cmd
		r.startAccept(ref, in, acc.seq, acc.deps)
		return
	}

	def := defaultBallot(ref)
	var owner *prepInfo
	var anyPre *prepInfo
	var defPre []*prepInfo
	for i := range prep {
		p := &prep[i]
		if p.status != wire.InstPreAccepted {
			continue
		}
		if anyPre == nil {
			anyPre = p
		}
		if p.from == ref.Replica {
			owner = p
		} else if p.vbal == def {
			defPre = append(defPre, p)
		}
	}
	if owner != nil {
		// The initial command leader itself answered with a pre-accept: it
		// has not committed (it would have reported the commit) and our
		// Prepare superseded it, so no fast-path commit can exist. Its
		// command re-runs phase 1 rather than being re-accepted at its old
		// attributes: a quorum re-merge restores dependency edges to
		// interfering commands that committed while this instance idled —
		// committing stale attributes would break the pairwise-connection
		// invariant the execution order relies on.
		r.restartPreAccept(ref, in, owner.cmd, owner.seq, owner.deps)
		return
	}
	if len(defPre) > 0 {
		// Largest group of identical (seq, deps) attributes, first seen
		// wins ties — reply arrival order is deterministic. The defend
		// threshold is 2: with the N−1 fast quorum, a fast-path commit
		// leaves all but one non-owner replica holding its attributes, so
		// any all-non-owner Prepare majority (the owner case returned
		// above) sees at least majority−1 ≥ 2 identical copies of a
		// committed attribute set — and at most one copy of anything else,
		// so a group of two can never be the wrong set.
		var best *prepInfo
		bestN := 0
		for i, p := range defPre {
			n := 1
			for _, q := range defPre[i+1:] {
				if q.seq == p.seq && depsEqual(q.deps, p.deps) {
					n++
				}
			}
			if n > bestN {
				best, bestN = p, n
			}
		}
		if bestN >= 2 {
			in.cmd = best.cmd
			r.startAccept(ref, in, best.seq, best.deps)
			return
		}
	}
	if anyPre != nil {
		r.restartPreAccept(ref, in, anyPre.cmd, anyPre.seq, anyPre.deps)
		return
	}
	// Nobody knows the command: anchor a no-op (through the Accept round,
	// so a competing driver cannot commit something else underneath it).
	in.cmd = kvstore.Command{}
	r.startAccept(ref, in, 0, nil)
}

// restartPreAccept re-runs phase 1 for a recovered command at the recovery
// ballot: fresh attributes merged with what the Prepare quorum reported,
// slow path only.
func (r *Replica) restartPreAccept(ref wire.InstRef, in *instance, cmd kvstore.Command, seq0 uint64, deps0 []wire.InstRef) {
	r.ctx.Work(r.cfg.AttrWork + r.scanCost())
	in.cmd = cmd
	seq, deps := r.attributes(cmd, ref)
	if seq0 > seq {
		seq = seq0
	}
	deps = mergeDeps(deps, deps0)
	deps = r.capSelfRow(deps, ref, cmd)
	sortRefs(deps)
	in.seq = seq
	in.deps = deps
	in.status = statusPreAccepted
	in.vbal = in.drive
	in.changed = true // never the fast path at a recovery ballot
	in.mergedSeq = seq
	in.mergedDeps = append(in.mergedDeps[:0], deps...)
	in.voters = in.voters[:0]
	in.votesAtSend = 0
	in.lastSend = r.ctx.Now()
	r.recordInterference(ref, cmd, seq)
	r.ctx.Broadcast(r.peers, wire.PreAccept{
		Ballot: in.drive, Inst: ref, Cmd: cmd, Seq: seq, Deps: deps,
	})
	if r.slowQ == 0 { // single-node cluster
		r.commitInstance(ref, in, seq, deps)
	}
}

// -------------------------------------------------------------- sweep --

func (r *Replica) armSweep() {
	if r.cfg.SweepInterval <= 0 {
		return
	}
	d := r.cfg.SweepInterval
	if r.lastSweep == 0 {
		// Phase-stagger the first tick by node number: replicas started at
		// the same instant would otherwise sweep — and fire their recovery
		// deadlines — in lockstep, so two replicas blocked on the same
		// instance would keep superseding each other's Prepare rounds.
		d += time.Duration(r.cfg.ID.Node()%16) * r.cfg.SweepInterval / 16
	}
	r.ctx.After(d, r.sweepTick)
}

func (r *Replica) sweepTick() {
	r.lastSweep = r.ctx.Now()
	r.sweep()
	r.armSweep()
}

// sweep is the periodic retransmit/recovery pass: it re-broadcasts the
// current phase message of every stalled driven instance (masking lost
// messages), downgrades stalled fast-path attempts to the slow path once a
// majority has replied (masking crashed fast-quorum members), and starts
// Explicit Prepare on instances execution has been blocked on for too long
// (masking crashed command leaders and lost commits). Both scans iterate in
// sorted order — map order must not leak into message timing.
func (r *Replica) sweep() {
	now := r.ctx.Now()
	if r.cfg.RetryTimeout > 0 && len(r.driving) > 0 {
		// Adaptive stall threshold: at least RetryTimeout, but well above
		// the commit latency the cluster is currently delivering, so a
		// loaded-but-healthy quorum is never mistaken for loss.
		retryAfter := r.cfg.RetryTimeout
		if adaptive := 3 * r.commitEwma; adaptive > retryAfter {
			retryAfter = adaptive
		}
		refs := make([]wire.InstRef, 0, len(r.driving))
		for ref := range r.driving {
			refs = append(refs, ref)
		}
		sortRefs(refs)
		for _, ref := range refs {
			in := r.lookup(ref)
			if in == nil || in.drive.IsZero() || in.status >= statusCommitted {
				delete(r.driving, ref)
				continue
			}
			if now-in.lastSend < retryAfter {
				continue
			}
			if len(in.voters) > in.votesAtSend {
				// Votes arrived since the last send: the quorum is slow,
				// not lossy. Push the clock instead of retransmitting —
				// blind retransmission under overload amplifies the very
				// queueing that slowed the votes.
				in.votesAtSend = len(in.voters)
				in.lastSend = now
				continue
			}
			r.stats.Retransmits++
			in.lastSend = now
			in.votesAtSend = len(in.voters)
			switch {
			case in.preparing:
				r.ctx.Broadcast(r.peers, wire.Prepare{Ballot: in.drive, Inst: ref})
			case in.status == statusPreAccepted:
				if ref.Replica == r.cfg.ID && in.drive == defaultBallot(ref) &&
					len(in.voters) >= r.slowQ {
					// A majority replied but the fast quorum is not
					// forming (crashed peers): downgrade to the slow
					// path instead of stalling.
					r.stats.SlowPath++
					r.startAccept(ref, in, in.mergedSeq, in.mergedDeps)
					continue
				}
				// Retransmit to every peer, thrifty or not: the original
				// targets may be the crashed ones.
				r.ctx.Broadcast(r.peers, wire.PreAccept{
					Ballot: in.drive, Inst: ref, Cmd: in.cmd, Seq: in.seq, Deps: in.deps,
				})
			case in.status == statusAccepted:
				r.ctx.Broadcast(r.peers, wire.Accept{
					Ballot: in.drive, Inst: ref, Cmd: in.cmd, Seq: in.seq, Deps: in.deps,
				})
			}
		}
	}
	if r.cfg.RecoverTimeout > 0 && len(r.blocked) > 0 {
		refs := make([]wire.InstRef, 0, len(r.blocked))
		for ref := range r.blocked {
			refs = append(refs, ref)
		}
		sortRefs(refs)
		for _, ref := range refs {
			in := r.lookup(ref)
			if (in != nil && in.status >= statusCommitted) || ref.Slot <= r.gcFloor[ref.Replica] {
				delete(r.blocked, ref)
				continue
			}
			// Recovery deadlines are tiered so a cluster that is blocked on
			// one instance does not recover it nine times over (every
			// concurrent Prepare supersedes every other — a ballot war
			// that commits nothing):
			//   - the owner itself, and anyone a row watermark proved the
			//     instance committed at its owner for (a plain fetch,
			//     nothing to steal), fire after one timeout;
			//   - otherwise, a chatty owner is alive and will finish the
			//     instance itself — everyone defers four timeouts;
			//   - for a silent owner, the lowest-ID replica this replica
			//     has recently heard from (itself included) is the
			//     designated recoverer at one timeout; the rest hang back
			//     four as its fallback.
			bs := r.blocked[ref]
			wait := r.cfg.RecoverTimeout
			switch {
			case bs.committedElsewhere || ref.Replica == r.cfg.ID:
			case now-r.heard[ref.Replica] < r.cfg.RecoverTimeout:
				wait = 4 * r.cfg.RecoverTimeout
			case r.recoveryDelegate(ref.Replica, now) != r.cfg.ID:
				wait = 4 * r.cfg.RecoverTimeout
			}
			if now-bs.since < wait {
				continue
			}
			// Re-stamp so a superseded or stalled recovery retries with a
			// fresh (higher) ballot after another full timeout.
			bs.since = now
			r.blocked[ref] = bs
			r.startRecovery(ref)
		}
	}
	// Row-watermark gossip: periodically advertise the own-row commit
	// floor. Pure periodic re-sends are the anti-entropy loop's liveness —
	// a replica partitioned away through any number of marks catches up on
	// the first one it receives after healing — and the marks double as
	// liveness heartbeats: the first one delivered to a freshly recovered
	// replica resurrects its sweep chain (see OnMessage).
	if r.cfg.RecoverTimeout > 0 && now-r.lastAdvertise >= r.cfg.RecoverTimeout {
		row := r.rows[r.cfg.ID]
		if fl := r.gcFloor[r.cfg.ID]; fl > r.ownFloor {
			r.ownFloor = fl
		}
		for {
			in, ok := row[r.ownFloor+1]
			if !ok || in.status < statusCommitted {
				break
			}
			r.ownFloor++
		}
		r.lastAdvertise = now
		r.ctx.Broadcast(r.peers, wire.Heartbeat{From: r.cfg.ID, Commit: r.ownFloor})
	}
}

// blockState is one entry of the recovery clock: when the instance first
// blocked, and whether a row watermark proved it committed at its owner
// (in which case recovery is a plain fetch with no takeover race, and the
// chatty-owner grace period does not apply).
type blockState struct {
	since              time.Duration
	committedElsewhere bool
}

// noteBlocked records that execution is blocked on ref, starting the
// recovery clock if it was not already running.
func (r *Replica) noteBlocked(ref wire.InstRef) {
	if ref == (wire.InstRef{}) {
		return
	}
	if _, ok := r.blocked[ref]; !ok {
		r.blocked[ref] = blockState{since: r.ctx.Now()}
	}
}

// recoveryDelegate is the replica expected to run Explicit Prepare for a
// dead owner's instances: the lowest-ID replica this replica believes
// alive (heard within two timeouts, or itself), the owner excluded. Views
// of liveness coincide closely enough that at most one or two replicas
// elect themselves, instead of the whole cluster superseding one another.
func (r *Replica) recoveryDelegate(owner ids.ID, now time.Duration) ids.ID {
	best := r.cfg.ID
	for _, id := range r.peers {
		if id == owner || id >= best {
			continue
		}
		if now-r.heard[id] < 2*r.cfg.RecoverTimeout {
			best = id
		}
	}
	return best
}

// noteCommittedElsewhere starts (or upgrades) the recovery clock for an
// instance a row watermark proved committed at its owner.
func (r *Replica) noteCommittedElsewhere(ref wire.InstRef) {
	bs, ok := r.blocked[ref]
	if !ok {
		bs = blockState{since: r.ctx.Now()}
	}
	bs.committedElsewhere = true
	r.blocked[ref] = bs
}

// ---------------------------------------------------------- execution --

// tryExecuteAll attempts to execute every pending committed instance. An
// instance executes once its dependency closure is committed; the closure's
// strongly connected components execute in topological order, components
// internally ordered by (seq, instance id) — the EPaxos execution algorithm.
// Instances whose closure contains uncommitted dependencies stay pending and
// are retried on the next commit or retry tick.
func (r *Replica) tryExecuteAll() {
	// Snapshot and sort the pending set: map iteration order would vary the
	// execution attempt order (and with it ExecVisit CPU charges) between
	// equal-seed runs.
	refs := make([]wire.InstRef, 0, len(r.pendingExec))
	for ref := range r.pendingExec {
		refs = append(refs, ref)
	}
	sortRefs(refs)
	for _, ref := range refs {
		if !r.pendingExec[ref] {
			continue // executed as part of an earlier closure this sweep
		}
		in := r.lookup(ref)
		if in == nil || in.status != statusCommitted {
			delete(r.pendingExec, ref)
			continue
		}
		if !r.executeClosure(ref) {
			r.armRetry()
		}
	}
}

func (r *Replica) armRetry() {
	if r.retryArmed {
		return
	}
	r.retryArmed = true
	if r.retryWait < r.cfg.ExecRetryInterval {
		r.retryWait = r.cfg.ExecRetryInterval
	}
	wait := r.retryWait
	if r.retryWait < 128*r.cfg.ExecRetryInterval {
		r.retryWait *= 2
	}
	r.ctx.After(wait, func() {
		r.retryArmed = false
		r.tryExecuteAll()
	})
}

// executeClosure runs Tarjan's SCC over the committed dependency graph
// reachable from root and executes finished components. It returns false
// if uncommitted dependencies block the closure — noting every blocker it
// can reach for the recovery sweep, so a deep chain of missing instances
// is recovered in parallel rather than one discovery per timeout.
func (r *Replica) executeClosure(root wire.InstRef) bool {
	t := &tarjan{r: r, index: make(map[wire.InstRef]int), low: make(map[wire.InstRef]int), onStack: make(map[wire.InstRef]bool)}
	t.strongConnect(root)
	if len(t.blockers) > 0 {
		r.stats.Blocked++
		for _, b := range t.blockers {
			r.noteBlocked(b)
		}
		return false
	}
	for _, comp := range t.components {
		sortComponent(comp, r)
		for _, ref := range comp {
			in := r.lookup(ref)
			if in.status == statusExecuted {
				continue
			}
			r.execute(ref, in)
		}
	}
	return true
}

func (r *Replica) execute(ref wire.InstRef, in *instance) {
	r.retryWait = 0
	in.status = statusExecuted
	r.live--
	r.stats.Executions++
	r.ctx.Work(r.cfg.ExecWork)
	delete(r.pendingExec, ref)
	delete(r.blocked, ref)
	r.execSinceGC++
	if r.cfg.GCEvery > 0 && r.execSinceGC >= r.cfg.GCEvery {
		r.execSinceGC = 0
		r.gc()
	}
	if in.cmd.Empty() {
		// No-op anchored by recovery: nothing to apply, nobody to answer.
		r.stats.Noops++
		in.hasClient = false
		return
	}
	if in.cmd.ClientID == 0 {
		// No at-most-once identity (tests, synthetic traffic).
		res := r.store.Apply(in.cmd)
		if in.hasClient {
			in.hasClient = false
			r.ctx.Send(in.client, wire.Reply{
				Seq: in.cmd.Seq, OK: true, Exists: res.Exists, Value: res.Value,
				Leader: r.cfg.ID, Slot: ref.Slot,
			})
		}
		return
	}
	sess := r.session(in.cmd.ClientID)
	if sess.executed[in.cmd.Seq] {
		// A duplicate instance of an already-executed command (client
		// retry through another command leader): at-most-once suppresses
		// the second apply — identically on every replica, since the
		// execution order of the two interfering instances is the same
		// everywhere. The retry's route is answered from the cache.
		r.stats.Duplicates++
		if in.hasClient {
			in.hasClient = false
			if in.cmd.Seq == sess.maxSeq {
				r.ctx.Send(in.client, sess.maxReply)
			}
		}
		return
	}
	res := r.store.Apply(in.cmd)
	sess.executed[in.cmd.Seq] = true
	if in.cmd.Seq > sessionWindow {
		delete(sess.executed, in.cmd.Seq-sessionWindow)
	}
	rep := wire.Reply{
		ClientID: in.cmd.ClientID,
		Seq:      in.cmd.Seq,
		OK:       true,
		Exists:   res.Exists,
		Value:    res.Value,
		Leader:   r.cfg.ID,
		Slot:     ref.Slot,
	}
	if in.cmd.Seq > sess.maxSeq {
		sess.maxSeq = in.cmd.Seq
		sess.maxReply = rep
		if sess.pendingSeq == in.cmd.Seq {
			sess.pendingSeq = 0
		}
	}
	if in.hasClient {
		in.hasClient = false
		r.ctx.Send(in.client, rep)
	}
}

// tarjan is an iterative-enough Tarjan SCC restricted to committed
// instances. Uncommitted instances do not abort the traversal: they are
// collected as blockers (and treated as sinks) so one failed execution
// attempt surfaces every missing dependency at once; the components are
// only executed when no blocker was found.
type tarjan struct {
	r          *Replica
	index      map[wire.InstRef]int
	low        map[wire.InstRef]int
	stack      []wire.InstRef
	onStack    map[wire.InstRef]bool
	next       int
	components [][]wire.InstRef
	blockers   []wire.InstRef
	blockedSet map[wire.InstRef]bool
}

func (t *tarjan) addBlocker(v wire.InstRef) {
	if t.blockedSet == nil {
		t.blockedSet = make(map[wire.InstRef]bool)
	}
	if !t.blockedSet[v] {
		t.blockedSet[v] = true
		t.blockers = append(t.blockers, v)
	}
}

func (t *tarjan) strongConnect(v wire.InstRef) {
	in := t.r.lookup(v)
	if in == nil {
		if v.Slot <= t.r.gcFloor[v.Replica] {
			return // collected ⇒ executed long ago: a sink
		}
		t.addBlocker(v) // unknown dependency blocks execution
		return
	}
	if in.status < statusCommitted {
		t.addBlocker(v) // uncommitted dependency blocks execution
		return
	}
	t.r.stats.ExecVisits++
	t.r.ctx.Work(t.r.cfg.ExecVisitWork)
	if in.status == statusExecuted {
		return // executed nodes are sinks; no edges out matter
	}
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.onStack[v] = true

	for _, w := range in.deps {
		win := t.r.lookup(w)
		if win != nil && win.status == statusExecuted {
			continue
		}
		if _, seen := t.index[w]; !seen {
			t.strongConnect(w)
			if lw, ok := t.low[w]; ok && lw < t.low[v] {
				t.low[v] = lw
			}
		} else if t.onStack[w] {
			if t.index[w] < t.low[v] {
				t.low[v] = t.index[w]
			}
		}
	}

	if t.low[v] == t.index[v] {
		var comp []wire.InstRef
		for {
			n := len(t.stack) - 1
			w := t.stack[n]
			t.stack = t.stack[:n]
			t.onStack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.components = append(t.components, comp)
	}
}

// gc removes executed prefixes of every instance row, advancing the row's
// floor so later dependency checks treat collected slots as executed. Only
// contiguous executed prefixes are collected (a hole means some older
// instance is still live).
func (r *Replica) gc() {
	for rep, row := range r.rows {
		floor := r.gcFloor[rep]
		for {
			in, ok := row[floor+1]
			if !ok || in.status != statusExecuted {
				break
			}
			delete(row, floor+1)
			floor++
		}
		r.gcFloor[rep] = floor
	}
	r.stats.GCs++
}

// sortComponent orders an SCC by (seq, replica, slot) — the deterministic
// tie-break every replica applies identically.
func sortComponent(comp []wire.InstRef, r *Replica) {
	for i := 1; i < len(comp); i++ {
		for j := i; j > 0; j-- {
			a, b := r.lookup(comp[j-1]), r.lookup(comp[j])
			if less(b, comp[j], a, comp[j-1]) {
				comp[j-1], comp[j] = comp[j], comp[j-1]
			} else {
				break
			}
		}
	}
}

func less(a *instance, ar wire.InstRef, b *instance, br wire.InstRef) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if ar.Replica != br.Replica {
		return ar.Replica < br.Replica
	}
	return ar.Slot < br.Slot
}

// StuckInstance describes one unexecuted instance (post-run diagnostics).
type StuckInstance struct {
	Ref       wire.InstRef
	Status    uint8 // wire.Inst* encoding
	Ballot    ids.Ballot
	Driving   bool
	Preparing bool
	Blocked   bool
}

// Stuck lists this replica's unexecuted instances in sorted order — the
// diagnostic behind Unexecuted.
func (r *Replica) Stuck() []StuckInstance {
	var out []StuckInstance
	for owner, row := range r.rows {
		for slot, in := range row {
			if in.status > statusNone && in.status < statusExecuted {
				ref := wire.InstRef{Replica: owner, Slot: slot}
				_, blocked := r.blocked[ref]
				out = append(out, StuckInstance{
					Ref: ref, Status: wireStatus(in.status), Ballot: in.bal,
					Driving: !in.drive.IsZero(), Preparing: in.preparing, Blocked: blocked,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Replica != out[j].Ref.Replica {
			return out[i].Ref.Replica < out[j].Ref.Replica
		}
		return out[i].Ref.Slot < out[j].Ref.Slot
	})
	return out
}
