// Package epaxos implements Egalitarian Paxos (Moraru et al., SOSP'13), the
// leaderless baseline the paper compares against (§2.3, §5.4). Any replica
// acts as command leader for the requests it receives: it computes the
// command's attributes (a sequence number and per-replica dependencies on
// interfering commands), pre-accepts on a fast quorum, and commits in one
// round trip when all fast-quorum replies agree. Interference (same key,
// at least one write) forces attribute growth and the slow path — an extra
// majority Accept round — and execution must topologically order the
// dependency graph (strongly connected components by sequence number), so a
// small hot key space under high load drains every replica's resources,
// which is exactly the failure mode the paper measures with its 1000-key
// uniform workload.
//
// Recovery of instances whose command leader crashed (Explicit Prepare) is
// out of scope, as the paper's evaluation never exercises it.
package epaxos

import (
	"sort"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/wire"
)

// Config parameterizes an EPaxos replica.
type Config struct {
	// Cluster is the full membership.
	Cluster config.Cluster
	// ID is this replica's identity.
	ID ids.ID
	// Thrifty sends PreAccepts only to a fast quorum instead of all peers.
	Thrifty bool
	// AttrWork is CPU charged for computing/merging attributes per
	// pre-accept (instance bookkeeping is heavier than Paxos's).
	AttrWork time.Duration
	// ScanWork is CPU charged per live (unexecuted) instance scanned when
	// computing attributes for a new command: the interference scan over
	// the live working set. Under load the working set grows with the
	// number of in-flight commands, so this cost rises with concurrency —
	// the self-reinforcing "conflict resolution draining the resources of
	// every node" collapse the paper measures (§5.4).
	ScanWork time.Duration
	// DepWork is CPU charged per dependency entry scanned or merged when
	// processing attribute-carrying messages. Dependency sets grow toward
	// one entry per instance-space row (N entries) on a hot key space, so
	// this is the conflict-resolution cost the paper blames for EPaxos'
	// collapse ("conflict resolution phase draining the resources of
	// every node", §5.4).
	DepWork time.Duration
	// ExecVisitWork is CPU charged per dependency-graph node visited
	// during execution attempts — the "conflict resolution" cost that
	// grows with the number of in-flight interfering commands.
	ExecVisitWork time.Duration
	// ExecWork is CPU charged per command applied to the state machine.
	ExecWork time.Duration
	// ExecRetryInterval is how often blocked executions are retried.
	ExecRetryInterval time.Duration
	// GCEvery triggers instance-space garbage collection after this many
	// local executions (default 4096; 0 keeps the default — use a
	// negative value to disable GC).
	GCEvery int
}

func (c *Config) applyDefaults() {
	if c.AttrWork == 0 {
		c.AttrWork = 40 * time.Microsecond
	}
	if c.DepWork == 0 {
		c.DepWork = 6 * time.Microsecond
	}
	if c.ScanWork == 0 {
		c.ScanWork = 5 * time.Microsecond
	}
	if c.ExecVisitWork == 0 {
		c.ExecVisitWork = 2 * time.Microsecond
	}
	if c.ExecWork == 0 {
		c.ExecWork = 5 * time.Microsecond
	}
	if c.ExecRetryInterval == 0 {
		c.ExecRetryInterval = time.Millisecond
	}
	if c.GCEvery == 0 {
		c.GCEvery = 4096
	}
}

type status uint8

const (
	statusNone status = iota
	statusPreAccepted
	statusAccepted
	statusCommitted
	statusExecuted
)

// instance is one cell of the two-dimensional EPaxos instance space.
type instance struct {
	cmd    kvstore.Command
	seq    uint64
	deps   []wire.InstRef
	status status

	// Command-leader state.
	leaderHere bool
	preAcks    int
	changed    bool
	mergedSeq  uint64
	mergedDeps []wire.InstRef
	acceptAcks int
	client     ids.ID
	hasClient  bool
}

// Stats counts protocol events.
type Stats struct {
	Requests   uint64
	FastPath   uint64
	SlowPath   uint64
	Commits    uint64
	Executions uint64
	ExecVisits uint64 // dependency-graph nodes visited (conflict work)
	Blocked    uint64 // execution attempts aborted on uncommitted deps
	GCs        uint64 // instance-space garbage collections
}

// Replica is one EPaxos node.
type Replica struct {
	ctx node.Context
	cfg Config

	peers []ids.ID
	n     int
	fastQ int // fast-quorum acks needed beyond self
	slowQ int // majority acks needed beyond self

	rows    map[ids.ID]map[uint64]*instance
	nextOwn uint64

	// Interference tracking: for each key, the latest write and latest
	// operation per instance-space row, for dependency computation.
	lastWrite map[uint64]map[ids.ID]uint64
	lastOp    map[uint64]map[ids.ID]uint64
	// maxSeqWrite tracks the highest write seq per key; maxSeqAny the
	// highest seq of any op. Reads order after writes only, writes after
	// everything — matching the interference relation.
	maxSeqWrite map[uint64]uint64
	maxSeqAny   map[uint64]uint64

	store *kvstore.Store

	// Committed-but-unexecuted instances awaiting their dependencies.
	pendingExec map[wire.InstRef]bool
	retryArmed  bool
	// live counts instances created but not yet executed locally — the
	// working set the interference scan walks.
	live int

	// gcFloor[row] is the highest slot such that every instance of the
	// row at or below it has been executed and garbage-collected; a
	// dependency at or below the floor is known-executed.
	gcFloor     map[ids.ID]uint64
	execSinceGC int

	stats Stats
}

// New creates an EPaxos replica.
func New(ctx node.Context, cfg Config) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		ctx:         ctx,
		cfg:         cfg,
		peers:       cfg.Cluster.Peers(cfg.ID),
		n:           cfg.Cluster.N(),
		rows:        make(map[ids.ID]map[uint64]*instance),
		nextOwn:     1,
		lastWrite:   make(map[uint64]map[ids.ID]uint64),
		lastOp:      make(map[uint64]map[ids.ID]uint64),
		maxSeqWrite: make(map[uint64]uint64),
		maxSeqAny:   make(map[uint64]uint64),
		store:       kvstore.New(),
		pendingExec: make(map[wire.InstRef]bool),
		gcFloor:     make(map[ids.ID]uint64),
	}
	r.fastQ = quorum.FastQuorumSize(r.n) - 1 // acks beyond self
	if r.fastQ < 0 {
		r.fastQ = 0
	}
	r.slowQ = quorum.MajoritySize(r.n) - 1
	return r
}

// Start is a no-op (EPaxos has no leader to establish); it exists for
// interface symmetry with the other protocols.
func (r *Replica) Start() {}

// ID returns this replica's identity.
func (r *Replica) ID() ids.ID { return r.cfg.ID }

// Store exposes the replicated state machine.
func (r *Replica) Store() *kvstore.Store { return r.store }

// Stats returns a copy of the event counters.
func (r *Replica) Stats() Stats { return r.stats }

func (r *Replica) inst(ref wire.InstRef) *instance {
	row, ok := r.rows[ref.Replica]
	if !ok {
		row = make(map[uint64]*instance)
		r.rows[ref.Replica] = row
	}
	in, ok := row[ref.Slot]
	if !ok {
		in = &instance{}
		row[ref.Slot] = in
		r.live++
	}
	return in
}

// scanCost is the interference-scan charge over the live working set,
// capped so a pathological backlog cannot stall virtual time entirely.
func (r *Replica) scanCost() time.Duration {
	n := r.live
	if n > 2000 {
		n = 2000
	}
	return time.Duration(n) * r.cfg.ScanWork
}

func (r *Replica) lookup(ref wire.InstRef) *instance {
	if row, ok := r.rows[ref.Replica]; ok {
		return row[ref.Slot]
	}
	return nil
}

// OnMessage dispatches a delivered message. It implements node.Handler.
func (r *Replica) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.Request:
		r.onRequest(from, v)
	case wire.PreAccept:
		r.onPreAccept(from, v)
	case wire.PreAcceptReply:
		r.onPreAcceptReply(v)
	case wire.Accept:
		r.onAccept(from, v)
	case wire.AcceptReply:
		r.onAcceptReply(v)
	case wire.Commit:
		r.onCommit(v)
	}
}

// ----------------------------------------------------------- attributes --

// attributes computes (seq, deps) for cmd as seen by this replica: deps are
// the latest interfering instances per row, seq exceeds every interfering
// sequence number. Deps are sorted by (replica, slot): the interference
// indexes are Go maps, and leaking their iteration order into messages (and
// from there into dependency-graph traversal order and per-dep CPU charges)
// made equal seeds produce different numbers.
func (r *Replica) attributes(cmd kvstore.Command, except wire.InstRef) (uint64, []wire.InstRef) {
	var deps []wire.InstRef
	source := r.lastWrite[cmd.Key]
	if !cmd.IsRead() {
		source = r.lastOp[cmd.Key] // writes order after reads too
	}
	for rep, slot := range source {
		if rep == except.Replica && slot == except.Slot {
			continue
		}
		deps = append(deps, wire.InstRef{Replica: rep, Slot: slot})
	}
	sortRefs(deps)
	if cmd.IsRead() {
		return r.maxSeqWrite[cmd.Key] + 1, deps
	}
	return r.maxSeqAny[cmd.Key] + 1, deps
}

// sortRefs orders instance references by (replica, slot), in place.
func sortRefs(refs []wire.InstRef) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Replica != refs[j].Replica {
			return refs[i].Replica < refs[j].Replica
		}
		return refs[i].Slot < refs[j].Slot
	})
}

// recordInterference registers (ref, cmd, seq) in the conflict indexes.
func (r *Replica) recordInterference(ref wire.InstRef, cmd kvstore.Command, seq uint64) {
	ops := r.lastOp[cmd.Key]
	if ops == nil {
		ops = make(map[ids.ID]uint64)
		r.lastOp[cmd.Key] = ops
	}
	if ref.Slot > ops[ref.Replica] {
		ops[ref.Replica] = ref.Slot
	}
	if !cmd.IsRead() {
		w := r.lastWrite[cmd.Key]
		if w == nil {
			w = make(map[ids.ID]uint64)
			r.lastWrite[cmd.Key] = w
		}
		if ref.Slot > w[ref.Replica] {
			w[ref.Replica] = ref.Slot
		}
	}
	if seq > r.maxSeqAny[cmd.Key] {
		r.maxSeqAny[cmd.Key] = seq
	}
	if !cmd.IsRead() && seq > r.maxSeqWrite[cmd.Key] {
		r.maxSeqWrite[cmd.Key] = seq
	}
}

// mergeDeps unions b into a.
func mergeDeps(a, b []wire.InstRef) []wire.InstRef {
	for _, d := range b {
		found := false
		for i, e := range a {
			if e.Replica == d.Replica {
				found = true
				if d.Slot > e.Slot {
					a[i].Slot = d.Slot
				}
				break
			}
		}
		if !found {
			a = append(a, d)
		}
	}
	return a
}

func depsEqual(a, b []wire.InstRef) bool {
	if len(a) != len(b) {
		return false
	}
	for _, d := range a {
		ok := false
		for _, e := range b {
			if e == d {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------- fast path --

func (r *Replica) onRequest(from ids.ID, m wire.Request) {
	r.stats.Requests++
	r.ctx.Work(r.cfg.AttrWork + r.scanCost())
	ref := wire.InstRef{Replica: r.cfg.ID, Slot: r.nextOwn}
	r.nextOwn++
	seq, deps := r.attributes(m.Cmd, ref)
	in := r.inst(ref)
	in.cmd = m.Cmd
	in.seq = seq
	in.deps = deps
	in.status = statusPreAccepted
	in.leaderHere = true
	in.client = from
	in.hasClient = true
	in.mergedSeq = seq
	in.mergedDeps = append([]wire.InstRef(nil), deps...)
	r.recordInterference(ref, m.Cmd, seq)

	targets := r.peers
	if r.cfg.Thrifty && r.fastQ < len(targets) {
		targets = targets[:r.fastQ]
	}
	pa := wire.PreAccept{Ballot: ids.NewBallot(0, r.cfg.ID), Inst: ref, Cmd: m.Cmd, Seq: seq, Deps: deps}
	r.ctx.Broadcast(targets, pa)
	if r.fastQ == 0 { // single-node cluster
		r.commitInstance(ref, in, in.seq, in.deps)
	}
}

func (r *Replica) onPreAccept(from ids.ID, m wire.PreAccept) {
	r.ctx.Work(r.cfg.AttrWork + r.scanCost() + time.Duration(len(m.Deps))*r.cfg.DepWork)
	seq, deps := r.attributes(m.Cmd, m.Inst)
	changed := false
	if seq > m.Seq {
		changed = true
	} else {
		seq = m.Seq
	}
	merged := mergeDeps(append([]wire.InstRef(nil), m.Deps...), deps)
	if !depsEqual(merged, m.Deps) {
		changed = true
	}
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		// Already committed (duplicate/stale pre-accept): do not regress.
		return
	}
	in.cmd = m.Cmd
	in.seq = seq
	in.deps = merged
	in.status = statusPreAccepted
	r.recordInterference(m.Inst, m.Cmd, seq)
	r.ctx.Send(from, wire.PreAcceptReply{
		Inst: m.Inst, From: r.cfg.ID, OK: true, Ballot: m.Ballot,
		Seq: seq, Deps: merged, Changed: changed,
	})
}

func (r *Replica) onPreAcceptReply(m wire.PreAcceptReply) {
	in := r.lookup(m.Inst)
	if in == nil || !in.leaderHere || in.status != statusPreAccepted {
		return
	}
	r.ctx.Work(r.cfg.AttrWork + time.Duration(len(m.Deps))*r.cfg.DepWork)
	in.preAcks++
	if m.Changed {
		in.changed = true
	}
	if m.Seq > in.mergedSeq {
		in.mergedSeq = m.Seq
	}
	in.mergedDeps = mergeDeps(in.mergedDeps, m.Deps)
	if in.preAcks < r.fastQ {
		return
	}
	if !in.changed {
		// Fast path: every fast-quorum member agreed with our attributes.
		r.stats.FastPath++
		r.commitInstance(m.Inst, in, in.seq, in.deps)
		return
	}
	// Slow path: fix the merged attributes with a majority Accept round.
	r.stats.SlowPath++
	in.status = statusAccepted
	in.seq = in.mergedSeq
	in.deps = in.mergedDeps
	in.acceptAcks = 0
	acc := wire.Accept{
		Ballot: ids.NewBallot(0, r.cfg.ID), Inst: m.Inst,
		Cmd: in.cmd, Seq: in.seq, Deps: in.deps,
	}
	r.ctx.Broadcast(r.peers, acc)
}

// ---------------------------------------------------------- slow path --

func (r *Replica) onAccept(from ids.ID, m wire.Accept) {
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		return
	}
	in.cmd = m.Cmd
	in.seq = m.Seq
	in.deps = m.Deps
	in.status = statusAccepted
	r.recordInterference(m.Inst, m.Cmd, m.Seq)
	r.ctx.Send(from, wire.AcceptReply{Inst: m.Inst, From: r.cfg.ID, OK: true, Ballot: m.Ballot})
}

func (r *Replica) onAcceptReply(m wire.AcceptReply) {
	in := r.lookup(m.Inst)
	if in == nil || !in.leaderHere || in.status != statusAccepted {
		return
	}
	in.acceptAcks++
	if in.acceptAcks >= r.slowQ {
		r.commitInstance(m.Inst, in, in.seq, in.deps)
	}
}

// ------------------------------------------------------------- commit --

func (r *Replica) commitInstance(ref wire.InstRef, in *instance, seq uint64, deps []wire.InstRef) {
	if in.status >= statusCommitted {
		return
	}
	in.seq = seq
	in.deps = deps
	in.status = statusCommitted
	r.stats.Commits++
	cm := wire.Commit{Inst: ref, Cmd: in.cmd, Seq: seq, Deps: deps}
	r.ctx.Broadcast(r.peers, cm)
	r.pendingExec[ref] = true
	r.tryExecuteAll()
}

func (r *Replica) onCommit(m wire.Commit) {
	r.ctx.Work(time.Duration(len(m.Deps)) * r.cfg.DepWork)
	in := r.inst(m.Inst)
	if in.status >= statusCommitted {
		return
	}
	in.cmd = m.Cmd
	in.seq = m.Seq
	in.deps = m.Deps
	in.status = statusCommitted
	r.stats.Commits++
	r.recordInterference(m.Inst, m.Cmd, m.Seq)
	r.pendingExec[m.Inst] = true
	r.tryExecuteAll()
}

// ---------------------------------------------------------- execution --

// tryExecuteAll attempts to execute every pending committed instance. An
// instance executes once its dependency closure is committed; the closure's
// strongly connected components execute in topological order, components
// internally ordered by (seq, instance id) — the EPaxos execution algorithm.
// Instances whose closure contains uncommitted dependencies stay pending and
// are retried on the next commit or retry tick.
func (r *Replica) tryExecuteAll() {
	// Snapshot and sort the pending set: map iteration order would vary the
	// execution attempt order (and with it ExecVisit CPU charges) between
	// equal-seed runs.
	refs := make([]wire.InstRef, 0, len(r.pendingExec))
	for ref := range r.pendingExec {
		refs = append(refs, ref)
	}
	sortRefs(refs)
	for _, ref := range refs {
		if !r.pendingExec[ref] {
			continue // executed as part of an earlier closure this sweep
		}
		in := r.lookup(ref)
		if in == nil || in.status != statusCommitted {
			delete(r.pendingExec, ref)
			continue
		}
		if !r.executeClosure(ref) {
			r.armRetry()
		}
	}
}

func (r *Replica) armRetry() {
	if r.retryArmed {
		return
	}
	r.retryArmed = true
	r.ctx.After(r.cfg.ExecRetryInterval, func() {
		r.retryArmed = false
		r.tryExecuteAll()
	})
}

// executeClosure runs Tarjan's SCC over the committed dependency graph
// reachable from root and executes finished components. It returns false if
// an uncommitted dependency blocks the closure.
func (r *Replica) executeClosure(root wire.InstRef) bool {
	t := &tarjan{r: r, index: make(map[wire.InstRef]int), low: make(map[wire.InstRef]int), onStack: make(map[wire.InstRef]bool)}
	ok := t.strongConnect(root)
	if !ok {
		r.stats.Blocked++
		return false
	}
	for _, comp := range t.components {
		sortComponent(comp, r)
		for _, ref := range comp {
			in := r.lookup(ref)
			if in.status == statusExecuted {
				continue
			}
			r.execute(ref, in)
		}
	}
	return true
}

func (r *Replica) execute(ref wire.InstRef, in *instance) {
	res := r.store.Apply(in.cmd)
	in.status = statusExecuted
	r.live--
	r.stats.Executions++
	r.ctx.Work(r.cfg.ExecWork)
	delete(r.pendingExec, ref)
	r.execSinceGC++
	if r.cfg.GCEvery > 0 && r.execSinceGC >= r.cfg.GCEvery {
		r.execSinceGC = 0
		r.gc()
	}
	if in.hasClient {
		in.hasClient = false
		r.ctx.Send(in.client, wire.Reply{
			ClientID: in.cmd.ClientID,
			Seq:      in.cmd.Seq,
			OK:       true,
			Exists:   res.Exists,
			Value:    res.Value,
			Leader:   r.cfg.ID,
			Slot:     ref.Slot,
		})
	}
}

// tarjan is an iterative-enough Tarjan SCC restricted to committed
// instances; hitting an uncommitted instance aborts the traversal.
type tarjan struct {
	r          *Replica
	index      map[wire.InstRef]int
	low        map[wire.InstRef]int
	stack      []wire.InstRef
	onStack    map[wire.InstRef]bool
	next       int
	components [][]wire.InstRef
}

func (t *tarjan) strongConnect(v wire.InstRef) bool {
	in := t.r.lookup(v)
	if in == nil {
		if v.Slot <= t.r.gcFloor[v.Replica] {
			return true // collected ⇒ executed long ago: a sink
		}
		return false // unknown dependency blocks execution
	}
	if in.status < statusCommitted {
		return false // uncommitted dependency blocks execution
	}
	t.r.stats.ExecVisits++
	t.r.ctx.Work(t.r.cfg.ExecVisitWork)
	if in.status == statusExecuted {
		return true // executed nodes are sinks; no edges out matter
	}
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.onStack[v] = true

	for _, w := range in.deps {
		win := t.r.lookup(w)
		if win != nil && win.status == statusExecuted {
			continue
		}
		if _, seen := t.index[w]; !seen {
			if !t.strongConnect(w) {
				return false
			}
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.onStack[w] {
			if t.index[w] < t.low[v] {
				t.low[v] = t.index[w]
			}
		}
	}

	if t.low[v] == t.index[v] {
		var comp []wire.InstRef
		for {
			n := len(t.stack) - 1
			w := t.stack[n]
			t.stack = t.stack[:n]
			t.onStack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		t.components = append(t.components, comp)
	}
	return true
}

// gc removes executed prefixes of every instance row, advancing the row's
// floor so later dependency checks treat collected slots as executed. Only
// contiguous executed prefixes are collected (a hole means some older
// instance is still live).
func (r *Replica) gc() {
	for rep, row := range r.rows {
		floor := r.gcFloor[rep]
		for {
			in, ok := row[floor+1]
			if !ok || in.status != statusExecuted {
				break
			}
			delete(row, floor+1)
			floor++
		}
		r.gcFloor[rep] = floor
	}
	r.stats.GCs++
}

// sortComponent orders an SCC by (seq, replica, slot) — the deterministic
// tie-break every replica applies identically.
func sortComponent(comp []wire.InstRef, r *Replica) {
	for i := 1; i < len(comp); i++ {
		for j := i; j > 0; j-- {
			a, b := r.lookup(comp[j-1]), r.lookup(comp[j])
			if less(b, comp[j], a, comp[j-1]) {
				comp[j-1], comp[j] = comp[j], comp[j-1]
			} else {
				break
			}
		}
	}
}

func less(a *instance, ar wire.InstRef, b *instance, br wire.InstRef) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if ar.Replica != br.Replica {
		return ar.Replica < br.Replica
	}
	return ar.Slot < br.Slot
}
