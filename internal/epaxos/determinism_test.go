package epaxos

import (
	"reflect"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

// loadClient drives a closed-loop contended workload against one replica,
// recording replies (the deterministic stand-in for the harness clients).
type loadClient struct {
	ep      *netsim.Endpoint
	target  ids.ID
	id      uint64
	seq     uint64
	ops     int
	replies int
}

func (c *loadClient) next() {
	if c.replies >= c.ops {
		return
	}
	c.seq++
	// Two hot keys so interference (and dependency growth) is guaranteed.
	cmd := kvstore.Command{Op: kvstore.Put, Key: c.seq % 2, Value: []byte{byte(c.id), byte(c.seq)}, ClientID: c.id, Seq: c.seq}
	if c.seq%3 == 0 {
		cmd = kvstore.Command{Op: kvstore.Get, Key: c.seq % 2, ClientID: c.id, Seq: c.seq}
	}
	c.ep.Send(c.target, wire.Request{Cmd: cmd})
}

func (c *loadClient) OnMessage(from ids.ID, m wire.Msg) {
	if r, ok := m.(wire.Reply); ok && r.Seq == c.seq {
		c.replies++
		c.next()
	}
}

// determinismRun executes a fixed contended workload and returns everything
// timing-sensitive: per-replica stats, store checksums, and the network
// counters.
func determinismRun(seed int64) (map[ids.ID]Stats, map[ids.ID]uint64, uint64, uint64) {
	sim := des.New(seed)
	cc := config.NewLAN(5)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	replicas := make(map[ids.ID]*Replica)
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		r := New(ep, Config{Cluster: cc, ID: id})
		tr.h = r.OnMessage
		replicas[id] = r
	}
	for i, id := range cc.Nodes {
		cl := &loadClient{target: id, id: uint64(i + 1), ops: 40}
		cl.ep = net.Register(ids.NewID(999, i+1), cl, true)
		sim.Schedule(time.Duration(i)*20*time.Microsecond, cl.next)
	}
	sim.Run(2 * time.Second)
	stats := make(map[ids.ID]Stats)
	sums := make(map[ids.ID]uint64)
	for _, id := range cc.Nodes {
		stats[id] = replicas[id].Stats()
		sums[id] = replicas[id].Store().Checksum()
	}
	return stats, sums, net.MessagesSent(), net.MessagesDelivered()
}

// Regression for the fig8 map-order nondeterminism: EPaxos dependency sets
// and execution sweeps came from Go map iteration, so equal seeds produced
// different CPU charges and different numbers. With sorted deps and a sorted
// pending-execution sweep, two runs at one seed must agree on every counter.
func TestSeedDeterminismUnderContention(t *testing.T) {
	stats1, sums1, sent1, del1 := determinismRun(17)
	for run := 0; run < 3; run++ {
		stats2, sums2, sent2, del2 := determinismRun(17)
		if !reflect.DeepEqual(stats1, stats2) {
			t.Fatalf("same seed gave different stats:\n%v\n%v", stats1, stats2)
		}
		if !reflect.DeepEqual(sums1, sums2) {
			t.Fatalf("same seed gave different final states")
		}
		if sent1 != sent2 || del1 != del2 {
			t.Fatalf("same seed gave different message counts: %d/%d vs %d/%d", sent1, del1, sent2, del2)
		}
	}
}

// Dependency sets on the wire are sorted by (replica, slot) — the property
// the determinism fix relies on.
func TestAttributesSortedDeps(t *testing.T) {
	sim := des.New(1)
	cc := config.NewLAN(5)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	var preAccepts []wire.PreAccept
	for i, id := range cc.Nodes {
		i := i
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		r := New(ep, Config{Cluster: cc, ID: id})
		tr.h = func(from ids.ID, m wire.Msg) {
			if pa, ok := m.(wire.PreAccept); ok && i == 1 {
				preAccepts = append(preAccepts, pa)
			}
			r.OnMessage(from, m)
		}
	}
	cl := &testClient{}
	cl.ep = net.Register(ids.NewID(999, 1), cl, true)
	// Seed interference on one key from several rows, then issue a command
	// whose deps must span multiple rows.
	for i, id := range cc.Nodes {
		cmd := kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte{1}, ClientID: uint64(i + 1), Seq: 1}
		func(to ids.ID, c kvstore.Command) {
			sim.Schedule(time.Duration(i)*5*time.Millisecond, func() { cl.ep.Send(to, wire.Request{Cmd: c}) })
		}(id, cmd)
	}
	sim.Run(100 * time.Millisecond)
	if len(preAccepts) == 0 {
		t.Fatal("no PreAccepts observed")
	}
	multi := 0
	for _, pa := range preAccepts {
		if len(pa.Deps) > 1 {
			multi++
		}
		for i := 1; i < len(pa.Deps); i++ {
			a, b := pa.Deps[i-1], pa.Deps[i]
			if a.Replica > b.Replica || (a.Replica == b.Replica && a.Slot >= b.Slot) {
				t.Fatalf("unsorted deps on the wire: %v", pa.Deps)
			}
		}
	}
	if multi == 0 {
		t.Fatal("workload never produced a multi-row dependency set; test is vacuous")
	}
}
