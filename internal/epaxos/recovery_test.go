package epaxos

import (
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

// assertLiveConverged asserts that every live (non-crashed) replica ended
// with the same store contents and no unexecuted instances.
func assertLiveConverged(t *testing.T, tc *cluster, skip map[ids.ID]bool) {
	t.Helper()
	var want uint64
	var wantApplied uint64
	first := true
	for _, id := range tc.cfg.Nodes {
		if skip[id] {
			continue
		}
		r := tc.replicas[id]
		if first {
			want, wantApplied, first = r.Store().Checksum(), r.Store().Applied(), false
			continue
		}
		if r.Store().Checksum() != want || r.Store().Applied() != wantApplied {
			t.Errorf("%v diverged: applied %d (want %d)", id, r.Store().Applied(), wantApplied)
		}
	}
	for _, id := range tc.cfg.Nodes {
		if skip[id] {
			continue
		}
		if n := tc.replicas[id].Unexecuted(); n != 0 {
			t.Errorf("%v left %d unexecuted instances", id, n)
		}
	}
}

// Command-leader crash mid-pre-accept: the leader fans out PreAccepts and
// dies before processing a single reply. The client retries at another
// replica; the orphaned instance is finished by Explicit Prepare (the
// retry's dependency blocks on it), and the session table keeps the retried
// command at-most-once.
func TestRecoveryLeaderCrashMidPreAccept(t *testing.T) {
	tc := newCluster(t, 5, nil)
	leader := tc.cfg.Nodes[0]
	// The request reaches the leader at ~0 and PreAccepts fan out
	// immediately; replies need a full round trip, so a crash at 400µs
	// lands between the fan-out and the first reply.
	cmd := kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("orig"), ClientID: 1, Seq: 1}
	tc.send(0, leader, cmd)
	tc.sim.Schedule(400*time.Microsecond, func() { tc.net.Crash(leader) })
	// Client retry to the next replica after silence.
	tc.send(100*time.Millisecond, tc.cfg.Nodes[1], cmd)
	tc.sim.Run(2 * time.Second)

	if len(tc.client.replies) == 0 {
		t.Fatal("retried command was never acknowledged")
	}
	for _, rep := range tc.client.replies {
		if !rep.OK || rep.Seq != 1 {
			t.Errorf("bad reply: %+v", rep)
		}
	}
	skip := map[ids.ID]bool{leader: true}
	assertLiveConverged(t, tc, skip)
	// The write must have been applied exactly once on the survivors.
	for _, id := range tc.cfg.Nodes[1:] {
		if v, ok := tc.replicas[id].Store().Get(1); !ok || string(v) != "orig" {
			t.Errorf("%v: key 1 = %q, want \"orig\"", id, v)
		}
		if a := tc.replicas[id].Store().Applied(); a != 1 {
			t.Errorf("%v applied %d commands, want exactly 1 (at-most-once)", id, a)
		}
	}
	rec := uint64(0)
	for _, id := range tc.cfg.Nodes[1:] {
		rec += tc.replicas[id].Stats().Recoveries
	}
	if rec == 0 {
		t.Error("no Explicit Prepare recovery ran")
	}
}

// Command-leader crash mid-accept (slow path): replicas hold an accepted
// value when the leader dies. Recovery must finish the instance with
// exactly that value — the classic highest-accept-ballot rule.
func TestRecoveryLeaderCrashMidAccept(t *testing.T) {
	tc := newCluster(t, 5, nil)
	dead := tc.cfg.Nodes[4]
	ref := wire.InstRef{Replica: dead, Slot: 1}
	cmd := kvstore.Command{Op: kvstore.Put, Key: 9, Value: []byte("accepted"), ClientID: 7, Seq: 1}
	// The (about to die) command leader got far enough to place Accepts at
	// two replicas, then crashed before committing.
	tc.sim.Schedule(0, func() {
		acc := wire.Accept{Ballot: ids.NewBallot(0, dead), Inst: ref, Cmd: cmd, Seq: 3}
		tc.replicas[tc.cfg.Nodes[0]].OnMessage(dead, acc)
		tc.replicas[tc.cfg.Nodes[1]].OnMessage(dead, acc)
		tc.net.Crash(dead)
	})
	// An interfering command commits and blocks on the accepted instance,
	// driving recovery.
	tc.send(5*time.Millisecond, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 9, Value: []byte("later"), ClientID: 7, Seq: 2})
	tc.sim.Run(2 * time.Second)

	skip := map[ids.ID]bool{dead: true}
	assertLiveConverged(t, tc, skip)
	r0 := tc.replicas[tc.cfg.Nodes[0]]
	if a := r0.Store().Applied(); a != 2 {
		t.Fatalf("applied %d, want 2 (accepted value recovered + dependent)", a)
	}
	// The accepted write (seq 3) must order before the dependent (higher
	// seq), leaving "later" as the final value — and the accepted value
	// must have been applied, not replaced by a no-op.
	if v, _ := r0.Store().Get(9); string(v) != "later" {
		t.Errorf("final value %q, want \"later\"", v)
	}
	noops := uint64(0)
	for _, id := range tc.cfg.Nodes[:4] {
		noops += tc.replicas[id].Stats().Noops
	}
	if noops != 0 {
		t.Errorf("recovery replaced an accepted value with %d no-ops", noops)
	}
}

// A command leader that crashes before any PreAccept escapes leaves an
// instance nobody else knows. Recovery must anchor it as a no-op so
// dependents execute, not wait forever.
func TestRecoveryNoopWhenNobodyKnows(t *testing.T) {
	tc := newCluster(t, 3, nil)
	r := tc.replicas[tc.cfg.Nodes[0]]
	ghost := wire.InstRef{Replica: tc.cfg.Nodes[2], Slot: 1}
	tc.sim.Schedule(0, func() {
		// A committed instance depending on a ghost instance that exists
		// nowhere (its would-be owner never sent a thing and stays dead).
		tc.net.Crash(tc.cfg.Nodes[2])
		r.OnMessage(tc.cfg.Nodes[1], wire.Commit{
			Inst: wire.InstRef{Replica: tc.cfg.Nodes[1], Slot: 1},
			Cmd:  kvstore.Command{Op: kvstore.Put, Key: 3, Value: []byte("x"), ClientID: 1, Seq: 1},
			Seq:  2,
			Deps: []wire.InstRef{ghost},
		})
	})
	tc.sim.Run(2 * time.Second)
	if r.Store().Applied() != 1 {
		t.Fatalf("dependent never executed (applied=%d): no-op recovery failed", r.Store().Applied())
	}
	if r.Stats().Noops == 0 {
		t.Error("ghost instance was not anchored as a no-op")
	}
	if n := r.Unexecuted(); n != 0 {
		t.Errorf("%d instances left unexecuted", n)
	}
}

// A replica cut off while a commit goes out misses it; the committed-floor
// gossip plus Explicit Prepare teach it back after the link heals.
func TestRecoveryLostCommitTeachBack(t *testing.T) {
	tc := newCluster(t, 5, nil)
	straggler := tc.cfg.Nodes[4]
	// Total loss toward the straggler while the command commits.
	tc.sim.Schedule(0, func() {
		for _, id := range tc.cfg.Nodes[:4] {
			tc.net.SetLinkFaults(id, straggler, netsim.LinkFaults{Loss: 1})
		}
	})
	tc.send(time.Millisecond, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 5, Value: []byte("v"), ClientID: 1, Seq: 1})
	tc.sim.Schedule(100*time.Millisecond, func() { tc.net.ClearLinkFaults() })
	tc.sim.Run(2 * time.Second)

	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatalf("replies: %+v", tc.client.replies)
	}
	assertLiveConverged(t, tc, nil)
	if v, ok := tc.replicas[straggler].Store().Get(5); !ok || string(v) != "v" {
		t.Errorf("straggler never learned the committed write (got %q)", v)
	}
}

// A duplicated client retry through a second command leader commits a
// second instance; the replicated session table suppresses the second
// execution on every replica and re-serves the cached reply.
func TestSessionDuplicateRetrySecondLeader(t *testing.T) {
	tc := newCluster(t, 5, nil)
	cmd := kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("once"), ClientID: 9, Seq: 1}
	tc.send(0, tc.cfg.Nodes[0], cmd)
	tc.send(0, tc.cfg.Nodes[1], cmd) // concurrent retry at another leader
	tc.sim.Run(time.Second)

	if len(tc.client.replies) == 0 {
		t.Fatal("no reply")
	}
	for _, rep := range tc.client.replies {
		if !rep.OK || rep.Seq != 1 {
			t.Errorf("bad reply: %+v", rep)
		}
	}
	dups := uint64(0)
	for _, id := range tc.cfg.Nodes {
		r := tc.replicas[id]
		if a := r.Store().Applied(); a != 1 {
			t.Errorf("%v applied %d, want exactly 1", id, a)
		}
		dups += r.Stats().Duplicates
	}
	if dups == 0 {
		t.Error("session table never deduplicated")
	}
	assertLiveConverged(t, tc, nil)
}

// A duplicated retry to the same command leader must refresh the route, not
// open a second instance.
func TestSessionDuplicateRetrySameLeader(t *testing.T) {
	tc := newCluster(t, 5, nil)
	cmd := kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("once"), ClientID: 9, Seq: 1}
	tc.send(0, tc.cfg.Nodes[0], cmd)
	tc.send(100*time.Microsecond, tc.cfg.Nodes[0], cmd)
	tc.sim.Run(time.Second)
	r := tc.replicas[tc.cfg.Nodes[0]]
	if r.Stats().Requests != 1 {
		t.Errorf("retry to the same leader admitted %d instances, want 1", r.Stats().Requests)
	}
	if r.Stats().Duplicates == 0 {
		t.Error("duplicate admission not counted")
	}
	if a := r.Store().Applied(); a != 1 {
		t.Errorf("applied %d, want 1", a)
	}
}

// An executed duplicate answered from the session cache: the retry arrives
// after the original executed.
func TestSessionCachedReplyAfterExecution(t *testing.T) {
	tc := newCluster(t, 5, nil)
	cmd := kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("once"), ClientID: 9, Seq: 1}
	tc.send(0, tc.cfg.Nodes[0], cmd)
	tc.send(200*time.Millisecond, tc.cfg.Nodes[0], cmd) // long after execution
	tc.sim.Run(time.Second)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d, want 2 (original + cached)", len(tc.client.replies))
	}
	if a := tc.replicas[tc.cfg.Nodes[0]].Store().Applied(); a != 1 {
		t.Errorf("applied %d, want 1", a)
	}
}

// Probabilistic loss on every link: retransmits (not client retries — there
// is no client retry here) must carry every instance to commit.
func TestRetransmitsMaskLinkLoss(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.sim.Schedule(0, func() {
		// Replica-to-replica loss only: a lost client Request is the
		// client retry's job, not the protocol's.
		for _, a := range tc.cfg.Nodes {
			for _, b := range tc.cfg.Nodes {
				if a != b {
					tc.net.SetLinkFaults(a, b, netsim.LinkFaults{Loss: 0.25})
				}
			}
		}
	})
	const n = 10
	for i := 0; i < n; i++ {
		tc.send(time.Duration(i)*10*time.Millisecond, tc.cfg.Nodes[i%5],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Schedule(300*time.Millisecond, func() { tc.net.ClearLinkFaults() })
	tc.sim.Run(3 * time.Second)
	assertLiveConverged(t, tc, nil)
	for _, id := range tc.cfg.Nodes {
		if a := tc.replicas[id].Store().Applied(); a != n {
			t.Errorf("%v applied %d, want %d", id, a, n)
		}
	}
	retr := uint64(0)
	for _, id := range tc.cfg.Nodes {
		retr += tc.replicas[id].Stats().Retransmits
	}
	if retr == 0 {
		t.Error("25%% loss produced zero retransmits — the sweep is not working")
	}
}

// A recovered (restarted) command leader resumes its own stuck instances:
// the sweep chain dies while crashed and must resurrect on first contact.
func TestCrashedLeaderResumesAfterRecovery(t *testing.T) {
	tc := newCluster(t, 5, nil)
	leader := tc.cfg.Nodes[0]
	cmd := kvstore.Command{Op: kvstore.Put, Key: 4, Value: []byte("w"), ClientID: 3, Seq: 1}
	tc.send(0, leader, cmd)
	// Crash after the PreAccept fan-out but before replies process; bring
	// the leader back later with its state intact.
	tc.sim.Schedule(400*time.Microsecond, func() { tc.net.Crash(leader) })
	tc.sim.Schedule(500*time.Millisecond, func() { tc.net.Recover(leader) })
	tc.sim.Run(3 * time.Second)
	assertLiveConverged(t, tc, nil)
	for _, id := range tc.cfg.Nodes {
		if v, ok := tc.replicas[id].Store().Get(4); !ok || string(v) != "w" {
			t.Errorf("%v: key 4 = %q, want \"w\"", id, v)
		}
	}
}
