package epaxos

import (
	"fmt"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/wire"
)

type testClient struct {
	ep      *netsim.Endpoint
	replies []wire.Reply
}

func (c *testClient) OnMessage(from ids.ID, m wire.Msg) {
	if r, ok := m.(wire.Reply); ok {
		c.replies = append(c.replies, r)
	}
}

type trampoline struct{ h func(from ids.ID, m wire.Msg) }

func (tr *trampoline) OnMessage(from ids.ID, m wire.Msg) { tr.h(from, m) }

type cluster struct {
	sim      *des.Sim
	net      *netsim.Network
	cfg      config.Cluster
	replicas map[ids.ID]*Replica
	client   *testClient
}

func newCluster(t *testing.T, n int, mut func(*Config)) *cluster {
	t.Helper()
	sim := des.New(13)
	cc := config.NewLAN(n)
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	tc := &cluster{sim: sim, net: net, cfg: cc, replicas: make(map[ids.ID]*Replica)}
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		cfg := Config{Cluster: cc, ID: id}
		if mut != nil {
			mut(&cfg)
		}
		r := New(ep, cfg)
		tr.h = r.OnMessage
		tc.replicas[id] = r
	}
	cl := &testClient{}
	cl.ep = net.Register(ids.NewID(999, 1), cl, true)
	tc.client = cl
	// Start replicas in membership order, as the harness does: Start arms
	// the retransmit/recovery sweep.
	sim.Schedule(0, func() {
		for _, id := range cc.Nodes {
			tc.replicas[id].Start()
		}
	})
	return tc
}

func (tc *cluster) send(at time.Duration, to ids.ID, cmd kvstore.Command) {
	tc.sim.Schedule(at, func() { tc.client.ep.Send(to, wire.Request{Cmd: cmd}) })
}

func TestSingleCommandFastPath(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("a"), ClientID: 1, Seq: 1})
	tc.sim.Run(50 * time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatalf("replies: %+v", tc.client.replies)
	}
	if tc.replicas[tc.cfg.Nodes[0]].Stats().FastPath != 1 {
		t.Error("a conflict-free command must take the fast path")
	}
}

func TestAnyReplicaServes(t *testing.T) {
	tc := newCluster(t, 5, nil)
	for i, id := range tc.cfg.Nodes {
		tc.send(time.Duration(i)*time.Millisecond, id,
			kvstore.Command{Op: kvstore.Put, Key: uint64(100 + i), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(200 * time.Millisecond)
	if len(tc.client.replies) != 5 {
		t.Fatalf("replies = %d, want 5 (one per replica)", len(tc.client.replies))
	}
	for _, rep := range tc.client.replies {
		if !rep.OK {
			t.Errorf("reply not OK: %+v", rep)
		}
	}
}

func TestConflictTakesSlowPathAndConverges(t *testing.T) {
	tc := newCluster(t, 5, nil)
	// Two writes to the same key from different replicas at the same
	// instant: they interfere, at least one sees changed attributes.
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("from-1"), ClientID: 1, Seq: 1})
	tc.send(0, tc.cfg.Nodes[1], kvstore.Command{Op: kvstore.Put, Key: 7, Value: []byte("from-2"), ClientID: 2, Seq: 1})
	tc.sim.Run(200 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	// All replicas must agree on the final value of key 7.
	var vals []string
	for _, id := range tc.cfg.Nodes {
		v, ok := tc.replicas[id].Store().Get(7)
		if !ok {
			t.Fatalf("%v missing key 7", id)
		}
		vals = append(vals, string(v))
	}
	for _, v := range vals[1:] {
		if v != vals[0] {
			t.Fatalf("replicas disagree on final value: %v", vals)
		}
	}
	slow := uint64(0)
	for _, r := range tc.replicas {
		slow += r.Stats().SlowPath
	}
	if slow == 0 {
		t.Error("simultaneous conflicting writes should force at least one slow path")
	}
}

func TestAllReplicasExecuteEverything(t *testing.T) {
	tc := newCluster(t, 5, nil)
	const n = 30
	for i := 0; i < n; i++ {
		leader := tc.cfg.Nodes[i%5]
		tc.send(time.Duration(i)*500*time.Microsecond, leader,
			kvstore.Command{Op: kvstore.Put, Key: uint64(i % 3), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(time.Second)
	if len(tc.client.replies) != n {
		t.Fatalf("replies = %d, want %d", len(tc.client.replies), n)
	}
	// Deterministic execution order ⇒ identical state everywhere.
	want := tc.replicas[tc.cfg.Nodes[0]].Store().Checksum()
	for _, id := range tc.cfg.Nodes {
		r := tc.replicas[id]
		if r.Store().Applied() != n {
			t.Errorf("%v executed %d of %d", id, r.Store().Applied(), n)
		}
		if r.Store().Checksum() != want {
			t.Errorf("%v diverged", id)
		}
	}
}

func TestReadObservesPriorWrite(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 5, Value: []byte("w"), ClientID: 1, Seq: 1})
	// Read goes to a different replica after the write committed.
	tc.send(20*time.Millisecond, tc.cfg.Nodes[3], kvstore.Command{Op: kvstore.Get, Key: 5, ClientID: 1, Seq: 2})
	tc.sim.Run(200 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	var read *wire.Reply
	for i := range tc.client.replies {
		if tc.client.replies[i].Seq == 2 {
			read = &tc.client.replies[i]
		}
	}
	if read == nil || !read.Exists || string(read.Value) != "w" {
		t.Errorf("read after write: %+v", read)
	}
}

func TestReadsDoNotConflict(t *testing.T) {
	tc := newCluster(t, 5, nil)
	// Seed a value, then concurrent reads from different replicas: all
	// fast path (reads interfere only with writes).
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 9, Value: []byte("v"), ClientID: 1, Seq: 1})
	for i := 0; i < 4; i++ {
		tc.send(30*time.Millisecond, tc.cfg.Nodes[i+1], kvstore.Command{Op: kvstore.Get, Key: 9, ClientID: 1, Seq: uint64(i + 2)})
	}
	tc.sim.Run(300 * time.Millisecond)
	slowAfterWrite := uint64(0)
	for _, r := range tc.replicas {
		slowAfterWrite += r.Stats().SlowPath
	}
	if slowAfterWrite != 0 {
		t.Errorf("concurrent reads forced %d slow paths, want 0", slowAfterWrite)
	}
	if len(tc.client.replies) != 5 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
}

func TestExecutionBlocksOnMissingDep(t *testing.T) {
	// Craft a commit whose dependency never commits: execution must stay
	// blocked, not apply out of order.
	tc := newCluster(t, 3, nil)
	r := tc.replicas[tc.cfg.Nodes[0]]
	tc.sim.Schedule(0, func() {
		r.OnMessage(tc.cfg.Nodes[1], wire.Commit{
			Inst: wire.InstRef{Replica: tc.cfg.Nodes[1], Slot: 5},
			Cmd:  kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x")},
			Seq:  2,
			Deps: []wire.InstRef{{Replica: tc.cfg.Nodes[2], Slot: 1}}, // never commits
		})
	})
	tc.sim.Run(50 * time.Millisecond)
	if r.Store().Applied() != 0 {
		t.Error("instance with uncommitted dependency must not execute")
	}
	if r.Stats().Blocked == 0 {
		t.Error("blocked execution attempts should be counted")
	}
	// Now commit the dependency: both must execute.
	tc.sim.Schedule(0, func() {
		r.OnMessage(tc.cfg.Nodes[2], wire.Commit{
			Inst: wire.InstRef{Replica: tc.cfg.Nodes[2], Slot: 1},
			Cmd:  kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("dep")},
			Seq:  1,
		})
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if r.Store().Applied() != 2 {
		t.Errorf("applied %d, want 2 after dependency commits", r.Store().Applied())
	}
	// Dependency (seq 1) executes before dependent (seq 2).
	if v, _ := r.Store().Get(1); string(v) != "x" {
		t.Errorf("final value %q, want \"x\" (dependent last)", v)
	}
}

func TestCyclicDependenciesExecuteBySeq(t *testing.T) {
	// Two instances depending on each other (an SCC): execution orders by
	// seq and proceeds — EPaxos' hallmark case.
	tc := newCluster(t, 3, nil)
	r := tc.replicas[tc.cfg.Nodes[0]]
	a := wire.InstRef{Replica: tc.cfg.Nodes[1], Slot: 1}
	b := wire.InstRef{Replica: tc.cfg.Nodes[2], Slot: 1}
	tc.sim.Schedule(0, func() {
		r.OnMessage(tc.cfg.Nodes[1], wire.Commit{
			Inst: a, Cmd: kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("A")}, Seq: 2,
			Deps: []wire.InstRef{b},
		})
		r.OnMessage(tc.cfg.Nodes[2], wire.Commit{
			Inst: b, Cmd: kvstore.Command{Op: kvstore.Put, Key: 2, Value: []byte("B")}, Seq: 1,
			Deps: []wire.InstRef{a},
		})
	})
	tc.sim.Run(50 * time.Millisecond)
	if r.Store().Applied() != 2 {
		t.Fatalf("cycle did not execute: applied=%d", r.Store().Applied())
	}
	// seq 1 (B) first, then seq 2 (A) → final value "A".
	if v, _ := r.Store().Get(2); string(v) != "A" {
		t.Errorf("final = %q, want A (higher seq last)", v)
	}
}

func TestThriftyUsesFewerMessages(t *testing.T) {
	count := func(thrifty bool) uint64 {
		tc := newCluster(t, 7, func(c *Config) { c.Thrifty = thrifty })
		for i := 0; i < 10; i++ {
			tc.send(time.Duration(i)*time.Millisecond, tc.cfg.Nodes[0],
				kvstore.Command{Op: kvstore.Put, Key: uint64(i), ClientID: 1, Seq: uint64(i + 1)})
		}
		tc.sim.Run(300 * time.Millisecond)
		if len(tc.client.replies) != 10 {
			t.Fatalf("thrifty=%v replies=%d", thrifty, len(tc.client.replies))
		}
		return tc.net.MessagesSent()
	}
	if th, full := count(true), count(false); th >= full {
		t.Errorf("thrifty=%d should be < full=%d", th, full)
	}
}

func TestHighConflictStillLinearizesPerKey(t *testing.T) {
	// Hammer one key from all replicas; every replica must converge to
	// the same final value even through SCC execution.
	tc := newCluster(t, 5, nil)
	const n = 25
	for i := 0; i < n; i++ {
		tc.send(time.Duration(i)*200*time.Microsecond, tc.cfg.Nodes[i%5],
			kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte(fmt.Sprintf("v%02d", i)), ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(2 * time.Second)
	if len(tc.client.replies) != n {
		t.Fatalf("replies = %d, want %d", len(tc.client.replies), n)
	}
	first, _ := tc.replicas[tc.cfg.Nodes[0]].Store().Get(1)
	for _, id := range tc.cfg.Nodes[1:] {
		v, _ := tc.replicas[id].Store().Get(1)
		if string(v) != string(first) {
			t.Fatalf("replicas disagree: %q vs %q", first, v)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	tc := newCluster(t, 5, nil)
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
	tc.sim.Run(100 * time.Millisecond)
	st := tc.replicas[tc.cfg.Nodes[0]].Stats()
	if st.Requests != 1 || st.Commits == 0 || st.Executions == 0 || st.ExecVisits == 0 {
		t.Errorf("stats not tracked: %+v", st)
	}
}

func TestInstanceGC(t *testing.T) {
	tc := newCluster(t, 3, func(c *Config) { c.GCEvery = 10 })
	const n = 60
	for i := 0; i < n; i++ {
		tc.send(time.Duration(i)*time.Millisecond, tc.cfg.Nodes[i%3],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i % 2), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(2 * time.Second)
	if len(tc.client.replies) != n {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	r := tc.replicas[tc.cfg.Nodes[0]]
	if r.Stats().GCs == 0 {
		t.Fatal("GC never ran")
	}
	// The instance space must be bounded well below the executed total.
	remaining := 0
	for _, row := range r.rows {
		remaining += len(row)
	}
	if remaining >= n {
		t.Errorf("instance space holds %d entries after GC, want < %d", remaining, n)
	}
	// Correctness must hold across GC: all replicas converged.
	want := r.Store().Checksum()
	for _, id := range tc.cfg.Nodes[1:] {
		if tc.replicas[id].Store().Checksum() != want {
			t.Error("replicas diverged after GC")
		}
	}
}

func TestGCFloorSatisfiesDependencies(t *testing.T) {
	// A new command depending on a GC'd instance must execute (collected
	// implies executed), not block forever.
	tc := newCluster(t, 3, func(c *Config) { c.GCEvery = 1 })
	r := tc.replicas[tc.cfg.Nodes[0]]
	a := wire.InstRef{Replica: tc.cfg.Nodes[1], Slot: 1}
	tc.sim.Schedule(0, func() {
		r.OnMessage(tc.cfg.Nodes[1], wire.Commit{
			Inst: a, Cmd: kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x")}, Seq: 1,
		})
	})
	tc.sim.Run(10 * time.Millisecond)
	if r.Stats().Executions != 1 {
		t.Fatal("seed instance did not execute")
	}
	// After GCEvery=1, instance a is collected. A dependent commit must
	// still execute.
	tc.sim.Schedule(0, func() {
		r.OnMessage(tc.cfg.Nodes[2], wire.Commit{
			Inst: wire.InstRef{Replica: tc.cfg.Nodes[2], Slot: 1},
			Cmd:  kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("y")}, Seq: 2,
			Deps: []wire.InstRef{a},
		})
	})
	tc.sim.Run(tc.sim.Now() + 50*time.Millisecond)
	if r.Store().Applied() != 2 {
		t.Fatalf("dependent on GC'd instance blocked: applied=%d", r.Store().Applied())
	}
}
