package pigpaxos

import (
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/des"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/wire"
)

type testClient struct {
	sim     *des.Sim
	ep      *netsim.Endpoint
	replies []wire.Reply
	busy    int
	sent    map[[2]uint64]sentCmd // (ClientID, Seq) → original send, for Busy retries
}

type sentCmd struct {
	to  ids.ID
	cmd kvstore.Command
}

func (c *testClient) OnMessage(from ids.ID, m wire.Msg) {
	switch r := m.(type) {
	case wire.Reply:
		c.replies = append(c.replies, r)
	case wire.Busy:
		c.busy++
		if s, ok := c.sent[[2]uint64{r.ClientID, r.Seq}]; ok {
			c.sim.Schedule(r.RetryAfter, func() { c.ep.Send(s.to, wire.Request{Cmd: s.cmd}) })
		}
	}
}

type trampoline struct{ h func(from ids.ID, m wire.Msg) }

func (tr *trampoline) OnMessage(from ids.ID, m wire.Msg) { tr.h(from, m) }

type cluster struct {
	sim      *des.Sim
	net      *netsim.Network
	cfg      config.Cluster
	replicas map[ids.ID]*Replica
	client   *testClient
}

func newCluster(t *testing.T, n int, wan bool, mut func(*Config)) *cluster {
	t.Helper()
	sim := des.New(11)
	var cc config.Cluster
	if wan {
		cc = config.NewWAN3(n)
	} else {
		cc = config.NewLAN(n)
	}
	net := netsim.New(sim, cc, netsim.DefaultOptions())
	tc := &cluster{sim: sim, net: net, cfg: cc, replicas: make(map[ids.ID]*Replica)}
	for _, id := range cc.Nodes {
		tr := &trampoline{}
		ep := net.Register(id, tr, false)
		cfg := Config{
			Paxos:     paxos.Config{Cluster: cc, ID: id, InitialLeader: cc.Nodes[0]},
			NumGroups: 2,
		}
		if mut != nil {
			mut(&cfg)
		}
		r := New(ep, cfg)
		tr.h = r.OnMessage
		tc.replicas[id] = r
	}
	cl := &testClient{sim: sim, sent: make(map[[2]uint64]sentCmd)}
	cl.ep = net.Register(ids.NewID(999, 1), cl, true)
	tc.client = cl
	sim.Schedule(0, func() {
		for _, r := range tc.replicas {
			r.Start()
		}
	})
	return tc
}

func (tc *cluster) leader() *Replica { return tc.replicas[tc.cfg.Nodes[0]] }

func (tc *cluster) send(at time.Duration, to ids.ID, cmd kvstore.Command) {
	tc.sim.Schedule(at, func() {
		tc.client.sent[[2]uint64{cmd.ClientID, cmd.Seq}] = sentCmd{to: to, cmd: cmd}
		tc.client.ep.Send(to, wire.Request{Cmd: cmd})
	})
}

func TestElectionThroughRelays(t *testing.T) {
	tc := newCluster(t, 9, false, nil)
	tc.sim.Run(100 * time.Millisecond)
	if !tc.leader().Core().IsLeader() {
		t.Fatal("leader did not establish through relayed phase-1")
	}
	for _, id := range tc.cfg.Nodes[1:] {
		if tc.replicas[id].Core().Leader() != tc.cfg.Nodes[0] {
			t.Errorf("%v does not know the leader", id)
		}
	}
}

func TestPutGetCommits(t *testing.T) {
	tc := newCluster(t, 9, false, nil)
	leader := tc.cfg.Nodes[0]
	tc.send(5*time.Millisecond, leader, kvstore.Command{Op: kvstore.Put, Key: 3, Value: []byte("pig"), ClientID: 1, Seq: 1})
	tc.send(10*time.Millisecond, leader, kvstore.Command{Op: kvstore.Get, Key: 3, ClientID: 1, Seq: 2})
	tc.sim.Run(100 * time.Millisecond)
	if len(tc.client.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(tc.client.replies))
	}
	if !tc.client.replies[0].OK {
		t.Error("put failed")
	}
	g := tc.client.replies[1]
	if !g.OK || !g.Exists || string(g.Value) != "pig" {
		t.Errorf("get reply: %+v", g)
	}
}

func TestLeaderMessageEconomy(t *testing.T) {
	// The whole point of PigPaxos: per request the leader exchanges
	// 2r+2 messages instead of 2(N−1)+2. Measure the leader endpoint's
	// sent+received across a batch of requests and compare.
	const n, reqs = 25, 50
	run := func(groups int) float64 {
		tc := newCluster(t, n, false, func(c *Config) {
			c.NumGroups = groups
			c.Paxos.HeartbeatInterval = time.Hour // isolate request traffic
		})
		tc.sim.Run(5 * time.Millisecond) // establish leadership
		lep := tc.net.Endpoint(tc.cfg.Nodes[0])
		base := lep.Sent() + lep.Received()
		for i := 0; i < reqs; i++ {
			tc.send(tc.sim.Now()+time.Duration(i)*time.Millisecond-tc.sim.Now(), tc.cfg.Nodes[0],
				kvstore.Command{Op: kvstore.Put, Key: uint64(i), ClientID: 1, Seq: uint64(i + 1)})
		}
		tc.sim.Run(tc.sim.Now() + 200*time.Millisecond)
		if len(tc.client.replies) != reqs {
			t.Fatalf("groups=%d: replies=%d", groups, len(tc.client.replies))
		}
		return float64(lep.Sent()+lep.Received()-base) / reqs
	}
	m3 := run(3)
	// Model: 2r+2 = 8 for r=3 (§6.1, Table 1).
	if m3 < 7.5 || m3 > 9.5 {
		t.Errorf("leader messages/request with r=3: %.1f, want ≈ 8", m3)
	}
	m2 := run(2)
	if m2 < 5.5 || m2 > 7.5 {
		t.Errorf("leader messages/request with r=2: %.1f, want ≈ 6", m2)
	}
}

func TestFollowersConverge(t *testing.T) {
	tc := newCluster(t, 9, false, nil)
	leader := tc.cfg.Nodes[0]
	for i := 0; i < 30; i++ {
		tc.send(time.Duration(5+i)*time.Millisecond, leader, kvstore.Command{
			Op: kvstore.Put, Key: uint64(i % 5), Value: []byte{byte(i)}, ClientID: 1, Seq: uint64(i + 1),
		})
	}
	tc.sim.Run(500 * time.Millisecond)
	want := tc.leader().Core().Store().Checksum()
	if tc.leader().Core().Store().Applied() != 30 {
		t.Fatalf("leader applied %d", tc.leader().Core().Store().Applied())
	}
	for _, id := range tc.cfg.Nodes[1:] {
		r := tc.replicas[id].Core()
		if r.Store().Applied() != 30 || r.Store().Checksum() != want {
			t.Errorf("%v: applied=%d, diverged=%v", id, r.Store().Applied(), r.Store().Checksum() != want)
		}
	}
}

func TestFollowerFailureRelayTimesOut(t *testing.T) {
	// Figure 5a: a crashed follower makes its relay flush a partial
	// aggregate after the relay timeout; the leader still commits from
	// the other groups' votes.
	tc := newCluster(t, 9, false, func(c *Config) {
		c.NumGroups = 3
		c.RelayTimeout = 5 * time.Millisecond
	})
	tc.sim.Run(5 * time.Millisecond)
	tc.net.Crash(tc.cfg.Nodes[8]) // a follower, never the leader
	done := tc.sim.Now()
	// Several rounds so the crippled group gets a live relay at least once
	// (a round that happens to pick the dead node as relay just drops).
	const reqs = 20
	for i := 0; i < reqs; i++ {
		tc.send(time.Duration(i)*10*time.Millisecond, tc.cfg.Nodes[0],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte("x"), ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(done + 800*time.Millisecond)
	okCount := 0
	for _, rep := range tc.client.replies {
		if rep.OK {
			okCount++
		}
	}
	if okCount != reqs {
		t.Fatalf("%d of %d commits despite one crashed follower", okCount, reqs)
	}
	partial := uint64(0)
	for _, r := range tc.replicas {
		partial += r.Stats().PartialFlushes
	}
	if partial == 0 {
		t.Error("the crashed follower's relay should have flushed a partial aggregate")
	}
}

func TestRelayFailureLeaderRetries(t *testing.T) {
	// Figure 5b: crash a whole group except nobody can relay it; the
	// leader must retry with new relays and still commit via the other
	// groups. Crash 3 of 8 followers (one full group under r=4 layout is
	// hard to force — instead crash whichever relay gets picked by
	// making an entire group dead).
	tc := newCluster(t, 9, false, func(c *Config) {
		c.NumGroups = 2
		c.RelayTimeout = 5 * time.Millisecond
		c.LeaderTimeout = 12 * time.Millisecond
	})
	tc.sim.Run(5 * time.Millisecond)
	// Group 0 of the leader's layout: crash every member. All relay picks
	// in that group die; the other group + leader = 5 of 9 = majority.
	g0 := tc.leader().Layout().Groups[0]
	for _, id := range g0 {
		tc.net.Crash(id)
	}
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x"), ClientID: 1, Seq: 1})
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("commit must survive a fully crashed relay group")
	}
}

func TestMinorityCrashStillCommits(t *testing.T) {
	// f failures in 2f+1 nodes: PigPaxos tolerance equals Paxos (§3.4).
	tc := newCluster(t, 5, false, func(c *Config) {
		c.NumGroups = 2
		c.RelayTimeout = 5 * time.Millisecond
		c.LeaderTimeout = 12 * time.Millisecond
	})
	tc.sim.Run(5 * time.Millisecond)
	tc.net.Crash(tc.cfg.Nodes[3])
	tc.net.Crash(tc.cfg.Nodes[4])
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x"), ClientID: 1, Seq: 1})
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("f=2 crashes in N=5 must not block commits")
	}
}

func TestMajorityCrashBlocks(t *testing.T) {
	tc := newCluster(t, 5, false, func(c *Config) {
		c.NumGroups = 2
		c.RelayTimeout = 5 * time.Millisecond
		c.LeaderTimeout = 12 * time.Millisecond
		c.MaxRetries = 3
	})
	tc.sim.Run(5 * time.Millisecond)
	for _, id := range tc.cfg.Nodes[2:] {
		tc.net.Crash(id)
	}
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: 1})
	tc.sim.Run(tc.sim.Now() + time.Second)
	for _, rep := range tc.client.replies {
		if rep.OK {
			t.Fatal("commit without a majority violates safety")
		}
	}
}

func TestRelayRotation(t *testing.T) {
	// Random relay selection must spread relay duty across group members
	// (§3.2's hotspot-avoidance argument).
	tc := newCluster(t, 25, false, func(c *Config) {
		c.NumGroups = 3
		c.Paxos.HeartbeatInterval = time.Hour
	})
	tc.sim.Run(5 * time.Millisecond)
	for i := 0; i < 200; i++ {
		tc.send(time.Duration(i)*200*time.Microsecond, tc.cfg.Nodes[0],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i), ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	relayCounts := 0
	nodesWhoRelayed := 0
	for id, r := range tc.replicas {
		if id == tc.cfg.Nodes[0] {
			continue
		}
		if c := r.Stats().RelayRounds; c > 0 {
			nodesWhoRelayed++
			relayCounts += int(c)
		}
	}
	if nodesWhoRelayed < 20 {
		t.Errorf("only %d of 24 followers ever relayed; rotation is broken", nodesWhoRelayed)
	}
}

func TestPartialThresholds(t *testing.T) {
	// §4.2: with thresholds on, relays flush early after g_i votes and the
	// leader still reaches majority across groups.
	tc := newCluster(t, 9, false, func(c *Config) {
		c.NumGroups = 2
		c.UseThresholds = true
	})
	tc.send(5*time.Millisecond, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x"), ClientID: 1, Seq: 1})
	tc.sim.Run(200 * time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("threshold mode must still commit")
	}
	flushes := uint64(0)
	for _, r := range tc.replicas {
		flushes += r.Stats().PartialFlushes
	}
	if flushes == 0 {
		t.Error("threshold mode should produce threshold (partial) flushes")
	}
}

func TestZoneGroupingWAN(t *testing.T) {
	// §6.4: one relay group per region; per round only r−1(+leader's own
	// zone relay) messages cross the WAN from the leader.
	tc := newCluster(t, 15, true, func(c *Config) {
		c.Strategy = GroupByZone
	})
	tc.sim.Run(200 * time.Millisecond)
	if !tc.leader().Core().IsLeader() {
		t.Fatal("no leader over WAN")
	}
	layout := tc.leader().Layout()
	if layout.NumGroups() != 3 {
		t.Fatalf("zone layout has %d groups, want 3", layout.NumGroups())
	}
	tc.send(0, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("w"), ClientID: 1, Seq: 1})
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("WAN commit failed")
	}
}

func TestReshuffleKeepsCommitting(t *testing.T) {
	tc := newCluster(t, 9, false, func(c *Config) {
		c.NumGroups = 3
		c.ReshuffleEvery = 3 * time.Millisecond
	})
	for i := 0; i < 40; i++ {
		tc.send(time.Duration(5+i)*time.Millisecond, tc.cfg.Nodes[0],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i), ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(500 * time.Millisecond)
	if len(tc.client.replies) != 40 {
		t.Fatalf("replies=%d, want 40 despite continuous reshuffling", len(tc.client.replies))
	}
}

func TestMultiLayerRelay(t *testing.T) {
	tc := newCluster(t, 25, false, func(c *Config) {
		c.NumGroups = 2
		c.MultiLayer = true
		c.SubGroupSize = 3
	})
	tc.send(5*time.Millisecond, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("deep"), ClientID: 1, Seq: 1})
	tc.sim.Run(300 * time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("multi-layer tree must still commit")
	}
	splits := uint64(0)
	for _, r := range tc.replicas {
		splits += r.Stats().Splits
	}
	if splits == 0 {
		t.Error("12-member groups with SubGroupSize=3 must split")
	}
}

func TestDegenerateOneGroupPerNode(t *testing.T) {
	// §3.3: with p = N−1 singleton groups PigPaxos degenerates to Paxos.
	tc := newCluster(t, 5, false, func(c *Config) {
		c.NumGroups = 4
	})
	tc.send(5*time.Millisecond, tc.cfg.Nodes[0], kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("x"), ClientID: 1, Seq: 1})
	tc.sim.Run(100 * time.Millisecond)
	if len(tc.client.replies) != 1 || !tc.client.replies[0].OK {
		t.Fatal("singleton groups must behave like Paxos")
	}
}

func TestStaleRelayP2aRejectedFast(t *testing.T) {
	tc := newCluster(t, 5, false, nil)
	tc.sim.Run(10 * time.Millisecond)
	follower := tc.replicas[tc.cfg.Nodes[2]]
	// Inject a stale relayed P2a directly.
	stale := wire.RelayP2a{
		P2a:   wire.P2a{Ballot: ids.NewBallot(0, ids.NewID(1, 4)), Slot: 50, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}},
		Peers: []ids.ID{tc.cfg.Nodes[3]},
	}
	follower.OnMessage(ids.NewID(1, 4), stale)
	if follower.Core().Log().Get(50) != nil {
		t.Error("stale relayed P2a must not be accepted")
	}
	if len(follower.aggs) != 0 {
		t.Error("no aggregation may be opened for a rejected relay round")
	}
}

func TestLeaderFailoverPig(t *testing.T) {
	tc := newCluster(t, 9, false, func(c *Config) {
		c.Paxos.ElectionTimeout = 100 * time.Millisecond
		c.RelayTimeout = 10 * time.Millisecond
	})
	tc.sim.Run(10 * time.Millisecond)
	tc.net.Crash(tc.cfg.Nodes[0])
	tc.sim.Run(tc.sim.Now() + 3*time.Second)
	leaders := []ids.ID{}
	for id, r := range tc.replicas {
		if id != tc.cfg.Nodes[0] && r.Core().IsLeader() {
			leaders = append(leaders, id)
		}
	}
	if len(leaders) != 1 {
		t.Fatalf("leaders after failover: %v", leaders)
	}
	tc.send(0, leaders[0], kvstore.Command{Op: kvstore.Put, Key: 9, Value: []byte("new"), ClientID: 2, Seq: 1})
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	served := false
	for _, rep := range tc.client.replies {
		if rep.OK && rep.ClientID == 2 {
			served = true
		}
	}
	if !served {
		t.Error("post-failover leader did not serve through relays")
	}
}

func TestOverlappingGroups(t *testing.T) {
	tc := newCluster(t, 9, false, func(c *Config) {
		c.NumGroups = 2
		c.Overlap = 2
	})
	tc.sim.Run(5 * time.Millisecond)
	layout := tc.leader().Layout()
	// 8 followers in 2 groups of 4, each extended by 2 → sizes 6 and 6.
	for i, sz := range layout.Sizes() {
		if sz != 6 {
			t.Errorf("group %d size %d, want 6 (4+2 overlap)", i, sz)
		}
	}
	// Overlapping delivery must not break exactly-once commits.
	for i := 0; i < 10; i++ {
		tc.send(time.Duration(i)*time.Millisecond, tc.cfg.Nodes[0],
			kvstore.Command{Op: kvstore.Put, Key: uint64(i), Value: []byte("o"), ClientID: 1, Seq: uint64(i + 1)})
	}
	tc.sim.Run(300 * time.Millisecond)
	if len(tc.client.replies) != 10 {
		t.Fatalf("replies = %d", len(tc.client.replies))
	}
	if got := tc.leader().Core().Store().Applied(); got != 10 {
		t.Fatalf("leader applied %d, want exactly 10 (no double-apply from overlap)", got)
	}
}

func TestOverlapAddsRedundantPaths(t *testing.T) {
	// With overlap, more cluster messages flow per request (the §4.1
	// trade-off: decreased efficiency, increased reliability).
	count := func(overlap int) uint64 {
		tc := newCluster(t, 9, false, func(c *Config) {
			c.NumGroups = 2
			c.Overlap = overlap
			c.Paxos.HeartbeatInterval = time.Hour
		})
		for i := 0; i < 10; i++ {
			tc.send(time.Duration(5+i)*time.Millisecond, tc.cfg.Nodes[0],
				kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: uint64(i + 1)})
		}
		tc.sim.Run(200 * time.Millisecond)
		if len(tc.client.replies) != 10 {
			t.Fatalf("overlap=%d: replies=%d", overlap, len(tc.client.replies))
		}
		return tc.net.MessagesSent()
	}
	if plain, redundant := count(0), count(2); redundant <= plain {
		t.Errorf("overlap should add messages: %d vs %d", redundant, plain)
	}
}

// Zone-aligned layout: under GroupByZone the groups map 1:1 onto regions in
// ascending zone order, GroupZones/GroupForZone expose the correspondence,
// and a reshuffle (random regrouping) drops the zone alignment.
func TestZoneAlignedLayoutAccessors(t *testing.T) {
	tc := newCluster(t, 9, true, func(c *Config) {
		c.Strategy = GroupByZone
	})
	lead := tc.leader() // node 1.1, zone 1
	zones := lead.GroupZones()
	if len(zones) != 3 || zones[0] != 1 || zones[1] != 2 || zones[2] != 3 {
		t.Fatalf("GroupZones = %v, want [1 2 3]", zones)
	}
	layout := lead.Layout()
	for z := 1; z <= 3; z++ {
		g := lead.GroupForZone(z)
		if g < 0 {
			t.Fatalf("GroupForZone(%d) = %d", z, g)
		}
		for _, m := range layout.Groups[g] {
			if m.Zone() != z {
				t.Errorf("group %d for zone %d contains %v", g, z, m)
			}
		}
	}
	if g := lead.GroupForZone(9); g != -1 {
		t.Errorf("GroupForZone(9) = %d, want -1", g)
	}
	// The leader's own zone group holds only its two co-residents.
	if own := layout.Groups[lead.GroupForZone(1)]; len(own) != 2 {
		t.Errorf("leader-zone group = %v, want 2 members", own)
	}
	lead.Reshuffle()
	if zs := lead.GroupZones(); zs != nil {
		t.Errorf("reshuffled layout still claims zone alignment: %v", zs)
	}
	if g := lead.GroupForZone(1); g != -1 {
		t.Errorf("reshuffled GroupForZone = %d, want -1", g)
	}
}

// An even-grouped (non-zone) replica never claims zone alignment.
func TestEvenLayoutHasNoZoneAlignment(t *testing.T) {
	tc := newCluster(t, 9, true, nil) // GroupEven
	if zs := tc.leader().GroupZones(); zs != nil {
		t.Errorf("GroupZones = %v, want nil", zs)
	}
	if g := tc.leader().GroupForZone(1); g != -1 {
		t.Errorf("GroupForZone = %d, want -1", g)
	}
}
