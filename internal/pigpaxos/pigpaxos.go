// Package pigpaxos implements PigPaxos: Multi-Paxos with the leader's
// direct fan-out/fan-in replaced by a relay/aggregate communication tree
// (paper §3). Followers are statically partitioned into relay groups; at
// every fan-out the leader picks one random node per group as the round's
// relay. The relay applies the message as an ordinary follower, re-sends it
// to the rest of its group, collects the group's votes, and returns them to
// the leader as a single aggregated message. Random relay rotation spreads
// the extra relay load across rounds (§3.2), relay timeouts bound the damage
// of slow or crashed followers (§3.4, Figure 5a), and leader-side retries
// with freshly drawn relays restore liveness after relay failures (Figure
// 5b).
//
// The decision core is an unmodified paxos.Replica: this package only
// substitutes the communication plane, exactly as the paper describes its
// own implementation (§5.1).
package pigpaxos

import (
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/quorum"
	"pigpaxos/internal/wire"
)

// GroupingStrategy selects how a leader partitions its followers.
type GroupingStrategy int

const (
	// GroupEven splits followers into NumGroups near-equal groups in ID
	// order (the hash-style static grouping of §3.2).
	GroupEven GroupingStrategy = iota
	// GroupByZone makes one relay group per zone (§6.4's WAN layout; one
	// message crosses the WAN per region per round).
	GroupByZone
)

// Config parameterizes a PigPaxos replica.
type Config struct {
	// Paxos is the decision-core configuration.
	Paxos paxos.Config
	// NumGroups is r, the number of relay groups (GroupEven only).
	NumGroups int
	// Strategy picks the grouping layout.
	Strategy GroupingStrategy
	// RelayTimeout bounds how long a relay waits for its group before
	// flushing a partial aggregate (default 50ms, the Figure 13 setting).
	RelayTimeout time.Duration
	// LeaderTimeout bounds how long the leader waits for a slot's quorum
	// before re-fanning-out with freshly drawn relays (default 2×relay
	// timeout + 10ms).
	LeaderTimeout time.Duration
	// MaxRetries caps leader re-fan-outs per slot (default 10).
	MaxRetries int
	// UseThresholds enables partial response collection (§4.2): relays
	// reply after g_i votes, chosen so Σg_i still covers a majority.
	UseThresholds bool
	// ReshuffleEvery, when positive, makes the leader recompute a random
	// group layout periodically (dynamic relay groups, §4.1).
	ReshuffleEvery time.Duration
	// MultiLayer enables nested relay trees (§6.3): a relay whose peer
	// list exceeds 2×SubGroupSize splits it into sub-groups served by
	// sub-relays.
	MultiLayer bool
	// SubGroupSize is the target sub-group size under MultiLayer
	// (default 3).
	SubGroupSize int
	// RelayWork is CPU charged at a relay per aggregation flush
	// (combining votes into one message).
	RelayWork time.Duration
	// FixedRelays pins each group's relay to its first member instead of
	// rotating randomly — an ablation of §3.2's hotspot-avoidance
	// argument (expect the fixed relays to become bottlenecks).
	FixedRelays bool
	// Overlap extends every relay group with this many members borrowed
	// from the next group (§4.1: overlapping groups trade extra messages
	// for redundant delivery paths under link volatility). Votes are
	// deduplicated at the leader, so safety is unaffected.
	Overlap int
}

func (c *Config) applyDefaults() {
	if c.NumGroups == 0 {
		c.NumGroups = 3
	}
	if c.RelayTimeout == 0 {
		c.RelayTimeout = 50 * time.Millisecond
	}
	if c.LeaderTimeout == 0 {
		c.LeaderTimeout = 2*c.RelayTimeout + 10*time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	if c.SubGroupSize == 0 {
		c.SubGroupSize = 3
	}
	if c.RelayWork == 0 {
		c.RelayWork = 5 * time.Microsecond
	}
}

// Stats counts PigPaxos-specific events.
type Stats struct {
	RelayRounds    uint64 // RelayP2a/RelayP1a handled as relay
	FullFlushes    uint64 // aggregates sent with the whole group's votes
	PartialFlushes uint64 // aggregates flushed by timeout or threshold
	LateVotes      uint64 // votes forwarded individually after a flush
	LeaderRetries  uint64 // slot re-fan-outs with new relays
	Splits         uint64 // multi-layer sub-group splits performed
}

type aggKey struct {
	ballot ids.Ballot
	slot   uint64 // 0 for phase-1 aggregations
}

// agg tracks one in-progress aggregation at a relay.
type agg struct {
	leader    ids.ID // where the aggregate goes
	acks      []ids.ID
	expected  int // votes to collect including our own
	threshold int // early-flush threshold (0 = wait for expected)
	timer     node.Timer
	p1Replies []wire.P1b // phase-1 payloads
	isP1      bool
}

// Replica is one PigPaxos node.
type Replica struct {
	ctx  node.Context
	cfg  Config
	core *paxos.Replica

	layout     config.GroupLayout
	thresholds []int
	// groupZones[g] is the region relay group g covers under GroupByZone
	// (nil otherwise): the paper's WAN deployment maps groups 1:1 onto
	// regions, and region-aware chaos uses the correspondence to aim
	// "crash the relay of region z" at the right group.
	groupZones []int
	// lastRelays[g] is the relay most recently drawn for group g by any
	// fan-out (zero before the first round). Chaos schedules use it to aim
	// "kill the current relay of group g" faults at the node actually
	// carrying the round.
	lastRelays []ids.ID

	aggs    map[aggKey]*agg
	retries map[uint64]node.Timer

	// flushed remembers recently completed aggregations so votes arriving
	// after a threshold flush are dropped (the leader's quorum math is
	// already satisfied by Σg_i ≥ majority) instead of forwarded — which
	// would silently rebuild the leader bottleneck §4.2 removes.
	flushed    map[aggKey]struct{}
	flushOrder []aggKey

	stats Stats
}

const flushedMemory = 4096

// New builds a PigPaxos replica around a fresh Paxos core.
func New(ctx node.Context, cfg Config) *Replica {
	cfg.applyDefaults()
	r := &Replica{
		ctx:     ctx,
		cfg:     cfg,
		aggs:    make(map[aggKey]*agg),
		retries: make(map[uint64]node.Timer),
		flushed: make(map[aggKey]struct{}),
	}
	r.core = paxos.New(ctx, cfg.Paxos, nil)
	r.core.SetDisseminator(&pigPlane{r})
	r.core.SetOnCommit(r.onCommit)
	r.computeLayout()
	return r
}

// Start launches the replica (see paxos.Replica.Start).
func (r *Replica) Start() {
	r.core.Start()
	if r.cfg.ReshuffleEvery > 0 {
		r.scheduleReshuffle()
	}
}

// Core exposes the decision core (stores, log, leadership state).
func (r *Replica) Core() *paxos.Replica { return r.core }

// Stats returns a copy of the PigPaxos event counters.
func (r *Replica) Stats() Stats { return r.stats }

// Layout returns the current relay-group layout (leader's view).
func (r *Replica) Layout() config.GroupLayout { return r.layout }

// GroupZones returns the zone each relay group covers under GroupByZone,
// ordered by group index, or nil for zone-oblivious layouts.
func (r *Replica) GroupZones() []int { return append([]int(nil), r.groupZones...) }

// GroupForZone returns the relay group covering zone z, or -1 when the
// layout is not zone-aligned or z holds no followers.
func (r *Replica) GroupForZone(z int) int {
	for g, zone := range r.groupZones {
		if zone == z {
			return g
		}
	}
	return -1
}

func (r *Replica) computeLayout() {
	peers := r.cfg.Paxos.Cluster.Peers(r.cfg.Paxos.ID)
	switch r.cfg.Strategy {
	case GroupByZone:
		r.layout, r.groupZones = config.ZoneGroupsWithZones(r.cfg.Paxos.Cluster, peers)
	default:
		g, err := config.EvenGroups(peers, r.cfg.NumGroups)
		if err != nil {
			// Degenerate clusters (r > followers): one group per node.
			g, _ = config.EvenGroups(peers, len(peers))
		}
		if r.cfg.Overlap > 0 && g.NumGroups() > 1 {
			g = overlapGroups(g, r.cfg.Overlap)
		}
		r.layout = g
	}
	r.computeThresholds()
}

// overlapGroups extends each group with the first `overlap` members of the
// next group (cyclically), creating redundant delivery paths.
func overlapGroups(g config.GroupLayout, overlap int) config.GroupLayout {
	n := g.NumGroups()
	out := make([][]ids.ID, n)
	for i, grp := range g.Groups {
		ext := append([]ids.ID(nil), grp...)
		next := g.Groups[(i+1)%n]
		take := overlap
		if take > len(next) {
			take = len(next)
		}
		ext = append(ext, next[:take]...)
		out[i] = ext
	}
	return config.GroupLayout{Groups: out}
}

func (r *Replica) computeThresholds() {
	r.thresholds = nil
	if !r.cfg.UseThresholds {
		return
	}
	needed := quorum.MajoritySize(r.cfg.Paxos.Cluster.N()) - 1 // leader self-votes
	th, err := quorum.GroupThresholds(r.layout.Sizes(), needed)
	if err == nil {
		r.thresholds = th
	}
}

func (r *Replica) scheduleReshuffle() {
	r.ctx.After(r.cfg.ReshuffleEvery, func() {
		if r.core.IsLeader() {
			r.Reshuffle()
		}
		r.scheduleReshuffle()
	})
}

// Reshuffle randomly re-partitions the followers into NumGroups groups
// (dynamic relay groups, §4.1). Relays need no notification: every relay
// message carries its group membership.
func (r *Replica) Reshuffle() {
	peers := append([]ids.ID(nil), r.cfg.Paxos.Cluster.Peers(r.cfg.Paxos.ID)...)
	rng := r.ctx.Rand()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	g, err := config.EvenGroups(peers, min(r.cfg.NumGroups, len(peers)))
	if err == nil {
		r.layout = g
		r.groupZones = nil // random groups are no longer zone-aligned
		r.computeThresholds()
	}
}

// OnMessage dispatches a delivered message. Relay-plane messages are
// handled here; everything else goes to the Paxos core.
func (r *Replica) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.RelayP2a:
		r.onRelayP2a(from, v)
	case wire.RelayP1a:
		r.onRelayP1a(from, v)
	case wire.RelayP3:
		r.onRelayP3(v)
	case wire.AggP2b:
		if r.core.Ballot().ID() == r.ctx.ID() {
			r.onAggP2b(v)
		} else if !r.mergeSubAggP2b(v) {
			// A sub-aggregate for a flushed aggregation: pass it up.
			r.stats.LateVotes++
			r.ctx.Send(v.Ballot.ID(), v)
		}
	case wire.AggP1b:
		r.onAggP1b(v)
	case wire.P2b:
		r.onP2b(from, v)
	case wire.P1b:
		r.onP1b(v)
	default:
		r.core.OnMessage(from, m)
	}
}

// ------------------------------------------------------------ leader side --

// pigPlane implements paxos.Disseminator by routing fan-outs through relay
// groups.
type pigPlane struct{ r *Replica }

// FanOut implements paxos.Disseminator.
func (p *pigPlane) FanOut(m wire.Msg) {
	r := p.r
	switch v := m.(type) {
	case wire.P2a:
		r.fanOutP2a(v, 0)
	case wire.P1a:
		r.fanOutP1a(v)
	case wire.P3:
		r.fanOutP3(v)
	case wire.Heartbeat:
		// Heartbeats are rare control traffic; send direct so the
		// failure detector does not depend on relay liveness. Broadcast
		// encodes the heartbeat once for all N−1 followers.
		r.ctx.Broadcast(r.cfg.Paxos.Cluster.Peers(r.cfg.Paxos.ID), v)
	default:
		r.ctx.Broadcast(r.cfg.Paxos.Cluster.Peers(r.cfg.Paxos.ID), v)
	}
}

// pickRelay draws the round's relay index for a group: random rotation by
// default (§3.2), pinned to the first member under the FixedRelays
// ablation.
func (r *Replica) pickRelay(group []ids.ID) int {
	if r.cfg.FixedRelays {
		return 0
	}
	return r.ctx.Rand().Intn(len(group))
}

// noteRelay records the relay drawn for group gi (see LastRelay).
func (r *Replica) noteRelay(gi int, relay ids.ID) {
	if len(r.lastRelays) != r.layout.NumGroups() {
		r.lastRelays = make([]ids.ID, r.layout.NumGroups())
	}
	r.lastRelays[gi] = relay
}

// LastRelay returns the relay most recently drawn for group g, or the zero
// ID before any fan-out touched the group (or for an out-of-range g).
func (r *Replica) LastRelay(g int) ids.ID {
	if g < 0 || g >= len(r.lastRelays) {
		return 0
	}
	return r.lastRelays[g]
}

func (r *Replica) fanOutP2a(m wire.P2a, attempt int) {
	for gi, group := range r.layout.Groups {
		ri := r.pickRelay(group)
		relay := group[ri]
		r.noteRelay(gi, relay)
		peers := make([]ids.ID, 0, len(group)-1)
		peers = append(peers, group[:ri]...)
		peers = append(peers, group[ri+1:]...)
		var th uint16
		if r.thresholds != nil {
			th = uint16(r.thresholds[gi])
		}
		r.ctx.Send(relay, wire.RelayP2a{
			P2a:       m,
			Peers:     peers,
			Threshold: th,
			Timeout:   r.cfg.RelayTimeout,
		})
	}
	r.armRetry(m, attempt)
}

// armRetry schedules the Figure-5b leader timeout: if the slot has not
// committed when it fires, re-fan-out with freshly drawn relays.
func (r *Replica) armRetry(m wire.P2a, attempt int) {
	if t, ok := r.retries[m.Slot]; ok {
		t.Stop()
	}
	if attempt >= r.cfg.MaxRetries {
		delete(r.retries, m.Slot)
		return
	}
	r.retries[m.Slot] = r.ctx.After(r.cfg.LeaderTimeout, func() {
		delete(r.retries, m.Slot)
		e := r.core.Log().Get(m.Slot)
		if e != nil && e.Committed {
			return
		}
		if !r.core.IsLeader() || r.core.Ballot() != m.Ballot {
			return
		}
		r.stats.LeaderRetries++
		r.fanOutP2a(m, attempt+1)
	})
}

func (r *Replica) onCommit(slot uint64) {
	if t, ok := r.retries[slot]; ok {
		t.Stop()
		delete(r.retries, slot)
	}
}

func (r *Replica) fanOutP1a(m wire.P1a) {
	for gi, group := range r.layout.Groups {
		ri := r.pickRelay(group)
		relay := group[ri]
		r.noteRelay(gi, relay)
		peers := make([]ids.ID, 0, len(group)-1)
		peers = append(peers, group[:ri]...)
		peers = append(peers, group[ri+1:]...)
		r.ctx.Send(relay, wire.RelayP1a{P1a: m, Peers: peers})
	}
}

func (r *Replica) fanOutP3(m wire.P3) {
	for gi, group := range r.layout.Groups {
		ri := r.pickRelay(group)
		relay := group[ri]
		r.noteRelay(gi, relay)
		peers := make([]ids.ID, 0, len(group)-1)
		peers = append(peers, group[:ri]...)
		peers = append(peers, group[ri+1:]...)
		r.ctx.Send(relay, wire.RelayP3{P3: m, Peers: peers})
	}
}

// onAggP2b unpacks a relay's aggregate into individual votes for the core.
func (r *Replica) onAggP2b(m wire.AggP2b) {
	if m.Ballot > r.core.Ballot() {
		// Rejection aggregated by a relay: one synthetic NACK dethrones.
		r.core.OnP2b(wire.P2b{Ballot: m.Ballot, From: m.Relay, Slot: m.Slot})
		return
	}
	if m.Partial {
		r.stats.PartialFlushes++
	}
	for _, ack := range m.Acks {
		r.core.OnP2b(wire.P2b{Ballot: m.Ballot, From: ack, Slot: m.Slot})
	}
}

// onAggP1b unpacks aggregated phase-1 promises.
func (r *Replica) onAggP1b(m wire.AggP1b) {
	for _, p := range m.Replies {
		r.core.OnP1b(p)
	}
}

// ------------------------------------------------------------- relay side --

func (r *Replica) onRelayP2a(from ids.ID, m wire.RelayP2a) {
	r.stats.RelayRounds++
	vote, ok := r.core.AcceptP2a(m.P2a)
	if vote.Ballot > m.P2a.Ballot {
		// Reject: answer immediately without waiting for the group
		// (paper footnote 2).
		r.ctx.Send(from, wire.AggP2b{
			Ballot: vote.Ballot, Relay: r.ctx.ID(), Slot: m.P2a.Slot, Partial: true,
		})
		return
	}
	key := aggKey{ballot: m.P2a.Ballot, slot: m.P2a.Slot}
	if _, dup := r.aggs[key]; dup {
		// Duplicate relay assignment (leader retry chose us again);
		// restart the aggregation cleanly.
		r.dropAgg(key)
	}
	a := &agg{
		leader:    from,
		expected:  len(m.Peers) + 1,
		threshold: int(m.Threshold),
	}
	if ok {
		a.acks = []ids.ID{r.ctx.ID()}
	} else {
		// Our own accept was refused (committed slot, different batch —
		// the core already sent the teach-back): relay without a self-vote.
		a.expected = len(m.Peers)
	}
	r.aggs[key] = a

	if r.cfg.MultiLayer && len(m.Peers) > 2*r.cfg.SubGroupSize {
		r.splitToSubRelays(m)
	} else {
		// Relay fan-out: one encode for the whole group on live
		// transports (the relay's own CPU tax is what §3 spreads around).
		r.ctx.Broadcast(m.Peers, m.P2a)
	}
	if r.maybeFlushP2(key, a, false) {
		return
	}
	timeout := m.Timeout
	if timeout <= 0 {
		timeout = r.cfg.RelayTimeout
	}
	a.timer = r.ctx.After(timeout, func() {
		if cur, ok := r.aggs[key]; ok && cur == a {
			r.maybeFlushP2(key, a, true)
		}
	})
}

// splitToSubRelays implements the multi-layer tree (§6.3): partition our
// peer list into sub-groups and delegate each to a random sub-relay, with a
// halved timeout so sub-aggregates return before our own deadline (the
// paper's per-level timeout schedule, footnote 1).
func (r *Replica) splitToSubRelays(m wire.RelayP2a) {
	r.stats.Splits++
	sub, err := config.EvenGroups(m.Peers, (len(m.Peers)+r.cfg.SubGroupSize-1)/r.cfg.SubGroupSize)
	if err != nil {
		r.ctx.Broadcast(m.Peers, m.P2a)
		return
	}
	for _, g := range sub.Groups {
		ri := r.pickRelay(g)
		peers := make([]ids.ID, 0, len(g)-1)
		peers = append(peers, g[:ri]...)
		peers = append(peers, g[ri+1:]...)
		r.ctx.Send(g[ri], wire.RelayP2a{
			P2a:     m.P2a,
			Peers:   peers,
			Timeout: m.Timeout / 2,
		})
	}
}

// onP2b is a vote arriving at a relay (or a late vote at the leader).
func (r *Replica) onP2b(from ids.ID, m wire.P2b) {
	if r.core.IsLeader() || r.core.Ballot().ID() == r.ctx.ID() {
		r.core.OnP2b(m)
		return
	}
	key := aggKey{ballot: m.Ballot, slot: m.Slot}
	a, ok := r.aggs[key]
	if !ok {
		r.stats.LateVotes++
		if _, done := r.flushed[key]; done {
			// The aggregate already went out; the thresholds guarantee
			// the leader's quorum without this vote. Dropping it keeps
			// the leader's message load at 2r+2.
			return
		}
		// A vote we have no record of (e.g. we restarted): pass it to
		// the ballot owner rather than lose it.
		r.ctx.Send(m.Ballot.ID(), m)
		return
	}
	if m.Ballot > key.ballot {
		// Should not happen (key derived from m.Ballot) but keep the
		// rejection path explicit for clarity.
		r.flushP2(key, a, true)
		return
	}
	for _, id := range a.acks {
		if id == m.From {
			return // duplicate
		}
	}
	a.acks = append(a.acks, m.From)
	r.maybeFlushP2(key, a, false)
}

func (r *Replica) maybeFlushP2(key aggKey, a *agg, timedOut bool) bool {
	full := len(a.acks) >= a.expected
	thresholdMet := a.threshold > 0 && len(a.acks) >= a.threshold
	if full || thresholdMet || timedOut {
		r.flushP2(key, a, !full)
		return true
	}
	return false
}

func (r *Replica) flushP2(key aggKey, a *agg, partial bool) {
	r.dropAgg(key)
	if partial {
		r.stats.PartialFlushes++
	} else {
		r.stats.FullFlushes++
	}
	r.ctx.Work(r.cfg.RelayWork)
	r.ctx.Send(a.leader, wire.AggP2b{
		Ballot:  key.ballot,
		Relay:   r.ctx.ID(),
		Slot:    key.slot,
		Acks:    a.acks,
		Partial: partial,
	})
}

func (r *Replica) dropAgg(key aggKey) {
	if a, ok := r.aggs[key]; ok {
		if a.timer != nil {
			a.timer.Stop()
		}
		delete(r.aggs, key)
	}
	r.rememberFlushed(key)
}

// rememberFlushed records a completed aggregation key, bounded FIFO.
func (r *Replica) rememberFlushed(key aggKey) {
	if _, ok := r.flushed[key]; ok {
		return
	}
	r.flushed[key] = struct{}{}
	r.flushOrder = append(r.flushOrder, key)
	if len(r.flushOrder) > flushedMemory {
		old := r.flushOrder[0]
		r.flushOrder = r.flushOrder[1:]
		delete(r.flushed, old)
	}
}

// AggP2b arriving at a relay happens under multi-layer trees: merge the
// sub-relay's votes into our own aggregation.
func (r *Replica) mergeSubAggP2b(m wire.AggP2b) bool {
	key := aggKey{ballot: m.Ballot, slot: m.Slot}
	a, ok := r.aggs[key]
	if !ok {
		return false
	}
	for _, ack := range m.Acks {
		dup := false
		for _, id := range a.acks {
			if id == ack {
				dup = true
				break
			}
		}
		if !dup {
			a.acks = append(a.acks, ack)
		}
	}
	r.maybeFlushP2(key, a, false)
	return true
}

func (r *Replica) onRelayP1a(from ids.ID, m wire.RelayP1a) {
	r.stats.RelayRounds++
	own := r.core.HandleP1aLocal(m.P1a)
	if own.Ballot > m.P1a.Ballot {
		r.ctx.Send(from, wire.AggP1b{Ballot: own.Ballot, Relay: r.ctx.ID(), Replies: []wire.P1b{own}})
		return
	}
	key := aggKey{ballot: m.P1a.Ballot, slot: 0}
	a := &agg{
		leader:    from,
		expected:  len(m.Peers) + 1,
		p1Replies: []wire.P1b{own},
		isP1:      true,
	}
	r.aggs[key] = a
	r.ctx.Broadcast(m.Peers, m.P1a)
	if len(a.p1Replies) >= a.expected {
		r.flushP1(key, a)
		return
	}
	a.timer = r.ctx.After(r.cfg.RelayTimeout, func() {
		if cur, ok := r.aggs[key]; ok && cur == a {
			r.flushP1(key, a)
		}
	})
}

// onP1b is a promise arriving at a relay (or at a campaigning node).
func (r *Replica) onP1b(m wire.P1b) {
	if r.core.Ballot().ID() == r.ctx.ID() {
		r.core.OnP1b(m)
		return
	}
	key := aggKey{ballot: m.Ballot, slot: 0}
	a, ok := r.aggs[key]
	if !ok || !a.isP1 {
		// Flushed already, or a NACK for a different ballot: forward to
		// whoever owns the ballot the promise names.
		r.stats.LateVotes++
		r.ctx.Send(m.Ballot.ID(), m)
		return
	}
	a.p1Replies = append(a.p1Replies, m)
	if len(a.p1Replies) >= a.expected {
		r.flushP1(key, a)
	}
}

func (r *Replica) flushP1(key aggKey, a *agg) {
	r.dropAgg(key)
	r.ctx.Work(r.cfg.RelayWork)
	r.ctx.Send(a.leader, wire.AggP1b{Ballot: key.ballot, Relay: r.ctx.ID(), Replies: a.p1Replies})
}

func (r *Replica) onRelayP3(m wire.RelayP3) {
	r.core.OnP3(m.P3)
	r.ctx.Broadcast(m.Peers, m.P3)
}
