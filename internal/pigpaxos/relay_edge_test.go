package pigpaxos

import (
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// Relay-plane edge cases the batching change must not regress: late votes
// after a threshold flush, duplicate relay assignment on leader retry, and
// multi-layer sub-aggregate merging. All three drive a follower replica
// directly with relay messages under the leader's established ballot.

func establish(t *testing.T, n int, mut func(*Config)) (*cluster, *Replica) {
	t.Helper()
	tc := newCluster(t, n, false, mut)
	tc.sim.Run(20 * time.Millisecond)
	if !tc.leader().Core().IsLeader() {
		t.Fatal("no leader")
	}
	return tc, tc.replicas[tc.cfg.Nodes[3]] // an arbitrary follower
}

func TestLateVoteAfterThresholdFlushDropped(t *testing.T) {
	tc, relay := establish(t, 9, nil)
	ballot := tc.leader().Core().Ballot()
	leaderID := tc.cfg.Nodes[0]
	peers := []ids.ID{tc.cfg.Nodes[4], tc.cfg.Nodes[5]}

	// Threshold 1: the relay's own vote satisfies g_i, so it flushes the
	// aggregate immediately and remembers the key as completed.
	relay.OnMessage(leaderID, wire.RelayP2a{
		P2a:       wire.P2a{Ballot: ballot, Slot: 1000, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}},
		Peers:     peers,
		Threshold: 1,
		Timeout:   50 * time.Millisecond,
	})
	if len(relay.aggs) != 0 {
		t.Fatal("threshold-1 aggregation must flush instantly")
	}
	if relay.Stats().PartialFlushes == 0 {
		t.Error("threshold flush must be counted as partial")
	}

	// A group member's vote arrives after the flush: it must be dropped
	// (forwarding it would rebuild the leader bottleneck §4.2 removes).
	sentBefore := tc.net.MessagesSent()
	late := relay.Stats().LateVotes
	relay.OnMessage(peers[0], wire.P2b{Ballot: ballot, From: peers[0], Slot: 1000})
	if relay.Stats().LateVotes != late+1 {
		t.Error("late vote not counted")
	}
	if tc.net.MessagesSent() != sentBefore {
		t.Error("late vote after a threshold flush must not be forwarded")
	}

	// A vote for a slot this relay never aggregated is NOT dropped — it is
	// passed to the ballot owner rather than lost.
	relay.OnMessage(peers[0], wire.P2b{Ballot: ballot, From: peers[0], Slot: 2000})
	if tc.net.MessagesSent() != sentBefore+1 {
		t.Error("unknown-slot vote must be forwarded to the ballot owner")
	}
}

func TestDuplicateRelayAssignmentRestartsCleanly(t *testing.T) {
	tc, relay := establish(t, 9, nil)
	ballot := tc.leader().Core().Ballot()
	leaderID := tc.cfg.Nodes[0]
	peers := []ids.ID{tc.cfg.Nodes[4], tc.cfg.Nodes[5], tc.cfg.Nodes[6]}
	m := wire.RelayP2a{
		P2a:     wire.P2a{Ballot: ballot, Slot: 1000, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}},
		Peers:   peers,
		Timeout: time.Hour, // no timeout interference
	}
	key := aggKey{ballot: ballot, slot: 1000}

	relay.OnMessage(leaderID, m)
	relay.OnMessage(peers[0], wire.P2b{Ballot: ballot, From: peers[0], Slot: 1000})
	if a := relay.aggs[key]; a == nil || len(a.acks) != 2 {
		t.Fatalf("pre-retry aggregation state wrong: %+v", relay.aggs[key])
	}

	// The leader timed out and drew this relay again: the aggregation must
	// restart from scratch, not double-count stale acks.
	relay.OnMessage(leaderID, m)
	a := relay.aggs[key]
	if a == nil || len(a.acks) != 1 || a.acks[0] != relay.ctx.ID() {
		t.Fatalf("duplicate assignment must restart the aggregation, got %+v", a)
	}

	// Completing the restarted round still flushes one full aggregate.
	sentBefore := tc.net.MessagesSent()
	for _, p := range peers {
		relay.OnMessage(p, wire.P2b{Ballot: ballot, From: p, Slot: 1000})
	}
	if _, open := relay.aggs[key]; open {
		t.Error("full group must flush the aggregation")
	}
	if tc.net.MessagesSent() != sentBefore+1 {
		t.Errorf("restarted round must flush exactly one aggregate, sent %d",
			tc.net.MessagesSent()-sentBefore)
	}
}

func TestMultiLayerSubAggregateMerge(t *testing.T) {
	tc, relay := establish(t, 9, func(c *Config) {
		c.MultiLayer = true
		c.SubGroupSize = 2
	})
	ballot := tc.leader().Core().Ballot()
	leaderID := tc.cfg.Nodes[0]
	peers := []ids.ID{tc.cfg.Nodes[4], tc.cfg.Nodes[5], tc.cfg.Nodes[6], tc.cfg.Nodes[7]}
	relay.OnMessage(leaderID, wire.RelayP2a{
		P2a:     wire.P2a{Ballot: ballot, Slot: 1000, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1}}},
		Peers:   peers,
		Timeout: time.Hour,
	})
	key := aggKey{ballot: ballot, slot: 1000}
	if relay.aggs[key] == nil {
		t.Fatal("aggregation not opened")
	}

	// A sub-relay's aggregate merges into the open aggregation, with
	// duplicates (our own ack, repeated members) deduplicated.
	sub := wire.AggP2b{Ballot: ballot, Relay: peers[0], Slot: 1000,
		Acks: []ids.ID{peers[0], peers[1], relay.ctx.ID()}}
	relay.OnMessage(peers[0], sub)
	a := relay.aggs[key]
	if a == nil || len(a.acks) != 3 {
		t.Fatalf("merged acks = %v, want self + 2 sub-relay members", a.acks)
	}
	relay.OnMessage(peers[0], sub) // replayed sub-aggregate: no double count
	if len(relay.aggs[key].acks) != 3 {
		t.Error("replayed sub-aggregate must not double-count acks")
	}

	// The second sub-group's aggregate completes the expected count and
	// flushes upward.
	relay.OnMessage(peers[2], wire.AggP2b{Ballot: ballot, Relay: peers[2], Slot: 1000,
		Acks: []ids.ID{peers[2], peers[3]}})
	if _, open := relay.aggs[key]; open {
		t.Error("complete sub-aggregates must flush the parent aggregation")
	}

	// A sub-aggregate for an already-flushed key is passed to the ballot
	// owner (late), not merged or lost.
	sentBefore := tc.net.MessagesSent()
	relay.OnMessage(peers[2], wire.AggP2b{Ballot: ballot, Relay: peers[2], Slot: 1000,
		Acks: []ids.ID{peers[3]}})
	if tc.net.MessagesSent() != sentBefore+1 {
		t.Error("post-flush sub-aggregate must be passed up to the leader")
	}
}

// The relay plane must forward batched P2as transparently: per-slot
// aggregation logic is unchanged, so a batch costs the leader the same
// 2r+2 messages a single command does (the paper's orthogonality claim).
func TestRelaysForwardBatchesTransparently(t *testing.T) {
	const n, cmds = 9, 24
	tc := newCluster(t, n, false, func(c *Config) {
		c.NumGroups = 2
		c.Paxos.MaxBatchSize = 8
		c.Paxos.MaxInFlight = 1
		// Lift the derived ingress bound: Busy/retry rounds would pollute
		// the per-command message-economy measurement below.
		c.Paxos.MaxPending = -1
		// Sparse heartbeats: enough to flush the final commit watermark to
		// followers without drowning the message-economy measurement.
		c.Paxos.HeartbeatInterval = 100 * time.Millisecond
	})
	tc.sim.Run(5 * time.Millisecond)
	lep := tc.net.Endpoint(tc.cfg.Nodes[0])
	base := lep.Sent() + lep.Received()
	tc.sim.Schedule(0, func() {
		for i := 0; i < cmds; i++ {
			tc.client.ep.Send(tc.cfg.Nodes[0], wire.Request{Cmd: kvstore.Command{
				Op: kvstore.Put, Key: uint64(i), Value: []byte{byte(i)}, ClientID: uint64(i + 1), Seq: 1,
			}})
		}
	})
	tc.sim.Run(tc.sim.Now() + 300*time.Millisecond)
	if len(tc.client.replies) != cmds {
		t.Fatalf("replies = %d, want %d", len(tc.client.replies), cmds)
	}
	st := tc.leader().Core().Stats()
	if st.MeanBatchSize() <= 2 {
		t.Fatalf("mean batch %.2f — batching did not engage through relays", st.MeanBatchSize())
	}
	// Leader messages per command: 2 client msgs + (2r+2−2)/batch, plus a
	// few heartbeat fan-outs — well under the unbatched 2r+2 = 6.
	perCmd := float64(lep.Sent()+lep.Received()-base) / cmds
	if perCmd >= 5 {
		t.Errorf("leader messages/command %.1f under batching, want < 5", perCmd)
	}
	// Replicas converge on the batched log once heartbeat watermarks flush
	// the tail.
	tc.sim.Run(tc.sim.Now() + 500*time.Millisecond)
	want := tc.leader().Core().Store().Checksum()
	for _, id := range tc.cfg.Nodes[1:] {
		r := tc.replicas[id].Core()
		if r.Store().Applied() != cmds || r.Store().Checksum() != want {
			t.Errorf("%v diverged under batched relay rounds", id)
		}
	}
}
