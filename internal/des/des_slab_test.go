package des

import (
	"testing"
	"time"
)

// TestPendingShrinksAfterMassCancellation: canceled timers must not sit in
// the heap indefinitely — once they outnumber live events the queue
// compacts, so Pending() (and the memory behind it) shrinks without any
// event needing to fire. Regression test for Timer.Stop leaving tombstones
// forever.
func TestPendingShrinksAfterMassCancellation(t *testing.T) {
	s := New(1)
	const n = 10000
	timers := make([]*Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, s.Schedule(time.Duration(i)*time.Millisecond+time.Hour, func() {}))
	}
	// A handful of live events that must survive compaction.
	live := 0
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, func() { live++ })
	}
	if s.Pending() != n+10 {
		t.Fatalf("pending = %d, want %d", s.Pending(), n+10)
	}
	for _, tm := range timers {
		if !tm.Stop() {
			t.Fatal("Stop on a pending timer must succeed")
		}
	}
	if s.Pending() >= n {
		t.Errorf("pending = %d after mass cancellation, heap did not compact", s.Pending())
	}
	if s.Pending() < 10 {
		t.Errorf("pending = %d, compaction dropped live events", s.Pending())
	}
	s.RunUntilIdle()
	if live != 10 {
		t.Errorf("%d live events fired, want 10", live)
	}
	if got := s.Executed(); got != 10 {
		t.Errorf("executed = %d, want 10 (canceled events must not execute)", got)
	}
}

// TestStopAfterFire: a timer whose event already ran reports false and,
// crucially, must not cancel the event that reused its slab slot.
func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.Schedule(time.Millisecond, func() {})
	s.RunUntilIdle()
	if tm.Stop() {
		t.Error("Stop after fire must report false")
	}
	// The fired event's slot is now free; schedule a new event into it.
	fired := false
	s.Schedule(time.Millisecond, func() { fired = true })
	if tm.Stop() {
		t.Error("stale handle must not cancel the slot's new tenant")
	}
	s.RunUntilIdle()
	if !fired {
		t.Error("new tenant of a recycled slot must fire")
	}
}

// TestCompactionPreservesOrder: a compaction-triggering mass cancellation
// must not perturb the firing order of the surviving events. The control
// run schedules only the live events (so no compaction can occur); the
// compacted run interleaves enough victims that canceling them rebuilds
// the heap. Live events keep their relative seq order in both runs, so
// same-time ties must resolve identically.
func TestCompactionPreservesOrder(t *testing.T) {
	const live = 500
	run := func(withVictims bool) []int {
		s := New(7)
		var got []int
		var victims []*Timer
		for i := 0; i < live; i++ {
			i := i
			d := time.Duration((i*37)%100) * time.Millisecond // many same-time ties
			s.Schedule(d, func() { got = append(got, i) })
			if withVictims {
				// Two victims per live event: canceling them satisfies
				// 2*canceled >= len(queue), forcing a compaction.
				for k := 0; k < 2; k++ {
					victims = append(victims, s.Schedule(d+time.Hour, func() { t.Error("canceled event fired") }))
				}
			}
		}
		if withVictims {
			for _, v := range victims {
				v.Stop()
			}
			// Compaction fires when tombstones reach half the queue
			// (at 750 of 1500 here), then the remaining cancellations
			// stay below the ratio — so pending lands well under the
			// 1500 scheduled but above the 500 live.
			if p := s.Pending(); p >= live+len(victims)/2 {
				t.Fatalf("pending = %d after mass cancel, want < %d (compaction did not run)", p, live+len(victims)/2)
			}
		}
		s.RunUntilIdle()
		return got
	}
	a, b := run(true), run(false)
	if len(a) != live || len(b) != live {
		t.Fatalf("event counts: %d vs %d, want %d", len(a), len(b), live)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

type countRunner struct {
	s     *Sim
	n     int
	hops  int
	delay time.Duration
}

func (r *countRunner) Run() {
	r.n++
	if r.n < r.hops {
		r.s.ScheduleRunner(r.delay, r)
	}
}

// TestScheduleRunner: runner events interleave with closure events in
// strict (at, seq) order and can reschedule themselves.
func TestScheduleRunner(t *testing.T) {
	s := New(1)
	r := &countRunner{s: s, hops: 5, delay: time.Millisecond}
	s.ScheduleRunner(time.Millisecond, r)
	closures := 0
	s.Schedule(2*time.Millisecond+time.Microsecond, func() { closures++ })
	s.RunUntilIdle()
	if r.n != 5 {
		t.Errorf("runner ran %d times, want 5", r.n)
	}
	if closures != 1 {
		t.Errorf("closure ran %d times, want 1", closures)
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("now = %v, want 5ms", s.Now())
	}
}

// TestScheduleSteadyStateAllocs: once the slab has grown, the
// schedule→fire cycle must not allocate for runner events (closure events
// still pay their Timer handle and closure capture).
func TestScheduleSteadyStateAllocs(t *testing.T) {
	s := New(1)
	r := &countRunner{s: s, hops: 1 << 30, delay: 0}
	s.ScheduleRunner(0, r)
	s.step()
	allocs := testing.AllocsPerRun(1000, func() {
		s.step() // each step re-schedules the runner into the freed slot
	})
	if allocs != 0 {
		t.Errorf("steady-state runner schedule/fire allocates %.2f allocs/op, want 0", allocs)
	}
}

func BenchmarkScheduleRunnerStep(b *testing.B) {
	s := New(1)
	r := &countRunner{s: s, hops: b.N + 2, delay: time.Microsecond}
	s.ScheduleRunner(time.Microsecond, r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// BenchmarkMassCancel measures the Stop+compaction path under retransmit
// churn: arm many far-future timers, cancel them all.
func BenchmarkMassCancel(b *testing.B) {
	s := New(1)
	timers := make([]*Timer, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range timers {
			timers[j] = s.Schedule(time.Hour+time.Duration(j), func() {})
		}
		for _, tm := range timers {
			tm.Stop()
		}
	}
	s.RunUntilIdle()
}
