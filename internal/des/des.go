// Package des is a deterministic discrete-event simulator: a virtual clock,
// a priority queue of timed events, and a seeded RNG. It is the substrate
// that replaces the paper's AWS testbed — protocols run unchanged on top of
// a simulated network (internal/netsim) whose delays advance virtual time
// instead of wall time, so experiments that take minutes of cluster time
// finish in milliseconds and are exactly reproducible.
package des

import (
	"container/heap"
	"math/rand"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so same-time events run in schedule order
	fn  func()
	// canceled supports timer cancellation without heap surgery.
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be stopped.
type Timer struct{ e *event }

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// Sim is a single-threaded discrete-event simulator. All scheduled callbacks
// run on the caller's goroutine inside Run*; the simulator itself is not
// safe for concurrent use.
type Sim struct {
	now    time.Duration
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	events uint64
}

// New creates a simulator with a deterministic RNG seeded by seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (zero at construction).
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulator's deterministic RNG. All protocol randomness
// (relay selection, jitter) must come from here for reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time and returns a cancellable
// handle. A negative delay is treated as zero (run at the current instant,
// after already-queued same-time events).
func (s *Sim) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	e := &event{at: s.now + delay, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return &Timer{e: e}
}

// step executes the earliest pending event. It returns false when the queue
// is empty.
func (s *Sim) step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.events++
		e.fn()
		return true
	}
	return false
}

// Run processes events until virtual time exceeds until or the queue drains.
// Events scheduled exactly at until still run.
func (s *Sim) Run(until time.Duration) {
	for s.queue.Len() > 0 {
		// Peek: stop before executing an event beyond the horizon.
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > until {
			s.now = until
			return
		}
		s.step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle processes events until none remain.
func (s *Sim) RunUntilIdle() {
	for s.step() {
	}
}

// Pending returns the number of queued (possibly canceled) events.
func (s *Sim) Pending() int { return s.queue.Len() }

// Executed returns the total number of events executed so far.
func (s *Sim) Executed() uint64 { return s.events }
