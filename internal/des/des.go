// Package des is a deterministic discrete-event simulator: a virtual clock,
// a priority queue of timed events, and a seeded RNG. It is the substrate
// that replaces the paper's AWS testbed — protocols run unchanged on top of
// a simulated network (internal/netsim) whose delays advance virtual time
// instead of wall time, so experiments that take minutes of cluster time
// finish in milliseconds and are exactly reproducible.
//
// Events live in a slab with free-list reuse: scheduling allocates nothing
// once the slab has grown to the experiment's working set, and the binary
// heap orders int32 slab indices instead of pointers. Canceled timers are
// compacted out of the heap once they outnumber live events, so retransmit
// and heartbeat churn cannot grow the queue without bound.
package des

import (
	"math/rand"
	"time"
)

// Runner is a pre-allocated schedulable unit: an alternative to closure
// callbacks for hot paths that reuse one object across many events (e.g.
// netsim's pooled message deliveries).
type Runner interface {
	Run()
}

// event is one scheduled callback, stored in the simulator's slab. Exactly
// one of fn and runner is set. gen guards Timer handles against slot reuse.
type event struct {
	at       time.Duration
	seq      uint64 // tie-break so same-time events run in schedule order
	fn       func()
	runner   Runner
	gen      uint32
	canceled bool
}

// Timer is a handle to a scheduled event that can be stopped.
type Timer struct {
	s   *Sim
	idx int32
	gen uint32
}

// Stop cancels the timer if it has not fired. It reports whether the call
// prevented the event from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.s == nil {
		return false
	}
	s := t.s
	e := &s.slab[t.idx]
	if e.gen != t.gen || e.canceled {
		return false // already fired (slot recycled) or already stopped
	}
	e.canceled = true
	s.canceled++
	s.maybeCompact()
	return true
}

// Sim is a single-threaded discrete-event simulator. All scheduled callbacks
// run on the caller's goroutine inside Run*; the simulator itself is not
// safe for concurrent use.
type Sim struct {
	now      time.Duration
	slab     []event
	free     []int32 // free slab slots (stack)
	queue    []int32 // binary heap of slab indices, ordered by (at, seq)
	seq      uint64
	rng      *rand.Rand
	events   uint64
	canceled int // canceled events still sitting in the queue
}

// New creates a simulator with a deterministic RNG seeded by seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (zero at construction).
func (s *Sim) Now() time.Duration { return s.now }

// Rand exposes the simulator's deterministic RNG. All protocol randomness
// (relay selection, jitter) must come from here for reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// alloc takes a slab slot from the free list, growing the slab when empty.
func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.slab = append(s.slab, event{})
	return int32(len(s.slab) - 1)
}

// release returns a slot to the free list, bumping its generation so stale
// Timer handles cannot cancel the slot's next tenant.
func (s *Sim) release(idx int32) {
	e := &s.slab[idx]
	e.fn, e.runner = nil, nil
	e.canceled = false
	e.gen++
	s.free = append(s.free, idx)
}

func (s *Sim) scheduleEvent(delay time.Duration, fn func(), r Runner) (int32, uint32) {
	if delay < 0 {
		delay = 0 // run at the current instant, after queued same-time events
	}
	idx := s.alloc()
	e := &s.slab[idx]
	e.at = s.now + delay
	e.seq = s.seq
	s.seq++
	e.fn, e.runner = fn, r
	gen := e.gen
	s.queue = append(s.queue, idx)
	s.up(len(s.queue) - 1)
	return idx, gen
}

// Schedule runs fn after delay of virtual time and returns a cancellable
// handle. A negative delay is treated as zero (run at the current instant,
// after already-queued same-time events).
func (s *Sim) Schedule(delay time.Duration, fn func()) *Timer {
	idx, gen := s.scheduleEvent(delay, fn, nil)
	return &Timer{s: s, idx: idx, gen: gen}
}

// ScheduleRunner schedules r.Run after delay of virtual time without
// allocating: no closure, no Timer handle. Hot paths that reschedule a
// pooled object (netsim message delivery) use this instead of Schedule.
func (s *Sim) ScheduleRunner(delay time.Duration, r Runner) {
	s.scheduleEvent(delay, nil, r)
}

// ---- index heap, ordered by (at, seq) ----

func (s *Sim) less(a, b int32) bool {
	ea, eb := &s.slab[a], &s.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Sim) up(j int) {
	q := s.queue
	for j > 0 {
		i := (j - 1) / 2
		if !s.less(q[j], q[i]) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (s *Sim) down(i int) {
	q := s.queue
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && s.less(q[r], q[l]) {
			j = r
		}
		if !s.less(q[j], q[i]) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

func (s *Sim) popMin() int32 {
	q := s.queue
	idx := q[0]
	n := len(q) - 1
	q[0] = q[n]
	s.queue = q[:n]
	if n > 0 {
		s.down(0)
	}
	return idx
}

// compactMinCanceled bounds how small a queue bothers compacting; below
// this, canceled events drain cheaply through normal pops.
const compactMinCanceled = 64

// maybeCompact rebuilds the heap without canceled events once they reach
// half the queue, so mass timer cancellation (retransmit guards on commit,
// heartbeat resets) returns memory instead of accumulating tombstones.
// Heapify order does not affect pop order: (at, seq) is a total order.
func (s *Sim) maybeCompact() {
	if s.canceled < compactMinCanceled || 2*s.canceled < len(s.queue) {
		return
	}
	live := s.queue[:0]
	for _, idx := range s.queue {
		if s.slab[idx].canceled {
			s.canceled--
			s.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	s.queue = live
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

// step executes the earliest pending event. It returns false when the queue
// is empty.
func (s *Sim) step() bool {
	for len(s.queue) > 0 {
		idx := s.popMin()
		e := &s.slab[idx]
		if e.canceled {
			s.canceled--
			s.release(idx)
			continue
		}
		s.now = e.at
		s.events++
		fn, r := e.fn, e.runner
		// Release before running: the callback may schedule new events,
		// which can then reuse this slot immediately.
		s.release(idx)
		if r != nil {
			r.Run()
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run processes events until virtual time exceeds until or the queue drains.
// Events scheduled exactly at until still run.
func (s *Sim) Run(until time.Duration) {
	for len(s.queue) > 0 {
		// Peek: stop before executing an event beyond the horizon.
		root := s.queue[0]
		e := &s.slab[root]
		if e.canceled {
			s.popMin()
			s.canceled--
			s.release(root)
			continue
		}
		if e.at > until {
			s.now = until
			return
		}
		s.step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle processes events until none remain.
func (s *Sim) RunUntilIdle() {
	for s.step() {
	}
}

// Pending returns the number of queued events, including canceled ones not
// yet compacted away.
func (s *Sim) Pending() int { return len(s.queue) }

// Executed returns the total number of events executed so far.
func (s *Sim) Executed() uint64 { return s.events }
