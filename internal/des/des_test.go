package des

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntilIdle()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntilIdle()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of schedule order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.Schedule(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.Schedule(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.RunUntilIdle()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Errorf("fired at %v", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(1*time.Second, func() { ran++ })
	s.Schedule(3*time.Second, func() { ran++ })
	s.Run(2 * time.Second)
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (horizon)", ran)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("clock = %v, want horizon 2s", s.Now())
	}
	s.Run(5 * time.Second)
	if ran != 2 {
		t.Error("remaining event should run in second window")
	}
}

func TestRunAtExactHorizon(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(time.Second, func() { ran = true })
	s.Run(time.Second)
	if !ran {
		t.Error("event exactly at horizon must run")
	}
}

func TestRunAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.Run(time.Minute)
	if s.Now() != time.Minute {
		t.Errorf("idle Run should advance the clock, now=%v", s.Now())
	}
}

func TestNegativeDelay(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() {
		s.Schedule(-time.Hour, func() {
			if s.Now() != time.Millisecond {
				t.Errorf("negative delay should fire now, at %v", s.Now())
			}
		})
	})
	s.RunUntilIdle()
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should succeed")
	}
	if tm.Stop() {
		t.Error("second Stop should report already stopped")
	}
	s.RunUntilIdle()
	if fired {
		t.Error("stopped timer must not fire")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Error("nil timer Stop should be a safe no-op")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New(42)
		var out []time.Duration
		var rec func(depth int)
		rec = func(depth int) {
			out = append(out, s.Now())
			if depth < 50 {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.Schedule(d, func() { rec(depth + 1) })
			}
		}
		s.Schedule(0, func() { rec(0) })
		s.RunUntilIdle()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExecutedAndPending(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() {})
	s.Schedule(2*time.Millisecond, func() {})
	if s.Pending() != 2 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.RunUntilIdle()
	if s.Executed() != 2 {
		t.Errorf("executed = %d", s.Executed())
	}
	if s.Pending() != 0 {
		t.Errorf("pending after drain = %d", s.Pending())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
	}
	s.RunUntilIdle()
}
