package des

import (
	"testing"
	"time"
)

// The event queue is the substrate every simulated experiment runs on; the
// batching sweeps schedule millions of events per run. These benchmarks
// guard its hot path so wall-clock cost of the sweeps stays bounded.

func BenchmarkScheduleStep(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, func() {})
		s.step()
	}
}

// BenchmarkScheduleDepth measures heap behaviour with many pending events —
// the steady state of a saturated 25-node cluster (timers, in-flight
// messages, retransmit guards all queued at once).
func BenchmarkScheduleDepth1k(b *testing.B) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond+time.Hour, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, func() {})
		s.step()
	}
}

func BenchmarkTimerStop(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := s.Schedule(time.Hour, func() {})
		t.Stop()
		if i%1024 == 0 {
			s.RunUntilIdle() // drain cancelled events so the heap stays bounded
		}
	}
}

func BenchmarkRunUntilIdleFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		// One root event fanning out to 64 children, twice removed — the
		// shape of a leader fan-out with per-follower deliveries.
		s.Schedule(0, func() {
			for j := 0; j < 64; j++ {
				j := j
				s.Schedule(time.Duration(j)*time.Microsecond, func() {
					s.Schedule(time.Microsecond, func() {})
				})
			}
		})
		s.RunUntilIdle()
	}
}
