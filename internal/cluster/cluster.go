// Package cluster runs real TCP clusters of the repo's replicas — the
// sim-to-metal bridge. It offers two substrates behind one addressing
// scheme:
//
//   - InProc starts N replicas inside the current process, each on its own
//     transport.TCPNode bound to an ephemeral 127.0.0.1 port. Integration
//     tests use it to exercise the real socket path (framing, reverse
//     routes, writer goroutines) without process management.
//   - Procs forks N pigserver processes, one per replica, in the style of
//     the go-paxos deploy/tester scripts — the substrate cmd/pigload's
//     -spawn mode benchmarks.
//
// Readiness is probed through the client path itself: a node is ready when
// it answers a Request, and the cluster is ready when a Get completes OK
// (some leader is committing). SyncClient is the minimal synchronous
// client both probes and tests share: one command at a time, bounded
// redirect following, target rotation on connection errors.
package cluster

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

// ParseID parses Paxi's "zone.node" notation.
func ParseID(s string) (ids.ID, error) {
	var zone, n int
	if _, err := fmt.Sscanf(s, "%d.%d", &zone, &n); err != nil {
		return 0, fmt.Errorf("cluster: bad node ID %q (want zone.node, e.g. 1.2)", s)
	}
	return ids.NewID(zone, n), nil
}

// ParseAddrs parses a comma-separated "id=host:port" membership list into
// an address map and the sorted member list.
func ParseAddrs(s string) (map[ids.ID]string, []ids.ID, error) {
	addrs := make(map[ids.ID]string)
	var members []ids.ID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("cluster: bad entry %q (want id=host:port)", part)
		}
		id, err := ParseID(kv[0])
		if err != nil {
			return nil, nil, err
		}
		if _, dup := addrs[id]; dup {
			return nil, nil, fmt.Errorf("cluster: duplicate node %v", id)
		}
		addrs[id] = kv[1]
		members = append(members, id)
	}
	if len(members) == 0 {
		return nil, nil, fmt.Errorf("cluster: empty membership list")
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return addrs, members, nil
}

// FormatAddrs renders an address map back into ParseAddrs form, members in
// ascending ID order — the -cluster argument handed to spawned pigservers.
func FormatAddrs(addrs map[ids.ID]string) string {
	members := make([]ids.ID, 0, len(addrs))
	for id := range addrs {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	parts := make([]string, 0, len(members))
	for _, id := range members {
		parts = append(parts, fmt.Sprintf("%s=%s", id, addrs[id]))
	}
	return strings.Join(parts, ",")
}

// Members returns the canonical member IDs of an n-node local cluster:
// 1.1 … 1.n. The lowest ID is the initial leader everywhere in this repo.
func Members(n int) []ids.ID {
	out := make([]ids.ID, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, ids.NewID(1, i))
	}
	return out
}

// FreePorts reserves n distinct ephemeral TCP ports and releases them.
// The caller binds them shortly after; the window in which another process
// could steal one is accepted for a local test runner.
func FreePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// ---------------------------------------------------------------- in-proc --

// InProcSpec configures an in-process cluster.
type InProcSpec struct {
	// N is the member count.
	N int
	// Protocol is paxos | pigpaxos | epaxos.
	Protocol string
	// Groups is the PigPaxos relay group count (default 2).
	Groups int
	// RelayTimeout is the PigPaxos aggregation timeout (default 50ms).
	RelayTimeout time.Duration
	// ElectionTimeout enables leader failover when positive.
	ElectionTimeout time.Duration
	// HeartbeatInterval keeps followers from campaigning on an idle
	// cluster; required with ElectionTimeout.
	HeartbeatInterval time.Duration
	// RetryTimeout is the leader's P2a retransmit timeout (liveness after
	// follower reconnects; default off).
	RetryTimeout time.Duration
}

type replica interface {
	Start()
	OnMessage(from ids.ID, m wire.Msg)
}

type handlerProxy struct{ h node.Handler }

func (p *handlerProxy) OnMessage(from ids.ID, m wire.Msg) {
	if p.h != nil {
		p.h.OnMessage(from, m)
	}
}

// InProc is a running in-process TCP cluster.
type InProc struct {
	Members []ids.ID
	Addrs   map[ids.ID]string
	nodes   map[ids.ID]*transport.TCPNode
}

// StartInProc boots an n-node cluster on ephemeral localhost ports. The
// lowest ID campaigns immediately; replicas start on their event loops.
func StartInProc(spec InProcSpec) (*InProc, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", spec.N)
	}
	if spec.Groups == 0 {
		spec.Groups = 2
	}
	if spec.RelayTimeout == 0 {
		spec.RelayTimeout = 50 * time.Millisecond
	}
	members := Members(spec.N)
	cc := config.Cluster{Nodes: members}
	c := &InProc{
		Members: members,
		Addrs:   make(map[ids.ID]string),
		nodes:   make(map[ids.ID]*transport.TCPNode),
	}
	// Each node gets its OWN address map (TCPNode guards it with the
	// node's mutex; sharing one map across nodes would race).
	for _, id := range members {
		proxy := &handlerProxy{}
		tn, err := transport.ListenTCP(id, "127.0.0.1:0", make(map[ids.ID]string), proxy)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[id] = tn
		c.Addrs[id] = tn.Addr()
		rep, err := buildReplica(tn, spec, cc, id)
		if err != nil {
			c.Close()
			return nil, err
		}
		proxy.h = rep
		tn.After(0, rep.Start) // Start on the node's event loop
	}
	for _, tn := range c.nodes {
		for id, a := range c.Addrs {
			tn.RegisterAddr(id, a)
		}
	}
	return c, nil
}

func buildReplica(ctx node.Context, spec InProcSpec, cc config.Cluster, id ids.ID) (replica, error) {
	base := paxos.Config{
		Cluster: cc, ID: id, InitialLeader: cc.Nodes[0],
		ElectionTimeout:   spec.ElectionTimeout,
		HeartbeatInterval: spec.HeartbeatInterval,
		RetryTimeout:      spec.RetryTimeout,
		CompactEvery:      4096,
	}
	switch spec.Protocol {
	case "", "paxos":
		return paxos.New(ctx, base, nil), nil
	case "pigpaxos":
		return pigpaxos.New(ctx, pigpaxos.Config{
			Paxos:        base,
			NumGroups:    spec.Groups,
			RelayTimeout: spec.RelayTimeout,
		}), nil
	case "epaxos":
		return epaxos.New(ctx, epaxos.Config{Cluster: cc, ID: id}), nil
	default:
		return nil, fmt.Errorf("cluster: unknown protocol %q", spec.Protocol)
	}
}

// Node exposes a member's transport (tests drain or kill it directly).
func (c *InProc) Node(id ids.ID) *transport.TCPNode { return c.nodes[id] }

// Stop kills one member: its listener and connections close and its event
// loop halts, exactly what the rest of the cluster observes when a process
// dies. The member cannot be restarted.
func (c *InProc) Stop(id ids.ID) {
	if tn := c.nodes[id]; tn != nil {
		tn.Close()
		delete(c.nodes, id)
	}
}

// Close stops every member.
func (c *InProc) Close() {
	for id := range c.nodes {
		c.Stop(id)
	}
}

// ------------------------------------------------------------ sync client --

// SyncClient issues one command at a time against a live cluster over raw
// framed TCP, following leader redirects (bounded) and rotating targets on
// connection errors. It is the readiness probe, the integration tests'
// client path, and deliberately NOT the load generator (loadgen pipelines).
type SyncClient struct {
	addrs    map[ids.ID]string
	members  []ids.ID
	sender   ids.ID
	clientID uint64
	target   ids.ID
	timeout  time.Duration
	seq      uint64
	conns    map[ids.ID]*syncConn
	// Redirects counts redirect hops followed (tests assert the path).
	Redirects int
	// Busy counts leader admission rejections waited out (tests assert
	// the backpressure path).
	Busy int
}

type syncConn struct {
	c  net.Conn
	br *bufio.Reader
}

// NewSyncClient builds a client that first contacts target. clientID must
// be unique per concurrent client (it keys the at-most-once session).
func NewSyncClient(addrs map[ids.ID]string, target ids.ID, clientID uint64, timeout time.Duration) *SyncClient {
	members := make([]ids.ID, 0, len(addrs))
	for id := range addrs {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &SyncClient{
		addrs:    addrs,
		members:  members,
		sender:   ids.NewID(997, int(clientID%0xffff)+1),
		clientID: clientID,
		target:   target,
		timeout:  timeout,
		conns:    make(map[ids.ID]*syncConn),
	}
}

// Target returns the node the client currently believes leads.
func (c *SyncClient) Target() ids.ID { return c.target }

// Close drops every connection.
func (c *SyncClient) Close() {
	for id, sc := range c.conns {
		sc.c.Close()
		delete(c.conns, id)
	}
}

// Put writes value under key and reports the committed slot.
func (c *SyncClient) Put(key uint64, value []byte) (wire.Reply, error) {
	return c.Do(kvstore.Command{Op: kvstore.Put, Key: key, Value: value})
}

// Get reads key.
func (c *SyncClient) Get(key uint64) (wire.Reply, error) {
	return c.Do(kvstore.Command{Op: kvstore.Get, Key: key})
}

// Delete removes key.
func (c *SyncClient) Delete(key uint64) (wire.Reply, error) {
	return c.Do(kvstore.Command{Op: kvstore.Delete, Key: key})
}

// Do runs one command to completion: send, await the matching reply,
// follow redirects up to 8 hops, rotate to the next member on connection
// errors. A reply with OK=false and no usable leader hint is returned to
// the caller (the cluster is leaderless right now).
func (c *SyncClient) Do(cmd kvstore.Command) (wire.Reply, error) {
	c.seq++
	cmd.ClientID, cmd.Seq = c.clientID, c.seq
	target := c.target
	var lastErr error
	for hop := 0; hop < 8; hop++ {
		rep, err := c.roundTrip(target, cmd)
		if err != nil {
			lastErr = err
			target = c.nextMember(target)
			continue
		}
		if !rep.OK && !rep.Leader.IsZero() && rep.Leader != target {
			if _, known := c.addrs[rep.Leader]; known {
				c.Redirects++
				target = rep.Leader
				continue
			}
		}
		c.target = target // stick with whoever answered
		return rep, nil
	}
	if lastErr != nil {
		return wire.Reply{}, fmt.Errorf("cluster: command failed after retries: %w", lastErr)
	}
	return wire.Reply{}, fmt.Errorf("cluster: redirect chain exceeded 8 hops")
}

func (c *SyncClient) nextMember(after ids.ID) ids.ID {
	for i, id := range c.members {
		if id == after {
			return c.members[(i+1)%len(c.members)]
		}
	}
	return c.members[0]
}

func (c *SyncClient) conn(to ids.ID) (*syncConn, error) {
	if sc, ok := c.conns[to]; ok {
		return sc, nil
	}
	addr, ok := c.addrs[to]
	if !ok {
		return nil, fmt.Errorf("cluster: no address for %v", to)
	}
	conn, err := net.DialTimeout("tcp", addr, c.timeout)
	if err != nil {
		return nil, err
	}
	sc := &syncConn{c: conn, br: bufio.NewReader(conn)}
	c.conns[to] = sc
	return sc, nil
}

func (c *SyncClient) drop(to ids.ID) {
	if sc, ok := c.conns[to]; ok {
		sc.c.Close()
		delete(c.conns, to)
	}
}

func (c *SyncClient) roundTrip(to ids.ID, cmd kvstore.Command) (wire.Reply, error) {
	sc, err := c.conn(to)
	if err != nil {
		return wire.Reply{}, err
	}
	sc.c.SetDeadline(time.Now().Add(c.timeout))
	if err := transport.WriteFrame(sc.c, c.sender, wire.Request{Cmd: cmd}); err != nil {
		c.drop(to)
		return wire.Reply{}, err
	}
	for {
		_, m, err := transport.ReadFrame(sc.br)
		if err != nil {
			c.drop(to)
			return wire.Reply{}, err
		}
		if b, ok := m.(wire.Busy); ok && b.Seq == cmd.Seq && b.ClientID == cmd.ClientID {
			// The leader shed us under overload: wait out its hint and
			// retry the same seq on the same connection (the rejection
			// did not consume the seq). The conn deadline still bounds
			// the whole exchange.
			c.Busy++
			if d := b.RetryAfter; d > 0 && d < c.timeout {
				time.Sleep(d)
			}
			if err := transport.WriteFrame(sc.c, c.sender, wire.Request{Cmd: cmd}); err != nil {
				c.drop(to)
				return wire.Reply{}, err
			}
			continue
		}
		rep, ok := m.(wire.Reply)
		if !ok || rep.Seq != cmd.Seq || rep.ClientID != cmd.ClientID {
			continue // stale reply from an earlier attempt
		}
		sc.c.SetDeadline(time.Time{})
		return rep, nil
	}
}

// -------------------------------------------------------------- readiness --

// WaitReady blocks until every member answers the client path and a Get
// completes OK through redirect following (a leader is elected and
// committing), or the deadline passes. Probe commands run under throwaway
// client IDs high above any load generator's range.
func WaitReady(addrs map[ids.ID]string, members []ids.ID, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, id := range members {
		// A fresh client ID per probe: reusing one across WaitReady calls
		// would collide with the at-most-once session the last call left.
		probe := NewSyncClient(addrs, id, probeClientBase+probeCounter.Add(1), 500*time.Millisecond)
		for {
			rep, err := probe.Do(kvstore.Command{Op: kvstore.Get, Key: readinessKey})
			if err == nil && rep.OK {
				break
			}
			if time.Now().After(deadline) {
				probe.Close()
				if err == nil {
					err = fmt.Errorf("node answered but no leader is serving (reply %+v)", rep)
				}
				return fmt.Errorf("cluster: %v not ready: %w", id, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		probe.Close()
	}
	return nil
}

const (
	probeClientBase = uint64(1) << 62
	readinessKey    = ^uint64(0) // far outside any workload's key space
)

var probeCounter atomic.Uint64

// ------------------------------------------------------------- subprocess --

// ProcSpec configures a spawned multi-process cluster.
type ProcSpec struct {
	// N is the member count.
	N int
	// Protocol is paxos | pigpaxos | epaxos (forwarded to pigserver).
	Protocol string
	// Groups is the PigPaxos relay group count.
	Groups int
	// ServerBin is the pigserver binary to fork.
	ServerBin string
	// BasePort, when positive, assigns ports BasePort…BasePort+N-1;
	// otherwise free ephemeral ports are reserved.
	BasePort int
	// WALDir, when set, gives node i a durable journal in WALDir/node-i.
	WALDir string
	// ExtraArgs are appended to every pigserver command line.
	ExtraArgs []string
	// Output receives child stdout/stderr (default: inherit this
	// process's stderr).
	Output *os.File
}

// Procs is a running set of pigserver processes.
type Procs struct {
	Members []ids.ID
	Addrs   map[ids.ID]string
	cmds    map[ids.ID]*exec.Cmd
}

// Launch forks one pigserver per member and returns without waiting for
// readiness (call WaitReady). On any spawn error the already-started
// children are killed.
func Launch(spec ProcSpec) (*Procs, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", spec.N)
	}
	if spec.ServerBin == "" {
		return nil, fmt.Errorf("cluster: ProcSpec.ServerBin is required")
	}
	members := Members(spec.N)
	addrs := make(map[ids.ID]string, spec.N)
	if spec.BasePort > 0 {
		for i, id := range members {
			addrs[id] = fmt.Sprintf("127.0.0.1:%d", spec.BasePort+i)
		}
	} else {
		ports, err := FreePorts(spec.N)
		if err != nil {
			return nil, err
		}
		for i, id := range members {
			addrs[id] = fmt.Sprintf("127.0.0.1:%d", ports[i])
		}
	}
	p := &Procs{Members: members, Addrs: addrs, cmds: make(map[ids.ID]*exec.Cmd)}
	clusterArg := FormatAddrs(addrs)
	for i, id := range members {
		args := []string{
			"-id", id.String(),
			"-cluster", clusterArg,
			"-protocol", orDefault(spec.Protocol, "pigpaxos"),
		}
		if spec.Groups > 0 {
			args = append(args, "-groups", fmt.Sprint(spec.Groups))
		}
		if spec.WALDir != "" {
			args = append(args, "-wal-dir", fmt.Sprintf("%s/node-%d", spec.WALDir, i+1))
		}
		args = append(args, spec.ExtraArgs...)
		cmd := exec.Command(spec.ServerBin, args...)
		out := spec.Output
		if out == nil {
			out = os.Stderr
		}
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			p.StopAll(0)
			return nil, fmt.Errorf("cluster: spawn %v: %w", id, err)
		}
		p.cmds[id] = cmd
	}
	return p, nil
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// Kill hard-kills one member (SIGKILL) and reaps it — the leader-crash
// experiment's hammer. The member stays in Addrs so clients keep probing
// its dead port, exactly as real clients would.
func (p *Procs) Kill(id ids.ID) error {
	cmd, ok := p.cmds[id]
	if !ok {
		return fmt.Errorf("cluster: no process for %v", id)
	}
	delete(p.cmds, id)
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	return nil
}

// Terminate sends SIGTERM to one member (graceful drain path) without
// waiting.
func (p *Procs) Terminate(id ids.ID) error {
	cmd, ok := p.cmds[id]
	if !ok {
		return fmt.Errorf("cluster: no process for %v", id)
	}
	return cmd.Process.Signal(syscall.SIGTERM)
}

// StopAll SIGTERMs every child, waits up to grace for clean exits, then
// SIGKILLs stragglers. Always reaps.
func (p *Procs) StopAll(grace time.Duration) {
	for _, cmd := range p.cmds {
		cmd.Process.Signal(syscall.SIGTERM)
	}
	done := make(chan ids.ID, len(p.cmds))
	for id, cmd := range p.cmds {
		go func(id ids.ID, cmd *exec.Cmd) {
			cmd.Wait()
			done <- id
		}(id, cmd)
	}
	deadline := time.After(grace)
	remaining := len(p.cmds)
	for remaining > 0 {
		select {
		case <-done:
			remaining--
		case <-deadline:
			for _, cmd := range p.cmds {
				cmd.Process.Kill()
			}
			deadline = time.After(time.Minute) // reap after kill; never spin
		}
	}
	p.cmds = make(map[ids.ID]*exec.Cmd)
}
