package cluster

import (
	"testing"
	"time"

	"pigpaxos/internal/ids"
)

func TestParseAddrsRoundTrip(t *testing.T) {
	in := "1.1=127.0.0.1:7001,1.2=127.0.0.1:7002,1.3=127.0.0.1:7003"
	addrs, members, err := ParseAddrs(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 || members[0] != ids.NewID(1, 1) || members[2] != ids.NewID(1, 3) {
		t.Fatalf("members = %v", members)
	}
	if got := FormatAddrs(addrs); got != in {
		t.Fatalf("round trip: %q != %q", got, in)
	}
}

func TestParseAddrsRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "1.1", "x=127.0.0.1:7001", "1.1=a,1.1=b"} {
		if _, _, err := ParseAddrs(bad); err == nil {
			t.Errorf("ParseAddrs(%q) accepted garbage", bad)
		}
	}
}

func TestFreePortsDistinct(t *testing.T) {
	ports, err := FreePorts(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range ports {
		if p <= 0 || seen[p] {
			t.Fatalf("bad port set %v", ports)
		}
		seen[p] = true
	}
}

// TestInProcPutGetRedirect boots a real 3-node TCP paxos cluster in-process,
// waits for readiness, and runs the client path against a follower first so
// the redirect machinery is exercised.
func TestInProcPutGetRedirect(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := StartInProc(InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Aim at the highest ID: a follower, so the first op must redirect.
	cl := NewSyncClient(c.Addrs, c.Members[2], 1, 5*time.Second)
	defer cl.Close()
	rep, err := cl.Put(7, []byte("metal"))
	if err != nil || !rep.OK {
		t.Fatalf("put: %v %+v", err, rep)
	}
	if cl.Redirects == 0 {
		t.Error("follower-targeted put did not traverse a redirect")
	}
	if cl.Target() != c.Members[0] {
		t.Errorf("client should now stick to the leader, targets %v", cl.Target())
	}
	rep, err = cl.Get(7)
	if err != nil || !rep.OK || !rep.Exists || string(rep.Value) != "metal" {
		t.Fatalf("get: %v %+v", err, rep)
	}
	rep, err = cl.Delete(7)
	if err != nil || !rep.OK {
		t.Fatalf("delete: %v %+v", err, rep)
	}
	rep, err = cl.Get(7)
	if err != nil || !rep.OK || rep.Exists {
		t.Fatalf("get after delete: %v %+v", err, rep)
	}
}
