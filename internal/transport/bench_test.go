package transport

import (
	"io"
	"runtime"
	"sync/atomic"
	"testing"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// BenchmarkWriteFrame measures the outbound frame path in isolation:
// pooled frame, one encode, one Write. Steady state allocates nothing.
func BenchmarkWriteFrame(b *testing.B) {
	var m wire.Msg = wire.P2a{Ballot: 7, Slot: 3, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: make([]byte, 128)}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, ids.NewID(1, 1), m); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader replays one encoded frame forever, so the read path can be
// benchmarked without a socket.
type loopReader struct {
	frame []byte
	off   int
}

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.frame) {
		r.off = 0
	}
	n := copy(p, r.frame[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkReadFrameReuse measures the inbound frame path with the
// growable scratch buffer the read loop uses: per frame, only the decoded
// message's own retained data allocates.
func BenchmarkReadFrameReuse(b *testing.B) {
	var m wire.Msg = wire.P2a{Ballot: 7, Slot: 3, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: make([]byte, 128)}}}
	f := newFrame(ids.NewID(1, 1), m, 1)
	src := &loopReader{frame: append([]byte(nil), f.buf...)}
	f.release()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		_, _, buf, err = readFrameInto(src, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPSend measures the full live hot path over loopback: encode
// once, enqueue, coalesced flush by the peer writer, framed read, decode,
// handler dispatch.
func BenchmarkTCPSend(b *testing.B) {
	var got atomic.Int64
	recvID, sendID := ids.NewID(1, 2), ids.NewID(1, 1)
	recv, err := ListenTCP(recvID, "127.0.0.1:0", nil, handlerFunc(func(ids.ID, wire.Msg) { got.Add(1) }))
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := ListenTCP(sendID, "127.0.0.1:0", map[ids.ID]string{recvID: recv.Addr()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	var m wire.Msg = wire.P2b{Ballot: 7, From: sendID, Slot: 3}
	b.ReportAllocs()
	sent := int64(0)
	for i := 0; i < b.N; i++ {
		send.Send(recvID, m)
		sent++
		if sent%512 == 0 {
			// Keep the bounded queue from overflowing (drops would make
			// the wait below spin forever).
			for got.Load() < sent-256 {
				runtime.Gosched()
			}
		}
	}
	for got.Load() < sent {
		runtime.Gosched()
	}
}

type handlerFunc func(ids.ID, wire.Msg)

func (f handlerFunc) OnMessage(from ids.ID, m wire.Msg) { f(from, m) }
