package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

// Frame format on TCP connections:
//
//	[4-byte little-endian body length][4-byte sender ID][encoded message]
//
// where "encoded message" is wire.Encode output (1-byte type + body). The
// body length covers the sender ID and encoded message.
const (
	frameHeader  = 4
	maxFrameSize = 16 << 20 // 16 MiB guards against corrupt streams
)

// WriteFrame writes one framed message from sender to w.
func WriteFrame(w io.Writer, sender ids.ID, m wire.Msg) error {
	body := make([]byte, 0, 8+m.Size()+1)
	body = binary.LittleEndian.AppendUint32(body, uint32(sender))
	body = wire.Encode(body, m)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one framed message from r.
func ReadFrame(r io.Reader) (ids.ID, wire.Msg, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 4 || n > maxFrameSize {
		return 0, nil, fmt.Errorf("transport: bad frame size %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	sender := ids.ID(binary.LittleEndian.Uint32(body[:4]))
	m, used, err := wire.Decode(body[4:])
	if err != nil {
		return 0, nil, err
	}
	if used != len(body)-4 {
		return 0, nil, fmt.Errorf("transport: frame has %d trailing bytes", len(body)-4-used)
	}
	return sender, m, nil
}

// TCPNode is a live node reachable over TCP. It implements node.Context;
// a single event-loop goroutine serializes handler calls and timers.
type TCPNode struct {
	id      ids.ID
	handler node.Handler
	addrs   map[ids.ID]string

	ln    net.Listener
	inbox chan envelope
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup

	connMu sync.Mutex
	conns  map[ids.ID]*outConn

	start time.Time
	rng   *rand.Rand
	rngMu sync.Mutex
}

type outConn struct {
	mu     sync.Mutex
	c      net.Conn
	w      *bufio.Writer
	dialed bool // we dialed it (vs a reverse route from an inbound conn)
}

// ListenTCP starts a node listening on addr. addrs maps every cluster
// member (and optionally clients) to its host:port; outbound connections
// are dialed lazily and redialed after failures.
func ListenTCP(id ids.ID, addr string, addrs map[ids.ID]string, h node.Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:      id,
		handler: h,
		addrs:   addrs,
		ln:      ln,
		inbox:   make(chan envelope, 4096),
		done:    make(chan struct{}),
		conns:   make(map[ids.ID]*outConn),
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(int64(id) ^ time.Now().UnixNano())),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	return n, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Close shuts the node down and waits for its goroutines.
func (n *TCPNode) Close() {
	n.once.Do(func() {
		close(n.done)
		n.ln.Close()
		n.connMu.Lock()
		for _, oc := range n.conns {
			oc.mu.Lock()
			if oc.c != nil {
				oc.c.Close()
			}
			oc.mu.Unlock()
		}
		n.connMu.Unlock()
	})
	n.wg.Wait()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

func (n *TCPNode) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	var regID ids.ID
	registered := false
	defer func() {
		if registered {
			n.clearReverse(regID, c)
		}
	}()
	for {
		from, m, err := ReadFrame(br)
		if err != nil {
			return
		}
		if !registered {
			regID = from
			// Remember the inbound connection as a reverse route so
			// replies reach peers we cannot dial (e.g. clients behind
			// ephemeral ports).
			n.registerReverse(from, c)
			registered = true
		}
		select {
		case n.inbox <- envelope{from: from, msg: m}:
		case <-n.done:
			return
		}
	}
}

// registerReverse installs conn as the outbound route to id. A fresh
// inbound connection replaces a previous reverse route (the peer
// reconnected) but never displaces a healthy dialed connection.
func (n *TCPNode) registerReverse(id ids.ID, c net.Conn) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	oc, ok := n.conns[id]
	if !ok {
		oc = &outConn{}
		n.conns[id] = oc
	}
	oc.mu.Lock()
	if oc.c == nil || !oc.dialed {
		if oc.c != nil && oc.c != c {
			oc.c.Close()
		}
		oc.c = c
		oc.w = bufio.NewWriter(c)
		oc.dialed = false
	}
	oc.mu.Unlock()
}

// clearReverse drops a reverse route when its connection dies, so a later
// reconnect (or dial) can take its place.
func (n *TCPNode) clearReverse(id ids.ID, c net.Conn) {
	n.connMu.Lock()
	oc := n.conns[id]
	n.connMu.Unlock()
	if oc == nil {
		return
	}
	oc.mu.Lock()
	if oc.c == c {
		oc.c, oc.w = nil, nil
		oc.dialed = false
	}
	oc.mu.Unlock()
}

func (n *TCPNode) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case env := <-n.inbox:
			if env.fn != nil {
				env.fn()
			} else if n.handler != nil {
				n.handler.OnMessage(env.from, env.msg)
			}
		}
	}
}

// ID implements node.Context.
func (n *TCPNode) ID() ids.ID { return n.id }

// Send implements node.Context. Failures drop the message (the network is
// allowed to lose messages; protocols retry), and the cached connection is
// discarded so the next send redials.
func (n *TCPNode) Send(to ids.ID, m wire.Msg) {
	if to == n.id {
		select {
		case n.inbox <- envelope{from: n.id, msg: m}:
		case <-n.done:
		}
		return
	}
	oc := n.conn(to)
	if oc == nil {
		// No configured address; a reverse route may still exist.
		n.connMu.Lock()
		oc = n.conns[to]
		n.connMu.Unlock()
		if oc == nil {
			return
		}
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.c == nil {
		addr, ok := n.addrs[to]
		if !ok {
			return
		}
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return
		}
		oc.c = c
		oc.w = bufio.NewWriter(c)
		oc.dialed = true
		// Connections are full-duplex: read replies sent back over this
		// socket (peers prefer an existing route over dialing back).
		n.wg.Add(1)
		go n.readLoop(c)
	}
	if err := WriteFrame(oc.w, n.id, m); err == nil {
		err = oc.w.Flush()
		if err == nil {
			return
		}
	}
	oc.c.Close()
	oc.c, oc.w = nil, nil
	oc.dialed = false
}

func (n *TCPNode) conn(to ids.ID) *outConn {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	oc, ok := n.conns[to]
	if !ok {
		if _, known := n.addrs[to]; !known {
			return nil
		}
		oc = &outConn{}
		n.conns[to] = oc
	}
	return oc
}

// RegisterAddr adds (or updates) a peer address after startup — used for
// clients that connect with ephemeral identities.
func (n *TCPNode) RegisterAddr(id ids.ID, addr string) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.addrs == nil {
		n.addrs = make(map[ids.ID]string)
	}
	n.addrs[id] = addr
}

// After implements node.Context.
func (n *TCPNode) After(d time.Duration, fn func()) node.Timer {
	t := &localTimer{}
	t.t = time.AfterFunc(d, func() {
		select {
		case n.inbox <- envelope{fn: func() {
			if !t.stopped() {
				fn()
			}
		}}:
		case <-n.done:
		}
	})
	return t
}

// Now implements node.Context.
func (n *TCPNode) Now() time.Duration { return time.Since(n.start) }

// Rand implements node.Context.
func (n *TCPNode) Rand() *rand.Rand {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng
}

// Work implements node.Context (no-op on live substrates).
func (n *TCPNode) Work(time.Duration) {}

var _ node.Context = (*TCPNode)(nil)
