package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

// Frame format on TCP connections:
//
//	[4-byte little-endian body length][4-byte sender ID][encoded message]
//
// where "encoded message" is wire.Encode output (1-byte type + body). The
// body length covers the sender ID and encoded message.
const (
	frameHeader  = 4
	maxFrameSize = 16 << 20 // 16 MiB guards against corrupt streams

	// outboundQueue bounds frames buffered per peer; when full, Send drops
	// (the network is allowed to lose messages; protocols retry).
	outboundQueue = 1024
	dialTimeout   = 2 * time.Second
)

// frame is one encoded outbound frame (header included). Frames are pooled
// and reference-counted so a Broadcast can enqueue the same encoded bytes
// on every peer's writer without copying; the last writer to finish
// returns the buffer to the pool.
type frame struct {
	buf  []byte
	refs atomic.Int32
}

var framePool = sync.Pool{New: func() any { return new(frame) }}

// newFrame encodes m (from sender) into a pooled frame with refs initial
// references.
func newFrame(sender ids.ID, m wire.Msg, refs int32) *frame {
	f := framePool.Get().(*frame)
	f.refs.Store(refs)
	b := append(f.buf[:0], 0, 0, 0, 0) // header backpatched below
	b = binary.LittleEndian.AppendUint32(b, uint32(sender))
	b = wire.Encode(b, m)
	binary.LittleEndian.PutUint32(b[:frameHeader], uint32(len(b)-frameHeader))
	f.buf = b
	return f
}

// maxPooledFrame bounds the buffers kept in framePool: the occasional
// giant frame (up to maxFrameSize) must not pin megabytes for the node's
// lifetime when steady-state frames are a few hundred bytes.
const maxPooledFrame = 64 << 10

func (f *frame) release() {
	if f.refs.Add(-1) == 0 {
		if cap(f.buf) > maxPooledFrame {
			f.buf = nil
		}
		framePool.Put(f)
	}
}

// WriteFrame writes one framed message from sender to w.
func WriteFrame(w io.Writer, sender ids.ID, m wire.Msg) error {
	f := newFrame(sender, m, 1)
	_, err := w.Write(f.buf)
	f.release()
	return err
}

// readFrameInto reads one framed message from r, reusing buf as the frame
// scratch; it returns the (possibly grown) buffer for the next call. The
// decoded message owns its contents (wire.Decode copies), so the buffer is
// free for reuse immediately.
func readFrameInto(r io.Reader, buf []byte) (ids.ID, wire.Msg, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 4 || n > maxFrameSize {
		return 0, nil, buf, fmt.Errorf("transport: bad frame size %d", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, err
	}
	sender := ids.ID(binary.LittleEndian.Uint32(body[:4]))
	m, used, err := wire.Decode(body[4:])
	if err != nil {
		return 0, nil, buf, err
	}
	if used != len(body)-4 {
		return 0, nil, buf, fmt.Errorf("transport: frame has %d trailing bytes", len(body)-4-used)
	}
	return sender, m, buf, nil
}

// ReadFrame reads one framed message from r.
func ReadFrame(r io.Reader) (ids.ID, wire.Msg, error) {
	sender, m, _, err := readFrameInto(r, nil)
	return sender, m, err
}

// TCPNode is a live node reachable over TCP. It implements node.Context;
// a single event-loop goroutine serializes handler calls and timers, and a
// writer goroutine per peer drains a bounded outbound queue so Send never
// blocks the event loop — a peer that never answers its dial costs its own
// writer 2 seconds, not the replica.
type TCPNode struct {
	id      ids.ID
	handler node.Handler
	addrs   map[ids.ID]string

	ln      net.Listener
	inbox   chan envelope
	done    chan struct{}
	ctx     context.Context // canceled at Close; aborts in-flight dials
	cancel  context.CancelFunc
	once    sync.Once
	closing atomic.Bool // set before Close sweeps connections
	wg      sync.WaitGroup

	connMu sync.Mutex
	peers  map[ids.ID]*peer
	conns  map[net.Conn]struct{} // every live conn (accepted or dialed)

	start time.Time
	rng   *rand.Rand
	rngMu sync.Mutex
}

// peer is the outbound side of one neighbor: a bounded frame queue drained
// by a dedicated writer goroutine that coalesces queued frames into a
// single Flush (and therefore typically a single syscall).
type peer struct {
	n     *TCPNode
	id    ids.ID
	queue chan *frame
	stop  chan struct{} // closed when the peer record is reaped

	busy     atomic.Bool  // writer is mid-write/flush (Drain waits on it)
	inflight atomic.Int32 // frames enqueued but not yet disposed by the writer

	mu     sync.Mutex
	c      net.Conn
	w      *bufio.Writer
	dialed bool // we dialed it (vs a reverse route from an inbound conn)
}

// ListenTCP starts a node listening on addr. addrs maps every cluster
// member (and optionally clients) to its host:port; outbound connections
// are dialed lazily by the peer's writer and redialed after failures.
func ListenTCP(id ids.ID, addr string, addrs map[ids.ID]string, h node.Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &TCPNode{
		id:      id,
		handler: h,
		addrs:   addrs,
		ln:      ln,
		inbox:   make(chan envelope, 4096),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
		peers:   make(map[ids.ID]*peer),
		conns:   make(map[net.Conn]struct{}),
		start:   time.Now(),
		rng:     rand.New(rand.NewSource(int64(id) ^ time.Now().UnixNano())),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.eventLoop()
	return n, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// Close shuts the node down and waits for its goroutines. Queued outbound
// frames are dropped; call Drain first for a graceful shutdown that flushes
// them.
func (n *TCPNode) Close() {
	n.once.Do(func() {
		n.closing.Store(true)
		close(n.done)
		n.cancel()
		n.ln.Close()
		// Sweep every live connection — accepted or dialed — so every
		// readLoop unblocks. Peers' installed conns are a subset of this
		// set; a freshly accepted conn that never sent a frame is not in
		// any peer record but still holds a readLoop.
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
	})
	n.wg.Wait()
}

// Drain waits up to timeout for every peer's outbound queue to empty and
// its writer to fall idle, so frames already enqueued (replies to clients,
// final protocol messages) are flushed before Close drops the connections.
// It reports whether the queues drained within the deadline. New sends
// during a drain keep it honest: Drain observes live state, it does not
// freeze it.
func (n *TCPNode) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		idle := true
		n.connMu.Lock()
		for _, p := range n.peers {
			if p.inflight.Load() > 0 || p.busy.Load() {
				idle = false
				break
			}
		}
		n.connMu.Unlock()
		if idle {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// trackConn registers a live connection for Close's sweep. It reports false
// when the node is already closing — the caller must close the conn and
// not start a readLoop for it. A true return guarantees Close's sweep will
// see the conn: closing is set before the sweep takes connMu, so a track
// that observed closing==false is ordered before the sweep.
func (n *TCPNode) trackConn(c net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.closing.Load() {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *TCPNode) untrackConn(c net.Conn) {
	n.connMu.Lock()
	delete(n.conns, c)
	n.connMu.Unlock()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		if !n.trackConn(c) {
			c.Close()
			continue
		}
		n.wg.Add(1)
		go n.readLoop(c)
	}
}

// readLoop consumes frames from one tracked connection until it dies.
func (n *TCPNode) readLoop(c net.Conn) {
	defer n.wg.Done()
	defer func() {
		c.Close()
		n.untrackConn(c)
	}()
	br := bufio.NewReader(c)
	var buf []byte // reusable frame scratch; grows to the stream's largest frame
	var regID ids.ID
	registered := false
	defer func() {
		if registered {
			n.clearReverse(regID, c)
		}
	}()
	for {
		from, m, nextBuf, err := readFrameInto(br, buf)
		if err != nil {
			return
		}
		buf = nextBuf
		if !registered {
			regID = from
			// Remember the inbound connection as a reverse route so
			// replies reach peers we cannot dial (e.g. clients behind
			// ephemeral ports).
			n.registerReverse(from, c)
			registered = true
		}
		select {
		case n.inbox <- envelope{from: from, msg: m}:
		case <-n.done:
			return
		}
	}
}

// peerFor returns the peer record for id, creating it when create is set
// or when id has a configured address. nil means the peer is unreachable
// (no address, no reverse route).
func (n *TCPNode) peerFor(id ids.ID, create bool) *peer {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	p, ok := n.peers[id]
	if ok {
		return p
	}
	if n.closing.Load() {
		return nil // shutting down: no new writers
	}
	if !create {
		if _, known := n.addrs[id]; !known {
			return nil
		}
	}
	p = &peer{n: n, id: id, queue: make(chan *frame, outboundQueue), stop: make(chan struct{})}
	n.peers[id] = p
	n.wg.Add(1)
	go p.writeLoop()
	return p
}

// registerReverse installs conn as the outbound route to id. A fresh
// inbound connection replaces a previous reverse route (the peer
// reconnected) but never displaces a healthy dialed connection.
func (n *TCPNode) registerReverse(id ids.ID, c net.Conn) {
	p := n.peerFor(id, true)
	if p == nil {
		return // node is shutting down
	}
	p.mu.Lock()
	if p.c == nil || !p.dialed {
		if p.c != nil && p.c != c {
			p.c.Close()
		}
		p.c = c
		p.w = bufio.NewWriter(c)
		p.dialed = false
	}
	p.mu.Unlock()
}

// clearReverse drops a reverse route when its connection dies, so a later
// reconnect (or dial) can take its place. Peers with no configured address
// (ephemeral clients known only through their inbound connection) are
// reaped entirely — record, queue and writer goroutine — so churning
// clients cannot grow the peer table without bound.
func (n *TCPNode) clearReverse(id ids.ID, c net.Conn) {
	n.connMu.Lock()
	p := n.peers[id]
	_, hasAddr := n.addrs[id]
	n.connMu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	mine := p.c == c
	if mine {
		p.c, p.w = nil, nil
		p.dialed = false
	}
	p.mu.Unlock()
	if !mine || hasAddr {
		return
	}
	n.connMu.Lock()
	p.mu.Lock()
	// Re-check under both locks: a reconnect may have installed a fresh
	// route while we were deciding.
	if p.c == nil && n.peers[id] == p {
		delete(n.peers, id)
		close(p.stop)
	}
	p.mu.Unlock()
	n.connMu.Unlock()
}

func (n *TCPNode) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case env := <-n.inbox:
			if env.fn != nil {
				env.fn()
			} else if n.handler != nil {
				n.handler.OnMessage(env.from, env.msg)
			}
		}
	}
}

// ID implements node.Context.
func (n *TCPNode) ID() ids.ID { return n.id }

// Send implements node.Context. It encodes m once, enqueues the frame on
// the peer's writer, and returns immediately: dial latency, slow peers and
// write syscalls are paid by the peer's writer goroutine, never by the
// calling event loop. A full queue drops the frame (the network is allowed
// to lose messages; protocols retry).
func (n *TCPNode) Send(to ids.ID, m wire.Msg) {
	if to == n.id {
		select {
		case n.inbox <- envelope{from: n.id, msg: m}:
		case <-n.done:
		}
		return
	}
	p := n.peerFor(to, false)
	if p == nil {
		return
	}
	p.enqueue(newFrame(n.id, m, 1))
}

// Broadcast implements node.Context: m is encoded exactly once and the
// same frame bytes are enqueued on every recipient's writer.
func (n *TCPNode) Broadcast(to []ids.ID, m wire.Msg) {
	var f *frame
	for _, id := range to {
		if id == n.id {
			n.Send(id, m) // self-delivery through the inbox
			continue
		}
		p := n.peerFor(id, false)
		if p == nil {
			continue
		}
		if f == nil {
			f = newFrame(n.id, m, 1) // the extra ref is released below
		}
		f.refs.Add(1)
		p.enqueue(f)
	}
	if f != nil {
		f.release()
	}
}

func (p *peer) enqueue(f *frame) {
	p.inflight.Add(1)
	select {
	case p.queue <- f:
	default:
		p.inflight.Add(-1)
		f.release() // bounded queue full: drop, like a congested network
	}
}

// dispose releases a queue-obtained frame and retires it from the inflight
// count Drain watches.
func (p *peer) dispose(f *frame) {
	f.release()
	p.inflight.Add(-1)
}

func (p *peer) writeLoop() {
	defer p.n.wg.Done()
	for {
		select {
		case <-p.n.done:
			p.drainQueue()
			return
		case <-p.stop:
			p.drainQueue()
			return
		case f := <-p.queue:
			p.busy.Store(true)
			p.write(f)
			p.busy.Store(false)
		}
	}
}

// write ships one frame plus everything else already queued, then flushes
// once — many frames, one syscall. Connection setup happens here, off the
// event loop.
func (p *peer) write(first *frame) {
	c, w := p.ensureConn()
	if w == nil {
		// Unreachable: drop this frame and everything queued behind it,
		// so a flood at a dead peer does not serialize dial timeouts.
		p.dispose(first)
		p.drainQueue()
		return
	}
	_, err := w.Write(first.buf)
	p.dispose(first)
	for err == nil {
		select {
		case f := <-p.queue:
			_, err = w.Write(f.buf)
			p.dispose(f)
		default:
			err = w.Flush()
			if err == nil {
				return
			}
		}
	}
	p.dropConn(c)
}

// ensureConn returns the current connection, dialing if none exists. The
// dial happens without holding p.mu so reverse-route registration is never
// blocked behind a slow dial.
func (p *peer) ensureConn() (net.Conn, *bufio.Writer) {
	p.mu.Lock()
	if p.c != nil {
		c, w := p.c, p.w
		p.mu.Unlock()
		return c, w
	}
	p.mu.Unlock()

	p.n.connMu.Lock()
	addr, ok := p.n.addrs[p.id]
	p.n.connMu.Unlock()
	if !ok {
		return nil, nil
	}
	d := net.Dialer{Timeout: dialTimeout}
	c, err := d.DialContext(p.n.ctx, "tcp", addr)
	if err != nil {
		return nil, nil
	}
	if !p.n.trackConn(c) {
		// Close ran while we were dialing; installing now would leak a
		// conn (and its readLoop) that the sweep never closes, hanging
		// wg.Wait. Tracking before install guarantees the sweep sees it.
		c.Close()
		return nil, nil
	}
	p.mu.Lock()
	if p.c != nil {
		// A reverse route arrived while we dialed; prefer it.
		existing, w := p.c, p.w
		p.mu.Unlock()
		c.Close()
		p.n.untrackConn(c)
		return existing, w
	}
	p.c = c
	p.w = bufio.NewWriter(c)
	p.dialed = true
	w := p.w
	p.mu.Unlock()
	// Connections are full-duplex: read replies sent back over this
	// socket (peers prefer an existing route over dialing back).
	p.n.wg.Add(1)
	go p.n.readLoop(c)
	return c, w
}

// dropConn discards a failed connection so the next frame redials.
func (p *peer) dropConn(c net.Conn) {
	c.Close()
	p.mu.Lock()
	if p.c == c {
		p.c, p.w = nil, nil
		p.dialed = false
	}
	p.mu.Unlock()
}

// drainQueue releases everything currently queued.
func (p *peer) drainQueue() {
	for {
		select {
		case f := <-p.queue:
			p.dispose(f)
		default:
			return
		}
	}
}

// RegisterAddr adds (or updates) a peer address after startup — used for
// clients that connect with ephemeral identities.
func (n *TCPNode) RegisterAddr(id ids.ID, addr string) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.addrs == nil {
		n.addrs = make(map[ids.ID]string)
	}
	n.addrs[id] = addr
}

// After implements node.Context.
func (n *TCPNode) After(d time.Duration, fn func()) node.Timer {
	t := &localTimer{}
	t.t = time.AfterFunc(d, func() {
		select {
		case n.inbox <- envelope{fn: func() {
			if !t.stopped() {
				fn()
			}
		}}:
		case <-n.done:
		}
	})
	return t
}

// Now implements node.Context.
func (n *TCPNode) Now() time.Duration { return time.Since(n.start) }

// Rand implements node.Context.
func (n *TCPNode) Rand() *rand.Rand {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng
}

// Work implements node.Context (no-op on live substrates).
func (n *TCPNode) Work(time.Duration) {}

var _ node.Context = (*TCPNode)(nil)
