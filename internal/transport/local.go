// Package transport provides live (non-simulated) substrates for the
// protocol replicas: an in-process channel bus for single-binary clusters
// and tests, and a TCP transport with length-prefixed binary frames for
// real multi-process deployments. Both implement node.Context, so replicas
// run on them unchanged.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/wire"
)

// envelope is one unit of work for a node's event loop: either a delivered
// message or a timer/closure to run.
type envelope struct {
	from ids.ID
	msg  wire.Msg
	fn   func()
}

// LocalBus connects in-process nodes through buffered channels. Each node
// owns a goroutine that serializes message handling and timer callbacks,
// honoring the node.Context single-threading contract.
type LocalBus struct {
	mu    sync.RWMutex
	nodes map[ids.ID]*LocalNode
	start time.Time
	wg    sync.WaitGroup
}

// NewLocalBus creates an empty bus.
func NewLocalBus() *LocalBus {
	return &LocalBus{nodes: make(map[ids.ID]*LocalNode), start: time.Now()}
}

// LocalNode is one attachment to a LocalBus. It implements node.Context.
type LocalNode struct {
	bus     *LocalBus
	id      ids.ID
	handler node.Handler
	inbox   chan envelope
	done    chan struct{}
	closed  sync.Once
	rng     *rand.Rand
	rngMu   sync.Mutex
}

// Node registers handler h as id and starts its event loop. The mailbox
// holds up to 4096 pending envelopes; Send blocks when it is full
// (backpressure).
func (b *LocalBus) Node(id ids.ID, h node.Handler) (*LocalNode, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.nodes[id]; dup {
		return nil, fmt.Errorf("transport: duplicate node %v", id)
	}
	n := &LocalNode{
		bus:     b,
		id:      id,
		handler: h,
		inbox:   make(chan envelope, 4096),
		done:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(int64(id) + time.Now().UnixNano())),
	}
	b.nodes[id] = n
	b.wg.Add(1)
	go n.loop(&b.wg)
	return n, nil
}

// Stop kills one node: its loop exits and it is removed from the routing
// table, so messages to it drop — an in-process crash.
func (b *LocalBus) Stop(id ids.ID) {
	b.mu.Lock()
	n := b.nodes[id]
	delete(b.nodes, id)
	b.mu.Unlock()
	if n != nil {
		n.close()
	}
}

// Close stops every node loop and waits for them to drain.
func (b *LocalBus) Close() {
	b.mu.Lock()
	nodes := make([]*LocalNode, 0, len(b.nodes))
	for _, n := range b.nodes {
		nodes = append(nodes, n)
	}
	b.mu.Unlock()
	for _, n := range nodes {
		n.close()
	}
	b.wg.Wait()
}

func (n *LocalNode) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-n.done:
			return
		case env := <-n.inbox:
			if env.fn != nil {
				env.fn()
			} else if n.handler != nil {
				n.handler.OnMessage(env.from, env.msg)
			}
		}
	}
}

func (n *LocalNode) close() { n.closed.Do(func() { close(n.done) }) }

// ID implements node.Context.
func (n *LocalNode) ID() ids.ID { return n.id }

// Send implements node.Context: deliver m to the target's mailbox.
func (n *LocalNode) Send(to ids.ID, m wire.Msg) {
	n.bus.mu.RLock()
	dst := n.bus.nodes[to]
	n.bus.mu.RUnlock()
	if dst == nil {
		return // unknown destination: drop, like a dead host
	}
	select {
	case dst.inbox <- envelope{from: n.id, msg: m}:
	case <-dst.done:
	}
}

// Broadcast implements node.Context. In-process delivery passes m by
// reference, so there is nothing to encode once: it is exactly a Send per
// recipient.
func (n *LocalNode) Broadcast(to []ids.ID, m wire.Msg) {
	for _, id := range to {
		n.Send(id, m)
	}
}

// After implements node.Context: the callback is posted to the mailbox so
// it serializes with message handling.
func (n *LocalNode) After(d time.Duration, fn func()) node.Timer {
	t := &localTimer{}
	t.t = time.AfterFunc(d, func() {
		select {
		case n.inbox <- envelope{fn: func() {
			if !t.stopped() {
				fn()
			}
		}}:
		case <-n.done:
		}
	})
	return t
}

type localTimer struct {
	t    *time.Timer
	mu   sync.Mutex
	dead bool
}

func (t *localTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead {
		return false
	}
	t.dead = true
	t.t.Stop() // best-effort; the wrapper also checks stopped()
	return true
}

func (t *localTimer) stopped() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dead
}

// Now implements node.Context: wall time since the bus started.
func (n *LocalNode) Now() time.Duration { return time.Since(n.bus.start) }

// Rand implements node.Context.
func (n *LocalNode) Rand() *rand.Rand {
	// The rng is only touched from the node's own loop, but guard anyway:
	// tests may probe it from the outside.
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng
}

// Work implements node.Context: live substrates spend real time, so this
// is a no-op.
func (n *LocalNode) Work(time.Duration) {}

var _ node.Context = (*LocalNode)(nil)
